// Poicount reproduces the paper's POI-count application (Table 7): count
// the points of interest inside every postal-code-like area via the
// Event→SpatialMap conversion with the broadcast R-tree over irregular
// polygon cells, and additionally break counts down by POI type with a
// custom aggregation — the customized-converter example of §3.2.2.
//
//	go run ./examples/poicount
package main

import (
	"fmt"
	"log"
	"sort"

	"st4ml/internal/convert"
	"st4ml/internal/core"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
)

type poiEvent = instance.Event[geom.Point, string, int64]

func main() {
	if err := run(200_000, 256, 11); err != nil {
		log.Fatal(err)
	}
}

// run executes the pipeline over a seeded OSM-like corpus of nPOIs points
// and nAreas polygon areas.
func run(nPOIs, nAreas int, seed int64) error {
	s := core.NewSession(engine.Config{})
	pois, areas := datagen.OSM(nPOIs, nAreas, seed)
	fmt.Printf("corpus: %d POIs, %d areas\n", len(pois), len(areas))

	polys := make([]*geom.Polygon, len(areas))
	for i, a := range areas {
		polys[i] = a.Shape
	}
	events := core.POIInstances(engine.Parallelize(s.Context(), pois, 0))

	// Plain counts through the built-in flow extractor.
	cells := convert.EventToSpatialMap(events, convert.CellsTarget(polys), convert.RTree,
		func(in []poiEvent) []poiEvent { return in })
	counts, ok := extract.SmFlow(cells)
	if !ok {
		return fmt.Errorf("no data")
	}
	type ranked struct {
		area  int
		count int64
	}
	var top []ranked
	for i, e := range counts.Entries {
		top = append(top, ranked{area: i, count: e.Value})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].count > top[j].count })
	fmt.Println("densest areas:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  area-%d: %d POIs\n", top[i].area, top[i].count)
	}

	// Customized conversion (§3.2.2): per-area per-type counts via an agg
	// function over the events of each cell.
	typed := convert.EventToSpatialMap(events, convert.CellsTarget(polys), convert.RTree,
		func(in []poiEvent) map[string]int {
			m := map[string]int{}
			for _, e := range in {
				m[e.Entry.Value]++
			}
			return m
		})
	merged, _ := extract.CollectAndMergeSpatialMap(typed, func(a, b map[string]int) map[string]int {
		for k, v := range b {
			a[k] += v
		}
		return a
	})
	best := top[0].area
	fmt.Printf("type breakdown of area-%d:\n", best)
	byType := merged.Entries[best].Value
	keys := make([]string, 0, len(byType))
	for k := range byType {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-12s %d\n", k, byType[k])
	}
	return nil
}
