// Trafficspeed is the paper's first case study (§6, Figure 9): extract
// time-evolving district-level traffic speeds from camera-sighting
// trajectories over a synthetic city — 100 districts × 24 hourly slots —
// then print the busiest hour's district speed summary.
//
//	go run ./examples/trafficspeed
package main

import (
	"fmt"
	"log"

	"st4ml/internal/bench"
	"st4ml/internal/convert"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

type traj = instance.Trajectory[instance.Unit, int64]

func main() {
	if err := run(2000, 51); err != nil {
		log.Fatal(err)
	}
}

// run executes the pipeline over nTrajs seeded camera trajectories.
func run(nTrajs int, seed int64) error {
	ctx := engine.New(engine.Config{})
	city := bench.NewCaseStudyCity()
	trajs := datagen.Camera(city.Graph, nTrajs, 0, seed)
	count, avgPts, avgDur := datagen.DescribeTrajs(trajs)
	fmt.Printf("day 0: %d trajectories, %.1f points and %.1f min each on average\n",
		count, avgPts, avgDur)

	// Build the (district × hour) raster target.
	day := tempo.New(datagen.Year2013.Start, datagen.Year2013.Start+86400-1)
	var cells []*geom.Polygon
	var slots []tempo.Duration
	for _, h := range day.Split(24) {
		for _, d := range city.Districts {
			cells = append(cells, d)
			slots = append(slots, h)
		}
	}

	// Convert with the broadcast R-tree over the irregular district cells,
	// then run the built-in raster speed extractor.
	r := engine.Map(engine.Parallelize(ctx, trajs, 0), stdata.TrajRec.ToTrajectory)
	raster := convert.TrajToRaster(r, convert.RasterCellsTarget(cells, slots),
		convert.RTree, func(in []traj) []traj { return in })
	speeds, ok := extract.RasterSpeed(raster, extract.KMH)
	if !ok {
		return fmt.Errorf("no data")
	}

	// Find the busiest hour and summarize its districts.
	perHour := make([]int64, 24)
	nd := len(city.Districts)
	for i, e := range speeds.Entries {
		perHour[i/nd] += e.Value.Count
	}
	busiest := 0
	for h, c := range perHour {
		if c > perHour[busiest] {
			busiest = h
		}
	}
	fmt.Printf("busiest hour: %02d:00 with %d vehicle-district observations\n",
		busiest, perHour[busiest])
	var active int
	var speedSum float64
	for i := busiest * nd; i < (busiest+1)*nd; i++ {
		if v := speeds.Entries[i].Value; v.Count > 0 {
			active++
			speedSum += v.Mean
		}
	}
	if active == 0 {
		return fmt.Errorf("no district saw traffic in the busiest hour")
	}
	fmt.Printf("districts with traffic that hour: %d of %d, mean speed %.1f km/h\n",
		active, nd, speedSum/float64(active))
	return nil
}
