// Mltensor runs the paper's §2.1 motivating pipeline end to end: vehicle
// trajectories → per-(grid cell, hour) average speeds → the sequence of
// 2-d matrices [A^t0, A^t1, ...] that a traffic-forecasting deep model
// takes as input, exported as JSON/CSV for TensorFlow or PyTorch loaders.
//
//	go run ./examples/mltensor
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"st4ml/internal/convert"
	"st4ml/internal/core"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/instance"
	"st4ml/internal/mlexport"
	"st4ml/internal/selection"
	"st4ml/internal/tempo"
)

type traj = instance.Trajectory[instance.Unit, int64]

func main() {
	if err := run(8000, 99); err != nil {
		log.Fatal(err)
	}
}

// run executes the pipeline over nTrajs seeded trajectories.
func run(nTrajs int, seed int64) error {
	s := core.NewSession(engine.Config{})
	dataDir, err := os.MkdirTemp("", "st4ml-mltensor-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	// Preprocess a day-heavy Porto-like corpus.
	trajs := datagen.Porto(nTrajs, seed)
	if _, err := s.IngestTrajs(trajs, dataDir, nil, selection.IngestOptions{Name: "porto"}); err != nil {
		return err
	}

	// Select one day, convert to a 16×16 grid × 24 hour raster, extract
	// speeds.
	day := tempo.New(datagen.Year2013.Start, datagen.Year2013.Start+86400-1)
	sel := s.TrajSelector(selection.Config{Index: true})
	recs, stats, err := sel.SelectPruned(dataDir, core.Window(datagen.PortoExtent, day))
	if err != nil {
		return err
	}
	fmt.Printf("selected %d trajectories from %d partitions\n",
		stats.SelectedRecords, stats.LoadedPartitions)

	grid := instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: datagen.PortoExtent, NX: 16, NY: 16},
		Time:  instance.TimeGrid{Window: day, NT: 24},
	}
	cells := convert.TrajToRaster(core.TrajInstances(recs),
		convert.RasterGridTarget(grid), convert.Auto,
		func(in []traj) []traj { return in })
	speeds, ok := extract.RasterSpeed(cells, extract.KMH)
	if !ok {
		return fmt.Errorf("no data")
	}

	// Reshape into the DL input tensor: [24][16][16], NaN = unobserved.
	tensor, err := mlexport.RasterTensor(speeds, grid, func(v extract.CellSpeed) float64 {
		if v.Count == 0 {
			return math.NaN()
		}
		return v.Mean
	})
	if err != nil {
		return err
	}
	nt, ny, nx := tensor.Shape()
	observed := 0
	for _, plane := range tensor.Data {
		for _, row := range plane {
			for _, v := range row {
				if !math.IsNaN(v) {
					observed++
				}
			}
		}
	}
	fmt.Printf("tensor shape: [%d][%d][%d], %d observed cells (%.0f%%)\n",
		nt, ny, nx, observed, 100*float64(observed)/float64(nt*ny*nx))

	// Channel to the ML engine as JSON and flat CSV.
	jsonPath := filepath.Join(dataDir, "speeds.json")
	jf, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	if err := mlexport.WriteJSON(jf, tensor); err != nil {
		return err
	}
	jf.Close()
	csvPath := filepath.Join(dataDir, "speeds.csv")
	cf, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := mlexport.WriteTensorCSV(cf, tensor); err != nil {
		return err
	}
	cf.Close()
	ji, _ := os.Stat(jsonPath)
	ci, _ := os.Stat(csvPath)
	fmt.Printf("exports ready for the model: %s (%d bytes), %s (%d bytes)\n",
		filepath.Base(jsonPath), ji.Size(), filepath.Base(csvPath), ci.Size())
	return nil
}
