package main

import "testing"

// TestRunSmall smoke-tests the full pipeline on a small seeded corpus.
func TestRunSmall(t *testing.T) {
	if err := run(2000, 99); err != nil {
		t.Fatal(err)
	}
}
