// Anomaly extracts night-time taxi events (23:00–04:00, the paper's
// abnormal-event application) from an NYC-like corpus, then clusters them
// into hot spots with the built-in DBSCAN extractor — Table 2's
// crime-forecasting / pattern-mining feature pipeline.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"st4ml/internal/core"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/tempo"
)

func main() {
	if err := run(100_000, 7); err != nil {
		log.Fatal(err)
	}
}

// run executes the pipeline over nEvents seeded events.
func run(nEvents int, seed int64) error {
	s := core.NewSession(engine.Config{})

	dataDir, err := os.MkdirTemp("", "st4ml-anomaly-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	events := datagen.NYC(nEvents, seed)
	if _, err := s.IngestEvents(events, dataDir, nil, selection.IngestOptions{Name: "nyc"}); err != nil {
		return err
	}

	// Select one month of events city-wide, repartitioned ST-aware for
	// balanced clustering.
	month := tempo.New(datagen.Year2013.Start, datagen.Year2013.Start+30*86400-1)
	// Spatial-only partitioning: clustering is per-partition, so spatial
	// hot spots must stay co-located (GT=1 keeps each spatial tile whole).
	sel := s.EventSelector(selection.Config{
		Index:   true,
		Planner: partition.TSTR{GT: 1, GS: 4},
	})
	recs, stats, err := sel.SelectPruned(dataDir, core.Window(datagen.NYCExtent, month))
	if err != nil {
		return err
	}
	fmt.Printf("selected %d events (pruned %d of %d partitions)\n",
		stats.SelectedRecords,
		stats.TotalPartitions-stats.LoadedPartitions, stats.TotalPartitions)

	// Built-in anomaly extractor: events between 23:00 and 04:00.
	night := extract.EventAnomaly(core.EventInstances(recs), 23, 4).Cache()
	fmt.Printf("night-time events: %d\n", night.Count())

	// Hot spots: DBSCAN with 1.5 km neighborhoods, ≥25 events.
	clusters := extract.EventCluster(night, 1500, 25).Collect()
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].Size > clusters[j].Size })
	fmt.Printf("hot spots found: %d\n", len(clusters))
	for i, c := range clusters {
		if i >= 5 {
			break
		}
		fmt.Printf("  #%d: %v with %d events\n", i+1, c.Center, c.Size)
	}
	return nil
}
