package main

import "testing"

// TestRunSmall smoke-tests the full pipeline on a small seeded corpus.
func TestRunSmall(t *testing.T) {
	if err := run(5000, 7); err != nil {
		t.Fatal(err)
	}
}
