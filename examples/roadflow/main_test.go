package main

import "testing"

// TestRunSmall smoke-tests the full pipeline on a small seeded corpus.
func TestRunSmall(t *testing.T) {
	if err := run(150, 77); err != nil {
		t.Fatal(err)
	}
}
