// Roadflow is the paper's second case study (§6, Table 9): sparse
// camera-sighting trajectories are calibrated onto the road network with
// the HMM map-matching trajectory-to-trajectory conversion, connecting
// paths are inferred for camera-free segments, and per-segment hourly
// traffic flows come out — the pipeline the paper notes cannot be built by
// simply extending GeoSpark or GeoMesa.
//
//	go run ./examples/roadflow
package main

import (
	"fmt"
	"log"
	"sort"

	"st4ml/internal/bench"
	"st4ml/internal/codec"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/mapmatch"
	"st4ml/internal/roadnet"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

func main() {
	if err := run(800, 77); err != nil {
		log.Fatal(err)
	}
}

// run executes the pipeline over nTrajs seeded camera trajectories.
func run(nTrajs int, seed int64) error {
	ctx := engine.New(engine.Config{})
	city := bench.NewCaseStudyCity()
	fmt.Printf("road network: %d nodes, %d directed segments\n",
		city.Graph.NumNodes(), city.Graph.NumEdges())

	trajs := datagen.Camera(city.Graph, nTrajs, 0, seed)
	count, avgPts, avgDur := datagen.DescribeTrajs(trajs)
	fmt.Printf("camera trajectories: %d, avg %.1f points / %.1f min (sparse!)\n",
		count, avgPts, avgDur)

	// Map-match every trajectory in parallel; emit the connected edge path
	// tagged with the traversal's start hour.
	matcher := mapmatch.New(city.Graph, mapmatch.Config{SigmaZ: 15})
	r := engine.Parallelize(ctx, trajs, 0)
	type hourEdge = codec.Pair[int64, int64] // key: edge<<8 | hour
	flowPairs := engine.FlatMap(r, func(rec stdata.TrajRec) []hourEdge {
		_, path, err := mapmatch.MatchTrajectory(matcher, rec.ToTrajectory())
		if err != nil {
			return nil
		}
		hour := int64(tempo.HourOfDay(rec.Times[0]))
		out := make([]hourEdge, len(path))
		for i, e := range path {
			out[i] = codec.KV(int64(e)<<8|hour, int64(1))
		}
		return out
	})

	// Aggregate flow per (segment, hour) with a map-side-combining shuffle.
	flows := engine.ReduceByKey(flowPairs, codec.Int64, codec.Int64,
		func(a, b int64) int64 { return a + b }, 0).Collect()

	perEdge := map[roadnet.EdgeID]int64{}
	var total int64
	for _, f := range flows {
		perEdge[roadnet.EdgeID(f.Key>>8)] += f.Value
		total += f.Value
	}
	fmt.Printf("flow observations: %d over %d segments (inferred paths cover camera-free roads)\n",
		total, len(perEdge))

	type ranked struct {
		edge roadnet.EdgeID
		flow int64
	}
	var top []ranked
	for e, f := range perEdge {
		top = append(top, ranked{e, f})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].flow != top[j].flow {
			return top[i].flow > top[j].flow
		}
		return top[i].edge < top[j].edge
	})
	fmt.Println("busiest segments:")
	for i := 0; i < 5 && i < len(top); i++ {
		a, b := city.Graph.EdgeEndpoints(top[i].edge)
		fmt.Printf("  segment %d (%v -> %v): %d vehicles\n", top[i].edge, a, b, top[i].flow)
	}
	return nil
}
