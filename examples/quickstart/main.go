// Quickstart walks the paper's §3.4 running example end to end: ingest
// trajectories into a T-STR-partitioned store, select the ones in an ST
// window, convert them to a raster of (grid cell × hour), and extract the
// average traffic speed per cell — the three-stage
// Selection–Conversion–Extraction pipeline in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"st4ml/internal/convert"
	"st4ml/internal/core"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/instance"
	"st4ml/internal/selection"
	"st4ml/internal/tempo"
)

func main() {
	if err := run(5000, 42); err != nil {
		log.Fatal(err)
	}
}

// run executes the pipeline over nTrajs seeded trajectories.
func run(nTrajs int, seed int64) error {
	// A session owns the (simulated) cluster.
	s := core.NewSession(engine.Config{})

	// Preprocessing (one-off, §3.1): generate a Porto-like corpus and
	// persist it T-STR-partitioned with a metadata index.
	dataDir, err := os.MkdirTemp("", "st4ml-quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	trajs := datagen.Porto(nTrajs, seed)
	if _, err := s.IngestTrajs(trajs, dataDir, nil, selection.IngestOptions{Name: "porto"}); err != nil {
		return err
	}

	// Stage 1 — Selection: one week over the city center, loading only the
	// partitions whose metadata bounds overlap.
	cityArea := datagen.PortoExtent
	week := tempo.New(datagen.Year2013.Start, datagen.Year2013.Start+7*86400-1)
	sel := s.TrajSelector(selection.Config{Index: true})
	recs, stats, err := sel.SelectPruned(dataDir, core.Window(cityArea, week))
	if err != nil {
		return err
	}
	fmt.Printf("selected %d of %d trajectories (read %d of %d partitions)\n",
		stats.SelectedRecords, stats.LoadedRecords,
		stats.LoadedPartitions, stats.TotalPartitions)

	// Stage 2 — Conversion: reorganize the trajectories into a raster of
	// (1/8-city cell × 1-day slot).
	raster := instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: cityArea, NX: 8, NY: 8},
		Time:  instance.TimeGrid{Window: week, NT: 7},
	}
	cells := convert.TrajToRaster(
		core.TrajInstances(recs),
		convert.RasterGridTarget(raster),
		convert.Auto,
		func(in []instance.Trajectory[instance.Unit, int64]) []instance.Trajectory[instance.Unit, int64] {
			return in
		})

	// Stage 3 — Extraction: the built-in raster speed extractor.
	speeds, ok := extract.RasterSpeed(cells, extract.KMH)
	if !ok {
		return fmt.Errorf("no data extracted")
	}
	var bestCount int64
	var bestIdx int
	for i, e := range speeds.Entries {
		if e.Value.Count > bestCount {
			bestCount, bestIdx = e.Value.Count, i
		}
	}
	e := speeds.Entries[bestIdx]
	fmt.Printf("busiest cell: %v during %v — %d vehicles, avg %.1f km/h\n",
		e.Spatial, e.Temporal, e.Value.Count, e.Value.Mean)
	fmt.Printf("engine metrics: %v\n", s.Metrics())
	return nil
}
