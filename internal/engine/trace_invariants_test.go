package engine

import (
	"strings"
	"testing"
	"time"

	"st4ml/internal/codec"
	"st4ml/internal/trace"
)

// TestTraceInvariantsUnderChaos runs a shuffle job under a seeded fault
// plan with retries and speculation enabled, then checks the span dump
// against the structural invariants the tracer promises: spans nest, every
// task commits exactly once, and the span-derived aggregates agree with the
// engine's own Metrics. Tracing must stay truthful precisely when the
// execution is messiest.
func TestTraceInvariantsUnderChaos(t *testing.T) {
	tr := trace.New()
	ctx := New(Config{
		Slots: 4, RetryBackoff: -1, Tracer: tr,
		Speculation: true, SpeculationQuantile: 0.3, SpeculationMultiplier: 1.5,
		SpeculationInterval: 100 * time.Microsecond,
		Faults: &FaultPlan{
			Seed: 11, FailRate: 0.15, CorruptRate: 0.2, MaxCorruptReads: 1,
			DelayTasks: map[int]time.Duration{2: 30 * time.Millisecond},
		},
	})
	r := Parallelize(ctx, seq(400), 8)
	out := PartitionBy(r, codec.Int, 8, func(v int) int { return v % 8 }).Collect()
	if len(out) != 400 {
		t.Fatalf("chaos run lost records: %d of 400", len(out))
	}

	spans := tr.Snapshot()
	snap := ctx.Metrics.Snapshot()
	if snap.TaskRetries == 0 {
		t.Error("fault plan injected no retries — chaos test is vacuous")
	}

	byID := map[trace.SpanID]trace.SpanRecord{}
	for _, s := range spans {
		byID[s.ID] = s
	}

	// Invariant 1: spans nest. Every child starts no earlier and ends no
	// later than its parent.
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("span %q has unknown parent %d", s.Name, s.Parent)
			continue
		}
		if s.Start.Before(p.Start) || s.End().After(p.End()) {
			t.Errorf("span %q [%v..%v] escapes parent %q [%v..%v]",
				s.Name, s.Start, s.End(), p.Name, p.Start, p.End())
		}
	}

	// Invariant 2: exactly one committed attempt span per (stage, task),
	// and committed spans total Metrics.TasksRun.
	committed := map[trace.SpanID]map[int64]int{} // stage span -> task -> commits
	var committedTotal, retrySpans, specWinSpans int64
	for _, s := range spans {
		if s.Name != trace.SpanTask {
			continue
		}
		task, _ := s.Int("task")
		attempt, _ := s.Int("attempt")
		if attempt > 0 {
			retrySpans++
		}
		if !s.BoolAttr("committed") {
			continue
		}
		committedTotal++
		if s.BoolAttr("speculative") {
			specWinSpans++
		}
		if committed[s.Parent] == nil {
			committed[s.Parent] = map[int64]int{}
		}
		committed[s.Parent][task]++
	}
	for stageID, tasks := range committed {
		stage := byID[stageID]
		want, _ := stage.Int("tasks")
		if int64(len(tasks)) != want {
			t.Errorf("stage %q: %d tasks committed, span says %d tasks",
				stage.Name, len(tasks), want)
		}
		for task, n := range tasks {
			if n != 1 {
				t.Errorf("stage %q task %d committed %d times", stage.Name, task, n)
			}
		}
	}
	if committedTotal != snap.TasksRun {
		t.Errorf("committed spans %d != Metrics.TasksRun %d", committedTotal, snap.TasksRun)
	}

	// Invariant 3: retry attempts and speculative wins match the counters
	// one for one.
	if retrySpans != snap.TaskRetries {
		t.Errorf("attempt>0 spans %d != Metrics.TaskRetries %d", retrySpans, snap.TaskRetries)
	}
	if specWinSpans != snap.SpeculativeWins {
		t.Errorf("speculative committed spans %d != Metrics.SpeculativeWins %d",
			specWinSpans, snap.SpeculativeWins)
	}

	// Invariant 4: each stage span's records attr equals the committed task
	// records beneath it and the StageStat the engine reported.
	stageStats := map[string]StageStat{}
	for _, st := range snap.Stages {
		stageStats[st.Name] = st
	}
	for _, s := range spans {
		if !strings.HasPrefix(s.Name, trace.SpanStagePrefix) {
			continue
		}
		spanRecs, _ := s.Int("records")
		var childRecs int64
		for _, c := range spans {
			if c.Parent == s.ID && c.Name == trace.SpanTask && c.BoolAttr("committed") {
				n, _ := c.Int("records")
				childRecs += n
			}
		}
		if spanRecs != childRecs {
			t.Errorf("stage %q: span records %d != committed task records %d",
				s.Name, spanRecs, childRecs)
		}
		st, ok := stageStats[strings.TrimPrefix(s.Name, trace.SpanStagePrefix)]
		if !ok {
			t.Errorf("stage span %q has no StageStat", s.Name)
			continue
		}
		if st.Records != spanRecs {
			t.Errorf("stage %q: span records %d != StageStat.Records %d",
				s.Name, spanRecs, st.Records)
		}
	}

	// Invariant 5: shuffle span byte/record totals equal the shuffle
	// counters (the write side is what Metrics charges).
	var wBytes, wRecs int64
	for _, s := range spans {
		if s.Name == trace.SpanShuffleWrite {
			b, _ := s.Int("bytes")
			r, _ := s.Int("records")
			wBytes += b
			wRecs += r
		}
	}
	if wBytes != snap.ShuffleBytes || wRecs != snap.ShuffleRecords {
		t.Errorf("shuffle:write spans %d bytes / %d records != Metrics %d / %d",
			wBytes, wRecs, snap.ShuffleBytes, snap.ShuffleRecords)
	}
}
