package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Fault tolerance. The engine survives three failure classes the way Spark
// does: transient task failures are retried with bounded attempts and
// exponential backoff, stragglers are raced against speculative duplicates
// (first finisher commits), and corrupt shuffle blocks are detected by
// checksum frames and re-read. A FaultPlan injects all three failure
// classes deterministically from a seed, so chaos runs are reproducible.

// TaskError reports a task that failed every allowed attempt, aborting its
// stage. It wraps the last attempt's error.
type TaskError struct {
	// Stage is the stage name the task belonged to.
	Stage string
	// Task is the task (partition) index.
	Task int
	// Attempts is how many times the task was tried.
	Attempts int
	// Err is the error from the final attempt.
	Err error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("engine: stage %q task %d failed after %d attempts: %v",
		e.Stage, e.Task, e.Attempts, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// Try runs fn, converting a job-abort panic (a *TaskError raised by an
// action after a task exhausted its attempts) into a returned error. Other
// panics propagate. It is the error boundary for callers of the
// panic-on-abort action API (Collect, Count, ...).
func Try(fn func()) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				var te *TaskError
				if errors.As(e, &te) {
					err = e
					return
				}
			}
			panic(rec)
		}
	}()
	fn()
	return nil
}

// FaultPlan deterministically injects faults into stage execution. Every
// decision is a pure function of (Seed, stage name, task index, attempt),
// so a chaos run is byte-for-byte reproducible regardless of scheduling or
// slot count. A nil *FaultPlan injects nothing.
type FaultPlan struct {
	// Seed drives every pseudo-random decision.
	Seed int64

	// FailRate is the probability that a task attempt fails with an
	// injected error. Injected failures only strike the first
	// MaxFailuresPerTask attempts, so rate-based faults are always
	// transient when MaxFailuresPerTask < Config.MaxTaskAttempts.
	FailRate float64
	// MaxFailuresPerTask caps injected failures per task. 0 means 3 (one
	// below the default MaxTaskAttempts of 4).
	MaxFailuresPerTask int

	// DelayRate is the probability that a task's non-speculative attempts
	// are slowed by up to MaxDelay — an injected straggler. Speculative
	// duplicates are exempt, modeling a relaunch on a healthy executor.
	DelayRate float64
	// MaxDelay bounds the injected straggler delay.
	MaxDelay time.Duration

	// CorruptRate is the probability that a shuffle-block read observes
	// flipped bytes. Injected corruption only strikes the first
	// MaxCorruptReads read attempts, so the block re-read recovers.
	CorruptRate float64
	// MaxCorruptReads caps injected corruptions per block. 0 means 2 (one
	// below the engine's read attempts per block).
	MaxCorruptReads int

	// FailTasks forces the first n attempts of a task index to fail in
	// every stage, regardless of FailRate. Values >= MaxTaskAttempts make
	// the task fail permanently — the job-abort path for tests.
	FailTasks map[int]int
	// DelayTasks forces a fixed delay on every non-speculative attempt of
	// a task index in every stage — a deterministic straggler.
	DelayTasks map[int]time.Duration
}

// u returns a uniform [0,1) value derived from the plan seed and the
// decision coordinates.
func (p *FaultPlan) u(salt byte, stage string, a, b, c int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.Seed))
	h.Write(buf[:])
	h.Write([]byte{salt})
	h.Write([]byte(stage))
	binary.LittleEndian.PutUint64(buf[:], uint64(a))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(b))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(c))
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// failTask reports whether the given attempt of a task should fail, as a
// non-nil injected error.
func (p *FaultPlan) failTask(stage string, task, attempt int) error {
	if p == nil {
		return nil
	}
	if n, ok := p.FailTasks[task]; ok && attempt < n {
		return fmt.Errorf("injected fault: task %d attempt %d", task, attempt)
	}
	if p.FailRate > 0 {
		cap := p.MaxFailuresPerTask
		if cap <= 0 {
			cap = 3
		}
		if attempt < cap && p.u('f', stage, task, attempt, 0) < p.FailRate {
			return fmt.Errorf("injected fault: task %d attempt %d", task, attempt)
		}
	}
	return nil
}

// taskDelay returns the injected straggler delay for a non-speculative
// attempt, or 0.
func (p *FaultPlan) taskDelay(stage string, task, attempt int) time.Duration {
	if p == nil {
		return 0
	}
	if d, ok := p.DelayTasks[task]; ok {
		return d
	}
	if p.DelayRate > 0 && p.MaxDelay > 0 {
		if p.u('d', stage, task, attempt, 0) < p.DelayRate {
			return time.Duration(p.u('D', stage, task, attempt, 0) * float64(p.MaxDelay))
		}
	}
	return 0
}

// corruptBlock reports whether the shuffle block from map partition src to
// reduce partition dst should be observed corrupted on this read attempt,
// and at which payload offset to flip a byte.
func (p *FaultPlan) corruptBlock(stage string, src, dst, attempt, blockLen int) (bool, int) {
	if p == nil || p.CorruptRate <= 0 || blockLen == 0 {
		return false, 0
	}
	cap := p.MaxCorruptReads
	if cap <= 0 {
		cap = 2
	}
	if attempt >= cap {
		return false, 0
	}
	if p.u('c', stage, src, dst, attempt) >= p.CorruptRate {
		return false, 0
	}
	return true, int(p.u('o', stage, src, dst, attempt) * float64(blockLen))
}
