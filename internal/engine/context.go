// Package engine is ST4ML's distributed dataflow substrate: an in-memory,
// Spark-like execution engine built from scratch on goroutines. It provides
// lazy generic RDDs with narrow transformations, keyed shuffles that pay an
// honest serialization cost through the binary codec, broadcast variables,
// and per-stage metrics.
//
// The engine stands in for Apache Spark in this reproduction (see
// DESIGN.md). A Context models a cluster: Slots is the total number of
// executor cores; every action schedules one task per partition onto the
// slot pool, so load imbalance across partitions lengthens the stage
// makespan exactly as it does on a real cluster.
//
// # Fault model
//
// Task execution is fault tolerant the way Spark's is, minus lineage
// recomputation (partitions are deterministic closures over in-memory
// parents, so re-running a task re-derives its input for free):
//
//   - A failed task attempt — a returned error, a panic in user code, or an
//     injected fault — is retried up to Config.MaxTaskAttempts times with
//     exponential backoff. Only when every attempt fails does the job abort,
//     with a *TaskError carrying the stage name and task index.
//   - With Config.Speculation enabled, once a stage is mostly complete a
//     task running far beyond the median task time gets a speculative
//     duplicate; whichever attempt finishes first commits its result, and
//     the loser's result is discarded. Commits are exactly-once per task.
//   - Shuffle blocks travel in length+checksum frames; a block that fails
//     verification is re-read before the task is failed.
//
// A deterministic FaultPlan (Config.Faults) injects all of these failure
// classes from a seed for reproducible chaos testing.
package engine

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"st4ml/internal/trace"
)

// Config sizes the simulated cluster and its fault-tolerance behavior.
type Config struct {
	// Slots is the number of concurrently executing tasks (cluster cores).
	// 0 means GOMAXPROCS.
	Slots int
	// DefaultParallelism is the partition count used when callers pass 0.
	// 0 means 2×Slots.
	DefaultParallelism int

	// MaxTaskAttempts bounds how many times a failing task is tried before
	// the job aborts (Spark's spark.task.maxFailures). 0 means 4.
	MaxTaskAttempts int
	// RetryBackoff is the sleep before a task's first retry, doubling on
	// each further retry. 0 means 1ms; negative disables backoff.
	RetryBackoff time.Duration

	// Speculation enables straggler mitigation: once SpeculationQuantile
	// of a stage's tasks have committed, any task running longer than
	// SpeculationMultiplier × the median committed task time gets one
	// speculative duplicate, and the first finisher commits.
	Speculation bool
	// SpeculationQuantile is the completed fraction required before
	// duplicates launch. 0 means 0.75.
	SpeculationQuantile float64
	// SpeculationMultiplier scales the median task time into the straggler
	// threshold. 0 means 1.5.
	SpeculationMultiplier float64
	// SpeculationInterval is the straggler check period. 0 means 1ms.
	SpeculationInterval time.Duration

	// Faults optionally injects deterministic failures, stragglers, and
	// shuffle corruption (see FaultPlan).
	Faults *FaultPlan

	// Tracer, when set, records a span per stage, task attempt, and shuffle
	// side (see package trace). Nil — the default — disables tracing at zero
	// cost: the no-op span path performs no allocations.
	Tracer *trace.Tracer
}

// Context owns the executor pool and metrics for one logical cluster. It is
// safe for concurrent use.
type Context struct {
	slots      int
	defaultPar int
	sem        chan struct{}
	// Metrics is shared by pointer so trace-scoped shallow copies of the
	// Context (WithTracer) aggregate into the same counters.
	Metrics *Metrics

	maxTaskAttempts int
	retryBackoff    time.Duration
	speculation     bool
	specQuantile    float64
	specMultiplier  float64
	specInterval    time.Duration
	faults          *FaultPlan

	tracer      *trace.Tracer
	traceParent trace.SpanID
}

// New creates a Context with the given config.
func New(cfg Config) *Context {
	slots := cfg.Slots
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	par := cfg.DefaultParallelism
	if par <= 0 {
		par = 2 * slots
	}
	attempts := cfg.MaxTaskAttempts
	if attempts <= 0 {
		attempts = 4
	}
	backoff := cfg.RetryBackoff
	if backoff == 0 {
		backoff = time.Millisecond
	} else if backoff < 0 {
		backoff = 0
	}
	quantile := cfg.SpeculationQuantile
	if quantile <= 0 {
		quantile = 0.75
	}
	multiplier := cfg.SpeculationMultiplier
	if multiplier <= 0 {
		multiplier = 1.5
	}
	interval := cfg.SpeculationInterval
	if interval <= 0 {
		interval = time.Millisecond
	}
	return &Context{
		slots:           slots,
		defaultPar:      par,
		sem:             make(chan struct{}, slots),
		Metrics:         new(Metrics),
		maxTaskAttempts: attempts,
		retryBackoff:    backoff,
		speculation:     cfg.Speculation,
		specQuantile:    quantile,
		specMultiplier:  multiplier,
		specInterval:    interval,
		faults:          cfg.Faults,
		tracer:          cfg.Tracer,
	}
}

// Slots returns the executor-core count.
func (c *Context) Slots() int { return c.slots }

// DefaultParallelism returns the default partition count.
func (c *Context) DefaultParallelism() int { return c.defaultPar }

// Tracer returns the context's tracer (nil when tracing is disabled).
func (c *Context) Tracer() *trace.Tracer { return c.tracer }

// TraceParent returns the span every stage of this context parents under.
func (c *Context) TraceParent() trace.SpanID { return c.traceParent }

// WithTracer returns a shallow copy of c that records spans on tr, parented
// under parent. The copy shares the slot pool, metrics, and fault plan, so
// concurrent queries can each carry their own trace scope while executing
// on one cluster. A nil tr returns c unchanged.
func (c *Context) WithTracer(tr *trace.Tracer, parent trace.SpanID) *Context {
	if tr == nil {
		return c
	}
	scoped := *c
	scoped.tracer = tr
	scoped.traceParent = parent
	return &scoped
}

// WithSpan scopes c under sp (see WithTracer). A nil span returns c
// unchanged, so call sites need no tracing-enabled branch.
func (c *Context) WithSpan(sp *trace.Span) *Context {
	if sp == nil {
		return c
	}
	return c.WithTracer(c.tracer, sp.ID())
}

// StartSpan begins a span under the context's trace parent. On an untraced
// context it returns the no-op nil span.
func (c *Context) StartSpan(name string, attrs ...trace.Attr) *trace.Span {
	return c.tracer.StartSpan(c.traceParent, name, attrs...)
}

// minSpeculationThreshold keeps near-zero medians from marking every
// still-running task a straggler.
const minSpeculationThreshold = time.Millisecond

// taskState tracks one task of a running stage.
type taskState struct {
	// start is the primary attempt's start time in unix nanos (atomic);
	// 0 until the task's goroutine begins running.
	start atomic.Int64
	// claimed flips true exactly once, by the attempt that wins the right
	// to commit; every other runner of the task then stands down.
	claimed atomic.Bool
	// committed flips true once the winning commit completed.
	committed atomic.Bool
	// dup records that a speculative duplicate was launched (stage mu).
	dup bool
	// err is the task's permanent failure, if any (stage mu).
	err *TaskError
}

// stageState is the shared bookkeeping of one runStage call.
type stageState struct {
	c     *Context
	name  string
	tasks int
	fn    func(task int) (commit func(), records int64, err error)
	span  *trace.Span

	mu        sync.Mutex
	completed int
	durations []time.Duration // committed attempt durations, for the median
	longest   time.Duration
	records   atomic.Int64 // records produced by committed tasks
	state     []taskState
	dupWG     sync.WaitGroup
}

// runStage executes fn for every task index in [0, tasks) on the slot pool
// and blocks until all complete. fn does the task's work and returns a
// commit closure that publishes its result plus the number of records the
// task produced; runStage guarantees the commit runs exactly once per task
// even when retries or speculative duplicates race. A task attempt that
// returns an error or panics is retried with backoff; a task whose every
// attempt fails aborts the stage with a *TaskError naming the task.
// Metrics are charged per committed task, and with a tracer configured the
// stage and every task attempt record spans.
func (c *Context) runStage(name string, tasks int, fn func(task int) (commit func(), records int64, err error)) error {
	if tasks == 0 {
		return nil
	}
	start := time.Now()
	st := &stageState{c: c, name: name, tasks: tasks, fn: fn, state: make([]taskState, tasks)}
	st.span = c.tracer.StartSpan(c.traceParent, trace.SpanStagePrefix+name, trace.Int("tasks", int64(tasks)))

	stop := make(chan struct{})
	var monWG sync.WaitGroup
	if c.speculation && tasks > 1 {
		monWG.Add(1)
		go func() {
			defer monWG.Done()
			ticker := time.NewTicker(c.specInterval)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					st.speculate()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		i := i
		c.sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer func() {
				<-c.sem
				wg.Done()
			}()
			st.state[i].start.Store(time.Now().UnixNano())
			st.runAttempts(i, false)
		}()
	}
	wg.Wait()
	close(stop)
	monWG.Wait()
	st.dupWG.Wait()

	var stageErr error
	for i := range st.state {
		if !st.state[i].committed.Load() {
			stageErr = st.state[i].err
			break
		}
	}
	recs := st.records.Load()
	st.span.End(trace.Int("records", recs))
	c.Metrics.addStage(StageStat{
		Name:        name,
		Tasks:       tasks,
		Records:     recs,
		Wall:        time.Since(start),
		LongestTask: st.longest,
	})
	return stageErr
}

// runAttempts drives one runner (primary or speculative duplicate) through
// the bounded retry loop for task i.
func (s *stageState) runAttempts(i int, speculative bool) {
	c := s.c
	ts := &s.state[i]
	var lastErr error
	for attempt := 0; attempt < c.maxTaskAttempts; attempt++ {
		if ts.claimed.Load() {
			return
		}
		if attempt > 0 {
			c.Metrics.taskRetries.Add(1)
			if c.retryBackoff > 0 {
				time.Sleep(c.retryBackoff << (attempt - 1))
			}
		}
		if !speculative {
			if d := c.faults.taskDelay(s.name, i, attempt); d > 0 {
				time.Sleep(d)
			}
		}
		// The attempt span starts after backoff/fault delays (so its duration
		// is actual task work) and after the retry metric above, keeping the
		// span count with attempt>0 equal to Metrics.TaskRetries.
		sp := s.span.Child(trace.SpanTask,
			trace.Int("task", int64(i)),
			trace.Int("attempt", int64(attempt)),
			trace.Bool("speculative", speculative))
		t0 := time.Now()
		commit, records, err := s.callTask(i, attempt)
		if err != nil {
			lastErr = err
			sp.End(trace.Bool("committed", false), trace.Str("error", err.Error()))
			continue
		}
		// Exactly-once commit: the first finisher claims the task; losers
		// discard their result. A panic inside the commit closure (user
		// code in ForeachPartition) is a permanent failure — the effect
		// may be partial, so it must not be retried.
		if !ts.claimed.CompareAndSwap(false, true) {
			sp.End(trace.Bool("committed", false))
			return
		}
		if cerr := runCommit(commit); cerr != nil {
			sp.End(trace.Bool("committed", false), trace.Str("error", cerr.Error()))
			s.mu.Lock()
			ts.err = &TaskError{Stage: s.name, Task: i, Attempts: attempt + 1, Err: cerr}
			s.mu.Unlock()
			return
		}
		d := time.Since(t0)
		ts.committed.Store(true)
		s.records.Add(records)
		sp.End(trace.Bool("committed", true), trace.Int("records", records))
		c.Metrics.tasksRun.Add(1)
		c.Metrics.taskNanos.Add(int64(d))
		if speculative {
			c.Metrics.specWins.Add(1)
		}
		s.mu.Lock()
		s.completed++
		s.durations = append(s.durations, d)
		if d > s.longest {
			s.longest = d
		}
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	if ts.err == nil {
		ts.err = &TaskError{Stage: s.name, Task: i, Attempts: c.maxTaskAttempts, Err: lastErr}
	}
	s.mu.Unlock()
}

// runCommit executes a task's commit closure, converting a panic into an
// error.
func runCommit(commit func()) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("commit panicked: %v", rec)
		}
	}()
	if commit != nil {
		commit()
	}
	return nil
}

// callTask runs one attempt of task i, converting panics and injected
// faults into errors.
func (s *stageState) callTask(i, attempt int) (commit func(), records int64, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			commit, records, err = nil, 0, fmt.Errorf("task %d panicked: %v", i, rec)
		}
	}()
	if err := s.c.faults.failTask(s.name, i, attempt); err != nil {
		return nil, 0, err
	}
	return s.fn(i)
}

// speculate is the straggler check: once enough tasks committed, any task
// running far past the median committed time gets one duplicate runner.
func (s *stageState) speculate() {
	s.mu.Lock()
	need := int(math.Ceil(s.c.specQuantile * float64(s.tasks)))
	if s.completed < need || s.completed == s.tasks || len(s.durations) == 0 {
		s.mu.Unlock()
		return
	}
	threshold := time.Duration(s.c.specMultiplier * float64(median(s.durations)))
	if threshold < minSpeculationThreshold {
		threshold = minSpeculationThreshold
	}
	now := time.Now().UnixNano()
	var launch []int
	for i := range s.state {
		ts := &s.state[i]
		if ts.claimed.Load() || ts.dup {
			continue
		}
		started := ts.start.Load()
		if started == 0 || time.Duration(now-started) <= threshold {
			continue
		}
		ts.dup = true
		s.dupWG.Add(1)
		launch = append(launch, i)
	}
	s.mu.Unlock()
	for _, i := range launch {
		i := i
		s.c.Metrics.specLaunched.Add(1)
		go func() {
			defer s.dupWG.Done()
			s.c.sem <- struct{}{}
			defer func() { <-s.c.sem }()
			s.runAttempts(i, true)
		}()
	}
}

// median returns the middle value of ds (not necessarily sorted).
func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// must panics with err — the job-abort path actions take when a stage
// fails permanently. Wrap action calls in Try to receive it as an error.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
