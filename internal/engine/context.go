// Package engine is ST4ML's distributed dataflow substrate: an in-memory,
// Spark-like execution engine built from scratch on goroutines. It provides
// lazy generic RDDs with narrow transformations, keyed shuffles that pay an
// honest serialization cost through the binary codec, broadcast variables,
// and per-stage metrics.
//
// The engine stands in for Apache Spark in this reproduction (see
// DESIGN.md). A Context models a cluster: Slots is the total number of
// executor cores; every action schedules one task per partition onto the
// slot pool, so load imbalance across partitions lengthens the stage
// makespan exactly as it does on a real cluster.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Config sizes the simulated cluster.
type Config struct {
	// Slots is the number of concurrently executing tasks (cluster cores).
	// 0 means GOMAXPROCS.
	Slots int
	// DefaultParallelism is the partition count used when callers pass 0.
	// 0 means 2×Slots.
	DefaultParallelism int
}

// Context owns the executor pool and metrics for one logical cluster. It is
// safe for concurrent use.
type Context struct {
	slots      int
	defaultPar int
	sem        chan struct{}
	Metrics    Metrics
}

// New creates a Context with the given config.
func New(cfg Config) *Context {
	slots := cfg.Slots
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	par := cfg.DefaultParallelism
	if par <= 0 {
		par = 2 * slots
	}
	return &Context{
		slots:      slots,
		defaultPar: par,
		sem:        make(chan struct{}, slots),
	}
}

// Slots returns the executor-core count.
func (c *Context) Slots() int { return c.slots }

// DefaultParallelism returns the default partition count.
func (c *Context) DefaultParallelism() int { return c.defaultPar }

// taskPanic wraps a panic raised inside a task with its task index so the
// failure surfaces with context instead of a bare goroutine crash.
type taskPanic struct {
	task int
	val  any
}

func (p taskPanic) Error() string { return fmt.Sprintf("engine: task %d panicked: %v", p.task, p.val) }

// runStage executes fn for every task index in [0, tasks) on the slot pool
// and blocks until all complete. A panic in any task is re-raised on the
// caller with the task index attached. Metrics are charged per task.
func (c *Context) runStage(name string, tasks int, fn func(task int)) {
	if tasks == 0 {
		return
	}
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failure *taskPanic
	var longest time.Duration
	wg.Add(tasks)
	for i := 0; i < tasks; i++ {
		i := i
		c.sem <- struct{}{}
		go func() {
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if failure == nil {
						failure = &taskPanic{task: i, val: r}
					}
					mu.Unlock()
				}
				<-c.sem
				wg.Done()
			}()
			t0 := time.Now()
			fn(i)
			d := time.Since(t0)
			c.Metrics.tasksRun.Add(1)
			c.Metrics.taskNanos.Add(int64(d))
			mu.Lock()
			if d > longest {
				longest = d
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	c.Metrics.addStage(StageStat{
		Name:        name,
		Tasks:       tasks,
		Wall:        time.Since(start),
		LongestTask: longest,
	})
	if failure != nil {
		panic(*failure)
	}
}
