package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"st4ml/internal/codec"
)

// Chaos suite: for seeded FaultPlans with fault rates up to 30%, every
// action must return byte-identical results to a fault-free run, across
// slot counts — the property Spark's task re-execution guarantees and this
// engine must preserve.

// chaosData builds a deterministic skewed dataset for a seed.
func chaosData(seed int64, n int) []codec.Pair[int64, int64] {
	rng := rand.New(rand.NewSource(seed))
	out := make([]codec.Pair[int64, int64], n)
	for i := range out {
		// Zipf-ish key skew so reduce partitions are imbalanced.
		key := int64(rng.Intn(1 + rng.Intn(50)))
		out[i] = codec.KV(key, int64(rng.Intn(1000)))
	}
	return out
}

// encodePartitions canonicalizes job output to bytes: each partition's
// records are encoded in order, partitions concatenated with separators.
func encodePartitions[T any](c codec.Codec[T], parts [][]T) []byte {
	w := codec.NewWriter(1 << 12)
	for _, part := range parts {
		w.PutUvarint(uint64(len(part)))
		for _, v := range part {
			c.Enc(w, v)
		}
	}
	return append([]byte(nil), w.Bytes()...)
}

// encodeSortedPairs canonicalizes keyed output whose order is
// map-iteration-dependent: sort by encoded record bytes, then concatenate.
func encodeSortedPairs[T any](c codec.Codec[T], recs []T) []byte {
	encs := make([][]byte, len(recs))
	for i, v := range recs {
		encs[i] = codec.Marshal(c, v)
	}
	sort.Slice(encs, func(i, j int) bool { return bytes.Compare(encs[i], encs[j]) < 0 })
	return bytes.Join(encs, []byte{0xFF})
}

// chaosPlan builds a FaultPlan exercising every injection class at up to a
// 30% transient task-failure rate.
func chaosPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		Seed:        seed,
		FailRate:    0.3,
		DelayRate:   0.1,
		MaxDelay:    3 * time.Millisecond,
		CorruptRate: 0.3,
	}
}

func chaosCtx(slots int, plan *FaultPlan) *Context {
	return New(Config{
		Slots: slots, DefaultParallelism: 8,
		RetryBackoff:          -1,
		Speculation:           plan != nil,
		SpeculationQuantile:   0.5,
		SpeculationMultiplier: 1.5,
		SpeculationInterval:   200 * time.Microsecond,
		Faults:                plan,
	})
}

// chaosActions runs every engine action over the same logical pipeline on
// ctx and returns the canonical bytes of each action's result.
func chaosActions(ctx *Context, seed int64) map[string][]byte {
	pc := codec.PairOf(codec.Int64, codec.Int64)
	data := chaosData(seed, 2000)
	out := map[string][]byte{}

	base := Parallelize(ctx, data, 16)
	mapped := Map(base, func(p codec.Pair[int64, int64]) codec.Pair[int64, int64] {
		return codec.KV(p.Key, p.Value*2+1)
	})

	// Collect over a narrow pipeline: order fully deterministic.
	out["collect"] = encodePartitions(pc, [][]codec.Pair[int64, int64]{mapped.Collect()})

	// PartitionBy: per-partition record order is deterministic.
	shuffled := PartitionBy(mapped, pc, 8, func(p codec.Pair[int64, int64]) int {
		return int(p.Key % 8)
	})
	out["partitionBy"] = encodePartitions(pc, shuffled.CollectPartitions())

	// ReduceByKey: record order within a partition is map-iteration
	// dependent, so canonicalize by sorting encoded records.
	reduced := ReduceByKey(mapped, codec.Int64, codec.Int64,
		func(a, b int64) int64 { return a + b }, 8)
	out["reduceByKey"] = encodeSortedPairs(pc, reduced.Collect())

	// GroupByKey: values arrive in deterministic shuffle order; key order
	// needs the same canonicalization.
	grouped := GroupByKey(mapped, codec.Int64, codec.Int64, 8)
	gc := codec.PairOf(codec.Int64, codec.SliceOf(codec.Int64))
	out["groupByKey"] = encodeSortedPairs(gc, grouped.Collect())

	// Count through an aggregate for good measure.
	out["count"] = []byte(fmt.Sprint(mapped.Count()))
	return out
}

func TestChaosActionsMatchFaultFreeRuns(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		want := chaosActions(chaosCtx(4, nil), seed)
		for _, slots := range []int{1, 2, 8} {
			ctx := chaosCtx(slots, chaosPlan(seed))
			got := chaosActions(ctx, seed)
			for action, wantBytes := range want {
				if !bytes.Equal(got[action], wantBytes) {
					t.Errorf("seed=%d slots=%d action=%s: chaos result differs from fault-free run",
						seed, slots, action)
				}
			}
			snap := ctx.Metrics.Snapshot()
			if snap.TaskRetries == 0 {
				t.Errorf("seed=%d slots=%d: no retries recorded at 30%% fault rate", seed, slots)
			}
			if snap.CorruptRereads == 0 {
				t.Errorf("seed=%d slots=%d: no corrupt-block rereads recorded", seed, slots)
			}
		}
	}
}

func TestChaosSpeculationCountersNonzero(t *testing.T) {
	// Straggler injection with many tasks and spare slots: across the
	// whole suite at least one speculative duplicate must launch (and the
	// result must still be exact).
	plan := &FaultPlan{Seed: 9, DelayRate: 0.15, MaxDelay: 30 * time.Millisecond}
	ctx := chaosCtx(8, plan)
	want := chaosActions(chaosCtx(8, nil), 9)
	got := chaosActions(ctx, 9)
	for action, wantBytes := range want {
		if !bytes.Equal(got[action], wantBytes) {
			t.Errorf("action %s differs under straggler injection", action)
		}
	}
	snap := ctx.Metrics.Snapshot()
	if snap.SpeculativeLaunched == 0 {
		t.Error("no speculative duplicates launched under straggler injection")
	}
}

func TestChaosDeterministicAcrossRuns(t *testing.T) {
	// The same seed must produce the same metrics-relevant fault decisions
	// and identical results on repeated runs.
	a := chaosActions(chaosCtx(4, chaosPlan(11)), 11)
	b := chaosActions(chaosCtx(4, chaosPlan(11)), 11)
	for action := range a {
		if !bytes.Equal(a[action], b[action]) {
			t.Errorf("action %s not reproducible across identical chaos runs", action)
		}
	}
}
