package engine

import (
	"strings"
	"sync"
	"testing"

	"st4ml/internal/codec"
)

// TestMetricsConcurrentJobs hammers one Metrics value from many jobs running
// in parallel — Snapshot and Reset interleave with counter updates and
// addStage. Run under -race this is the concurrency-safety check for the
// metrics layer.
func TestMetricsConcurrentJobs(t *testing.T) {
	ctx := New(Config{Slots: 8, DefaultParallelism: 4, RetryBackoff: -1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				r := Parallelize(ctx, seq(64), 4)
				_ = PartitionBy(r, codec.Int, 4, func(v int) int { return v % 4 }).Collect()
				_ = ctx.Metrics.Snapshot()
				if g == 0 && i%3 == 0 {
					ctx.Metrics.Reset()
				}
			}
		}(g)
	}
	wg.Wait()
	// Post-quiescence: counters and stages must be internally readable.
	snap := ctx.Metrics.Snapshot()
	if snap.TasksRun < 0 {
		t.Errorf("TasksRun negative: %d", snap.TasksRun)
	}
}

func TestSnapshotStringIncludesFaultCounters(t *testing.T) {
	var m Metrics
	m.taskRetries.Store(3)
	m.specLaunched.Store(2)
	m.specWins.Store(1)
	m.corruptRereads.Store(4)
	s := m.Snapshot().String()
	for _, want := range []string{"retries=3", "speculated=2", "specWins=1", "corruptRereads=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("Snapshot.String() missing %q: %s", want, s)
		}
	}
}

func TestMetricsResetClearsFaultCounters(t *testing.T) {
	var m Metrics
	m.taskRetries.Store(5)
	m.specLaunched.Store(5)
	m.specWins.Store(5)
	m.corruptRereads.Store(5)
	m.AddBlockRead(3, 2, 1000)
	m.addStage(StageStat{Name: "s"})
	m.Reset()
	snap := m.Snapshot()
	if snap.TaskRetries != 0 || snap.SpeculativeLaunched != 0 ||
		snap.SpeculativeWins != 0 || snap.CorruptRereads != 0 || len(snap.Stages) != 0 ||
		snap.BlocksScanned != 0 || snap.BlocksPruned != 0 || snap.BytesDecompressed != 0 {
		t.Errorf("Reset left residue: %+v", snap)
	}
}

func TestAddBlockReadAccumulates(t *testing.T) {
	var m Metrics
	m.AddBlockRead(4, 12, 4096)
	m.AddBlockRead(1, 0, 512)
	snap := m.Snapshot()
	if snap.BlocksScanned != 5 || snap.BlocksPruned != 12 || snap.BytesDecompressed != 4608 {
		t.Errorf("block counters = %+v", snap)
	}
	s := snap.String()
	for _, want := range []string{"blocksScanned=5", "blocksPruned=12", "bytesDecompressed=4608"} {
		if !strings.Contains(s, want) {
			t.Errorf("Snapshot.String() missing %q: %s", want, s)
		}
	}
}
