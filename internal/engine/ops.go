package engine

import (
	"sort"

	"st4ml/internal/codec"
)

// Additional RDD operators: keyed joins, distinct, sort, and the pair
// helpers application code composes. All shuffling operators pay the same
// codec serialization toll as the core shuffles.

// MapValues transforms the value side of a pair RDD, keeping keys (a
// narrow, shuffle-free operation).
func MapValues[K, V1, V2 any](
	r *RDD[codec.Pair[K, V1]],
	f func(V1) V2,
) *RDD[codec.Pair[K, V2]] {
	return Map(r, func(p codec.Pair[K, V1]) codec.Pair[K, V2] {
		return codec.KV(p.Key, f(p.Value))
	})
}

// Keys projects the keys of a pair RDD.
func Keys[K, V any](r *RDD[codec.Pair[K, V]]) *RDD[K] {
	return Map(r, func(p codec.Pair[K, V]) K { return p.Key })
}

// Values projects the values of a pair RDD.
func Values[K, V any](r *RDD[codec.Pair[K, V]]) *RDD[V] {
	return Map(r, func(p codec.Pair[K, V]) V { return p.Value })
}

// CountByKey returns the number of pairs per key, computed with a
// map-side-combining shuffle.
func CountByKey[K comparable, V any](
	r *RDD[codec.Pair[K, V]],
	kc codec.Codec[K],
	nOut int,
) map[K]int64 {
	ones := Map(r, func(p codec.Pair[K, V]) codec.Pair[K, int64] {
		return codec.KV(p.Key, int64(1))
	})
	counts := ReduceByKey(ones, kc, codec.Int64,
		func(a, b int64) int64 { return a + b }, nOut)
	out := map[K]int64{}
	for _, p := range counts.Collect() {
		out[p.Key] = p.Value
	}
	return out
}

// Join inner-joins two pair RDDs on their keys, producing one output pair
// per matching (left, right) combination. Both sides shuffle by key hash
// into nOut partitions, then each partition hash-joins locally.
func Join[K comparable, V, W any](
	left *RDD[codec.Pair[K, V]],
	right *RDD[codec.Pair[K, W]],
	kc codec.Codec[K],
	vc codec.Codec[V],
	wc codec.Codec[W],
	nOut int,
) *RDD[codec.Pair[K, codec.Pair[V, W]]] {
	if nOut <= 0 {
		nOut = left.ctx.defaultPar
	}
	route := func(k K) int { return keyBucket(kc, k, nOut) }
	lp := PartitionBy(left, codec.PairOf(kc, vc), nOut,
		func(p codec.Pair[K, V]) int { return route(p.Key) })
	rp := PartitionBy(right, codec.PairOf(kc, wc), nOut,
		func(p codec.Pair[K, W]) int { return route(p.Key) })
	out := &RDD[codec.Pair[K, codec.Pair[V, W]]]{
		ctx: left.ctx, name: left.name + ".join", parts: nOut,
		parents: []preparable{lp, rp},
		compute: func(p int) []codec.Pair[K, codec.Pair[V, W]] {
			lhs := lp.computePartition(p)
			rhs := rp.computePartition(p)
			byKey := make(map[K][]V, len(lhs))
			for _, l := range lhs {
				byKey[l.Key] = append(byKey[l.Key], l.Value)
			}
			var joined []codec.Pair[K, codec.Pair[V, W]]
			for _, r := range rhs {
				for _, v := range byKey[r.Key] {
					joined = append(joined, codec.KV(r.Key, codec.KV(v, r.Value)))
				}
			}
			return joined
		},
	}
	return out
}

// Distinct removes duplicates (by codec encoding) with a hash shuffle so
// equal records co-locate, then per-partition dedup.
func Distinct[T any](r *RDD[T], c codec.Codec[T], nOut int) *RDD[T] {
	shuffled := HashPartitionBy(r, c, nOut)
	return MapPartitions(shuffled, func(_ int, in []T) []T {
		seen := make(map[string]bool, len(in))
		out := make([]T, 0, len(in))
		for _, v := range in {
			key := string(codec.Marshal(c, v))
			if !seen[key] {
				seen[key] = true
				out = append(out, v)
			}
		}
		return out
	})
}

// SortBy globally sorts the RDD by a float64 sort key using range
// partitioning: sampled quantile boundaries route records to ordered
// partitions, each of which sorts locally — so Collect returns a totally
// ordered sequence.
func SortBy[T any](r *RDD[T], c codec.Codec[T], key func(T) float64, nOut int, seed int64) *RDD[T] {
	if nOut <= 0 {
		nOut = r.ctx.defaultPar
	}
	sample := Map(r.Sample(0.05, seed), key).Collect()
	if len(sample) == 0 {
		sample = Map(r, key).Collect()
	}
	sort.Float64s(sample)
	bounds := make([]float64, 0, nOut-1)
	for i := 1; i < nOut; i++ {
		idx := i * len(sample) / nOut
		if idx < len(sample) {
			bounds = append(bounds, sample[idx])
		}
	}
	ranged := PartitionBy(r, c, len(bounds)+1, func(v T) int {
		k := key(v)
		// First boundary greater than k decides the partition.
		lo, hi := 0, len(bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if k < bounds[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	})
	return MapPartitions(ranged, func(_ int, in []T) []T {
		out := append([]T(nil), in...)
		sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
		return out
	})
}

// Take returns up to n leading elements (in partition order) without
// materializing the whole RDD beyond the needed partitions.
func (r *RDD[T]) Take(n int) []T {
	if n <= 0 {
		return nil
	}
	must(r.prepare())
	out := make([]T, 0, n)
	for p := 0; p < r.parts && len(out) < n; p++ {
		part := r.computePartition(p)
		need := n - len(out)
		if need > len(part) {
			need = len(part)
		}
		out = append(out, part[:need]...)
	}
	return out
}

// First returns the first element, with ok=false for an empty RDD.
func (r *RDD[T]) First() (T, bool) {
	got := r.Take(1)
	if len(got) == 0 {
		var zero T
		return zero, false
	}
	return got[0], true
}

// Zip pairs the i-th elements of two RDDs with identical partitioning
// (same partition count and per-partition lengths); it panics otherwise,
// matching Spark's contract.
func Zip[A, B any](a *RDD[A], b *RDD[B]) *RDD[codec.Pair[A, B]] {
	if a.parts != b.parts {
		panic("engine: Zip of RDDs with different partition counts")
	}
	return &RDD[codec.Pair[A, B]]{
		ctx: a.ctx, name: a.name + ".zip", parts: a.parts,
		parents: []preparable{a, b},
		compute: func(p int) []codec.Pair[A, B] {
			as := a.computePartition(p)
			bs := b.computePartition(p)
			if len(as) != len(bs) {
				panic("engine: Zip of partitions with different lengths")
			}
			out := make([]codec.Pair[A, B], len(as))
			for i := range as {
				out[i] = codec.KV(as[i], bs[i])
			}
			return out
		},
	}
}
