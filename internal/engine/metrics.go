package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates execution counters for a Context. All fields are safe
// for concurrent update; Snapshot returns a consistent-enough copy for
// reporting (individual counters are atomic; cross-counter consistency is
// not guaranteed mid-job).
type Metrics struct {
	tasksRun       atomic.Int64
	recordsOut     atomic.Int64
	shuffleRecords atomic.Int64
	shuffleBytes   atomic.Int64
	broadcasts     atomic.Int64
	broadcastBytes atomic.Int64
	taskNanos      atomic.Int64
	taskRetries    atomic.Int64
	specLaunched   atomic.Int64
	specWins       atomic.Int64
	corruptRereads atomic.Int64

	// Block-level read accounting (storage format v2): how many partition
	// blocks were decoded versus skipped by footer-bounds pruning, and the
	// decompressed byte volume actually decoded.
	blocksScanned     atomic.Int64
	blocksPruned      atomic.Int64
	bytesDecompressed atomic.Int64
	recordsPruned     atomic.Int64

	// Delta-layer accounting: delta files unioned into partition reads
	// (merge-on-read), the records they contributed, and compactor partition
	// rewrites observed by this context.
	deltasRead   atomic.Int64
	deltaRecords atomic.Int64
	compactions  atomic.Int64

	// Approximate-tier accounting: queries answered from summary sidecars,
	// the block summaries they consumed, and the blocks/records they still
	// scanned exactly (boundary blocks, deltas, fallbacks).
	approxQueries        atomic.Int64
	approxSummaryBlocks  atomic.Int64
	approxScannedBlocks  atomic.Int64
	approxScannedRecords atomic.Int64

	// Point-pattern accounting: rim points duplicated to neighboring
	// partitions by the halo exchange (and their encoded byte volume), plus
	// the candidate pairs the neighborhood counters tested and the
	// (pair, grid-cell) matches they recorded.
	haloPoints   atomic.Int64
	haloBytes    atomic.Int64
	pairsTested  atomic.Int64
	pairsCounted atomic.Int64

	stageMu       sync.Mutex
	stages        []StageStat
	stagesDropped int64
}

// AddBlockRead accounts one partition read at block granularity: scanned
// and pruned block counts plus decompressed payload bytes. Callers sit in
// the storage read path (selection load tasks, the serving cache loader).
func (m *Metrics) AddBlockRead(scanned, pruned, rawBytes int64) {
	m.blocksScanned.Add(scanned)
	m.blocksPruned.Add(pruned)
	m.bytesDecompressed.Add(rawBytes)
}

// AddRecordsPruned accounts records the v3 columnar predicate dropped on
// decoded columns before materialization.
func (m *Metrics) AddRecordsPruned(n int64) {
	m.recordsPruned.Add(n)
}

// AddDeltaRead accounts one merge-on-read partition read: how many delta
// files were unioned into the base and the records they contributed.
func (m *Metrics) AddDeltaRead(files, records int64) {
	m.deltasRead.Add(files)
	m.deltaRecords.Add(records)
}

// AddCompaction accounts compactor partition rewrites.
func (m *Metrics) AddCompaction(partitions int64) {
	m.compactions.Add(partitions)
}

// AddApprox accounts one approximate (summary-tier) query evaluation: the
// block summaries consumed and the blocks/records scanned exactly. The
// totals match the query's Result provenance, so explain output, result
// envelopes, and engine metrics agree.
func (m *Metrics) AddApprox(summaryBlocks, scannedBlocks, scannedRecords int64) {
	m.approxQueries.Add(1)
	m.approxSummaryBlocks.Add(summaryBlocks)
	m.approxScannedBlocks.Add(scannedBlocks)
	m.approxScannedRecords.Add(scannedRecords)
}

// AddHaloExchange accounts one partition halo exchange: the rim points
// duplicated to spatio-temporal neighbor partitions and their encoded byte
// volume (a subset of the shuffle counters, tracked separately so the cost
// of boundary correction is visible on its own).
func (m *Metrics) AddHaloExchange(points, bytes int64) {
	m.haloPoints.Add(points)
	m.haloBytes.Add(bytes)
}

// AddPairCount accounts one neighborhood pair-counting stage: candidate
// pairs whose distance predicate was evaluated, and pair matches recorded
// into the statistic's grid.
func (m *Metrics) AddPairCount(tested, counted int64) {
	m.pairsTested.Add(tested)
	m.pairsCounted.Add(counted)
}

// maxStageStats bounds the retained per-stage history. A long-running
// process (the serving daemon) executes stages indefinitely; only the most
// recent window is kept, and StagesDropped counts what aged out. The
// headline counters are unaffected — they aggregate every stage ever run.
const maxStageStats = 4096

// StageStat records one executed stage: its name, task count, wall-clock
// duration, and the makespan-relevant longest task.
type StageStat struct {
	Name        string
	Tasks       int
	Wall        time.Duration
	LongestTask time.Duration
	Records     int64
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	TasksRun       int64
	RecordsOut     int64
	ShuffleRecords int64
	ShuffleBytes   int64
	Broadcasts     int64
	BroadcastBytes int64
	TaskTime       time.Duration
	// TaskRetries counts task attempts re-run after a failed attempt.
	TaskRetries int64
	// SpeculativeLaunched counts straggler duplicates launched.
	SpeculativeLaunched int64
	// SpeculativeWins counts tasks whose speculative duplicate committed
	// first.
	SpeculativeWins int64
	// CorruptRereads counts shuffle blocks re-read after a checksum
	// mismatch.
	CorruptRereads int64
	// BlocksScanned and BlocksPruned count storage-v2 partition blocks
	// decoded versus skipped by footer-bounds pruning; BytesDecompressed
	// is the raw payload volume of the scanned blocks.
	BlocksScanned     int64
	BlocksPruned      int64
	BytesDecompressed int64
	// RecordsPruned counts records the v3 columnar predicate dropped on
	// decoded lon/lat/t columns before materialization.
	RecordsPruned int64
	// DeltasRead counts delta files unioned into partition reads and
	// DeltaRecords the records they contributed; Compactions counts
	// compactor partition rewrites.
	DeltasRead   int64
	DeltaRecords int64
	Compactions  int64
	// Approximate-tier counters: queries answered through the summary
	// sidecar path, block summaries consumed, blocks and records scanned
	// exactly alongside them.
	ApproxQueries        int64
	ApproxSummaryBlocks  int64
	ApproxScannedBlocks  int64
	ApproxScannedRecords int64
	// Point-pattern counters: rim points (and encoded bytes) duplicated by
	// halo exchanges, candidate pairs tested by neighborhood counters, and
	// (pair, grid-cell) matches recorded.
	HaloPoints   int64
	HaloBytes    int64
	PairsTested  int64
	PairsCounted int64
	// Stages holds the most recent executed stages (bounded window);
	// StagesDropped counts older entries that aged out of it.
	Stages        []StageStat
	StagesDropped int64
}

// Snapshot returns a copy of the current counters.
func (m *Metrics) Snapshot() Snapshot {
	m.stageMu.Lock()
	stages := make([]StageStat, len(m.stages))
	copy(stages, m.stages)
	dropped := m.stagesDropped
	m.stageMu.Unlock()
	return Snapshot{
		TasksRun:             m.tasksRun.Load(),
		RecordsOut:           m.recordsOut.Load(),
		ShuffleRecords:       m.shuffleRecords.Load(),
		ShuffleBytes:         m.shuffleBytes.Load(),
		Broadcasts:           m.broadcasts.Load(),
		BroadcastBytes:       m.broadcastBytes.Load(),
		TaskTime:             time.Duration(m.taskNanos.Load()),
		TaskRetries:          m.taskRetries.Load(),
		SpeculativeLaunched:  m.specLaunched.Load(),
		SpeculativeWins:      m.specWins.Load(),
		CorruptRereads:       m.corruptRereads.Load(),
		BlocksScanned:        m.blocksScanned.Load(),
		BlocksPruned:         m.blocksPruned.Load(),
		BytesDecompressed:    m.bytesDecompressed.Load(),
		RecordsPruned:        m.recordsPruned.Load(),
		DeltasRead:           m.deltasRead.Load(),
		DeltaRecords:         m.deltaRecords.Load(),
		Compactions:          m.compactions.Load(),
		ApproxQueries:        m.approxQueries.Load(),
		ApproxSummaryBlocks:  m.approxSummaryBlocks.Load(),
		ApproxScannedBlocks:  m.approxScannedBlocks.Load(),
		ApproxScannedRecords: m.approxScannedRecords.Load(),
		HaloPoints:           m.haloPoints.Load(),
		HaloBytes:            m.haloBytes.Load(),
		PairsTested:          m.pairsTested.Load(),
		PairsCounted:         m.pairsCounted.Load(),
		Stages:               stages,
		StagesDropped:        dropped,
	}
}

// Reset zeroes every counter. Benchmarks call it between runs.
func (m *Metrics) Reset() {
	m.tasksRun.Store(0)
	m.recordsOut.Store(0)
	m.shuffleRecords.Store(0)
	m.shuffleBytes.Store(0)
	m.broadcasts.Store(0)
	m.broadcastBytes.Store(0)
	m.taskNanos.Store(0)
	m.taskRetries.Store(0)
	m.specLaunched.Store(0)
	m.specWins.Store(0)
	m.corruptRereads.Store(0)
	m.blocksScanned.Store(0)
	m.blocksPruned.Store(0)
	m.bytesDecompressed.Store(0)
	m.recordsPruned.Store(0)
	m.deltasRead.Store(0)
	m.deltaRecords.Store(0)
	m.compactions.Store(0)
	m.approxQueries.Store(0)
	m.approxSummaryBlocks.Store(0)
	m.approxScannedBlocks.Store(0)
	m.approxScannedRecords.Store(0)
	m.haloPoints.Store(0)
	m.haloBytes.Store(0)
	m.pairsTested.Store(0)
	m.pairsCounted.Store(0)
	m.stageMu.Lock()
	m.stages = nil
	m.stagesDropped = 0
	m.stageMu.Unlock()
}

func (m *Metrics) addStage(s StageStat) {
	m.stageMu.Lock()
	m.stages = append(m.stages, s)
	if len(m.stages) > maxStageStats {
		drop := len(m.stages) - maxStageStats
		m.stages = append(m.stages[:0], m.stages[drop:]...)
		m.stagesDropped += int64(drop)
	}
	m.stageMu.Unlock()
}

// String formats the headline counters on one line.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"tasks=%d records=%d shuffleRecords=%d shuffleBytes=%d broadcasts=%d taskTime=%s"+
			" retries=%d speculated=%d specWins=%d corruptRereads=%d"+
			" blocksScanned=%d blocksPruned=%d bytesDecompressed=%d recordsPruned=%d"+
			" deltasRead=%d deltaRecords=%d compactions=%d"+
			" approxQueries=%d approxSummaryBlocks=%d approxScannedBlocks=%d approxScannedRecords=%d"+
			" haloPoints=%d haloBytes=%d pairsTested=%d pairsCounted=%d",
		s.TasksRun, s.RecordsOut, s.ShuffleRecords, s.ShuffleBytes, s.Broadcasts, s.TaskTime,
		s.TaskRetries, s.SpeculativeLaunched, s.SpeculativeWins, s.CorruptRereads,
		s.BlocksScanned, s.BlocksPruned, s.BytesDecompressed, s.RecordsPruned,
		s.DeltasRead, s.DeltaRecords, s.Compactions,
		s.ApproxQueries, s.ApproxSummaryBlocks, s.ApproxScannedBlocks, s.ApproxScannedRecords,
		s.HaloPoints, s.HaloBytes, s.PairsTested, s.PairsCounted)
}
