package engine

// BVar is a broadcast variable: one immutable value shared by every task,
// mirroring Spark's broadcast. ST4ML broadcasts the (empty) collective
// structure and its R-tree index to all executors during conversion
// (§3.2.2, §4.2), which this models.
type BVar[T any] struct {
	value T
}

// Broadcast registers v as a broadcast variable, charging approxBytes to
// the broadcast-traffic metric (once per executor slot, as a cluster would
// ship one copy per executor). Pass 0 when the size is unknown.
func Broadcast[T any](ctx *Context, v T, approxBytes int64) *BVar[T] {
	ctx.Metrics.broadcasts.Add(1)
	ctx.Metrics.broadcastBytes.Add(approxBytes * int64(ctx.slots))
	return &BVar[T]{value: v}
}

// Value returns the broadcast value. Tasks must not mutate it.
func (b *BVar[T]) Value() T { return b.value }
