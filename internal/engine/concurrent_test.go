package engine

import (
	"fmt"
	"sync"
	"testing"

	"st4ml/internal/codec"
)

// TestConcurrentJobsOnSharedContext is the serving-tier contract: many
// goroutines submit independent jobs to one Context and every job must see
// exactly its own results, race-clean under -race. This is the multi-job
// concurrency the stserved daemon leans on.
func TestConcurrentJobsOnSharedContext(t *testing.T) {
	ctx := New(Config{Slots: 4})
	const jobs = 16
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			n := 200 + j // distinct sizes so cross-job mixups are visible
			data := make([]int64, n)
			var want int64
			for i := range data {
				data[i] = int64(j*100_000 + i)
				want += data[i]
			}
			rdd := Parallelize(ctx, data, 8)

			// Collect: every element, in order.
			got := rdd.Collect()
			if len(got) != n {
				t.Errorf("job %d: collected %d elements, want %d", j, len(got), n)
				return
			}
			for i, v := range got {
				if v != data[i] {
					t.Errorf("job %d: element %d = %d, want %d", j, i, v, data[i])
					return
				}
			}

			// ReduceByKey through the shuffle path: per-residue sums.
			pairs := Map(rdd, func(v int64) codec.Pair[int64, int64] {
				return codec.KV(v%7, v)
			})
			reduced := ReduceByKey(pairs, codec.Int64, codec.Int64,
				func(a, b int64) int64 { return a + b }, 4)
			var total int64
			for _, p := range reduced.Collect() {
				total += p.Value
			}
			if total != want {
				t.Errorf("job %d: reduced total = %d, want %d", j, total, want)
			}
		}(j)
	}
	wg.Wait()

	snap := ctx.Metrics.Snapshot()
	if snap.TasksRun == 0 {
		t.Error("no tasks recorded")
	}
}

// TestConcurrentActionsOnSharedRDD runs actions on one cached RDD from many
// goroutines: materialization must happen once and all readers agree.
func TestConcurrentActionsOnSharedRDD(t *testing.T) {
	ctx := New(Config{Slots: 4})
	var computes sync.Map
	base := Generate(ctx, "gen", 8, func(p int) []int {
		if _, loaded := computes.LoadOrStore(p, true); loaded {
			t.Errorf("partition %d computed twice", p)
		}
		out := make([]int, 100)
		for i := range out {
			out[i] = p*100 + i
		}
		return out
	})
	cached := base.Cache()

	const readers = 12
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if n := cached.Count(); n != 800 {
				t.Errorf("count = %d, want 800", n)
			}
			sum, _ := Map(cached, func(v int) int64 { return int64(v) }).
				Reduce(func(a, b int64) int64 { return a + b })
			if sum != 319600 { // sum of 0..799
				t.Errorf("sum = %d, want 319600", sum)
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentJobsWithFailuresIsolated checks that a job whose tasks fail
// permanently aborts alone: concurrent healthy jobs on the same context
// complete untouched.
func TestConcurrentJobsWithFailuresIsolated(t *testing.T) {
	ctx := New(Config{Slots: 4, MaxTaskAttempts: 2, RetryBackoff: -1})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			fail := j%2 == 1
			rdd := Generate(ctx, fmt.Sprintf("job%d", j), 4, func(p int) []int {
				if fail {
					panic(fmt.Sprintf("job %d is doomed", j))
				}
				return []int{p}
			})
			errs[j] = Try(func() { rdd.Collect() })
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if j%2 == 1 && err == nil {
			t.Errorf("doomed job %d did not fail", j)
		}
		if j%2 == 0 && err != nil {
			t.Errorf("healthy job %d failed: %v", j, err)
		}
	}
}
