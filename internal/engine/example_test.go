package engine_test

import (
	"fmt"
	"sort"

	"st4ml/internal/codec"
	"st4ml/internal/engine"
)

// ExampleReduceByKey shows the word-count shape with map-side combining —
// the efficient idiom of the paper's §2.2 discussion.
func ExampleReduceByKey() {
	ctx := engine.New(engine.Config{Slots: 2})
	words := []string{"st", "data", "st", "ml", "st", "data"}
	pairs := engine.Map(engine.Parallelize(ctx, words, 3),
		func(w string) codec.Pair[string, int64] { return codec.KV(w, int64(1)) })
	counts := engine.ReduceByKey(pairs, codec.String, codec.Int64,
		func(a, b int64) int64 { return a + b }, 2).Collect()
	sort.Slice(counts, func(i, j int) bool { return counts[i].Key < counts[j].Key })
	for _, c := range counts {
		fmt.Printf("%s=%d\n", c.Key, c.Value)
	}
	// Output:
	// data=2
	// ml=1
	// st=3
}

// ExampleRDD_Filter chains lazy transformations; nothing computes until an
// action runs.
func ExampleRDD_Filter() {
	ctx := engine.New(engine.Config{Slots: 2})
	r := engine.Parallelize(ctx, []int{1, 2, 3, 4, 5, 6}, 2)
	evens := r.Filter(func(v int) bool { return v%2 == 0 })
	doubled := engine.Map(evens, func(v int) int { return v * 10 })
	fmt.Println(doubled.Collect())
	// Output:
	// [20 40 60]
}

// ExampleBroadcast ships one immutable value to every task, as ST4ML does
// with its structure R-trees during conversion.
func ExampleBroadcast() {
	ctx := engine.New(engine.Config{Slots: 2})
	lookup := engine.Broadcast(ctx, map[string]int{"a": 1, "b": 2}, 64)
	r := engine.Parallelize(ctx, []string{"a", "b", "a"}, 2)
	resolved := engine.Map(r, func(k string) int { return lookup.Value()[k] })
	fmt.Println(resolved.Collect())
	// Output:
	// [1 2 1]
}
