package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"st4ml/internal/codec"
)

func TestMapValuesKeysValues(t *testing.T) {
	ctx := newTestCtx()
	pairs := []codec.Pair[string, int]{
		codec.KV("a", 1), codec.KV("b", 2), codec.KV("a", 3),
	}
	r := Parallelize(ctx, pairs, 2)
	doubled := MapValues(r, func(v int) int { return v * 2 }).Collect()
	if doubled[0].Value != 2 || doubled[2].Value != 6 {
		t.Errorf("MapValues = %v", doubled)
	}
	ks := Keys(r).Collect()
	if !reflect.DeepEqual(ks, []string{"a", "b", "a"}) {
		t.Errorf("Keys = %v", ks)
	}
	vs := Values(r).Collect()
	if !reflect.DeepEqual(vs, []int{1, 2, 3}) {
		t.Errorf("Values = %v", vs)
	}
}

func TestCountByKey(t *testing.T) {
	ctx := newTestCtx()
	var pairs []codec.Pair[string, int]
	for i := 0; i < 300; i++ {
		pairs = append(pairs, codec.KV([]string{"x", "y", "z"}[i%3], i))
	}
	r := Parallelize(ctx, pairs, 5)
	got := CountByKey(r, codec.String, 3)
	if got["x"] != 100 || got["y"] != 100 || got["z"] != 100 {
		t.Errorf("CountByKey = %v", got)
	}
}

func TestJoin(t *testing.T) {
	ctx := newTestCtx()
	left := Parallelize(ctx, []codec.Pair[int64, string]{
		codec.KV(int64(1), "a"), codec.KV(int64(2), "b"),
		codec.KV(int64(1), "c"), codec.KV(int64(3), "d"),
	}, 2)
	right := Parallelize(ctx, []codec.Pair[int64, float64]{
		codec.KV(int64(1), 1.5), codec.KV(int64(2), 2.5),
		codec.KV(int64(4), 4.5),
	}, 3)
	joined := Join(left, right, codec.Int64, codec.String, codec.Float64, 4).Collect()
	// Key 1 matches twice (a, c), key 2 once, keys 3/4 drop.
	if len(joined) != 3 {
		t.Fatalf("joined = %v", joined)
	}
	found := map[string]float64{}
	for _, j := range joined {
		found[j.Value.Key] = j.Value.Value
	}
	if found["a"] != 1.5 || found["c"] != 1.5 || found["b"] != 2.5 {
		t.Errorf("join content = %v", found)
	}
}

func TestJoinEmptySides(t *testing.T) {
	ctx := newTestCtx()
	left := Parallelize(ctx, []codec.Pair[int64, string]{}, 2)
	right := Parallelize(ctx, []codec.Pair[int64, float64]{codec.KV(int64(1), 1.0)}, 2)
	if got := Join(left, right, codec.Int64, codec.String, codec.Float64, 2).Count(); got != 0 {
		t.Errorf("empty join = %d", got)
	}
}

func TestDistinct(t *testing.T) {
	ctx := newTestCtx()
	data := []int{5, 3, 5, 5, 3, 7, 7, 1}
	r := Parallelize(ctx, data, 3)
	got := Distinct(r, codec.Int, 4).Collect()
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{1, 3, 5, 7}) {
		t.Errorf("Distinct = %v", got)
	}
}

func TestSortByTotalOrder(t *testing.T) {
	ctx := newTestCtx()
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.NormFloat64() * 100
	}
	r := Parallelize(ctx, data, 8)
	got := SortBy(r, codec.Float64, func(v float64) float64 { return v }, 6, 42).Collect()
	if len(got) != len(data) {
		t.Fatalf("lost records: %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("not sorted at %d: %g < %g", i, got[i], got[i-1])
		}
	}
	want := append([]float64(nil), data...)
	sort.Float64s(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sorted content mismatch")
	}
}

func TestSortByTinyInput(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, []float64{3, 1, 2}, 2)
	got := SortBy(r, codec.Float64, func(v float64) float64 { return v }, 4, 1)
	if !reflect.DeepEqual(got.Collect(), []float64{1, 2, 3}) {
		t.Errorf("tiny sort = %v", got.Collect())
	}
}

func TestTakeAndFirst(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, seq(100), 7)
	if got := r.Take(5); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Errorf("Take = %v", got)
	}
	if got := r.Take(1000); len(got) != 100 {
		t.Errorf("oversized Take = %d", len(got))
	}
	if got := r.Take(0); got != nil {
		t.Errorf("Take(0) = %v", got)
	}
	v, ok := r.First()
	if !ok || v != 0 {
		t.Errorf("First = %d %v", v, ok)
	}
	empty := Parallelize(ctx, []int{}, 3)
	if _, ok := empty.First(); ok {
		t.Error("First on empty should report !ok")
	}
}

func TestZip(t *testing.T) {
	ctx := newTestCtx()
	a := Parallelize(ctx, []int{1, 2, 3, 4}, 2)
	b := Parallelize(ctx, []string{"w", "x", "y", "z"}, 2)
	got := Zip(a, b).Collect()
	if len(got) != 4 || got[0] != codec.KV(1, "w") || got[3] != codec.KV(4, "z") {
		t.Errorf("Zip = %v", got)
	}
}

func TestZipMismatchedPanics(t *testing.T) {
	ctx := newTestCtx()
	a := Parallelize(ctx, []int{1, 2}, 2)
	b := Parallelize(ctx, []int{1, 2}, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zip(a, b)
}

// Property: Distinct output is the set of the input, for random inputs.
func TestDistinctProperty(t *testing.T) {
	ctx := newTestCtx()
	f := func(data []int16) bool {
		in := make([]int, len(data))
		set := map[int]bool{}
		for i, v := range data {
			in[i] = int(v)
			set[int(v)] = true
		}
		r := Parallelize(ctx, in, 4)
		got := Distinct(r, codec.Int, 3).Collect()
		if len(got) != len(set) {
			return false
		}
		for _, v := range got {
			if !set[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: SortBy(Collect) == sort(Collect) for random inputs.
func TestSortByProperty(t *testing.T) {
	ctx := newTestCtx()
	f := func(data []float32) bool {
		in := make([]float64, len(data))
		for i, v := range data {
			in[i] = float64(v)
		}
		r := Parallelize(ctx, in, 3)
		got := SortBy(r, codec.Float64, func(v float64) float64 { return v }, 4, 7).Collect()
		want := append([]float64(nil), in...)
		sort.Float64s(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
