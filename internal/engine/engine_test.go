package engine

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"st4ml/internal/codec"
)

func newTestCtx() *Context { return New(Config{Slots: 4, DefaultParallelism: 8}) }

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	ctx := newTestCtx()
	data := seq(100)
	for _, parts := range []int{1, 3, 8, 100, 150} {
		r := Parallelize(ctx, data, parts)
		if r.NumPartitions() != parts {
			t.Fatalf("parts = %d, want %d", r.NumPartitions(), parts)
		}
		got := r.Collect()
		if !reflect.DeepEqual(got, data) {
			t.Fatalf("parts=%d: collect mismatch (len %d)", parts, len(got))
		}
	}
}

func TestParallelizeEmpty(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, []int{}, 4)
	if got := r.Count(); got != 0 {
		t.Errorf("Count = %d", got)
	}
	if got := r.Collect(); len(got) != 0 {
		t.Errorf("Collect = %v", got)
	}
	if _, ok := r.Reduce(func(a, b int) int { return a + b }); ok {
		t.Error("Reduce on empty should report !ok")
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, seq(50), 7)
	doubled := Map(r, func(v int) int { return v * 2 })
	evens := doubled.Filter(func(v int) bool { return v%4 == 0 })
	pairs := FlatMap(evens, func(v int) []int { return []int{v, v + 1} })
	got := pairs.Collect()
	var want []int
	for i := 0; i < 50; i++ {
		d := i * 2
		if d%4 == 0 {
			want = append(want, d, d+1)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMapPartitionsSeesIndex(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, seq(20), 4)
	tagged := MapPartitions(r, func(p int, in []int) []string {
		out := make([]string, len(in))
		for i, v := range in {
			out[i] = fmt.Sprintf("%d:%d", p, v)
		}
		return out
	})
	got := tagged.Collect()
	if len(got) != 20 {
		t.Fatalf("len = %d", len(got))
	}
	if !strings.HasPrefix(got[0], "0:") || !strings.HasPrefix(got[19], "3:") {
		t.Errorf("partition tags wrong: first=%s last=%s", got[0], got[19])
	}
}

func TestUnion(t *testing.T) {
	ctx := newTestCtx()
	a := Parallelize(ctx, []int{1, 2}, 2)
	b := Parallelize(ctx, []int{3, 4, 5}, 3)
	u := a.Union(b)
	if u.NumPartitions() != 5 {
		t.Errorf("parts = %d", u.NumPartitions())
	}
	if got := u.Collect(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Errorf("Collect = %v", got)
	}
}

func TestSampleDeterministicAndApproximate(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, seq(10000), 8)
	s1 := r.Sample(0.1, 42).Collect()
	s2 := r.Sample(0.1, 42).Collect()
	if !reflect.DeepEqual(s1, s2) {
		t.Error("same seed should sample identically")
	}
	if len(s1) < 800 || len(s1) > 1200 {
		t.Errorf("sample size %d far from 1000", len(s1))
	}
	s3 := r.Sample(0.1, 43).Collect()
	if reflect.DeepEqual(s1, s3) {
		t.Error("different seeds should differ")
	}
}

func TestReduceAndAggregate(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, seq(101), 8)
	sum, ok := r.Reduce(func(a, b int) int { return a + b })
	if !ok || sum != 5050 {
		t.Errorf("Reduce = %d ok=%v", sum, ok)
	}
	count := Aggregate(r, 0, func(acc, _ int) int { return acc + 1 },
		func(a, b int) int { return a + b })
	if count != 101 {
		t.Errorf("Aggregate count = %d", count)
	}
}

func TestCountByPartitionBalance(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, seq(103), 10)
	counts := r.CountByPartition()
	var total int64
	for _, c := range counts {
		if c != 10 && c != 11 {
			t.Errorf("unbalanced contiguous split: %v", counts)
		}
		total += c
	}
	if total != 103 {
		t.Errorf("total = %d", total)
	}
}

func TestCacheComputesOnce(t *testing.T) {
	ctx := newTestCtx()
	var calls atomic.Int64
	r := Generate(ctx, "gen", 4, func(p int) []int {
		calls.Add(1)
		return []int{p}
	})
	cached := r.Cache()
	_ = cached.Collect()
	_ = cached.Collect()
	_ = cached.Count()
	if got := calls.Load(); got != 4 {
		t.Errorf("generator called %d times, want 4", got)
	}
}

func TestUncachedRecomputes(t *testing.T) {
	ctx := newTestCtx()
	var calls atomic.Int64
	r := Generate(ctx, "gen", 2, func(p int) []int {
		calls.Add(1)
		return []int{p}
	})
	_ = r.Collect()
	_ = r.Collect()
	if got := calls.Load(); got != 4 {
		t.Errorf("generator called %d times, want 4 (no caching)", got)
	}
}

func TestTaskPanicBecomesTaskError(t *testing.T) {
	// A panicking task is retried, then surfaces as a *TaskError carrying
	// the task index — not as a re-raised panic value.
	ctx := New(Config{Slots: 4, MaxTaskAttempts: 2, RetryBackoff: -1})
	var calls atomic.Int64
	r := Generate(ctx, "boom", 4, func(p int) []int {
		if p == 2 {
			calls.Add(1)
			panic("kaboom")
		}
		return nil
	})
	err := Try(func() { r.Collect() })
	if err == nil {
		t.Fatal("expected error")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if te.Task != 2 || te.Attempts != 2 {
		t.Errorf("TaskError = %+v", te)
	}
	if !strings.Contains(err.Error(), "task 2") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("task index or cause missing from message: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("panicking task ran %d times, want 2 (1 retry)", got)
	}
	if ctx.Metrics.Snapshot().TaskRetries == 0 {
		t.Error("TaskRetries not counted")
	}
}

func TestPartitionByRoutesCorrectly(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, seq(100), 8)
	shuffled := PartitionBy(r, codec.Int, 4, func(v int) int { return v % 4 })
	parts := shuffled.CollectPartitions()
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	for p, part := range parts {
		if len(part) != 25 {
			t.Errorf("partition %d has %d records", p, len(part))
		}
		for _, v := range part {
			if v%4 != p {
				t.Errorf("record %d in wrong partition %d", v, p)
			}
		}
	}
}

func TestPartitionByMultiDuplicates(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, seq(10), 3)
	dup := PartitionByMulti(r, codec.Int, 2, func(v int) []int {
		if v == 0 {
			return []int{0, 1} // duplicated
		}
		if v == 1 {
			return nil // dropped
		}
		return []int{v % 2}
	})
	all := dup.Collect()
	counts := map[int]int{}
	for _, v := range all {
		counts[v]++
	}
	if counts[0] != 2 {
		t.Errorf("v=0 duplicated %d times, want 2", counts[0])
	}
	if counts[1] != 0 {
		t.Errorf("v=1 should be dropped, got %d", counts[1])
	}
	if counts[5] != 1 {
		t.Errorf("v=5 count = %d", counts[5])
	}
}

func TestHashPartitionBalances(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, seq(10000), 4)
	h := HashPartitionBy(r, codec.Int, 16)
	counts := h.CountByPartition()
	var total int64
	for _, c := range counts {
		total += c
		if c < 400 || c > 900 { // 625 expected
			t.Errorf("skewed hash partition: %v", counts)
			break
		}
	}
	if total != 10000 {
		t.Errorf("lost records: %d", total)
	}
	// Set equality with input.
	got := h.Collect()
	sort.Ints(got)
	if !reflect.DeepEqual(got, seq(10000)) {
		t.Error("hash partitioning lost or duplicated records")
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := newTestCtx()
	var pairs []codec.Pair[string, int64]
	for i := 0; i < 1000; i++ {
		pairs = append(pairs, codec.KV(fmt.Sprintf("k%d", i%10), int64(1)))
	}
	r := Parallelize(ctx, pairs, 8)
	counts := ReduceByKey(r, codec.String, codec.Int64,
		func(a, b int64) int64 { return a + b }, 4)
	got := counts.Collect()
	if len(got) != 10 {
		t.Fatalf("distinct keys = %d, want 10", len(got))
	}
	for _, p := range got {
		if p.Value != 100 {
			t.Errorf("key %s count = %d, want 100", p.Key, p.Value)
		}
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := newTestCtx()
	pairs := []codec.Pair[int64, string]{
		codec.KV(int64(1), "a"), codec.KV(int64(2), "b"),
		codec.KV(int64(1), "c"), codec.KV(int64(1), "d"),
	}
	r := Parallelize(ctx, pairs, 2)
	grouped := GroupByKey(r, codec.Int64, codec.String, 3)
	got := grouped.Collect()
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	byKey := map[int64][]string{}
	for _, g := range got {
		vs := append([]string(nil), g.Value...)
		sort.Strings(vs)
		byKey[g.Key] = vs
	}
	if !reflect.DeepEqual(byKey[1], []string{"a", "c", "d"}) {
		t.Errorf("key 1 = %v", byKey[1])
	}
	if !reflect.DeepEqual(byKey[2], []string{"b"}) {
		t.Errorf("key 2 = %v", byKey[2])
	}
}

func TestReduceByKeyShufflesLessThanGroupByKey(t *testing.T) {
	ctx := newTestCtx()
	var pairs []codec.Pair[string, int64]
	for i := 0; i < 5000; i++ {
		pairs = append(pairs, codec.KV(fmt.Sprintf("k%d", i%5), int64(i)))
	}
	r := Parallelize(ctx, pairs, 8)

	ctx.Metrics.Reset()
	_ = ReduceByKey(r, codec.String, codec.Int64,
		func(a, b int64) int64 { return a + b }, 4).Collect()
	rbk := ctx.Metrics.Snapshot().ShuffleRecords

	ctx.Metrics.Reset()
	_ = GroupByKey(r, codec.String, codec.Int64, 4).Collect()
	gbk := ctx.Metrics.Snapshot().ShuffleRecords

	// Map-side combine: at most keys×partitions records shuffle, versus all.
	if rbk >= gbk {
		t.Errorf("reduceByKey shuffled %d records, groupByKey %d — combine broken", rbk, gbk)
	}
	if gbk != 5000 {
		t.Errorf("groupByKey should shuffle every record, got %d", gbk)
	}
	if rbk > 5*8 {
		t.Errorf("reduceByKey shuffled %d, want <= 40", rbk)
	}
}

func TestShuffleMetricsBytes(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, seq(1000), 4)
	ctx.Metrics.Reset()
	_ = PartitionBy(r, codec.Int, 8, func(v int) int { return v }).Collect()
	snap := ctx.Metrics.Snapshot()
	if snap.ShuffleRecords != 1000 {
		t.Errorf("ShuffleRecords = %d", snap.ShuffleRecords)
	}
	if snap.ShuffleBytes <= 0 {
		t.Errorf("ShuffleBytes = %d", snap.ShuffleBytes)
	}
}

func TestBroadcast(t *testing.T) {
	ctx := newTestCtx()
	b := Broadcast(ctx, map[string]int{"x": 1}, 100)
	if b.Value()["x"] != 1 {
		t.Error("broadcast value lost")
	}
	snap := ctx.Metrics.Snapshot()
	if snap.Broadcasts != 1 || snap.BroadcastBytes != 400 {
		t.Errorf("broadcast metrics = %+v", snap)
	}
}

func TestStageStatsRecorded(t *testing.T) {
	ctx := newTestCtx()
	ctx.Metrics.Reset()
	r := Parallelize(ctx, seq(10), 5)
	_ = r.Collect()
	snap := ctx.Metrics.Snapshot()
	if len(snap.Stages) == 0 {
		t.Fatal("no stages recorded")
	}
	if snap.Stages[0].Tasks != 5 {
		t.Errorf("stage tasks = %d", snap.Stages[0].Tasks)
	}
	if snap.TasksRun != 5 {
		t.Errorf("TasksRun = %d", snap.TasksRun)
	}
}

func TestShuffleDeterministicContent(t *testing.T) {
	// Shuffle output content (as a multiset) equals input regardless of
	// partitioning function.
	ctx := newTestCtx()
	f := func(data []int16, nOut uint8) bool {
		n := int(nOut)%8 + 1
		in := make([]int, len(data))
		for i, v := range data {
			in[i] = int(v)
		}
		r := Parallelize(ctx, in, 4)
		out := PartitionBy(r, codec.Int, n, func(v int) int { return v }).Collect()
		sort.Ints(out)
		want := append([]int(nil), in...)
		sort.Ints(want)
		if len(out) != len(want) {
			return false
		}
		for i := range out {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDefaultParallelism(t *testing.T) {
	ctx := New(Config{Slots: 3})
	if ctx.Slots() != 3 {
		t.Errorf("Slots = %d", ctx.Slots())
	}
	if ctx.DefaultParallelism() != 6 {
		t.Errorf("DefaultParallelism = %d", ctx.DefaultParallelism())
	}
	r := Parallelize(ctx, seq(12), 0)
	if r.NumPartitions() != 6 {
		t.Errorf("default parts = %d", r.NumPartitions())
	}
}

func TestChainedShuffles(t *testing.T) {
	ctx := newTestCtx()
	r := Parallelize(ctx, seq(100), 8)
	s1 := PartitionBy(r, codec.Int, 4, func(v int) int { return v % 4 })
	s2 := PartitionBy(Map(s1, func(v int) int { return v + 1 }), codec.Int, 2,
		func(v int) int { return v % 2 })
	got := s2.Collect()
	sort.Ints(got)
	want := make([]int, 100)
	for i := range want {
		want[i] = i + 1
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("chained shuffle mismatch: %d records", len(got))
	}
}
