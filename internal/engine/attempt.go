package engine

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// This file generalizes the engine's task-attempt machinery — bounded
// retries, speculative duplicates, exactly-once commits — to attempts that
// cross a process boundary. runStage applies those rules to in-memory
// tasks; Hedge applies the same rules to an arbitrary closure with several
// interchangeable candidates (e.g. the replicas of a cluster shard): a
// failed attempt fails over to the next candidate, a slow attempt gets a
// hedged duplicate on the next candidate after HedgeAfter, and exactly one
// result is committed — the first success — while every losing attempt is
// canceled through its context.

// AttemptConfig tunes one Hedge call. Zero values pick sane defaults.
type AttemptConfig struct {
	// MaxAttempts bounds the total attempts across all candidates.
	// 0 means 2×candidates (each candidate once, then one retry round).
	MaxAttempts int
	// HedgeAfter launches a duplicate attempt on the next candidate when
	// the running ones have not answered within this duration. 0 disables
	// hedging (attempts then launch only on failure — pure failover).
	HedgeAfter time.Duration
	// Timeout bounds each individual attempt. 0 means no per-attempt bound
	// beyond the caller's context.
	Timeout time.Duration
	// Backoff is the sleep before a failover attempt (not before hedges),
	// doubling per failover like task retry backoff. 0 disables.
	Backoff time.Duration
}

// AttemptStats reports what one Hedge call did.
type AttemptStats struct {
	// Attempts is how many attempts launched in total.
	Attempts int
	// Hedges counts duplicates launched because of HedgeAfter.
	Hedges int
	// Failovers counts attempts launched because a prior one failed.
	Failovers int
	// Winner is the candidate index whose attempt committed (-1 on failure).
	Winner int
}

// PermanentError marks an attempt failure that retrying on another
// candidate cannot fix (a generation conflict, a malformed request); Hedge
// stops immediately and returns the wrapped error.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err so Hedge treats it as non-retryable.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// Hedge runs run against up to MaxAttempts attempts spread over candidates
// interchangeable candidates (attempt i targets candidate i%candidates) and
// returns the first successful result. Exactly one result commits; when a
// winner is chosen every other in-flight attempt's context is canceled.
// Failed attempts fail over to the next candidate immediately (after
// Backoff); with HedgeAfter set, silence launches a hedged duplicate
// without waiting for a failure. A PermanentError from any attempt aborts
// the call. The zero value of T and the stats so far are returned on error.
func Hedge[T any](ctx context.Context, candidates int, cfg AttemptConfig,
	run func(ctx context.Context, candidate, attempt int) (T, error)) (T, AttemptStats, error) {
	var zero T
	st := AttemptStats{Winner: -1}
	if candidates <= 0 {
		return zero, st, errors.New("engine: Hedge needs at least one candidate")
	}
	max := cfg.MaxAttempts
	if max <= 0 {
		max = 2 * candidates
	}
	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	type outcome struct {
		v    T
		cand int
		err  error
	}
	// Buffered to max so losing attempts never block on send and always
	// exit once canceled.
	results := make(chan outcome, max)
	launch := func() {
		attempt := st.Attempts
		cand := attempt % candidates
		st.Attempts++
		go func() {
			rctx := actx
			cancel := func() {}
			if cfg.Timeout > 0 {
				rctx, cancel = context.WithTimeout(actx, cfg.Timeout)
			}
			defer cancel()
			v, err := run(rctx, cand, attempt)
			results <- outcome{v: v, cand: cand, err: err}
		}()
	}

	launch()
	pending := 1
	backoff := cfg.Backoff
	var lastErr error
	for {
		var hedge <-chan time.Time
		if cfg.HedgeAfter > 0 && st.Attempts < max {
			t := time.NewTimer(cfg.HedgeAfter)
			hedge = t.C
			defer t.Stop()
		}
		select {
		case out := <-results:
			pending--
			if out.err == nil {
				// Exactly-once commit: first success wins, losers are
				// canceled and their results discarded.
				st.Winner = out.cand
				cancelAll()
				return out.v, st, nil
			}
			lastErr = out.err
			var perm *PermanentError
			if errors.As(out.err, &perm) {
				cancelAll()
				return zero, st, perm.Err
			}
			if err := ctx.Err(); err != nil {
				return zero, st, err
			}
			if st.Attempts < max {
				if backoff > 0 {
					select {
					case <-time.After(backoff):
					case <-ctx.Done():
						return zero, st, ctx.Err()
					}
					backoff *= 2
				}
				st.Failovers++
				launch()
				pending++
			} else if pending == 0 {
				return zero, st, fmt.Errorf("engine: all %d attempts failed: %w", st.Attempts, lastErr)
			}
		case <-hedge:
			st.Hedges++
			launch()
			pending++
		case <-ctx.Done():
			return zero, st, ctx.Err()
		}
	}
}
