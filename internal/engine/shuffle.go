package engine

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"st4ml/internal/codec"
	"st4ml/internal/trace"
)

// Shuffles route records between partitions. Every shuffled record is
// encoded with its codec on the map side and decoded on the reduce side —
// the same serialization toll Spark charges — and the byte volume is
// tracked in Metrics.ShuffleBytes. Each (map, reduce) block travels in a
// length+checksum frame; the reduce side verifies the frame and re-reads
// the block on a mismatch before failing the task.

// maxBlockReadAttempts is how many times the reduce side reads a shuffle
// block before declaring it permanently corrupt.
const maxBlockReadAttempts = 3

// PartitionBy redistributes records into nOut partitions according to
// target (values outside [0, nOut) are clamped by modulo).
func PartitionBy[T any](r *RDD[T], c codec.Codec[T], nOut int, target func(T) int) *RDD[T] {
	return PartitionByMulti(r, c, nOut, func(v T) []int { return []int{target(v)} })
}

// PartitionByMulti redistributes records into nOut partitions; targets may
// send one record to several partitions (the duplication mode of the
// paper's flatMap-based ST partitioning, needed when an instance overlaps
// several partition extents). Records with no targets are dropped.
func PartitionByMulti[T any](r *RDD[T], c codec.Codec[T], nOut int, targets func(T) []int) *RDD[T] {
	if nOut <= 0 {
		nOut = r.ctx.defaultPar
	}
	out := &RDD[T]{
		ctx: r.ctx, name: r.name + ".partitionBy", parts: nOut, parents: []preparable{r},
	}
	out.doMaterialize = func() ([][]T, error) {
		enc, err := shuffleWrite(r, c, nOut, targets)
		if err != nil {
			return nil, err
		}
		return shuffleRead(r.ctx, out.name, c, enc)
	}
	return out
}

// HashPartitionBy routes each record by the FNV hash of its encoding,
// giving record-level random balance (ST4ML's Hash partitioner, §3.1).
func HashPartitionBy[T any](r *RDD[T], c codec.Codec[T], nOut int) *RDD[T] {
	if nOut <= 0 {
		nOut = r.ctx.defaultPar
	}
	out := &RDD[T]{
		ctx: r.ctx, name: r.name + ".hashPartition", parts: nOut, parents: []preparable{r},
	}
	out.doMaterialize = func() ([][]T, error) {
		scratch := codec.GetWriter
		enc, err := shuffleWriteFunc(r, nOut, func(v T, w *codec.Writer) int {
			c.Enc(w, v)
			return int(hashBytes(w.Bytes()) % uint64(nOut))
		}, scratch)
		if err != nil {
			return nil, err
		}
		return shuffleRead(r.ctx, out.name, c, enc)
	}
	return out
}

// ReduceByKey combines values sharing a key with a map-side combine before
// the shuffle — the efficient aggregation idiom of the paper's §2.2.
// The output has nOut partitions keyed by key-hash.
func ReduceByKey[K comparable, V any](
	r *RDD[codec.Pair[K, V]],
	kc codec.Codec[K], vc codec.Codec[V],
	reduce func(V, V) V,
	nOut int,
) *RDD[codec.Pair[K, V]] {
	if nOut <= 0 {
		nOut = r.ctx.defaultPar
	}
	pc := codec.PairOf(kc, vc)
	out := &RDD[codec.Pair[K, V]]{
		ctx: r.ctx, name: r.name + ".reduceByKey", parts: nOut, parents: []preparable{r},
	}
	out.doMaterialize = func() ([][]codec.Pair[K, V], error) {
		combined := MapPartitions(r, func(_ int, in []codec.Pair[K, V]) []codec.Pair[K, V] {
			m := make(map[K]V, len(in))
			for _, p := range in {
				if cur, ok := m[p.Key]; ok {
					m[p.Key] = reduce(cur, p.Value)
				} else {
					m[p.Key] = p.Value
				}
			}
			out := make([]codec.Pair[K, V], 0, len(m))
			for k, v := range m {
				out = append(out, codec.KV(k, v))
			}
			return out
		})
		enc, err := shuffleWrite(combined, pc, nOut, func(p codec.Pair[K, V]) []int {
			return []int{keyBucket(kc, p.Key, nOut)}
		})
		if err != nil {
			return nil, err
		}
		shuffled, err := shuffleRead(r.ctx, out.name, pc, enc)
		if err != nil {
			return nil, err
		}
		// Final merge per reduce partition.
		result := make([][]codec.Pair[K, V], nOut)
		err = r.ctx.runStage(out.name+".merge", nOut, func(p int) (func(), int64, error) {
			m := make(map[K]V)
			for _, pair := range shuffled[p] {
				if cur, ok := m[pair.Key]; ok {
					m[pair.Key] = reduce(cur, pair.Value)
				} else {
					m[pair.Key] = pair.Value
				}
			}
			outp := make([]codec.Pair[K, V], 0, len(m))
			for k, v := range m {
				outp = append(outp, codec.KV(k, v))
			}
			return func() { result[p] = outp }, int64(len(outp)), nil
		})
		if err != nil {
			return nil, err
		}
		return result, nil
	}
	return out
}

// GroupByKey shuffles every pair and groups values per key with no map-side
// combine — the slower idiom the paper contrasts with ReduceByKey.
func GroupByKey[K comparable, V any](
	r *RDD[codec.Pair[K, V]],
	kc codec.Codec[K], vc codec.Codec[V],
	nOut int,
) *RDD[codec.Pair[K, []V]] {
	if nOut <= 0 {
		nOut = r.ctx.defaultPar
	}
	pc := codec.PairOf(kc, vc)
	out := &RDD[codec.Pair[K, []V]]{
		ctx: r.ctx, name: r.name + ".groupByKey", parts: nOut, parents: []preparable{r},
	}
	out.doMaterialize = func() ([][]codec.Pair[K, []V], error) {
		enc, err := shuffleWrite(r, pc, nOut, func(p codec.Pair[K, V]) []int {
			return []int{keyBucket(kc, p.Key, nOut)}
		})
		if err != nil {
			return nil, err
		}
		shuffled, err := shuffleRead(r.ctx, out.name, pc, enc)
		if err != nil {
			return nil, err
		}
		result := make([][]codec.Pair[K, []V], nOut)
		err = r.ctx.runStage(out.name+".group", nOut, func(p int) (func(), int64, error) {
			m := make(map[K][]V)
			for _, pair := range shuffled[p] {
				m[pair.Key] = append(m[pair.Key], pair.Value)
			}
			outp := make([]codec.Pair[K, []V], 0, len(m))
			for k, vs := range m {
				outp = append(outp, codec.KV(k, vs))
			}
			return func() { result[p] = outp }, int64(len(outp)), nil
		})
		if err != nil {
			return nil, err
		}
		return result, nil
	}
	return out
}

// keyBucket hashes a key through its codec encoding — works for any K
// without a per-type hash function, at the cost of one small encode into
// a pooled scratch buffer.
func keyBucket[K any](kc codec.Codec[K], k K, n int) int {
	w := codec.GetWriter()
	kc.Enc(w, k)
	b := int(hashBytes(w.Bytes()) % uint64(n))
	codec.PutWriter(w)
	return b
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// frameBuffers wraps each non-empty per-target buffer in a checksum frame
// and returns the framed buffers plus the total payload byte count. The
// framed output is freshly allocated (it outlives the map task inside the
// shuffle exchange); the per-target writers are returned to the codec
// pool, so each map task reuses the previous task's scratch.
func frameBuffers(writers []*codec.Writer) ([][]byte, int64) {
	bufs := make([][]byte, len(writers))
	var bytes int64
	for t, w := range writers {
		if w == nil {
			continue
		}
		framed := codec.NewWriter(w.Len() + 16)
		framed.PutFrame(w.Bytes())
		bufs[t] = framed.Bytes()
		bytes += int64(w.Len())
		codec.PutWriter(w)
	}
	return bufs, bytes
}

// shuffleWrite runs the map side: every parent partition encodes its
// records into one checksum-framed byte buffer per target partition.
// Returns enc[parentPart][target] = framed concatenated encodings.
func shuffleWrite[T any](r *RDD[T], c codec.Codec[T], nOut int, targets func(T) []int) ([][][]byte, error) {
	if err := r.prepare(); err != nil {
		return nil, err
	}
	sp := r.ctx.StartSpan(trace.SpanShuffleWrite, trace.Str("stage", r.name+".shuffleWrite"))
	var spanBytes, spanRecords atomic.Int64
	enc := make([][][]byte, r.parts)
	err := r.ctx.WithSpan(sp).runStage(r.name+".shuffleWrite", r.parts, func(p int) (func(), int64, error) {
		writers := make([]*codec.Writer, nOut)
		var records int64
		for _, v := range r.computePartition(p) {
			for _, t := range targets(v) {
				t = ((t % nOut) + nOut) % nOut
				if writers[t] == nil {
					writers[t] = codec.GetWriter()
				}
				c.Enc(writers[t], v)
				records++
			}
		}
		bufs, bytes := frameBuffers(writers)
		return func() {
			enc[p] = bufs
			r.ctx.Metrics.shuffleRecords.Add(records)
			r.ctx.Metrics.shuffleBytes.Add(bytes)
			spanBytes.Add(bytes)
			spanRecords.Add(records)
		}, records, nil
	})
	sp.End(trace.Int("bytes", spanBytes.Load()), trace.Int("records", spanRecords.Load()))
	if err != nil {
		return nil, err
	}
	return enc, nil
}

// shuffleWriteFunc is shuffleWrite with a fused encode+route step: route
// receives a scratch writer, encodes v into it, and returns the target. The
// encoded bytes are then moved to the target buffer, avoiding a second
// encode for hash routing.
func shuffleWriteFunc[T any](
	r *RDD[T], nOut int,
	route func(v T, scratch *codec.Writer) int,
	newScratch func() *codec.Writer,
) ([][][]byte, error) {
	if err := r.prepare(); err != nil {
		return nil, err
	}
	sp := r.ctx.StartSpan(trace.SpanShuffleWrite, trace.Str("stage", r.name+".shuffleWrite"))
	var spanBytes, spanRecords atomic.Int64
	enc := make([][][]byte, r.parts)
	err := r.ctx.WithSpan(sp).runStage(r.name+".shuffleWrite", r.parts, func(p int) (func(), int64, error) {
		writers := make([]*codec.Writer, nOut)
		scratch := newScratch()
		var records int64
		for _, v := range r.computePartition(p) {
			scratch.Reset()
			t := route(v, scratch)
			t = ((t % nOut) + nOut) % nOut
			if writers[t] == nil {
				writers[t] = codec.GetWriter()
			}
			writers[t].PutRaw(scratch.Bytes())
			records++
		}
		codec.PutWriter(scratch)
		bufs, bytes := frameBuffers(writers)
		return func() {
			enc[p] = bufs
			r.ctx.Metrics.shuffleRecords.Add(records)
			r.ctx.Metrics.shuffleBytes.Add(bytes)
			spanBytes.Add(bytes)
			spanRecords.Add(records)
		}, records, nil
	})
	sp.End(trace.Int("bytes", spanBytes.Load()), trace.Int("records", spanRecords.Load()))
	if err != nil {
		return nil, err
	}
	return enc, nil
}

// readBlock verifies and unwraps one framed shuffle block, re-reading on
// checksum mismatch (a FaultPlan may inject transient corruption; real
// corruption fails every attempt). The returned payload aliases buf.
func readBlock(ctx *Context, stage string, src, dst int, buf []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < maxBlockReadAttempts; attempt++ {
		data := buf
		if bad, off := ctx.faults.corruptBlock(stage, src, dst, attempt, len(buf)); bad {
			corrupted := append([]byte(nil), buf...)
			corrupted[off] ^= 0x01
			data = corrupted
		}
		var payload []byte
		err := codec.Catch(func() {
			rd := codec.NewReader(data)
			payload = rd.Frame()
			if rd.Remaining() != 0 {
				panic(codec.ErrCorrupt{Off: len(data) - rd.Remaining()})
			}
		})
		if err == nil {
			return payload, nil
		}
		lastErr = err
		ctx.Metrics.corruptRereads.Add(1)
	}
	return nil, fmt.Errorf("engine: shuffle block %d->%d corrupt after %d reads: %w",
		src, dst, maxBlockReadAttempts, lastErr)
}

// shuffleRead runs the reduce side: for each output partition, verify and
// decode the framed byte buffers produced for it by every map task.
func shuffleRead[T any](ctx *Context, name string, c codec.Codec[T], enc [][][]byte) ([][]T, error) {
	if len(enc) == 0 {
		return nil, nil
	}
	nOut := len(enc[0])
	out := make([][]T, nOut)
	stage := name + ".shuffleRead"
	sp := ctx.StartSpan(trace.SpanShuffleRead, trace.Str("stage", stage))
	var spanBytes, spanRecords atomic.Int64
	err := ctx.WithSpan(sp).runStage(stage, nOut, func(t int) (func(), int64, error) {
		var part []T
		var bytes int64
		for p := range enc {
			buf := enc[p][t]
			if len(buf) == 0 {
				continue
			}
			payload, err := readBlock(ctx, stage, p, t, buf)
			if err != nil {
				return nil, 0, err
			}
			bytes += int64(len(payload))
			rd := codec.NewReader(payload)
			for rd.Remaining() > 0 {
				part = append(part, c.Dec(rd))
			}
		}
		n := int64(len(part))
		return func() {
			out[t] = part
			spanBytes.Add(bytes)
			spanRecords.Add(n)
		}, n, nil
	})
	sp.End(trace.Int("bytes", spanBytes.Load()), trace.Int("records", spanRecords.Load()))
	if err != nil {
		return nil, err
	}
	return out, nil
}
