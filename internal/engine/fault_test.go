package engine

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"st4ml/internal/codec"
)

func TestRetryRecoversTransientFailure(t *testing.T) {
	ctx := New(Config{
		Slots: 4, DefaultParallelism: 8, RetryBackoff: -1,
		Faults: &FaultPlan{FailTasks: map[int]int{3: 2}},
	})
	r := Parallelize(ctx, seq(100), 8)
	got := r.Collect()
	if !reflect.DeepEqual(got, seq(100)) {
		t.Fatalf("collect under transient faults wrong: %d records", len(got))
	}
	snap := ctx.Metrics.Snapshot()
	if snap.TaskRetries != 2 {
		t.Errorf("TaskRetries = %d, want 2", snap.TaskRetries)
	}
	if snap.TasksRun != 8 {
		t.Errorf("TasksRun = %d, want 8 (one commit per task)", snap.TasksRun)
	}
}

func TestPermanentFailureReturnsTaskError(t *testing.T) {
	ctx := New(Config{
		Slots: 2, MaxTaskAttempts: 3, RetryBackoff: -1,
		Faults: &FaultPlan{FailTasks: map[int]int{2: 100}},
	})
	r := Parallelize(ctx, seq(40), 4)
	err := Try(func() { r.Collect() })
	if err == nil {
		t.Fatal("expected job abort")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error type %T", err)
	}
	if te.Task != 2 || te.Attempts != 3 {
		t.Errorf("TaskError = %+v", te)
	}
	if !strings.Contains(err.Error(), "task 2") {
		t.Errorf("task index missing: %v", err)
	}
}

func TestRunStageReturnsErrorDirectly(t *testing.T) {
	// White-box: the stage runner itself reports permanent task failure as
	// a returned error (the old engine re-raised a panic instead).
	ctx := New(Config{Slots: 2, MaxTaskAttempts: 2, RetryBackoff: -1})
	err := ctx.runStage("direct", 4, func(task int) (func(), int64, error) {
		if task == 1 {
			panic("direct kaboom")
		}
		return nil, 0, nil
	})
	if err == nil {
		t.Fatal("expected error from runStage")
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Task != 1 || te.Stage != "direct" {
		t.Fatalf("runStage error = %v", err)
	}
}

func TestTryPassesThroughForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic should propagate through Try")
		}
	}()
	_ = Try(func() { panic("not a task error") })
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	ctx := New(Config{
		Slots: 8, Speculation: true,
		SpeculationQuantile: 0.3, SpeculationMultiplier: 1.5,
		SpeculationInterval: 100 * time.Microsecond,
		Faults:              &FaultPlan{DelayTasks: map[int]time.Duration{5: 200 * time.Millisecond}},
	})
	var vals []int
	for i := 0; i < 16; i++ {
		vals = append(vals, i)
	}
	r := Parallelize(ctx, vals, 16)
	start := time.Now()
	got := r.Collect()
	elapsed := time.Since(start)
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("collect under speculation wrong: %v", got)
	}
	snap := ctx.Metrics.Snapshot()
	if snap.SpeculativeLaunched == 0 {
		t.Error("no speculative duplicate launched")
	}
	if snap.SpeculativeWins == 0 {
		t.Errorf("speculative duplicate did not win (elapsed %v)", elapsed)
	}
	if snap.TasksRun != 16 {
		t.Errorf("TasksRun = %d, want 16 — duplicate commits must not double-count", snap.TasksRun)
	}
}

func TestSpeculationWithTinyAttemptBudget(t *testing.T) {
	// Speculation composes with a minimal retry budget: the delayed
	// primary and its duplicate race, exactly one commits, results stay
	// correct.
	ctx := New(Config{
		Slots: 8, Speculation: true, MaxTaskAttempts: 2, RetryBackoff: -1,
		SpeculationQuantile: 0.3, SpeculationMultiplier: 1.2,
		SpeculationInterval: 100 * time.Microsecond,
		Faults:              &FaultPlan{DelayTasks: map[int]time.Duration{3: 100 * time.Millisecond}},
	})
	r := Parallelize(ctx, seq(32), 16)
	got := r.Collect()
	if !reflect.DeepEqual(got, seq(32)) {
		t.Fatalf("collect wrong: %d records", len(got))
	}
}

func TestShuffleCorruptionRecoveredByReread(t *testing.T) {
	ctx := New(Config{
		Slots: 4, RetryBackoff: -1,
		Faults: &FaultPlan{Seed: 7, CorruptRate: 1.0, MaxCorruptReads: 2},
	})
	r := Parallelize(ctx, seq(500), 4)
	out := PartitionBy(r, codec.Int, 8, func(v int) int { return v % 8 }).Collect()
	if len(out) != 500 {
		t.Fatalf("lost records under shuffle corruption: %d", len(out))
	}
	snap := ctx.Metrics.Snapshot()
	if snap.CorruptRereads == 0 {
		t.Error("CorruptRereads not counted")
	}
}

func TestShufflePermanentCorruptionAborts(t *testing.T) {
	ctx := New(Config{
		Slots: 4, MaxTaskAttempts: 2, RetryBackoff: -1,
		Faults: &FaultPlan{Seed: 7, CorruptRate: 1.0, MaxCorruptReads: maxBlockReadAttempts + 8},
	})
	r := Parallelize(ctx, seq(100), 4)
	err := Try(func() {
		_ = PartitionBy(r, codec.Int, 4, func(v int) int { return v % 4 }).Collect()
	})
	if err == nil {
		t.Fatal("permanently corrupt shuffle block should abort the job")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("error does not mention corruption: %v", err)
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	a := &FaultPlan{Seed: 42, FailRate: 0.3, DelayRate: 0.2, MaxDelay: time.Millisecond, CorruptRate: 0.5}
	b := &FaultPlan{Seed: 42, FailRate: 0.3, DelayRate: 0.2, MaxDelay: time.Millisecond, CorruptRate: 0.5}
	for task := 0; task < 50; task++ {
		for attempt := 0; attempt < 4; attempt++ {
			ea, eb := a.failTask("s", task, attempt), b.failTask("s", task, attempt)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("failTask(%d,%d) differs", task, attempt)
			}
			if a.taskDelay("s", task, attempt) != b.taskDelay("s", task, attempt) {
				t.Fatalf("taskDelay(%d,%d) differs", task, attempt)
			}
			ba, oa := a.corruptBlock("s", task, 0, attempt, 100)
			bb, ob := b.corruptBlock("s", task, 0, attempt, 100)
			if ba != bb || oa != ob {
				t.Fatalf("corruptBlock(%d,%d) differs", task, attempt)
			}
		}
	}
	// A different seed must change at least one decision.
	c := &FaultPlan{Seed: 43, FailRate: 0.3}
	diff := false
	for task := 0; task < 50 && !diff; task++ {
		for attempt := 0; attempt < 3; attempt++ {
			if (a.failTask("s", task, attempt) == nil) != (c.failTask("s", task, attempt) == nil) {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("seeds 42 and 43 made identical decisions")
	}
}

func TestNilFaultPlanInjectsNothing(t *testing.T) {
	var p *FaultPlan
	if p.failTask("s", 0, 0) != nil {
		t.Error("nil plan failed a task")
	}
	if p.taskDelay("s", 0, 0) != 0 {
		t.Error("nil plan delayed a task")
	}
	if bad, _ := p.corruptBlock("s", 0, 0, 0, 10); bad {
		t.Error("nil plan corrupted a block")
	}
}

func TestForeachPartitionExactlyOnceUnderRetries(t *testing.T) {
	ctx := New(Config{
		Slots: 4, RetryBackoff: -1,
		Faults: &FaultPlan{FailTasks: map[int]int{1: 2}},
	})
	var effects atomic.Int64
	r := Parallelize(ctx, seq(40), 8)
	r.ForeachPartition(func(p int, in []int) { effects.Add(1) })
	if got := effects.Load(); got != 8 {
		t.Errorf("side effect ran %d times, want 8", got)
	}
}
