package engine

import (
	"math/rand"
	"sync"
)

// preparable is the untyped view of an RDD used for dependency preparation.
// Actions prepare the whole lineage top-down before scheduling tasks, so
// shuffle materialization never nests inside a running task (Spark's stage
// boundary, which also avoids slot-pool deadlock here). prepare returns the
// first permanent stage failure encountered in the lineage.
type preparable interface {
	prepare() error
}

// RDD is a lazy, immutable, partitioned collection of T — the engine's
// equivalent of a Spark RDD. Transformations build new RDDs without
// computing anything; actions (Collect, Count, Reduce, ...) trigger a job.
//
// An RDD is safe for concurrent actions. Partition data returned by compute
// functions must be treated as immutable by downstream code.
//
// Actions retry failing tasks per the context's fault-tolerance config; a
// task that fails every attempt aborts the job with a panic carrying a
// *TaskError. Wrap action calls in Try to receive it as an error instead.
type RDD[T any] struct {
	ctx     *Context
	name    string
	parts   int
	parents []preparable
	// compute produces partition p. nil when the RDD is born materialized.
	compute func(p int) []T
	// doMaterialize, when non-nil, produces all partitions at once; it runs
	// under matOnce during prepare. Shuffled and cached RDDs use it.
	doMaterialize func() ([][]T, error)
	matOnce       sync.Once
	materialized  [][]T
	matErr        error
}

// Ctx returns the owning context.
func (r *RDD[T]) Ctx() *Context { return r.ctx }

// Name returns the RDD's debug name.
func (r *RDD[T]) Name() string { return r.name }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.parts }

func (r *RDD[T]) prepare() error {
	for _, p := range r.parents {
		if err := p.prepare(); err != nil {
			return err
		}
	}
	if r.doMaterialize != nil {
		r.matOnce.Do(func() {
			r.materialized, r.matErr = r.doMaterialize()
		})
	}
	return r.matErr
}

// computePartition returns partition p, from the materialized store if
// present, else by running the compute closure.
func (r *RDD[T]) computePartition(p int) []T {
	if r.materialized != nil {
		return r.materialized[p]
	}
	return r.compute(p)
}

// Parallelize distributes data into numParts partitions (0 means the
// context default), slicing contiguously like Spark's parallelize.
func Parallelize[T any](ctx *Context, data []T, numParts int) *RDD[T] {
	if numParts <= 0 {
		numParts = ctx.defaultPar
	}
	parts := make([][]T, numParts)
	n := len(data)
	start := 0
	for i := 0; i < numParts; i++ {
		size := n / numParts
		if i < n%numParts {
			size++
		}
		parts[i] = data[start : start+size]
		start += size
	}
	return FromPartitions(ctx, "parallelize", parts)
}

// FromPartitions wraps pre-partitioned in-memory data as an RDD.
func FromPartitions[T any](ctx *Context, name string, parts [][]T) *RDD[T] {
	return &RDD[T]{ctx: ctx, name: name, parts: len(parts), materialized: parts}
}

// Generate builds an RDD whose partitions are produced on demand by gen —
// the entry point for readers that load partitions from disk in parallel.
func Generate[T any](ctx *Context, name string, numParts int, gen func(p int) []T) *RDD[T] {
	return &RDD[T]{ctx: ctx, name: name, parts: numParts, compute: gen}
}

// Map applies f to every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return &RDD[U]{
		ctx: r.ctx, name: r.name + ".map", parts: r.parts, parents: []preparable{r},
		compute: func(p int) []U {
			in := r.computePartition(p)
			out := make([]U, len(in))
			for i, v := range in {
				out[i] = f(v)
			}
			return out
		},
	}
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return &RDD[U]{
		ctx: r.ctx, name: r.name + ".flatMap", parts: r.parts, parents: []preparable{r},
		compute: func(p int) []U {
			in := r.computePartition(p)
			var out []U
			for _, v := range in {
				out = append(out, f(v)...)
			}
			return out
		},
	}
}

// MapPartitions transforms each partition wholesale; f receives the
// partition index and its records.
func MapPartitions[T, U any](r *RDD[T], f func(p int, in []T) []U) *RDD[U] {
	return &RDD[U]{
		ctx: r.ctx, name: r.name + ".mapPartitions", parts: r.parts, parents: []preparable{r},
		compute: func(p int) []U {
			return f(p, r.computePartition(p))
		},
	}
}

// Filter keeps the elements for which pred is true.
func (r *RDD[T]) Filter(pred func(T) bool) *RDD[T] {
	return &RDD[T]{
		ctx: r.ctx, name: r.name + ".filter", parts: r.parts, parents: []preparable{r},
		compute: func(p int) []T {
			in := r.computePartition(p)
			out := make([]T, 0, len(in)/2)
			for _, v := range in {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out
		},
	}
}

// Union concatenates the partitions of both RDDs (no shuffle).
func (r *RDD[T]) Union(o *RDD[T]) *RDD[T] {
	return &RDD[T]{
		ctx: r.ctx, name: r.name + "+" + o.name, parts: r.parts + o.parts,
		parents: []preparable{r, o},
		compute: func(p int) []T {
			if p < r.parts {
				return r.computePartition(p)
			}
			return o.computePartition(p - r.parts)
		},
	}
}

// Sample keeps each element with probability frac, deterministically per
// (seed, partition).
func (r *RDD[T]) Sample(frac float64, seed int64) *RDD[T] {
	return &RDD[T]{
		ctx: r.ctx, name: r.name + ".sample", parts: r.parts, parents: []preparable{r},
		compute: func(p int) []T {
			rng := rand.New(rand.NewSource(seed + int64(p)*7919))
			in := r.computePartition(p)
			out := make([]T, 0, int(float64(len(in))*frac)+1)
			for _, v := range in {
				if rng.Float64() < frac {
					out = append(out, v)
				}
			}
			return out
		},
	}
}

// Cache materializes the RDD on first action and serves later accesses from
// memory, like Spark's persist(MEMORY_ONLY).
func (r *RDD[T]) Cache() *RDD[T] {
	cached := &RDD[T]{
		ctx: r.ctx, name: r.name + ".cache", parts: r.parts, parents: []preparable{r},
	}
	cached.doMaterialize = func() ([][]T, error) {
		out := make([][]T, r.parts)
		err := r.ctx.runStage(cached.name, r.parts, func(p int) (func(), int64, error) {
			part := r.computePartition(p)
			return func() { out[p] = part }, int64(len(part)), nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return cached
}

// runJob evaluates every partition of r in parallel and returns them.
func runJob[T any](r *RDD[T], name string) ([][]T, error) {
	if err := r.prepare(); err != nil {
		return nil, err
	}
	out := make([][]T, r.parts)
	err := r.ctx.runStage(name, r.parts, func(p int) (func(), int64, error) {
		part := r.computePartition(p)
		return func() {
			out[p] = part
			r.ctx.Metrics.recordsOut.Add(int64(len(part)))
		}, int64(len(part)), nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// mustRunJob is runJob for the panic-on-abort action API.
func mustRunJob[T any](r *RDD[T], name string) [][]T {
	parts, err := runJob(r, name)
	must(err)
	return parts
}

// Collect returns all elements in partition order.
func (r *RDD[T]) Collect() []T {
	parts := mustRunJob(r, r.name+".collect")
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// CollectPartitions returns the partitions without flattening.
func (r *RDD[T]) CollectPartitions() [][]T {
	return mustRunJob(r, r.name+".collectPartitions")
}

// Count returns the number of elements.
func (r *RDD[T]) Count() int64 {
	var total int64
	for _, n := range r.CountByPartition() {
		total += n
	}
	return total
}

// CountByPartition returns per-partition element counts (the input to the
// load-balance CV metric of Table 5).
func (r *RDD[T]) CountByPartition() []int64 {
	must(r.prepare())
	counts := make([]int64, r.parts)
	must(r.ctx.runStage(r.name+".count", r.parts, func(p int) (func(), int64, error) {
		n := int64(len(r.computePartition(p)))
		return func() { counts[p] = n }, n, nil
	}))
	return counts
}

// Reduce folds all elements with f. ok is false for an empty RDD.
func (r *RDD[T]) Reduce(f func(T, T) T) (result T, ok bool) {
	parts := mustRunJob(r, r.name+".reduce")
	for _, part := range parts {
		for _, v := range part {
			if !ok {
				result, ok = v, true
			} else {
				result = f(result, v)
			}
		}
	}
	return result, ok
}

// Aggregate folds each partition with seqOp from zero, then merges the
// per-partition results with combOp on the driver.
func Aggregate[T, U any](r *RDD[T], zero U, seqOp func(U, T) U, combOp func(U, U) U) U {
	must(r.prepare())
	partial := make([]U, r.parts)
	must(r.ctx.runStage(r.name+".aggregate", r.parts, func(p int) (func(), int64, error) {
		in := r.computePartition(p)
		acc := zero
		for _, v := range in {
			acc = seqOp(acc, v)
		}
		return func() { partial[p] = acc }, int64(len(in)), nil
	}))
	out := zero
	for _, u := range partial {
		out = combOp(out, u)
	}
	return out
}

// ForeachPartition runs fn over every partition for its side effects. The
// commit machinery runs fn exactly once per partition even under retries
// and speculation — but an attempt that fails partway may already have
// performed part of its effect, so fn's effects should be idempotent.
func (r *RDD[T]) ForeachPartition(fn func(p int, in []T)) {
	must(r.prepare())
	must(r.ctx.runStage(r.name+".foreach", r.parts, func(p int) (func(), int64, error) {
		in := r.computePartition(p)
		return func() { fn(p, in) }, int64(len(in)), nil
	}))
}
