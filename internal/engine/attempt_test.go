package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestHedgeFirstAttemptWins pins the fast path: one attempt, no hedges.
func TestHedgeFirstAttemptWins(t *testing.T) {
	v, st, err := Hedge(context.Background(), 3, AttemptConfig{},
		func(_ context.Context, cand, attempt int) (string, error) {
			return fmt.Sprintf("c%d-a%d", cand, attempt), nil
		})
	if err != nil || v != "c0-a0" {
		t.Fatalf("got %q, %v", v, err)
	}
	if st.Attempts != 1 || st.Hedges != 0 || st.Failovers != 0 || st.Winner != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestHedgeFailover pins that a failed attempt fails over to the next
// candidate and the stats record it.
func TestHedgeFailover(t *testing.T) {
	v, st, err := Hedge(context.Background(), 2, AttemptConfig{},
		func(_ context.Context, cand, attempt int) (int, error) {
			if cand == 0 {
				return 0, errors.New("replica down")
			}
			return 7 + attempt, nil
		})
	if err != nil || v != 8 {
		t.Fatalf("got %d, %v", v, err)
	}
	if st.Failovers != 1 || st.Winner != 1 || st.Attempts != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestHedgeAllFail pins the exhaustion path: MaxAttempts failures abort
// with the last error wrapped.
func TestHedgeAllFail(t *testing.T) {
	calls := 0
	_, st, err := Hedge(context.Background(), 2, AttemptConfig{MaxAttempts: 3},
		func(_ context.Context, cand, attempt int) (int, error) {
			calls++
			return 0, fmt.Errorf("boom %d", attempt)
		})
	if err == nil || !errors.Is(err, err) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if st.Attempts != 3 || st.Winner != -1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestHedgeSlowPrimary pins hedging: a silent primary gets a duplicate on
// the next candidate, the duplicate commits, and the slow loser is
// canceled — exactly-once, with the hedge counted.
func TestHedgeSlowPrimary(t *testing.T) {
	var canceled atomic.Bool
	v, st, err := Hedge(context.Background(), 2, AttemptConfig{HedgeAfter: 5 * time.Millisecond},
		func(ctx context.Context, cand, attempt int) (int, error) {
			if cand == 0 {
				select {
				case <-ctx.Done():
					canceled.Store(true)
					return 0, ctx.Err()
				case <-time.After(2 * time.Second):
					return 1, nil
				}
			}
			return 2, nil
		})
	if err != nil || v != 2 {
		t.Fatalf("got %d, %v", v, err)
	}
	if st.Hedges != 1 || st.Winner != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The losing primary sees cancellation promptly.
	deadline := time.Now().Add(time.Second)
	for !canceled.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !canceled.Load() {
		t.Fatal("losing attempt was not canceled")
	}
}

// TestHedgePermanent pins that a PermanentError stops retrying instantly.
func TestHedgePermanent(t *testing.T) {
	calls := 0
	sentinel := errors.New("generation conflict")
	_, st, err := Hedge(context.Background(), 4, AttemptConfig{},
		func(_ context.Context, cand, attempt int) (int, error) {
			calls++
			return 0, Permanent(sentinel)
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err=%v, want sentinel", err)
	}
	if calls != 1 || st.Attempts != 1 {
		t.Fatalf("permanent error retried: calls=%d %+v", calls, st)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
}

// TestHedgeContextCancel pins that caller cancellation aborts the call.
func TestHedgeContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	_, _, err := Hedge(ctx, 2, AttemptConfig{},
		func(ctx context.Context, cand, attempt int) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

// TestHedgeAttemptTimeout pins the per-attempt Timeout: a hung candidate
// times out and fails over.
func TestHedgeAttemptTimeout(t *testing.T) {
	v, st, err := Hedge(context.Background(), 2,
		AttemptConfig{Timeout: 5 * time.Millisecond},
		func(ctx context.Context, cand, attempt int) (int, error) {
			if cand == 0 {
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return 9, nil
		})
	if err != nil || v != 9 {
		t.Fatalf("got %d, %v", v, err)
	}
	if st.Failovers != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestHedgeNoCandidates pins the degenerate input.
func TestHedgeNoCandidates(t *testing.T) {
	_, _, err := Hedge(context.Background(), 0, AttemptConfig{},
		func(_ context.Context, _, _ int) (int, error) { return 0, nil })
	if err == nil {
		t.Fatal("want error for zero candidates")
	}
}
