package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMBRBasics(t *testing.T) {
	b := Box(2, 3, 0, 1) // normalized regardless of corner order
	if b.MinX != 0 || b.MinY != 1 || b.MaxX != 2 || b.MaxY != 3 {
		t.Fatalf("Box not normalized: %v", b)
	}
	if got := b.Width(); got != 2 {
		t.Errorf("Width = %g, want 2", got)
	}
	if got := b.Height(); got != 2 {
		t.Errorf("Height = %g, want 2", got)
	}
	if got := b.Area(); got != 4 {
		t.Errorf("Area = %g, want 4", got)
	}
	if got := b.Perimeter(); got != 8 {
		t.Errorf("Perimeter = %g, want 8", got)
	}
	if c := b.Center(); c != Pt(1, 2) {
		t.Errorf("Center = %v, want (1,2)", c)
	}
}

func TestEmptyMBR(t *testing.T) {
	e := EmptyMBR()
	if !e.IsEmpty() {
		t.Fatal("EmptyMBR not empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 {
		t.Error("empty box should have zero extent")
	}
	b := Box(0, 0, 1, 1)
	if got := e.Union(b); got != b {
		t.Errorf("empty union b = %v, want %v", got, b)
	}
	if got := b.Union(e); got != b {
		t.Errorf("b union empty = %v, want %v", got, b)
	}
	if e.Intersects(b) || b.Intersects(e) {
		t.Error("empty box must intersect nothing")
	}
	if !b.Contains(e) {
		t.Error("every box contains the empty box")
	}
}

func TestMBRIntersects(t *testing.T) {
	a := Box(0, 0, 10, 10)
	cases := []struct {
		name string
		b    MBR
		want bool
	}{
		{"inside", Box(2, 2, 3, 3), true},
		{"overlap", Box(5, 5, 15, 15), true},
		{"touch edge", Box(10, 0, 20, 10), true},
		{"touch corner", Box(10, 10, 20, 20), true},
		{"disjoint x", Box(11, 0, 20, 10), false},
		{"disjoint y", Box(0, 11, 10, 20), false},
		{"containing", Box(-5, -5, 15, 15), true},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%s: Intersects = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("%s (sym): Intersects = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMBRIntersection(t *testing.T) {
	a := Box(0, 0, 10, 10)
	b := Box(5, 5, 15, 15)
	got := a.Intersection(b)
	if got != Box(5, 5, 10, 10) {
		t.Errorf("Intersection = %v", got)
	}
	if !a.Intersection(Box(20, 20, 30, 30)).IsEmpty() {
		t.Error("disjoint intersection should be empty")
	}
}

func TestMBRDistanceTo(t *testing.T) {
	b := Box(0, 0, 10, 10)
	if d := b.DistanceTo(Pt(5, 5)); d != 0 {
		t.Errorf("inside distance = %g, want 0", d)
	}
	if d := b.DistanceTo(Pt(13, 14)); d != 5 {
		t.Errorf("corner distance = %g, want 5", d)
	}
	if d := b.DistanceTo(Pt(-3, 5)); d != 3 {
		t.Errorf("edge distance = %g, want 3", d)
	}
}

func TestMBRUnionProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// Union is commutative and contains both operands.
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a := Box(clampf(x1), clampf(y1), clampf(x2), clampf(y2))
		b := Box(clampf(x3), clampf(y3), clampf(x4), clampf(y4))
		u := a.Union(b)
		return u == b.Union(a) && u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func clampf(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestPointDistance(t *testing.T) {
	if d := Pt(0, 0).DistanceTo(Pt(3, 4)); d != 5 {
		t.Errorf("distance = %g, want 5", d)
	}
	if d := Pt(0, 0).SquaredDistanceTo(Pt(3, 4)); d != 25 {
		t.Errorf("squared distance = %g, want 25", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(x1, y1, x2, y2 float64) bool {
		a, b := Pt(clampf(x1), clampf(y1)), Pt(clampf(x2), clampf(y2))
		return a.DistanceTo(b) == b.DistanceTo(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLineStringBasics(t *testing.T) {
	l := NewLineString([]Point{{0, 0}, {3, 4}, {3, 8}})
	if l.NumPoints() != 3 {
		t.Fatalf("NumPoints = %d", l.NumPoints())
	}
	if got := l.Length(); got != 9 {
		t.Errorf("Length = %g, want 9", got)
	}
	if got := l.MBR(); got != Box(0, 0, 3, 8) {
		t.Errorf("MBR = %v", got)
	}
}

func TestLineStringPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty linestring")
		}
	}()
	NewLineString(nil)
}

func TestLineStringDistanceTo(t *testing.T) {
	l := NewLineString([]Point{{0, 0}, {10, 0}})
	if d := l.DistanceTo(Pt(5, 3)); d != 3 {
		t.Errorf("mid distance = %g, want 3", d)
	}
	if d := l.DistanceTo(Pt(-4, 3)); d != 5 {
		t.Errorf("end distance = %g, want 5", d)
	}
	single := NewLineString([]Point{{1, 1}})
	if d := single.DistanceTo(Pt(1, 4)); d != 3 {
		t.Errorf("single-point distance = %g, want 3", d)
	}
}

func TestLineStringIntersectsBox(t *testing.T) {
	l := NewLineString([]Point{{0, 0}, {10, 10}})
	if !l.IntersectsBox(Box(4, 4, 6, 6)) {
		t.Error("diagonal should cross central box")
	}
	// MBRs overlap but the segment passes outside the box.
	if l.IntersectsBox(Box(0, 8, 1, 10)) {
		t.Error("segment should miss corner box")
	}
	if !l.IntersectsBox(Box(-1, -1, 0, 0)) {
		t.Error("endpoint touch should intersect")
	}
}

func TestProjectPointOnSegment(t *testing.T) {
	p, tt := ProjectPointOnSegment(Pt(5, 5), Pt(0, 0), Pt(10, 0))
	if p != Pt(5, 0) || tt != 0.5 {
		t.Errorf("projection = %v t=%g", p, tt)
	}
	p, tt = ProjectPointOnSegment(Pt(-5, 5), Pt(0, 0), Pt(10, 0))
	if p != Pt(0, 0) || tt != 0 {
		t.Errorf("clamped projection = %v t=%g", p, tt)
	}
	// Degenerate zero-length segment.
	p, tt = ProjectPointOnSegment(Pt(1, 1), Pt(2, 2), Pt(2, 2))
	if p != Pt(2, 2) || tt != 0 {
		t.Errorf("degenerate projection = %v t=%g", p, tt)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		name       string
		a, b, c, d Point
		want       bool
	}{
		{"crossing", Pt(0, 0), Pt(10, 10), Pt(0, 10), Pt(10, 0), true},
		{"parallel", Pt(0, 0), Pt(10, 0), Pt(0, 1), Pt(10, 1), false},
		{"touch endpoint", Pt(0, 0), Pt(5, 5), Pt(5, 5), Pt(10, 0), true},
		{"collinear overlap", Pt(0, 0), Pt(10, 0), Pt(5, 0), Pt(15, 0), true},
		{"collinear disjoint", Pt(0, 0), Pt(4, 0), Pt(5, 0), Pt(9, 0), false},
		{"T junction", Pt(0, 0), Pt(10, 0), Pt(5, -5), Pt(5, 0), true},
		{"near miss", Pt(0, 0), Pt(10, 0), Pt(5, 0.001), Pt(5, 5), false},
	}
	for _, c := range cases {
		if got := SegmentsIntersect(c.a, c.b, c.c, c.d); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
		if got := SegmentsIntersect(c.c, c.d, c.a, c.b); got != c.want {
			t.Errorf("%s (sym): got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	// L-shaped polygon.
	pg := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}})
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(1, 1), true},
		{Pt(3, 1), true},
		{Pt(1, 3), true},
		{Pt(3, 3), false}, // inside MBR, outside L
		{Pt(5, 5), false},
		{Pt(0, 0), true}, // vertex
		{Pt(2, 0), true}, // on edge
	}
	for _, c := range cases {
		if got := pg.ContainsPoint(c.p); got != c.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPolygonWithHole(t *testing.T) {
	pg := NewPolygon(
		[]Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
		[]Point{{4, 4}, {6, 4}, {6, 6}, {4, 6}},
	)
	if !pg.ContainsPoint(Pt(2, 2)) {
		t.Error("point in solid region should be inside")
	}
	if pg.ContainsPoint(Pt(5, 5)) {
		t.Error("point in hole should be outside")
	}
	if got, want := pg.Area(), 96.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Area = %g, want %g", got, want)
	}
}

func TestPolygonClosedRingAccepted(t *testing.T) {
	open := NewPolygon([]Point{{0, 0}, {1, 0}, {1, 1}})
	closed := NewPolygon([]Point{{0, 0}, {1, 0}, {1, 1}, {0, 0}})
	if open.Area() != closed.Area() {
		t.Error("open and closed ring encodings should agree")
	}
	if len(closed.Exterior()) != 3 {
		t.Errorf("closing vertex not dropped: %d vertices", len(closed.Exterior()))
	}
}

func TestPolygonCentroidAndArea(t *testing.T) {
	sq := NewPolygon([]Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}})
	if got := sq.Area(); got != 4 {
		t.Errorf("Area = %g, want 4", got)
	}
	if c := sq.Centroid(); math.Abs(c.X-1) > 1e-12 || math.Abs(c.Y-1) > 1e-12 {
		t.Errorf("Centroid = %v, want (1,1)", c)
	}
}

func TestPolygonIntersectsBox(t *testing.T) {
	pg := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}})
	if !pg.IntersectsBox(Box(1, 1, 1.5, 1.5)) {
		t.Error("box inside polygon")
	}
	if !pg.IntersectsBox(Box(-1, -1, 5, 5)) {
		t.Error("box containing polygon")
	}
	if pg.IntersectsBox(Box(3, 3, 3.9, 3.9)) {
		t.Error("box in the L notch should not intersect")
	}
	if pg.IntersectsBox(Box(10, 10, 20, 20)) {
		t.Error("disjoint box")
	}
}

func TestPolygonIntersectsPolygon(t *testing.T) {
	a := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	b := NewPolygon([]Point{{2, 2}, {6, 2}, {6, 6}, {2, 6}})
	c := NewPolygon([]Point{{10, 10}, {12, 10}, {12, 12}, {10, 12}})
	inner := NewPolygon([]Point{{1, 1}, {2, 1}, {2, 2}, {1, 2}})
	if !a.IntersectsPolygon(b) || !b.IntersectsPolygon(a) {
		t.Error("overlapping polygons")
	}
	if a.IntersectsPolygon(c) {
		t.Error("disjoint polygons")
	}
	if !a.IntersectsPolygon(inner) || !inner.IntersectsPolygon(a) {
		t.Error("contained polygon")
	}
}

func TestPolygonIntersectsLineString(t *testing.T) {
	pg := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	crossing := NewLineString([]Point{{-2, 2}, {6, 2}})
	inside := NewLineString([]Point{{1, 1}, {2, 2}})
	outside := NewLineString([]Point{{5, 5}, {6, 6}})
	if !pg.IntersectsLineString(crossing) {
		t.Error("crossing line")
	}
	if !pg.IntersectsLineString(inside) {
		t.Error("contained line")
	}
	if pg.IntersectsLineString(outside) {
		t.Error("disjoint line")
	}
}

func TestHaversine(t *testing.T) {
	// Paris -> London, roughly 344 km.
	paris := Pt(2.3522, 48.8566)
	london := Pt(-0.1276, 51.5072)
	d := HaversineMeters(paris, london)
	if d < 330e3 || d > 360e3 {
		t.Errorf("Paris-London = %g m, want ~344 km", d)
	}
	if HaversineMeters(paris, paris) != 0 {
		t.Error("zero distance to self")
	}
}

func TestMetersDegreesRoundTrip(t *testing.T) {
	m := 1234.5
	if got := DegreesLatToMeters(MetersToDegreesLat(m)); math.Abs(got-m) > 1e-6 {
		t.Errorf("round trip = %g, want %g", got, m)
	}
	// 1 degree of longitude at the equator ~ 111 km.
	if d := MetersToDegreesLon(111194.9, 0); math.Abs(d-1) > 0.01 {
		t.Errorf("1 deg lon at equator = %g", d)
	}
}

func TestGeometriesIntersectDispatch(t *testing.T) {
	pg := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	ls := NewLineString([]Point{{-2, 2}, {6, 2}})
	cases := []struct {
		name string
		a, b Geometry
		want bool
	}{
		{"point-point eq", Pt(1, 1), Pt(1, 1), true},
		{"point-point ne", Pt(1, 1), Pt(1, 2), false},
		{"point-polygon in", Pt(2, 2), pg, true},
		{"polygon-point out", pg, Pt(9, 9), false},
		{"line-polygon", ls, pg, true},
		{"polygon-line", pg, ls, true},
		{"box-polygon", Box(1, 1, 2, 2), pg, true},
		{"line-line cross", ls, NewLineString([]Point{{0, 0}, {0, 5}}), true},
		{"line-line miss", ls, NewLineString([]Point{{0, 3}, {6, 3}}), false},
		{"point-line on", Pt(0, 2), ls, true},
	}
	for _, c := range cases {
		if got := GeometriesIntersect(c.a, c.b); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestGeometryDistance(t *testing.T) {
	pg := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	if d := GeometryDistance(Pt(7, 4), pg); d != 3 {
		t.Errorf("point-polygon = %g, want 3", d)
	}
	if d := GeometryDistance(pg, Pt(2, 2)); d != 0 {
		t.Errorf("inside = %g, want 0", d)
	}
}

func TestLineStringCentroid(t *testing.T) {
	l := NewLineString([]Point{{0, 0}, {10, 0}})
	if c := l.Centroid(); c != Pt(5, 0) {
		t.Errorf("Centroid = %v, want (5,0)", c)
	}
	single := NewLineString([]Point{{3, 4}})
	if c := single.Centroid(); c != Pt(3, 4) {
		t.Errorf("single Centroid = %v", c)
	}
}

// Property: for random boxes and points, MBR.DistanceTo is 0 iff the point
// is contained.
func TestMBRDistanceZeroIffContained(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		b := Box(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		p := Pt(rng.Float64()*12-1, rng.Float64()*12-1)
		if (b.DistanceTo(p) == 0) != b.ContainsPoint(p) {
			t.Fatalf("distance-zero/containment disagree: %v %v", b, p)
		}
	}
}

// Property: polygon containment of its own centroid for random convex
// quadrilaterals (convexity by construction around a circle).
func TestPolygonContainsOwnCentroidConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		r := 1 + rng.Float64()*10
		var ring []Point
		for k := 0; k < 8; k++ {
			ang := (float64(k) + rng.Float64()*0.5) / 8 * 2 * math.Pi
			ring = append(ring, Pt(cx+r*math.Cos(ang), cy+r*math.Sin(ang)))
		}
		pg := NewPolygon(ring)
		if !pg.ContainsPoint(pg.Centroid()) {
			t.Fatalf("convex polygon does not contain its centroid: %v", pg)
		}
	}
}

// Property: SegmentIntersectsBox agrees with a brute-force sampling check
// for random segments and boxes (sampling can only prove intersection, so
// assert one direction).
func TestSegmentIntersectsBoxSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		a := Pt(rng.Float64()*10, rng.Float64()*10)
		b := Pt(rng.Float64()*10, rng.Float64()*10)
		box := Box(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		hitBySample := false
		for s := 0; s <= 100; s++ {
			tt := float64(s) / 100
			p := Pt(a.X+(b.X-a.X)*tt, a.Y+(b.Y-a.Y)*tt)
			if box.ContainsPoint(p) {
				hitBySample = true
				break
			}
		}
		if hitBySample && !SegmentIntersectsBox(a, b, box) {
			t.Fatalf("sample found hit but predicate says miss: %v %v %v", a, b, box)
		}
	}
}
