// Package geom provides the planar and geodesic geometry primitives used
// throughout ST4ML: points, bounding boxes, line strings, and polygons,
// together with the intersection, containment, and distance predicates that
// the indexes, partitioners, and converters are built on.
//
// Coordinates follow the (longitude, latitude) = (X, Y) convention of the
// paper's datasets. Predicates operate in the planar sense; metric distances
// (metres) are available through the haversine helpers in distance.go.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-d location. X is longitude (or planar x), Y is latitude.
type Point struct {
	X, Y float64
}

// Pt is a shorthand constructor for Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// MBR returns the degenerate bounding box of the point.
func (p Point) MBR() MBR { return MBR{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y} }

// Centroid returns the point itself.
func (p Point) Centroid() Point { return p }

// Equal reports whether two points have identical coordinates.
func (p Point) Equal(q Point) bool { return p.X == q.X && p.Y == q.Y }

// DistanceTo returns the planar Euclidean distance to q.
func (p Point) DistanceTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SquaredDistanceTo returns the squared planar distance to q, avoiding the
// square root for comparison-only callers.
func (p Point) SquaredDistanceTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// IntersectsBox reports whether the point lies inside (or on the border of) b.
func (p Point) IntersectsBox(b MBR) bool { return b.ContainsPoint(p) }

// String formats the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// MBR is a minimum bounding rectangle (an axis-aligned 2-d box). An MBR with
// MinX > MaxX is treated as empty.
type MBR struct {
	MinX, MinY, MaxX, MaxY float64
}

// Box constructs an MBR from two corner coordinates, normalizing order.
func Box(x1, y1, x2, y2 float64) MBR {
	return MBR{
		MinX: math.Min(x1, x2), MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2), MaxY: math.Max(y1, y2),
	}
}

// EmptyMBR returns the identity element for Union: a box that contains
// nothing and unions to the other operand.
func EmptyMBR() MBR {
	return MBR{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
}

// IsEmpty reports whether the box contains no points.
func (b MBR) IsEmpty() bool { return b.MinX > b.MaxX || b.MinY > b.MaxY }

// Width returns the X extent (0 for empty boxes).
func (b MBR) Width() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxX - b.MinX
}

// Height returns the Y extent (0 for empty boxes).
func (b MBR) Height() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxY - b.MinY
}

// Area returns the area of the box (0 for empty boxes).
func (b MBR) Area() float64 { return b.Width() * b.Height() }

// Perimeter returns the box perimeter (0 for empty boxes).
func (b MBR) Perimeter() float64 { return 2 * (b.Width() + b.Height()) }

// Center returns the box center. Undefined for empty boxes.
func (b MBR) Center() Point { return Point{X: (b.MinX + b.MaxX) / 2, Y: (b.MinY + b.MaxY) / 2} }

// Centroid returns the box center, satisfying the Geometry interface.
func (b MBR) Centroid() Point { return b.Center() }

// ContainsPoint reports whether p lies inside or on the border of b.
func (b MBR) ContainsPoint(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Contains reports whether o lies entirely inside b. Every box contains the
// empty box.
func (b MBR) Contains(o MBR) bool {
	if o.IsEmpty() {
		return true
	}
	return o.MinX >= b.MinX && o.MaxX <= b.MaxX && o.MinY >= b.MinY && o.MaxY <= b.MaxY
}

// Intersects reports whether the two boxes share at least one point
// (touching borders count). Empty boxes intersect nothing.
func (b MBR) Intersects(o MBR) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX && b.MinY <= o.MaxY && o.MinY <= b.MaxY
}

// Intersection returns the overlapping region of the two boxes, which is
// empty when they do not intersect.
func (b MBR) Intersection(o MBR) MBR {
	r := MBR{
		MinX: math.Max(b.MinX, o.MinX), MinY: math.Max(b.MinY, o.MinY),
		MaxX: math.Min(b.MaxX, o.MaxX), MaxY: math.Min(b.MaxY, o.MaxY),
	}
	if r.IsEmpty() {
		return EmptyMBR()
	}
	return r
}

// Union returns the smallest box containing both operands.
func (b MBR) Union(o MBR) MBR {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return MBR{
		MinX: math.Min(b.MinX, o.MinX), MinY: math.Min(b.MinY, o.MinY),
		MaxX: math.Max(b.MaxX, o.MaxX), MaxY: math.Max(b.MaxY, o.MaxY),
	}
}

// ExpandToPoint returns the smallest box containing b and p.
func (b MBR) ExpandToPoint(p Point) MBR { return b.Union(p.MBR()) }

// Buffer returns the box grown by d on every side.
func (b MBR) Buffer(d float64) MBR {
	if b.IsEmpty() {
		return b
	}
	return MBR{MinX: b.MinX - d, MinY: b.MinY - d, MaxX: b.MaxX + d, MaxY: b.MaxY + d}
}

// MBR returns the receiver, satisfying the Geometry interface.
func (b MBR) MBR() MBR { return b }

// IntersectsBox is Intersects under the Geometry interface.
func (b MBR) IntersectsBox(o MBR) bool { return b.Intersects(o) }

// DistanceTo returns the planar distance from the box to p (0 if inside).
func (b MBR) DistanceTo(p Point) float64 {
	if b.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(b.MinX-p.X, p.X-b.MaxX))
	dy := math.Max(0, math.Max(b.MinY-p.Y, p.Y-b.MaxY))
	return math.Sqrt(dx*dx + dy*dy)
}

// ToPolygon converts the box to an equivalent 4-vertex polygon.
func (b MBR) ToPolygon() *Polygon {
	return NewPolygon([]Point{
		{b.MinX, b.MinY}, {b.MaxX, b.MinY}, {b.MaxX, b.MaxY}, {b.MinX, b.MaxY},
	})
}

// String formats the box as "[minx,miny | maxx,maxy]".
func (b MBR) String() string {
	return fmt.Sprintf("[%g,%g | %g,%g]", b.MinX, b.MinY, b.MaxX, b.MaxY)
}

// Geometry is the spatial field type of an ST entry: anything with a
// bounding box, a representative point, a planar distance to a point, and a
// box-intersection predicate. Point, MBR, *LineString, and *Polygon all
// satisfy it.
type Geometry interface {
	MBR() MBR
	Centroid() Point
	DistanceTo(p Point) float64
	IntersectsBox(b MBR) bool
}

var (
	_ Geometry = Point{}
	_ Geometry = MBR{}
	_ Geometry = (*LineString)(nil)
	_ Geometry = (*Polygon)(nil)
)
