package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// WKT (well-known text) encoding for POINT, LINESTRING, and POLYGON — the
// exchange format geospatial databases hand to ingestion pipelines (§2.1's
// linestring-shaped trajectory records).

// MarshalWKT renders a geometry as WKT. MBRs render as their polygon.
func MarshalWKT(g Geometry) string {
	switch v := g.(type) {
	case Point:
		return fmt.Sprintf("POINT (%s %s)", fmtCoord(v.X), fmtCoord(v.Y))
	case *LineString:
		var sb strings.Builder
		sb.WriteString("LINESTRING (")
		writeCoords(&sb, v.Points())
		sb.WriteString(")")
		return sb.String()
	case *Polygon:
		var sb strings.Builder
		sb.WriteString("POLYGON ((")
		writeRingClosed(&sb, v.Exterior())
		sb.WriteString(")")
		for i := 0; i < v.NumHoles(); i++ {
			sb.WriteString(", (")
			writeRingClosed(&sb, v.Hole(i))
			sb.WriteString(")")
		}
		sb.WriteString(")")
		return sb.String()
	case MBR:
		return MarshalWKT(v.ToPolygon())
	default:
		return fmt.Sprintf("POINT (%s %s)", fmtCoord(g.Centroid().X), fmtCoord(g.Centroid().Y))
	}
}

func fmtCoord(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

func writeCoords(sb *strings.Builder, pts []Point) {
	for i, p := range pts {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(fmtCoord(p.X))
		sb.WriteString(" ")
		sb.WriteString(fmtCoord(p.Y))
	}
}

func writeRingClosed(sb *strings.Builder, ring []Point) {
	writeCoords(sb, ring)
	if len(ring) > 0 {
		sb.WriteString(", ")
		sb.WriteString(fmtCoord(ring[0].X))
		sb.WriteString(" ")
		sb.WriteString(fmtCoord(ring[0].Y))
	}
}

// ParseWKT parses a POINT, LINESTRING, or POLYGON literal (case- and
// whitespace-insensitive).
func ParseWKT(s string) (Geometry, error) {
	s = strings.TrimSpace(s)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasPrefix(upper, "POINT"):
		body, err := wktBody(s, "POINT")
		if err != nil {
			return nil, err
		}
		pts, err := parseCoordList(body)
		if err != nil {
			return nil, err
		}
		if len(pts) != 1 {
			return nil, fmt.Errorf("geom: POINT needs one coordinate, got %d", len(pts))
		}
		return pts[0], nil
	case strings.HasPrefix(upper, "LINESTRING"):
		body, err := wktBody(s, "LINESTRING")
		if err != nil {
			return nil, err
		}
		pts, err := parseCoordList(body)
		if err != nil {
			return nil, err
		}
		if len(pts) == 0 {
			return nil, fmt.Errorf("geom: empty LINESTRING")
		}
		return NewLineString(pts), nil
	case strings.HasPrefix(upper, "POLYGON"):
		body, err := wktBody(s, "POLYGON")
		if err != nil {
			return nil, err
		}
		rings, err := parseRings(body)
		if err != nil {
			return nil, err
		}
		if len(rings) == 0 {
			return nil, fmt.Errorf("geom: empty POLYGON")
		}
		for _, ring := range rings {
			if len(dropClosingVertex(ring)) < 3 {
				return nil, fmt.Errorf("geom: POLYGON ring needs >= 3 vertices")
			}
		}
		return NewPolygon(rings[0], rings[1:]...), nil
	default:
		return nil, fmt.Errorf("geom: unsupported WKT %q", truncate(s, 32))
	}
}

// wktBody extracts the outermost-parenthesized body after the keyword.
func wktBody(s, keyword string) (string, error) {
	rest := strings.TrimSpace(s[len(keyword):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("geom: malformed %s body", keyword)
	}
	return rest[1 : len(rest)-1], nil
}

// parseCoordList parses "x y, x y, ..." into points.
func parseCoordList(body string) ([]Point, error) {
	parts := strings.Split(body, ",")
	pts := make([]Point, 0, len(parts))
	for _, part := range parts {
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return nil, fmt.Errorf("geom: bad coordinate %q", strings.TrimSpace(part))
		}
		x, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("geom: bad x %q: %w", fields[0], err)
		}
		y, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("geom: bad y %q: %w", fields[1], err)
		}
		pts = append(pts, Pt(x, y))
	}
	return pts, nil
}

// parseRings parses "(ring), (ring), ..." into coordinate rings.
func parseRings(body string) ([][]Point, error) {
	var rings [][]Point
	depth := 0
	start := -1
	for i, c := range body {
		switch c {
		case '(':
			if depth == 0 {
				start = i + 1
			}
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("geom: unbalanced parentheses")
			}
			if depth == 0 {
				ring, err := parseCoordList(body[start:i])
				if err != nil {
					return nil, err
				}
				rings = append(rings, ring)
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("geom: unbalanced parentheses")
	}
	return rings, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
