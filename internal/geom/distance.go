package geom

import "math"

// EarthRadiusMeters is the mean Earth radius used by the haversine helpers.
const EarthRadiusMeters = 6371008.8

// HaversineMeters returns the great-circle distance in metres between two
// lon/lat points expressed in degrees.
func HaversineMeters(a, b Point) float64 {
	lat1 := a.Y * math.Pi / 180
	lat2 := b.Y * math.Pi / 180
	dLat := (b.Y - a.Y) * math.Pi / 180
	dLon := (b.X - a.X) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}

// MetersToDegreesLat converts a metre distance to the equivalent latitude
// span in degrees.
func MetersToDegreesLat(m float64) float64 {
	return m / EarthRadiusMeters * 180 / math.Pi
}

// MetersToDegreesLon converts a metre distance to the equivalent longitude
// span in degrees at latitude lat.
func MetersToDegreesLon(m, lat float64) float64 {
	return m / (EarthRadiusMeters * math.Cos(lat*math.Pi/180)) * 180 / math.Pi
}

// DegreesLatToMeters converts a latitude span in degrees to metres.
func DegreesLatToMeters(deg float64) float64 {
	return deg * math.Pi / 180 * EarthRadiusMeters
}

// GeometryDistance returns the planar distance between two geometries,
// approximated via centroids for shape pairs without an exact kernel. Exact
// for point-point, point-line, point-polygon (and the symmetric cases).
func GeometryDistance(a, b Geometry) float64 {
	if pa, ok := a.(Point); ok {
		return b.DistanceTo(pa)
	}
	if pb, ok := b.(Point); ok {
		return a.DistanceTo(pb)
	}
	return a.Centroid().DistanceTo(b.Centroid())
}

// GeometriesIntersect reports whether the two geometries share a point,
// dispatching to the exact predicate where one exists and falling back to
// MBR intersection otherwise.
func GeometriesIntersect(a, b Geometry) bool {
	if !a.MBR().Intersects(b.MBR()) {
		return false
	}
	switch ga := a.(type) {
	case Point:
		return geometryCoversPoint(b, ga)
	case *Polygon:
		switch gb := b.(type) {
		case Point:
			return ga.ContainsPoint(gb)
		case *Polygon:
			return ga.IntersectsPolygon(gb)
		case *LineString:
			return ga.IntersectsLineString(gb)
		case MBR:
			return ga.IntersectsBox(gb)
		}
	case *LineString:
		switch gb := b.(type) {
		case Point:
			return ga.DistanceTo(gb) == 0
		case *Polygon:
			return gb.IntersectsLineString(ga)
		case MBR:
			return ga.IntersectsBox(gb)
		case *LineString:
			return lineStringsIntersect(ga, gb)
		}
	case MBR:
		return b.IntersectsBox(ga)
	}
	return true // MBRs intersect and no exact kernel: conservative yes
}

func geometryCoversPoint(g Geometry, p Point) bool {
	switch gg := g.(type) {
	case Point:
		return gg.Equal(p)
	case MBR:
		return gg.ContainsPoint(p)
	case *Polygon:
		return gg.ContainsPoint(p)
	case *LineString:
		return gg.DistanceTo(p) == 0
	default:
		return g.IntersectsBox(p.MBR())
	}
}

func lineStringsIntersect(a, b *LineString) bool {
	ap, bp := a.Points(), b.Points()
	if len(ap) == 1 {
		return b.DistanceTo(ap[0]) == 0
	}
	if len(bp) == 1 {
		return a.DistanceTo(bp[0]) == 0
	}
	for i := 1; i < len(ap); i++ {
		segBox := Box(ap[i-1].X, ap[i-1].Y, ap[i].X, ap[i].Y)
		if !segBox.Intersects(b.MBR()) {
			continue
		}
		for j := 1; j < len(bp); j++ {
			if SegmentsIntersect(ap[i-1], ap[i], bp[j-1], bp[j]) {
				return true
			}
		}
	}
	return false
}
