package geom

import "testing"

// FuzzParseWKT: arbitrary input must parse cleanly or error — never panic —
// and successful parses must survive a marshal/parse round trip.
func FuzzParseWKT(f *testing.F) {
	f.Add("POINT (1 2)")
	f.Add("LINESTRING (0 0, 1 1, 2 2)")
	f.Add("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))")
	f.Add("POLYGON ((0 0, 4 0, 4 4, 0 4), (1 1, 2 1, 2 2, 1 2))")
	f.Add("point(1 2)")
	f.Add("POLYGON ((")
	f.Add("LINESTRING (nan inf)")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := ParseWKT(s)
		if err != nil {
			return
		}
		again, err := ParseWKT(MarshalWKT(g))
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", MarshalWKT(g), s, err)
		}
		if again.MBR() != g.MBR() && !(again.MBR().IsEmpty() && g.MBR().IsEmpty()) {
			// NaN coordinates legitimately break MBR equality; allow them.
			b := g.MBR()
			if b.MinX == b.MinX && b.MinY == b.MinY { // not NaN
				t.Fatalf("round trip changed MBR: %v -> %v", g.MBR(), again.MBR())
			}
		}
	})
}
