package geom

import (
	"fmt"
	"math"
	"strings"
)

// Polygon is a simple polygon with an exterior ring and optional interior
// rings (holes). Rings are stored without a closing duplicate vertex; the
// closure edge from the last vertex back to the first is implicit.
type Polygon struct {
	exterior []Point
	holes    [][]Point
	mbr      MBR
}

// NewPolygon constructs a polygon from an exterior ring of at least three
// vertices and optional holes. Rings are retained, not copied. A trailing
// vertex equal to the first is dropped so both open and closed ring
// encodings are accepted. NewPolygon panics on rings with fewer than three
// distinct vertices.
func NewPolygon(exterior []Point, holes ...[]Point) *Polygon {
	exterior = dropClosingVertex(exterior)
	if len(exterior) < 3 {
		panic("geom: polygon exterior needs >= 3 vertices")
	}
	mbr := EmptyMBR()
	for _, p := range exterior {
		mbr = mbr.ExpandToPoint(p)
	}
	cleaned := make([][]Point, 0, len(holes))
	for _, h := range holes {
		h = dropClosingVertex(h)
		if len(h) < 3 {
			panic("geom: polygon hole needs >= 3 vertices")
		}
		cleaned = append(cleaned, h)
	}
	return &Polygon{exterior: exterior, holes: cleaned, mbr: mbr}
}

func dropClosingVertex(ring []Point) []Point {
	if len(ring) >= 2 && ring[0].Equal(ring[len(ring)-1]) {
		return ring[:len(ring)-1]
	}
	return ring
}

// Rect returns the rectangular polygon covering b.
func Rect(b MBR) *Polygon { return b.ToPolygon() }

// Exterior returns the exterior ring vertices (not to be mutated).
func (pg *Polygon) Exterior() []Point { return pg.exterior }

// NumHoles returns the number of interior rings.
func (pg *Polygon) NumHoles() int { return len(pg.holes) }

// Hole returns the i-th interior ring.
func (pg *Polygon) Hole(i int) []Point { return pg.holes[i] }

// MBR returns the bounding box of the exterior ring.
func (pg *Polygon) MBR() MBR { return pg.mbr }

// Area returns the planar area of the polygon (exterior minus holes).
func (pg *Polygon) Area() float64 {
	a := math.Abs(ringArea(pg.exterior))
	for _, h := range pg.holes {
		a -= math.Abs(ringArea(h))
	}
	return a
}

// ringArea returns the signed shoelace area of a ring.
func ringArea(ring []Point) float64 {
	var s float64
	n := len(ring)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += ring[i].X*ring[j].Y - ring[j].X*ring[i].Y
	}
	return s / 2
}

// Centroid returns the area-weighted centroid of the exterior ring
// (ignoring holes, which is adequate for partitioning and indexing).
func (pg *Polygon) Centroid() Point {
	var cx, cy float64
	a := ringArea(pg.exterior)
	if a == 0 {
		return pg.mbr.Center()
	}
	n := len(pg.exterior)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		f := pg.exterior[i].X*pg.exterior[j].Y - pg.exterior[j].X*pg.exterior[i].Y
		cx += (pg.exterior[i].X + pg.exterior[j].X) * f
		cy += (pg.exterior[i].Y + pg.exterior[j].Y) * f
	}
	return Point{X: cx / (6 * a), Y: cy / (6 * a)}
}

// ContainsPoint reports whether p lies inside the polygon (border points
// count as inside), using even-odd ray casting over all rings.
func (pg *Polygon) ContainsPoint(p Point) bool {
	if !pg.mbr.ContainsPoint(p) {
		return false
	}
	if pointOnRing(p, pg.exterior) {
		return true
	}
	if !pointInRing(p, pg.exterior) {
		return false
	}
	for _, h := range pg.holes {
		if pointInRing(p, h) && !pointOnRing(p, h) {
			return false
		}
	}
	return true
}

// pointInRing performs even-odd ray casting (border behaviour undefined;
// callers handle borders via pointOnRing first).
func pointInRing(p Point, ring []Point) bool {
	in := false
	n := len(ring)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := ring[i], ring[j]
		if (a.Y > p.Y) != (b.Y > p.Y) &&
			p.X < (b.X-a.X)*(p.Y-a.Y)/(b.Y-a.Y)+a.X {
			in = !in
		}
	}
	return in
}

// pointOnRing reports whether p lies on any edge of the ring.
func pointOnRing(p Point, ring []Point) bool {
	n := len(ring)
	for i := 0; i < n; i++ {
		a, b := ring[i], ring[(i+1)%n]
		if cross(a, b, p) == 0 && onSegment(a, b, p) {
			return true
		}
	}
	return false
}

// DistanceTo returns the planar distance from p to the polygon: zero when p
// is inside, otherwise the distance to the nearest edge.
func (pg *Polygon) DistanceTo(p Point) float64 {
	if pg.ContainsPoint(p) {
		return 0
	}
	min := ringDistance(p, pg.exterior)
	for _, h := range pg.holes {
		if d := ringDistance(p, h); d < min {
			min = d
		}
	}
	return min
}

func ringDistance(p Point, ring []Point) float64 {
	min := math.Inf(1)
	n := len(ring)
	for i := 0; i < n; i++ {
		d := PointSegmentDistance(p, ring[i], ring[(i+1)%n])
		if d < min {
			min = d
		}
	}
	return min
}

// IntersectsBox reports whether the polygon and box r share any point.
func (pg *Polygon) IntersectsBox(r MBR) bool {
	if !pg.mbr.Intersects(r) {
		return false
	}
	// A polygon vertex inside the box, or a box corner inside the polygon,
	// or any edge crossing decides intersection.
	for _, v := range pg.exterior {
		if r.ContainsPoint(v) {
			return true
		}
	}
	if pg.ContainsPoint(Point{r.MinX, r.MinY}) || pg.ContainsPoint(Point{r.MaxX, r.MinY}) ||
		pg.ContainsPoint(Point{r.MaxX, r.MaxY}) || pg.ContainsPoint(Point{r.MinX, r.MaxY}) {
		return true
	}
	n := len(pg.exterior)
	for i := 0; i < n; i++ {
		if SegmentIntersectsBox(pg.exterior[i], pg.exterior[(i+1)%n], r) {
			return true
		}
	}
	return false
}

// IntersectsPolygon reports whether the two polygons share any point,
// testing mutual containment and edge crossings of exterior rings.
func (pg *Polygon) IntersectsPolygon(o *Polygon) bool {
	if !pg.mbr.Intersects(o.mbr) {
		return false
	}
	if pg.ContainsPoint(o.exterior[0]) || o.ContainsPoint(pg.exterior[0]) {
		return true
	}
	n, m := len(pg.exterior), len(o.exterior)
	for i := 0; i < n; i++ {
		a, b := pg.exterior[i], pg.exterior[(i+1)%n]
		for j := 0; j < m; j++ {
			if SegmentsIntersect(a, b, o.exterior[j], o.exterior[(j+1)%m]) {
				return true
			}
		}
	}
	return false
}

// IntersectsLineString reports whether any segment of l crosses or touches
// the polygon (including full containment of l).
func (pg *Polygon) IntersectsLineString(l *LineString) bool {
	if !pg.mbr.Intersects(l.MBR()) {
		return false
	}
	pts := l.Points()
	if pg.ContainsPoint(pts[0]) {
		return true
	}
	for i := 1; i < len(pts); i++ {
		if pg.segmentCrossesExterior(pts[i-1], pts[i]) {
			return true
		}
	}
	return false
}

// IntersectsSegment reports whether segment ab crosses or touches the
// polygon (including full containment of the segment).
func (pg *Polygon) IntersectsSegment(a, b Point) bool {
	if !pg.mbr.Intersects(Box(a.X, a.Y, b.X, b.Y)) {
		return false
	}
	if pg.ContainsPoint(a) || pg.ContainsPoint(b) {
		return true
	}
	return pg.segmentCrossesExterior(a, b)
}

func (pg *Polygon) segmentCrossesExterior(a, b Point) bool {
	n := len(pg.exterior)
	for j := 0; j < n; j++ {
		if SegmentsIntersect(a, b, pg.exterior[j], pg.exterior[(j+1)%n]) {
			return true
		}
	}
	return false
}

// String formats the polygon exterior as "POLYGON((x y, ...))".
func (pg *Polygon) String() string {
	var sb strings.Builder
	sb.WriteString("POLYGON((")
	for i, p := range pg.exterior {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%g %g", p.X, p.Y)
	}
	sb.WriteString("))")
	return sb.String()
}
