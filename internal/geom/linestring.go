package geom

import (
	"fmt"
	"math"
	"strings"
)

// LineString is an ordered polyline of at least one point. Trajectory shapes
// and road segments are line strings.
type LineString struct {
	points []Point
	mbr    MBR
}

// NewLineString constructs a line string over pts. The slice is retained;
// callers must not mutate it afterwards. NewLineString panics on an empty
// slice — an empty shape is a programming error, not a data condition.
func NewLineString(pts []Point) *LineString {
	if len(pts) == 0 {
		panic("geom: empty LineString")
	}
	mbr := EmptyMBR()
	for _, p := range pts {
		mbr = mbr.ExpandToPoint(p)
	}
	return &LineString{points: pts, mbr: mbr}
}

// Points returns the underlying vertices. The slice must not be mutated.
func (l *LineString) Points() []Point { return l.points }

// NumPoints returns the vertex count.
func (l *LineString) NumPoints() int { return len(l.points) }

// Point returns the i-th vertex.
func (l *LineString) Point(i int) Point { return l.points[i] }

// MBR returns the bounding box of the polyline.
func (l *LineString) MBR() MBR { return l.mbr }

// Centroid returns the length-weighted centroid of the segments (the single
// vertex for one-point lines).
func (l *LineString) Centroid() Point {
	if len(l.points) == 1 {
		return l.points[0]
	}
	var cx, cy, total float64
	for i := 1; i < len(l.points); i++ {
		a, b := l.points[i-1], l.points[i]
		w := a.DistanceTo(b)
		cx += w * (a.X + b.X) / 2
		cy += w * (a.Y + b.Y) / 2
		total += w
	}
	if total == 0 {
		return l.points[0]
	}
	return Point{X: cx / total, Y: cy / total}
}

// Length returns the planar length of the polyline.
func (l *LineString) Length() float64 {
	var sum float64
	for i := 1; i < len(l.points); i++ {
		sum += l.points[i-1].DistanceTo(l.points[i])
	}
	return sum
}

// LengthMeters returns the geodesic (haversine) length in metres, treating
// coordinates as lon/lat degrees.
func (l *LineString) LengthMeters() float64 {
	var sum float64
	for i := 1; i < len(l.points); i++ {
		sum += HaversineMeters(l.points[i-1], l.points[i])
	}
	return sum
}

// DistanceTo returns the planar distance from p to the nearest segment.
func (l *LineString) DistanceTo(p Point) float64 {
	if len(l.points) == 1 {
		return p.DistanceTo(l.points[0])
	}
	min := math.Inf(1)
	for i := 1; i < len(l.points); i++ {
		d := PointSegmentDistance(p, l.points[i-1], l.points[i])
		if d < min {
			min = d
		}
	}
	return min
}

// IntersectsBox reports whether any segment of the polyline intersects b
// (or, for single-point lines, whether the point lies in b).
func (l *LineString) IntersectsBox(b MBR) bool {
	if !l.mbr.Intersects(b) {
		return false
	}
	if len(l.points) == 1 {
		return b.ContainsPoint(l.points[0])
	}
	for i := 1; i < len(l.points); i++ {
		if SegmentIntersectsBox(l.points[i-1], l.points[i], b) {
			return true
		}
	}
	return false
}

// String formats the line string as "LINESTRING(x y, x y, ...)".
func (l *LineString) String() string {
	var sb strings.Builder
	sb.WriteString("LINESTRING(")
	for i, p := range l.points {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%g %g", p.X, p.Y)
	}
	sb.WriteString(")")
	return sb.String()
}

// PointSegmentDistance returns the planar distance from p to segment ab.
func PointSegmentDistance(p, a, b Point) float64 {
	proj, _ := ProjectPointOnSegment(p, a, b)
	return p.DistanceTo(proj)
}

// ProjectPointOnSegment returns the closest point to p on segment ab and the
// normalized position t in [0,1] of that point along the segment.
func ProjectPointOnSegment(p, a, b Point) (Point, float64) {
	abx, aby := b.X-a.X, b.Y-a.Y
	lenSq := abx*abx + aby*aby
	if lenSq == 0 {
		return a, 0
	}
	t := ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / lenSq
	t = math.Max(0, math.Min(1, t))
	return Point{X: a.X + t*abx, Y: a.Y + t*aby}, t
}

// SegmentsIntersect reports whether segments ab and cd share at least one
// point, including collinear overlaps and endpoint touches.
func SegmentsIntersect(a, b, c, d Point) bool {
	d1 := cross(c, d, a)
	d2 := cross(c, d, b)
	d3 := cross(a, b, c)
	d4 := cross(a, b, d)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(c, d, a):
		return true
	case d2 == 0 && onSegment(c, d, b):
		return true
	case d3 == 0 && onSegment(a, b, c):
		return true
	case d4 == 0 && onSegment(a, b, d):
		return true
	}
	return false
}

// SegmentIntersectsBox reports whether segment ab intersects box r.
func SegmentIntersectsBox(a, b Point, r MBR) bool {
	if r.ContainsPoint(a) || r.ContainsPoint(b) {
		return true
	}
	segBox := Box(a.X, a.Y, b.X, b.Y)
	if !segBox.Intersects(r) {
		return false
	}
	c1 := Point{r.MinX, r.MinY}
	c2 := Point{r.MaxX, r.MinY}
	c3 := Point{r.MaxX, r.MaxY}
	c4 := Point{r.MinX, r.MaxY}
	return SegmentsIntersect(a, b, c1, c2) || SegmentsIntersect(a, b, c2, c3) ||
		SegmentsIntersect(a, b, c3, c4) || SegmentsIntersect(a, b, c4, c1)
}

// cross returns the z-component of (b-a) x (p-a): >0 if p is left of ab.
func cross(a, b, p Point) float64 {
	return (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
}

// onSegment reports whether p, known collinear with ab, lies within the
// bounding box of ab.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}
