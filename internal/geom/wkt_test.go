package geom

import (
	"math/rand"
	"strings"
	"testing"
)

func TestWKTPointRoundTrip(t *testing.T) {
	p := Pt(-8.618643, 41.141412)
	s := MarshalWKT(p)
	if s != "POINT (-8.618643 41.141412)" {
		t.Errorf("MarshalWKT = %q", s)
	}
	g, err := ParseWKT(s)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := g.(Point); !ok || !got.Equal(p) {
		t.Errorf("round trip = %v", g)
	}
}

func TestWKTLineStringRoundTrip(t *testing.T) {
	l := NewLineString([]Point{{0, 0}, {1.5, -2}, {3, 4}})
	g, err := ParseWKT(MarshalWKT(l))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := g.(*LineString)
	if !ok || got.NumPoints() != 3 {
		t.Fatalf("round trip = %v", g)
	}
	for i := 0; i < 3; i++ {
		if !got.Point(i).Equal(l.Point(i)) {
			t.Errorf("point %d = %v", i, got.Point(i))
		}
	}
}

func TestWKTPolygonRoundTrip(t *testing.T) {
	pg := NewPolygon(
		[]Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
		[]Point{{4, 4}, {6, 4}, {6, 6}, {4, 6}},
	)
	s := MarshalWKT(pg)
	if !strings.Contains(s, "POLYGON ((") || !strings.Contains(s, "), (") {
		t.Errorf("polygon WKT = %q", s)
	}
	g, err := ParseWKT(s)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := g.(*Polygon)
	if !ok || got.NumHoles() != 1 {
		t.Fatalf("round trip = %v", g)
	}
	if got.Area() != pg.Area() {
		t.Errorf("area = %g, want %g", got.Area(), pg.Area())
	}
}

func TestWKTMBRRendersAsPolygon(t *testing.T) {
	s := MarshalWKT(Box(0, 0, 1, 2))
	if !strings.HasPrefix(s, "POLYGON") {
		t.Errorf("MBR WKT = %q", s)
	}
}

func TestParseWKTCaseAndWhitespace(t *testing.T) {
	g, err := ParseWKT("  point ( 1   2 ) ")
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := g.(Point); !ok || !p.Equal(Pt(1, 2)) {
		t.Errorf("parsed = %v", g)
	}
}

func TestParseWKTErrors(t *testing.T) {
	bad := []string{
		"",
		"CIRCLE (0 0, 5)",
		"POINT 1 2",
		"POINT (1)",
		"POINT (a b)",
		"LINESTRING ()",
		"POLYGON ((0 0, 1 0))",     // too few vertices
		"POLYGON ((0 0, 1 0, 1 1)", // unbalanced
		"LINESTRING (1 2, 3)",
	}
	for _, s := range bad {
		if _, err := ParseWKT(s); err == nil {
			t.Errorf("ParseWKT(%q) should error", s)
		}
	}
}

func TestWKTRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		n := 2 + rng.Intn(10)
		pts := make([]Point, n)
		for j := range pts {
			pts[j] = Pt(rng.Float64()*360-180, rng.Float64()*180-90)
		}
		l := NewLineString(pts)
		g, err := ParseWKT(MarshalWKT(l))
		if err != nil {
			t.Fatal(err)
		}
		got := g.(*LineString)
		if got.NumPoints() != n {
			t.Fatalf("lost points: %d", got.NumPoints())
		}
		for j := range pts {
			if !got.Point(j).Equal(pts[j]) {
				t.Fatalf("point %d mismatch", j)
			}
		}
	}
}
