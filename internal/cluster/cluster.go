// Package cluster is the multi-node serving tier: a stateless router that
// scatters window queries over a fleet of stserved shard processes and
// gathers their per-partition chunks back into one answer that is
// byte-identical to what a single daemon would have served.
//
// The design splits the serving problem the way the paper splits selection:
//
//   - Planning stays central. The router reads the same metadata.json (and
//     delta manifest) a single node would, prunes partitions against the
//     query window via the §4.1 bounds index, and rendezvous-hashes the
//     surviving partition ids over the shard names — so a spatially
//     selective query touches only the shards that own matching partitions
//     (the explain report calls this the scatter width).
//
//   - Execution is scattered. Each touched shard gets one POST /subquery
//     carrying its partition subset and a generation fence; replicas of a
//     shard are interchangeable, so the RPC runs under engine.Hedge — the
//     engine's task-attempt rules (failover on error, hedged duplicates on
//     silence, exactly-once commit) generalized across the process
//     boundary.
//
//   - Gathering is exactly-once. Shards answer per-partition chunks keyed
//     by partition id; the merge drops duplicate ids (a chunk that raced in
//     from a losing hedge), reassembles chunks in ascending partition
//     order, and truncates at the query limit — the order a single node
//     marshals in, which is what makes the merged bytes identical.
//
//   - Consistency is fenced, not locked. Every sub-query carries the
//     dataset generation the router planned at; a shard whose view moved (a
//     compaction or append committed mid-scatter) answers 409 and the
//     router replans from fresh metadata, so one merged response can never
//     mix generations.
//
// Shard trace spans ship back inside sub-query responses and are grafted
// under the router's RPC spans, so `stquery -explain` against the router
// renders one stitched router→shard→partition:read tree.
package cluster

import (
	"net/http"
	"sync/atomic"
	"time"

	"st4ml/internal/serve"
)

// Config tunes a Router. Zero values pick serving defaults.
type Config struct {
	// Catalog holds the datasets the router plans from (same directories
	// the shards serve; the router reads only metadata, never partitions).
	Catalog *serve.Catalog
	// Shards is the cluster topology. Must validate.
	Shards ShardMap
	// CacheBytes budgets the merged-result cache. 0 means 64 MiB; negative
	// disables caching.
	CacheBytes int64
	// Timeout bounds one routed query end to end. 0 means 30s.
	Timeout time.Duration
	// ShardTimeout bounds each sub-query attempt. 0 means Timeout.
	ShardTimeout time.Duration
	// HedgeAfter launches a duplicate attempt on another replica when a
	// sub-query has not answered within this duration. 0 disables hedging
	// (replicas then serve only as failover targets).
	HedgeAfter time.Duration
	// MaxAttempts bounds attempts per shard RPC. 0 means 2×replicas.
	MaxAttempts int
	// MaxReplans bounds generation-conflict replans per query. 0 means 3.
	MaxReplans int
	// Client issues the shard RPCs. Nil builds a default.
	Client *http.Client
}

// Router is the scatter-gather coordinator. It is stateless apart from
// caches and counters: all routing state derives from the shard map and the
// dataset metadata, so any number of routers can front the same fleet.
type Router struct {
	catalog      *serve.Catalog
	shards       ShardMap
	replicas     [][]*replica // replicas[shard][i] tracks Shards[shard].Replicas[i]
	cache        *serve.Cache
	client       *http.Client
	timeout      time.Duration
	shardTimeout time.Duration
	hedgeAfter   time.Duration
	maxAttempts  int
	maxReplans   int
	started      time.Time
	draining     atomic.Bool

	queries      atomic.Int64
	queryErrors  atomic.Int64
	resultHits   atomic.Int64
	resultMisses atomic.Int64
	rpcs         atomic.Int64
	hedges       atomic.Int64
	failovers    atomic.Int64
	replans      atomic.Int64
	genConflicts atomic.Int64
	dedupDrops   atomic.Int64
	timeouts     atomic.Int64
	scatterWidth atomic.Int64

	// testHookAfterPlan, when set, runs after the scatter set is computed
	// and before any sub-query is sent — the window in which tests race a
	// compaction against the scatter to exercise the generation fence.
	testHookAfterPlan func()
}

// NewRouter builds a Router from cfg.
func NewRouter(cfg Config) (*Router, error) {
	if err := cfg.Shards.Validate(); err != nil {
		return nil, err
	}
	catalog := cfg.Catalog
	if catalog == nil {
		catalog = serve.NewCatalog()
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 64 << 20
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	shardTimeout := cfg.ShardTimeout
	if shardTimeout <= 0 {
		shardTimeout = timeout
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	maxReplans := cfg.MaxReplans
	if maxReplans <= 0 {
		maxReplans = 3
	}
	r := &Router{
		catalog:      catalog,
		shards:       cfg.Shards,
		cache:        serve.NewCache(cacheBytes),
		client:       client,
		timeout:      timeout,
		shardTimeout: shardTimeout,
		hedgeAfter:   cfg.HedgeAfter,
		maxAttempts:  cfg.MaxAttempts,
		maxReplans:   maxReplans,
		started:      time.Now(),
	}
	r.replicas = make([][]*replica, len(cfg.Shards.Shards))
	for i, sh := range cfg.Shards.Shards {
		r.replicas[i] = make([]*replica, len(sh.Replicas))
		for j, url := range sh.Replicas {
			rep := &replica{url: url}
			rep.ready.Store(true) // optimistic until a probe or RPC says otherwise
			r.replicas[i][j] = rep
		}
	}
	return r, nil
}

// Catalog exposes the router's dataset catalog.
func (r *Router) Catalog() *serve.Catalog { return r.catalog }

// AddDataset registers the dataset at dir under name for planning.
func (r *Router) AddDataset(name, schemaName, dir string) error {
	_, err := r.catalog.Register(name, schemaName, dir)
	return err
}

// SetDraining marks the router as draining: readiness turns 503 and new
// queries are refused while in-flight scatters finish.
func (r *Router) SetDraining(v bool) { r.draining.Store(v) }

// Draining reports whether the router is draining.
func (r *Router) Draining() bool { return r.draining.Load() }

// RouterStats is the /metrics wire form of the router counters.
type RouterStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Shards        int     `json:"shards"`
	Queries       int64   `json:"queries"`
	QueryErrors   int64   `json:"query_errors"`
	ResultHits    int64   `json:"result_cache_hits"`
	ResultMisses  int64   `json:"result_cache_misses"`
	RPCs          int64   `json:"rpcs"`
	Hedges        int64   `json:"hedges"`
	Failovers     int64   `json:"failovers"`
	Replans       int64   `json:"replans"`
	GenConflicts  int64   `json:"generation_conflicts"`
	DedupDrops    int64   `json:"dedup_drops"`
	Timeouts      int64   `json:"timeouts"`
	// ScatterWidth is the cumulative shard count touched across routed
	// queries; divided by Queries it is the mean fan-out.
	ScatterWidth int64 `json:"scatter_width"`
}

// Stats returns a snapshot of the router counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		UptimeSeconds: time.Since(r.started).Seconds(),
		Draining:      r.draining.Load(),
		Shards:        len(r.shards.Shards),
		Queries:       r.queries.Load(),
		QueryErrors:   r.queryErrors.Load(),
		ResultHits:    r.resultHits.Load(),
		ResultMisses:  r.resultMisses.Load(),
		RPCs:          r.rpcs.Load(),
		Hedges:        r.hedges.Load(),
		Failovers:     r.failovers.Load(),
		Replans:       r.replans.Load(),
		GenConflicts:  r.genConflicts.Load(),
		DedupDrops:    r.dedupDrops.Load(),
		Timeouts:      r.timeouts.Load(),
		ScatterWidth:  r.scatterWidth.Load(),
	}
}
