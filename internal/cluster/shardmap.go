package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

// Shard is one serving shard: a name (the rendezvous-hash identity) and the
// replica endpoints that can answer for it. Every replica of a shard serves
// the same partition subset; the router sends the subset explicitly on each
// sub-query, so replicas need no local configuration beyond the dataset.
type Shard struct {
	Name     string   `json:"name"`
	Replicas []string `json:"replicas"`
}

// ShardMap is the cluster topology the router scatters over. Partition
// ownership is derived, not stored: Assign rendezvous-hashes every partition
// id against the shard names, so the map stays valid as partitions appear
// (a re-ingest with a different planner) without any rebalancing state.
type ShardMap struct {
	Shards []Shard `json:"shards"`
}

// Validate checks the map is usable: at least one shard, every shard named,
// at least one replica each, no duplicate names.
func (m ShardMap) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: shard map is empty")
	}
	seen := map[string]bool{}
	for i, s := range m.Shards {
		if s.Name == "" {
			return fmt.Errorf("cluster: shard %d has no name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("cluster: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Replicas) == 0 {
			return fmt.Errorf("cluster: shard %q has no replicas", s.Name)
		}
		for _, url := range s.Replicas {
			if url == "" {
				return fmt.Errorf("cluster: shard %q has an empty replica URL", s.Name)
			}
		}
	}
	return nil
}

// Assign returns the index of the shard that owns partition id, by
// rendezvous (highest-random-weight) hashing: every shard name is hashed
// together with the partition id and the highest hash wins. The assignment
// is stable — adding or removing a shard moves only the partitions the
// changed shard gains or loses, and replicas never affect it.
//
// The per-(shard, partition) weight runs the FNV name hash and the
// partition id through a splitmix64 finalizer: FNV-1a alone avalanches
// poorly in its high bits over inputs this short, which skews a
// highest-wins comparison badly (a three-shard map can starve one shard
// completely).
func (m ShardMap) Assign(partition int) int {
	best, bestHash := 0, uint64(0)
	for i, s := range m.Shards {
		h := fnv.New64a()
		h.Write([]byte(s.Name))
		v := mix64(h.Sum64() ^ (uint64(partition)+1)*0x9E3779B97F4A7C15)
		if i == 0 || v > bestHash {
			best, bestHash = i, v
		}
	}
	return best
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ParseShards parses the -shards flag form: shards separated by ';',
// replicas of one shard separated by ','. Shards are named s0, s1, … in
// declaration order.
//
//	"http://a:7070,http://a2:7070;http://b:7070"
//
// declares two shards: s0 with two replicas and s1 with one.
func ParseShards(spec string) (ShardMap, error) {
	var m ShardMap
	for i, group := range strings.Split(spec, ";") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		sh := Shard{Name: fmt.Sprintf("s%d", i)}
		for _, url := range strings.Split(group, ",") {
			if url = strings.TrimSpace(url); url != "" {
				sh.Replicas = append(sh.Replicas, url)
			}
		}
		m.Shards = append(m.Shards, sh)
	}
	if err := m.Validate(); err != nil {
		return ShardMap{}, err
	}
	return m, nil
}

// LoadShardMap reads a shard map JSON file:
//
//	{"shards": [{"name": "s0", "replicas": ["http://a:7070"]}, …]}
func LoadShardMap(path string) (ShardMap, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return ShardMap{}, fmt.Errorf("cluster: read shard map: %w", err)
	}
	var m ShardMap
	if err := json.Unmarshal(b, &m); err != nil {
		return ShardMap{}, fmt.Errorf("cluster: parse shard map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return ShardMap{}, err
	}
	return m, nil
}
