package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func mapOf(names ...string) ShardMap {
	m := ShardMap{}
	for _, n := range names {
		m.Shards = append(m.Shards, Shard{Name: n, Replicas: []string{"http://" + n}})
	}
	return m
}

// TestAssignDeterministicAndTotal pins the rendezvous basics: every
// partition gets exactly one in-range shard, and the assignment is a pure
// function of the names.
func TestAssignDeterministicAndTotal(t *testing.T) {
	m := mapOf("s0", "s1", "s2")
	counts := make([]int, 3)
	for p := 0; p < 256; p++ {
		si := m.Assign(p)
		if si < 0 || si >= 3 {
			t.Fatalf("partition %d assigned out of range: %d", p, si)
		}
		if again := m.Assign(p); again != si {
			t.Fatalf("partition %d unstable: %d then %d", p, si, again)
		}
		counts[si]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d owns nothing over 256 partitions: %v", i, counts)
		}
	}
}

// TestAssignMinimalMovement pins the rendezvous property the map depends
// on: adding a shard only moves partitions *to* the new shard — no
// partition moves between surviving shards.
func TestAssignMinimalMovement(t *testing.T) {
	before := mapOf("s0", "s1", "s2")
	after := mapOf("s0", "s1", "s2", "s3")
	moved, toNew := 0, 0
	for p := 0; p < 256; p++ {
		a, b := before.Assign(p), after.Assign(p)
		if a != b {
			moved++
			if b == 3 {
				toNew++
			}
		}
	}
	if moved == 0 {
		t.Fatal("adding a shard moved nothing over 256 partitions")
	}
	if moved != toNew {
		t.Fatalf("%d partitions moved but only %d to the new shard", moved, toNew)
	}
	// Replicas never affect assignment.
	withReps := before
	withReps.Shards[1].Replicas = []string{"http://a", "http://b", "http://c"}
	for p := 0; p < 64; p++ {
		if before.Assign(p) != withReps.Assign(p) {
			t.Fatalf("replica change moved partition %d", p)
		}
	}
}

func TestParseShards(t *testing.T) {
	m, err := ParseShards("http://a:7070,http://a2:7070; http://b:7070")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 2 {
		t.Fatalf("parsed %d shards, want 2", len(m.Shards))
	}
	if m.Shards[0].Name != "s0" || len(m.Shards[0].Replicas) != 2 {
		t.Fatalf("shard 0: %+v", m.Shards[0])
	}
	if m.Shards[1].Name != "s1" || m.Shards[1].Replicas[0] != "http://b:7070" {
		t.Fatalf("shard 1: %+v", m.Shards[1])
	}
	if _, err := ParseShards(""); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestLoadShardMap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shards.json")
	m := ShardMap{Shards: []Shard{
		{Name: "east", Replicas: []string{"http://e1", "http://e2"}},
		{Name: "west", Replicas: []string{"http://w1"}},
	}}
	b, _ := json.Marshal(m)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadShardMap(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shards) != 2 || got.Shards[0].Name != "east" || len(got.Shards[0].Replicas) != 2 {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := LoadShardMap(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestValidate(t *testing.T) {
	bad := []ShardMap{
		{},
		{Shards: []Shard{{Name: "", Replicas: []string{"u"}}}},
		{Shards: []Shard{{Name: "a", Replicas: nil}}},
		{Shards: []Shard{{Name: "a", Replicas: []string{"u"}}, {Name: "a", Replicas: []string{"v"}}}},
		{Shards: []Shard{{Name: "a", Replicas: []string{""}}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("map %d validated: %+v", i, m)
		}
	}
}
