package cluster

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// replica tracks one shard replica's routing state: readiness (probed via
// /readyz and demoted on transport failure) plus per-replica counters.
type replica struct {
	url   string
	ready atomic.Bool
	calls atomic.Int64
	errs  atomic.Int64
	nanos atomic.Int64 // cumulative committed-RPC wall time
}

// replicaOrder returns shard si's replica indices with ready replicas
// first (stable within each class), so hedged attempts — attempt i targets
// candidate i%n — exhaust healthy replicas before falling back to ones a
// probe or a recent transport error marked not-ready.
func (r *Router) replicaOrder(si int) []int {
	reps := r.replicas[si]
	order := make([]int, 0, len(reps))
	for i, rep := range reps {
		if rep.ready.Load() {
			order = append(order, i)
		}
	}
	for i, rep := range reps {
		if !rep.ready.Load() {
			order = append(order, i)
		}
	}
	return order
}

// CheckReplicas runs one readiness pass: every replica of every shard is
// probed via GET /readyz under a short deadline, and its routing readiness
// set from the answer. A draining shard (503) or an unreachable one drops
// out of the preferred order until a later pass revives it.
func (r *Router) CheckReplicas(ctx context.Context) {
	var wg sync.WaitGroup
	for si := range r.replicas {
		for ri := range r.replicas[si] {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				defer cancel()
				req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.url+"/readyz", nil)
				if err != nil {
					rep.ready.Store(false)
					return
				}
				resp, err := r.client.Do(req)
				if err != nil {
					rep.ready.Store(false)
					return
				}
				resp.Body.Close()
				rep.ready.Store(resp.StatusCode == http.StatusOK)
			}(r.replicas[si][ri])
		}
	}
	wg.Wait()
}

// StartHealth probes replica readiness every interval (default 5s) until
// the returned stop function is called.
func (r *Router) StartHealth(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.CheckReplicas(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// ReplicaStatus is the /metrics wire form of one replica's routing state.
type ReplicaStatus struct {
	URL    string `json:"url"`
	Ready  bool   `json:"ready"`
	Calls  int64  `json:"calls"`
	Errors int64  `json:"errors"`
	// MeanMS is the mean wall time of this replica's committed RPCs.
	MeanMS float64 `json:"mean_ms"`
}

// ShardStatus is the /metrics wire form of one shard's replica set.
type ShardStatus struct {
	Name     string          `json:"name"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// ShardStatuses snapshots every shard's replica state, sorted by name.
func (r *Router) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, 0, len(r.shards.Shards))
	for si, sh := range r.shards.Shards {
		st := ShardStatus{Name: sh.Name}
		for _, rep := range r.replicas[si] {
			rs := ReplicaStatus{
				URL:    rep.url,
				Ready:  rep.ready.Load(),
				Calls:  rep.calls.Load(),
				Errors: rep.errs.Load(),
			}
			if ok := rs.Calls - rs.Errors; ok > 0 {
				rs.MeanMS = float64(rep.nanos.Load()) / float64(ok) / 1e6
			}
			st.Replicas = append(st.Replicas, rs)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
