package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"st4ml/internal/engine"
	"st4ml/internal/selection"
	"st4ml/internal/serve"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/trace"
)

// genConflictError is a shard's 409: its dataset generation moved away from
// the fence the scatter was planned at. It is permanent for the RPC (another
// replica of the same dataset will refuse the same fence) but retryable for
// the query — the router replans from fresh metadata.
type genConflictError struct {
	shard string
	msg   string
}

func (e *genConflictError) Error() string {
	return fmt.Sprintf("cluster: shard %s: %s", e.shard, e.msg)
}

// resultKey is the merged-result cache key: dataset identity, the catalog
// generation (bumped on any observed reload), the planning fence, and
// everything that shapes the response body. Embedding both generations is
// the regression fix for mid-scatter compaction: a shard that compacts can
// never leave a mixed-generation entry behind, and a replan stores under
// the new fence.
func resultKey(req serve.QueryRequest, gen, fenceGen, fenceCount int64) string {
	key := fmt.Sprintf("rq|%s|%d|%d,%d|%v,%v,%v,%v|%d,%d|%t,%d",
		req.Dataset, gen, fenceGen, fenceCount,
		req.MinX, req.MinY, req.MaxX, req.MaxY, req.TStart, req.TEnd,
		req.Records, req.Limit)
	if req.Approx {
		key += fmt.Sprintf("|approx:%s,%v,%d,%t", req.Agg, req.Q, req.Res, req.ApproxScan)
	}
	return key
}

// Query routes one window query: plan against the pinned metadata, scatter
// sub-queries over the owning shards, gather and merge. It returns the
// merged result, the cache disposition, the stitched execution report when
// the request asked for one, and on failure an HTTP status.
func (r *Router) Query(reqCtx context.Context, req serve.QueryRequest) (stdata.QueryResult, string, *trace.Explain, int, error) {
	d, ok := r.catalog.Get(req.Dataset)
	if !ok {
		return stdata.QueryResult{}, "", nil, http.StatusNotFound,
			fmt.Errorf("unknown dataset %q", req.Dataset)
	}

	var tr *trace.Tracer
	if req.Explain {
		tr = trace.New()
	}
	root := tr.StartSpan(0, "query", trace.Str("dataset", req.Dataset))

	ctx, cancel := context.WithTimeout(reqCtx, r.timeout)
	defer cancel()

	// Replan loop: each round plans at the current metadata generation and
	// scatters under that fence. A generation conflict — some shard saw a
	// compaction or append commit mid-scatter — discards the round and
	// replans from fresh metadata, bounded by maxReplans.
	for replan := 0; ; replan++ {
		meta, gen, err := d.Meta()
		if err != nil {
			root.End(trace.Str("error", err.Error()))
			return stdata.QueryResult{}, "", nil, http.StatusInternalServerError, err
		}

		key := resultKey(req, gen, meta.Generation, meta.TotalCount)
		if !req.NoCache {
			lsp := root.Child(trace.SpanResultLookup)
			v, ok := r.cache.Get(key)
			lsp.End(trace.Bool("hit", ok))
			if ok {
				r.resultHits.Add(1)
				root.End()
				return v.(stdata.QueryResult), "hit", trace.Build(tr.Snapshot()), http.StatusOK, nil
			}
		}
		r.resultMisses.Add(1)

		res, conflict, status, err := r.scatter(ctx, d, meta, req, root, replan)
		if conflict {
			r.replans.Add(1)
			if replan+1 < r.maxReplans {
				continue
			}
			err = fmt.Errorf("cluster: generation moved %d times during one query: %w", replan+1, err)
			root.End(trace.Str("error", err.Error()))
			return stdata.QueryResult{}, "", nil, http.StatusConflict, err
		}
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				r.timeouts.Add(1)
				status = http.StatusGatewayTimeout
			}
			root.End(trace.Str("error", err.Error()))
			return stdata.QueryResult{}, "", nil, status, err
		}
		if !req.NoCache {
			r.cache.Put(key, res, mergedBytes(res))
		}
		root.End()
		return res, "miss", trace.Build(tr.Snapshot()), http.StatusOK, nil
	}
}

// shardOutcome is one shard RPC's gathered result.
type shardOutcome struct {
	shard    int
	resp     serve.SubQueryResponse
	stats    engine.AttemptStats
	conflict *genConflictError
	err      error
}

// scatter runs one planning+fan-out round at meta's generation. The second
// return reports a generation conflict (caller replans).
func (r *Router) scatter(ctx context.Context, d *serve.Dataset, meta *storage.Metadata,
	req serve.QueryRequest, root *trace.Span, replan int,
) (stdata.QueryResult, bool, int, error) {
	w := req.Window()
	ids := meta.Prune(w.Space, w.Time)
	stats := selection.Stats{
		TotalPartitions:  meta.NumPartitions(),
		LoadedPartitions: len(ids),
	}
	for _, id := range ids {
		stats.LoadedRecords += meta.PartitionCount(id)
		stats.LoadedBytes += meta.PartitionBytes(id)
	}

	// Group the scatter set by owning shard. Prune returns ascending ids
	// and append preserves order, so each group is ascending too.
	groups := map[int][]int{}
	for _, id := range ids {
		si := r.shards.Assign(id)
		groups[si] = append(groups[si], id)
	}
	touched := make([]int, 0, len(groups))
	for si := range groups {
		touched = append(touched, si)
	}
	sort.Ints(touched)

	// The scatter span carries the planning attrs exactly once for the
	// whole stitched tree (shard sub-query spans suppress theirs). It is
	// recorded only for the winning round — a conflicted round's span is
	// abandoned un-ended, so a replanned query never double-counts.
	ssp := root.Child(trace.SpanScatter,
		trace.Int("total_partitions", int64(stats.TotalPartitions)),
		trace.Int("kept_partitions", int64(stats.LoadedPartitions)),
		trace.Int("loaded_records", stats.LoadedRecords),
		trace.Int("loaded_bytes", stats.LoadedBytes),
		trace.Int("shards", int64(len(r.shards.Shards))),
		trace.Int("width", int64(len(touched))))

	if r.testHookAfterPlan != nil {
		r.testHookAfterPlan()
	}

	if len(touched) == 0 {
		ssp.End(trace.Int("replans", int64(replan)))
		res := stdata.QueryResult{Stats: stats}
		if req.Records {
			res.Records = make([]json.RawMessage, 0)
		}
		return res, false, http.StatusOK, nil
	}
	r.scatterWidth.Add(int64(len(touched)))

	// The embedded QueryRequest carries Explain through, so shards trace
	// (and ship spans back) exactly when the routed query is traced.
	sub := serve.SubQueryRequest{
		QueryRequest: req,
		Gen:          meta.Generation,
		Count:        meta.TotalCount,
	}

	outs := make([]shardOutcome, len(touched))
	var wg sync.WaitGroup
	for i, si := range touched {
		wg.Add(1)
		go func(i, si int) {
			defer wg.Done()
			outs[i] = r.callShard(ctx, si, groups[si], sub, ssp)
		}(i, si)
	}
	wg.Wait()

	for _, out := range outs {
		r.hedges.Add(int64(out.stats.Hedges))
		r.failovers.Add(int64(out.stats.Failovers))
		if out.conflict != nil {
			r.genConflicts.Add(1)
		}
	}
	for _, out := range outs {
		if out.conflict != nil {
			return stdata.QueryResult{}, true, http.StatusConflict, out.conflict
		}
	}
	for _, out := range outs {
		if out.err != nil {
			return stdata.QueryResult{}, false, http.StatusBadGateway,
				fmt.Errorf("cluster: shard %s: %w", r.shards.Shards[out.shard].Name, out.err)
		}
	}

	res := r.merge(ids, outs, req, stats)
	ssp.End(trace.Int("replans", int64(replan)))
	return res, false, http.StatusOK, nil
}

// callShard issues one shard's sub-query as hedged attempts over its
// replicas: ready replicas are tried first, a failed attempt fails over to
// the next, a silent one gets a hedged duplicate after HedgeAfter, and
// exactly one response commits. The shard's span dump is grafted under the
// RPC span so the stitched tree crosses the process boundary.
func (r *Router) callShard(ctx context.Context, si int, parts []int,
	sub serve.SubQueryRequest, ssp *trace.Span,
) shardOutcome {
	sh := r.shards.Shards[si]
	sub.Partitions = parts
	body, err := json.Marshal(sub)
	if err != nil {
		return shardOutcome{shard: si, err: err}
	}
	order := r.replicaOrder(si)
	rsp := ssp.Child(trace.SpanRPC,
		trace.Str("shard", sh.Name),
		trace.Int("partitions", int64(len(parts))))
	r.rpcs.Add(1)

	resp, ast, err := engine.Hedge(ctx, len(order),
		engine.AttemptConfig{
			MaxAttempts: r.maxAttempts,
			HedgeAfter:  r.hedgeAfter,
			Timeout:     r.shardTimeout,
		},
		func(ctx context.Context, cand, attempt int) (serve.SubQueryResponse, error) {
			return r.post(ctx, si, order[cand], sh.Name, body)
		})

	out := shardOutcome{shard: si, resp: resp, stats: ast}
	winner := ""
	if ast.Winner >= 0 {
		winner = sh.Replicas[order[ast.Winner]]
	}
	if err != nil {
		var conflict *genConflictError
		if errors.As(err, &conflict) {
			out.conflict = conflict
		} else {
			out.err = err
		}
		rsp.End(trace.Str("error", err.Error()),
			trace.Int("attempts", int64(ast.Attempts)),
			trace.Int("hedges", int64(ast.Hedges)),
			trace.Int("failovers", int64(ast.Failovers)))
		return out
	}
	var selected int64
	for _, pr := range resp.Parts {
		selected += pr.Selected
	}
	r.graft(resp.Spans, rsp)
	rsp.End(trace.Str("replica", winner),
		trace.Int("attempts", int64(ast.Attempts)),
		trace.Int("hedges", int64(ast.Hedges)),
		trace.Int("failovers", int64(ast.Failovers)),
		trace.Int("selected", selected))
	return out
}

// graft records a shard's span dump under the RPC span's tracer.
func (r *Router) graft(spans []trace.WireSpan, rsp *trace.Span) {
	if rsp == nil || len(spans) == 0 {
		return
	}
	rsp.Tracer().Graft(spans, rsp.ID())
}

// post issues one sub-query attempt against one replica and classifies the
// answer: 200 commits, 409 is a permanent generation conflict, anything
// else fails over. Transport failures additionally mark the replica
// not-ready so later queries prefer its peers until a probe revives it.
func (r *Router) post(ctx context.Context, si, ri int, shardName string, body []byte) (serve.SubQueryResponse, error) {
	rep := r.replicas[si][ri]
	rep.calls.Add(1)
	url := rep.url + "/subquery"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return serve.SubQueryResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	start := time.Now()
	hresp, err := r.client.Do(hreq)
	if err != nil {
		rep.errs.Add(1)
		rep.ready.Store(false)
		return serve.SubQueryResponse{}, err
	}
	defer hresp.Body.Close()
	switch hresp.StatusCode {
	case http.StatusOK:
		var out serve.SubQueryResponse
		if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
			rep.errs.Add(1)
			return serve.SubQueryResponse{}, fmt.Errorf("decode %s: %w", url, err)
		}
		rep.nanos.Add(time.Since(start).Nanoseconds())
		return out, nil
	case http.StatusConflict:
		rep.errs.Add(1)
		return serve.SubQueryResponse{}, engine.Permanent(&genConflictError{
			shard: shardName, msg: readErrorBody(hresp.Body),
		})
	default:
		rep.errs.Add(1)
		return serve.SubQueryResponse{}, fmt.Errorf("%s: status %d: %s",
			url, hresp.StatusCode, readErrorBody(hresp.Body))
	}
}

// readErrorBody extracts the {"error": …} message of a non-200 answer.
func readErrorBody(body io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(b))
}

// merge gathers the shard chunks back into one result, exactly once: chunks
// are keyed by partition id (each record belongs to exactly one partition
// per generation), duplicates from losing hedges are dropped, and records
// are reassembled in ascending partition order — the order a single node
// marshals in — then truncated at the query limit.
func (r *Router) merge(ids []int, outs []shardOutcome, req serve.QueryRequest, stats selection.Stats) stdata.QueryResult {
	chunks := make(map[int]stdata.PartResult, len(ids))
	for _, out := range outs {
		for _, pr := range out.resp.Parts {
			if _, dup := chunks[pr.ID]; dup {
				r.dedupDrops.Add(1)
				continue
			}
			chunks[pr.ID] = pr
		}
	}
	res := stdata.QueryResult{Stats: stats}
	for _, pr := range chunks {
		res.Stats.SelectedRecords += pr.Selected
	}
	if !req.Records {
		return res
	}
	limit := req.Limit
	if limit <= 0 || int64(limit) > res.Stats.SelectedRecords {
		limit = int(res.Stats.SelectedRecords)
	}
	res.Records = make([]json.RawMessage, 0, limit)
	// ids is ascending; per-shard groups preserve that order, so walking
	// the planned set in order reassembles the global record stream. Each
	// shard capped its marshaled records at the global limit across its
	// own chunks in the same order, so every record inside the global
	// prefix survived its shard's cap.
	for _, id := range ids {
		pr, ok := chunks[id]
		if !ok {
			continue
		}
		for _, rec := range pr.Records {
			if len(res.Records) >= limit {
				return res
			}
			res.Records = append(res.Records, rec)
		}
	}
	return res
}

// mergedBytes estimates a cached merged result's resident size.
func mergedBytes(res stdata.QueryResult) int64 {
	n := int64(160)
	for _, rec := range res.Records {
		n += int64(len(rec)) + 24
	}
	return n
}
