package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"testing"

	"st4ml/internal/datagen"
	"st4ml/internal/serve"
	"st4ml/internal/stdata"
	"st4ml/internal/summary"
)

// approxSingle asks the baseline daemon for the reference approx envelope.
func (tc *testCluster) approxSingle(t *testing.T, req serve.QueryRequest) *summary.Result {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(tc.single.URL+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node approx status %d", resp.StatusCode)
	}
	var out serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Approx == nil {
		t.Fatal("single node returned no approx envelope")
	}
	return out.Approx
}

// TestRouterApproxMatchesSingleNode: across shard counts and aggregates, a
// routed approximate query merges shard partials into the same envelope a
// single node produces — integer envelopes identical, float estimates
// within merge-order tolerance — and the envelope contains the exact
// answer recomputed from the seeded corpus.
func TestRouterApproxMatchesSingleNode(t *testing.T) {
	const records = 4000
	tc := newTestCluster(t, records, 3)
	corpus := datagen.NYC(records, 7)

	// Pre-summarization: the routed fallback path answers exactly.
	r0 := tc.router(t, 2, Config{})
	preReq := seededWindows(9, 1)[0]
	preReq.Records = false
	preReq.Approx = true
	pre, _, _, status, err := r0.QueryApprox(context.Background(), preReq)
	if err != nil {
		t.Fatalf("pre-summary approx: status %d: %v", status, err)
	}
	if !pre.Fallback || !pre.Exact {
		t.Fatalf("pre-summary approx should be a flagged exact fallback, got %+v", pre)
	}

	sch, _ := stdata.Lookup("nyc")
	if n, err := sch.BuildSummaries(tc.dir, summary.Config{}); err != nil || n == 0 {
		t.Fatalf("BuildSummaries = (%d, %v)", n, err)
	}

	exactFor := func(req serve.QueryRequest) (int64, []float64) {
		wb := req.Window().Box()
		var n int64
		var vals []float64
		for _, e := range corpus {
			if e.Box().Intersects(wb) {
				n++
				vals = append(vals, float64(e.Time))
			}
		}
		return n, vals
	}
	exactQuantile := func(vals []float64, q float64) float64 {
		s := append([]float64(nil), vals...)
		sort.Float64s(s)
		r := int(math.Ceil(q * float64(len(s))))
		if r < 1 {
			r = 1
		}
		return s[r-1]
	}

	const eps = 1e-6
	for _, k := range []int{1, 2, 3} {
		r := tc.router(t, k, Config{})
		for wi, base := range seededWindows(17, 4) {
			for _, agg := range []string{summary.AggCount, summary.AggHist, summary.AggQuantile} {
				req := base
				req.Records, req.Limit = false, 0
				req.Approx, req.Agg, req.Q, req.Res = true, agg, 0.9, 2
				single := tc.approxSingle(t, req)
				routed, _, _, status, err := r.QueryApprox(context.Background(), req)
				if err != nil {
					t.Fatalf("k=%d w%d %s: status %d: %v", k, wi, agg, status, err)
				}
				if routed.CountLo != single.CountLo || routed.CountHi != single.CountHi {
					t.Fatalf("k=%d w%d %s: routed count [%d,%d], single [%d,%d]",
						k, wi, agg, routed.CountLo, routed.CountHi, single.CountLo, single.CountHi)
				}
				if routed.SummaryBlocks != single.SummaryBlocks ||
					routed.ScannedBlocks != single.ScannedBlocks ||
					routed.ScannedRecords != single.ScannedRecords ||
					len(routed.Parts) != len(single.Parts) ||
					routed.Fallback != single.Fallback {
					t.Fatalf("k=%d w%d %s: provenance diverges:\n routed %+v\n single %+v",
						k, wi, agg, routed, single)
				}
				exact, vals := exactFor(req)
				if exact < routed.CountLo || exact > routed.CountHi {
					t.Fatalf("k=%d w%d %s: exact %d outside [%d,%d]",
						k, wi, agg, exact, routed.CountLo, routed.CountHi)
				}
				switch agg {
				case summary.AggCount:
					if math.Abs(routed.Estimate-single.Estimate) > eps*(1+math.Abs(single.Estimate)) {
						t.Fatalf("k=%d w%d: routed estimate %v, single %v", k, wi, routed.Estimate, single.Estimate)
					}
				case summary.AggHist:
					if len(routed.Cells) != len(single.Cells) {
						t.Fatalf("k=%d w%d: %d cells vs %d", k, wi, len(routed.Cells), len(single.Cells))
					}
					for i := range routed.Cells {
						rc, sc := routed.Cells[i], single.Cells[i]
						if rc.Lo != sc.Lo || rc.Hi != sc.Hi {
							t.Fatalf("k=%d w%d cell %d: routed [%d,%d], single [%d,%d]",
								k, wi, i, rc.Lo, rc.Hi, sc.Lo, sc.Hi)
						}
					}
				case summary.AggQuantile:
					if exact == 0 {
						break
					}
					ex := exactQuantile(vals, 0.9)
					if ex < routed.Estimate-routed.Bound-eps || ex > routed.Estimate+routed.Bound+eps {
						t.Fatalf("k=%d w%d: exact quantile %v outside %v±%v",
							k, wi, ex, routed.Estimate, routed.Bound)
					}
				}
			}
		}
	}
}
