package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"st4ml/internal/serve"
	"st4ml/internal/storage"
	"st4ml/internal/summary"
	"st4ml/internal/trace"
)

// This file routes approximate aggregate queries. Shards answer mergeable
// partial envelopes instead of record chunks: raw count/cell envelopes,
// t-digests, and KMV sketches. The router folds every shard's partial into
// one accumulator and finalizes — mergeable-sketch semantics, so the
// routed answer is the same envelope a single node covering all partitions
// would produce (which TestApproxPartialMergeMatchesFlat pins at the
// stdata layer). Planning, fencing, hedging, and replans are shared with
// the exact path; only the gather differs.
//
// The router deliberately emits no approx span of its own: each shard's
// sub-query carries one, grafted under the RPC spans, and trace.Build sums
// them — a router-side span would double-count every total.

// QueryApprox routes one approximate aggregate query: plan and scatter
// like Query, gather the shards' partial envelopes, merge, finalize.
func (r *Router) QueryApprox(reqCtx context.Context, req serve.QueryRequest) (*summary.Result, string, *trace.Explain, int, error) {
	d, ok := r.catalog.Get(req.Dataset)
	if !ok {
		return nil, "", nil, http.StatusNotFound, fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	spec := summary.Spec{Window: req.Window().Box(), Agg: req.Agg, Q: req.Q, Res: req.Res}
	if err := spec.Validate(true); err != nil { // value presence is the shard schema's call
		return nil, "", nil, http.StatusBadRequest, err
	}

	var tr *trace.Tracer
	if req.Explain {
		tr = trace.New()
	}
	root := tr.StartSpan(0, "query", trace.Str("dataset", req.Dataset))

	ctx, cancel := context.WithTimeout(reqCtx, r.timeout)
	defer cancel()

	for replan := 0; ; replan++ {
		meta, gen, err := d.Meta()
		if err != nil {
			root.End(trace.Str("error", err.Error()))
			return nil, "", nil, http.StatusInternalServerError, err
		}

		key := resultKey(req, gen, meta.Generation, meta.TotalCount)
		if !req.NoCache {
			lsp := root.Child(trace.SpanResultLookup)
			v, ok := r.cache.Get(key)
			lsp.End(trace.Bool("hit", ok))
			if ok {
				r.resultHits.Add(1)
				root.End()
				return v.(*summary.Result), "hit", trace.Build(tr.Snapshot()), http.StatusOK, nil
			}
		}
		r.resultMisses.Add(1)

		res, conflict, status, err := r.scatterApprox(ctx, meta, spec, req, root, replan)
		if conflict {
			r.replans.Add(1)
			if replan+1 < r.maxReplans {
				continue
			}
			err = fmt.Errorf("cluster: generation moved %d times during one query: %w", replan+1, err)
			root.End(trace.Str("error", err.Error()))
			return nil, "", nil, http.StatusConflict, err
		}
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				r.timeouts.Add(1)
				status = http.StatusGatewayTimeout
			}
			root.End(trace.Str("error", err.Error()))
			return nil, "", nil, status, err
		}
		if !req.NoCache {
			r.cache.Put(key, res, 256+int64(len(res.Cells))*72+int64(len(res.Parts))*56)
		}
		root.End()
		return res, "miss", trace.Build(tr.Snapshot()), http.StatusOK, nil
	}
}

// scatterApprox runs one planning+fan-out round at meta's generation and
// merges the shards' partials. The second return reports a generation
// conflict (caller replans).
func (r *Router) scatterApprox(ctx context.Context, meta *storage.Metadata,
	spec summary.Spec, req serve.QueryRequest, root *trace.Span, replan int,
) (*summary.Result, bool, int, error) {
	w := req.Window()
	ids := meta.Prune(w.Space, w.Time)

	groups := map[int][]int{}
	for _, id := range ids {
		si := r.shards.Assign(id)
		groups[si] = append(groups[si], id)
	}
	touched := make([]int, 0, len(groups))
	for si := range groups {
		touched = append(touched, si)
	}
	sort.Ints(touched)

	ssp := root.Child(trace.SpanScatter,
		trace.Int("total_partitions", int64(meta.NumPartitions())),
		trace.Int("kept_partitions", int64(len(ids))),
		trace.Int("shards", int64(len(r.shards.Shards))),
		trace.Int("width", int64(len(touched))))

	if r.testHookAfterPlan != nil {
		r.testHookAfterPlan()
	}

	acc := summary.NewAccumulator(spec)
	if len(touched) == 0 {
		ssp.End(trace.Int("replans", int64(replan)))
		return acc.Finalize(), false, http.StatusOK, nil
	}
	r.scatterWidth.Add(int64(len(touched)))

	sub := serve.SubQueryRequest{
		QueryRequest: req,
		Gen:          meta.Generation,
		Count:        meta.TotalCount,
	}

	outs := make([]shardOutcome, len(touched))
	var wg sync.WaitGroup
	for i, si := range touched {
		wg.Add(1)
		go func(i, si int) {
			defer wg.Done()
			outs[i] = r.callShard(ctx, si, groups[si], sub, ssp)
		}(i, si)
	}
	wg.Wait()

	for _, out := range outs {
		r.hedges.Add(int64(out.stats.Hedges))
		r.failovers.Add(int64(out.stats.Failovers))
		if out.conflict != nil {
			r.genConflicts.Add(1)
		}
	}
	for _, out := range outs {
		if out.conflict != nil {
			return nil, true, http.StatusConflict, out.conflict
		}
	}
	for _, out := range outs {
		if out.err != nil {
			return nil, false, http.StatusBadGateway,
				fmt.Errorf("cluster: shard %s: %w", r.shards.Shards[out.shard].Name, out.err)
		}
	}

	// Merge in ascending shard order — shard groups are disjoint partition
	// subsets, so provenance concatenates deterministically and envelopes
	// add; finalize closes the global envelope exactly as one node would.
	for _, out := range outs {
		if out.resp.Approx == nil {
			return nil, false, http.StatusBadGateway,
				fmt.Errorf("cluster: shard %s answered an approx sub-query without a partial envelope (old shard version?)",
					r.shards.Shards[out.shard].Name)
		}
		if err := acc.MergePartial(out.resp.Approx); err != nil {
			return nil, false, http.StatusBadGateway,
				fmt.Errorf("cluster: shard %s: %w", r.shards.Shards[out.shard].Name, err)
		}
	}
	ssp.End(trace.Int("replans", int64(replan)))
	return acc.Finalize(), false, http.StatusOK, nil
}
