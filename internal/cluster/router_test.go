package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/selection"
	"st4ml/internal/serve"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

// testCluster is a loopback fleet: one ingested dataset, one single-node
// baseline daemon, and up to four shard daemons the tests build routers
// over.
type testCluster struct {
	dir    string
	meta   *storage.Metadata
	single *httptest.Server
	shards []*httptest.Server // shard i serves as name si
}

func newTestCluster(t *testing.T, records int, shardCount int) *testCluster {
	t.Helper()
	ctx := engine.New(engine.Config{Slots: 4})
	sch, _ := stdata.Lookup("nyc")
	dir := t.TempDir()
	meta, err := sch.Ingest(ctx, datagen.NYC(records, 7), dir, sch.DefaultPlanner(4, 2),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{dir: dir, meta: meta}
	newDaemon := func(name string) *httptest.Server {
		srv := serve.NewServer(serve.Config{Ctx: ctx, ShardName: name})
		if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	tc.single = newDaemon("")
	for i := 0; i < shardCount; i++ {
		tc.shards = append(tc.shards, newDaemon(fmt.Sprintf("s%d", i)))
	}
	return tc
}

// router builds a Router over the first k shards; replicas lists each
// shard's replica URLs — nil means one replica, the shard's own URL.
func (tc *testCluster) router(t *testing.T, k int, cfg Config) *Router {
	t.Helper()
	if len(cfg.Shards.Shards) == 0 {
		m := ShardMap{}
		for i := 0; i < k; i++ {
			m.Shards = append(m.Shards, Shard{
				Name:     fmt.Sprintf("s%d", i),
				Replicas: []string{tc.shards[i].URL},
			})
		}
		cfg.Shards = m
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddDataset("nyc", "nyc", tc.dir); err != nil {
		t.Fatal(err)
	}
	return r
}

// singleNode asks the baseline daemon for the reference answer.
func (tc *testCluster) singleNode(t *testing.T, req serve.QueryRequest) serve.QueryResponse {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(tc.single.URL+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node query status %d", resp.StatusCode)
	}
	var out serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// seededWindows derives deterministic query windows spanning the metamorphic
// space: sub-windows of varying selectivity, the full extent, a miss, and
// varying record limits.
func seededWindows(seed int64, n int) []serve.QueryRequest {
	rng := rand.New(rand.NewSource(seed))
	ext, yr := datagen.NYCExtent, datagen.Year2013
	dx, dy, dt := ext.MaxX-ext.MinX, ext.MaxY-ext.MinY, yr.End-yr.Start
	out := make([]serve.QueryRequest, 0, n)
	for i := 0; i < n; i++ {
		q := serve.QueryRequest{Dataset: "nyc", Records: true, NoCache: true}
		switch i % 4 {
		case 0: // small window
			fx, fy := 0.05+0.2*rng.Float64(), 0.05+0.2*rng.Float64()
			x0, y0 := ext.MinX+rng.Float64()*(1-fx)*dx, ext.MinY+rng.Float64()*(1-fy)*dy
			q.MinX, q.MaxX, q.MinY, q.MaxY = x0, x0+fx*dx, y0, y0+fy*dy
			t0 := yr.Start + int64(rng.Float64()*0.6*float64(dt))
			q.TStart, q.TEnd = t0, t0+dt/4
		case 1: // wide window, tight time
			q.MinX, q.MaxX, q.MinY, q.MaxY = ext.MinX, ext.MaxX, ext.MinY, ext.MaxY
			t0 := yr.Start + int64(rng.Float64()*0.8*float64(dt))
			q.TStart, q.TEnd = t0, t0+dt/8
			q.Limit = 1 + rng.Intn(40)
		case 2: // half extent, full year, limited
			q.MinX, q.MaxX = ext.MinX, ext.MinX+0.5*dx
			q.MinY, q.MaxY = ext.MinY, ext.MaxY
			q.TStart, q.TEnd = yr.Start, yr.End
			q.Limit = 1 + rng.Intn(200)
		default: // full extent, everything
			q.MinX, q.MaxX, q.MinY, q.MaxY = ext.MinX, ext.MaxX, ext.MinY, ext.MaxY
			q.TStart, q.TEnd = yr.Start, yr.End
		}
		out = append(out, q)
	}
	return out
}

// assertSameAnswer fails unless the routed result matches the single-node
// reference byte for byte: identical stats and identical record bytes in
// identical order.
func assertSameAnswer(t *testing.T, label string, got stdata.QueryResult, want serve.QueryResponse) {
	t.Helper()
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats differ:\n router %+v\n single %+v", label, got.Stats, want.Stats)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("%s: %d records, single-node %d", label, len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		if !bytes.Equal(got.Records[i], want.Records[i]) {
			t.Fatalf("%s: record %d differs:\n router %s\n single %s",
				label, i, got.Records[i], want.Records[i])
		}
	}
}

// TestRouterMatchesSingleNode is the metamorphic property suite: across
// seeded window × shard-count × replica combinations (8×4×2 = 64), a routed
// query must answer byte-identically to one daemon serving the whole
// dataset.
func TestRouterMatchesSingleNode(t *testing.T) {
	tc := newTestCluster(t, 4000, 4)
	windows := seededWindows(42, 8)
	combos, pruned := 0, 0
	for _, replicas := range []int{1, 2} {
		for _, k := range []int{1, 2, 3, 4} {
			m := ShardMap{}
			for i := 0; i < k; i++ {
				reps := []string{tc.shards[i].URL}
				if replicas == 2 {
					reps = append(reps, tc.shards[i].URL)
				}
				m.Shards = append(m.Shards, Shard{Name: fmt.Sprintf("s%d", i), Replicas: reps})
			}
			r := tc.router(t, k, Config{Shards: m})
			for wi, q := range windows {
				label := fmt.Sprintf("replicas=%d shards=%d window=%d", replicas, k, wi)
				q.Explain = true
				got, cache, explain, status, err := r.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("%s: %v (status %d)", label, err, status)
				}
				if cache != "miss" {
					t.Fatalf("%s: cache %q on a NoCache query", label, cache)
				}
				assertSameAnswer(t, label, got, tc.singleNode(t, q))
				if explain == nil || (explain.Scatter == nil && got.Stats.LoadedPartitions > 0) {
					t.Fatalf("%s: missing scatter explain", label)
				}
				if explain.Scatter != nil && explain.Scatter.Width < int64(len(explain.Scatter.RPCs)) {
					t.Fatalf("%s: width %d < %d RPCs", label, explain.Scatter.Width, len(explain.Scatter.RPCs))
				}
				if got.Stats.LoadedPartitions < got.Stats.TotalPartitions {
					pruned++
				}
				combos++
			}
		}
	}
	if combos < 32 {
		t.Fatalf("only %d combos exercised, want >= 32", combos)
	}
	if pruned == 0 {
		t.Fatal("no combo exercised partition pruning")
	}
}

// TestRouterFailoverOnKilledReplica kills the preferred replica of every
// shard mid-request — the connection dies while the sub-query is in flight —
// and requires the router to fail over to the surviving replica and still
// answer byte-identically.
func TestRouterFailoverOnKilledReplica(t *testing.T) {
	tc := newTestCluster(t, 3000, 2)
	// A "killed" replica: accepts the connection, then aborts it on
	// /subquery, which the router sees as a transport error mid-query.
	killed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/subquery" {
			panic(http.ErrAbortHandler)
		}
		http.NotFound(w, r)
	}))
	defer killed.Close()

	m := ShardMap{Shards: []Shard{
		{Name: "s0", Replicas: []string{killed.URL, tc.shards[0].URL}},
		{Name: "s1", Replicas: []string{killed.URL, tc.shards[1].URL}},
	}}
	r := tc.router(t, 2, Config{Shards: m})

	q := seededWindows(7, 4)[3] // full extent: touches both shards
	q.Explain = true
	got, _, explain, status, err := r.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query with killed replicas failed: %v (status %d)", err, status)
	}
	assertSameAnswer(t, "failover", got, tc.singleNode(t, q))
	if r.Stats().Failovers == 0 {
		t.Fatal("no failovers counted despite killed primaries")
	}
	if explain == nil || explain.Scatter == nil || explain.Scatter.Failovers == 0 {
		t.Fatalf("explain does not report the failovers: %+v", explain)
	}
	// The dead replica is demoted; the next query prefers the survivors.
	for _, sh := range r.ShardStatuses() {
		for _, rep := range sh.Replicas {
			if rep.URL == killed.URL && rep.Ready {
				t.Fatalf("killed replica still marked ready: %+v", sh)
			}
		}
	}
	if _, _, _, _, err := r.Query(context.Background(), q); err != nil {
		t.Fatalf("second query after demotion failed: %v", err)
	}
}

// TestRouterHedgesSlowReplica pins the hedging path: a replica that answers
// correctly but slowly gets a hedged duplicate on its peer, the fast answer
// commits, and the result stays identical.
func TestRouterHedgesSlowReplica(t *testing.T) {
	tc := newTestCluster(t, 2000, 1)
	shard := tc.shards[0]
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		http.Error(w, "too slow to matter", http.StatusInternalServerError)
	}))
	defer slow.Close()

	m := ShardMap{Shards: []Shard{
		{Name: "s0", Replicas: []string{slow.URL, shard.URL}},
	}}
	r := tc.router(t, 1, Config{Shards: m, HedgeAfter: 25 * time.Millisecond})

	q := seededWindows(11, 4)[3]
	q.Explain = true
	got, _, explain, status, err := r.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("hedged query failed: %v (status %d)", err, status)
	}
	assertSameAnswer(t, "hedge", got, tc.singleNode(t, q))
	if r.Stats().Hedges == 0 {
		t.Fatal("no hedges fired against a stalled replica")
	}
	if explain == nil || explain.Scatter == nil || explain.Scatter.Hedges == 0 {
		t.Fatalf("explain does not report the hedges: %+v", explain)
	}
}

// TestRouterReplansOnCompactionRace is the generation-fence regression: a
// delta append committing between the router's plan and its scatter must
// never mix generations in one merged response — the fenced sub-queries are
// refused with 409 and the router replans, answering entirely at the new
// generation.
func TestRouterReplansOnCompactionRace(t *testing.T) {
	tc := newTestCluster(t, 2000, 2)
	r := tc.router(t, 2, Config{})

	sch, _ := stdata.Lookup("nyc")
	var once sync.Once
	r.testHookAfterPlan = func() {
		once.Do(func() {
			if _, err := sch.Append(datagen.NYC(25, 99), tc.dir, "race-batch"); err != nil {
				t.Error(err)
			}
		})
	}

	q := seededWindows(13, 4)[3] // full extent: the appended records match
	q.Explain = true
	got, _, explain, status, err := r.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("raced query failed: %v (status %d)", err, status)
	}
	// The reference answer is computed after the append: the routed answer
	// must be entirely at the new generation, appended records included.
	assertSameAnswer(t, "compaction race", got, tc.singleNode(t, q))
	if r.Stats().Replans == 0 || r.Stats().GenConflicts == 0 {
		t.Fatalf("race not detected: %+v", r.Stats())
	}
	if explain == nil || explain.Scatter == nil || explain.Scatter.Replans != 1 {
		t.Fatalf("explain replans: %+v", explain)
	}

	// A generation that keeps moving past the replan budget surfaces as a
	// conflict error instead of looping forever.
	r2 := tc.router(t, 2, Config{Shards: r.shards, MaxReplans: 2})
	batch := 0
	r2.testHookAfterPlan = func() {
		batch++
		if _, err := sch.Append(datagen.NYC(5, int64(100+batch)), tc.dir, fmt.Sprintf("chase-%d", batch)); err != nil {
			t.Error(err)
		}
	}
	if _, _, _, status, err := r2.Query(context.Background(), q); err == nil || status != http.StatusConflict {
		t.Fatalf("runaway generation answered %d, %v", status, err)
	}
}

// TestRouterCacheKeyedByGeneration pins the satellite fix on the router
// side: the merged-result cache key embeds the dataset generation, so an
// append invalidates and the refreshed answer includes the new records.
func TestRouterCacheKeyedByGeneration(t *testing.T) {
	tc := newTestCluster(t, 1500, 2)
	r := tc.router(t, 2, Config{})
	q := seededWindows(17, 4)[3]
	q.NoCache = false

	got1, cache, _, _, err := r.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if cache != "miss" {
		t.Fatalf("first query cache %q", cache)
	}
	if _, cache, _, _, err = r.Query(context.Background(), q); err != nil || cache != "hit" {
		t.Fatalf("second query cache %q, err %v", cache, err)
	}

	sch, _ := stdata.Lookup("nyc")
	if _, err := sch.Append(datagen.NYC(10, 123), tc.dir, "gen-bump"); err != nil {
		t.Fatal(err)
	}
	got2, cache, _, _, err := r.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if cache != "miss" {
		t.Fatalf("post-append query served from stale cache (%q)", cache)
	}
	if got2.Stats.SelectedRecords != got1.Stats.SelectedRecords+10 {
		t.Fatalf("post-append selected %d, want %d",
			got2.Stats.SelectedRecords, got1.Stats.SelectedRecords+10)
	}
	assertSameAnswer(t, "post-append", got2, tc.singleNode(t, q))
}

// TestRouterExplainStitched pins the cross-process trace: the routed
// explain must aggregate the shards' grafted spans into the same counters a
// single node reports, planning attrs single-counted, with one RPC line per
// touched shard whose selected counts sum to the query's.
func TestRouterExplainStitched(t *testing.T) {
	tc := newTestCluster(t, 3000, 2)
	r := tc.router(t, 2, Config{})
	q := seededWindows(19, 4)[2]
	q.Explain = true
	q.NoCache = true

	got, _, explain, _, err := r.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if explain == nil || explain.Scatter == nil {
		t.Fatal("no scatter explain")
	}
	sc := explain.Scatter
	if sc.Shards != 2 {
		t.Fatalf("scatter shards %d, want 2", sc.Shards)
	}
	if sc.Width < 1 || sc.Width > 2 || int(sc.Width) != len(sc.RPCs) {
		t.Fatalf("width %d with %d RPCs", sc.Width, len(sc.RPCs))
	}
	// Planning attrs are single-counted: the stitched totals must equal the
	// metadata's, not shard-count multiples of it.
	if explain.TotalPartitions != int64(tc.meta.NumPartitions()) {
		t.Fatalf("stitched total partitions %d, metadata has %d",
			explain.TotalPartitions, tc.meta.NumPartitions())
	}
	if explain.ReadPartitions != int64(got.Stats.LoadedPartitions) {
		t.Fatalf("stitched read partitions %d, stats say %d",
			explain.ReadPartitions, got.Stats.LoadedPartitions)
	}
	// The grafted shard spans carry execution: selected counts flow up from
	// the shards' select spans and per-RPC lines, and both must agree with
	// the merged stats.
	if explain.RecordsSelected != got.Stats.SelectedRecords {
		t.Fatalf("stitched selected %d, stats %d", explain.RecordsSelected, got.Stats.SelectedRecords)
	}
	var rpcSelected, rpcParts int64
	for _, rpc := range sc.RPCs {
		if rpc.Shard != "s0" && rpc.Shard != "s1" {
			t.Fatalf("rpc line for unknown shard %q", rpc.Shard)
		}
		if rpc.Replica == "" || rpc.Attempts < 1 {
			t.Fatalf("rpc line incomplete: %+v", rpc)
		}
		rpcSelected += rpc.Selected
		rpcParts += rpc.Partitions
	}
	if rpcSelected != got.Stats.SelectedRecords {
		t.Fatalf("rpc selected sum %d, stats %d", rpcSelected, got.Stats.SelectedRecords)
	}
	if rpcParts != int64(got.Stats.LoadedPartitions) {
		t.Fatalf("rpc partition sum %d, stats %d", rpcParts, got.Stats.LoadedPartitions)
	}
	// Shard-side partition reads were grafted in: the stitched report sees
	// the cache loads the shards performed.
	if explain.PartitionLoads == 0 {
		t.Fatal("stitched explain saw no shard partition loads")
	}
}

// TestRouterEmptyScatter pins the no-op path: a window matching nothing
// answers instantly with zero width and no RPCs.
func TestRouterEmptyScatter(t *testing.T) {
	tc := newTestCluster(t, 1000, 1)
	r := tc.router(t, 1, Config{})
	q := serve.QueryRequest{Dataset: "nyc", Records: true,
		MinX: datagen.NYCExtent.MaxX + 1, MaxX: datagen.NYCExtent.MaxX + 2,
		MinY: datagen.NYCExtent.MaxY + 1, MaxY: datagen.NYCExtent.MaxY + 2,
		TStart: 0, TEnd: 1, Explain: true}
	got, _, explain, _, err := r.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.SelectedRecords != 0 || len(got.Records) != 0 {
		t.Fatalf("empty window selected %d records", got.Stats.SelectedRecords)
	}
	if r.Stats().RPCs != 0 {
		t.Fatalf("empty scatter issued %d RPCs", r.Stats().RPCs)
	}
	if explain == nil || explain.Scatter == nil || explain.Scatter.Width != 0 {
		t.Fatalf("empty scatter explain: %+v", explain)
	}
	assertSameAnswer(t, "empty", got, tc.singleNode(t, q))
}

// TestRouterHTTPHandler drives the router through its HTTP face: same
// protocol as a single daemon, metrics exposed, readiness split from
// liveness while draining.
func TestRouterHTTPHandler(t *testing.T) {
	tc := newTestCluster(t, 1500, 2)
	r := tc.router(t, 2, Config{})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	q := seededWindows(23, 4)[3]
	b, _ := json.Marshal(q)
	resp, err := http.Post(ts.URL+"/query?explain=1", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var out serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed query status %d", resp.StatusCode)
	}
	assertSameAnswer(t, "http", out.QueryResult, tc.singleNode(t, q))
	if out.Explain == nil || out.Explain.Scatter == nil {
		t.Fatal("routed HTTP explain missing scatter")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if metrics.Router.Queries != 1 || metrics.Router.RPCs == 0 || len(metrics.Shards) != 2 {
		t.Fatalf("metrics: %+v", metrics.Router)
	}
	if metrics.Router.ScatterWidth == 0 {
		t.Fatal("metrics scatter width not counted")
	}

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	r.SetDraining(true)
	if get("/healthz") != 200 || get("/readyz") != http.StatusServiceUnavailable {
		t.Fatal("draining router: liveness/readiness split broken")
	}
	if resp, _ := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining router answered query with %d", resp.StatusCode)
	}
	r.SetDraining(false)
	if get("/readyz") != 200 {
		t.Fatal("undrained router not ready")
	}
}

// TestRouterSkipsDrainingShard pins router↔shard drain integration: a
// draining replica answers 503 and the router fails over to its peer, so a
// rolling restart never drops queries.
func TestRouterSkipsDrainingShard(t *testing.T) {
	tc := newTestCluster(t, 2000, 2)
	// Shard s0 has two replicas: tc.shards[0] (which we drain) and
	// tc.shards[1] (healthy, same data).
	drainSrv := serve.NewServer(serve.Config{Ctx: engine.New(engine.Config{Slots: 2}), ShardName: "s0"})
	if err := drainSrv.AddDataset("nyc", "nyc", tc.dir); err != nil {
		t.Fatal(err)
	}
	draining := httptest.NewServer(drainSrv.Handler())
	defer draining.Close()
	drainSrv.SetDraining(true)

	m := ShardMap{Shards: []Shard{
		{Name: "s0", Replicas: []string{draining.URL, tc.shards[0].URL}},
	}}
	r := tc.router(t, 1, Config{Shards: m})

	// A readiness pass demotes the draining replica before any query.
	r.CheckReplicas(context.Background())
	sh := r.ShardStatuses()[0]
	if sh.Replicas[0].Ready || !sh.Replicas[1].Ready {
		t.Fatalf("readiness probe: %+v", sh)
	}

	q := seededWindows(29, 4)[3]
	got, _, _, _, err := r.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswer(t, "drain-skip", got, tc.singleNode(t, q))
	// The draining replica was never asked: the probe moved it to the back
	// of the order and the healthy replica answered first.
	if st := r.ShardStatuses()[0]; st.Replicas[0].Calls != 0 {
		t.Fatalf("draining replica received %d calls", st.Replicas[0].Calls)
	}
}
