package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"st4ml/internal/serve"
)

// The router speaks the same client protocol as a single stserved daemon —
// POST /query with the same body and response shape — so stquery and every
// other client work unchanged whether they point at one node or a fleet.

// errRouterDraining is the refusal a draining router answers new work with.
var errRouterDraining = errors.New("cluster: draining")

// Handler returns the router's HTTP routes.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", r.handleQuery)
	mux.HandleFunc("GET /datasets", r.handleDatasets)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /readyz", r.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	if r.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errRouterDraining)
		return
	}
	var qreq serve.QueryRequest
	if err := json.NewDecoder(req.Body).Decode(&qreq); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.URL.Query().Get("explain") == "1" {
		qreq.Explain = true
	}
	r.queries.Add(1)
	if qreq.Approx {
		approx, cache, explain, status, err := r.QueryApprox(req.Context(), qreq)
		if err != nil {
			if status >= http.StatusInternalServerError && status != http.StatusGatewayTimeout {
				r.queryErrors.Add(1)
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, serve.QueryResponse{
			Dataset:   qreq.Dataset,
			Cache:     cache,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
			Explain:   explain,
			Approx:    approx,
		})
		return
	}
	res, cache, explain, status, err := r.Query(req.Context(), qreq)
	if err != nil {
		if status >= http.StatusInternalServerError && status != http.StatusGatewayTimeout {
			r.queryErrors.Add(1)
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, serve.QueryResponse{
		Dataset:     qreq.Dataset,
		Cache:       cache,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
		Explain:     explain,
		QueryResult: res,
	})
}

func (r *Router) handleDatasets(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.catalog.List())
}

// MetricsResponse is the router's GET /metrics body.
type MetricsResponse struct {
	Router RouterStats      `json:"router"`
	Cache  serve.CacheStats `json:"cache"`
	Shards []ShardStatus    `json:"shards"`
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, MetricsResponse{
		Router: r.Stats(),
		Cache:  r.cache.Stats(),
		Shards: r.ShardStatuses(),
	})
}

// handleHealthz is the liveness probe: green as long as the process can
// answer HTTP at all, draining included.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 503 while draining.
func (r *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if r.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}
