package storage

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/index"
)

// encodeRecs flattens records to their canonical wire form so equality
// checks are byte-for-byte, not merely structural.
func encodeRecs(recs []rec) []string {
	out := make([]string, len(recs))
	w := codec.NewWriter(64)
	for i, r := range recs {
		w.Reset()
		recC.Enc(w, r)
		out[i] = string(w.Bytes())
	}
	return out
}

// v2Layout describes one dataset shape for the metamorphic suite.
type v2Layout struct {
	name     string
	seed     int64
	nParts   int
	perPart  int
	compress bool
}

func v2Layouts() []v2Layout {
	return []v2Layout{
		{name: "small-plain", seed: 11, nParts: 2, perPart: 37, compress: false},
		{name: "small-gzip", seed: 12, nParts: 2, perPart: 37, compress: true},
		{name: "wide-plain", seed: 13, nParts: 4, perPart: 300, compress: false},
		{name: "wide-gzip", seed: 14, nParts: 4, perPart: 300, compress: true},
	}
}

// v2Windows builds the query-window kinds the suite sweeps: full-cover,
// random small boxes, a boundary window that touches a record's exact
// coordinates, a degenerate zero-volume window pinned on a record, and a
// window disjoint from the whole dataset.
func v2Windows(rng *rand.Rand, parts [][]rec) map[string]index.Box {
	// Pick a record to pin boundary and degenerate windows on.
	pin := parts[0][len(parts[0])/2]
	pinBox := recBox(pin)
	boundary := index.Box{}
	for d := 0; d < index.Dims; d++ {
		// Window's max touches the record's min exactly: closed-interval
		// intersection must still find it.
		boundary.Min[d] = pinBox.Min[d] - 5
		boundary.Max[d] = pinBox.Min[d]
	}
	small := index.Box{}
	x, y, ti := rng.Float64()*40, rng.Float64()*10, float64(rng.Int63n(4000))
	small.Min = [index.Dims]float64{x, y, ti}
	small.Max = [index.Dims]float64{x + 3, y + 2, ti + 300}
	return map[string]index.Box{
		"full": {
			Min: [index.Dims]float64{-1e9, -1e9, -1e15},
			Max: [index.Dims]float64{1e9, 1e9, 1e15},
		},
		"small":      small,
		"boundary":   boundary,
		"degenerate": pinBox,
		"disjoint": {
			Min: [index.Dims]float64{1e6, 1e6, 1e12},
			Max: [index.Dims]float64{2e6, 2e6, 2e12},
		},
	}
}

// metaFormats are the on-disk generations × codec shapes the metamorphic
// suite sweeps: the row-major v2 layout, the columnar v3 layout driven by
// a Columnar schema (per-record predicate active), and v3's generic row
// fallback for codecs without one.
var metaFormats = []struct {
	name    string
	version int
	c       codec.Codec[rec]
}{
	{"v2", 2, recC},
	{"v3", 3, recC},
	{"v3-generic", 3, recRowC},
}

// TestMetamorphicBlockPrunedEqualsFull is the storage analogue of the
// selection metamorphic suite: across layouts × block sizes × formats ×
// window kinds (≥128 combos), a pruned read must agree byte-for-byte with
// a full scan after both are filtered by the window — block pruning may
// only skip blocks no queried record lives in, and v3's per-record
// columnar predicate may only drop records outside every window.
func TestMetamorphicBlockPrunedEqualsFull(t *testing.T) {
	blockSizes := []int{1, 7, 64, 1024}
	combos := 0
	for _, fm := range metaFormats {
		for _, lay := range v2Layouts() {
			for _, bs := range blockSizes {
				rng := rand.New(rand.NewSource(lay.seed))
				parts := makeParts(rng, lay.nParts, lay.perPart)
				dir := t.TempDir()
				meta, err := Write(dir, fm.c, parts, recBox, WriteOptions{
					Name: lay.name, Version: fm.version, Compress: lay.compress, BlockRecords: bs,
				})
				if err != nil {
					t.Fatalf("%s/%s/bs=%d: %v", fm.name, lay.name, bs, err)
				}
				if meta.Version != fm.version || meta.BlockRecords != bs {
					t.Fatalf("%s/%s/bs=%d: meta version=%d blockRecords=%d",
						fm.name, lay.name, bs, meta.Version, meta.BlockRecords)
				}
				for wname, win := range v2Windows(rng, parts) {
					combos++
					for pi := range parts {
						full, fullSt, err := ReadPartitionPruned(dir, meta, pi, fm.c, nil)
						if err != nil {
							t.Fatalf("%s/%s/bs=%d/%s p%d full: %v", fm.name, lay.name, bs, wname, pi, err)
						}
						if !reflect.DeepEqual(full, parts[pi]) {
							t.Fatalf("%s/%s/bs=%d p%d full scan mismatch", fm.name, lay.name, bs, pi)
						}
						pruned, st, err := ReadPartitionPruned(dir, meta, pi, fm.c, []index.Box{win})
						if err != nil {
							t.Fatalf("%s/%s/bs=%d/%s p%d pruned: %v", fm.name, lay.name, bs, wname, pi, err)
						}

						// Filtered equivalence, byte-for-byte.
						filter := func(recs []rec) []string {
							var kept []rec
							for _, r := range recs {
								if recBox(r).Intersects(win) {
									kept = append(kept, r)
								}
							}
							return encodeRecs(kept)
						}
						if got, want := filter(pruned), filter(full); !reflect.DeepEqual(got, want) {
							t.Fatalf("%s/%s/bs=%d/%s p%d: filtered pruned %d recs != filtered full %d recs",
								fm.name, lay.name, bs, wname, pi, len(got), len(want))
						}
						// The pruned read is an order-preserving subsequence of
						// the full scan (whole blocks in file order; v3's
						// columnar predicate only ever drops records).
						enc, fullEnc := encodeRecs(pruned), encodeRecs(full)
						j := 0
						for _, e := range enc {
							for j < len(fullEnc) && fullEnc[j] != e {
								j++
							}
							if j == len(fullEnc) {
								t.Fatalf("%s/%s/bs=%d/%s p%d: pruned result is not a subsequence of full scan",
									fm.name, lay.name, bs, wname, pi)
							}
							j++
						}

						// Stats invariants.
						wantBlocks := (len(parts[pi]) + bs - 1) / bs
						if fullSt.Blocks != wantBlocks || st.Blocks != wantBlocks {
							t.Fatalf("%s/%s/bs=%d p%d: Blocks=%d/%d want %d",
								fm.name, lay.name, bs, pi, fullSt.Blocks, st.Blocks, wantBlocks)
						}
						if st.BlocksScanned+st.BlocksPruned != st.Blocks {
							t.Fatalf("%s/%s/bs=%d/%s p%d: scanned %d + pruned %d != blocks %d",
								fm.name, lay.name, bs, wname, pi, st.BlocksScanned, st.BlocksPruned, st.Blocks)
						}
						if fullSt.BlocksPruned != 0 || fullSt.RawBytes == 0 && len(parts[pi]) > 0 {
							t.Fatalf("%s/%s/bs=%d p%d: full scan stats %+v", fm.name, lay.name, bs, pi, fullSt)
						}
						// A full scan never engages the columnar predicate.
						if fullSt.RecordsPruned != 0 {
							t.Fatalf("%s/%s/bs=%d p%d: full scan pruned %d records",
								fm.name, lay.name, bs, pi, fullSt.RecordsPruned)
						}
						native := fm.name == "v3"
						if !native && st.RecordsPruned != 0 {
							t.Fatalf("%s/%s/bs=%d/%s p%d: non-columnar read pruned %d records",
								fm.name, lay.name, bs, wname, pi, st.RecordsPruned)
						}
						if native {
							// The columnar predicate materializes survivors only,
							// and accounts every record it drops.
							if got := filter(pruned); len(got) != len(pruned) {
								t.Fatalf("%s/%s/bs=%d/%s p%d: columnar read returned %d records, only %d match",
									fm.name, lay.name, bs, wname, pi, len(pruned), len(got))
							}
							scannedRecs := int64(len(pruned)) + st.RecordsPruned
							if scannedRecs < int64(len(filter(full))) || scannedRecs > int64(len(parts[pi])) {
								t.Fatalf("%s/%s/bs=%d/%s p%d: survivors %d + pruned %d outside [%d, %d]",
									fm.name, lay.name, bs, wname, pi, len(pruned), st.RecordsPruned,
									len(filter(full)), len(parts[pi]))
							}
						}
						switch wname {
						case "disjoint":
							if st.BlocksScanned != 0 || len(pruned) != 0 {
								t.Fatalf("%s/%s/bs=%d p%d: disjoint window scanned %d blocks, %d recs",
									fm.name, lay.name, bs, pi, st.BlocksScanned, len(pruned))
							}
						case "full":
							if st.BlocksPruned != 0 || len(pruned) != len(full) {
								t.Fatalf("%s/%s/bs=%d p%d: full window pruned %d blocks",
									fm.name, lay.name, bs, pi, st.BlocksPruned)
							}
						case "degenerate", "boundary":
							// The pinned record sits in partition 0 and must survive.
							if pi == 0 {
								want := encodeRecs([]rec{parts[0][len(parts[0])/2]})[0]
								found := false
								for _, e := range enc {
									if e == want {
										found = true
										break
									}
								}
								if !found {
									t.Fatalf("%s/%s/bs=%d/%s: pinned record pruned away", fm.name, lay.name, bs, wname)
								}
							}
						}
						if st.BytesRead > fullSt.BytesRead {
							t.Fatalf("%s/%s/bs=%d/%s p%d: pruned read %d bytes > full %d",
								fm.name, lay.name, bs, wname, pi, st.BytesRead, fullSt.BytesRead)
						}
					}
				}
			}
		}
	}
	if combos < 128 {
		t.Fatalf("only %d format×layout×blocksize×window combos, want ≥128", combos)
	}
}

// TestV2PrunedReadSkipsBytes pins the headline property: a small window
// over a multi-block partition reads strictly fewer bytes and
// decompresses strictly fewer than the full scan.
func TestV2PrunedReadSkipsBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	parts := makeParts(rng, 1, 4000)
	// Block pruning pays off when records are ST-clustered within the
	// partition, as ingest's in-partition ordering produces; emulate that
	// by sorting on time so consecutive blocks cover disjoint time slices.
	sort.Slice(parts[0], func(i, j int) bool { return parts[0][i].T < parts[0][j].T })
	dir := t.TempDir()
	meta, err := Write(dir, recC, parts, recBox, WriteOptions{
		Name: "skip", Compress: true, BlockRecords: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, fullSt, err := ReadPartitionPruned(dir, meta, 0, recC, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A window around one record's instant: tiny time slice of partition 0.
	pin := recBox(parts[0][7])
	_, st, err := ReadPartitionPruned(dir, meta, 0, recC, []index.Box{pin})
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksPruned == 0 {
		t.Fatalf("degenerate window pruned no blocks: %+v", st)
	}
	if st.BytesRead >= fullSt.BytesRead || st.RawBytes >= fullSt.RawBytes {
		t.Fatalf("pruned read not cheaper: pruned %+v full %+v", st, fullSt)
	}
}

// TestV1OptionStillWritesLegacyLayout pins the Version escape hatch: a
// Version-1 write produces a dataset the reader handles via the legacy
// path, returning identical records and whole-file stats.
func TestV1OptionStillWritesLegacyLayout(t *testing.T) {
	for _, compress := range []bool{false, true} {
		rng := rand.New(rand.NewSource(31))
		parts := makeParts(rng, 2, 120)
		dir := t.TempDir()
		meta, err := Write(dir, recC, parts, recBox, WriteOptions{
			Name: "v1", Compress: compress, Version: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if meta.Version != 0 || meta.BlockRecords != 0 {
			t.Fatalf("v1 metadata carries v2 fields: %+v", meta)
		}
		for i := range parts {
			got, st, err := ReadPartitionPruned(dir, meta, i, recC, []index.Box{{
				Min: [index.Dims]float64{1e6, 1e6, 1e12},
				Max: [index.Dims]float64{2e6, 2e6, 2e12},
			}})
			if err != nil {
				t.Fatal(err)
			}
			// v1 cannot prune inside a partition: windows are ignored.
			if !reflect.DeepEqual(got, parts[i]) {
				t.Fatalf("v1 partition %d mismatch (compress=%v)", i, compress)
			}
			if st.Blocks != 1 || st.BlocksScanned != 1 || st.BlocksPruned != 0 {
				t.Fatalf("v1 stats %+v", st)
			}
		}
	}
}

// TestV2EmptyPartition exercises the zero-block file: header + empty
// footer + trailer only.
func TestV2EmptyPartition(t *testing.T) {
	dir := t.TempDir()
	meta, err := Write(dir, recC, [][]rec{{}}, recBox, WriteOptions{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := ReadPartitionPruned(dir, meta, 0, recC, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || st.Blocks != 0 || st.BlocksScanned != 0 {
		t.Fatalf("empty v2 partition: recs=%d stats=%+v", len(got), st)
	}
}

// TestV2MultiWindowUnion checks that several windows prune like their
// union: a record matching any window is always returned.
func TestV2MultiWindowUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	parts := makeParts(rng, 1, 500)
	dir := t.TempDir()
	meta, err := Write(dir, recC, parts, recBox, WriteOptions{BlockRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	wins := []index.Box{recBox(parts[0][3]), recBox(parts[0][450])}
	got, _, err := ReadPartitionPruned(dir, meta, 0, recC, wins)
	if err != nil {
		t.Fatal(err)
	}
	enc := encodeRecs(got)
	for _, want := range encodeRecs([]rec{parts[0][3], parts[0][450]}) {
		found := false
		for _, e := range enc {
			if e == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("record matching one of several windows was pruned")
		}
	}
}
