package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"st4ml/internal/codec"
	"st4ml/internal/index"
)

// The delta layer turns the rebuild-the-world store into a continuously
// ingesting one (see DESIGN.md "Delta layer & compaction"). New records are
// not merged into the base partition files; they land in small immutable
// delta files (the current block layout, Z-order clustered, CRC-framed) routed
// to the base partition whose extent they enlarge least, and a manifest
// file — swapped atomically via tmp+rename — records which delta files are
// live. Readers union base + manifest-listed deltas (merge-on-read);
// a background compactor folds deltas back into rewritten base files and
// swaps the manifest again. The manifest rename is the single commit point
// of both operations:
//
//   - a delta file (or compacted base file) that exists on disk but is not
//     referenced by the manifest is invisible — a crash between file write
//     and manifest swap loses nothing the ingester had been acked for and
//     duplicates nothing a reader can see;
//   - appends carry an optional batch id recorded in the manifest, so an
//     ingester that crashes after the swap but before acking its source can
//     replay the batch and have it recognized as already committed —
//     exactly-once, the same commit-or-retry discipline as the engine's
//     task protocol.
//
// Writers (append, compact) of one dataset directory serialize on an
// in-process lock; running multiple writer processes against one directory
// is not supported (readers are always safe).

// ManifestFile is the name of the delta manifest within a dataset
// directory. Absence means the dataset has no delta layer (generation 0).
const ManifestFile = "manifest.json"

// DeltaMeta describes one live delta file: which base partition it extends
// plus the usual partition accounting (file, count, bytes, ST bounds).
type DeltaMeta struct {
	// Partition is the base partition this delta extends.
	Partition int `json:"partition"`
	// Seq is the delta's unique, monotonically increasing sequence number.
	Seq int64 `json:"seq"`
	PartitionMeta
}

// Manifest is the delta layer's commit record: the dataset generation,
// compaction rewrites, and the set of live delta files. It is always
// written to a temp file and renamed into place, so readers see either the
// old or the new version, never a torn one.
type Manifest struct {
	// Generation increments on every committed append or compaction. The
	// serving catalog revalidates on it (mtime alone misses in-place
	// rewrites within one timestamp granule).
	Generation int64 `json:"generation"`
	// NextSeq is the next unused delta sequence number.
	NextSeq int64 `json:"next_seq"`
	// Rewrites maps partition id → the compacted base file that replaces
	// the metadata.json entry for that partition.
	Rewrites map[int]PartitionMeta `json:"rewrites,omitempty"`
	// Deltas lists the live delta files in append order.
	Deltas []DeltaMeta `json:"deltas,omitempty"`
	// Summaries maps partition id → its summary sidecar (approximate query
	// tier). An entry is only served while its Base matches the
	// partition's live base file, so compactions that rewrite a partition
	// without re-summarizing leave a harmlessly stale entry, never a
	// wrong estimate.
	Summaries map[int]SummaryMeta `json:"summaries,omitempty"`
	// AppliedBatches holds the most recent ingest batch ids (bounded at
	// maxAppliedBatches); an AppendDelta carrying one of them is a retry of
	// a committed batch and becomes a no-op.
	AppliedBatches []string `json:"applied_batches,omitempty"`
}

// maxAppliedBatches bounds the manifest's batch-id memory. An ingester
// replays at most the batches since its last ack, which is far fewer.
const maxAppliedBatches = 256

// applied reports whether batch id is recorded as committed.
func (mf *Manifest) applied(id string) bool {
	for _, b := range mf.AppliedBatches {
		if b == id {
			return true
		}
	}
	return false
}

// noteBatch records a committed batch id, aging out the oldest.
func (mf *Manifest) noteBatch(id string) {
	if id == "" {
		return
	}
	mf.AppliedBatches = append(mf.AppliedBatches, id)
	if len(mf.AppliedBatches) > maxAppliedBatches {
		mf.AppliedBatches = append(mf.AppliedBatches[:0],
			mf.AppliedBatches[len(mf.AppliedBatches)-maxAppliedBatches:]...)
	}
}

// ReadManifest loads the dataset's delta manifest. A missing file is not
// an error: it returns an empty manifest at generation 0.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if os.IsNotExist(err) {
		return &Manifest{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: read manifest: %w", err)
	}
	var mf Manifest
	if err := json.Unmarshal(b, &mf); err != nil {
		return nil, fmt.Errorf("storage: parse manifest: %w", err)
	}
	return &mf, nil
}

// ManifestGeneration returns the dataset's current manifest generation
// (0 when it has no manifest) — the cheap revalidation probe the serving
// catalog polls.
func ManifestGeneration(dir string) (int64, error) {
	mf, err := ReadManifest(dir)
	if err != nil {
		return 0, err
	}
	return mf.Generation, nil
}

// writeManifest commits mf: marshal to a temp file, fsync, rename over
// ManifestFile. The rename is the commit point of the delta layer.
func writeManifest(dir string, mf *Manifest) error {
	b, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: marshal manifest: %w", err)
	}
	tmp := filepath.Join(dir, ManifestFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: close manifest: %w", err)
	}
	crash("manifest:tmp")
	if err := os.Rename(tmp, filepath.Join(dir, ManifestFile)); err != nil {
		return fmt.Errorf("storage: commit manifest: %w", err)
	}
	return nil
}

// crashHook, when non-nil, is invoked at every labeled injection point of
// the append/compact protocols. The chaos suite sets it to panic mid-
// operation and then proves no committed record was lost or duplicated.
// Production leaves it nil.
var crashHook func(point string)

func crash(point string) {
	if crashHook != nil {
		crashHook(point)
	}
}

// dirLocks serializes writers (append, compact) per dataset directory
// within this process.
var dirLocks sync.Map // string → *sync.Mutex

func lockDir(dir string) func() {
	mu, _ := dirLocks.LoadOrStore(filepath.Clean(dir), &sync.Mutex{})
	m := mu.(*sync.Mutex)
	m.Lock()
	return m.Unlock
}

// AppendOptions tunes one delta append.
type AppendOptions struct {
	// BatchID, when non-empty, identifies the ingest batch for exactly-once
	// retry: appending a batch whose id the manifest already records is a
	// no-op returning the current manifest.
	BatchID string
}

// deltaFileName names partition pi's delta with sequence seq.
func deltaFileName(pi int, seq int64) string {
	return fmt.Sprintf("delta-%05d-%08d.stp", pi, seq)
}

// compactedFileName names partition pi's base rewrite at generation gen.
// Generation-suffixed names (never rename-over) are what let a reader
// holding the previous manifest keep reading the previous base file while
// a compaction commits — MVCC with files.
func compactedFileName(pi int, gen int64) string {
	return fmt.Sprintf("part-%05d-g%06d.stp", pi, gen)
}

// AppendDelta appends recs to the live dataset at dir without rewriting
// any base file: records are routed to the base partition whose ST extent
// they enlarge least, Z-order clustered, written as per-partition delta
// files in the current (v3 columnar) block layout, and committed
// by an atomic manifest swap that bumps the dataset generation. Readers
// that load metadata after the swap see the new records; readers that
// loaded before keep a consistent pre-append view. Concurrent appends and
// compactions of one directory serialize in-process; see the package
// comment on delta.go for the crash-safety argument.
//
// After the swap, OnCommit hooks for dir run outside the writer lock; a
// hook failure returns the committed manifest alongside a *HookError — the
// append is durable, only the notification failed.
func AppendDelta[T any](
	dir string, c codec.Codec[T], recs []T, boxOf func(T) index.Box, opts AppendOptions,
) (*Manifest, error) {
	mf, ev, err := appendDeltaLocked(dir, c, recs, boxOf, opts)
	if err != nil {
		return nil, err
	}
	if ev != nil {
		if herr := notifyCommit(*ev); herr != nil {
			return mf, herr
		}
	}
	return mf, nil
}

// appendDeltaLocked does the append under the directory writer lock and
// returns the commit event to notify (nil when nothing committed: a
// replayed batch or an empty record set).
func appendDeltaLocked[T any](
	dir string, c codec.Codec[T], recs []T, boxOf func(T) index.Box, opts AppendOptions,
) (*Manifest, *CommitEvent, error) {
	unlock := lockDir(dir)
	defer unlock()

	meta, err := ReadMetadata(dir)
	if err != nil {
		return nil, nil, err
	}
	if meta.NumPartitions() == 0 {
		return nil, nil, fmt.Errorf("storage: append to %s: dataset has no partitions", dir)
	}
	mf, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	if opts.BatchID != "" && mf.applied(opts.BatchID) {
		return mf, nil, nil // committed by a previous attempt
	}
	if len(recs) == 0 {
		return mf, nil, nil
	}

	blockRecords := meta.BlockRecords
	if blockRecords <= 0 {
		blockRecords = DefaultBlockRecords
	}
	groups := routeToPartitions(meta, recs, boxOf)
	var committed []DeltaMeta
	for pi, group := range groups {
		if len(group) == 0 {
			continue
		}
		ZCluster(group, boxOf)
		seq := mf.NextSeq
		mf.NextSeq++
		name := deltaFileName(pi, seq)
		// Deltas are written in the current format regardless of the base
		// dataset's: pm.Format records it, and the reader dispatches on it
		// per delta file.
		pm, err := writePartitionV3File(dir, name, c, group, boxOf, blockRecords, true)
		if err != nil {
			return nil, nil, err
		}
		pm.Format = FormatVersion
		dm := DeltaMeta{Partition: pi, Seq: seq, PartitionMeta: pm}
		mf.Deltas = append(mf.Deltas, dm)
		committed = append(committed, dm)
	}
	crash("append:delta-written")
	mf.Generation++
	mf.noteBatch(opts.BatchID)
	if err := writeManifest(dir, mf); err != nil {
		return nil, nil, err
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i].Seq < committed[j].Seq })
	ev := &CommitEvent{
		Dir:        dir,
		Kind:       CommitAppend,
		Generation: mf.Generation,
		BatchID:    opts.BatchID,
		Deltas:     committed,
	}
	return mf, ev, nil
}

// routeToPartitions assigns each record to a base partition: the one whose
// live extent (base ∪ attached deltas) grows least, in coordinates
// normalized by the dataset's own extent so degrees and seconds weigh
// comparably. Pure locality heuristic — pruning correctness rests on the
// delta files' recorded bounds, not on where records are routed.
func routeToPartitions[T any](meta *Metadata, recs []T, boxOf func(T) index.Box) map[int][]T {
	boxes := make([]index.Box, meta.NumPartitions())
	all := index.EmptyBox()
	for i, p := range meta.Partitions {
		b := p.Box()
		for _, d := range meta.Deltas(i) {
			b = b.Union(d.Box())
		}
		boxes[i] = b
		all = all.Union(b)
	}
	scale := [index.Dims]float64{}
	for d := 0; d < index.Dims; d++ {
		scale[d] = all.Max[d] - all.Min[d]
		if scale[d] <= 0 {
			scale[d] = 1
		}
	}
	normVolume := func(b index.Box) float64 {
		v := 1.0
		for d := 0; d < index.Dims; d++ {
			v *= (b.Max[d] - b.Min[d]) / scale[d]
		}
		return v
	}
	groups := map[int][]T{}
	for _, rec := range recs {
		rb := boxOf(rec)
		best, bestCost := 0, 0.0
		for i, pb := range boxes {
			cost := normVolume(pb.Union(rb)) - normVolume(pb)
			if i == 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		groups[best] = append(groups[best], rec)
	}
	return groups
}
