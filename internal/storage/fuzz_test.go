package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/index"
)

// writeFuzzSeed produces the bytes of a small partition file of the given
// format version plus its metadata, shared by the fuzz targets and the
// byte-flip tests.
func writeFuzzSeed(t testing.TB, version int, compress bool, blockRecords int) ([]byte, *Metadata, []rec) {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(99))
	parts := makeParts(rng, 1, 50)
	meta, err := Write(dir, recC, parts, recBox, WriteOptions{
		Name: "fuzz", Version: version, Compress: compress, BlockRecords: blockRecords,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, meta.Partitions[0].File))
	if err != nil {
		t.Fatal(err)
	}
	return raw, meta, parts[0]
}

// readBytesAsPartition writes data as partition 0 of a scratch dataset
// carrying meta's shape and reads it back through the pruned reader.
func readBytesAsPartition(t testing.TB, meta *Metadata, data []byte, windows []index.Box) ([]rec, error) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, meta.Partitions[0].File), data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := ReadPartitionPruned(dir, meta, 0, recC, windows)
	return out, err
}

// FuzzV2Partition throws arbitrary bytes at the v2 reader as a whole
// partition file. The invariants: the reader never panics (ErrCorrupt is
// always caught), and a read that succeeds returns exactly the record
// count the metadata promises — arbitrary corruption must surface as an
// error, never as silently wrong output.
func FuzzV2Partition(f *testing.F) {
	seedPlain, metaPlain, _ := writeFuzzSeed(f, 2, false, 8)
	seedGzip, _, _ := writeFuzzSeed(f, 2, true, 8)
	f.Add(seedPlain)
	f.Add(seedGzip)
	f.Add([]byte{})
	f.Add([]byte(v2Magic))
	f.Add(append(append([]byte(v2Magic), make([]byte, 12)...), v2TrailerMagic...))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Full scan: success implies the metadata count cross-check held.
		out, err := readBytesAsPartition(t, metaPlain, data, nil)
		if err == nil && int64(len(out)) != metaPlain.Partitions[0].Count {
			t.Fatalf("clean read returned %d records, metadata says %d",
				len(out), metaPlain.Partitions[0].Count)
		}
		// Pruned scan must never panic either; its count check is per-block.
		win := []index.Box{{
			Min: [index.Dims]float64{0, 0, 0},
			Max: [index.Dims]float64{5, 5, 500},
		}}
		if _, err := readBytesAsPartition(t, metaPlain, data, win); err != nil {
			_ = err // corruption reported, not panicked: that is the contract
		}
	})
}

// FuzzBlockFooter drives the footer decoder directly: any byte soup must
// either decode or panic ErrCorrupt (converted by Catch), with the
// entry-size guard preventing absurd pre-allocations.
func FuzzBlockFooter(f *testing.F) {
	valid := codec.GetWriter()
	encodeFooter(valid, []BlockMeta{
		{Offset: 4, Stored: 100, Raw: 200, Count: 8, Bounds: index.EmptyBox()},
		{Offset: 104, Stored: 50, Raw: 60, Count: 3},
	})
	f.Add(append([]byte{}, valid.Bytes()...), int64(1000))
	codec.PutWriter(valid)
	f.Add([]byte{}, int64(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, int64(1<<40))
	f.Fuzz(func(t *testing.T, data []byte, regionEnd int64) {
		err := codec.Catch(func() {
			blocks := decodeFooter(data, regionEnd)
			// Decoded footers satisfy the structural invariants the reader
			// depends on: ordered, non-overlapping, inside the block region.
			prevEnd := int64(v2HeaderLen)
			for _, b := range blocks {
				if b.Offset < prevEnd || b.Offset+b.Stored > regionEnd {
					t.Fatalf("decodeFooter admitted out-of-region block %+v", b)
				}
				prevEnd = b.Offset + b.Stored
			}
		})
		_ = err
	})
}

// TestV2EveryByteFlipDetected is the deterministic core of the fuzz
// contract: every byte of a v2 partition file is protected — header and
// trailer magics by explicit checks, the trailer offset by range
// validation, and everything else by a CRC32C frame — so flipping ANY
// single byte must either error or (never) return the original records.
func TestV2EveryByteFlipDetected(t *testing.T) {
	for _, compress := range []bool{false, true} {
		raw, meta, want := writeFuzzSeed(t, 2, compress, 8)
		for pos := 0; pos < len(raw); pos++ {
			mut := append([]byte{}, raw...)
			mut[pos] ^= 0x5a
			got, err := readBytesAsPartition(t, meta, mut, nil)
			if err == nil && !reflect.DeepEqual(got, want) {
				t.Fatalf("compress=%v: flip at byte %d/%d silently changed records",
					compress, pos, len(raw))
			}
			if err == nil {
				t.Fatalf("compress=%v: flip at byte %d/%d went undetected", compress, pos, len(raw))
			}
		}
	}
}

// TestV2TruncationsDetected chops the file at every length below full and
// expects an error each time.
func TestV2TruncationsDetected(t *testing.T) {
	raw, meta, _ := writeFuzzSeed(t, 2, true, 8)
	for n := 0; n < len(raw); n += 7 {
		if _, err := readBytesAsPartition(t, meta, raw[:n], nil); err == nil {
			t.Fatalf("truncation to %d/%d bytes went undetected", n, len(raw))
		}
	}
}

// FuzzV3Block throws arbitrary bytes at the v3 columnar reader as a whole
// partition file, over both the native columnar path (recC carries a
// Columnar schema) and the generic row fallback. Same contract as
// FuzzV2Partition: never panic, and a clean read returns exactly the
// promised record count.
func FuzzV3Block(f *testing.F) {
	seedNative, metaNative, _ := writeFuzzSeed(f, 3, false, 8)
	f.Add(seedNative)
	f.Add([]byte{})
	f.Add([]byte(v3Magic))
	f.Add(append(append([]byte(v3Magic), make([]byte, 12)...), v3TrailerMagic...))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := readBytesAsPartition(t, metaNative, data, nil)
		if err == nil && int64(len(out)) != metaNative.Partitions[0].Count {
			t.Fatalf("clean read returned %d records, metadata says %d",
				len(out), metaNative.Partitions[0].Count)
		}
		// Columnar-pruned scan: the per-record predicate runs on decoded
		// columns, so corruption must still surface as an error, never a
		// panic or silent wrong output.
		win := []index.Box{{
			Min: [index.Dims]float64{0, 0, 0},
			Max: [index.Dims]float64{5, 5, 500},
		}}
		if _, err := readBytesAsPartition(t, metaNative, data, win); err != nil {
			_ = err
		}
		// Generic fallback decode of the same bytes: a file written with a
		// columnar schema must not decode through the row path (profile
		// mismatch is structural corruption), and must never panic.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, metaNative.Partitions[0].File), data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err = ReadPartitionPruned(dir, metaNative, 0, recRowC, nil)
		_ = err
	})
}

// TestV3EveryByteFlipDetected mirrors the v2 byte-flip wall for the
// columnar format: header and trailer magics are explicit, the footer
// (including the layout profile byte) and every column stream are CRC
// framed, so no single-byte flip may pass unnoticed.
func TestV3EveryByteFlipDetected(t *testing.T) {
	for name, c := range map[string]codec.Codec[rec]{"native": recC, "generic": recRowC} {
		dir := t.TempDir()
		rng := rand.New(rand.NewSource(99))
		parts := makeParts(rng, 1, 50)
		meta, err := Write(dir, c, parts, recBox, WriteOptions{Name: "fuzz", Version: 3, BlockRecords: 8})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, meta.Partitions[0].File))
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < len(raw); pos++ {
			mut := append([]byte{}, raw...)
			mut[pos] ^= 0x5a
			mdir := t.TempDir()
			if err := os.WriteFile(filepath.Join(mdir, meta.Partitions[0].File), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			got, _, err := ReadPartitionPruned(mdir, meta, 0, c, nil)
			if err == nil && !reflect.DeepEqual(got, parts[0]) {
				t.Fatalf("%s: flip at byte %d/%d silently changed records", name, pos, len(raw))
			}
			if err == nil {
				t.Fatalf("%s: flip at byte %d/%d went undetected", name, pos, len(raw))
			}
		}
	}
}

// TestV3TruncationsDetected chops a v3 file at every length below full and
// expects an error each time.
func TestV3TruncationsDetected(t *testing.T) {
	raw, meta, _ := writeFuzzSeed(t, 3, false, 8)
	for n := 0; n < len(raw); n++ {
		if _, err := readBytesAsPartition(t, meta, raw[:n], nil); err == nil {
			t.Fatalf("truncation to %d/%d bytes went undetected", n, len(raw))
		}
	}
}

// TestV3SchemaMismatchErrors pins the structural rules between the file's
// layout profile and the reader's codec: a native columnar file cannot be
// read by a codec without a Columnar schema, while a generic v3 file reads
// fine through a columnar codec (the profile says rows, so rows it is).
func TestV3SchemaMismatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := makeParts(rng, 1, 30)

	nativeDir := t.TempDir()
	nm, err := Write(nativeDir, recC, parts, recBox, WriteOptions{Version: 3, BlockRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadPartitionPruned(nativeDir, nm, 0, recRowC, nil); err == nil {
		t.Fatal("native columnar file decoded through a codec with no Columnar schema")
	}

	genericDir := t.TempDir()
	gm, err := Write(genericDir, recRowC, parts, recBox, WriteOptions{Version: 3, BlockRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadPartitionPruned(genericDir, gm, 0, recC, nil)
	if err != nil {
		t.Fatalf("generic v3 file through columnar codec: %v", err)
	}
	if !reflect.DeepEqual(got, parts[0]) {
		t.Fatal("generic v3 file decoded to different records")
	}
}
