// Package storage implements ST4ML's persistent partitioned store: the
// stand-in for Parquet-on-HDFS. A dataset is a directory of per-partition
// binary files (records encoded back-to-back with a codec, optionally
// gzip-compressed) plus a metadata.json indexing every partition with its
// ST bounds — the on-disk indexing with metadata of §4.1.
//
// The selection stage reads the metadata, prunes partitions whose bounds
// miss the query window, and loads only the survivors (Fig. 4).
package storage

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"st4ml/internal/codec"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/tempo"
)

// MetadataFile is the name of the partition index within a dataset
// directory.
const MetadataFile = "metadata.json"

// PartitionMeta describes one on-disk partition.
type PartitionMeta struct {
	// File is the partition file name relative to the dataset directory.
	File string `json:"file"`
	// Count is the number of records in the partition.
	Count int64 `json:"count"`
	// Bytes is the on-disk size of the partition file.
	Bytes int64 `json:"bytes"`
	// The partition's ST extent: spatial MBR and time endpoints.
	MinX   float64 `json:"minx"`
	MinY   float64 `json:"miny"`
	MaxX   float64 `json:"maxx"`
	MaxY   float64 `json:"maxy"`
	TStart int64   `json:"tstart"`
	TEnd   int64   `json:"tend"`
}

// Box returns the partition's ST extent as an index box.
func (p PartitionMeta) Box() index.Box {
	return index.Box3(
		geom.MBR{MinX: p.MinX, MinY: p.MinY, MaxX: p.MaxX, MaxY: p.MaxY},
		tempo.Duration{Start: p.TStart, End: p.TEnd})
}

// Metadata is the master-side index of a dataset: one entry per partition
// with its ST bounds, enabling partition pruning before any file is read.
type Metadata struct {
	Name       string `json:"name"`
	Compressed bool   `json:"compressed"`
	// Framed marks partitions written as length+CRC32C frames; readers
	// verify every frame and reject corrupt files instead of silently
	// decoding garbage. Absent (false) on legacy datasets, which decode as
	// bare record streams.
	Framed     bool            `json:"framed,omitempty"`
	TotalCount int64           `json:"total_count"`
	Partitions []PartitionMeta `json:"partitions"`
}

// NumPartitions returns the partition count.
func (m *Metadata) NumPartitions() int { return len(m.Partitions) }

// Prune returns the ids of partitions whose ST bounds intersect the query
// window — the shortlist step of Fig. 4.
func (m *Metadata) Prune(space geom.MBR, dur tempo.Duration) []int {
	q := index.Box3(space, dur)
	out := make([]int, 0, len(m.Partitions))
	for i, p := range m.Partitions {
		if p.Count > 0 && p.Box().Intersects(q) {
			out = append(out, i)
		}
	}
	return out
}

// WriteOptions tunes dataset writing.
type WriteOptions struct {
	// Name labels the dataset in its metadata.
	Name string
	// Compress gzips each partition file.
	Compress bool
}

// Write persists partitioned records under dir, computing per-partition ST
// bounds with boxOf, and returns the metadata it wrote. dir is created if
// missing; an existing metadata file is overwritten (a dataset rewrite),
// but stale partition files from a previous larger layout are not removed.
func Write[T any](
	dir string,
	c codec.Codec[T],
	parts [][]T,
	boxOf func(T) index.Box,
	opts WriteOptions,
) (*Metadata, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dataset dir: %w", err)
	}
	meta := &Metadata{Name: opts.Name, Compressed: opts.Compress, Framed: true}
	for i, part := range parts {
		pm, err := writePartition(dir, i, c, part, boxOf, opts.Compress)
		if err != nil {
			return nil, err
		}
		meta.TotalCount += pm.Count
		meta.Partitions = append(meta.Partitions, pm)
	}
	if err := writeMetadata(dir, meta); err != nil {
		return nil, err
	}
	return meta, nil
}

func partitionFileName(i int) string { return fmt.Sprintf("part-%05d.stp", i) }

func writePartition[T any](
	dir string, i int, c codec.Codec[T], part []T,
	boxOf func(T) index.Box, compress bool,
) (PartitionMeta, error) {
	name := partitionFileName(i)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: create partition: %w", err)
	}
	defer f.Close()

	var out io.Writer = f
	var gz *gzip.Writer
	if compress {
		gz = gzip.NewWriter(f)
		out = gz
	}
	// Records accumulate in w and flush as integrity frames (length +
	// CRC32C + payload) at record boundaries, so a reader can verify each
	// chunk before decoding it.
	w := codec.NewWriter(64 * 1024)
	fw := codec.NewWriter(64 * 1024)
	flush := func() error {
		if w.Len() == 0 {
			return nil
		}
		fw.Reset()
		fw.PutFrame(w.Bytes())
		if _, err := out.Write(fw.Bytes()); err != nil {
			return fmt.Errorf("storage: write partition: %w", err)
		}
		w.Reset()
		return nil
	}
	bounds := index.EmptyBox()
	for _, rec := range part {
		c.Enc(w, rec)
		bounds = bounds.Union(boxOf(rec))
		if w.Len() >= 1<<20 {
			if err := flush(); err != nil {
				return PartitionMeta{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return PartitionMeta{}, err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return PartitionMeta{}, fmt.Errorf("storage: close gzip: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: close partition: %w", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		return PartitionMeta{}, err
	}
	pm := PartitionMeta{File: name, Count: int64(len(part)), Bytes: st.Size()}
	if !bounds.IsEmpty() {
		s := bounds.Spatial()
		d := bounds.Temporal()
		pm.MinX, pm.MinY, pm.MaxX, pm.MaxY = s.MinX, s.MinY, s.MaxX, s.MaxY
		pm.TStart, pm.TEnd = d.Start, d.End
	}
	return pm, nil
}

func writeMetadata(dir string, meta *Metadata) error {
	b, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: marshal metadata: %w", err)
	}
	tmp := filepath.Join(dir, MetadataFile+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("storage: write metadata: %w", err)
	}
	return os.Rename(tmp, filepath.Join(dir, MetadataFile))
}

// ReadMetadata loads a dataset's partition index.
func ReadMetadata(dir string) (*Metadata, error) {
	b, err := os.ReadFile(filepath.Join(dir, MetadataFile))
	if err != nil {
		return nil, fmt.Errorf("storage: read metadata: %w", err)
	}
	var meta Metadata
	if err := json.Unmarshal(b, &meta); err != nil {
		return nil, fmt.Errorf("storage: parse metadata: %w", err)
	}
	return &meta, nil
}

// maxPartitionReadAttempts bounds re-reads of a partition file whose
// checksum verification failed — transient media errors recover, while a
// truly corrupt file fails every attempt and surfaces an error.
const maxPartitionReadAttempts = 3

// ReadPartition decodes one partition file. Framed datasets verify every
// chunk's CRC32C before decoding and re-read the file a bounded number of
// times on mismatch; corruption is always reported, never silently decoded.
func ReadPartition[T any](dir string, meta *Metadata, i int, c codec.Codec[T]) ([]T, error) {
	if i < 0 || i >= len(meta.Partitions) {
		return nil, fmt.Errorf("storage: partition %d out of range [0,%d)", i, len(meta.Partitions))
	}
	pm := meta.Partitions[i]
	var lastErr error
	for attempt := 0; attempt < maxPartitionReadAttempts; attempt++ {
		out, err := readPartitionOnce[T](dir, meta, pm, c)
		if err == nil {
			return out, nil
		}
		lastErr = err
		var ce codec.ErrCorrupt
		if !errors.As(err, &ce) {
			return nil, err // I/O or structural error: retrying won't help
		}
	}
	return nil, fmt.Errorf("storage: partition %s corrupt after %d reads: %w",
		pm.File, maxPartitionReadAttempts, lastErr)
}

func readPartitionOnce[T any](
	dir string, meta *Metadata, pm PartitionMeta, c codec.Codec[T],
) ([]T, error) {
	raw, err := os.ReadFile(filepath.Join(dir, pm.File))
	if err != nil {
		return nil, fmt.Errorf("storage: read partition: %w", err)
	}
	if meta.Compressed {
		gz, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("storage: open gzip: %w", err)
		}
		raw, err = io.ReadAll(gz)
		if err != nil {
			return nil, fmt.Errorf("storage: decompress partition: %w", err)
		}
	}
	out := make([]T, 0, pm.Count)
	err = codec.Catch(func() {
		r := codec.NewReader(raw)
		if meta.Framed {
			for r.Remaining() > 0 {
				fr := codec.NewReader(r.Frame())
				for fr.Remaining() > 0 {
					out = append(out, c.Dec(fr))
				}
			}
		} else {
			// Legacy dataset: bare record stream with no checksums.
			for r.Remaining() > 0 {
				out = append(out, c.Dec(r))
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("storage: partition %s corrupt: %w", pm.File, err)
	}
	if int64(len(out)) != pm.Count {
		return nil, fmt.Errorf("storage: partition %s has %d records, metadata says %d",
			pm.File, len(out), pm.Count)
	}
	return out, nil
}

// MergeMetadata combines the partition lists of several dataset metadata
// files that share one directory-of-directories layout — the paper's
// periodic-reindex-and-merge workflow for continuously generated data.
// Partition file names are rewritten as dir-prefixed relative paths.
func MergeMetadata(parts map[string]*Metadata) *Metadata {
	out := &Metadata{Name: "merged"}
	for dir, m := range parts {
		out.Compressed = m.Compressed
		out.Framed = m.Framed
		out.TotalCount += m.TotalCount
		for _, p := range m.Partitions {
			p.File = filepath.Join(dir, p.File)
			out.Partitions = append(out.Partitions, p)
		}
	}
	return out
}
