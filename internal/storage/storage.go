// Package storage implements ST4ML's persistent partitioned store: the
// stand-in for Parquet-on-HDFS. A dataset is a directory of per-partition
// binary files (records encoded back-to-back with a codec, optionally
// gzip-compressed) plus a metadata.json indexing every partition with its
// ST bounds — the on-disk indexing with metadata of §4.1.
//
// The selection stage reads the metadata, prunes partitions whose bounds
// miss the query window, and loads only the survivors (Fig. 4).
package storage

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"st4ml/internal/codec"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/tempo"
)

// MetadataFile is the name of the partition index within a dataset
// directory.
const MetadataFile = "metadata.json"

// PartitionMeta describes one on-disk partition.
type PartitionMeta struct {
	// File is the partition file name relative to the dataset directory.
	File string `json:"file"`
	// Count is the number of records in the partition.
	Count int64 `json:"count"`
	// Bytes is the on-disk size of the partition file.
	Bytes int64 `json:"bytes"`
	// The partition's ST extent: spatial MBR and time endpoints.
	MinX   float64 `json:"minx"`
	MinY   float64 `json:"miny"`
	MaxX   float64 `json:"maxx"`
	MaxY   float64 `json:"maxy"`
	TStart int64   `json:"tstart"`
	TEnd   int64   `json:"tend"`
	// Format, when non-zero, overrides the dataset-level Version for this
	// partition's file. Compaction writes it so a rewritten partition of a
	// v1/v2 dataset can use the current layout without re-ingesting the
	// other partitions; delta files carry the format they were appended
	// in (absent means 2 — deltas predating the columnar layout were
	// always the v2 block layout).
	Format int `json:"format,omitempty"`
}

// setBounds records the union box as the partition's ST extent.
func (p *PartitionMeta) setBounds(bounds index.Box) {
	if bounds.IsEmpty() {
		return
	}
	s := bounds.Spatial()
	d := bounds.Temporal()
	p.MinX, p.MinY, p.MaxX, p.MaxY = s.MinX, s.MinY, s.MaxX, s.MaxY
	p.TStart, p.TEnd = d.Start, d.End
}

// Box returns the partition's ST extent as an index box.
func (p PartitionMeta) Box() index.Box {
	return index.Box3(
		geom.MBR{MinX: p.MinX, MinY: p.MinY, MaxX: p.MaxX, MaxY: p.MaxY},
		tempo.Duration{Start: p.TStart, End: p.TEnd})
}

// Metadata is the master-side index of a dataset: one entry per partition
// with its ST bounds, enabling partition pruning before any file is read.
type Metadata struct {
	Name       string `json:"name"`
	Compressed bool   `json:"compressed"`
	// Framed marks partitions written as length+CRC32C frames; readers
	// verify every frame and reject corrupt files instead of silently
	// decoding garbage. Absent (false) on legacy datasets, which decode as
	// bare record streams.
	Framed bool `json:"framed,omitempty"`
	// Version selects the partition file format: absent or 1 is the v1
	// monolithic layout (whole-file gzip, framed or bare record stream),
	// 2 is the gzip block layout of block.go, 3 the columnar block layout
	// of blockv3.go. Readers honor whatever is here, so v1 and v2
	// datasets stay readable without re-ingest.
	Version int `json:"version,omitempty"`
	// BlockRecords is the records-per-block target the dataset was written
	// with (v2/v3 only; informational).
	BlockRecords int             `json:"block_records,omitempty"`
	TotalCount   int64           `json:"total_count"`
	Partitions   []PartitionMeta `json:"partitions"`

	// Generation is the manifest generation this in-memory view was merged
	// at: 0 for a dataset with no delta layer, otherwise the monotonically
	// increasing counter bumped by every committed append or compaction.
	// It lives in manifest.json, never in metadata.json.
	Generation int64 `json:"-"`
	// NextSeq mirrors the manifest's next unused delta sequence number at
	// the time this view was merged (0 without a delta layer). Every
	// committed delta with Seq < NextSeq is part of this view — still live,
	// or folded into a rewritten base — which makes NextSeq the dedup fence
	// subscription snapshots carry: a pushed batch whose Seq is below the
	// fence is already in the snapshot.
	NextSeq int64 `json:"-"`
	// deltas[i] lists partition i's live delta files, merged in from the
	// manifest by ReadMetadata (nil when the dataset has none). Readers
	// union them with the base partition — merge-on-read.
	deltas [][]DeltaMeta
	// summaries maps partition id → its committed summary sidecar, merged
	// in from the manifest (nil when the dataset has none).
	summaries map[int]SummaryMeta
}

// NumPartitions returns the partition count.
func (m *Metadata) NumPartitions() int { return len(m.Partitions) }

// Deltas returns partition i's live delta files (nil when it has none).
func (m *Metadata) Deltas(i int) []DeltaMeta {
	if m.deltas == nil || i < 0 || i >= len(m.deltas) {
		return nil
	}
	return m.deltas[i]
}

// SummaryFor returns partition i's summary sidecar reference, if the
// manifest committed one for the partition's live base file. A stale
// entry — its Base superseded by a compaction that did not re-summarize —
// reports false, so the approximate path falls back to exact rather than
// estimating from a sidecar describing dead data.
func (m *Metadata) SummaryFor(i int) (SummaryMeta, bool) {
	if i < 0 || i >= len(m.Partitions) {
		return SummaryMeta{}, false
	}
	sm, ok := m.summaries[i]
	if !ok || sm.Base != m.Partitions[i].File {
		return SummaryMeta{}, false
	}
	return sm, true
}

// SummaryCount returns how many partitions carry a live summary sidecar.
func (m *Metadata) SummaryCount() int {
	n := 0
	for i := range m.Partitions {
		if _, ok := m.SummaryFor(i); ok {
			n++
		}
	}
	return n
}

// DeltaCount returns the total number of live delta files across the view.
func (m *Metadata) DeltaCount() int {
	n := 0
	for _, ds := range m.deltas {
		n += len(ds)
	}
	return n
}

// PartitionCount returns partition i's live record count: the base file
// plus every delta attached to it.
func (m *Metadata) PartitionCount(i int) int64 {
	n := m.Partitions[i].Count
	for _, d := range m.Deltas(i) {
		n += d.Count
	}
	return n
}

// PartitionBytes returns partition i's live on-disk size, deltas included.
func (m *Metadata) PartitionBytes(i int) int64 {
	n := m.Partitions[i].Bytes
	for _, d := range m.Deltas(i) {
		n += d.Bytes
	}
	return n
}

// Prune returns the ids of partitions whose ST bounds intersect the query
// window — the shortlist step of Fig. 4. A partition whose base extent
// misses the window survives if any of its deltas overlap it: delta bounds
// are part of the partition's live extent.
func (m *Metadata) Prune(space geom.MBR, dur tempo.Duration) []int {
	q := index.Box3(space, dur)
	out := make([]int, 0, len(m.Partitions))
	for i, p := range m.Partitions {
		keep := p.Count > 0 && p.Box().Intersects(q)
		if !keep {
			for _, d := range m.Deltas(i) {
				if d.Count > 0 && d.Box().Intersects(q) {
					keep = true
					break
				}
			}
		}
		if keep {
			out = append(out, i)
		}
	}
	return out
}

// WriteOptions tunes dataset writing.
type WriteOptions struct {
	// Name labels the dataset in its metadata.
	Name string
	// Compress gzips partition data (per block in v2, whole-file in v1).
	// v3 files ignore it: their column streams are delta-compressed
	// natively and never gzipped.
	Compress bool
	// BlockRecords is the records-per-block target for v2/v3 files;
	// 0 means the format's default (DefaultBlockRecords for v2,
	// DefaultBlockRecordsV3 for v3).
	BlockRecords int
	// Version pins the file format: 0 means latest (FormatVersion); 1 and
	// 2 force the earlier layouts — kept so compat tests and benchmarks
	// can produce legacy datasets on demand.
	Version int
}

// Write persists partitioned records under dir, computing per-partition ST
// bounds with boxOf, and returns the metadata it wrote. dir is created if
// missing; an existing metadata file is overwritten (a dataset rewrite),
// but stale partition files from a previous larger layout are not removed.
func Write[T any](
	dir string,
	c codec.Codec[T],
	parts [][]T,
	boxOf func(T) index.Box,
	opts WriteOptions,
) (*Metadata, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dataset dir: %w", err)
	}
	version := opts.Version
	if version == 0 {
		version = FormatVersion
	}
	blockRecords := opts.BlockRecords
	if blockRecords <= 0 {
		if version >= 3 {
			blockRecords = DefaultBlockRecordsV3
		} else {
			blockRecords = DefaultBlockRecords
		}
	}
	meta := &Metadata{Name: opts.Name, Compressed: opts.Compress, Framed: true}
	if version >= 2 {
		meta.Version = version
		meta.BlockRecords = blockRecords
	}
	for i, part := range parts {
		var pm PartitionMeta
		var err error
		switch {
		case version >= 3:
			pm, err = writePartitionV3(dir, i, c, part, boxOf, blockRecords)
		case version == 2:
			pm, err = writePartitionV2(dir, i, c, part, boxOf, opts.Compress, blockRecords)
		default:
			pm, err = writePartition(dir, i, c, part, boxOf, opts.Compress)
		}
		if err != nil {
			return nil, err
		}
		meta.TotalCount += pm.Count
		meta.Partitions = append(meta.Partitions, pm)
	}
	if err := writeMetadata(dir, meta); err != nil {
		return nil, err
	}
	return meta, nil
}

func partitionFileName(i int) string { return fmt.Sprintf("part-%05d.stp", i) }

func writePartition[T any](
	dir string, i int, c codec.Codec[T], part []T,
	boxOf func(T) index.Box, compress bool,
) (PartitionMeta, error) {
	name := partitionFileName(i)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: create partition: %w", err)
	}
	defer f.Close()

	var out io.Writer = f
	var gz *gzip.Writer
	if compress {
		gz = gzip.NewWriter(f)
		out = gz
	}
	// Records accumulate in w and flush as integrity frames (length +
	// CRC32C + payload) at record boundaries, so a reader can verify each
	// chunk before decoding it.
	w := codec.NewWriter(64 * 1024)
	fw := codec.NewWriter(64 * 1024)
	flush := func() error {
		if w.Len() == 0 {
			return nil
		}
		fw.Reset()
		fw.PutFrame(w.Bytes())
		if _, err := out.Write(fw.Bytes()); err != nil {
			return fmt.Errorf("storage: write partition: %w", err)
		}
		w.Reset()
		return nil
	}
	bounds := index.EmptyBox()
	for _, rec := range part {
		c.Enc(w, rec)
		bounds = bounds.Union(boxOf(rec))
		if w.Len() >= 1<<20 {
			if err := flush(); err != nil {
				return PartitionMeta{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return PartitionMeta{}, err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return PartitionMeta{}, fmt.Errorf("storage: close gzip: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: close partition: %w", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		return PartitionMeta{}, err
	}
	pm := PartitionMeta{File: name, Count: int64(len(part)), Bytes: st.Size()}
	pm.setBounds(bounds)
	return pm, nil
}

// writePartitionV2 writes one partition in the block layout: a header
// magic, then frames of BlockRecords-record chunks (each gzipped
// independently when compress is set), a framed footer indexing every
// block's byte range, count, and ST bounds, and a fixed trailer pointing
// at the footer. Scratch buffers come from the codec pools so a bulk
// ingest reuses, rather than reallocates, its per-block encodings.
func writePartitionV2[T any](
	dir string, i int, c codec.Codec[T], part []T,
	boxOf func(T) index.Box, compress bool, blockRecords int,
) (PartitionMeta, error) {
	return writePartitionV2File(dir, partitionFileName(i), c, part, boxOf, compress, blockRecords, false)
}

// writePartitionV2File is writePartitionV2 against an explicit file name —
// the shared writer behind base partitions, delta files, and compaction
// rewrites. sync forces the file to stable storage before returning; the
// delta layer requires it, because the manifest swap that makes a file
// visible must never commit a file the disk does not yet hold.
func writePartitionV2File[T any](
	dir, name string, c codec.Codec[T], part []T,
	boxOf func(T) index.Box, compress bool, blockRecords int, sync bool,
) (PartitionMeta, error) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: create partition: %w", err)
	}
	defer f.Close()
	out := bufio.NewWriterSize(f, 256<<10)
	if _, err := out.WriteString(v2Magic); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: write partition: %w", err)
	}
	off := int64(v2HeaderLen)

	recW := codec.GetWriter()   // raw record encodings for the current block
	gzW := codec.GetWriter()    // compressed payload scratch
	frameW := codec.GetWriter() // framed output scratch
	defer func() {
		codec.PutWriter(recW)
		codec.PutWriter(gzW)
		codec.PutWriter(frameW)
	}()

	var blocks []BlockMeta
	bounds := index.EmptyBox()
	flush := func(blockBounds index.Box, count int64) error {
		payload := recW.Bytes()
		raw := int64(len(payload))
		if compress {
			gzW.Reset()
			gz := gzWriterPool.Get().(*gzip.Writer)
			gz.Reset(gzW)
			_, werr := gz.Write(payload)
			if cerr := gz.Close(); werr == nil {
				werr = cerr
			}
			gzWriterPool.Put(gz)
			if werr != nil {
				return fmt.Errorf("storage: compress block: %w", werr)
			}
			payload = gzW.Bytes()
		}
		frameW.Reset()
		frameW.PutFrame(payload)
		if _, err := out.Write(frameW.Bytes()); err != nil {
			return fmt.Errorf("storage: write block: %w", err)
		}
		blocks = append(blocks, BlockMeta{
			Offset: off, Stored: int64(frameW.Len()), Raw: raw,
			Count: count, Bounds: blockBounds,
		})
		off += int64(frameW.Len())
		recW.Reset()
		return nil
	}
	blockBounds := index.EmptyBox()
	var blockCount int64
	for _, rec := range part {
		c.Enc(recW, rec)
		b := boxOf(rec)
		blockBounds = blockBounds.Union(b)
		bounds = bounds.Union(b)
		blockCount++
		if blockCount >= int64(blockRecords) {
			if err := flush(blockBounds, blockCount); err != nil {
				return PartitionMeta{}, err
			}
			blockBounds = index.EmptyBox()
			blockCount = 0
		}
	}
	if blockCount > 0 {
		if err := flush(blockBounds, blockCount); err != nil {
			return PartitionMeta{}, err
		}
	}

	footerOff := off
	recW.Reset()
	encodeFooter(recW, blocks)
	frameW.Reset()
	frameW.PutFrame(recW.Bytes())
	if _, err := out.Write(frameW.Bytes()); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: write footer: %w", err)
	}
	var trailer [v2TrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(footerOff))
	copy(trailer[8:], v2TrailerMagic)
	if _, err := out.Write(trailer[:]); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: write trailer: %w", err)
	}
	if err := out.Flush(); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: flush partition: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			return PartitionMeta{}, fmt.Errorf("storage: sync partition: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: close partition: %w", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		return PartitionMeta{}, err
	}
	pm := PartitionMeta{File: name, Count: int64(len(part)), Bytes: st.Size()}
	pm.setBounds(bounds)
	return pm, nil
}

func writeMetadata(dir string, meta *Metadata) error {
	b, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: marshal metadata: %w", err)
	}
	tmp := filepath.Join(dir, MetadataFile+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("storage: write metadata: %w", err)
	}
	return os.Rename(tmp, filepath.Join(dir, MetadataFile))
}

// ReadMetadata loads a dataset's partition index and merges the delta
// manifest into it when one exists: compacted partitions are replaced by
// their rewrites, live delta files attach to their partitions, and the
// total count reflects base plus deltas. The returned view is what every
// reader — selection, the serving catalog, the CLIs — sees, so the delta
// layer is merge-on-read everywhere without callers opting in.
func ReadMetadata(dir string) (*Metadata, error) {
	b, err := os.ReadFile(filepath.Join(dir, MetadataFile))
	if err != nil {
		return nil, fmt.Errorf("storage: read metadata: %w", err)
	}
	var meta Metadata
	if err := json.Unmarshal(b, &meta); err != nil {
		return nil, fmt.Errorf("storage: parse metadata: %w", err)
	}
	mf, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if err := meta.applyManifest(mf); err != nil {
		return nil, err
	}
	return &meta, nil
}

// applyManifest merges a manifest into the base metadata view.
func (m *Metadata) applyManifest(mf *Manifest) error {
	if mf == nil || mf.Generation == 0 {
		return nil
	}
	m.Generation = mf.Generation
	m.NextSeq = mf.NextSeq
	for i, pm := range mf.Rewrites {
		if i < 0 || i >= len(m.Partitions) {
			return fmt.Errorf("storage: manifest rewrites partition %d of %d", i, len(m.Partitions))
		}
		m.TotalCount += pm.Count - m.Partitions[i].Count
		m.Partitions[i] = pm
	}
	if len(mf.Summaries) > 0 {
		m.summaries = make(map[int]SummaryMeta, len(mf.Summaries))
		for i, sm := range mf.Summaries {
			if i < 0 || i >= len(m.Partitions) {
				return fmt.Errorf("storage: manifest summary for partition %d of %d",
					i, len(m.Partitions))
			}
			m.summaries[i] = sm
		}
	}
	if len(mf.Deltas) == 0 {
		return nil
	}
	m.deltas = make([][]DeltaMeta, len(m.Partitions))
	for _, d := range mf.Deltas {
		if d.Partition < 0 || d.Partition >= len(m.Partitions) {
			return fmt.Errorf("storage: manifest delta for partition %d of %d",
				d.Partition, len(m.Partitions))
		}
		m.deltas[d.Partition] = append(m.deltas[d.Partition], d)
		m.TotalCount += d.Count
	}
	return nil
}

// maxPartitionReadAttempts bounds re-reads of a partition file whose
// checksum verification failed — transient media errors recover, while a
// truly corrupt file fails every attempt and surfaces an error.
const maxPartitionReadAttempts = 3

// ReadStats reports what a partition read actually touched, so callers
// (selection stats, serve metrics, explain output) can account for
// block-level pruning: how many blocks the footer listed, how many were
// scanned versus skipped, and the on-disk versus decompressed byte volume.
type ReadStats struct {
	// Blocks is the number of blocks in the partition file (1 for v1).
	Blocks int
	// BlocksScanned is how many blocks were read and decoded.
	BlocksScanned int
	// BlocksPruned is how many blocks the footer bounds let us skip.
	BlocksPruned int
	// BytesRead is the on-disk bytes actually read (header, scanned block
	// frames, footer, trailer; the whole file for v1).
	BytesRead int64
	// RawBytes is the decompressed payload bytes decoded. On v3 files this
	// is the decoded column bytes plus only the surviving records' payload
	// spans — the columnar predicate's saving shows up here.
	RawBytes int64
	// RecordsPruned is how many records the v3 columnar predicate dropped
	// on the decoded lon/lat/t columns before materialization (0 on
	// v1/v2 files and on full reads).
	RecordsPruned int64
	// Delta-layer accounting: how many delta files the manifest attaches to
	// the partition, how many were read versus skipped entirely because
	// their manifest bounds miss every window, and the records they
	// contributed. Zero on datasets without a delta layer.
	DeltaFiles   int
	DeltasRead   int
	DeltasPruned int
	DeltaRecords int64
}

// add folds another read's accounting into s (base + delta segments).
func (s *ReadStats) add(o ReadStats) {
	s.Blocks += o.Blocks
	s.BlocksScanned += o.BlocksScanned
	s.BlocksPruned += o.BlocksPruned
	s.BytesRead += o.BytesRead
	s.RawBytes += o.RawBytes
	s.RecordsPruned += o.RecordsPruned
}

// ReadPartition decodes one partition file in full. Framed datasets verify
// every chunk's CRC32C before decoding and re-read the file a bounded
// number of times on mismatch; corruption is always reported, never
// silently decoded.
func ReadPartition[T any](dir string, meta *Metadata, i int, c codec.Codec[T]) ([]T, error) {
	out, _, err := ReadPartitionPruned(dir, meta, i, c, nil)
	return out, err
}

// ReadPartitionPruned decodes one partition, skipping blocks whose footer
// bounds intersect none of the windows — the intra-partition analogue of
// Metadata.Prune. The result is the live merge-on-read view: the base
// partition file followed by every delta file the manifest attaches to the
// partition, in manifest (append) order; delta files whose manifest bounds
// miss every window are skipped without being opened. A nil windows slice
// means read everything (and cross-check each segment's record count
// against its metadata, which a pruned read cannot do). On v1 base files
// the windows are ignored and the whole base is returned; callers
// re-filter records either way, so pruning is purely an I/O and CPU
// saving, never a correctness dependency.
func ReadPartitionPruned[T any](
	dir string, meta *Metadata, i int, c codec.Codec[T], windows []index.Box,
) ([]T, ReadStats, error) {
	if i < 0 || i >= len(meta.Partitions) {
		return nil, ReadStats{}, fmt.Errorf(
			"storage: partition %d out of range [0,%d)", i, len(meta.Partitions))
	}
	pm := meta.Partitions[i]
	version := meta.Version
	if pm.Format != 0 {
		version = pm.Format
	}
	out, st, err := readWithRetry(pm.File, func() ([]T, ReadStats, error) {
		switch {
		case version >= 3:
			return readPartitionV3Once[T](dir, pm, c, windows, nil)
		case version == 2:
			return readPartitionV2Once[T](dir, meta.Compressed, pm, c, windows, nil)
		default:
			return readPartitionOnce[T](dir, meta, pm, c)
		}
	})
	if err != nil {
		return nil, ReadStats{}, err
	}
	deltas := meta.Deltas(i)
	st.DeltaFiles = len(deltas)
	for _, dm := range deltas {
		if windows != nil && !boxIntersectsAny(dm.Box(), windows) {
			st.DeltasPruned++
			continue
		}
		dpm := dm.PartitionMeta
		// Delta files carry their own format: v2 from manifests committed
		// before the columnar layout existed (absent Format means v2 —
		// deltas were always block-layout), v3 afterwards.
		dver := dpm.Format
		if dver == 0 {
			dver = 2
		}
		drecs, dst, err := readWithRetry(dpm.File, func() ([]T, ReadStats, error) {
			if dver >= 3 {
				return readPartitionV3Once[T](dir, dpm, c, windows, nil)
			}
			return readPartitionV2Once[T](dir, meta.Compressed, dpm, c, windows, nil)
		})
		if err != nil {
			return nil, ReadStats{}, err
		}
		st.DeltasRead++
		st.DeltaRecords += int64(len(drecs))
		st.add(dst)
		out = append(out, drecs...)
	}
	return out, st, nil
}

// ReadDelta decodes one committed delta file in full, in file order — the
// unit the subscription notifier routes through its window index and
// pushes to matching subscribers. It dispatches on the delta's recorded
// format exactly like the merge-on-read path, so a pushed record is byte-
// identical to the same record surfaced by a batch query.
func ReadDelta[T any](dir string, compressed bool, dm DeltaMeta, c codec.Codec[T]) ([]T, error) {
	dpm := dm.PartitionMeta
	dver := dpm.Format
	if dver == 0 {
		dver = 2 // pre-columnar manifests: deltas were always block-layout
	}
	recs, _, err := readWithRetry(dpm.File, func() ([]T, ReadStats, error) {
		if dver >= 3 {
			return readPartitionV3Once[T](dir, dpm, c, nil, nil)
		}
		return readPartitionV2Once[T](dir, compressed, dpm, c, nil, nil)
	})
	return recs, err
}

// boxIntersectsAny reports whether b intersects at least one window.
func boxIntersectsAny(b index.Box, windows []index.Box) bool {
	for _, w := range windows {
		if b.Intersects(w) {
			return true
		}
	}
	return false
}

// readWithRetry re-runs read a bounded number of times while it fails with
// a checksum mismatch (see maxPartitionReadAttempts); other errors return
// immediately.
func readWithRetry[T any](file string, read func() ([]T, ReadStats, error)) ([]T, ReadStats, error) {
	var lastErr error
	for attempt := 0; attempt < maxPartitionReadAttempts; attempt++ {
		out, st, err := read()
		if err == nil {
			return out, st, nil
		}
		lastErr = err
		var ce codec.ErrCorrupt
		if !errors.As(err, &ce) {
			return nil, ReadStats{}, err // I/O or structural error: retrying won't help
		}
	}
	return nil, ReadStats{}, fmt.Errorf("storage: partition %s corrupt after %d reads: %w",
		file, maxPartitionReadAttempts, lastErr)
}

func readPartitionOnce[T any](
	dir string, meta *Metadata, pm PartitionMeta, c codec.Codec[T],
) ([]T, ReadStats, error) {
	raw, err := os.ReadFile(filepath.Join(dir, pm.File))
	if err != nil {
		return nil, ReadStats{}, fmt.Errorf("storage: read partition: %w", err)
	}
	st := ReadStats{Blocks: 1, BlocksScanned: 1, BytesRead: int64(len(raw))}
	if meta.Compressed {
		gz := gzReaderPool.Get().(*gzip.Reader)
		if err := gz.Reset(bytes.NewReader(raw)); err != nil {
			gzReaderPool.Put(gz)
			return nil, ReadStats{}, fmt.Errorf("storage: open gzip: %w", err)
		}
		raw, err = io.ReadAll(gz)
		gzReaderPool.Put(gz)
		if err != nil {
			return nil, ReadStats{}, fmt.Errorf("storage: decompress partition: %w", err)
		}
	}
	st.RawBytes = int64(len(raw))
	out := make([]T, 0, pm.Count)
	err = codec.Catch(func() {
		r := codec.NewReader(raw)
		if meta.Framed {
			for r.Remaining() > 0 {
				fr := codec.NewReader(r.Frame())
				for fr.Remaining() > 0 {
					out = append(out, c.Dec(fr))
				}
			}
		} else {
			// Legacy dataset: bare record stream with no checksums.
			for r.Remaining() > 0 {
				out = append(out, c.Dec(r))
			}
		}
	})
	if err != nil {
		return nil, ReadStats{}, fmt.Errorf("storage: partition %s corrupt: %w", pm.File, err)
	}
	if int64(len(out)) != pm.Count {
		return nil, ReadStats{}, fmt.Errorf("storage: partition %s has %d records, metadata says %d",
			pm.File, len(out), pm.Count)
	}
	return out, st, nil
}

// readFooter opens a v2 partition file and returns its verified block
// index plus the file handle (positioned for ReadAt) and total size.
func readFooter(path string) (*os.File, []BlockMeta, int64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("storage: open partition: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, 0, 0, fmt.Errorf("storage: stat partition: %w", err)
	}
	size := st.Size()
	fail := func(err error) (*os.File, []BlockMeta, int64, int64, error) {
		f.Close()
		return nil, nil, 0, 0, err
	}
	if size < int64(v2HeaderLen)+v2TrailerLen {
		return fail(fmt.Errorf("storage: partition %s truncated: %w",
			filepath.Base(path), codec.ErrCorrupt{Off: int(size)}))
	}
	var head [v2HeaderLen]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return fail(fmt.Errorf("storage: read header: %w", err))
	}
	if string(head[:]) != v2Magic {
		return fail(fmt.Errorf("storage: partition %s: bad magic: %w",
			filepath.Base(path), codec.ErrCorrupt{Off: 0}))
	}
	var trailer [v2TrailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-v2TrailerLen); err != nil {
		return fail(fmt.Errorf("storage: read trailer: %w", err))
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if string(trailer[8:]) != v2TrailerMagic ||
		footerOff < int64(v2HeaderLen) || footerOff >= size-v2TrailerLen {
		return fail(fmt.Errorf("storage: partition %s: bad trailer: %w",
			filepath.Base(path), codec.ErrCorrupt{Off: int(size - v2TrailerLen)}))
	}
	footerStored := codec.GetBuf(int(size - v2TrailerLen - footerOff))
	defer codec.PutBuf(footerStored)
	if _, err := f.ReadAt(footerStored, footerOff); err != nil {
		return fail(fmt.Errorf("storage: read footer: %w", err))
	}
	var blocks []BlockMeta
	err = codec.Catch(func() {
		r := codec.NewReader(footerStored)
		payload := r.Frame()
		if r.Remaining() != 0 {
			panic(codec.ErrCorrupt{Off: int(footerOff)})
		}
		blocks = decodeFooter(payload, footerOff)
	})
	if err != nil {
		return fail(fmt.Errorf("storage: partition %s footer: %w", filepath.Base(path), err))
	}
	return f, blocks, footerOff, size, nil
}

func readPartitionV2Once[T any](
	dir string, compressed bool, pm PartitionMeta, c codec.Codec[T], windows []index.Box,
	blockSet map[int]bool,
) ([]T, ReadStats, error) {
	f, blocks, footerOff, size, err := readFooter(filepath.Join(dir, pm.File))
	if err != nil {
		return nil, ReadStats{}, err
	}
	defer f.Close()

	// Footer/trailer/header bytes are always read.
	st := ReadStats{Blocks: len(blocks), BytesRead: int64(v2HeaderLen) + (size - footerOff)}
	var scan []BlockMeta
	var expect int64
	for bi, bm := range blocks {
		keep := windows == nil && blockSet == nil
		if blockSet != nil {
			keep = blockSet[bi]
		} else if !keep && bm.Count > 0 {
			for _, w := range windows {
				if bm.Bounds.Intersects(w) {
					keep = true
					break
				}
			}
		}
		if keep {
			scan = append(scan, bm)
			expect += bm.Count
		} else {
			st.BlocksPruned++
		}
	}
	st.BlocksScanned = len(scan)
	if windows == nil && blockSet == nil && expect != pm.Count {
		return nil, ReadStats{}, fmt.Errorf(
			"storage: partition %s footer counts %d records, metadata says %d: %w",
			pm.File, expect, pm.Count, codec.ErrCorrupt{Off: int(footerOff)})
	}

	out := make([]T, 0, capHint(expect))
	done := make(chan struct{})
	defer close(done)
	for blk := range prefetchBlocks(f, scan, compressed, done) {
		if blk.err != nil {
			return nil, ReadStats{}, fmt.Errorf("storage: partition %s: %w", pm.File, blk.err)
		}
		st.BytesRead += blk.bm.Stored
		st.RawBytes += blk.bm.Raw
		decErr := codec.Catch(func() {
			r := codec.NewReader(blk.raw)
			for n := int64(0); n < blk.bm.Count; n++ {
				out = append(out, c.Dec(r))
			}
			if r.Remaining() != 0 {
				panic(codec.ErrCorrupt{Off: int(blk.bm.Raw)})
			}
		})
		blk.release()
		if decErr != nil {
			return nil, ReadStats{}, fmt.Errorf("storage: partition %s block at %d: %w",
				pm.File, blk.bm.Offset, decErr)
		}
	}
	return out, st, nil
}

// MergeMetadata combines the partition lists of several dataset metadata
// files that share one directory-of-directories layout — the paper's
// periodic-reindex-and-merge workflow for continuously generated data.
// Partition file names are rewritten as dir-prefixed relative paths; delta
// attachments follow their partitions.
func MergeMetadata(parts map[string]*Metadata) *Metadata {
	out := &Metadata{Name: "merged"}
	for dir, m := range parts {
		out.Compressed = m.Compressed
		out.Framed = m.Framed
		out.Version = m.Version
		out.BlockRecords = m.BlockRecords
		out.TotalCount += m.TotalCount
		for i, p := range m.Partitions {
			p.File = filepath.Join(dir, p.File)
			ds := m.Deltas(i)
			if len(ds) > 0 {
				if out.deltas == nil {
					out.deltas = make([][]DeltaMeta, len(out.Partitions))
				}
				rebased := make([]DeltaMeta, len(ds))
				for j, d := range ds {
					d.Partition = len(out.Partitions)
					d.File = filepath.Join(dir, d.File)
					rebased[j] = d
				}
				out.deltas = append(out.deltas, rebased)
			} else if out.deltas != nil {
				out.deltas = append(out.deltas, nil)
			}
			out.Partitions = append(out.Partitions, p)
		}
	}
	if out.deltas != nil && len(out.deltas) < len(out.Partitions) {
		out.deltas = append(out.deltas, make([][]DeltaMeta, len(out.Partitions)-len(out.deltas))...)
	}
	return out
}
