package storage

import (
	"fmt"
	"os"
	"path/filepath"

	"st4ml/internal/codec"
	"st4ml/internal/index"
	"st4ml/internal/summary"
)

// Summary sidecars are the storage half of the approximate query tier
// (see DESIGN.md "Approximate query tier"): each base partition file can
// carry a CRC-framed sidecar (<base>.sum) holding its per-block and
// per-partition ST sketches, built at compaction time (or on demand by
// BuildSummaries) and committed through the same atomic manifest swap as
// everything else in the delta layer. The manifest entry records which
// base file the sidecar describes, so a sidecar is valid exactly as long
// as its base generation is the live one — a compaction that rewrites a
// partition either writes a fresh pair or drops the entry, and readers of
// an older manifest keep the older pair (MVCC with files, same as bases).

// SummaryMeta references one partition's summary sidecar in the manifest.
type SummaryMeta struct {
	// File is the sidecar file name relative to the dataset directory.
	File string `json:"file"`
	// Base is the base partition file the sidecar describes. A summary is
	// only served while Base matches the partition's live base file.
	Base string `json:"base"`
	// Bytes is the sidecar's on-disk size.
	Bytes int64 `json:"bytes"`
	// Version is the sidecar format version (summary.Version).
	Version int `json:"version"`
}

// summaryFileName names the sidecar of a base partition file.
func summaryFileName(base string) string { return base + summary.Suffix }

// writeSummaryFile persists ps as base's sidecar via tmp+fsync+rename;
// like every delta-layer file it only becomes visible once a manifest
// referencing it commits.
func writeSummaryFile(dir, base string, ps *summary.PartitionSummary) (SummaryMeta, error) {
	enc := summary.EncodeSidecar(ps)
	name := summaryFileName(base)
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return SummaryMeta{}, fmt.Errorf("storage: write summary: %w", err)
	}
	if _, err := f.Write(enc); err != nil {
		f.Close()
		return SummaryMeta{}, fmt.Errorf("storage: write summary: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return SummaryMeta{}, fmt.Errorf("storage: sync summary: %w", err)
	}
	if err := f.Close(); err != nil {
		return SummaryMeta{}, fmt.Errorf("storage: close summary: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return SummaryMeta{}, fmt.Errorf("storage: commit summary: %w", err)
	}
	return SummaryMeta{File: name, Base: base, Bytes: int64(len(enc)), Version: ps.Version}, nil
}

// ReadSummary loads and verifies a partition's summary sidecar. Any
// corruption — flipped byte, truncation, trailing garbage — fails loudly;
// callers fall back to the exact path, never to a skewed estimate.
func ReadSummary(dir string, sm SummaryMeta) (*summary.PartitionSummary, error) {
	b, err := os.ReadFile(filepath.Join(dir, sm.File))
	if err != nil {
		return nil, fmt.Errorf("storage: read summary: %w", err)
	}
	ps, err := summary.DecodeSidecar(b)
	if err != nil {
		return nil, fmt.Errorf("storage: summary %s: %w", sm.File, err)
	}
	return ps, nil
}

// baseBlockRecords derives the records-per-block chunk size a base file
// was actually written with from its footer, so a summary built over the
// full record stream chunks on exactly the file's block boundaries.
// Returns 0 (single block) for v1 files and single-block files; errors on
// a non-uniform layout no summary can mirror.
func baseBlockRecords(dir string, meta *Metadata, i int) (int, error) {
	pm := meta.Partitions[i]
	version := meta.Version
	if pm.Format != 0 {
		version = pm.Format
	}
	if version < 2 {
		return 0, nil
	}
	path := filepath.Join(dir, pm.File)
	var blocks []BlockMeta
	if version >= 3 {
		f, _, bs, _, _, err := readFooterV3(path)
		if err != nil {
			return 0, err
		}
		f.Close()
		blocks = bs
	} else {
		f, bs, _, _, err := readFooter(path)
		if err != nil {
			return 0, err
		}
		f.Close()
		blocks = bs
	}
	if len(blocks) <= 1 {
		return 0, nil
	}
	bn := blocks[0].Count
	for _, bm := range blocks[:len(blocks)-1] {
		if bm.Count != bn {
			return 0, fmt.Errorf("storage: partition %s has non-uniform blocks", pm.File)
		}
	}
	if blocks[len(blocks)-1].Count > bn {
		return 0, fmt.Errorf("storage: partition %s has non-uniform blocks", pm.File)
	}
	return int(bn), nil
}

// ReadPartitionBlocks decodes only the base-file blocks whose indices are
// in want — the approximate path's boundary-block scan. Deltas are
// excluded: the approximate orchestration reads and folds them separately
// (they are not covered by the base sidecar). On v1 files the single
// monolithic block has index 0.
func ReadPartitionBlocks[T any](
	dir string, meta *Metadata, i int, c codec.Codec[T], want map[int]bool,
) ([]T, ReadStats, error) {
	if i < 0 || i >= len(meta.Partitions) {
		return nil, ReadStats{}, fmt.Errorf(
			"storage: partition %d out of range [0,%d)", i, len(meta.Partitions))
	}
	if len(want) == 0 {
		return nil, ReadStats{}, nil
	}
	return readBase(dir, meta, i, c, want)
}

// readBase reads partition i's base file only (no deltas), optionally
// restricted to the blocks in blockSet (nil means all).
func readBase[T any](
	dir string, meta *Metadata, i int, c codec.Codec[T], blockSet map[int]bool,
) ([]T, ReadStats, error) {
	pm := meta.Partitions[i]
	version := meta.Version
	if pm.Format != 0 {
		version = pm.Format
	}
	return readWithRetry(pm.File, func() ([]T, ReadStats, error) {
		switch {
		case version >= 3:
			return readPartitionV3Once[T](dir, pm, c, nil, blockSet)
		case version == 2:
			return readPartitionV2Once[T](dir, meta.Compressed, pm, c, nil, blockSet)
		default:
			if blockSet != nil && !blockSet[0] {
				return nil, ReadStats{}, nil
			}
			return readPartitionOnce[T](dir, meta, pm, c)
		}
	})
}

// BuildSummaries builds and commits summary sidecars for every base
// partition that lacks a current one — the backfill path for datasets
// ingested before the approximate tier existed (stload -summaries) and
// for formats whose ingest never summarizes. Compaction keeps sidecars
// current afterwards via CompactOptions.Summarizer. The pass commits with
// one atomic manifest swap bumping the dataset generation; it returns how
// many sidecars it built (0 means everything was already current and
// nothing committed).
func BuildSummaries[T any](
	dir string, c codec.Codec[T], boxOf func(T) index.Box,
	val func(T) (float64, bool), id func(T) int64, cfg summary.Config,
) (int, error) {
	unlock := lockDir(dir)
	defer unlock()

	meta, err := ReadMetadata(dir)
	if err != nil {
		return 0, err
	}
	mf, err := ReadManifest(dir)
	if err != nil {
		return 0, err
	}
	built := 0
	for i := range meta.Partitions {
		pm := meta.Partitions[i]
		if sm, ok := mf.Summaries[i]; ok && sm.Base == pm.File {
			continue // current sidecar already committed
		}
		bn, err := baseBlockRecords(dir, meta, i)
		if err != nil {
			return built, err
		}
		recs, _, err := readBase(dir, meta, i, c, nil)
		if err != nil {
			return built, err
		}
		ps := summary.Build(recs, boxOf, val, id, withBlockRecords(cfg, bn))
		sm, err := writeSummaryFile(dir, pm.File, ps)
		if err != nil {
			return built, err
		}
		if mf.Summaries == nil {
			mf.Summaries = map[int]SummaryMeta{}
		}
		mf.Summaries[i] = sm
		built++
	}
	if built == 0 {
		return 0, nil
	}
	mf.Generation++
	if err := writeManifest(dir, mf); err != nil {
		return built, err
	}
	return built, nil
}

// withBlockRecords overrides just the chunk size of a summary config.
func withBlockRecords(cfg summary.Config, bn int) summary.Config {
	cfg.BlockRecords = bn
	return cfg
}
