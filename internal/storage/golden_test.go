// Backward-compatibility golden test: a v1 dataset written by the
// pre-block storage layer is committed under testdata/, and every future
// reader must keep returning exactly the records recorded beside it.
// Regenerate with `go test ./internal/storage -run TestGoldenV1 -update`
// only when intentionally re-seeding (the committed files are the
// contract; regenerating weakens it to a self-test for one commit).
package storage_test

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"st4ml/internal/geom"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

var updateGolden = flag.Bool("update", false, "rewrite golden testdata")

const goldenDir = "testdata/v1-golden"

// goldenRecords deterministically builds the dataset committed under
// testdata: two partitions of NYC-style events on disjoint ST tiles.
func goldenRecords() [][]stdata.EventRec {
	rng := rand.New(rand.NewSource(20260805))
	parts := make([][]stdata.EventRec, 2)
	for p := range parts {
		for i := 0; i < 40; i++ {
			parts[p] = append(parts[p], stdata.EventRec{
				ID:   int64(p*1000 + i),
				Loc:  geom.Pt(-74.0+float64(p)*0.5+rng.Float64()*0.5, 40.7+rng.Float64()*0.3),
				Time: int64(p*3600) + rng.Int63n(3600),
				Aux:  "golden",
			})
		}
	}
	return parts
}

func TestGoldenV1DatasetStillReads(t *testing.T) {
	parts := goldenRecords()
	if *updateGolden {
		if err := os.RemoveAll(goldenDir); err != nil {
			t.Fatal(err)
		}
		// Version 1 pins the legacy monolithic layout — the whole point is
		// that files written before the block format keep working.
		_, err := storage.Write(goldenDir, stdata.EventRecC, parts,
			stdata.EventRec.Box,
			storage.WriteOptions{Name: "v1-golden", Compress: true, Version: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(parts, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(goldenDir, "records.json"), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := storage.ReadMetadata(goldenDir)
	if err != nil {
		t.Fatalf("golden dataset unreadable (run with -update to regenerate): %v", err)
	}
	if meta.Version != 0 {
		t.Fatalf("golden dataset is not v1: version=%d", meta.Version)
	}
	var want [][]stdata.EventRec
	b, err := os.ReadFile(filepath.Join(goldenDir, "records.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		got, st, err := storage.ReadPartitionPruned(goldenDir, meta, i, stdata.EventRecC, nil)
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("partition %d: records differ from committed golden set", i)
		}
		if st.Blocks != 1 || st.BlocksScanned != 1 {
			t.Fatalf("partition %d: v1 stats %+v", i, st)
		}
	}
	// The in-memory generator still matches the committed records, so a
	// future -update cannot silently change the dataset's content.
	if !reflect.DeepEqual(parts, want) {
		t.Fatal("goldenRecords() drifted from committed records.json")
	}
}
