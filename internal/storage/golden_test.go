// Backward-compatibility golden test: a v1 dataset written by the
// pre-block storage layer is committed under testdata/, and every future
// reader must keep returning exactly the records recorded beside it.
// Regenerate with `go test ./internal/storage -run TestGoldenV1 -update`
// only when intentionally re-seeding (the committed files are the
// contract; regenerating weakens it to a self-test for one commit).
package storage_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/geom"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

var updateGolden = flag.Bool("update", false, "rewrite golden testdata")

const (
	goldenDir   = "testdata/v1-golden"
	goldenV2Dir = "testdata/v2-golden"
	goldenV3Dir = "testdata/v3-golden"
)

// goldenRecords deterministically builds the dataset committed under
// testdata: two partitions of NYC-style events on disjoint ST tiles.
func goldenRecords() [][]stdata.EventRec {
	rng := rand.New(rand.NewSource(20260805))
	parts := make([][]stdata.EventRec, 2)
	for p := range parts {
		for i := 0; i < 40; i++ {
			parts[p] = append(parts[p], stdata.EventRec{
				ID:   int64(p*1000 + i),
				Loc:  geom.Pt(-74.0+float64(p)*0.5+rng.Float64()*0.5, 40.7+rng.Float64()*0.3),
				Time: int64(p*3600) + rng.Int63n(3600),
				Aux:  "golden",
			})
		}
	}
	return parts
}

func TestGoldenV1DatasetStillReads(t *testing.T) {
	parts := goldenRecords()
	if *updateGolden {
		if err := os.RemoveAll(goldenDir); err != nil {
			t.Fatal(err)
		}
		// Version 1 pins the legacy monolithic layout — the whole point is
		// that files written before the block format keep working.
		_, err := storage.Write(goldenDir, stdata.EventRecC, parts,
			stdata.EventRec.Box,
			storage.WriteOptions{Name: "v1-golden", Compress: true, Version: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(parts, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(goldenDir, "records.json"), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := storage.ReadMetadata(goldenDir)
	if err != nil {
		t.Fatalf("golden dataset unreadable (run with -update to regenerate): %v", err)
	}
	if meta.Version != 0 {
		t.Fatalf("golden dataset is not v1: version=%d", meta.Version)
	}
	var want [][]stdata.EventRec
	b, err := os.ReadFile(filepath.Join(goldenDir, "records.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		got, st, err := storage.ReadPartitionPruned(goldenDir, meta, i, stdata.EventRecC, nil)
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("partition %d: records differ from committed golden set", i)
		}
		if st.Blocks != 1 || st.BlocksScanned != 1 {
			t.Fatalf("partition %d: v1 stats %+v", i, st)
		}
	}
	// The in-memory generator still matches the committed records, so a
	// future -update cannot silently change the dataset's content.
	if !reflect.DeepEqual(parts, want) {
		t.Fatal("goldenRecords() drifted from committed records.json")
	}
}

// writeGolden (re)generates one golden dataset directory for -update.
func writeGolden(t *testing.T, dir string, opts storage.WriteOptions) {
	t.Helper()
	parts := goldenRecords()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.Write(dir, stdata.EventRecC, parts, stdata.EventRec.Box, opts); err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(parts, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "records.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// readGolden reads every partition of a committed golden dataset and
// checks it against the records.json beside it, returning the records.
func readGolden(t *testing.T, dir string, wantVersion int) [][]stdata.EventRec {
	t.Helper()
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		t.Fatalf("golden dataset %s unreadable (run with -update to regenerate): %v", dir, err)
	}
	if meta.Version != wantVersion {
		t.Fatalf("%s: version = %d, want %d", dir, meta.Version, wantVersion)
	}
	var want [][]stdata.EventRec
	b, err := os.ReadFile(filepath.Join(dir, "records.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	got := make([][]stdata.EventRec, meta.NumPartitions())
	for i := range got {
		recs, _, err := storage.ReadPartitionPruned(dir, meta, i, stdata.EventRecC, nil)
		if err != nil {
			t.Fatalf("%s partition %d: %v", dir, i, err)
		}
		got[i] = recs
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: records differ from committed golden set", dir)
	}
	return got
}

// TestGoldenV2DatasetStillReads pins the row-major gzip block layout: the
// committed v2-golden files must keep decoding to the recorded records on
// every future reader, including through block-level pruning.
func TestGoldenV2DatasetStillReads(t *testing.T) {
	if *updateGolden {
		writeGolden(t, goldenV2Dir, storage.WriteOptions{
			Name: "v2-golden", Compress: true, Version: 2, BlockRecords: 16,
		})
	}
	readGolden(t, goldenV2Dir, 2)
}

// TestGoldenV3DatasetStillReads pins the columnar layout: the committed
// v3-golden files (native column streams, EventRec schema) must keep
// decoding to the recorded records.
func TestGoldenV3DatasetStillReads(t *testing.T) {
	if *updateGolden {
		writeGolden(t, goldenV3Dir, storage.WriteOptions{
			Name: "v3-golden", Version: 3, BlockRecords: 16,
		})
	}
	readGolden(t, goldenV3Dir, 3)
}

// TestGoldenCrossGeneration is the compatibility matrix in executable
// form: the same logical dataset committed under all three on-disk
// generations materializes to byte-identical records — every record
// re-encoded through the wire codec produces the same bytes regardless of
// which format version stored it.
func TestGoldenCrossGeneration(t *testing.T) {
	v1 := readGolden(t, goldenDir, 0)
	v2 := readGolden(t, goldenV2Dir, 2)
	v3 := readGolden(t, goldenV3Dir, 3)
	if len(v1) != len(v2) || len(v1) != len(v3) {
		t.Fatalf("partition counts differ: v1=%d v2=%d v3=%d", len(v1), len(v2), len(v3))
	}
	for p := range v1 {
		if len(v1[p]) != len(v2[p]) || len(v1[p]) != len(v3[p]) {
			t.Fatalf("partition %d: record counts differ: v1=%d v2=%d v3=%d",
				p, len(v1[p]), len(v2[p]), len(v3[p]))
		}
		for i := range v1[p] {
			b1 := codec.Marshal(stdata.EventRecC, v1[p][i])
			b2 := codec.Marshal(stdata.EventRecC, v2[p][i])
			b3 := codec.Marshal(stdata.EventRecC, v3[p][i])
			if !bytes.Equal(b1, b2) || !bytes.Equal(b1, b3) {
				t.Fatalf("partition %d record %d: re-encoded bytes differ across generations", p, i)
			}
		}
	}
}
