package storage

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// TestOnCommitAppendEvents pins the hook contract on the append path: one
// event per committed batch carrying the batch id and the committed deltas
// in sequence order, no event for a replayed (deduplicated) batch, and no
// events after cancel.
func TestOnCommitAppendEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	parts := makeParts(rng, 3, 40)
	dir := t.TempDir()
	if _, err := Write(dir, recC, parts, recBox, WriteOptions{Name: "h", BlockRecords: 16}); err != nil {
		t.Fatal(err)
	}
	var events []CommitEvent
	cancel := OnCommit(dir, func(ev CommitEvent) error {
		events = append(events, ev)
		return nil
	})
	defer cancel()

	extra := makeParts(rng, 1, 30)[0]
	mf, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{BatchID: "h1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("%d events after one append, want 1", len(events))
	}
	ev := events[0]
	if ev.Kind != CommitAppend || ev.Dir != dir || ev.BatchID != "h1" || ev.Generation != mf.Generation {
		t.Fatalf("event %+v, manifest generation %d", ev, mf.Generation)
	}
	if len(ev.Deltas) == 0 {
		t.Fatal("append event carries no deltas")
	}
	total := int64(0)
	for i, dm := range ev.Deltas {
		total += dm.Count
		if i > 0 && dm.Seq <= ev.Deltas[i-1].Seq {
			t.Fatalf("deltas out of sequence order: %+v", ev.Deltas)
		}
	}
	if total != int64(len(extra)) {
		t.Fatalf("event deltas cover %d records, batch had %d", total, len(extra))
	}

	// Replay: exactly-once dedup means no commit, hence no event.
	if _, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{BatchID: "h1"}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("replayed batch fired an event (%d total)", len(events))
	}

	// Empty batch: no commit, no event.
	if _, err := AppendDelta(dir, recC, nil, recBox, AppendOptions{BatchID: "h2"}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("empty batch fired an event (%d total)", len(events))
	}

	cancel()
	if _, err := AppendDelta(dir, recC, makeParts(rng, 1, 10)[0], recBox, AppendOptions{BatchID: "h3"}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("cancelled hook still fired (%d total)", len(events))
	}
}

// TestOnCommitCompactEvent pins that a committed compaction notifies with
// CommitCompact at the new generation, and that a GC-only or idle pass
// stays silent.
func TestOnCommitCompactEvent(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	parts := makeParts(rng, 2, 40)
	dir := t.TempDir()
	if _, err := Write(dir, recC, parts, recBox, WriteOptions{Name: "hc", BlockRecords: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendDelta(dir, recC, makeParts(rng, 1, 25)[0], recBox, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	var events []CommitEvent
	cancel := OnCommit(dir, func(ev CommitEvent) error {
		events = append(events, ev)
		return nil
	})
	defer cancel()

	st, err := Compact(dir, recC, recBox, CompactOptions{MinDeltas: 1, GCGrace: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.PartitionsCompacted == 0 {
		t.Fatalf("compaction did nothing: %+v", st)
	}
	if len(events) != 1 {
		t.Fatalf("%d events after compaction, want 1", len(events))
	}
	if ev := events[0]; ev.Kind != CommitCompact || ev.Generation != st.Generation || ev.Dir != dir {
		t.Fatalf("event %+v, stats generation %d", ev, st.Generation)
	}

	// Nothing left to fold: the idle pass commits nothing and stays silent.
	if _, err := Compact(dir, recC, recBox, CompactOptions{MinDeltas: 1, GCGrace: 0}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("idle compaction pass fired an event (%d total)", len(events))
	}
}

// TestHookErrorKeepsCommit pins the durability contract: a failing hook
// surfaces as *HookError, but the append it observed IS committed — the
// manifest moved, the records read back, and a replay of the batch dedups
// to a no-op (so callers must not retry the append to "redeliver" the
// notification).
func TestHookErrorKeepsCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	parts := makeParts(rng, 2, 40)
	dir := t.TempDir()
	if _, err := Write(dir, recC, parts, recBox, WriteOptions{Name: "he", BlockRecords: 16}); err != nil {
		t.Fatal(err)
	}
	var base []rec
	for _, p := range parts {
		base = append(base, p...)
	}
	boom := errors.New("notifier exploded")
	cancel := OnCommit(dir, func(CommitEvent) error { return boom })
	defer cancel()

	extra := makeParts(rng, 1, 20)[0]
	mf, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{BatchID: "he1"})
	if err == nil {
		t.Fatal("hook failure did not surface")
	}
	var herr *HookError
	if !errors.As(err, &herr) || !errors.Is(err, boom) {
		t.Fatalf("error %v is not a *HookError wrapping the hook's error", err)
	}
	if mf == nil || mf.Generation == 0 {
		t.Fatalf("manifest not returned with the hook error: %+v", mf)
	}
	want := canonical(append(append([]rec{}, base...), extra...))
	if got := readAll(t, dir, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("append with failing hook did not commit the records")
	}

	// The replay dedups silently: same state, and the hook is NOT re-fired
	// (no error comes back), which is exactly why callers must not replay.
	mf2, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{BatchID: "he1"})
	if err != nil {
		t.Fatalf("replay after hook failure errored: %v", err)
	}
	if mf2.Generation != mf.Generation {
		t.Fatalf("replay moved generation %d -> %d", mf.Generation, mf2.Generation)
	}
	if got := readAll(t, dir, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("replay changed the dataset")
	}

	// Compaction with the failing hook: same shape — committed state plus
	// *HookError.
	st, err := Compact(dir, recC, recBox, CompactOptions{MinDeltas: 1, GCGrace: 0})
	if !errors.As(err, &herr) {
		t.Fatalf("compaction hook failure surfaced as %v", err)
	}
	if st.PartitionsCompacted == 0 {
		t.Fatalf("compaction stats lost alongside the hook error: %+v", st)
	}
	if got := readAll(t, dir, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("compaction with failing hook corrupted the dataset")
	}
}

// TestOnCommitMultipleHooks pins registration order and first-error-wins.
func TestOnCommitMultipleHooks(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	parts := makeParts(rng, 2, 30)
	dir := t.TempDir()
	if _, err := Write(dir, recC, parts, recBox, WriteOptions{Name: "hm", BlockRecords: 16}); err != nil {
		t.Fatal(err)
	}
	var order []string
	c1 := OnCommit(dir, func(CommitEvent) error { order = append(order, "a"); return nil })
	defer c1()
	c2 := OnCommit(dir, func(CommitEvent) error { order = append(order, "b"); return errors.New("b failed") })
	defer c2()
	c3 := OnCommit(dir, func(CommitEvent) error { order = append(order, "c"); return nil })
	defer c3()

	_, err := AppendDelta(dir, recC, makeParts(rng, 1, 10)[0], recBox, AppendOptions{})
	var herr *HookError
	if !errors.As(err, &herr) {
		t.Fatalf("second hook's error not surfaced: %v", err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("hook order %v, want %v (run in order, stop at first error)", order, want)
	}
}
