package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"st4ml/internal/codec"
	"st4ml/internal/index"
)

// Storage format v3 (see DESIGN.md "Storage format v3"): the block layout
// of v2 with every block decomposed struct-of-arrays. A block's payload is
// a record count followed by one integrity frame per column stream — ids,
// lon, lat, t, an optional string attribute, per-record payload span
// lengths, and the residual payload stream — each column delta-encoded by
// the codec package's column codecs. There is no gzip anywhere: the delta
// encoding is the compression, and it decodes an order of magnitude
// cheaper.
//
//	+------+---------+     +---------+------------------+---------+------+
//	| STB3 | frame 0 | ... | frame k | frame( footer )  | off u64 | 3BTS |
//	+------+---------+     +---------+------------------+---------+------+
//	 magic   block 0         block k   profile + index    trailer
//
// The footer payload opens with one profile byte — whether the blocks are
// native columnar (the codec carried a Columnar schema) or generic
// row-payload, whether the lon/lat/t columns are exact record extents
// (point schemas), and whether a string column is present — followed by
// the same block index v2 uses. Keeping the profile inside the footer
// frame keeps every byte of the file under a CRC.
//
// For point schemas a reader evaluates query windows directly on the
// decoded lon/lat/t columns and materializes only surviving records;
// callers re-filter either way, so this is an allocation/CPU saving,
// never a correctness dependency.

const (
	// v3Magic opens every v3 partition file.
	v3Magic = "STB3"
	// v3TrailerMagic closes it.
	v3TrailerMagic = "3BTS"
	// v3HeaderLen is the header magic length.
	v3HeaderLen = 4

	// Profile bits, stored in the footer frame.
	v3Native  = 1 << 0 // blocks are native columnar (codec has a Columnar schema)
	v3Point   = 1 << 1 // lon/lat/t columns are exact record extents
	v3HasStr  = 1 << 2 // a string column is present
	v3AllBits = v3Native | v3Point | v3HasStr
)

// DefaultBlockRecordsV3 is the records-per-block target for v3 files.
// Columnar framing costs a near-constant ~100 bytes per block (no gzip
// stream to warm up), so v3 affords 4× finer blocks than v2 — and with
// them 4× finer pruning granularity for small-range queries.
const DefaultBlockRecordsV3 = 1024

// maxBlockRecords caps the record count a single block may claim; counts
// beyond it are treated as corruption before any allocation happens.
const maxBlockRecords = codec.MaxColumnValues

// maxMaterializeHint caps the capacity pre-allocated from footer counts,
// which are attacker-controlled in a corrupt file; appends grow past it
// when the counts are honest.
const maxMaterializeHint = 1 << 20

// capHint bounds a footer-derived record count to a safe prealloc size.
func capHint(n int64) int64 {
	if n > maxMaterializeHint {
		return maxMaterializeHint
	}
	return n
}

// writePartitionV3 writes one base partition in the columnar layout.
func writePartitionV3[T any](
	dir string, i int, c codec.Codec[T], part []T,
	boxOf func(T) index.Box, blockRecords int,
) (PartitionMeta, error) {
	return writePartitionV3File(dir, partitionFileName(i), c, part, boxOf, blockRecords, false)
}

// writePartitionV3File is the v3 analogue of writePartitionV2File: the
// shared writer behind base partitions, delta files, and compaction
// rewrites. Codecs carrying a Columnar schema get native column streams;
// any other codec gets the generic layout (one frame of row encodings per
// block), so v3 never requires schema cooperation.
func writePartitionV3File[T any](
	dir, name string, c codec.Codec[T], part []T,
	boxOf func(T) index.Box, blockRecords int, sync bool,
) (PartitionMeta, error) {
	if blockRecords > maxBlockRecords {
		blockRecords = maxBlockRecords
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: create partition: %w", err)
	}
	defer f.Close()
	out := bufio.NewWriterSize(f, 256<<10)
	if _, err := out.WriteString(v3Magic); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: write partition: %w", err)
	}
	off := int64(v3HeaderLen)

	col := c.Col
	profile := byte(0)
	if col != nil {
		profile |= v3Native
		if col.Point {
			profile |= v3Point
		}
		if col.HasStr {
			profile |= v3HasStr
		}
	}

	cb := codec.GetColBlock()
	blkW := codec.GetWriter()   // one block's payload (count + column frames)
	colW := codec.GetWriter()   // one column's stream
	frameW := codec.GetWriter() // framed output scratch
	defer func() {
		codec.PutColBlock(cb)
		codec.PutWriter(blkW)
		codec.PutWriter(colW)
		codec.PutWriter(frameW)
	}()
	putCol := func(enc func(w *codec.Writer)) {
		colW.Reset()
		enc(colW)
		blkW.PutFrame(colW.Bytes())
	}

	var blocks []BlockMeta
	bounds := index.EmptyBox()
	flush := func(blockBounds index.Box, count int64) error {
		if col != nil && (int64(len(cb.IDs)) != count || int64(len(cb.Lon)) != count ||
			int64(len(cb.Lat)) != count || int64(len(cb.T)) != count ||
			int64(len(cb.PayLen)) != count ||
			(col.HasStr && int64(len(cb.Str)) != count) ||
			(!col.HasStr && len(cb.Str) != 0)) {
			return fmt.Errorf("storage: columnar Split for %s filled columns unevenly "+
				"(%d records: %d ids, %d lon, %d lat, %d t, %d str, %d spans)",
				name, count, len(cb.IDs), len(cb.Lon), len(cb.Lat), len(cb.T),
				len(cb.Str), len(cb.PayLen))
		}
		blkW.Reset()
		blkW.PutUvarint(uint64(count))
		if col != nil {
			putCol(func(w *codec.Writer) { w.PutInt64Col(cb.IDs) })
			putCol(func(w *codec.Writer) { w.PutFloat64Col(cb.Lon) })
			putCol(func(w *codec.Writer) { w.PutFloat64Col(cb.Lat) })
			putCol(func(w *codec.Writer) { w.PutInt64Col(cb.T) })
			if col.HasStr {
				putCol(func(w *codec.Writer) { w.PutStringCol(cb.Str) })
			}
			putCol(func(w *codec.Writer) { w.PutInt64Col(cb.PayLen) })
		}
		blkW.PutFrame(cb.Pay.Bytes())
		frameW.Reset()
		frameW.PutFrame(blkW.Bytes())
		if _, err := out.Write(frameW.Bytes()); err != nil {
			return fmt.Errorf("storage: write block: %w", err)
		}
		blocks = append(blocks, BlockMeta{
			Offset: off, Stored: int64(frameW.Len()), Raw: int64(blkW.Len()),
			Count: count, Bounds: blockBounds,
		})
		off += int64(frameW.Len())
		cb.Reset()
		return nil
	}
	blockBounds := index.EmptyBox()
	var blockCount int64
	for _, rec := range part {
		if col != nil {
			col.Split(rec, cb)
			cb.EndRecord()
		} else {
			c.Enc(&cb.Pay, rec)
		}
		b := boxOf(rec)
		blockBounds = blockBounds.Union(b)
		bounds = bounds.Union(b)
		blockCount++
		if blockCount >= int64(blockRecords) {
			if err := flush(blockBounds, blockCount); err != nil {
				return PartitionMeta{}, err
			}
			blockBounds = index.EmptyBox()
			blockCount = 0
		}
	}
	if blockCount > 0 {
		if err := flush(blockBounds, blockCount); err != nil {
			return PartitionMeta{}, err
		}
	}

	footerOff := off
	blkW.Reset()
	blkW.PutRaw([]byte{profile})
	encodeFooter(blkW, blocks)
	frameW.Reset()
	frameW.PutFrame(blkW.Bytes())
	if _, err := out.Write(frameW.Bytes()); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: write footer: %w", err)
	}
	var trailer [v2TrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(footerOff))
	copy(trailer[8:], v3TrailerMagic)
	if _, err := out.Write(trailer[:]); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: write trailer: %w", err)
	}
	if err := out.Flush(); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: flush partition: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			return PartitionMeta{}, fmt.Errorf("storage: sync partition: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return PartitionMeta{}, fmt.Errorf("storage: close partition: %w", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		return PartitionMeta{}, err
	}
	pm := PartitionMeta{File: name, Count: int64(len(part)), Bytes: st.Size()}
	pm.setBounds(bounds)
	return pm, nil
}

// readFooterV3 opens a v3 partition file and returns its verified profile
// byte and block index plus the file handle (positioned for ReadAt) and
// total size.
func readFooterV3(path string) (*os.File, byte, []BlockMeta, int64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, nil, 0, 0, fmt.Errorf("storage: open partition: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, nil, 0, 0, fmt.Errorf("storage: stat partition: %w", err)
	}
	size := st.Size()
	fail := func(err error) (*os.File, byte, []BlockMeta, int64, int64, error) {
		f.Close()
		return nil, 0, nil, 0, 0, err
	}
	if size < int64(v3HeaderLen)+v2TrailerLen {
		return fail(fmt.Errorf("storage: partition %s truncated: %w",
			filepath.Base(path), codec.ErrCorrupt{Off: int(size)}))
	}
	var head [v3HeaderLen]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return fail(fmt.Errorf("storage: read header: %w", err))
	}
	if string(head[:]) != v3Magic {
		return fail(fmt.Errorf("storage: partition %s: bad magic: %w",
			filepath.Base(path), codec.ErrCorrupt{Off: 0}))
	}
	var trailer [v2TrailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-v2TrailerLen); err != nil {
		return fail(fmt.Errorf("storage: read trailer: %w", err))
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if string(trailer[8:]) != v3TrailerMagic ||
		footerOff < int64(v3HeaderLen) || footerOff >= size-v2TrailerLen {
		return fail(fmt.Errorf("storage: partition %s: bad trailer: %w",
			filepath.Base(path), codec.ErrCorrupt{Off: int(size - v2TrailerLen)}))
	}
	footerStored := codec.GetBuf(int(size - v2TrailerLen - footerOff))
	defer codec.PutBuf(footerStored)
	if _, err := f.ReadAt(footerStored, footerOff); err != nil {
		return fail(fmt.Errorf("storage: read footer: %w", err))
	}
	var profile byte
	var blocks []BlockMeta
	err = codec.Catch(func() {
		r := codec.NewReader(footerStored)
		payload := r.Frame()
		if r.Remaining() != 0 || len(payload) < 1 {
			panic(codec.ErrCorrupt{Off: int(footerOff)})
		}
		profile = payload[0]
		if profile&^byte(v3AllBits) != 0 || (profile&v3Native == 0 && profile != 0) {
			panic(codec.ErrCorrupt{Off: int(footerOff)})
		}
		blocks = decodeFooter(payload[1:], footerOff)
		for _, bm := range blocks {
			if bm.Count > maxBlockRecords {
				panic(codec.ErrCorrupt{Off: int(footerOff)})
			}
		}
	})
	if err != nil {
		return fail(fmt.Errorf("storage: partition %s footer: %w", filepath.Base(path), err))
	}
	return f, profile, blocks, footerOff, size, nil
}

// pointInAny reports whether the point (lon, lat, t) lies inside at least
// one window — the closed-interval test index.Box.Intersects reduces to
// for a degenerate point box.
func pointInAny(lon, lat float64, t int64, windows []index.Box) bool {
	ft := float64(t)
	for _, w := range windows {
		if lon >= w.Min[0] && lon <= w.Max[0] &&
			lat >= w.Min[1] && lat <= w.Max[1] &&
			ft >= w.Min[2] && ft <= w.Max[2] {
			return true
		}
	}
	return false
}

// readPartitionV3Once decodes one v3 partition file, skipping blocks
// whose footer bounds miss every window, and — for point schemas —
// skipping individual records whose (lon, lat, t) columns miss every
// window before they are materialized. RecordsPruned in the returned
// stats counts the latter; RawBytes counts decoded column bytes plus only
// the surviving records' payload spans. A non-nil blockSet overrides
// window pruning with an explicit block-index selection (the approximate
// path's boundary-block scan); record counts are then not cross-checked
// against metadata, since only a subset is read.
func readPartitionV3Once[T any](
	dir string, pm PartitionMeta, c codec.Codec[T], windows []index.Box,
	blockSet map[int]bool,
) ([]T, ReadStats, error) {
	f, profile, blocks, footerOff, size, err := readFooterV3(filepath.Join(dir, pm.File))
	if err != nil {
		return nil, ReadStats{}, err
	}
	defer f.Close()
	native := profile&v3Native != 0
	if native && c.Col == nil {
		return nil, ReadStats{}, fmt.Errorf(
			"storage: partition %s is native columnar but the codec carries no columnar schema",
			pm.File)
	}

	st := ReadStats{Blocks: len(blocks), BytesRead: int64(v3HeaderLen) + (size - footerOff)}
	var scan []BlockMeta
	var expect int64
	for bi, bm := range blocks {
		keep := windows == nil && blockSet == nil
		if blockSet != nil {
			keep = blockSet[bi]
		} else if !keep && bm.Count > 0 {
			for _, w := range windows {
				if bm.Bounds.Intersects(w) {
					keep = true
					break
				}
			}
		}
		if keep {
			scan = append(scan, bm)
			expect += bm.Count
		} else {
			st.BlocksPruned++
		}
	}
	st.BlocksScanned = len(scan)
	if windows == nil && blockSet == nil && expect != pm.Count {
		return nil, ReadStats{}, fmt.Errorf(
			"storage: partition %s footer counts %d records, metadata says %d: %w",
			pm.File, expect, pm.Count, codec.ErrCorrupt{Off: int(footerOff)})
	}

	filter := native && profile&v3Point != 0 && len(windows) > 0
	hasStr := profile&v3HasStr != 0
	out := make([]T, 0, capHint(expect))
	var materialized int64
	cb := codec.GetColBlock()
	defer codec.PutColBlock(cb)
	done := make(chan struct{})
	defer close(done)
	for blk := range prefetchBlocks(f, scan, false, done) {
		if blk.err != nil {
			return nil, ReadStats{}, fmt.Errorf("storage: partition %s: %w", pm.File, blk.err)
		}
		st.BytesRead += blk.bm.Stored
		decErr := codec.Catch(func() {
			r := codec.NewReader(blk.raw)
			n := int(r.Uvarint())
			if n < 0 || int64(n) != blk.bm.Count || n > maxBlockRecords {
				panic(codec.ErrCorrupt{Off: 0})
			}
			if !native {
				pay := r.Frame()
				if r.Remaining() != 0 {
					panic(codec.ErrCorrupt{Off: int(blk.bm.Raw)})
				}
				st.RawBytes += blk.bm.Raw
				rr := codec.NewReader(pay)
				for j := 0; j < n; j++ {
					out = append(out, c.Dec(rr))
				}
				materialized += int64(n)
				if rr.Remaining() != 0 {
					panic(codec.ErrCorrupt{Off: int(blk.bm.Raw)})
				}
				return
			}
			cb.Reset()
			cb.IDs = codec.Int64Col(r.Frame(), n, cb.IDs)
			cb.Lon = codec.Float64Col(r.Frame(), n, cb.Lon)
			cb.Lat = codec.Float64Col(r.Frame(), n, cb.Lat)
			cb.T = codec.Int64Col(r.Frame(), n, cb.T)
			if hasStr {
				cb.Str = codec.StringCol(r.Frame(), n, cb.Str)
			}
			lens := codec.Int64Col(r.Frame(), n, cb.PayLen)
			pay := r.Frame()
			if r.Remaining() != 0 {
				panic(codec.ErrCorrupt{Off: int(blk.bm.Raw)})
			}
			cb.SetPayload(pay, lens)
			st.RawBytes += blk.bm.Raw - int64(len(pay))
			pr := codec.NewReader(nil)
			for i := 0; i < n; i++ {
				if filter && !pointInAny(cb.Lon[i], cb.Lat[i], cb.T[i], windows) {
					st.RecordsPruned++
					continue
				}
				span := cb.PaySpan(i)
				st.RawBytes += int64(len(span))
				pr.ResetBytes(span)
				out = append(out, c.Col.Join(cb, i, pr))
				materialized++
				if pr.Remaining() != 0 {
					panic(codec.ErrCorrupt{Off: len(span)})
				}
			}
		})
		blk.release()
		if decErr != nil {
			return nil, ReadStats{}, fmt.Errorf("storage: partition %s block at %d: %w",
				pm.File, blk.bm.Offset, decErr)
		}
	}
	if windows == nil && blockSet == nil && materialized != pm.Count {
		return nil, ReadStats{}, fmt.Errorf(
			"storage: partition %s decoded %d records, metadata says %d: %w",
			pm.File, materialized, pm.Count, codec.ErrCorrupt{Off: 0})
	}
	return out, st, nil
}
