package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/tempo"
)

type rec struct {
	P geom.Point
	T int64
	S string
}

var recC = codec.Codec[rec]{
	Enc: func(w *codec.Writer, v rec) {
		codec.PointC.Enc(w, v.P)
		w.PutVarint(v.T)
		w.PutString(v.S)
	},
	Dec: func(r *codec.Reader) rec {
		return rec{P: codec.PointC.Dec(r), T: r.Varint(), S: r.String()}
	},
	Col: &codec.Columnar[rec]{
		Point:  true,
		HasStr: true,
		Split: func(v rec, b *codec.ColBlock) {
			b.IDs = append(b.IDs, 0)
			b.Lon = append(b.Lon, v.P.X)
			b.Lat = append(b.Lat, v.P.Y)
			b.T = append(b.T, v.T)
			b.Str = append(b.Str, v.S)
		},
		Join: func(b *codec.ColBlock, i int, pay *codec.Reader) rec {
			return rec{P: geom.Pt(b.Lon[i], b.Lat[i]), T: b.T[i], S: b.Str[i]}
		},
	},
}

// recRowC is the same wire schema without a columnar description: v3 files
// written with it fall back to the generic row-encoded block payload.
var recRowC = codec.Codec[rec]{Enc: recC.Enc, Dec: recC.Dec}

func recBox(v rec) index.Box { return index.BoxOfPoint(v.P, v.T) }

func makeParts(rng *rand.Rand, nParts, perPart int) [][]rec {
	parts := make([][]rec, nParts)
	for p := range parts {
		for i := 0; i < perPart; i++ {
			parts[p] = append(parts[p], rec{
				P: geom.Pt(float64(p*10)+rng.Float64()*10, rng.Float64()*10),
				T: int64(p*1000) + rng.Int63n(1000),
				S: "attr",
			})
		}
	}
	return parts
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		dir := t.TempDir()
		rng := rand.New(rand.NewSource(1))
		parts := makeParts(rng, 4, 100)
		meta, err := Write(dir, recC, parts, recBox, WriteOptions{Name: "test", Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		if meta.TotalCount != 400 || meta.NumPartitions() != 4 {
			t.Fatalf("meta = %+v", meta)
		}

		loaded, err := ReadMetadata(dir)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.TotalCount != 400 || loaded.Compressed != compress {
			t.Fatalf("loaded meta = %+v", loaded)
		}
		for i := range parts {
			got, err := ReadPartition(dir, loaded, i, recC)
			if err != nil {
				t.Fatalf("partition %d: %v", i, err)
			}
			if !reflect.DeepEqual(got, parts[i]) {
				t.Fatalf("partition %d mismatch (compress=%v)", i, compress)
			}
		}
	}
}

func TestMetadataBoundsAreTight(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	parts := makeParts(rng, 3, 50)
	meta, err := Write(dir, recC, parts, recBox, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, pm := range meta.Partitions {
		box := pm.Box()
		for _, r := range parts[i] {
			if !box.Contains(recBox(r)) {
				t.Fatalf("partition %d bounds %v miss record %v", i, box, r)
			}
		}
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	// Partition p covers x in [10p, 10p+10), t in [1000p, 1000p+1000).
	parts := makeParts(rng, 5, 50)
	meta, err := Write(dir, recC, parts, recBox, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Query hitting only partition 2's space and time.
	got := meta.Prune(geom.Box(21, 0, 24, 10), tempo.New(2100, 2500))
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Prune = %v, want [2]", got)
	}
	// Spatially broad but temporally narrow.
	got = meta.Prune(geom.Box(0, 0, 100, 10), tempo.New(3100, 3500))
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("Prune = %v, want [3]", got)
	}
	// Nothing matches.
	if got = meta.Prune(geom.Box(0, 0, 100, 10), tempo.New(90000, 99999)); len(got) != 0 {
		t.Errorf("Prune = %v, want empty", got)
	}
	// Everything matches.
	if got = meta.Prune(geom.Box(0, 0, 100, 10), tempo.New(0, 10000)); len(got) != 5 {
		t.Errorf("Prune = %v, want all 5", got)
	}
}

func TestEmptyPartition(t *testing.T) {
	dir := t.TempDir()
	parts := [][]rec{{}, {{P: geom.Pt(1, 1), T: 5, S: "x"}}}
	meta, err := Write(dir, recC, parts, recBox, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadPartition(dir, meta, 0, recC)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty partition read %d records", len(got))
	}
	// Empty partitions should never survive pruning.
	if ids := meta.Prune(geom.Box(-1e9, -1e9, 1e9, 1e9), tempo.New(-1e15, 1e15)); len(ids) != 1 {
		t.Errorf("Prune over everything = %v, want only non-empty partition", ids)
	}
}

func TestReadPartitionOutOfRange(t *testing.T) {
	dir := t.TempDir()
	meta, err := Write(dir, recC, [][]rec{{}}, recBox, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPartition(dir, meta, 5, recC); err == nil {
		t.Error("out-of-range partition should error")
	}
	if _, err := ReadPartition(dir, meta, -1, recC); err == nil {
		t.Error("negative partition should error")
	}
}

func TestCorruptPartitionDetected(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	parts := makeParts(rng, 1, 20)
	meta, err := Write(dir, recC, parts, recBox, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, meta.Partitions[0].File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPartition(dir, meta, 0, recC); err == nil {
		t.Error("truncated partition should error")
	}
}

func TestCountMismatchDetected(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	parts := makeParts(rng, 1, 10)
	meta, err := Write(dir, recC, parts, recBox, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	meta.Partitions[0].Count = 99
	if _, err := ReadPartition(dir, meta, 0, recC); err == nil {
		t.Error("count mismatch should error")
	}
}

func TestReadMetadataMissing(t *testing.T) {
	if _, err := ReadMetadata(t.TempDir()); err == nil {
		t.Error("missing metadata should error")
	}
}

func TestMergeMetadata(t *testing.T) {
	base := t.TempDir()
	rng := rand.New(rand.NewSource(6))
	dirs := []string{"batch-1", "batch-2"}
	metas := map[string]*Metadata{}
	for i, d := range dirs {
		full := filepath.Join(base, d)
		parts := makeParts(rng, 2, 10+i)
		m, err := Write(full, recC, parts, recBox, WriteOptions{Name: d})
		if err != nil {
			t.Fatal(err)
		}
		metas[d] = m
	}
	merged := MergeMetadata(metas)
	if merged.NumPartitions() != 4 {
		t.Fatalf("merged partitions = %d", merged.NumPartitions())
	}
	if merged.TotalCount != 2*10+2*11 {
		t.Errorf("merged count = %d", merged.TotalCount)
	}
	// Merged file paths resolve from the base directory.
	for i := range merged.Partitions {
		got, err := ReadPartition(base, merged, i, recC)
		if err != nil {
			t.Fatalf("merged read %d: %v", i, err)
		}
		if len(got) == 0 {
			t.Errorf("merged partition %d empty", i)
		}
	}
}

func TestCompressionShrinksRedundantData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := makeParts(rng, 1, 2000)
	dirPlain, dirGz := t.TempDir(), t.TempDir()
	// Pinned to v2: the Compress flag is a v1/v2 concern (v3 column
	// streams are delta-compressed natively and never gzipped).
	mp, err := Write(dirPlain, recC, parts, recBox, WriteOptions{Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := Write(dirGz, recC, parts, recBox, WriteOptions{Version: 2, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if mg.Partitions[0].Bytes >= mp.Partitions[0].Bytes {
		t.Errorf("gzip %d >= plain %d", mg.Partitions[0].Bytes, mp.Partitions[0].Bytes)
	}
}
