// Golden sidecar test: summary sidecars built over the committed golden
// datasets are themselves committed beside them, and every future decoder
// must keep answering the same approximate envelopes from those bytes —
// the approximate tier's byte-format contract, pinned the same way the
// record formats are. Regenerate with
// `go test ./internal/storage -run TestGoldenSummary -update` only when
// intentionally re-seeding.
package storage_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/summary"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

// goldenApprox runs one approximate aggregate against a golden dataset
// directory through the nyc schema (the golden records are EventRecs) and
// returns the envelope plus the built explain tree.
func goldenApprox(t *testing.T, dir string, w selection.Window, req stdata.ApproxRequest) (*summary.Result, *trace.Explain) {
	t.Helper()
	sch, ok := stdata.Lookup("nyc")
	if !ok {
		t.Fatal("nyc schema not registered")
	}
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	ctx := engine.New(engine.Config{Tracer: tr})
	res, _, err := sch.ApproxQuery(ctx, dir, meta, w, req)
	if err != nil {
		t.Fatalf("%s: approx query: %v", dir, err)
	}
	return res, trace.Build(tr.Snapshot())
}

// goldenWant loads the committed records.json beside a golden dataset.
func goldenWant(t *testing.T, dir string) [][]stdata.EventRec {
	t.Helper()
	var want [][]stdata.EventRec
	b, err := os.ReadFile(filepath.Join(dir, "records.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

var (
	goldenFullWindow = selection.Window{
		Space: geom.Box(-180, -90, 180, 90), Time: tempo.New(0, 1<<60),
	}
	// goldenHalfWindow straddles block boundaries in every generation, so
	// the envelope is genuinely approximate (nonzero width) on the blocked
	// layouts rather than collapsing to the certain-cover exact case.
	goldenHalfWindow = selection.Window{
		Space: geom.Box(-73.8, 40.7, -73.4, 41.0), Time: tempo.New(0, 1<<60),
	}
)

// TestGoldenSummarySidecarsServe pins the committed sidecars: every golden
// generation carries one per partition, the full-domain count answered
// from them is exact and equals the committed record count, and a
// boundary-straddling window still brackets the exact answer recomputed
// from records.json. With -update the sidecars (and the manifest
// referencing them) are rebuilt from the committed base files.
func TestGoldenSummarySidecarsServe(t *testing.T) {
	sch, _ := stdata.Lookup("nyc")
	for _, dir := range []string{goldenDir, goldenV2Dir, goldenV3Dir} {
		if *updateGolden {
			// Drop any stale committed sidecars first: BuildSummaries keys
			// currency on the base file NAME, which regeneration reuses.
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), summary.Suffix) || e.Name() == "manifest.json" {
					if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
						t.Fatal(err)
					}
				}
			}
			if n, err := sch.BuildSummaries(dir, summary.Config{}); err != nil || n == 0 {
				t.Fatalf("%s: BuildSummaries = (%d, %v)", dir, n, err)
			}
		}
		meta, err := storage.ReadMetadata(dir)
		if err != nil {
			t.Fatal(err)
		}
		if meta.SummaryCount() != meta.NumPartitions() {
			t.Fatalf("%s: %d sidecars for %d partitions (run with -update to regenerate)",
				dir, meta.SummaryCount(), meta.NumPartitions())
		}

		want := goldenWant(t, dir)
		var total int64
		for _, p := range want {
			total += int64(len(p))
		}

		res, ex := goldenApprox(t, dir, goldenFullWindow, stdata.ApproxRequest{Agg: summary.AggCount})
		if res.Fallback {
			t.Fatalf("%s: fell back to scan with sidecars committed", dir)
		}
		if !res.Exact || res.CountLo != total || res.CountHi != total {
			t.Fatalf("%s: full-domain count [%d,%d] exact=%v, want exactly %d",
				dir, res.CountLo, res.CountHi, res.Exact, total)
		}
		if ex.Approx == nil || ex.Approx.Fallback {
			t.Fatalf("%s: explain approx section = %+v", dir, ex.Approx)
		}

		wb := goldenHalfWindow.Box()
		var exact int64
		for _, p := range want {
			for _, e := range p {
				if e.Box().Intersects(wb) {
					exact++
				}
			}
		}
		res, _ = goldenApprox(t, dir, goldenHalfWindow, stdata.ApproxRequest{Agg: summary.AggCount})
		if res.Fallback {
			t.Fatalf("%s: fell back to scan with sidecars committed", dir)
		}
		if exact < res.CountLo || exact > res.CountHi {
			t.Fatalf("%s: exact %d outside committed envelope [%d,%d]",
				dir, exact, res.CountLo, res.CountHi)
		}
	}
}

// TestGoldenApproxCrossGeneration: the same logical dataset answers the
// same approximate envelope from every generation's committed sidecars
// wherever the block structure cannot differ — the full domain (all blocks
// certain, so the envelope degenerates to the exact count) across v1, v2,
// and v3, and the boundary window between v2 and v3, which share a block
// size and so a per-block sketch structure.
func TestGoldenApproxCrossGeneration(t *testing.T) {
	full := map[string]*summary.Result{}
	half := map[string]*summary.Result{}
	for _, dir := range []string{goldenDir, goldenV2Dir, goldenV3Dir} {
		full[dir], _ = goldenApprox(t, dir, goldenFullWindow, stdata.ApproxRequest{Agg: summary.AggCount})
		half[dir], _ = goldenApprox(t, dir, goldenHalfWindow, stdata.ApproxRequest{Agg: summary.AggCount})
	}
	for _, dir := range []string{goldenV2Dir, goldenV3Dir} {
		if full[dir].CountLo != full[goldenDir].CountLo || full[dir].CountHi != full[goldenDir].CountHi {
			t.Fatalf("full-domain envelope differs: %s [%d,%d] vs v1 [%d,%d]",
				dir, full[dir].CountLo, full[dir].CountHi,
				full[goldenDir].CountLo, full[goldenDir].CountHi)
		}
	}
	v2, v3 := half[goldenV2Dir], half[goldenV3Dir]
	if v2.CountLo != v3.CountLo || v2.CountHi != v3.CountHi {
		t.Fatalf("boundary envelope differs across same-block-size generations: v2 [%d,%d], v3 [%d,%d]",
			v2.CountLo, v2.CountHi, v3.CountLo, v3.CountHi)
	}
	// The v1 monolith has one block per partition, so its boundary envelope
	// may be wider — but never narrower than what finer blocks certify.
	v1 := half[goldenDir]
	if v1.CountLo > v2.CountLo || v1.CountHi < v2.CountHi {
		t.Fatalf("v1 envelope [%d,%d] narrower than blocked [%d,%d]",
			v1.CountLo, v1.CountHi, v2.CountLo, v2.CountHi)
	}
}

// TestGoldenApproxFallbackWithoutSidecars: a dataset committed before the
// approximate tier existed (no manifest, no sidecars) still serves
// approx=true — transparently, through the exact scan path, with the
// fallback flagged in both the envelope and the explain tree.
func TestGoldenApproxFallbackWithoutSidecars(t *testing.T) {
	dir := t.TempDir()
	ents, err := os.ReadDir(goldenV3Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), summary.Suffix) || e.Name() == "manifest.json" {
			continue // strip the approximate tier, keep the pre-tier dataset
		}
		b, err := os.ReadFile(filepath.Join(goldenV3Dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	want := goldenWant(t, goldenV3Dir)
	var total int64
	for _, p := range want {
		total += int64(len(p))
	}
	res, ex := goldenApprox(t, dir, goldenFullWindow, stdata.ApproxRequest{Agg: summary.AggCount})
	if !res.Fallback || !res.Exact || res.Bound != 0 {
		t.Fatalf("want flagged exact fallback, got fallback=%v exact=%v bound=%v",
			res.Fallback, res.Exact, res.Bound)
	}
	if res.CountLo != total || res.CountHi != total || res.ScannedRecords == 0 {
		t.Fatalf("fallback count [%d,%d] (scanned %d), want exactly %d",
			res.CountLo, res.CountHi, res.ScannedRecords, total)
	}
	for _, p := range res.Parts {
		if p.Source != "scan" {
			t.Fatalf("fallback partition %d source %q, want scan", p.ID, p.Source)
		}
	}
	if ex.Approx == nil || !ex.Approx.Fallback {
		t.Fatalf("explain should flag the fallback, got %+v", ex.Approx)
	}
}
