package storage

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sync"

	"st4ml/internal/codec"
	"st4ml/internal/index"
)

// Storage format v2 (see DESIGN.md "Storage format v2"): a partition file
// is a sequence of independently-compressed, CRC-framed blocks of ~N
// records, closed by a framed footer that records every block's byte
// range, record count, and ST bounds. The footer is what lets a reader
// skip — not just avoid decoding, but avoid even decompressing — blocks
// whose bounds miss the query window, pushing the paper's §4.1
// partition-granularity pruning down to row-group granularity (Fig. 5c/d
// shows 42–98 % of loaded data is irrelevant at small ranges; that waste
// lived inside the partitions v1 could only read whole).
//
//	+------+---------+---------+     +---------+----------------+---------+------+
//	| STB2 | frame 0 | frame 1 | ... | frame k | frame( footer ) | off u64 | 2BTS |
//	+------+---------+---------+     +---------+----------------+---------+------+
//	 magic   block 0   block 1         block k   block index       trailer
//
// Every frame is the codec package's uvarint(len) + CRC32-C + payload
// envelope; block payloads are gzip streams when the dataset is
// compressed, raw record encodings otherwise. The 12-byte trailer is a
// fixed-width pointer to the footer frame plus a closing magic, so a
// reader seeks straight to the block index without scanning.

const (
	// v2Magic opens every v2 partition file.
	v2Magic = "STB2"
	// v2TrailerMagic closes it; distinct from the header so a truncation
	// that happens to end on the header magic still fails.
	v2TrailerMagic = "2BTS"
	// v2TrailerLen is the fixed trailer: 8-byte little-endian footer
	// offset + 4-byte magic.
	v2TrailerLen = 12
	// v2HeaderLen is the header magic length.
	v2HeaderLen = 4
)

// FormatVersion is the version number written into new dataset metadata:
// the columnar v3 layout of blockv3.go. v1 and v2 datasets stay readable
// through their legacy paths.
const FormatVersion = 3

// DefaultBlockRecords is the record count per block when WriteOptions
// does not specify one, for v2 files. Small enough that a
// city-block-sized query decompresses a few blocks, large enough that
// framing overhead and the footer stay negligible. v3 files default to
// the finer DefaultBlockRecordsV3.
const DefaultBlockRecords = 4096

// BlockMeta describes one block of a v2 partition file, as recorded in
// the file's footer.
type BlockMeta struct {
	// Offset is the block frame's byte offset from the file start.
	Offset int64
	// Stored is the framed length on disk (envelope included).
	Stored int64
	// Raw is the decompressed payload length.
	Raw int64
	// Count is the number of records encoded in the block.
	Count int64
	// Bounds is the union of the block's record ST boxes (empty for a
	// block of boundless records, which then never survives pruning).
	Bounds index.Box
}

// encodeFooter appends the block index to w in its wire form.
func encodeFooter(w *codec.Writer, blocks []BlockMeta) {
	w.PutUvarint(uint64(len(blocks)))
	for _, b := range blocks {
		w.PutUvarint(uint64(b.Offset))
		w.PutUvarint(uint64(b.Stored))
		w.PutUvarint(uint64(b.Raw))
		w.PutUvarint(uint64(b.Count))
		for i := 0; i < index.Dims; i++ {
			w.PutFloat64(b.Bounds.Min[i])
		}
		for i := 0; i < index.Dims; i++ {
			w.PutFloat64(b.Bounds.Max[i])
		}
	}
}

// minFooterEntry is the smallest possible wire size of one footer entry:
// four 1-byte uvarints plus six 8-byte floats. Used to reject absurd
// block counts before allocating.
const minFooterEntry = 4 + 6*8

// decodeFooter parses a footer payload. Malformed input panics with
// codec.ErrCorrupt (callers run under codec.Catch); structural
// impossibilities — counts that cannot fit the payload, offsets outside
// the block region, overlapping or unordered blocks — are corruption too.
func decodeFooter(payload []byte, blockRegionEnd int64) []BlockMeta {
	r := codec.NewReader(payload)
	n := int(r.Uvarint())
	if n < 0 || n*minFooterEntry > r.Remaining() {
		panic(codec.ErrCorrupt{Off: 0})
	}
	blocks := make([]BlockMeta, n)
	prevEnd := int64(v2HeaderLen)
	for i := range blocks {
		b := BlockMeta{
			Offset: int64(r.Uvarint()),
			Stored: int64(r.Uvarint()),
			Raw:    int64(r.Uvarint()),
			Count:  int64(r.Uvarint()),
		}
		for d := 0; d < index.Dims; d++ {
			b.Bounds.Min[d] = r.Float64()
		}
		for d := 0; d < index.Dims; d++ {
			b.Bounds.Max[d] = r.Float64()
		}
		if b.Offset < prevEnd || b.Stored <= 0 || b.Raw < 0 || b.Count < 0 ||
			b.Offset+b.Stored > blockRegionEnd {
			panic(codec.ErrCorrupt{Off: len(payload) - r.Remaining()})
		}
		prevEnd = b.Offset + b.Stored
		blocks[i] = b
	}
	if r.Remaining() != 0 {
		panic(codec.ErrCorrupt{Off: len(payload) - r.Remaining()})
	}
	return blocks
}

// Gzip codecs are pooled: Reset-able and expensive to construct (the
// writer allocates its full deflate state, the reader its window).
var gzWriterPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}
var gzReaderPool = sync.Pool{New: func() any { return new(gzip.Reader) }}

// gunzipInto decompresses src into a pooled buffer of exactly rawLen
// bytes, failing if the stream is shorter or longer than the footer
// promised. The caller owns the returned buffer (PutBuf when done).
func gunzipInto(src []byte, rawLen int64) ([]byte, error) {
	gz := gzReaderPool.Get().(*gzip.Reader)
	defer gzReaderPool.Put(gz)
	if err := gz.Reset(bytes.NewReader(src)); err != nil {
		return nil, err
	}
	raw := codec.GetBuf(int(rawLen))
	if _, err := io.ReadFull(gz, raw); err != nil {
		codec.PutBuf(raw)
		return nil, err
	}
	// The stream must end exactly where the footer said it would.
	var one [1]byte
	if n, err := gz.Read(one[:]); n != 0 || err != io.EOF {
		codec.PutBuf(raw)
		return nil, fmt.Errorf("storage: block longer than footer raw length %d", rawLen)
	}
	if err := gz.Close(); err != nil {
		codec.PutBuf(raw)
		return nil, err
	}
	return raw, nil
}

// blockOut is one fetched block handed from the prefetcher to the
// decoder: the decompressed payload plus the pooled buffers to release
// after decoding.
type blockOut struct {
	bm     BlockMeta
	raw    []byte // decoded payload (aliases stored when uncompressed)
	stored []byte // pooled on-disk bytes
	pooled bool   // raw is a separate pooled buffer (compressed path)
	err    error
}

// release returns the block's pooled buffers.
func (b *blockOut) release() {
	if b.pooled {
		codec.PutBuf(b.raw)
	}
	codec.PutBuf(b.stored)
}

// prefetchDepth bounds how many blocks the prefetcher may hold fetched,
// verified, and decompressed ahead of the decoder; prefetchWorkers is how
// many of those it works on concurrently. Together they overlap the next
// blocks' decompression with the current block's decode while capping
// resident scratch at depth × block size.
const (
	prefetchDepth   = 3
	prefetchWorkers = 2
)

// fetchBlock reads, CRC-verifies, and decompresses one block.
func fetchBlock(f *os.File, bm BlockMeta, compressed bool) blockOut {
	out := blockOut{bm: bm}
	stored := codec.GetBuf(int(bm.Stored))
	if _, err := f.ReadAt(stored, bm.Offset); err != nil {
		codec.PutBuf(stored)
		out.err = fmt.Errorf("storage: read block at %d: %w", bm.Offset, err)
		return out
	}
	var payload []byte
	err := codec.Catch(func() {
		r := codec.NewReader(stored)
		payload = r.Frame()
		if r.Remaining() != 0 {
			panic(codec.ErrCorrupt{Off: int(bm.Stored)})
		}
	})
	if err != nil {
		codec.PutBuf(stored)
		out.err = fmt.Errorf("storage: block at %d: %w", bm.Offset, err)
		return out
	}
	out.stored = stored
	if !compressed {
		if int64(len(payload)) != bm.Raw {
			out.release()
			return blockOut{bm: bm, err: codec.ErrCorrupt{Off: int(bm.Offset)}}
		}
		out.raw = payload
		return out
	}
	raw, err := gunzipInto(payload, bm.Raw)
	if err != nil {
		out.release()
		// Any decompression failure of a CRC-clean block means the footer
		// and block disagree: corruption, and retryable as such.
		return blockOut{bm: bm, err: codec.ErrCorrupt{Off: int(bm.Offset)}}
	}
	out.raw = raw
	out.pooled = true
	return out
}

// prefetchBlocks streams the scan list's blocks in order through a
// bounded pool of fetch workers. The returned channel yields exactly one
// blockOut per scanned block, in scan order; the caller must consume it
// fully or close done early — either way no goroutine leaks.
func prefetchBlocks(f *os.File, scan []BlockMeta, compressed bool, done <-chan struct{}) <-chan blockOut {
	ordered := make(chan blockOut)
	// Per-block result slots, buffered so a worker never blocks delivering.
	slots := make([]chan blockOut, len(scan))
	for i := range slots {
		slots[i] = make(chan blockOut, 1)
	}
	jobs := make(chan int)
	// Credits bound total in-flight blocks (queued + fetching + fetched).
	credits := make(chan struct{}, prefetchDepth)

	go func() { // feeder
		defer close(jobs)
		for i := range scan {
			select {
			case credits <- struct{}{}:
			case <-done:
				return
			}
			select {
			case jobs <- i:
			case <-done:
				return
			}
		}
	}()
	workers := prefetchWorkers
	if workers > len(scan) {
		workers = len(scan)
	}
	for w := 0; w < workers; w++ {
		go func() {
			for {
				select {
				case i, ok := <-jobs:
					if !ok {
						return
					}
					slots[i] <- fetchBlock(f, scan[i], compressed)
				case <-done:
					return
				}
			}
		}()
	}
	go func() { // merger: deliver in order, refunding a credit per block
		defer close(ordered)
		for i := range scan {
			var out blockOut
			select {
			case out = <-slots[i]:
			case <-done:
				return
			}
			select {
			case <-credits:
			default:
			}
			select {
			case ordered <- out:
			case <-done:
				out.release()
				return
			}
		}
	}()
	return ordered
}
