package storage

import (
	"math/rand"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/index"
)

// flatRec is a pointer-free record so decode allocations reflect the read
// path itself, not per-record string/slice headers.
type flatRec struct {
	X, Y float64
	T    int64
}

var flatC = codec.Codec[flatRec]{
	Enc: func(w *codec.Writer, v flatRec) {
		w.PutFloat64(v.X)
		w.PutFloat64(v.Y)
		w.PutVarint(v.T)
	},
	Dec: func(r *codec.Reader) flatRec {
		return flatRec{X: r.Float64(), Y: r.Float64(), T: r.Varint()}
	},
}

// flatColC adds the columnar schema, so v3 writes native column streams.
var flatColC = codec.Codec[flatRec]{
	Enc: flatC.Enc,
	Dec: flatC.Dec,
	Col: &codec.Columnar[flatRec]{
		Point: true,
		Split: func(v flatRec, b *codec.ColBlock) {
			b.IDs = append(b.IDs, 0)
			b.Lon = append(b.Lon, v.X)
			b.Lat = append(b.Lat, v.Y)
			b.T = append(b.T, v.T)
		},
		Join: func(b *codec.ColBlock, i int, pay *codec.Reader) flatRec {
			return flatRec{X: b.Lon[i], Y: b.Lat[i], T: b.T[i]}
		},
	},
}

func flatBox(v flatRec) index.Box {
	return index.Box{
		Min: [index.Dims]float64{v.X, v.Y, float64(v.T)},
		Max: [index.Dims]float64{v.X, v.Y, float64(v.T)},
	}
}

func flatDataset(t testing.TB, dir string, c codec.Codec[flatRec], version int, compress bool, n, blockRecords int) *Metadata {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	part := make([]flatRec, n)
	for i := range part {
		part[i] = flatRec{X: rng.Float64() * 100, Y: rng.Float64() * 100, T: int64(i)}
	}
	meta, err := Write(dir, c, [][]flatRec{part}, flatBox, WriteOptions{
		Name: "alloc", Version: version, Compress: compress, BlockRecords: blockRecords,
	})
	if err != nil {
		t.Fatal(err)
	}
	return meta
}

// Alloc ceilings for one full ReadPartition of 2048 records across 8
// blocks. The fixed costs are the result slice, file handle, per-read
// channels/goroutines of the prefetcher, and a handful of error-path-free
// bookkeeping allocations; block payload and decompression buffers come
// from the codec pools and must NOT scale with record or block count.
// Ceilings are deliberately loose (observed ~40–60) so the test only
// fires on a real regression — e.g. losing pooling would add ~2 allocs
// per block and tens of KiB per read, blowing well past these numbers.
const (
	allocCeilingPlain = 150
	allocCeilingGzip  = 250
)

func TestReadPartitionAllocCeiling(t *testing.T) {
	for _, tc := range []struct {
		name     string
		c        codec.Codec[flatRec]
		version  int
		compress bool
		ceiling  float64
	}{
		{"plain", flatC, 2, false, allocCeilingPlain},
		{"gzip", flatC, 2, true, allocCeilingGzip},
		// v3 native decodes pooled column slices; its ceiling matches plain.
		{"v3", flatColC, 3, false, allocCeilingPlain},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			meta := flatDataset(t, dir, tc.c, tc.version, tc.compress, 2048, 256)
			read := func() {
				out, _, err := ReadPartitionPruned(dir, meta, 0, tc.c, nil)
				if err != nil || len(out) != 2048 {
					t.Fatalf("read: %d recs, %v", len(out), err)
				}
			}
			read() // warm the pools so steady-state is what's measured
			got := testing.AllocsPerRun(20, read)
			if got > tc.ceiling {
				t.Errorf("ReadPartition (%s) allocs/op = %.0f, ceiling %v — pooled buffers regressed?",
					tc.name, got, tc.ceiling)
			}
		})
	}
}

func benchRead(b *testing.B, c codec.Codec[flatRec], version int, compress bool, windows []index.Box) {
	dir := b.TempDir()
	meta := flatDataset(b, dir, c, version, compress, 64<<10, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, st, err := ReadPartitionPruned(dir, meta, 0, c, windows)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
		_ = st
	}
}

func BenchmarkReadPartitionV2Plain(b *testing.B) { benchRead(b, flatC, 2, false, nil) }
func BenchmarkReadPartitionV2Gzip(b *testing.B)  { benchRead(b, flatC, 2, true, nil) }
func BenchmarkReadPartitionV3(b *testing.B)      { benchRead(b, flatColC, 3, false, nil) }

// pruneWindow covers ~1/32 of the time axis; flatDataset records are
// time-ordered so most blocks prune, and the gap to the full-scan
// benchmark is the prefetch+prune win.
func pruneWindow(n int) []index.Box {
	return []index.Box{{
		Min: [index.Dims]float64{-1e9, -1e9, 0},
		Max: [index.Dims]float64{1e9, 1e9, float64(n / 32)},
	}}
}

func BenchmarkReadPartitionV2GzipPruned(b *testing.B) {
	benchRead(b, flatC, 2, true, pruneWindow(64<<10))
}

// BenchmarkReadPartitionV3Pruned additionally engages the columnar
// per-record predicate: survivors alone are materialized.
func BenchmarkReadPartitionV3Pruned(b *testing.B) {
	benchRead(b, flatColC, 3, false, pruneWindow(64<<10))
}
