package storage

import (
	"math/rand"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/index"
)

// flatRec is a pointer-free record so decode allocations reflect the read
// path itself, not per-record string/slice headers.
type flatRec struct {
	X, Y float64
	T    int64
}

var flatC = codec.Codec[flatRec]{
	Enc: func(w *codec.Writer, v flatRec) {
		w.PutFloat64(v.X)
		w.PutFloat64(v.Y)
		w.PutVarint(v.T)
	},
	Dec: func(r *codec.Reader) flatRec {
		return flatRec{X: r.Float64(), Y: r.Float64(), T: r.Varint()}
	},
}

func flatBox(v flatRec) index.Box {
	return index.Box{
		Min: [index.Dims]float64{v.X, v.Y, float64(v.T)},
		Max: [index.Dims]float64{v.X, v.Y, float64(v.T)},
	}
}

func flatDataset(t testing.TB, dir string, compress bool, n, blockRecords int) *Metadata {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	part := make([]flatRec, n)
	for i := range part {
		part[i] = flatRec{X: rng.Float64() * 100, Y: rng.Float64() * 100, T: int64(i)}
	}
	meta, err := Write(dir, flatC, [][]flatRec{part}, flatBox, WriteOptions{
		Name: "alloc", Compress: compress, BlockRecords: blockRecords,
	})
	if err != nil {
		t.Fatal(err)
	}
	return meta
}

// Alloc ceilings for one full ReadPartition of 2048 records across 8
// blocks. The fixed costs are the result slice, file handle, per-read
// channels/goroutines of the prefetcher, and a handful of error-path-free
// bookkeeping allocations; block payload and decompression buffers come
// from the codec pools and must NOT scale with record or block count.
// Ceilings are deliberately loose (observed ~40–60) so the test only
// fires on a real regression — e.g. losing pooling would add ~2 allocs
// per block and tens of KiB per read, blowing well past these numbers.
const (
	allocCeilingPlain = 150
	allocCeilingGzip  = 250
)

func TestReadPartitionAllocCeiling(t *testing.T) {
	for _, tc := range []struct {
		name     string
		compress bool
		ceiling  float64
	}{
		{"plain", false, allocCeilingPlain},
		{"gzip", true, allocCeilingGzip},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			meta := flatDataset(t, dir, tc.compress, 2048, 256)
			read := func() {
				out, _, err := ReadPartitionPruned(dir, meta, 0, flatC, nil)
				if err != nil || len(out) != 2048 {
					t.Fatalf("read: %d recs, %v", len(out), err)
				}
			}
			read() // warm the pools so steady-state is what's measured
			got := testing.AllocsPerRun(20, read)
			if got > tc.ceiling {
				t.Errorf("ReadPartition (%s) allocs/op = %.0f, ceiling %v — pooled buffers regressed?",
					tc.name, got, tc.ceiling)
			}
		})
	}
}

func benchRead(b *testing.B, compress bool, windows []index.Box) {
	dir := b.TempDir()
	meta := flatDataset(b, dir, compress, 64<<10, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, st, err := ReadPartitionPruned(dir, meta, 0, flatC, windows)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
		_ = st
	}
}

func BenchmarkReadPartitionV2Plain(b *testing.B) { benchRead(b, false, nil) }
func BenchmarkReadPartitionV2Gzip(b *testing.B)  { benchRead(b, true, nil) }

// BenchmarkReadPartitionV2GzipPruned reads with a window covering ~1/32
// of the time axis; flatDataset records are time-ordered so most blocks
// prune, and the gap to the full-scan benchmark is the prefetch+prune win.
func BenchmarkReadPartitionV2GzipPruned(b *testing.B) {
	n := 64 << 10
	win := index.Box{
		Min: [index.Dims]float64{-1e9, -1e9, 0},
		Max: [index.Dims]float64{1e9, 1e9, float64(n / 32)},
	}
	benchRead(b, true, []index.Box{win})
}
