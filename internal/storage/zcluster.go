package storage

import (
	"sort"

	"st4ml/internal/geom"
	"st4ml/internal/index"
)

// ZCluster sorts recs in place along a 3-d Z-order curve over the records'
// own ST extent, so consecutive records — and therefore the v2 block
// layout's record ranges — cover small, mostly disjoint ST boxes. This is
// what makes the per-block footer bounds selective: without it every block
// spans the whole extent and intra-partition pruning never fires (the
// row-group sort-key idiom of columnar stores, applied to the paper's §4.1
// layout). Both the full-rebuild ingest (selection.Ingest) and the delta
// layer (AppendDelta, Compact) cluster through this one function, which is
// why a compacted store is block-for-block equivalent to a rebuilt one.
func ZCluster[T any](recs []T, boxOf func(T) index.Box) {
	if len(recs) < 2 {
		return
	}
	bounds := index.EmptyBox()
	for _, rec := range recs {
		bounds = bounds.Union(boxOf(rec))
	}
	if bounds.IsEmpty() {
		return
	}
	space := bounds.Spatial()
	window := bounds.Temporal()
	// ~16 time bins per record run; spatial resolution 8 bits/dim.
	binSec := (window.End - window.Start) / 16
	if binSec < 1 {
		binSec = 1
	}
	curve := index.NewZCurve3D(space, window, 8, binSec)
	type keyed struct {
		key uint64
		idx int
	}
	order := make([]keyed, len(recs))
	for i, rec := range recs {
		c := boxOf(rec).Center()
		order[i] = keyed{key: curve.Key(geom.Pt(c[0], c[1]), int64(c[2])), idx: i}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].key < order[j].key })
	sorted := make([]T, len(recs))
	for i, k := range order {
		sorted[i] = recs[k.idx]
	}
	copy(recs, sorted)
}
