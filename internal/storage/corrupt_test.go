package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"st4ml/internal/codec"
)

// TestBitFlipCorruptionDetected flips bytes in an on-disk partition file and
// asserts the framed read path reports a checksum mismatch for every flip
// position — corruption is never silently decoded.
func TestBitFlipCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	parts := makeParts(rng, 2, 50)
	meta, err := Write(dir, recC, parts, recBox, WriteOptions{Name: "corrupt"})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Framed {
		t.Fatal("new datasets should be written framed")
	}
	path := filepath.Join(dir, meta.Partitions[0].File)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte at a spread of offsets (header, checksum, payload).
	for _, off := range []int{0, 3, 5, len(pristine) / 2, len(pristine) - 1} {
		bad := append([]byte(nil), pristine...)
		bad[off] ^= 0x5A
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ReadPartition(dir, meta, 0, recC)
		if err == nil {
			t.Fatalf("flip at offset %d decoded silently", off)
		}
		if !strings.Contains(err.Error(), "corrupt") {
			t.Errorf("flip at offset %d: error does not mention corruption: %v", off, err)
		}
	}
	// Restoring the pristine bytes recovers the partition in full.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPartition(dir, meta, 0, recC)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, parts[0]) {
		t.Error("restored partition decoded incorrectly")
	}
}

// TestTruncatedPartitionDetected cuts a framed partition file short and
// asserts the reader reports it rather than returning a record prefix.
func TestTruncatedPartitionDetected(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	meta, err := Write(dir, recC, makeParts(rng, 1, 40), recBox, WriteOptions{Name: "trunc"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, meta.Partitions[0].File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPartition(dir, meta, 0, recC); err == nil {
		t.Fatal("truncated partition decoded silently")
	}
}

// TestLegacyUnframedDatasetStillReads writes a bare (pre-framing) record
// stream by hand and reads it through metadata with Framed=false — the
// backward-compatibility path for datasets persisted before checksums.
func TestLegacyUnframedDatasetStillReads(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	part := makeParts(rng, 1, 30)[0]
	w := codec.NewWriter(1 << 12)
	for _, v := range part {
		recC.Enc(w, v)
	}
	if err := os.WriteFile(filepath.Join(dir, partitionFileName(0)), w.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	meta := &Metadata{
		Name:       "legacy",
		TotalCount: int64(len(part)),
		Partitions: []PartitionMeta{{File: partitionFileName(0), Count: int64(len(part))}},
	}
	got, err := ReadPartition(dir, meta, 0, recC)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, part) {
		t.Error("legacy partition decoded incorrectly")
	}
}
