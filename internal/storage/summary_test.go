package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"st4ml/internal/index"
	"st4ml/internal/summary"
)

func recVal(v rec) (float64, bool) { return float64(v.T), true }
func recID(v rec) int64            { return int64(v.T % 7) }

var recSummarizer = summary.NewBuilder(recBox, recVal, recID, summary.Config{})

// TestBuildSummaries: backfill writes one committed sidecar per partition,
// aligned with the base file's block layout, and re-running is a no-op.
func TestBuildSummaries(t *testing.T) {
	for _, version := range []int{1, 2, 3} {
		rng := rand.New(rand.NewSource(42))
		parts := makeParts(rng, 3, 90)
		dir := t.TempDir()
		if _, err := Write(dir, recC, parts, recBox,
			WriteOptions{Name: "d", BlockRecords: 16, Version: version}); err != nil {
			t.Fatal(err)
		}
		n, err := BuildSummaries(dir, recC, recBox, recVal, recID, summary.Config{})
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if n != 3 {
			t.Fatalf("v%d: built %d summaries, want 3", version, n)
		}
		meta, err := ReadMetadata(dir)
		if err != nil {
			t.Fatal(err)
		}
		if meta.SummaryCount() != 3 || meta.Generation == 0 {
			t.Fatalf("v%d: summaries=%d gen=%d", version, meta.SummaryCount(), meta.Generation)
		}
		for i := range parts {
			sm, ok := meta.SummaryFor(i)
			if !ok {
				t.Fatalf("v%d: no summary for partition %d", version, i)
			}
			ps, err := ReadSummary(dir, sm)
			if err != nil {
				t.Fatal(err)
			}
			if ps.Count != int64(len(parts[i])) {
				t.Fatalf("v%d: summary count %d, want %d", version, ps.Count, len(parts[i]))
			}
			wantBlocks := 1
			if version >= 2 {
				wantBlocks = (len(parts[i]) + 15) / 16
			}
			if len(ps.Blocks) != wantBlocks {
				t.Fatalf("v%d: %d summary blocks, want %d", version, len(ps.Blocks), wantBlocks)
			}
			// Block summaries mirror the file: scanning exactly block b's
			// records must reproduce its recorded count and bounds.
			for b := range ps.Blocks {
				recs, _, err := ReadPartitionBlocks(dir, meta, i, recC, map[int]bool{b: true})
				if err != nil {
					t.Fatal(err)
				}
				if int64(len(recs)) != ps.Blocks[b].Count {
					t.Fatalf("v%d: block %d read %d records, summary says %d",
						version, b, len(recs), ps.Blocks[b].Count)
				}
				bounds := index.EmptyBox()
				for _, r := range recs {
					bounds = bounds.Union(recBox(r))
				}
				if bounds != ps.Blocks[b].Bounds {
					t.Fatalf("v%d: block %d bounds mismatch", version, b)
				}
			}
		}
		// Idempotent: everything current, nothing rebuilt, no new commit.
		gen := meta.Generation
		if n, err := BuildSummaries(dir, recC, recBox, recVal, recID, summary.Config{}); err != nil || n != 0 {
			t.Fatalf("v%d: rebuild = (%d, %v), want (0, nil)", version, n, err)
		}
		meta2, _ := ReadMetadata(dir)
		if meta2.Generation != gen {
			t.Fatalf("v%d: no-op pass bumped generation %d → %d", version, gen, meta2.Generation)
		}
	}
}

// TestCompactionMaintainsSummaries: appends invalidate nothing (the base
// sidecar still describes the base file; deltas ride alongside), a
// summarizing compaction rewrites the base+sidecar pair, and a
// non-summarizing compaction drops the entry instead of serving a stale
// sidecar.
func TestCompactionMaintainsSummaries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := makeParts(rng, 2, 60)
	dir := t.TempDir()
	if _, err := Write(dir, recC, parts, recBox, WriteOptions{Name: "d", BlockRecords: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSummaries(dir, recC, recBox, recVal, recID, summary.Config{}); err != nil {
		t.Fatal(err)
	}
	extra := makeParts(rng, 2, 25)
	if _, err := AppendDelta(dir, recC, append(extra[0], extra[1]...), recBox, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	meta, _ := ReadMetadata(dir)
	if meta.SummaryCount() != 2 {
		t.Fatalf("append should keep base sidecars, have %d", meta.SummaryCount())
	}

	// Summarizing compaction: fresh pair, count covers folded-in deltas.
	st, err := Compact(dir, recC, recBox, CompactOptions{GCGrace: -1, Summarizer: recSummarizer})
	if err != nil {
		t.Fatal(err)
	}
	if st.PartitionsCompacted == 0 {
		t.Fatal("nothing compacted")
	}
	meta, _ = ReadMetadata(dir)
	total := int64(0)
	for i := 0; i < meta.NumPartitions(); i++ {
		sm, ok := meta.SummaryFor(i)
		if !ok {
			t.Fatalf("no summary for compacted partition %d", i)
		}
		if sm.Base != meta.Partitions[i].File {
			t.Fatalf("summary base %q != live base %q", sm.Base, meta.Partitions[i].File)
		}
		ps, err := ReadSummary(dir, sm)
		if err != nil {
			t.Fatal(err)
		}
		total += ps.Count
	}
	if want := int64(2*60 + 2*25); total != want {
		t.Fatalf("summarized %d records, want %d", total, want)
	}

	// Non-summarizing compaction after another append: the rewritten
	// partitions' entries drop (no stale sidecar is ever served); untouched
	// partitions keep theirs.
	if _, err := AppendDelta(dir, recC, makeParts(rng, 1, 10)[0], recBox, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	st, err = Compact(dir, recC, recBox, CompactOptions{GCGrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st.PartitionsCompacted == 0 {
		t.Fatal("nothing compacted")
	}
	meta, _ = ReadMetadata(dir)
	if want := meta.NumPartitions() - st.PartitionsCompacted; meta.SummaryCount() != want {
		t.Fatalf("live summaries = %d, want %d (compacted %d of %d)",
			meta.SummaryCount(), want, st.PartitionsCompacted, meta.NumPartitions())
	}
}

// TestSummaryGC: sidecars of superseded base generations age out with
// their bases; live ones survive.
func TestSummaryGC(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dir := t.TempDir()
	if _, err := Write(dir, recC, makeParts(rng, 1, 40), recBox,
		WriteOptions{Name: "d", BlockRecords: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSummaries(dir, recC, recBox, recVal, recID, summary.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendDelta(dir, recC, makeParts(rng, 1, 10)[0], recBox, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	// Summarizing compaction supersedes part-00000.stp.sum's entry with
	// the rewrite's sidecar; old ages past the (zero) grace → reaped.
	if _, err := Compact(dir, recC, recBox, CompactOptions{GCGrace: 0, Summarizer: recSummarizer}); err != nil {
		t.Fatal(err)
	}
	var sums []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), summary.Suffix) {
			sums = append(sums, e.Name())
		}
	}
	meta, _ := ReadMetadata(dir)
	sm, ok := meta.SummaryFor(0)
	if !ok {
		t.Fatal("live summary missing after GC")
	}
	if !reflect.DeepEqual(sums, []string{sm.File}) {
		t.Fatalf("sidecars on disk after GC: %v, want only %q", sums, sm.File)
	}
	// An orphan younger than the grace window survives.
	orphan := filepath.Join(dir, "part-99999.stp"+summary.Suffix)
	if err := os.WriteFile(orphan, []byte("STSM"), 0o644); err != nil {
		t.Fatal(err)
	}
	mf, _ := ReadManifest(dir)
	if _, err := collectGarbage(dir, meta, mf, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); err != nil {
		t.Fatal("young orphan sidecar should survive grace window")
	}
	if _, err := collectGarbage(dir, meta, mf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("aged orphan sidecar should be reaped")
	}
}

// TestReadSummaryCorrupt: a damaged sidecar fails loudly through the
// storage path too.
func TestReadSummaryCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dir := t.TempDir()
	if _, err := Write(dir, recC, makeParts(rng, 1, 30), recBox, WriteOptions{Name: "d"}); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSummaries(dir, recC, recBox, recVal, recID, summary.Config{}); err != nil {
		t.Fatal(err)
	}
	meta, _ := ReadMetadata(dir)
	sm, ok := meta.SummaryFor(0)
	if !ok {
		t.Fatal("no summary")
	}
	path := filepath.Join(dir, sm.File)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSummary(dir, sm); err == nil {
		t.Fatal("corrupt sidecar read silently")
	}
}
