package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"st4ml/internal/codec"
	"st4ml/internal/index"
	"st4ml/internal/summary"
	"st4ml/internal/trace"
)

// CompactOptions tunes one compaction pass.
type CompactOptions struct {
	// MinDeltas is the size-tier trigger: only partitions carrying at least
	// this many delta files are rewritten (0 means 1 — any delta compacts).
	MinDeltas int
	// MinDeltaBytes additionally requires the partition's delta files to
	// total at least this many bytes (0 means no byte threshold).
	MinDeltaBytes int64
	// Tracer, when non-nil, records one trace.SpanCompact span per
	// rewritten partition.
	Tracer *trace.Tracer
	// GCGrace bounds garbage collection of obsolete files (superseded base
	// generations, folded-in deltas, orphans from crashed appends): only
	// files unreferenced by the committed manifest AND older than this are
	// removed, so readers holding the previous view keep their files.
	// Negative skips GC entirely.
	GCGrace time.Duration
	// Summarizer, when non-nil, builds a summary sidecar for every
	// rewritten partition (the approximate query tier's maintenance path):
	// the rewrite commits as a base+sidecar pair under the same manifest
	// swap. When nil, a rewritten partition's previous sidecar entry is
	// dropped — approximate queries on it fall back to exact until the
	// next summarizing pass or a BuildSummaries backfill.
	Summarizer summary.Builder
}

// CompactStats reports what a compaction pass did.
type CompactStats struct {
	// PartitionsCompacted is how many base partitions were rewritten.
	PartitionsCompacted int `json:"partitions_compacted"`
	// DeltasMerged is how many delta files were folded into rewrites.
	DeltasMerged int `json:"deltas_merged"`
	// RecordsRewritten is the total record count of the rewritten files.
	RecordsRewritten int64 `json:"records_rewritten"`
	// BytesRewritten is the on-disk size of the files written.
	BytesRewritten int64 `json:"bytes_rewritten"`
	// FilesRemoved counts obsolete files the GC deleted.
	FilesRemoved int `json:"files_removed"`
	// Generation is the manifest generation after the pass (unchanged when
	// nothing compacted).
	Generation int64 `json:"generation"`
}

// Compact is the background compactor's one pass over the dataset at dir:
// every partition whose attached deltas meet the size-tier thresholds is
// rewritten — base + deltas read through the ordinary merge-on-read path,
// Z-order re-clustered, written as a fresh generation-suffixed file in
// the current format (v3 columnar) —
// and the whole pass commits with a single atomic manifest swap that bumps
// the dataset generation. Readers are never blocked: the old base and
// delta files stay on disk until the grace-bounded GC collects them, so a
// reader holding the pre-compaction manifest keeps a complete, consistent
// view (MVCC with files). Queries before and after the swap return
// identical records; only the file layout changes.
//
// After a committing pass, OnCommit hooks for dir run outside the writer
// lock; a hook failure returns the pass's stats alongside a *HookError —
// the compaction is durable, only the notification failed.
func Compact[T any](
	dir string, c codec.Codec[T], boxOf func(T) index.Box, opts CompactOptions,
) (CompactStats, error) {
	st, committed, err := compactLocked(dir, c, boxOf, opts)
	if err != nil {
		return st, err
	}
	if committed {
		ev := CommitEvent{Dir: dir, Kind: CommitCompact, Generation: st.Generation}
		if herr := notifyCommit(ev); herr != nil {
			return st, herr
		}
	}
	return st, nil
}

// compactLocked does the pass under the directory writer lock and reports
// whether a manifest swap committed (GC-only passes do not notify).
func compactLocked[T any](
	dir string, c codec.Codec[T], boxOf func(T) index.Box, opts CompactOptions,
) (CompactStats, bool, error) {
	unlock := lockDir(dir)
	defer unlock()

	meta, err := ReadMetadata(dir)
	if err != nil {
		return CompactStats{}, false, err
	}
	mf, err := ReadManifest(dir)
	if err != nil {
		return CompactStats{}, false, err
	}
	st := CompactStats{Generation: mf.Generation}

	minDeltas := opts.MinDeltas
	if minDeltas <= 0 {
		minDeltas = 1
	}
	var targets []int
	for i := 0; i < meta.NumPartitions(); i++ {
		ds := meta.Deltas(i)
		if len(ds) < minDeltas {
			continue
		}
		var bytes int64
		for _, d := range ds {
			bytes += d.Bytes
		}
		if bytes < opts.MinDeltaBytes {
			continue
		}
		targets = append(targets, i)
	}
	if len(targets) == 0 {
		if opts.GCGrace >= 0 {
			st.FilesRemoved, err = collectGarbage(dir, meta, mf, opts.GCGrace)
		}
		return st, false, err
	}

	gen := mf.Generation + 1
	blockRecords := meta.BlockRecords
	if blockRecords <= 0 {
		blockRecords = DefaultBlockRecords
	}
	if mf.Rewrites == nil {
		mf.Rewrites = map[int]PartitionMeta{}
	}
	for _, pi := range targets {
		sp := opts.Tracer.StartSpan(0, trace.SpanCompact,
			trace.Int("partition", int64(pi)),
			trace.Int("deltas", int64(len(meta.Deltas(pi)))))
		recs, _, err := ReadPartitionPruned(dir, meta, pi, c, nil)
		if err != nil {
			sp.End(trace.Str("error", err.Error()))
			return st, false, fmt.Errorf("storage: compact partition %d: %w", pi, err)
		}
		ZCluster(recs, boxOf)
		pm, err := writePartitionV3File(dir, compactedFileName(pi, gen), c, recs, boxOf,
			blockRecords, true)
		if err != nil {
			sp.End(trace.Str("error", err.Error()))
			return st, false, fmt.Errorf("storage: compact partition %d: %w", pi, err)
		}
		pm.Format = FormatVersion
		mf.Rewrites[pi] = pm
		// The old sidecar described the old base file; drop it, and write
		// a fresh one for the rewrite when a summarizer is wired in.
		delete(mf.Summaries, pi)
		if opts.Summarizer != nil {
			bn := blockRecords
			if bn > maxBlockRecords {
				bn = maxBlockRecords // mirror the file writer's cap
			}
			ps, err := opts.Summarizer.Build(recs, bn)
			if err != nil {
				sp.End(trace.Str("error", err.Error()))
				return st, false, fmt.Errorf("storage: summarize partition %d: %w", pi, err)
			}
			sm, err := writeSummaryFile(dir, pm.File, ps)
			if err != nil {
				sp.End(trace.Str("error", err.Error()))
				return st, false, fmt.Errorf("storage: summarize partition %d: %w", pi, err)
			}
			if mf.Summaries == nil {
				mf.Summaries = map[int]SummaryMeta{}
			}
			mf.Summaries[pi] = sm
		}
		st.PartitionsCompacted++
		st.DeltasMerged += len(meta.Deltas(pi))
		st.RecordsRewritten += pm.Count
		st.BytesRewritten += pm.Bytes
		sp.End(trace.Int("records", pm.Count), trace.Int("bytes", pm.Bytes))
	}
	// Drop the folded-in deltas from the manifest.
	compacted := map[int]bool{}
	for _, pi := range targets {
		compacted[pi] = true
	}
	live := mf.Deltas[:0]
	for _, d := range mf.Deltas {
		if !compacted[d.Partition] {
			live = append(live, d)
		}
	}
	mf.Deltas = live
	crash("compact:base-written")
	mf.Generation = gen
	if err := writeManifest(dir, mf); err != nil {
		return st, false, err
	}
	st.Generation = gen
	crash("compact:swapped")

	if opts.GCGrace >= 0 {
		// Rebuild the post-swap view for the referenced-file set.
		view, err := ReadMetadata(dir)
		if err != nil {
			return st, true, err
		}
		st.FilesRemoved, err = collectGarbage(dir, view, mf, opts.GCGrace)
		if err != nil {
			return st, true, err
		}
	}
	return st, true, nil
}

// collectGarbage removes partition/delta files that the committed view no
// longer references and that are older than grace. The grace window is
// what keeps concurrently executing readers safe: they resolved their file
// set from a manifest committed strictly less than `grace` ago.
func collectGarbage(dir string, view *Metadata, mf *Manifest, grace time.Duration) (int, error) {
	referenced := map[string]bool{}
	for i, p := range view.Partitions {
		referenced[p.File] = true
		for _, d := range view.Deltas(i) {
			referenced[d.File] = true
		}
	}
	for _, sm := range mf.Summaries {
		referenced[sm.File] = true
	}
	// Files named by the raw metadata.json stay referenced even when a
	// rewrite supersedes them in the merged view: metadata.json is never
	// rewritten by the delta layer, so GC deleting its files would leave a
	// dangling index if manifest.json were ever lost. Only superseded
	// rewrite generations, folded-in deltas, and crash orphans are eligible.
	if raw, err := readRawMetadata(dir); err == nil {
		for _, p := range raw.Partitions {
			referenced[p.File] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("storage: gc: %w", err)
	}
	removed := 0
	now := time.Now()
	for _, e := range entries {
		name := e.Name()
		// Eligible: partition/delta files and summary sidecars. Sidecars of
		// superseded base generations become unreferenced the moment their
		// manifest entry is dropped or replaced, and age out like bases.
		ok := strings.HasSuffix(name, ".stp") || strings.HasSuffix(name, ".stp"+summary.Suffix)
		if e.IsDir() || referenced[name] || !ok {
			continue
		}
		if !strings.HasPrefix(name, "part-") && !strings.HasPrefix(name, "delta-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if now.Sub(info.ModTime()) < grace {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err == nil {
			removed++
		}
	}
	return removed, nil
}

// readRawMetadata loads metadata.json without the manifest merge.
func readRawMetadata(dir string) (*Metadata, error) {
	b, err := os.ReadFile(filepath.Join(dir, MetadataFile))
	if err != nil {
		return nil, err
	}
	var meta Metadata
	if err := json.Unmarshal(b, &meta); err != nil {
		return nil, err
	}
	return &meta, nil
}

// Compactor runs Compact on a fixed cadence until stopped — the background
// half of the LSM discipline, owned by whichever process owns ingest (the
// stingest daemon, or a test driving time by hand via RunOnce).
type Compactor[T any] struct {
	Dir   string
	Codec codec.Codec[T]
	BoxOf func(T) index.Box
	Opts  CompactOptions
	// OnPass, when non-nil, observes every pass (stats + error) — the hook
	// metrics and logs attach to.
	OnPass func(CompactStats, error)

	stop chan struct{}
	done chan struct{}
}

// RunOnce executes a single compaction pass.
func (cp *Compactor[T]) RunOnce() (CompactStats, error) {
	st, err := Compact(cp.Dir, cp.Codec, cp.BoxOf, cp.Opts)
	if cp.OnPass != nil {
		cp.OnPass(st, err)
	}
	return st, err
}

// Start launches the background loop at the given interval.
func (cp *Compactor[T]) Start(interval time.Duration) {
	cp.stop = make(chan struct{})
	cp.done = make(chan struct{})
	go func() {
		defer close(cp.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-cp.stop:
				return
			case <-t.C:
				cp.RunOnce() //nolint:errcheck // surfaced via OnPass
			}
		}
	}()
}

// Stop halts the background loop and waits for an in-flight pass.
func (cp *Compactor[T]) Stop() {
	if cp.stop == nil {
		return
	}
	close(cp.stop)
	<-cp.done
	cp.stop = nil
}
