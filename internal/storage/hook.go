package storage

import (
	"fmt"
	"path/filepath"
	"sync"
)

// Commit hooks are the bridge from the delta layer's commit point to the
// online subscription path: the subscribe notifier registers one per served
// dataset directory and gets poked synchronously after every manifest swap,
// so in-process ingest (stingest, stserved -demo, the benches) pushes
// updates without polling. Cross-process commits are still picked up by the
// notifier's manifest poll — hooks are an optimization plus an error
// surface, not the only delivery channel.

// CommitKind distinguishes the two operations that swap the manifest.
type CommitKind int

const (
	// CommitAppend is an AppendDelta commit: new delta files became live.
	CommitAppend CommitKind = iota + 1
	// CommitCompact is a Compact commit: live deltas were folded into
	// generation-suffixed base rewrites. Record order within the rewritten
	// partitions may differ from any earlier read (Z-order reclustering),
	// which is why subscribers resync rather than patch on this kind.
	CommitCompact
)

func (k CommitKind) String() string {
	switch k {
	case CommitAppend:
		return "append"
	case CommitCompact:
		return "compact"
	default:
		return fmt.Sprintf("CommitKind(%d)", int(k))
	}
}

// CommitEvent describes one committed manifest swap.
type CommitEvent struct {
	// Dir is the dataset directory whose manifest was swapped.
	Dir string
	// Kind is the operation that committed.
	Kind CommitKind
	// Generation is the manifest generation the swap published.
	Generation int64
	// BatchID is the append's exactly-once batch id ("" when the append
	// carried none, and always for compactions).
	BatchID string
	// Deltas are the delta files this append committed, in sequence order
	// (nil for compactions).
	Deltas []DeltaMeta
}

// HookError reports that a commit hook failed AFTER the manifest swap
// committed. The append or compaction itself is durable — callers must not
// retry the write (an exactly-once batch would dedup to a no-op and the
// notification would be lost silently); they should ack the batch as
// committed and surface the notification failure loudly.
type HookError struct {
	Err error
}

func (e *HookError) Error() string { return "storage: commit hook: " + e.Err.Error() }
func (e *HookError) Unwrap() error { return e.Err }

// commitHooks registers hook functions per cleaned dataset directory, the
// same keying as dirLocks.
var (
	commitHooksMu sync.Mutex
	commitHooks   = map[string][]*commitHook{}
)

type commitHook struct {
	fn func(CommitEvent) error
}

// OnCommit registers fn to run synchronously after every committed
// manifest swap (append or compaction) of the dataset at dir, and returns
// a cancel func that unregisters it. Hooks run after the directory's
// writer lock is released, so a hook may read the dataset — and may even
// observe a manifest newer than the event's generation if another writer
// committed in between; consumers should treat the event as "something
// committed" and re-read the manifest for truth. Hooks must be brief; a
// hook error aborts later hooks and is returned to the committing writer
// wrapped in *HookError.
func OnCommit(dir string, fn func(CommitEvent) error) (cancel func()) {
	h := &commitHook{fn: fn}
	key := filepath.Clean(dir)
	commitHooksMu.Lock()
	commitHooks[key] = append(commitHooks[key], h)
	commitHooksMu.Unlock()
	return func() {
		commitHooksMu.Lock()
		defer commitHooksMu.Unlock()
		hooks := commitHooks[key]
		for i, hh := range hooks {
			if hh == h {
				commitHooks[key] = append(append([]*commitHook{}, hooks[:i]...), hooks[i+1:]...)
				break
			}
		}
		if len(commitHooks[key]) == 0 {
			delete(commitHooks, key)
		}
	}
}

// notifyCommit runs the hooks registered for ev.Dir in registration order;
// the first failure stops the chain and comes back as *HookError.
func notifyCommit(ev CommitEvent) error {
	key := filepath.Clean(ev.Dir)
	commitHooksMu.Lock()
	hooks := append([]*commitHook(nil), commitHooks[key]...)
	commitHooksMu.Unlock()
	for _, h := range hooks {
		if err := h.fn(ev); err != nil {
			return &HookError{Err: err}
		}
	}
	return nil
}
