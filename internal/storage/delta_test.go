package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"st4ml/internal/index"
)

// readAll reads every partition through the merge-on-read path and returns
// the window-filtered records in canonical sorted wire form, so equality
// checks are byte-for-byte and independent of partitioning and file order.
func readAll(t *testing.T, dir string, windows []index.Box) []string {
	t.Helper()
	meta, err := ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	var all []rec
	for pi := 0; pi < meta.NumPartitions(); pi++ {
		recs, _, err := ReadPartitionPruned(dir, meta, pi, recC, windows)
		if err != nil {
			t.Fatalf("partition %d: %v", pi, err)
		}
		for _, r := range recs {
			if windows == nil || boxIntersectsAny(recBox(r), windows) {
				all = append(all, r)
			}
		}
	}
	enc := encodeRecs(all)
	sort.Strings(enc)
	return enc
}

func canonical(recs []rec) []string {
	enc := encodeRecs(recs)
	sort.Strings(enc)
	return enc
}

func TestAppendDeltaMergeOnRead(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	parts := makeParts(rng, 3, 80)
	dir := t.TempDir()
	if _, err := Write(dir, recC, parts, recBox, WriteOptions{Name: "d", BlockRecords: 16}); err != nil {
		t.Fatal(err)
	}
	extra := makeParts(rng, 1, 55)[0]
	mf, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{BatchID: "b1"})
	if err != nil {
		t.Fatal(err)
	}
	if mf.Generation != 1 {
		t.Fatalf("generation = %d, want 1", mf.Generation)
	}
	meta, err := ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3*80 + 55); meta.TotalCount != want {
		t.Fatalf("TotalCount = %d, want %d", meta.TotalCount, want)
	}
	if meta.DeltaCount() == 0 || meta.Generation != 1 {
		t.Fatalf("deltas=%d generation=%d", meta.DeltaCount(), meta.Generation)
	}
	var combined []rec
	for _, p := range parts {
		combined = append(combined, p...)
	}
	combined = append(combined, extra...)
	if got, want := readAll(t, dir, nil), canonical(combined); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged read %d records, want %d", len(got), len(want))
	}

	// Same batch id again: exactly-once, nothing changes.
	mf2, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{BatchID: "b1"})
	if err != nil {
		t.Fatal(err)
	}
	if mf2.Generation != 1 {
		t.Fatalf("replayed batch bumped generation to %d", mf2.Generation)
	}
	if got := readAll(t, dir, nil); !reflect.DeepEqual(got, canonical(combined)) {
		t.Fatal("replayed batch changed the dataset")
	}
}

func TestAppendDeltaErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := AppendDelta(dir, recC, []rec{{}}, recBox, AppendOptions{}); err == nil {
		t.Fatal("append to a missing dataset succeeded")
	}
	if _, err := Write(dir, recC, [][]rec{}, recBox, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendDelta(dir, recC, []rec{{}}, recBox, AppendOptions{}); err == nil {
		t.Fatal("append to a zero-partition dataset succeeded")
	}
}

func TestCompactFoldsDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	parts := makeParts(rng, 2, 60)
	dir := t.TempDir()
	if _, err := Write(dir, recC, parts, recBox, WriteOptions{Name: "c", BlockRecords: 16, Compress: true}); err != nil {
		t.Fatal(err)
	}
	var combined []rec
	for _, p := range parts {
		combined = append(combined, p...)
	}
	for b := 0; b < 3; b++ {
		extra := makeParts(rng, 1, 25)[0]
		combined = append(combined, extra...)
		if _, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	want := canonical(combined)
	if got := readAll(t, dir, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("pre-compaction read mismatch")
	}

	st, err := Compact(dir, recC, recBox, CompactOptions{MinDeltas: 1, GCGrace: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.PartitionsCompacted == 0 || st.DeltasMerged == 0 {
		t.Fatalf("stats %+v", st)
	}
	meta, err := ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.DeltaCount() != 0 {
		t.Fatalf("%d deltas survive compaction", meta.DeltaCount())
	}
	if meta.Generation != st.Generation || meta.Generation == 0 {
		t.Fatalf("generation meta=%d stats=%d", meta.Generation, st.Generation)
	}
	if got := readAll(t, dir, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("post-compaction read mismatch")
	}
	// The rewritten bases are generation-suffixed v2 files; the folded
	// deltas and superseded bases are gone (grace 0).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "delta-") {
			t.Fatalf("delta file %s survived GC", e.Name())
		}
	}
	// Only partitions that carried deltas are rewritten; those must be
	// generation-suffixed v2 files.
	rewritten := 0
	for pi := 0; pi < meta.NumPartitions(); pi++ {
		pm := meta.Partitions[pi]
		if strings.Contains(pm.File, "-g") {
			rewritten++
			if pm.Format != FormatVersion {
				t.Fatalf("rewritten partition %d file=%s format=%d", pi, pm.File, pm.Format)
			}
		}
	}
	if rewritten != st.PartitionsCompacted || rewritten == 0 {
		t.Fatalf("%d generation-suffixed partitions, stats say %d", rewritten, st.PartitionsCompacted)
	}

	// A second pass finds nothing to do.
	st2, err := Compact(dir, recC, recBox, CompactOptions{MinDeltas: 1, GCGrace: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st2.PartitionsCompacted != 0 || st2.Generation != st.Generation {
		t.Fatalf("idle pass %+v", st2)
	}
}

// TestCompactV1Dataset pins the mixed-format path: a legacy v1 dataset
// takes delta appends and compaction, the rewritten partitions switching
// to the v2 block layout via the per-partition Format override while the
// untouched ones stay v1.
func TestCompactV1Dataset(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	parts := makeParts(rng, 3, 50)
	dir := t.TempDir()
	if _, err := Write(dir, recC, parts, recBox, WriteOptions{Name: "v1", Version: 1}); err != nil {
		t.Fatal(err)
	}
	var combined []rec
	for _, p := range parts {
		combined = append(combined, p...)
	}
	// Records clustered near partition 0's extent, so routing leaves other
	// partitions delta-free and therefore un-rewritten.
	extra := make([]rec, 20)
	for i := range extra {
		extra[i] = parts[0][i%len(parts[0])]
		extra[i].T++
	}
	combined = append(combined, extra...)
	if _, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	want := canonical(combined)
	if got := readAll(t, dir, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("v1 merge-on-read mismatch")
	}
	if _, err := Compact(dir, recC, recBox, CompactOptions{MinDeltas: 1, GCGrace: 0}); err != nil {
		t.Fatal(err)
	}
	meta, err := ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	sawV1, sawV2 := false, false
	for _, pm := range meta.Partitions {
		if pm.Format == FormatVersion {
			sawV2 = true
		} else {
			sawV1 = true
		}
	}
	if !sawV1 || !sawV2 {
		t.Fatalf("expected mixed formats after partial compaction (v1=%v v2=%v)", sawV1, sawV2)
	}
	if got := readAll(t, dir, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("v1 post-compaction mismatch")
	}
}

// TestMetamorphicDeltaEquivalence is the delta layer's core contract,
// swept across layouts × block sizes × batch counts × window kinds (≥64
// combos): a store grown by delta appends must answer every window
// byte-for-byte identically to (a) the same store after compaction and
// (b) a store rebuilt from scratch with all the records.
func TestMetamorphicDeltaEquivalence(t *testing.T) {
	blockSizes := []int{7, 64}
	batchCounts := []int{1, 3}
	combos := 0
	for _, lay := range v2Layouts() {
		for _, bs := range blockSizes {
			for _, nb := range batchCounts {
				rng := rand.New(rand.NewSource(lay.seed * 100))
				parts := makeParts(rng, lay.nParts, lay.perPart)
				var combined []rec
				for _, p := range parts {
					combined = append(combined, p...)
				}

				deltaDir := t.TempDir()
				if _, err := Write(deltaDir, recC, parts, recBox, WriteOptions{
					Name: lay.name, Compress: lay.compress, BlockRecords: bs,
				}); err != nil {
					t.Fatal(err)
				}
				for b := 0; b < nb; b++ {
					extra := makeParts(rng, 1, 20+b*7)[0]
					combined = append(combined, extra...)
					if _, err := AppendDelta(deltaDir, recC, extra, recBox, AppendOptions{}); err != nil {
						t.Fatal(err)
					}
				}

				// Rebuild: every record in one fresh ingest (different
				// partitioning is fine — comparison is canonical).
				rebuildDir := t.TempDir()
				rebuilt := [][]rec{combined}
				if _, err := Write(rebuildDir, recC, rebuilt, recBox, WriteOptions{
					Name: lay.name, Compress: lay.compress, BlockRecords: bs,
				}); err != nil {
					t.Fatal(err)
				}

				windows := v2Windows(rng, parts)
				type state struct {
					name string
					dir  string
				}
				measure := func(states []state) {
					for wname, win := range windows {
						combos++
						var got [][]string
						for _, s := range states {
							got = append(got, readAll(t, s.dir, []index.Box{win}))
						}
						for i := 1; i < len(got); i++ {
							if !reflect.DeepEqual(got[0], got[i]) {
								t.Fatalf("%s/bs=%d/nb=%d/%s: %s has %d records, %s has %d",
									lay.name, bs, nb, wname,
									states[0].name, len(got[0]), states[i].name, len(got[i]))
							}
						}
					}
				}
				measure([]state{{"deltas", deltaDir}, {"rebuild", rebuildDir}})

				if _, err := Compact(deltaDir, recC, recBox, CompactOptions{MinDeltas: 1, GCGrace: 0}); err != nil {
					t.Fatal(err)
				}
				measure([]state{{"compacted", deltaDir}, {"rebuild", rebuildDir}})
			}
		}
	}
	if combos < 64 {
		t.Fatalf("only %d combos, want ≥64", combos)
	}
}

// TestDeltaCrossFormatMerge pins the mixed-generation migration path: a
// v2 gzip base takes delta appends (deltas are always written in the
// current columnar format), merge-on-read unions v2 blocks with v3 column
// streams per window, and compaction folds each touched partition into a
// v3 file via the per-partition Format override while untouched partitions
// stay v2.
func TestDeltaCrossFormatMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	parts := makeParts(rng, 3, 60)
	dir := t.TempDir()
	if _, err := Write(dir, recC, parts, recBox, WriteOptions{
		Name: "xfmt", Version: 2, Compress: true, BlockRecords: 16,
	}); err != nil {
		t.Fatal(err)
	}
	var combined []rec
	for _, p := range parts {
		combined = append(combined, p...)
	}
	// Deltas clustered near partition 0 so at least one partition stays
	// delta-free and keeps its v2 file through compaction.
	for b := 0; b < 2; b++ {
		extra := make([]rec, 25)
		for i := range extra {
			extra[i] = parts[0][(b*25+i)%len(parts[0])]
			extra[i].T += int64(b + 1)
		}
		combined = append(combined, extra...)
		if _, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	meta, err := ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 2 {
		t.Fatalf("base version = %d, want 2", meta.Version)
	}
	if meta.DeltaCount() == 0 {
		t.Fatal("no deltas recorded")
	}
	for pi := 0; pi < meta.NumPartitions(); pi++ {
		for _, dm := range meta.Deltas(pi) {
			if dm.Format != FormatVersion {
				t.Fatalf("delta %s format = %d, want %d", dm.File, dm.Format, FormatVersion)
			}
		}
	}

	// Windowed merge-on-read over the mixed store answers exactly like an
	// in-memory filter of all the records.
	windows := v2Windows(rng, parts)
	check := func(stage string) {
		t.Helper()
		for wname, win := range windows {
			var want []rec
			for _, r := range combined {
				if recBox(r).Intersects(win) {
					want = append(want, r)
				}
			}
			if got := readAll(t, dir, []index.Box{win}); !reflect.DeepEqual(got, canonical(want)) {
				t.Fatalf("%s/%s: mixed-format read %d records, want %d",
					stage, wname, len(got), len(want))
			}
		}
	}
	check("merge-on-read")

	if _, err := Compact(dir, recC, recBox, CompactOptions{MinDeltas: 1, GCGrace: 0}); err != nil {
		t.Fatal(err)
	}
	meta, err = ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.DeltaCount() != 0 {
		t.Fatalf("%d deltas survive compaction", meta.DeltaCount())
	}
	sawV2, sawV3 := false, false
	for _, pm := range meta.Partitions {
		switch {
		case pm.Format == FormatVersion:
			sawV3 = true
		case pm.Format == 0 || pm.Format == 2:
			sawV2 = true
		default:
			t.Fatalf("partition %s has unexpected format %d", pm.File, pm.Format)
		}
	}
	if !sawV2 || !sawV3 {
		t.Fatalf("expected mixed formats after partial compaction (v2=%v v3=%v)", sawV2, sawV3)
	}
	check("compacted")
}

// crashPanic is the sentinel the chaos hook throws.
type crashPanic struct{ point string }

// TestChaosCrashSafety kills the appender and the compactor at every
// injection point of their protocols and proves the invariant behind the
// manifest-swap design: at any crash the dataset reads as a consistent
// state (never torn), no committed record is lost, and replaying the
// interrupted batch commits it exactly once.
func TestChaosCrashSafety(t *testing.T) {
	appendPoints := []string{"append:delta-written", "manifest:tmp"}
	compactPoints := []string{"compact:base-written", "manifest:tmp", "compact:swapped"}
	defer func() { crashHook = nil }()

	for _, point := range appendPoints {
		rng := rand.New(rand.NewSource(81))
		parts := makeParts(rng, 2, 40)
		dir := t.TempDir()
		if _, err := Write(dir, recC, parts, recBox, WriteOptions{BlockRecords: 8}); err != nil {
			t.Fatal(err)
		}
		var base []rec
		for _, p := range parts {
			base = append(base, p...)
		}
		extra := makeParts(rng, 1, 30)[0]

		crashHook = func(p string) {
			if p == point {
				panic(crashPanic{p})
			}
		}
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("%s: append did not crash", point)
				}
			}()
			_, _ = AppendDelta(dir, recC, extra, recBox, AppendOptions{BatchID: "chaos"})
		}()
		crashHook = nil

		// Both crash points precede the manifest rename, so the batch must
		// be invisible: the dataset still reads as exactly the base.
		if got := readAll(t, dir, nil); !reflect.DeepEqual(got, canonical(base)) {
			t.Fatalf("%s: torn state after crash", point)
		}
		// Replay commits it exactly once.
		if _, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{BatchID: "chaos"}); err != nil {
			t.Fatal(err)
		}
		want := canonical(append(append([]rec{}, base...), extra...))
		if got := readAll(t, dir, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: replay lost or duplicated records", point)
		}
		// And replaying the committed batch again is a no-op.
		if _, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{BatchID: "chaos"}); err != nil {
			t.Fatal(err)
		}
		if got := readAll(t, dir, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: second replay changed the dataset", point)
		}
	}

	for _, point := range compactPoints {
		rng := rand.New(rand.NewSource(91))
		parts := makeParts(rng, 2, 40)
		dir := t.TempDir()
		if _, err := Write(dir, recC, parts, recBox, WriteOptions{BlockRecords: 8}); err != nil {
			t.Fatal(err)
		}
		var combined []rec
		for _, p := range parts {
			combined = append(combined, p...)
		}
		extra := makeParts(rng, 1, 30)[0]
		combined = append(combined, extra...)
		if _, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{}); err != nil {
			t.Fatal(err)
		}
		want := canonical(combined)

		crashHook = func(p string) {
			if p == point {
				panic(crashPanic{p})
			}
		}
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("%s: compact did not crash", point)
				}
			}()
			_, _ = Compact(dir, recC, recBox, CompactOptions{MinDeltas: 1, GCGrace: 0})
		}()
		crashHook = nil

		// Compaction only rearranges data: whichever side of the swap the
		// crash hit, the dataset must read as the same record set.
		if got := readAll(t, dir, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: records lost or duplicated by crashed compaction", point)
		}
		// A rerun completes the job and converges to zero deltas.
		if _, err := Compact(dir, recC, recBox, CompactOptions{MinDeltas: 1, GCGrace: 0}); err != nil {
			t.Fatal(err)
		}
		meta, err := ReadMetadata(dir)
		if err != nil {
			t.Fatal(err)
		}
		if meta.DeltaCount() != 0 {
			t.Fatalf("%s: %d deltas survive the rerun", point, meta.DeltaCount())
		}
		if got := readAll(t, dir, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: rerun corrupted the dataset", point)
		}
	}
}

// TestGCGraceKeepsRecentFiles pins the MVCC guard: a compaction with a
// long grace leaves the superseded files on disk for in-flight readers.
func TestGCGraceKeepsRecentFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	parts := makeParts(rng, 2, 40)
	dir := t.TempDir()
	if _, err := Write(dir, recC, parts, recBox, WriteOptions{BlockRecords: 8}); err != nil {
		t.Fatal(err)
	}
	// A reader pins the pre-append, pre-compaction view.
	oldMeta, err := ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	extra := makeParts(rng, 1, 30)[0]
	if _, err := AppendDelta(dir, recC, extra, recBox, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(dir, recC, recBox, CompactOptions{MinDeltas: 1, GCGrace: time.Hour}); err != nil {
		t.Fatal(err)
	}
	// The old view still reads in full from its original files.
	var got []rec
	for pi := 0; pi < oldMeta.NumPartitions(); pi++ {
		recs, _, err := ReadPartitionPruned(dir, oldMeta, pi, recC, nil)
		if err != nil {
			t.Fatalf("old view partition %d: %v", pi, err)
		}
		got = append(got, recs...)
	}
	var base []rec
	for _, p := range parts {
		base = append(base, p...)
	}
	if !reflect.DeepEqual(canonical(got), canonical(base)) {
		t.Fatal("pinned pre-compaction view no longer readable")
	}
}

// TestCompactorLoop drives the background loop once.
func TestCompactorLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	parts := makeParts(rng, 2, 30)
	dir := t.TempDir()
	if _, err := Write(dir, recC, parts, recBox, WriteOptions{BlockRecords: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendDelta(dir, recC, makeParts(rng, 1, 20)[0], recBox, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	var passes atomic.Int64
	cp := &Compactor[rec]{
		Dir: dir, Codec: recC, BoxOf: recBox,
		Opts:   CompactOptions{MinDeltas: 1, GCGrace: 0},
		OnPass: func(st CompactStats, err error) { passes.Add(1) },
	}
	st, err := cp.RunOnce()
	if err != nil || st.PartitionsCompacted == 0 || passes.Load() != 1 {
		t.Fatalf("RunOnce: st=%+v err=%v passes=%d", st, err, passes.Load())
	}
	cp.Start(time.Millisecond)
	defer cp.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for passes.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := passes.Load(); n < 3 {
		t.Fatalf("background loop ran %d passes", n)
	}
}

// TestMergeMetadataCarriesDeltas pins that dataset unions rebase delta
// partition indexes alongside the base partitions.
func TestMergeMetadataCarriesDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	base := t.TempDir()
	d1, d2 := filepath.Join(base, "a"), filepath.Join(base, "b")
	p1, p2 := makeParts(rng, 2, 20), makeParts(rng, 2, 20)
	if _, err := Write(d1, recC, p1, recBox, WriteOptions{BlockRecords: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(d2, recC, p2, recBox, WriteOptions{BlockRecords: 8}); err != nil {
		t.Fatal(err)
	}
	extra := makeParts(rng, 1, 15)[0]
	if _, err := AppendDelta(d2, recC, extra, recBox, AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	m1, err := ReadMetadata(d1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ReadMetadata(d2)
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeMetadata(map[string]*Metadata{"a": m1, "b": m2})
	if merged.DeltaCount() != m2.DeltaCount() || merged.DeltaCount() == 0 {
		t.Fatalf("merged deltas = %d, want %d", merged.DeltaCount(), m2.DeltaCount())
	}
	var got []rec
	for pi := 0; pi < merged.NumPartitions(); pi++ {
		recs, _, err := ReadPartitionPruned(base, merged, pi, recC, nil)
		if err != nil {
			t.Fatalf("merged partition %d: %v", pi, err)
		}
		got = append(got, recs...)
	}
	var want []rec
	for _, p := range append(p1, p2...) {
		want = append(want, p...)
	}
	want = append(want, extra...)
	if !reflect.DeepEqual(canonical(got), canonical(want)) {
		t.Fatalf("merged read %d records, want %d", len(got), len(want))
	}
}
