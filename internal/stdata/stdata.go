// Package stdata defines ST4ML's standard on-disk record schemas — the
// STEvent/STTraj-style structures of §3.1 that datasets are transformed into
// during preprocessing — together with their binary codecs and instance
// conversions. The synthetic generators in package datagen produce these
// records; the selectors, baselines, and benchmarks consume them.
package stdata

import (
	"fmt"

	"st4ml/internal/codec"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

// EventRec is a raw point event record: the [lon, lat, time, auxInfo]
// schema of the NYC dataset.
type EventRec struct {
	ID   int64
	Loc  geom.Point
	Time int64
	Aux  string
}

// Box returns the record's ST box.
func (e EventRec) Box() index.Box { return index.BoxOfPoint(e.Loc, e.Time) }

// ToEvent converts the record to an ST4ML event instance.
func (e EventRec) ToEvent() instance.Event[geom.Point, string, int64] {
	return instance.NewEvent(e.Loc, tempo.Instant(e.Time), e.Aux, e.ID)
}

// EventRecC is the binary codec for EventRec.
var EventRecC = codec.Codec[EventRec]{
	Enc: func(w *codec.Writer, e EventRec) {
		w.PutVarint(e.ID)
		codec.PointC.Enc(w, e.Loc)
		w.PutVarint(e.Time)
		w.PutString(e.Aux)
	},
	Dec: func(r *codec.Reader) EventRec {
		return EventRec{
			ID:   r.Varint(),
			Loc:  codec.PointC.Dec(r),
			Time: r.Varint(),
			Aux:  r.String(),
		}
	},
}

// TrajRec is a raw trajectory record: the [tripId, Array((lon, lat)),
// startTime] schema of the Porto dataset, with per-point times.
type TrajRec struct {
	ID     int64
	Points []geom.Point
	Times  []int64
}

// Box returns the record's ST box.
func (t TrajRec) Box() index.Box {
	mbr := geom.EmptyMBR()
	for _, p := range t.Points {
		mbr = mbr.ExpandToPoint(p)
	}
	d := tempo.Empty()
	for _, ts := range t.Times {
		d = d.ExpandTo(ts)
	}
	return index.Box3(mbr, d)
}

// ToTrajectory converts the record to an ST4ML trajectory instance.
func (t TrajRec) ToTrajectory() instance.Trajectory[instance.Unit, int64] {
	entries := make([]instance.Entry[geom.Point, instance.Unit], len(t.Points))
	for i := range t.Points {
		entries[i] = instance.Entry[geom.Point, instance.Unit]{
			Spatial:  t.Points[i],
			Temporal: tempo.Instant(t.Times[i]),
		}
	}
	return instance.NewTrajectory(entries, t.ID)
}

// TrajRecC is the binary codec for TrajRec.
var TrajRecC = codec.Codec[TrajRec]{
	Enc: func(w *codec.Writer, t TrajRec) {
		w.PutVarint(t.ID)
		w.PutUvarint(uint64(len(t.Points)))
		for i := range t.Points {
			codec.PointC.Enc(w, t.Points[i])
			w.PutVarint(t.Times[i])
		}
	},
	Dec: func(r *codec.Reader) TrajRec {
		id := r.Varint()
		n := int(r.Uvarint())
		pts := make([]geom.Point, n)
		times := make([]int64, n)
		for i := 0; i < n; i++ {
			pts[i] = codec.PointC.Dec(r)
			times[i] = r.Varint()
		}
		return TrajRec{ID: id, Points: pts, Times: times}
	},
}

// AirRec is a raw air-quality record: station location, time, and six
// indices (PM2.5, PM10, NO2, CO, O3, SO2).
type AirRec struct {
	StationID int64
	Loc       geom.Point
	Time      int64
	Indices   [6]float64
}

// Box returns the record's ST box.
func (a AirRec) Box() index.Box { return index.BoxOfPoint(a.Loc, a.Time) }

// ToEvent converts the record to an event whose value carries the indices.
func (a AirRec) ToEvent() instance.Event[geom.Point, [6]float64, int64] {
	return instance.NewEvent(a.Loc, tempo.Instant(a.Time), a.Indices, a.StationID)
}

// AirRecC is the binary codec for AirRec.
var AirRecC = codec.Codec[AirRec]{
	Enc: func(w *codec.Writer, a AirRec) {
		w.PutVarint(a.StationID)
		codec.PointC.Enc(w, a.Loc)
		w.PutVarint(a.Time)
		for _, v := range a.Indices {
			w.PutFloat64(v)
		}
	},
	Dec: func(r *codec.Reader) AirRec {
		out := AirRec{StationID: r.Varint(), Loc: codec.PointC.Dec(r), Time: r.Varint()}
		for i := range out.Indices {
			out.Indices[i] = r.Float64()
		}
		return out
	},
}

// POIRec is a raw point-of-interest record with string attributes (no
// temporal information, like the OSM dataset).
type POIRec struct {
	ID   int64
	Loc  geom.Point
	Type string
}

// Box returns the record's (purely spatial) box.
func (p POIRec) Box() index.Box { return index.Box2(p.Loc.MBR()) }

// ToEvent converts the POI to an event with an empty-time instant.
func (p POIRec) ToEvent() instance.Event[geom.Point, string, int64] {
	return instance.NewEvent(p.Loc, tempo.Instant(0), p.Type, p.ID)
}

// POIRecC is the binary codec for POIRec.
var POIRecC = codec.Codec[POIRec]{
	Enc: func(w *codec.Writer, p POIRec) {
		w.PutVarint(p.ID)
		codec.PointC.Enc(w, p.Loc)
		w.PutString(p.Type)
	},
	Dec: func(r *codec.Reader) POIRec {
		return POIRec{ID: r.Varint(), Loc: codec.PointC.Dec(r), Type: r.String()}
	},
}

// AreaRec is a postal-code-like polygonal area.
type AreaRec struct {
	ID    int64
	Shape *geom.Polygon
}

// String identifies the area for reports.
func (a AreaRec) String() string { return fmt.Sprintf("area-%d", a.ID) }
