// Package stdata defines ST4ML's standard on-disk record schemas — the
// STEvent/STTraj-style structures of §3.1 that datasets are transformed into
// during preprocessing — together with their binary codecs and instance
// conversions. The synthetic generators in package datagen produce these
// records; the selectors, baselines, and benchmarks consume them.
package stdata

import (
	"fmt"

	"st4ml/internal/codec"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

// EventRec is a raw point event record: the [lon, lat, time, auxInfo]
// schema of the NYC dataset.
type EventRec struct {
	ID   int64
	Loc  geom.Point
	Time int64
	Aux  string
}

// Box returns the record's ST box.
func (e EventRec) Box() index.Box { return index.BoxOfPoint(e.Loc, e.Time) }

// ToEvent converts the record to an ST4ML event instance.
func (e EventRec) ToEvent() instance.Event[geom.Point, string, int64] {
	return instance.NewEvent(e.Loc, tempo.Instant(e.Time), e.Aux, e.ID)
}

// EventRecC is the binary codec for EventRec. Its columnar schema maps
// every field onto a shared column (Aux is the dictionary-friendly string
// attribute), leaving an empty payload; events are point records, so the
// v3 reader can filter them on the decoded columns.
var EventRecC = codec.Codec[EventRec]{
	Enc: func(w *codec.Writer, e EventRec) {
		w.PutVarint(e.ID)
		codec.PointC.Enc(w, e.Loc)
		w.PutVarint(e.Time)
		w.PutString(e.Aux)
	},
	Dec: func(r *codec.Reader) EventRec {
		return EventRec{
			ID:   r.Varint(),
			Loc:  codec.PointC.Dec(r),
			Time: r.Varint(),
			Aux:  r.String(),
		}
	},
	Col: &codec.Columnar[EventRec]{
		Point:  true,
		HasStr: true,
		Split: func(e EventRec, b *codec.ColBlock) {
			b.IDs = append(b.IDs, e.ID)
			b.Lon = append(b.Lon, e.Loc.X)
			b.Lat = append(b.Lat, e.Loc.Y)
			b.T = append(b.T, e.Time)
			b.Str = append(b.Str, e.Aux)
		},
		Join: func(b *codec.ColBlock, i int, _ *codec.Reader) EventRec {
			return EventRec{
				ID:   b.IDs[i],
				Loc:  geom.Pt(b.Lon[i], b.Lat[i]),
				Time: b.T[i],
				Aux:  b.Str[i],
			}
		},
	},
}

// TrajRec is a raw trajectory record: the [tripId, Array((lon, lat)),
// startTime] schema of the Porto dataset, with per-point times.
type TrajRec struct {
	ID     int64
	Points []geom.Point
	Times  []int64
}

// Box returns the record's ST box.
func (t TrajRec) Box() index.Box {
	mbr := geom.EmptyMBR()
	for _, p := range t.Points {
		mbr = mbr.ExpandToPoint(p)
	}
	d := tempo.Empty()
	for _, ts := range t.Times {
		d = d.ExpandTo(ts)
	}
	return index.Box3(mbr, d)
}

// ToTrajectory converts the record to an ST4ML trajectory instance.
func (t TrajRec) ToTrajectory() instance.Trajectory[instance.Unit, int64] {
	entries := make([]instance.Entry[geom.Point, instance.Unit], len(t.Points))
	for i := range t.Points {
		entries[i] = instance.Entry[geom.Point, instance.Unit]{
			Spatial:  t.Points[i],
			Temporal: tempo.Instant(t.Times[i]),
		}
	}
	return instance.NewTrajectory(entries, t.ID)
}

// TrajRecC is the binary codec for TrajRec. Its columnar schema puts the
// first sample on the shared columns (a summary, not the full extent —
// Point stays false) and the rest in the payload, with per-point times
// delta-encoded against their predecessor.
var TrajRecC = codec.Codec[TrajRec]{
	Enc: func(w *codec.Writer, t TrajRec) {
		w.PutVarint(t.ID)
		w.PutUvarint(uint64(len(t.Points)))
		for i := range t.Points {
			codec.PointC.Enc(w, t.Points[i])
			w.PutVarint(t.Times[i])
		}
	},
	Dec: func(r *codec.Reader) TrajRec {
		id := r.Varint()
		n := int(r.Uvarint())
		pts := make([]geom.Point, n)
		times := make([]int64, n)
		for i := 0; i < n; i++ {
			pts[i] = codec.PointC.Dec(r)
			times[i] = r.Varint()
		}
		return TrajRec{ID: id, Points: pts, Times: times}
	},
	Col: &codec.Columnar[TrajRec]{
		Split: func(t TrajRec, b *codec.ColBlock) {
			b.IDs = append(b.IDs, t.ID)
			if len(t.Points) > 0 {
				b.Lon = append(b.Lon, t.Points[0].X)
				b.Lat = append(b.Lat, t.Points[0].Y)
				b.T = append(b.T, t.Times[0])
			} else {
				b.Lon = append(b.Lon, 0)
				b.Lat = append(b.Lat, 0)
				b.T = append(b.T, 0)
			}
			pay := &b.Pay
			pay.PutUvarint(uint64(len(t.Points)))
			for i := 1; i < len(t.Points); i++ {
				pay.PutFloat64(t.Points[i].X)
				pay.PutFloat64(t.Points[i].Y)
				pay.PutVarint(t.Times[i] - t.Times[i-1])
			}
		},
		Join: func(b *codec.ColBlock, i int, pay *codec.Reader) TrajRec {
			n := int(pay.Uvarint())
			// Each point past the first occupies ≥ 17 payload bytes; an
			// impossible count is corruption, caught before allocating.
			if n < 0 || (n > 1 && (n-1) > pay.Remaining()/17) {
				panic(codec.ErrCorrupt{Off: 0})
			}
			pts := make([]geom.Point, n)
			times := make([]int64, n)
			if n > 0 {
				pts[0] = geom.Pt(b.Lon[i], b.Lat[i])
				times[0] = b.T[i]
			}
			for j := 1; j < n; j++ {
				pts[j] = geom.Pt(pay.Float64(), pay.Float64())
				times[j] = times[j-1] + pay.Varint()
			}
			return TrajRec{ID: b.IDs[i], Points: pts, Times: times}
		},
	},
}

// AirRec is a raw air-quality record: station location, time, and six
// indices (PM2.5, PM10, NO2, CO, O3, SO2).
type AirRec struct {
	StationID int64
	Loc       geom.Point
	Time      int64
	Indices   [6]float64
}

// Box returns the record's ST box.
func (a AirRec) Box() index.Box { return index.BoxOfPoint(a.Loc, a.Time) }

// ToEvent converts the record to an event whose value carries the indices.
func (a AirRec) ToEvent() instance.Event[geom.Point, [6]float64, int64] {
	return instance.NewEvent(a.Loc, tempo.Instant(a.Time), a.Indices, a.StationID)
}

// AirRecC is the binary codec for AirRec. Its columnar schema keeps the
// six indices in the payload; station readings are point records.
var AirRecC = codec.Codec[AirRec]{
	Enc: func(w *codec.Writer, a AirRec) {
		w.PutVarint(a.StationID)
		codec.PointC.Enc(w, a.Loc)
		w.PutVarint(a.Time)
		for _, v := range a.Indices {
			w.PutFloat64(v)
		}
	},
	Dec: func(r *codec.Reader) AirRec {
		out := AirRec{StationID: r.Varint(), Loc: codec.PointC.Dec(r), Time: r.Varint()}
		for i := range out.Indices {
			out.Indices[i] = r.Float64()
		}
		return out
	},
	Col: &codec.Columnar[AirRec]{
		Point: true,
		Split: func(a AirRec, b *codec.ColBlock) {
			b.IDs = append(b.IDs, a.StationID)
			b.Lon = append(b.Lon, a.Loc.X)
			b.Lat = append(b.Lat, a.Loc.Y)
			b.T = append(b.T, a.Time)
			for _, v := range a.Indices {
				b.Pay.PutFloat64(v)
			}
		},
		Join: func(b *codec.ColBlock, i int, pay *codec.Reader) AirRec {
			out := AirRec{
				StationID: b.IDs[i],
				Loc:       geom.Pt(b.Lon[i], b.Lat[i]),
				Time:      b.T[i],
			}
			for j := range out.Indices {
				out.Indices[j] = pay.Float64()
			}
			return out
		},
	},
}

// POIRec is a raw point-of-interest record with string attributes (no
// temporal information, like the OSM dataset).
type POIRec struct {
	ID   int64
	Loc  geom.Point
	Type string
}

// Box returns the record's (purely spatial) box.
func (p POIRec) Box() index.Box { return index.Box2(p.Loc.MBR()) }

// ToEvent converts the POI to an event with an empty-time instant.
func (p POIRec) ToEvent() instance.Event[geom.Point, string, int64] {
	return instance.NewEvent(p.Loc, tempo.Instant(0), p.Type, p.ID)
}

// POIRecC is the binary codec for POIRec. Its columnar schema fills the
// time column with the constant 0 — exactly the record's Box2 extent, so
// POIs remain point-filterable — and dictionary-encodes Type.
var POIRecC = codec.Codec[POIRec]{
	Enc: func(w *codec.Writer, p POIRec) {
		w.PutVarint(p.ID)
		codec.PointC.Enc(w, p.Loc)
		w.PutString(p.Type)
	},
	Dec: func(r *codec.Reader) POIRec {
		return POIRec{ID: r.Varint(), Loc: codec.PointC.Dec(r), Type: r.String()}
	},
	Col: &codec.Columnar[POIRec]{
		Point:  true,
		HasStr: true,
		Split: func(p POIRec, b *codec.ColBlock) {
			b.IDs = append(b.IDs, p.ID)
			b.Lon = append(b.Lon, p.Loc.X)
			b.Lat = append(b.Lat, p.Loc.Y)
			b.T = append(b.T, 0)
			b.Str = append(b.Str, p.Type)
		},
		Join: func(b *codec.ColBlock, i int, _ *codec.Reader) POIRec {
			return POIRec{ID: b.IDs[i], Loc: geom.Pt(b.Lon[i], b.Lat[i]), Type: b.Str[i]}
		},
	},
}

// AreaRec is a postal-code-like polygonal area.
type AreaRec struct {
	ID    int64
	Shape *geom.Polygon
}

// String identifies the area for reports.
func (a AreaRec) String() string { return fmt.Sprintf("area-%d", a.ID) }
