package stdata

import (
	"fmt"

	"st4ml/internal/engine"
	"st4ml/internal/index"
	"st4ml/internal/selection"
	"st4ml/internal/storage"
	"st4ml/internal/summary"
	"st4ml/internal/trace"
)

// This file is the approximate query tier's orchestration (see DESIGN.md
// "Approximate query tier"): per partition it loads the committed summary
// sidecar, classifies each file block against the window — pruned (bounds
// miss), certain (window contains bounds: exact count, certain digest),
// uncertain (straddling: grid envelope) or scanned (boundary blocks read
// exactly when requested) — folds live delta files in as exact records,
// and closes the partition scope so the partition-level multi-resolution
// grids can clamp the envelope. Partitions without a usable sidecar fall
// back to a transparent exact scan, flagged in the result and the explain
// tree. Every answer carries the containment guarantee the summary
// package's test wall pins: exact ∈ [estimate-bound, estimate+bound].

// ApproxRequest tunes one approximate aggregate query.
type ApproxRequest struct {
	// Agg selects the aggregate: summary.AggCount (default), AggHist, or
	// AggQuantile.
	Agg string
	// Q is the quantile in [0,1] (AggQuantile only).
	Q float64
	// Res is the histogram resolution in cells per axis (AggHist only).
	Res int
	// ScanBoundary reads blocks straddling the window boundary exactly
	// instead of bounding them from their grids — a tighter envelope for
	// more I/O.
	ScanBoundary bool
	// Partitions restricts the walk to exactly these partition ids — the
	// sub-query path of a cluster shard whose router already pruned. Nil
	// prunes locally from the window.
	Partitions []int
	// Partial returns the mergeable wire form instead of a finalized
	// result (cluster shards; the router merges and finalizes).
	Partial bool
}

func (s schema[T]) idOf() func(T) int64 {
	if s.spec.IDOf != nil {
		return s.spec.IDOf
	}
	return func(T) int64 { return 0 }
}

func (s schema[T]) Summarizer(cfg summary.Config) summary.Builder {
	return summary.NewBuilder(s.spec.BoxOf, s.spec.Value, s.idOf(), cfg)
}

func (s schema[T]) BuildSummaries(dir string, cfg summary.Config) (int, error) {
	return storage.BuildSummaries(dir, s.spec.Codec, s.spec.BoxOf, s.spec.Value, s.idOf(), cfg)
}

func (s schema[T]) ApproxQuery(
	ctx *engine.Context, dir string, meta *storage.Metadata,
	w selection.Window, req ApproxRequest,
) (*summary.Result, *summary.Partial, error) {
	spec := summary.Spec{Window: w.Box(), Agg: req.Agg, Q: req.Q, Res: req.Res}
	if err := spec.Validate(s.spec.Value != nil); err != nil {
		return nil, nil, err
	}
	acc := summary.NewAccumulator(spec)
	wb := spec.Window

	ids := req.Partitions
	if ids != nil {
		for _, id := range ids {
			if id < 0 || id >= meta.NumPartitions() {
				return nil, nil, fmt.Errorf("stdata: schema %s: approx partition %d out of range [0,%d)",
					s.spec.Name, id, meta.NumPartitions())
			}
		}
	} else {
		ids = meta.Prune(w.Space, w.Time)
	}

	sp := ctx.StartSpan(trace.SpanApprox,
		trace.Str("dataset", meta.Name),
		trace.Str("agg", acc.Spec().Agg),
		trace.Int("partitions", int64(len(ids))))
	sctx := ctx.WithSpan(sp)

	val := s.spec.Value
	if val == nil {
		val = func(T) (float64, bool) { return 0, false }
	}
	idOf := s.idOf()
	record := func(r T) {
		b := s.spec.BoxOf(r)
		if !b.Intersects(wb) {
			return
		}
		v, okv := val(r)
		acc.Record(b, v, okv, idOf(r))
	}

	for _, id := range ids {
		psp := sctx.StartSpan(trace.SpanApproxPart, trace.Int("partition", int64(id)))
		if err := s.approxPartition(acc, dir, meta, id, wb, req.ScanBoundary, record); err != nil {
			psp.End(trace.Str("error", err.Error()))
			sp.End(trace.Str("error", err.Error()))
			return nil, nil, err
		}
		pp, _ := acc.LastPart()
		psp.End(
			trace.Str("source", pp.Source),
			trace.Int("summary_blocks", pp.SummaryBlocks),
			trace.Int("scanned_blocks", pp.ScannedBlocks),
			trace.Int("scanned_records", pp.ScannedRecords))
	}

	if req.Partial {
		p := acc.Partial()
		sp.End(
			trace.Int("summary_blocks", p.SummaryBlocks),
			trace.Int("scanned_blocks", p.ScannedBlocks),
			trace.Int("scanned_records", p.ScannedRecords),
			trace.Bool("fallback", p.Fallback))
		ctx.Metrics.AddApprox(p.SummaryBlocks, p.ScannedBlocks, p.ScannedRecords)
		return nil, p, nil
	}
	res := acc.Finalize()
	sp.End(
		trace.Int("summary_blocks", res.SummaryBlocks),
		trace.Int("scanned_blocks", res.ScannedBlocks),
		trace.Int("scanned_records", res.ScannedRecords),
		trace.Bool("fallback", res.Fallback))
	ctx.Metrics.AddApprox(res.SummaryBlocks, res.ScannedBlocks, res.ScannedRecords)
	return res, nil, nil
}

// approxPartition folds one partition into the accumulator: sidecar-backed
// classification when a current sidecar exists, transparent exact fallback
// otherwise, plus the partition's live delta files either way.
func (s schema[T]) approxPartition(
	acc *summary.Accumulator, dir string, meta *storage.Metadata, id int,
	wb index.Box, scanBoundary bool, record func(T),
) error {
	sm, ok := meta.SummaryFor(id)
	if !ok {
		// No usable sidecar: transparent exact fallback over the live
		// merge-on-read view (base + deltas), flagged on the result.
		acc.Fallback()
		acc.BeginPartition(id)
		recs, rst, err := storage.ReadPartitionPruned(dir, meta, id, s.spec.Codec, []index.Box{wb})
		if err != nil {
			acc.EndPartition(nil)
			return err
		}
		acc.BlockScanned(rst.BlocksScanned + rst.DeltasRead)
		acc.AddBytesRead(rst.BytesRead)
		for _, r := range recs {
			record(r)
		}
		acc.EndPartition(nil)
		return nil
	}

	// A corrupt sidecar fails the query loudly — the tier never trades a
	// checksum violation for a silently skewed estimate.
	ps, err := storage.ReadSummary(dir, sm)
	if err != nil {
		return err
	}
	if ps.Count != meta.Partitions[id].Count {
		return fmt.Errorf("stdata: summary %s covers %d records, base has %d",
			sm.File, ps.Count, meta.Partitions[id].Count)
	}
	acc.AddBytesRead(sm.Bytes)

	acc.BeginPartition(id)
	var scanSet map[int]bool
	for bi := range ps.Blocks {
		bs := &ps.Blocks[bi]
		switch {
		case bs.Count == 0 || !bs.Bounds.Intersects(wb):
			// pruned: contributes nothing to any envelope
		case wb.Contains(bs.Bounds):
			acc.BlockCertain(bs)
		case scanBoundary:
			if scanSet == nil {
				scanSet = map[int]bool{}
			}
			scanSet[bi] = true
		default:
			acc.BlockUncertain(bs)
		}
	}
	if len(scanSet) > 0 {
		recs, rst, err := storage.ReadPartitionBlocks(dir, meta, id, s.spec.Codec, scanSet)
		if err != nil {
			acc.EndPartition(nil)
			return err
		}
		acc.BlockScanned(len(scanSet))
		acc.AddBytesRead(rst.BytesRead)
		for _, r := range recs {
			record(r)
		}
	}
	// Live deltas are not covered by the base sidecar: fold their records
	// in exactly. Scanned records in scope disable the partition-grid
	// clamp automatically (the grids describe base records only).
	for _, dm := range meta.Deltas(id) {
		if dm.Count == 0 || !dm.Box().Intersects(wb) {
			continue // manifest bounds prove no record can match
		}
		recs, err := storage.ReadDelta(dir, meta.Compressed, dm, s.spec.Codec)
		if err != nil {
			acc.EndPartition(nil)
			return err
		}
		acc.BlockScanned(1)
		acc.AddBytesRead(dm.Bytes)
		for _, r := range recs {
			record(r)
		}
	}
	acc.EndPartition(ps)
	return nil
}
