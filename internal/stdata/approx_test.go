package stdata

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/selection"
	"st4ml/internal/storage"
	"st4ml/internal/summary"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

// approxEvents builds a seeded clustered corpus over [0,100)² × [0,1000):
// a handful of gaussian hot spots plus a uniform background, so windows at
// any selectivity see realistically skewed densities.
func approxEvents(rng *rand.Rand, n int) []EventRec {
	type spot struct{ x, y, t, sx, st float64 }
	spots := make([]spot, 5)
	for i := range spots {
		spots[i] = spot{
			x: rng.Float64() * 100, y: rng.Float64() * 100, t: rng.Float64() * 1000,
			sx: 2 + rng.Float64()*6, st: 20 + rng.Float64()*80,
		}
	}
	clip := func(v, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, v)) }
	out := make([]EventRec, n)
	for i := range out {
		var x, y, tm float64
		if rng.Float64() < 0.8 {
			s := spots[rng.Intn(len(spots))]
			x = clip(s.x+rng.NormFloat64()*s.sx, 0, 100)
			y = clip(s.y+rng.NormFloat64()*s.sx, 0, 100)
			tm = clip(s.t+rng.NormFloat64()*s.st, 0, 1000)
		} else {
			x, y, tm = rng.Float64()*100, rng.Float64()*100, rng.Float64()*1000
		}
		out[i] = EventRec{ID: int64(i % 37), Loc: geom.Pt(x, y), Time: int64(tm), Aux: "e"}
	}
	return out
}

// approxWindow draws a seeded window whose edge length scales with f
// (fraction of the domain per axis), clipped to the domain.
func approxWindow(rng *rand.Rand, f float64) selection.Window {
	ex, et := 100*f, 1000*f
	x := rng.Float64() * (100 - ex)
	y := rng.Float64() * (100 - ex)
	tm := rng.Float64() * (1000 - et)
	return selection.Window{
		Space: geom.Box(x, y, x+ex, y+ex),
		Time:  tempo.New(int64(tm), int64(tm+et)),
	}
}

// exactQuantile computes the rank-ceil(q·n) order statistic brute-force
// (same definition the summary package's wall pins).
func exactQuantile(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	r := int(math.Ceil(q * float64(len(s))))
	if r < 1 {
		r = 1
	}
	return s[r-1]
}

// checkProvenance asserts the acceptance invariant: per-partition
// provenance sums exactly to the result's totals.
func checkProvenance(t *testing.T, res *summary.Result) {
	t.Helper()
	var sb, scb, scr int64
	for _, p := range res.Parts {
		sb += p.SummaryBlocks
		scb += p.ScannedBlocks
		scr += p.ScannedRecords
	}
	if sb != res.SummaryBlocks || scb != res.ScannedBlocks || scr != res.ScannedRecords {
		t.Fatalf("provenance drift: parts sum to (%d,%d,%d), totals (%d,%d,%d)",
			sb, scb, scr, res.SummaryBlocks, res.ScannedBlocks, res.ScannedRecords)
	}
}

// checkContainment asserts the containment guarantee for one finalized
// result against the brute-forced exact answers.
func checkContainment(t *testing.T, tag string, res *summary.Result, recs []EventRec, w selection.Window, q float64) {
	t.Helper()
	wb := w.Box()
	var exact int64
	var vals []float64
	for _, r := range recs {
		if r.Box().Intersects(wb) {
			exact++
			vals = append(vals, float64(r.Time))
		}
	}
	if exact < res.CountLo || exact > res.CountHi {
		t.Fatalf("%s: exact count %d outside [%d,%d]", tag, exact, res.CountLo, res.CountHi)
	}
	const eps = 1e-9
	switch res.Agg {
	case summary.AggCount:
		if float64(exact) < res.Estimate-res.Bound-eps || float64(exact) > res.Estimate+res.Bound+eps {
			t.Fatalf("%s: exact count %d outside %v±%v", tag, exact, res.Estimate, res.Bound)
		}
	case summary.AggHist:
		for i, c := range res.Cells {
			var ce int64
			for _, r := range recs {
				if c.Box.Intersects(r.Box()) && r.Box().Intersects(wb) {
					ce++
				}
			}
			if ce < c.Lo || ce > c.Hi {
				t.Fatalf("%s: cell %d exact %d outside [%d,%d]", tag, i, ce, c.Lo, c.Hi)
			}
			if float64(ce) < c.Estimate-c.Bound-eps || float64(ce) > c.Estimate+c.Bound+eps {
				t.Fatalf("%s: cell %d exact %d outside %v±%v", tag, i, ce, c.Estimate, c.Bound)
			}
		}
	case summary.AggQuantile:
		if exact == 0 {
			break // undefined; the count envelope qualifies the empty selection
		}
		ex := exactQuantile(vals, q)
		if ex < res.Estimate-res.Bound-eps || ex > res.Estimate+res.Bound+eps {
			t.Fatalf("%s: exact quantile %v outside %v±%v", tag, ex, res.Estimate, res.Bound)
		}
	}
	if res.Exact && res.Bound != 0 {
		t.Fatalf("%s: Exact with non-zero bound %v", tag, res.Bound)
	}
	checkProvenance(t, res)
}

// TestApproxMetamorphicWall is the statistical test wall: storage format ×
// planner layout × block size × window selectivity × aggregate, every
// combination through the full on-disk ApproxQuery path, asserting
// exact ∈ [estimate−bound, estimate+bound] and that per-partition
// provenance sums to the result totals. 6 layouts × 6 windows × 3
// aggregates = 108 seeded combinations.
func TestApproxMetamorphicWall(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := Lookup("nyc")
	rng := rand.New(rand.NewSource(412))
	recs := approxEvents(rng, 700)

	layouts := []struct {
		name         string
		version      int
		blockRecords int
		gt, gs       int
		scanBoundary bool
	}{
		{"v1-mono", 1, 0, 2, 2, false},
		{"v2-b16", 2, 16, 2, 2, false},
		{"v2-b64-scan", 2, 64, 3, 3, true},
		{"v3-b16", 3, 16, 3, 3, false},
		{"v3-b64", 3, 64, 2, 2, false},
		{"v3-b32-scan", 3, 32, 4, 4, true},
	}
	fracs := []float64{0.05, 0.1, 0.2, 0.5, 0.8, 1.0}
	aggs := []string{summary.AggCount, summary.AggHist, summary.AggQuantile}

	for _, lay := range layouts {
		dir := t.TempDir()
		meta, err := sch.Ingest(ctx, recs, dir, sch.DefaultPlanner(lay.gt, lay.gs),
			selection.IngestOptions{
				Name: lay.name, SampleFrac: 0.5, Seed: 1,
				Version: lay.version, BlockRecords: lay.blockRecords,
			})
		if err != nil {
			t.Fatal(err)
		}
		if n, err := sch.BuildSummaries(dir, summary.Config{}); err != nil || n != meta.NumPartitions() {
			t.Fatalf("%s: BuildSummaries = (%d, %v), want %d", lay.name, n, err, meta.NumPartitions())
		}
		meta, err = storage.ReadMetadata(dir)
		if err != nil {
			t.Fatal(err)
		}
		wrng := rand.New(rand.NewSource(int64(len(lay.name)) * 131))
		for wi, f := range fracs {
			w := approxWindow(wrng, f)
			for _, agg := range aggs {
				q := wrng.Float64()
				res, _, err := sch.ApproxQuery(ctx, dir, meta, w, ApproxRequest{
					Agg: agg, Q: q, Res: 3, ScanBoundary: lay.scanBoundary,
				})
				if err != nil {
					t.Fatalf("%s w%d %s: %v", lay.name, wi, agg, err)
				}
				if res.Fallback {
					t.Fatalf("%s w%d %s: unexpected exact fallback with sidecars present", lay.name, wi, agg)
				}
				checkContainment(t, lay.name+"/"+agg, res, recs, w, q)
			}
		}
	}
}

// TestApproxFallbackWithoutSummaries: a dataset with no sidecars answers
// approx queries through the transparent exact-scan fallback — flagged,
// zero-width, and still provenance-consistent.
func TestApproxFallbackWithoutSummaries(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := Lookup("nyc")
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	recs := approxEvents(rng, 300)
	meta, err := sch.Ingest(ctx, recs, dir, sch.DefaultPlanner(2, 2),
		selection.IngestOptions{Name: "nosum", SampleFrac: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := approxWindow(rng, 0.4)
	res, _, err := sch.ApproxQuery(ctx, dir, meta, w, ApproxRequest{Agg: summary.AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback || !res.Exact || res.Bound != 0 {
		t.Fatalf("fallback result: fallback=%v exact=%v bound=%v", res.Fallback, res.Exact, res.Bound)
	}
	for _, p := range res.Parts {
		if p.Source != summary.SourceScan {
			t.Fatalf("partition %d source %q, want %q", p.ID, p.Source, summary.SourceScan)
		}
	}
	checkContainment(t, "fallback", res, recs, w, 0)
}

// TestApproxCorruptSidecarFailsLoudly: a flipped byte in the sidecar fails
// the approx query — never a silent mis-estimate, never a silent fallback.
func TestApproxCorruptSidecarFailsLoudly(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := Lookup("nyc")
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(6))
	recs := approxEvents(rng, 200)
	meta, err := sch.Ingest(ctx, recs, dir, sch.DefaultPlanner(1, 2),
		selection.IngestOptions{Name: "corrupt", SampleFrac: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sch.BuildSummaries(dir, summary.Config{}); err != nil {
		t.Fatal(err)
	}
	meta, _ = storage.ReadMetadata(dir)
	sm, ok := meta.SummaryFor(0)
	if !ok {
		t.Fatal("no sidecar for partition 0")
	}
	path := filepath.Join(dir, sm.File)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x20
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	w := selection.Window{Space: geom.Box(0, 0, 100, 100), Time: tempo.New(0, 1000)}
	if _, _, err := sch.ApproxQuery(ctx, dir, meta, w, ApproxRequest{}); err == nil {
		t.Fatal("corrupt sidecar answered silently")
	}
}

// TestApproxWithDeltas: records appended after summarization are folded in
// exactly (the base sidecar still serves the base), and compaction with a
// summarizer restores pure-summary answers covering everything.
func TestApproxWithDeltas(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := Lookup("nyc")
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	base := approxEvents(rng, 400)
	meta, err := sch.Ingest(ctx, base, dir, sch.DefaultPlanner(2, 2),
		selection.IngestOptions{Name: "delta", SampleFrac: 0.5, Seed: 1, BlockRecords: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sch.BuildSummaries(dir, summary.Config{}); err != nil {
		t.Fatal(err)
	}
	extra := approxEvents(rand.New(rand.NewSource(77)), 120)
	if _, err := sch.Append(extra, dir, "b1"); err != nil {
		t.Fatal(err)
	}
	meta, err = storage.ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]EventRec(nil), base...), extra...)
	w := selection.Window{Space: geom.Box(0, 0, 100, 100), Time: tempo.New(0, 1000)}
	res, _, err := sch.ApproxQuery(ctx, dir, meta, w, ApproxRequest{Agg: summary.AggQuantile, Q: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Fatal("deltas must not force a fallback")
	}
	if res.ScannedRecords == 0 {
		t.Fatal("delta records should be scanned exactly")
	}
	if res.CountLo != int64(len(all)) || res.CountHi != int64(len(all)) {
		t.Fatalf("full-domain count [%d,%d], want exactly %d", res.CountLo, res.CountHi, len(all))
	}
	checkContainment(t, "deltas", res, all, w, 0.5)

	// Summarizing compaction folds the deltas into fresh base+sidecar
	// pairs; the same query now needs no exact record scans at all.
	if _, err := sch.Compact(dir, storage.CompactOptions{
		Summarizer: sch.Summarizer(summary.Config{}),
	}); err != nil {
		t.Fatal(err)
	}
	meta, err = storage.ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = sch.ApproxQuery(ctx, dir, meta, w, ApproxRequest{Agg: summary.AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScannedRecords != 0 || res.Fallback {
		t.Fatalf("post-compaction query scanned %d records (fallback=%v), want summaries only",
			res.ScannedRecords, res.Fallback)
	}
	checkContainment(t, "post-compact", res, all, w, 0)
}

// TestApproxPartialMergeMatchesFlat pins mergeable-sketch semantics: the
// partials of disjoint partition subsets, merged at a coordinator and
// finalized, must answer identically to the flat single-pass run — what
// the cluster router relies on.
func TestApproxPartialMergeMatchesFlat(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := Lookup("nyc")
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	recs := approxEvents(rng, 500)
	meta, err := sch.Ingest(ctx, recs, dir, sch.DefaultPlanner(2, 2),
		selection.IngestOptions{Name: "merge", SampleFrac: 0.5, Seed: 1, BlockRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sch.BuildSummaries(dir, summary.Config{}); err != nil {
		t.Fatal(err)
	}
	meta, _ = storage.ReadMetadata(dir)
	for _, agg := range []string{summary.AggCount, summary.AggHist, summary.AggQuantile} {
		w := approxWindow(rng, 0.5)
		req := ApproxRequest{Agg: agg, Q: 0.5, Res: 2}
		flat, _, err := sch.ApproxQuery(ctx, dir, meta, w, req)
		if err != nil {
			t.Fatal(err)
		}
		ids := meta.Prune(w.Space, w.Time)
		if len(ids) < 2 {
			t.Fatalf("%s: window hit %d partitions, need ≥2 for a split", agg, len(ids))
		}
		acc := summary.NewAccumulator(summary.Spec{Window: w.Box(), Agg: agg, Q: 0.5, Res: 2})
		for _, half := range [][]int{ids[:len(ids)/2], ids[len(ids)/2:]} {
			sub := req
			sub.Partitions = half
			sub.Partial = true
			_, p, err := sch.ApproxQuery(ctx, dir, meta, w, sub)
			if err != nil {
				t.Fatal(err)
			}
			if err := acc.MergePartial(p); err != nil {
				t.Fatal(err)
			}
		}
		merged := acc.Finalize()
		if merged.CountLo != flat.CountLo || merged.CountHi != flat.CountHi {
			t.Fatalf("%s: merged envelope [%d,%d], flat [%d,%d]",
				agg, merged.CountLo, merged.CountHi, flat.CountLo, flat.CountHi)
		}
		if math.Abs(merged.Estimate-flat.Estimate) > 1e-6*(1+math.Abs(flat.Estimate)) {
			t.Fatalf("%s: merged estimate %v, flat %v", agg, merged.Estimate, flat.Estimate)
		}
		if merged.SummaryBlocks != flat.SummaryBlocks || len(merged.Parts) != len(flat.Parts) {
			t.Fatalf("%s: merged provenance (%d blocks, %d parts), flat (%d, %d)",
				agg, merged.SummaryBlocks, len(merged.Parts), flat.SummaryBlocks, len(flat.Parts))
		}
		checkContainment(t, "merged/"+agg, merged, recs, w, 0.5)
	}
}

// TestApproxMetricsAndExplain: one approx query lands its totals in the
// engine metrics and its provenance tree in the explain output, the two
// agreeing with the result envelope.
func TestApproxMetricsAndExplain(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := Lookup("nyc")
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	recs := approxEvents(rng, 300)
	meta, err := sch.Ingest(ctx, recs, dir, sch.DefaultPlanner(2, 2),
		selection.IngestOptions{Name: "explain", SampleFrac: 0.5, Seed: 1, BlockRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sch.BuildSummaries(dir, summary.Config{}); err != nil {
		t.Fatal(err)
	}
	meta, _ = storage.ReadMetadata(dir)
	ctx.Metrics.Reset()
	tr := trace.New()
	tctx := ctx.WithTracer(tr, 0)
	w := approxWindow(rng, 0.3)
	res, _, err := sch.ApproxQuery(tctx, dir, meta, w, ApproxRequest{Agg: summary.AggCount})
	if err != nil {
		t.Fatal(err)
	}
	snap := ctx.Metrics.Snapshot()
	if snap.ApproxQueries != 1 ||
		snap.ApproxSummaryBlocks != res.SummaryBlocks ||
		snap.ApproxScannedBlocks != res.ScannedBlocks ||
		snap.ApproxScannedRecords != res.ScannedRecords {
		t.Fatalf("metrics %+v disagree with result (%d,%d,%d)",
			snap, res.SummaryBlocks, res.ScannedBlocks, res.ScannedRecords)
	}
	ex := trace.Build(tr.Snapshot())
	if ex == nil || ex.Approx == nil {
		t.Fatal("no approx section in explain")
	}
	if ex.Approx.Agg != summary.AggCount ||
		ex.Approx.SummaryBlocks != res.SummaryBlocks ||
		ex.Approx.ScannedBlocks != res.ScannedBlocks ||
		ex.Approx.ScannedRecords != res.ScannedRecords ||
		ex.Approx.Fallback != res.Fallback {
		t.Fatalf("explain %+v disagrees with result", ex.Approx)
	}
	if len(ex.Approx.Parts) != len(res.Parts) {
		t.Fatalf("explain has %d parts, result %d", len(ex.Approx.Parts), len(res.Parts))
	}
	var sb, scb, scr int64
	for i, p := range ex.Approx.Parts {
		if p.ID != int64(res.Parts[i].ID) || p.Source != res.Parts[i].Source {
			t.Fatalf("explain part %d = %+v, result part %+v", i, p, res.Parts[i])
		}
		sb += p.SummaryBlocks
		scb += p.ScannedBlocks
		scr += p.ScannedRecords
	}
	if sb != ex.Approx.SummaryBlocks || scb != ex.Approx.ScannedBlocks || scr != ex.Approx.ScannedRecords {
		t.Fatalf("explain parts sum (%d,%d,%d) != totals (%d,%d,%d)",
			sb, scb, scr, ex.Approx.SummaryBlocks, ex.Approx.ScannedBlocks, ex.Approx.ScannedRecords)
	}
}
