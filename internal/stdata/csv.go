package stdata

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"st4ml/internal/geom"
)

// CSV readers for external data in the standard schemas — the
// "transform their datasets from external storage into ST4ML's data
// standard" path of §3.1. Formats:
//
//	events:       id,lon,lat,time[,aux]
//	trajectories: id,"lon lat lon lat ...","t t t ..."
//
// A header row is detected (non-numeric first field) and skipped.

// ReadEventsCSV parses event records.
func ReadEventsCSV(r io.Reader) ([]EventRec, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	var out []EventRec
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stdata: events csv: %w", err)
		}
		line++
		if len(rec) < 4 {
			return nil, fmt.Errorf("stdata: events csv line %d: need >= 4 fields", line)
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("stdata: events csv line %d: bad id %q", line, rec[0])
		}
		lon, err1 := strconv.ParseFloat(rec[1], 64)
		lat, err2 := strconv.ParseFloat(rec[2], 64)
		t, err3 := strconv.ParseInt(rec[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("stdata: events csv line %d: bad coordinates/time", line)
		}
		e := EventRec{ID: id, Loc: geom.Pt(lon, lat), Time: t}
		if len(rec) > 4 {
			e.Aux = rec[4]
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("stdata: events csv: no records")
	}
	return out, nil
}

// ReadTrajsCSV parses trajectory records with space-separated coordinate
// and timestamp lists.
func ReadTrajsCSV(r io.Reader) ([]TrajRec, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	cr.TrimLeadingSpace = true
	var out []TrajRec
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stdata: trajs csv: %w", err)
		}
		line++
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("stdata: trajs csv line %d: bad id %q", line, rec[0])
		}
		coords := strings.Fields(rec[1])
		if len(coords)%2 != 0 {
			return nil, fmt.Errorf("stdata: trajs csv line %d: odd coordinate count", line)
		}
		pts := make([]geom.Point, len(coords)/2)
		for i := range pts {
			x, err1 := strconv.ParseFloat(coords[2*i], 64)
			y, err2 := strconv.ParseFloat(coords[2*i+1], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("stdata: trajs csv line %d: bad coordinate", line)
			}
			pts[i] = geom.Pt(x, y)
		}
		tsFields := strings.Fields(rec[2])
		if len(tsFields) != len(pts) {
			return nil, fmt.Errorf("stdata: trajs csv line %d: %d points but %d timestamps",
				line, len(pts), len(tsFields))
		}
		times := make([]int64, len(tsFields))
		for i, f := range tsFields {
			t, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("stdata: trajs csv line %d: bad timestamp %q", line, f)
			}
			times[i] = t
		}
		if len(pts) == 0 {
			return nil, fmt.Errorf("stdata: trajs csv line %d: empty trajectory", line)
		}
		out = append(out, TrajRec{ID: id, Points: pts, Times: times})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("stdata: trajs csv: no records")
	}
	return out, nil
}

// WriteEventsCSV renders events in the ingestion format (with header).
func WriteEventsCSV(w io.Writer, recs []EventRec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "lon", "lat", "time", "aux"}); err != nil {
		return err
	}
	for _, e := range recs {
		row := []string{
			strconv.FormatInt(e.ID, 10),
			strconv.FormatFloat(e.Loc.X, 'f', -1, 64),
			strconv.FormatFloat(e.Loc.Y, 'f', -1, 64),
			strconv.FormatInt(e.Time, 10),
			e.Aux,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTrajsCSV renders trajectories in the ingestion format (with header).
func WriteTrajsCSV(w io.Writer, recs []TrajRec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "points", "times"}); err != nil {
		return err
	}
	for _, tr := range recs {
		var pts strings.Builder
		for i, p := range tr.Points {
			if i > 0 {
				pts.WriteByte(' ')
			}
			pts.WriteString(strconv.FormatFloat(p.X, 'f', -1, 64))
			pts.WriteByte(' ')
			pts.WriteString(strconv.FormatFloat(p.Y, 'f', -1, 64))
		}
		var times strings.Builder
		for i, t := range tr.Times {
			if i > 0 {
				times.WriteByte(' ')
			}
			times.WriteString(strconv.FormatInt(t, 10))
		}
		if err := cw.Write([]string{
			strconv.FormatInt(tr.ID, 10), pts.String(), times.String(),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
