package stdata

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/index"
	"st4ml/internal/partition"
	"st4ml/internal/pointpat"
	"st4ml/internal/selection"
	"st4ml/internal/storage"
	"st4ml/internal/summary"
	"st4ml/internal/trace"
)

// This file is the dataset registry: every standard schema's typed
// machinery (codec, ST box, CSV reader, selection entry points) bundled
// behind an untyped Schema interface, so the CLI commands and the serving
// daemon dispatch on a dataset name instead of each repeating a
// nyc|porto|air|osm type switch.

// Spec is the typed bundle for one standard schema.
type Spec[T any] struct {
	// Name is the registry key ("nyc", "porto", ...).
	Name string
	// Codec is the record's binary codec.
	Codec codec.Codec[T]
	// BoxOf extracts a record's ST box.
	BoxOf func(T) index.Box
	// CSV parses the schema's CSV layout; nil when the schema has none.
	CSV func(io.Reader) ([]T, error)
	// Spatial2D marks schemas with no temporal extent (OSM POIs), which
	// plan with a 2-d STR partitioner instead of T-STR.
	Spatial2D bool
	// Value extracts the payload attribute the approximate tier digests
	// (quantile queries); nil marks schemas without one — approximate
	// counts and histograms still work, quantiles are rejected.
	Value func(T) (float64, bool)
	// IDOf extracts the record's entity id for distinct-ID sketches.
	IDOf func(T) int64
}

// QueryOptions tunes one served query.
type QueryOptions struct {
	// Records returns the matching records (JSON-marshaled per record) in
	// addition to the stats. Limit caps how many (0 = all).
	Records bool
	Limit   int
	// Partitions, when non-nil, restricts the query to exactly these
	// partition ids — the sub-query path of a cluster shard, whose router
	// has already pruned against the metadata index. Nil prunes from the
	// window locally. An empty non-nil slice queries nothing.
	Partitions []int
	// PerPartition returns per-partition result chunks (QueryResult.Parts)
	// instead of the flat Records slice — the unit a scatter-gather merge
	// de-duplicates on. Record marshaling still honors Records and Limit.
	PerPartition bool
}

// QueryResult is one selection's outcome in transportable form.
type QueryResult struct {
	Stats selection.Stats `json:"stats"`
	// Records, when requested, holds the matches in deterministic
	// (partition, record) order.
	Records []json.RawMessage `json:"records,omitempty"`
	// Parts, on PerPartition queries, holds one chunk per queried
	// partition in request order; Records is then left nil.
	Parts []PartResult `json:"parts,omitempty"`
}

// PartResult is one partition's chunk of a per-partition query: the
// partition id is the chunk's identity (each record belongs to exactly one
// partition per dataset generation), which is what makes cross-process
// merges exactly-once — a chunk delivered twice by a hedged retry is
// dropped by id.
type PartResult struct {
	ID       int               `json:"id"`
	Selected int64             `json:"selected"`
	Records  []json.RawMessage `json:"records,omitempty"`
}

// Partition is a decoded partition pinned in memory together with its 3-d
// R-tree — the unit the serving daemon's cache holds.
type Partition interface {
	// Len is the record count.
	Len() int
	// SizeBytes estimates the resident size, the unit of the serving
	// cache's byte budget.
	SizeBytes() int64
}

// Querier runs one-shot window selections against an on-disk dataset, the
// stquery path (metadata re-read per call; see Schema.ServeQuery for the
// daemon's cached path).
type Querier interface {
	// Select scans every partition (the native path).
	Select(dir string, w selection.Window) (selection.Stats, error)
	// SelectPruned consults the metadata index first (§4.1).
	SelectPruned(dir string, w selection.Window) (selection.Stats, error)
}

// Schema is the untyped view of a Spec, dispatchable by name.
type Schema interface {
	// SchemaName returns the registry key.
	SchemaName() string
	// DefaultPlanner returns the schema's ingest partitioner at the given
	// T-STR granularities (2-d schemas fold both into an STR cell count).
	DefaultPlanner(gt, gs int) partition.Planner
	// NewQuerier binds a one-shot selection runner to ctx and cfg.
	NewQuerier(ctx *engine.Context, cfg selection.Config) Querier
	// Ingest ST-partitions recs — a []T of the schema's record type — with
	// planner and persists them under dir.
	Ingest(ctx *engine.Context, recs any, dir string, planner partition.Planner,
		opts selection.IngestOptions) (*storage.Metadata, error)
	// ReadCSV parses records in the schema's CSV layout.
	ReadCSV(r io.Reader) (any, error)
	// Append adds recs — a []T of the schema's record type — to the live
	// dataset at dir through the storage delta layer (no base rewrite);
	// batchID, when non-empty, makes retries exactly-once. It returns the
	// dataset generation after the append. A *storage.HookError comes back
	// WITH the committed generation: the append is durable, only a commit
	// hook failed — callers must not replay the batch.
	Append(recs any, dir, batchID string) (int64, error)
	// ReadDelta decodes one committed delta file of the dataset at dir,
	// returning each record's ST box alongside its JSON wire form — the
	// same bytes ServeQuery marshals, which is what lets a push stream stay
	// byte-identical to a batch re-query.
	ReadDelta(dir string, meta *storage.Metadata,
		dm storage.DeltaMeta) ([]index.Box, []json.RawMessage, error)
	// Compact runs one compaction pass over the dataset at dir, folding
	// delta files back into rewritten base partitions.
	Compact(dir string, opts storage.CompactOptions) (storage.CompactStats, error)
	// LoadPartition reads and decodes partition id of the dataset at dir,
	// returning a pinned handle with an R-tree over its records plus the
	// storage layer's block-granularity read accounting.
	LoadPartition(dir string, meta *storage.Metadata, id int) (Partition, storage.ReadStats, error)
	// ServeQuery is the daemon's selection path: partitions surviving the
	// metadata prune are fetched through fetch — the serving cache's
	// get-or-load hook, whose misses call LoadPartition — and searched via
	// their pinned R-trees, one engine task per partition on the shared
	// context. A nil fetch loads every partition from disk.
	ServeQuery(ctx *engine.Context, dir string, meta *storage.Metadata,
		fetch func(id int) (Partition, error), w selection.Window,
		opts QueryOptions) (QueryResult, error)
	// SelectPoints runs the pruned window selection and projects each match
	// onto its pattern observation — the record's ST box center — the input
	// shape of the point-pattern statistics (stquery -pointpat).
	SelectPoints(ctx *engine.Context, dir string,
		w selection.Window) ([]pointpat.Point, selection.Stats, error)
	// ApproxQuery answers an aggregate from summary sidecars with a
	// deterministic error envelope (see internal/summary). Exactly one of
	// the returns is non-nil on success: a finalized Result, or — when
	// req.Partial — the mergeable Partial a cluster shard ships to its
	// router.
	ApproxQuery(ctx *engine.Context, dir string, meta *storage.Metadata,
		w selection.Window, req ApproxRequest) (*summary.Result, *summary.Partial, error)
	// BuildSummaries backfills summary sidecars for every base partition
	// lacking a current one, committing them through the manifest.
	BuildSummaries(dir string, cfg summary.Config) (int, error)
	// Summarizer returns the builder compaction uses to keep sidecars
	// current (storage.CompactOptions.Summarizer).
	Summarizer(cfg summary.Config) summary.Builder
}

var registry = map[string]Schema{}

func register[T any](s Spec[T]) { registry[s.Name] = schema[T]{s} }

func init() {
	register(Spec[EventRec]{Name: "nyc", Codec: EventRecC, BoxOf: EventRec.Box, CSV: ReadEventsCSV,
		Value: func(e EventRec) (float64, bool) { return float64(e.Time), true },
		IDOf:  func(e EventRec) int64 { return e.ID }})
	register(Spec[TrajRec]{Name: "porto", Codec: TrajRecC, BoxOf: TrajRec.Box, CSV: ReadTrajsCSV,
		Value: func(t TrajRec) (float64, bool) { return float64(len(t.Points)), true },
		IDOf:  func(t TrajRec) int64 { return t.ID }})
	register(Spec[AirRec]{Name: "air", Codec: AirRecC, BoxOf: AirRec.Box,
		Value: func(a AirRec) (float64, bool) { return a.Indices[0], true },
		IDOf:  func(a AirRec) int64 { return a.StationID }})
	register(Spec[POIRec]{Name: "osm", Codec: POIRecC, BoxOf: POIRec.Box, Spatial2D: true,
		IDOf: func(p POIRec) int64 { return p.ID }})
}

// Lookup returns the schema registered under name.
func Lookup(name string) (Schema, bool) {
	s, ok := registry[name]
	return s, ok
}

// SchemaNames lists the registered schema names, sorted.
func SchemaNames() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// schema adapts a typed Spec to the untyped Schema interface.
type schema[T any] struct{ spec Spec[T] }

func (s schema[T]) SchemaName() string { return s.spec.Name }

func (s schema[T]) DefaultPlanner(gt, gs int) partition.Planner {
	if s.spec.Spatial2D {
		return partition.STR2D{N: gt * gs}
	}
	return partition.TSTR{GT: gt, GS: gs}
}

func (s schema[T]) NewQuerier(ctx *engine.Context, cfg selection.Config) Querier {
	return querier[T]{selection.New(ctx, s.spec.Codec, s.spec.BoxOf, nil, cfg)}
}

func (s schema[T]) Ingest(
	ctx *engine.Context, recs any, dir string, planner partition.Planner,
	opts selection.IngestOptions,
) (*storage.Metadata, error) {
	typed, ok := recs.([]T)
	if !ok {
		return nil, fmt.Errorf("stdata: schema %s: ingest of %T, want []%T",
			s.spec.Name, recs, *new(T))
	}
	return selection.Ingest(engine.Parallelize(ctx, typed, 0), dir,
		s.spec.Codec, s.spec.BoxOf, planner, opts)
}

func (s schema[T]) Append(recs any, dir, batchID string) (int64, error) {
	typed, ok := recs.([]T)
	if !ok {
		return 0, fmt.Errorf("stdata: schema %s: append of %T, want []%T",
			s.spec.Name, recs, *new(T))
	}
	mf, err := storage.AppendDelta(dir, s.spec.Codec, typed, s.spec.BoxOf,
		storage.AppendOptions{BatchID: batchID})
	if mf == nil {
		return 0, err
	}
	// A non-nil manifest with a non-nil error is a *storage.HookError: the
	// append committed, so the generation flows back with it.
	return mf.Generation, err
}

func (s schema[T]) ReadDelta(
	dir string, meta *storage.Metadata, dm storage.DeltaMeta,
) ([]index.Box, []json.RawMessage, error) {
	compressed := meta != nil && meta.Compressed
	recs, err := storage.ReadDelta(dir, compressed, dm, s.spec.Codec)
	if err != nil {
		return nil, nil, err
	}
	boxes := make([]index.Box, len(recs))
	raw := make([]json.RawMessage, len(recs))
	for i, rec := range recs {
		boxes[i] = s.spec.BoxOf(rec)
		b, err := json.Marshal(rec)
		if err != nil {
			return nil, nil, fmt.Errorf("stdata: schema %s: marshal record: %w", s.spec.Name, err)
		}
		raw[i] = b
	}
	return boxes, raw, nil
}

func (s schema[T]) SelectPoints(
	ctx *engine.Context, dir string, w selection.Window,
) ([]pointpat.Point, selection.Stats, error) {
	sel := selection.New(ctx, s.spec.Codec, s.spec.BoxOf, nil, selection.Config{Index: true})
	rdd, st, err := sel.SelectPruned(dir, w)
	if err != nil {
		return nil, st, err
	}
	boxOf := s.spec.BoxOf
	pts := engine.Map(rdd, func(rec T) pointpat.Point {
		c := boxOf(rec).Center()
		return pointpat.Point{X: c[0], Y: c[1], T: int64(c[2])}
	}).Collect()
	return pts, st, nil
}

func (s schema[T]) Compact(dir string, opts storage.CompactOptions) (storage.CompactStats, error) {
	return storage.Compact(dir, s.spec.Codec, s.spec.BoxOf, opts)
}

func (s schema[T]) ReadCSV(r io.Reader) (any, error) {
	if s.spec.CSV == nil {
		return nil, fmt.Errorf("stdata: schema %s has no CSV reader", s.spec.Name)
	}
	return s.spec.CSV(r)
}

// partData is the pinned form of one decoded partition: its records plus a
// bulk-loaded R-tree over record indexes (record order is preserved by
// searches, so served results match a direct linear selection).
type partData[T any] struct {
	recs  []T
	tree  *index.RTree[int]
	bytes int64
}

func (p *partData[T]) Len() int         { return len(p.recs) }
func (p *partData[T]) SizeBytes() int64 { return p.bytes }

// search returns the indexes of records intersecting w, ascending.
func (p *partData[T]) search(w selection.Window) []int {
	hit := make([]bool, len(p.recs))
	n := 0
	p.tree.SearchFunc(w.Box(), func(i int, _ index.Box) bool {
		if !hit[i] {
			hit[i] = true
			n++
		}
		return true
	})
	out := make([]int, 0, n)
	for i, h := range hit {
		if h {
			out = append(out, i)
		}
	}
	return out
}

// pinOverheadBytes approximates the per-record cost of the pinned slice and
// R-tree beyond the encoded payload.
const pinOverheadBytes = 64

func (s schema[T]) LoadPartition(dir string, meta *storage.Metadata, id int) (Partition, storage.ReadStats, error) {
	// The pinned handle serves arbitrary later windows, so the whole
	// partition is decoded (nil windows — no block pruning); the stats still
	// report the block and byte volume the load cost.
	recs, rst, err := storage.ReadPartitionPruned(dir, meta, id, s.spec.Codec, nil)
	if err != nil {
		return nil, rst, err
	}
	items := make([]index.Item[int], len(recs))
	for i, rec := range recs {
		items[i] = index.Item[int]{Box: s.spec.BoxOf(rec), Data: i}
	}
	return &partData[T]{
		recs:  recs,
		tree:  index.BulkLoadSTR(items, 16),
		bytes: meta.PartitionBytes(id) + int64(len(recs))*pinOverheadBytes,
	}, rst, nil
}

func (s schema[T]) ServeQuery(
	ctx *engine.Context, dir string, meta *storage.Metadata,
	fetch func(id int) (Partition, error), w selection.Window,
	opts QueryOptions,
) (QueryResult, error) {
	if fetch == nil {
		fetch = func(id int) (Partition, error) {
			p, _, err := s.LoadPartition(dir, meta, id)
			return p, err
		}
	}
	ids := opts.Partitions
	subquery := ids != nil
	if subquery {
		for _, id := range ids {
			if id < 0 || id >= meta.NumPartitions() {
				return QueryResult{}, fmt.Errorf("stdata: schema %s: subquery partition %d out of range [0,%d)",
					s.spec.Name, id, meta.NumPartitions())
			}
		}
	} else {
		ids = meta.Prune(w.Space, w.Time)
	}
	stats := selection.Stats{
		TotalPartitions:  meta.NumPartitions(),
		LoadedPartitions: len(ids),
	}
	for _, id := range ids {
		stats.LoadedRecords += meta.PartitionCount(id)
		stats.LoadedBytes += meta.PartitionBytes(id)
	}
	var sp *trace.Span
	if subquery {
		// A sub-query span suppresses the planning attrs — the router's
		// scatter span carries the prune outcome exactly once for the whole
		// query — and keeps only what this shard executed, so a stitched
		// explain never double-counts partitions.
		sp = ctx.StartSpan(trace.SpanSelect,
			trace.Str("dataset", meta.Name),
			trace.Int("partitions", int64(len(ids))))
	} else {
		sp = ctx.StartSpan(trace.SpanSelect,
			trace.Str("dataset", meta.Name),
			trace.Int("total_partitions", int64(stats.TotalPartitions)),
			trace.Int("kept_partitions", int64(stats.LoadedPartitions)),
			trace.Int("loaded_records", stats.LoadedRecords),
			trace.Int("loaded_bytes", stats.LoadedBytes))
	}
	res := QueryResult{Stats: stats}
	if len(ids) == 0 {
		sp.End(trace.Int("selected", 0))
		return res, nil
	}

	// One engine task per surviving partition: fetch the pinned handle and
	// search its R-tree. Fetch failures surface as task errors through the
	// engine's retry machinery. The stage is traced under the select span.
	sctx := ctx.WithSpan(sp)
	matched := make([][]T, len(ids))
	err := engine.Try(func() {
		rdd := engine.Generate(sctx, "serve:"+meta.Name, len(ids), func(p int) []T {
			part, err := fetch(ids[p])
			if err != nil {
				panic(err)
			}
			pd, ok := part.(*partData[T])
			if !ok {
				panic(fmt.Sprintf("stdata: schema %s: cached partition has type %T", s.spec.Name, part))
			}
			out := make([]T, 0, 16)
			for _, i := range pd.search(w) {
				out = append(out, pd.recs[i])
			}
			return out
		})
		rdd.ForeachPartition(func(p int, in []T) { matched[p] = in })
	})
	if err != nil {
		sp.End(trace.Str("error", err.Error()))
		return QueryResult{}, err
	}

	for _, part := range matched {
		res.Stats.SelectedRecords += int64(len(part))
	}
	sp.End(trace.Int("selected", res.Stats.SelectedRecords))
	limit := opts.Limit
	if limit <= 0 || int64(limit) > res.Stats.SelectedRecords {
		limit = int(res.Stats.SelectedRecords)
	}
	if opts.PerPartition {
		// Per-partition chunks: Selected always counts every match; record
		// marshaling caps at limit across the chunks in order — a shard's
		// stream is a subsequence of the global partition-ordered stream,
		// so any record within the global limit survives the local cap and
		// a scatter-gather merge stays byte-identical to single-node
		// serving.
		res.Parts = make([]PartResult, len(ids))
		remaining := limit
		for p, id := range ids {
			pr := PartResult{ID: id, Selected: int64(len(matched[p]))}
			if opts.Records {
				for _, rec := range matched[p] {
					if remaining <= 0 {
						break
					}
					b, err := json.Marshal(rec)
					if err != nil {
						return QueryResult{}, fmt.Errorf("stdata: marshal record: %w", err)
					}
					pr.Records = append(pr.Records, b)
					remaining--
				}
			}
			res.Parts[p] = pr
		}
	} else if opts.Records {
		res.Records = make([]json.RawMessage, 0, limit)
	marshal:
		for _, part := range matched {
			for _, rec := range part {
				if len(res.Records) >= limit {
					break marshal
				}
				b, err := json.Marshal(rec)
				if err != nil {
					return QueryResult{}, fmt.Errorf("stdata: marshal record: %w", err)
				}
				res.Records = append(res.Records, b)
			}
		}
	}
	return res, nil
}

// querier adapts a typed Selector to the untyped Querier interface.
type querier[T any] struct{ sel *selection.Selector[T] }

func (q querier[T]) Select(dir string, w selection.Window) (selection.Stats, error) {
	_, st, err := q.sel.Select(dir, w)
	return st, err
}

func (q querier[T]) SelectPruned(dir string, w selection.Window) (selection.Stats, error) {
	_, st, err := q.sel.SelectPruned(dir, w)
	return st, err
}
