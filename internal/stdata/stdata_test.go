package stdata

import (
	"reflect"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/geom"
	"st4ml/internal/tempo"
)

func TestEventRecBoxAndInstance(t *testing.T) {
	e := EventRec{ID: 9, Loc: geom.Pt(1, 2), Time: 100, Aux: "pickup"}
	b := e.Box()
	if b.Spatial() != geom.Box(1, 2, 1, 2) || b.Temporal() != tempo.Instant(100) {
		t.Errorf("Box = %+v", b)
	}
	inst := e.ToEvent()
	if inst.Data != 9 || inst.Entry.Value != "pickup" || inst.Entry.Spatial != geom.Pt(1, 2) {
		t.Errorf("ToEvent = %+v", inst)
	}
}

func TestTrajRecBoxAndInstance(t *testing.T) {
	tr := TrajRec{
		ID:     3,
		Points: []geom.Point{geom.Pt(0, 0), geom.Pt(2, 1)},
		Times:  []int64{50, 100},
	}
	b := tr.Box()
	if b.Spatial() != geom.Box(0, 0, 2, 1) || b.Temporal() != tempo.New(50, 100) {
		t.Errorf("Box = %+v", b)
	}
	inst := tr.ToTrajectory()
	if inst.Data != 3 || inst.Len() != 2 {
		t.Errorf("ToTrajectory = %+v", inst)
	}
	if inst.Entries[0].Temporal != tempo.Instant(50) {
		t.Error("entry time mismatch")
	}
}

func TestAirRecInstanceCarriesIndices(t *testing.T) {
	a := AirRec{StationID: 5, Loc: geom.Pt(1, 1), Time: 60,
		Indices: [6]float64{1, 2, 3, 4, 5, 6}}
	inst := a.ToEvent()
	if inst.Entry.Value != a.Indices || inst.Data != 5 {
		t.Errorf("ToEvent = %+v", inst)
	}
}

func TestPOIRecNoTime(t *testing.T) {
	p := POIRec{ID: 1, Loc: geom.Pt(3, 4), Type: "park"}
	b := p.Box()
	if b.Spatial() != geom.Box(3, 4, 3, 4) {
		t.Errorf("Box = %+v", b)
	}
	if b.Temporal() != tempo.Instant(0) {
		t.Errorf("POI temporal = %v", b.Temporal())
	}
}

func TestAreaRecString(t *testing.T) {
	a := AreaRec{ID: 7, Shape: geom.Rect(geom.Box(0, 0, 1, 1))}
	if a.String() != "area-7" {
		t.Errorf("String = %q", a.String())
	}
}

func TestCodecsRejectCorruptInput(t *testing.T) {
	good := codec.Marshal(TrajRecC, TrajRec{
		ID:     1,
		Points: []geom.Point{geom.Pt(0, 0)},
		Times:  []int64{1},
	})
	if _, err := codec.Unmarshal(TrajRecC, good[:len(good)-2]); err == nil {
		t.Error("truncated trajectory should error")
	}
	if _, err := codec.Unmarshal(EventRecC, []byte{0xff}); err == nil {
		t.Error("garbage event should error")
	}
}

func TestEmptyTrajRecRoundTrip(t *testing.T) {
	tr := TrajRec{ID: 2}
	got, err := codec.Unmarshal(TrajRecC, codec.Marshal(TrajRecC, tr))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 2 || len(got.Points) != 0 {
		t.Errorf("round trip = %+v", got)
	}
	if !tr.Box().IsEmpty() {
		t.Error("empty trajectory should have empty box")
	}
}

func TestCodecRoundTripsPreserveEverything(t *testing.T) {
	ev := EventRec{ID: -5, Loc: geom.Pt(-8.6, 41.1), Time: 1357000000, Aux: "x,y\n"}
	gotEv, err := codec.Unmarshal(EventRecC, codec.Marshal(EventRecC, ev))
	if err != nil || !reflect.DeepEqual(gotEv, ev) {
		t.Errorf("event round trip: %+v (%v)", gotEv, err)
	}
	ar := AirRec{StationID: 0, Loc: geom.Pt(113, 29), Time: -1,
		Indices: [6]float64{0.5, 0, 99, 3, 2, 1}}
	gotAr, err := codec.Unmarshal(AirRecC, codec.Marshal(AirRecC, ar))
	if err != nil || !reflect.DeepEqual(gotAr, ar) {
		t.Errorf("air round trip: %v", err)
	}
	poi := POIRec{ID: 1 << 40, Loc: geom.Pt(0, 0), Type: ""}
	gotPoi, err := codec.Unmarshal(POIRecC, codec.Marshal(POIRecC, poi))
	if err != nil || !reflect.DeepEqual(gotPoi, poi) {
		t.Errorf("poi round trip: %v", err)
	}
}
