package stdata

import (
	"reflect"
	"strings"
	"testing"

	"st4ml/internal/geom"
)

func TestEventsCSVRoundTrip(t *testing.T) {
	recs := []EventRec{
		{ID: 1, Loc: geom.Pt(-74.0, 40.7), Time: 1357000000, Aux: "pickup"},
		{ID: 2, Loc: geom.Pt(-73.9, 40.8), Time: 1357000100, Aux: ""},
	}
	var sb strings.Builder
	if err := WriteEventsCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEventsCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip:\n%v\n%v", got, recs)
	}
}

func TestTrajsCSVRoundTrip(t *testing.T) {
	recs := []TrajRec{
		{ID: 7, Points: []geom.Point{geom.Pt(1, 2), geom.Pt(3, 4)}, Times: []int64{10, 25}},
		{ID: 8, Points: []geom.Point{geom.Pt(-1, -2)}, Times: []int64{0}},
	}
	var sb strings.Builder
	if err := WriteTrajsCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrajsCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip:\n%v\n%v", got, recs)
	}
}

func TestReadEventsCSVWithoutHeaderOrAux(t *testing.T) {
	got, err := ReadEventsCSV(strings.NewReader("5,1.5,2.5,99\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 5 || got[0].Aux != "" {
		t.Fatalf("got %v", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	eventCases := []string{
		"",
		"id,lon,lat,time\n", // header only
		"1,x,2,3\n",
		"1,2,3\n", // too few fields
		"1,2,3,notint\n",
		"id,lon,lat,time\nbad,1,2,3\n", // bad id after header
	}
	for _, in := range eventCases {
		if _, err := ReadEventsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEventsCSV(%q) should error", in)
		}
	}
	trajCases := []string{
		"",
		`1,"1 2 3","10 20"`, // odd coords
		`1,"1 2 3 4","10"`,  // timestamp count mismatch
		`1,"a b","10"`,      // bad coord
		`1,"1 2","x"`,       // bad time
		`1,"",""`,           // empty trajectory
	}
	for _, in := range trajCases {
		if _, err := ReadTrajsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadTrajsCSV(%q) should error", in)
		}
	}
}
