package stdata

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/selection"
	"st4ml/internal/tempo"
)

func TestRegistryNamesAndLookup(t *testing.T) {
	want := []string{"air", "nyc", "osm", "porto"}
	if got := SchemaNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("SchemaNames() = %v, want %v", got, want)
	}
	for _, name := range want {
		sch, ok := Lookup(name)
		if !ok || sch.SchemaName() != name {
			t.Errorf("Lookup(%q) = %v, %v", name, sch, ok)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown schema succeeded")
	}
}

func TestDefaultPlanners(t *testing.T) {
	nyc, _ := Lookup("nyc")
	osm, _ := Lookup("osm")
	if p := nyc.DefaultPlanner(4, 8); p == nil {
		t.Error("nyc planner nil")
	}
	// The purely spatial schema must not plan temporal slices.
	if reflect.TypeOf(nyc.DefaultPlanner(4, 8)) == reflect.TypeOf(osm.DefaultPlanner(4, 8)) {
		t.Error("osm should use a different planner than nyc")
	}
}

// makeEvents builds a tiny grid of events covering [0,10)² × [0,100).
func makeEvents(n int) []EventRec {
	out := make([]EventRec, n)
	for i := range out {
		out[i] = EventRec{
			ID:   int64(i),
			Loc:  geom.Pt(float64(i%10), float64((i/10)%10)),
			Time: int64(i % 100),
			Aux:  "e",
		}
	}
	return out
}

func TestIngestQuerierAndServeQueryAgree(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := Lookup("nyc")
	dir := t.TempDir()
	recs := makeEvents(500)
	meta, err := sch.Ingest(ctx, recs, dir, sch.DefaultPlanner(2, 2),
		selection.IngestOptions{Name: "grid", SampleFrac: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if meta.TotalCount != 500 {
		t.Fatalf("ingested %d records", meta.TotalCount)
	}
	if _, err := sch.Ingest(ctx, "not a slice", dir, sch.DefaultPlanner(2, 2),
		selection.IngestOptions{}); err == nil {
		t.Error("ingest of a wrong type should fail")
	}

	w := selection.Window{Space: geom.Box(2, 2, 7, 7), Time: tempo.New(0, 60)}
	q := sch.NewQuerier(ctx, selection.Config{Index: true})
	direct, err := q.SelectPruned(dir, w)
	if err != nil {
		t.Fatal(err)
	}
	served, err := sch.ServeQuery(ctx, dir, meta, nil, w, QueryOptions{Records: true})
	if err != nil {
		t.Fatal(err)
	}
	if served.Stats.SelectedRecords != direct.SelectedRecords {
		t.Errorf("served selected %d, direct %d",
			served.Stats.SelectedRecords, direct.SelectedRecords)
	}
	if int64(len(served.Records)) != served.Stats.SelectedRecords {
		t.Errorf("%d record bodies for %d selected",
			len(served.Records), served.Stats.SelectedRecords)
	}
	for _, raw := range served.Records {
		var rec EventRec
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatalf("bad record body %s: %v", raw, err)
		}
		in := rec.Loc.X >= 2 && rec.Loc.X <= 7 && rec.Loc.Y >= 2 && rec.Loc.Y <= 7 &&
			rec.Time >= 0 && rec.Time <= 60
		if !in {
			t.Errorf("record %s outside the window", raw)
		}
	}
}

func TestServeQueryFetchHookAndLimit(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := Lookup("nyc")
	dir := t.TempDir()
	meta, err := sch.Ingest(ctx, makeEvents(400), dir, sch.DefaultPlanner(2, 2),
		selection.IngestOptions{Name: "grid", SampleFrac: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := selection.Window{Space: geom.Box(0, 0, 10, 10), Time: tempo.New(0, 100)}

	// The fetch hook sees exactly the pruned partition ids, each once.
	var mu sync.Mutex
	fetched := map[int]int{}
	fetch := func(id int) (Partition, error) {
		mu.Lock()
		fetched[id]++
		mu.Unlock()
		p, rst, err := sch.LoadPartition(dir, meta, id)
		if err == nil && (rst.Blocks < 1 || rst.BlocksScanned != rst.Blocks || rst.BlocksPruned != 0) {
			t.Errorf("full load of partition %d reported odd block stats %+v", id, rst)
		}
		return p, err
	}
	res, err := sch.ServeQuery(ctx, dir, meta, fetch, w, QueryOptions{Records: true, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SelectedRecords != 400 {
		t.Errorf("selected %d, want 400", res.Stats.SelectedRecords)
	}
	if len(res.Records) != 5 {
		t.Errorf("limit ignored: %d records", len(res.Records))
	}
	if len(fetched) != res.Stats.LoadedPartitions {
		t.Errorf("fetched %d distinct partitions, stats say %d",
			len(fetched), res.Stats.LoadedPartitions)
	}
	for id, n := range fetched {
		if n != 1 {
			t.Errorf("partition %d fetched %d times", id, n)
		}
	}
}

func TestCSVDispatch(t *testing.T) {
	nyc, _ := Lookup("nyc")
	recs, err := nyc.ReadCSV(strings.NewReader("1,-73.99,40.75,1357000000,cab\n"))
	if err != nil {
		t.Fatal(err)
	}
	events, ok := recs.([]EventRec)
	if !ok || len(events) != 1 || events[0].ID != 1 {
		t.Errorf("ReadCSV = %#v", recs)
	}
	air, _ := Lookup("air")
	if _, err := air.ReadCSV(strings.NewReader("x")); err == nil {
		t.Error("air has no CSV reader, want error")
	}
}

// TestServeQuerySubqueryMode pins the cluster shard path: restricting a
// query to an explicit partition subset with per-partition chunks must
// reassemble byte-for-byte into the flat single-node answer.
func TestServeQuerySubqueryMode(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := Lookup("nyc")
	dir := t.TempDir()
	meta, err := sch.Ingest(ctx, makeEvents(500), dir, sch.DefaultPlanner(2, 2),
		selection.IngestOptions{Name: "grid", SampleFrac: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := selection.Window{Space: geom.Box(2, 2, 7, 7), Time: tempo.New(0, 60)}
	flat, err := sch.ServeQuery(ctx, dir, meta, nil, w, QueryOptions{Records: true})
	if err != nil {
		t.Fatal(err)
	}
	ids := meta.Prune(w.Space, w.Time)
	if len(ids) == 0 {
		t.Fatal("window hit no partitions")
	}
	sub, err := sch.ServeQuery(ctx, dir, meta, nil, w,
		QueryOptions{Records: true, Partitions: ids, PerPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Records != nil {
		t.Error("per-partition mode must not fill the flat Records slice")
	}
	if len(sub.Parts) != len(ids) {
		t.Fatalf("%d chunks for %d partitions", len(sub.Parts), len(ids))
	}
	var merged []json.RawMessage
	var selected int64
	for i, pr := range sub.Parts {
		if pr.ID != ids[i] {
			t.Fatalf("chunk %d id %d, want %d", i, pr.ID, ids[i])
		}
		merged = append(merged, pr.Records...)
		selected += pr.Selected
	}
	if selected != flat.Stats.SelectedRecords {
		t.Errorf("chunk selected sum %d, flat %d", selected, flat.Stats.SelectedRecords)
	}
	if len(merged) != len(flat.Records) {
		t.Fatalf("merged %d records, flat %d", len(merged), len(flat.Records))
	}
	for i := range merged {
		if string(merged[i]) != string(flat.Records[i]) {
			t.Fatalf("record %d differs: %s vs %s", i, merged[i], flat.Records[i])
		}
	}

	// Limit caps marshaled records across chunks in order, not Selected.
	lim, err := sch.ServeQuery(ctx, dir, meta, nil, w,
		QueryOptions{Records: true, Limit: 3, Partitions: ids, PerPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	var limRecs []json.RawMessage
	var limSelected int64
	for _, pr := range lim.Parts {
		limRecs = append(limRecs, pr.Records...)
		limSelected += pr.Selected
	}
	if len(limRecs) != 3 || limSelected != selected {
		t.Fatalf("limit chunks: %d records, %d selected", len(limRecs), limSelected)
	}
	for i := range limRecs {
		if string(limRecs[i]) != string(flat.Records[i]) {
			t.Fatalf("limited record %d differs", i)
		}
	}

	// Empty non-nil subsets query nothing; out-of-range ids are rejected.
	empty, err := sch.ServeQuery(ctx, dir, meta, nil, w,
		QueryOptions{Partitions: []int{}, PerPartition: true})
	if err != nil || empty.Stats.SelectedRecords != 0 || empty.Stats.LoadedPartitions != 0 {
		t.Fatalf("empty subset: %+v, %v", empty.Stats, err)
	}
	if _, err := sch.ServeQuery(ctx, dir, meta, nil, w,
		QueryOptions{Partitions: []int{meta.NumPartitions()}}); err == nil {
		t.Error("out-of-range partition id accepted")
	}
}
