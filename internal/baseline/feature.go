// Package baseline implements the two comparison systems of the paper's
// evaluation (§5.2) at the design level:
//
//   - GeoSpark-like: load-everything-into-memory, spatial-only KD-tree
//     partitioning, per-partition spatial indexes, and String-typed
//     temporal attributes that must be parsed on every use.
//   - GeoMesa-like: an entry-level Z-order (XZ2-style) on-disk index with
//     good selection pruning, String-typed timestamps, and no in-memory
//     conversion optimization (Cartesian structure allocation).
//
// Both represent records as GeoSpark/GeoMesa do — a geometry plus a bag of
// String attributes (Feature) — which is exactly the representation the
// paper blames for their extraction overhead. The extraction code paths for
// the Fig. 7 applications live in internal/bench and use generic shuffling
// RDD operations over Features, as a straightforward extension of these
// systems would.
package baseline

import (
	"strconv"
	"strings"
	"time"

	"st4ml/internal/codec"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

// TimeLayout is the string timestamp format both baselines store — parsing
// it back on every temporal operation is part of their measured cost, as
// the paper notes ("both baselines store the timestamps ... as a String,
// which needs additional reformation").
const TimeLayout = "2006-01-02 15:04:05"

// Feature is the baseline record representation: a geometry (one point for
// events, a polyline for trajectories) plus String attributes.
type Feature struct {
	ID    int64
	Shape []geom.Point
	Attrs map[string]string
}

// FormatTime renders a Unix timestamp in the baseline string format.
func FormatTime(t int64) string {
	return time.Unix(t, 0).UTC().Format(TimeLayout)
}

// ParseTime parses a baseline string timestamp; malformed values return 0
// (and count as out-of-window), mirroring permissive attribute bags.
func ParseTime(s string) int64 {
	t, err := time.ParseInLocation(TimeLayout, s, time.UTC)
	if err != nil {
		return 0
	}
	return t.Unix()
}

// FromEventRec converts a standard event into the baseline representation.
func FromEventRec(e stdata.EventRec) Feature {
	return Feature{
		ID:    e.ID,
		Shape: []geom.Point{e.Loc},
		Attrs: map[string]string{
			"time": FormatTime(e.Time),
			"aux":  e.Aux,
		},
	}
}

// FromTrajRec converts a standard trajectory into the baseline
// representation: a linestring with comma-joined string timestamps.
func FromTrajRec(t stdata.TrajRec) Feature {
	times := make([]string, len(t.Times))
	for i, ts := range t.Times {
		times[i] = FormatTime(ts)
	}
	return Feature{
		ID:    t.ID,
		Shape: append([]geom.Point(nil), t.Points...),
		Attrs: map[string]string{
			"times": strings.Join(times, ","),
		},
	}
}

// FromAirRec converts an air record, formatting the indices as strings.
func FromAirRec(a stdata.AirRec) Feature {
	attrs := map[string]string{"time": FormatTime(a.Time)}
	keys := [6]string{"pm25", "pm10", "no2", "co", "o3", "so2"}
	for i, k := range keys {
		attrs[k] = strconv.FormatFloat(a.Indices[i], 'f', -1, 64)
	}
	return Feature{ID: a.StationID, Shape: []geom.Point{a.Loc}, Attrs: attrs}
}

// FromPOIRec converts a POI record.
func FromPOIRec(p stdata.POIRec) Feature {
	return Feature{
		ID:    p.ID,
		Shape: []geom.Point{p.Loc},
		Attrs: map[string]string{"type": p.Type},
	}
}

// MBR returns the feature's spatial bounding box.
func (f Feature) MBR() geom.MBR {
	b := geom.EmptyMBR()
	for _, p := range f.Shape {
		b = b.ExpandToPoint(p)
	}
	return b
}

// Times parses every timestamp of the feature: the single "time" attribute
// for events, the comma-joined "times" for trajectories. This is the
// per-operation parsing toll string-typed attributes impose.
func (f Feature) Times() []int64 {
	if s, ok := f.Attrs["time"]; ok {
		return []int64{ParseTime(s)}
	}
	s, ok := f.Attrs["times"]
	if !ok || s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		out[i] = ParseTime(p)
	}
	return out
}

// Duration parses the feature's covered time interval.
func (f Feature) Duration() tempo.Duration {
	times := f.Times()
	d := tempo.Empty()
	for _, t := range times {
		d = d.ExpandTo(t)
	}
	return d
}

// Box returns the feature's full ST box (parsing timestamps).
func (f Feature) Box() index.Box {
	return index.Box3(f.MBR(), f.Duration())
}

// FeatureC is the binary codec for Feature.
var FeatureC = codec.Codec[Feature]{
	Enc: func(w *codec.Writer, f Feature) {
		w.PutVarint(f.ID)
		w.PutUvarint(uint64(len(f.Shape)))
		for _, p := range f.Shape {
			codec.PointC.Enc(w, p)
		}
		codec.StringMap.Enc(w, f.Attrs)
	},
	Dec: func(r *codec.Reader) Feature {
		id := r.Varint()
		n := int(r.Uvarint())
		shape := make([]geom.Point, n)
		for i := 0; i < n; i++ {
			shape[i] = codec.PointC.Dec(r)
		}
		return Feature{ID: id, Shape: shape, Attrs: codec.StringMap.Dec(r)}
	},
}
