package baseline

import (
	"sort"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

func TestTimeFormatRoundTrip(t *testing.T) {
	for _, ts := range []int64{0, 1356998400, 1388534399} {
		if got := ParseTime(FormatTime(ts)); got != ts {
			t.Errorf("round trip %d -> %d", ts, got)
		}
	}
	if ParseTime("not a time") != 0 {
		t.Error("malformed time should parse to 0")
	}
}

func TestFeatureConversions(t *testing.T) {
	ev := datagen.NYC(1, 1)[0]
	f := FromEventRec(ev)
	if len(f.Shape) != 1 || f.Shape[0] != ev.Loc {
		t.Errorf("shape = %v", f.Shape)
	}
	if got := f.Times(); len(got) != 1 || got[0] != ev.Time {
		t.Errorf("times = %v, want %d", got, ev.Time)
	}

	tr := datagen.Porto(1, 1)[0]
	ft := FromTrajRec(tr)
	times := ft.Times()
	if len(times) != len(tr.Times) {
		t.Fatalf("times = %d, want %d", len(times), len(tr.Times))
	}
	for i := range times {
		if times[i] != tr.Times[i] {
			t.Fatalf("time %d = %d, want %d", i, times[i], tr.Times[i])
		}
	}
	if d := ft.Duration(); d.Start != tr.Times[0] || d.End != tr.Times[len(tr.Times)-1] {
		t.Errorf("duration = %v", d)
	}

	air := datagen.Air(1, 1, 1, 3600, 1)[0]
	fa := FromAirRec(air)
	if fa.Attrs["pm25"] == "" {
		t.Error("air indices lost")
	}
	poi, _ := datagen.OSM(1, 1, 1)
	fp := FromPOIRec(poi[0])
	if fp.Attrs["type"] == "" {
		t.Error("poi type lost")
	}
}

func TestFeatureCodecRoundTrip(t *testing.T) {
	tr := datagen.Porto(1, 2)[0]
	f := FromTrajRec(tr)
	got, err := codec.Unmarshal(FeatureC, codec.Marshal(FeatureC, f))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != f.ID || len(got.Shape) != len(f.Shape) || got.Attrs["times"] != f.Attrs["times"] {
		t.Error("feature round trip mismatch")
	}
}

func TestGeoSparkLoadAndRangeQuery(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	events := datagen.NYC(3000, 3)
	dir := t.TempDir()
	if _, err := IngestEventsToDisk(ctx, events, dir, 8); err != nil {
		t.Fatal(err)
	}
	gs := NewGeoSpark(ctx)
	if err := gs.Load(dir, 16); err != nil {
		t.Fatal(err)
	}
	if got := gs.Loaded().Count(); got != 3000 {
		t.Fatalf("loaded = %d", got)
	}
	space := geom.Box(-74.0, 40.7, -73.9, 40.8)
	dur := tempo.New(datagen.Year2013.Start, datagen.Year2013.Start+90*86400)
	got := gs.RangeQuery(space, dur).Collect()
	want := bruteRange(events, space, dur)
	if !sameIDs(featureIDs(got), want) {
		t.Fatalf("range query: got %d, want %d records", len(got), len(want))
	}
}

func TestGeoMesaQueryMatchesBruteAndPrunes(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	events := datagen.NYC(5000, 4)
	feats := make([]Feature, len(events))
	for i, e := range events {
		feats[i] = FromEventRec(e)
	}
	dir := t.TempDir()
	if err := GeoMesaIngest(ctx, feats, dir, datagen.NYCExtent, datagen.Year2013, 8, 7*86400, 256); err != nil {
		t.Fatal(err)
	}
	gm, err := OpenGeoMesa(ctx, dir, datagen.NYCExtent, datagen.Year2013, 8, 7*86400)
	if err != nil {
		t.Fatal(err)
	}
	space := geom.Box(-74.0, 40.7, -73.95, 40.75)
	dur := tempo.New(datagen.Year2013.Start, datagen.Year2013.Start+30*86400)
	rdd, scanned := gm.Query(space, dur)
	got := featureIDs(rdd.Collect())
	want := bruteRange(events, space, dur)
	if !sameIDs(got, want) {
		t.Fatalf("geomesa query: got %d, want %d", len(got), len(want))
	}
	total := (5000 + 255) / 256
	if scanned >= total {
		t.Errorf("no pruning: scanned %d of %d chunks", scanned, total)
	}
}

func bruteRange(events []stdata.EventRec, space geom.MBR, dur tempo.Duration) []int64 {
	var out []int64
	for _, e := range events {
		if space.ContainsPoint(e.Loc) && dur.Contains(e.Time) {
			out = append(out, e.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func featureIDs(fs []Feature) []int64 {
	out := make([]int64, len(fs))
	for i, f := range fs {
		out[i] = f.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
