package baseline

import (
	"fmt"
	"sort"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/storage"
	"st4ml/internal/tempo"
)

// GeoMesa models the GeoMesa design as the paper describes it: an
// entry-level space-filling-curve index over the on-disk records (our
// Z-order curve standing in for XZ2, composed with a time bin as GeoMesa's
// Z3 does). Ingestion sorts every record by curve key and writes
// fixed-size key-ordered chunks; a query computes curve key ranges and
// reads only the chunks whose key span overlaps — good selection pruning,
// which Fig. 7 credits GeoMesa for — but records stay String-attributed and
// in-memory processing has no ST4ML-style optimization.
type GeoMesa struct {
	ctx    *engine.Context
	dir    string
	meta   *storage.Metadata
	curve  *index.ZCurve3D
	chunks []keySpan
}

type keySpan struct {
	lo, hi uint64
}

// GeoMesaIngest sorts features by their composite curve key and persists
// them in key-ordered chunks under dir. domain and window bound the curve;
// bits and binSec set its resolution. Multi-point features are keyed by
// their first point and start time (as GeoMesa keys a geometry by its
// indexed reference point).
func GeoMesaIngest(
	ctx *engine.Context,
	feats []Feature,
	dir string,
	domain geom.MBR,
	window tempo.Duration,
	bits uint,
	binSec int64,
	chunkSize int,
) error {
	curve := index.NewZCurve3D(domain, window, bits, binSec)
	type keyed struct {
		key uint64
		f   Feature
	}
	ks := make([]keyed, len(feats))
	for i, f := range feats {
		ks[i] = keyed{key: featureKey(curve, f), f: f}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	if chunkSize < 1 {
		chunkSize = 4096
	}
	var parts [][]Feature
	for i := 0; i < len(ks); i += chunkSize {
		end := i + chunkSize
		if end > len(ks) {
			end = len(ks)
		}
		chunk := make([]Feature, end-i)
		for j := i; j < end; j++ {
			chunk[j-i] = ks[j].f
		}
		parts = append(parts, chunk)
	}
	_, err := storage.Write(dir, FeatureC, parts, Feature.Box, storage.WriteOptions{
		Name: fmt.Sprintf("geomesa-z3-%d-%d", bits, binSec),
	})
	return err
}

func featureKey(curve *index.ZCurve3D, f Feature) uint64 {
	t := int64(0)
	if ts := f.Times(); len(ts) > 0 {
		t = ts[0]
	}
	return curve.Key(f.Shape[0], t)
}

// OpenGeoMesa opens an ingested store, reading chunk key spans from the
// chunk contents' first/last records (the store's manifest).
func OpenGeoMesa(
	ctx *engine.Context,
	dir string,
	domain geom.MBR,
	window tempo.Duration,
	bits uint,
	binSec int64,
) (*GeoMesa, error) {
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		return nil, err
	}
	curve := index.NewZCurve3D(domain, window, bits, binSec)
	g := &GeoMesa{ctx: ctx, dir: dir, meta: meta, curve: curve}
	// Build the chunk key-span manifest by reading chunk boundaries once.
	g.chunks = make([]keySpan, meta.NumPartitions())
	for i := 0; i < meta.NumPartitions(); i++ {
		recs, err := storage.ReadPartition(dir, meta, i, FeatureC)
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			g.chunks[i] = keySpan{lo: 1, hi: 0}
			continue
		}
		g.chunks[i] = keySpan{
			lo: featureKey(curve, recs[0]),
			hi: featureKey(curve, recs[len(recs)-1]),
		}
	}
	return g, nil
}

// Query computes curve key ranges for the window, reads only chunks whose
// key span overlaps some range, and fine-filters the survivors (parsing
// string timestamps). The returned RDD is one partition per scanned chunk.
func (g *GeoMesa) Query(space geom.MBR, dur tempo.Duration) (*engine.RDD[Feature], int) {
	ranges := g.curve.Ranges(space, dur, 6)
	var scan []int
	for i, span := range g.chunks {
		if span.lo > span.hi {
			continue
		}
		for _, r := range ranges {
			if span.lo <= r.Hi && r.Lo <= span.hi {
				scan = append(scan, i)
				break
			}
		}
	}
	dir, meta := g.dir, g.meta
	out := engine.Generate(g.ctx, "geomesa-scan", len(scan), func(p int) []Feature {
		recs, err := storage.ReadPartition(dir, meta, scan[p], FeatureC)
		if err != nil {
			panic(err)
		}
		var keep []Feature
		for _, f := range recs {
			if !f.MBR().Intersects(space) {
				continue
			}
			if !f.Duration().Intersects(dur) { // string timestamp parse
				continue
			}
			keep = append(keep, f)
		}
		return keep
	})
	return out, len(scan)
}
