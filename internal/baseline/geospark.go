package baseline

import (
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/partition"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/tempo"
)

// GeoSpark models the GeoSpark/Sedona design as the paper describes it
// (§5.2): every range-query application starts by loading the whole dataset
// into memory, KD-tree partitioning it spatially (no temporal awareness),
// and building a per-partition spatial index; range queries filter
// spatially through the index and temporally by parsing string attributes.
type GeoSpark struct {
	ctx    *engine.Context
	loaded *engine.RDD[Feature]
}

// NewGeoSpark creates the system over a simulated cluster.
func NewGeoSpark(ctx *engine.Context) *GeoSpark { return &GeoSpark{ctx: ctx} }

// IngestEventsToDisk writes event records in the baseline's on-disk layout
// — unpartitioned feature files without ST metadata (GeoSpark has no
// persistent index; it ingests ad hoc per application).
func IngestEventsToDisk(ctx *engine.Context, recs []stdata.EventRec, dir string, parts int) (*storage.Metadata, error) {
	feats := make([]Feature, len(recs))
	for i, e := range recs {
		feats[i] = FromEventRec(e)
	}
	return ingestFeatures(ctx, feats, dir, parts)
}

// IngestTrajsToDisk writes trajectory records in the baseline layout.
func IngestTrajsToDisk(ctx *engine.Context, recs []stdata.TrajRec, dir string, parts int) (*storage.Metadata, error) {
	feats := make([]Feature, len(recs))
	for i, t := range recs {
		feats[i] = FromTrajRec(t)
	}
	return ingestFeatures(ctx, feats, dir, parts)
}

func ingestFeatures(ctx *engine.Context, feats []Feature, dir string, parts int) (*storage.Metadata, error) {
	r := engine.Parallelize(ctx, feats, parts)
	return selection.IngestUnpartitioned(r, dir, FeatureC, Feature.Box,
		selection.IngestOptions{Name: "baseline-features"})
}

// Load reads the entire dataset into memory, KD-tree partitions it by
// space, and caches it — the load-everything step whose cost Fig. 7
// attributes to GeoSpark. Subsequent RangeQuery calls reuse the cache.
func (g *GeoSpark) Load(dir string, numPartitions int) error {
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		return err
	}
	raw := engine.Generate(g.ctx, "geospark-load", meta.NumPartitions(), func(p int) []Feature {
		recs, err := storage.ReadPartition(dir, meta, p, FeatureC)
		if err != nil {
			panic(err)
		}
		return recs
	}).Cache() // one disk pass; sampling and partitioning hit memory
	// Spatial-only KD partitioning over the full data.
	spatialBox := func(f Feature) index.Box { return index.Box2(f.MBR()) }
	partitioned, _ := partition.ByPlanner(raw, FeatureC, spatialBox,
		partition.KDTree{N: numPartitions},
		partition.Options{SampleFrac: 0.01, Seed: 1})
	g.loaded = partitioned.Cache()
	g.loaded.Count() // force the load
	return nil
}

// Loaded exposes the cached in-memory dataset.
func (g *GeoSpark) Loaded() *engine.RDD[Feature] { return g.loaded }

// RangeQuery selects the loaded features intersecting the ST window. The
// spatial filter runs through a per-partition R-tree built on the fly; the
// temporal filter parses every candidate's string timestamps.
func (g *GeoSpark) RangeQuery(space geom.MBR, dur tempo.Duration) *engine.RDD[Feature] {
	if g.loaded == nil {
		panic("baseline: GeoSpark.RangeQuery before Load")
	}
	return engine.MapPartitions(g.loaded, func(_ int, in []Feature) []Feature {
		items := make([]index.Item[int], len(in))
		for i, f := range in {
			items[i] = index.Item[int]{Box: index.Box2(f.MBR()), Data: i}
		}
		tree := index.BulkLoadSTR(items, 16)
		var out []Feature
		tree.SearchFunc(index.Box2(space), func(i int, _ index.Box) bool {
			// Temporal refinement: parse the string timestamps.
			if in[i].Duration().Intersects(dur) {
				out = append(out, in[i])
			}
			return true
		})
		return out
	})
}
