package pointpat

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

func TestGridValidate(t *testing.T) {
	ok := Grid{Radii: []float64{0.5, 1}, Lags: []int64{60, 3600}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	bad := []Grid{
		{Radii: nil, Lags: []int64{60}},
		{Radii: []float64{1}, Lags: nil},
		{Radii: []float64{1, 1}, Lags: []int64{60}},
		{Radii: []float64{2, 1}, Lags: []int64{60}},
		{Radii: []float64{-1}, Lags: []int64{60}},
		{Radii: []float64{1}, Lags: []int64{0}},
		{Radii: []float64{1}, Lags: []int64{60, 60}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad grid %d accepted: %+v", i, g)
		}
	}
}

func TestRegionOf(t *testing.T) {
	if !RegionOf(nil).IsEmpty() {
		t.Fatal("empty point set should yield empty region")
	}
	r := RegionOf([]Point{{1, 2, 10}, {3, -1, 5}})
	want := Region{Space: geom.Box(1, -1, 3, 2), Time: tempo.New(5, 10)}
	if r != want {
		t.Fatalf("region = %+v, want %+v", r, want)
	}
	if r.Volume() != 2*3*5 {
		t.Fatalf("volume = %v, want 30", r.Volume())
	}
	one := RegionOf([]Point{{1, 1, 1}})
	if one.Volume() != 0 {
		t.Fatalf("degenerate region volume = %v, want 0", one.Volume())
	}
}

// TestCountsRectResolve pins the difference-matrix accumulator against a
// naive per-cell double loop over random rectangles.
func TestCountsRectResolve(t *testing.T) {
	g := Grid{Radii: []float64{1, 2, 3, 4}, Lags: []int64{10, 20, 30}}
	rng := rand.New(rand.NewSource(7))
	c := newCounts(g)
	nr, nl := len(g.Radii), len(g.Lags)
	naivePairs := make([][]int64, nr)
	naiveCenters := make([][]int64, nr)
	for r := range naivePairs {
		naivePairs[r] = make([]int64, nl)
		naiveCenters[r] = make([]int64, nl)
	}
	for i := 0; i < 500; i++ {
		ri, li := rng.Intn(nr), rng.Intn(nl)
		re, le := rng.Intn(nr+1)-1, rng.Intn(nl+1)-1
		c.addPair(ri, li, re, le)
		for r := ri; r <= re; r++ {
			for l := li; l <= le; l++ {
				naivePairs[r][l]++
			}
		}
		c.addCenter(re, le)
		for r := 0; r <= re; r++ {
			for l := 0; l <= le; l++ {
				naiveCenters[r][l]++
			}
		}
	}
	pairs, centers := c.resolve()
	if !reflect.DeepEqual(pairs, naivePairs) {
		t.Errorf("pairs mismatch:\n got %v\nwant %v", pairs, naivePairs)
	}
	if !reflect.DeepEqual(centers, naiveCenters) {
		t.Errorf("centers mismatch:\n got %v\nwant %v", centers, naiveCenters)
	}
}

func TestRadiusLagIdx(t *testing.T) {
	r2 := []float64{1, 4, 9}
	for _, tc := range []struct {
		d2   float64
		want int
	}{{0, 0}, {1, 0}, {1.5, 1}, {4, 1}, {9, 2}, {9.1, -1}} {
		if got := radiusIdx(r2, tc.d2); got != tc.want {
			t.Errorf("radiusIdx(%v) = %d, want %d", tc.d2, got, tc.want)
		}
	}
	lags := []int64{10, 100}
	for _, tc := range []struct {
		dt   int64
		want int
	}{{0, 0}, {10, 0}, {11, 1}, {100, 1}, {101, -1}} {
		if got := lagIdx(lags, tc.dt); got != tc.want {
			t.Errorf("lagIdx(%d) = %d, want %d", tc.dt, got, tc.want)
		}
	}
}

// uniformPts draws n points uniformly over a 10×10×day region.
func uniformPts(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 10, Y: rng.Float64() * 10, T: rng.Int63n(86400)}
	}
	return pts
}

// requireSameK asserts the two K results agree bit-for-bit on everything
// the statistic is made of.
func requireSameK(t *testing.T, dist, brute *KResult) {
	t.Helper()
	if dist.N != brute.N {
		t.Fatalf("N: distributed %d, brute %d", dist.N, brute.N)
	}
	if dist.Region != brute.Region {
		t.Fatalf("region: distributed %+v, brute %+v", dist.Region, brute.Region)
	}
	if !reflect.DeepEqual(dist.Pairs, brute.Pairs) {
		t.Fatalf("pair counts diverge:\n distributed %v\n brute       %v", dist.Pairs, brute.Pairs)
	}
	if !reflect.DeepEqual(dist.Centers, brute.Centers) {
		t.Fatalf("center counts diverge:\n distributed %v\n brute       %v", dist.Centers, brute.Centers)
	}
	for r := range dist.K {
		for l := range dist.K[r] {
			if math.Float64bits(dist.K[r][l]) != math.Float64bits(brute.K[r][l]) {
				t.Fatalf("K[%d][%d]: distributed %v, brute %v (bits differ)",
					r, l, dist.K[r][l], brute.K[r][l])
			}
		}
	}
}

// TestPointPatSmoke is the make-check smoke: a tiny dataset, distributed
// halo-corrected K bit-identical to the brute-force oracle, halo traffic
// observed and accounted.
func TestPointPatSmoke(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	pts := uniformPts(300, 42)
	cfg := KConfig{
		Grid:       Grid{Radii: []float64{0.5, 1, 2}, Lags: []int64{3600, 4 * 3600}},
		Partitions: 4,
	}
	brute, err := BruteForceK(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := DistributedK(ctx, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameK(t, dist, brute)
	if dist.Partitions < 2 {
		t.Fatalf("smoke should run multi-partition, got %d", dist.Partitions)
	}
	if dist.HaloPoints == 0 || dist.HaloBytes == 0 {
		t.Fatal("expected halo traffic between adjacent partitions")
	}
	if dist.PairsTested >= brute.PairsTested {
		t.Fatalf("distributed sweep tested %d pairs, not fewer than brute force's %d",
			dist.PairsTested, brute.PairsTested)
	}
	snap := ctx.Metrics.Snapshot()
	if snap.HaloPoints != dist.HaloPoints || snap.HaloBytes != dist.HaloBytes {
		t.Fatalf("metrics halo (%d pts, %d bytes) != result (%d pts, %d bytes)",
			snap.HaloPoints, snap.HaloBytes, dist.HaloPoints, dist.HaloBytes)
	}
	if snap.PairsTested != dist.PairsTested || snap.PairsCounted != dist.PairsCounted {
		t.Fatalf("metrics pairs (%d/%d) != result (%d/%d)",
			snap.PairsTested, snap.PairsCounted, dist.PairsTested, dist.PairsCounted)
	}
}

// TestKExplain checks that a traced run surfaces the halo and pair-count
// spans through the explain builder.
func TestKExplain(t *testing.T) {
	tr := trace.New()
	ctx := engine.New(engine.Config{Slots: 2, Tracer: tr})
	pts := uniformPts(200, 7)
	cfg := KConfig{
		Grid:       Grid{Radii: []float64{1, 2}, Lags: []int64{3600}},
		Partitions: 3,
	}
	dist, err := DistributedK(ctx, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := trace.Build(tr.Snapshot())
	if e == nil || e.PointPat == nil {
		t.Fatal("explain has no pointpat section")
	}
	if e.PointPat.Stat != "k" {
		t.Fatalf("explain stat = %q, want k", e.PointPat.Stat)
	}
	if e.PointPat.HaloPoints != dist.HaloPoints || e.PointPat.HaloBytes != dist.HaloBytes {
		t.Fatalf("explain halo (%d, %d) != result (%d, %d)",
			e.PointPat.HaloPoints, e.PointPat.HaloBytes, dist.HaloPoints, dist.HaloBytes)
	}
	if e.PointPat.PairsTested != dist.PairsTested || e.PointPat.PairsCounted != dist.PairsCounted {
		t.Fatalf("explain pairs (%d/%d) != result (%d/%d)",
			e.PointPat.PairsTested, e.PointPat.PairsCounted, dist.PairsTested, dist.PairsCounted)
	}
}

func TestKDegenerateInputs(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	cfg := KConfig{Grid: Grid{Radii: []float64{1}, Lags: []int64{60}}, Partitions: 3}
	for _, pts := range [][]Point{nil, {{1, 1, 1}}, {{1, 1, 1}, {1, 1, 1}}} {
		brute, err := BruteForceK(pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := DistributedK(ctx, pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireSameK(t, dist, brute)
	}
	if _, err := BruteForceK(nil, KConfig{}); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := DistributedK(ctx, nil, KConfig{}); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestGetisValidateAndHot(t *testing.T) {
	if err := (GetisConfig{}).Validate(); err == nil {
		t.Fatal("empty getis grid accepted")
	}
	grid := instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: geom.Box(0, 0, 4, 4), NX: 2, NY: 2},
		Time:  instance.TimeGrid{Window: tempo.New(0, 99), NT: 1},
	}
	if err := (GetisConfig{Grid: grid, RadiusCells: -1}).Validate(); err == nil {
		t.Fatal("negative radius accepted")
	}
	// A single dense cell should be the lone hot spot.
	var pts []Point
	for i := 0; i < 30; i++ {
		pts = append(pts, Point{X: 0.5, Y: 0.5, T: int64(i)})
	}
	pts = append(pts, Point{X: 3.5, Y: 3.5, T: 5})
	res, err := BruteForceGiStar(pts, GetisConfig{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	hot := res.Hot(1.5)
	if len(hot) != 1 || hot[0].IX != 0 || hot[0].IY != 0 || hot[0].IT != 0 {
		t.Fatalf("hot spots = %+v, want exactly cell (0,0,0)", hot)
	}
	if hot[0].Count != 30 {
		t.Fatalf("hot cell count = %d, want 30", hot[0].Count)
	}
}

func requireSameGetis(t *testing.T, dist, brute *GetisResult) {
	t.Helper()
	if !reflect.DeepEqual(dist.Counts, brute.Counts) {
		t.Fatalf("cell counts diverge:\n distributed %v\n brute       %v", dist.Counts, brute.Counts)
	}
	for i := range dist.Z {
		if math.Float64bits(dist.Z[i]) != math.Float64bits(brute.Z[i]) {
			t.Fatalf("Z[%d]: distributed %v, brute %v (bits differ)", i, dist.Z[i], brute.Z[i])
		}
	}
	if math.Float64bits(dist.Mean) != math.Float64bits(brute.Mean) ||
		math.Float64bits(dist.Std) != math.Float64bits(brute.Std) {
		t.Fatalf("moments diverge: distributed (%v, %v), brute (%v, %v)",
			dist.Mean, dist.Std, brute.Mean, brute.Std)
	}
}

func TestGetisSmoke(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	grid := instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: geom.Box(0, 0, 10, 10), NX: 5, NY: 5},
		Time:  instance.TimeGrid{Window: tempo.New(0, 86399), NT: 4},
	}
	cfg := GetisConfig{Grid: grid, RadiusCells: 1, LagSlots: 1, Partitions: 3}
	pts := uniformPts(400, 11)
	brute, err := BruteForceGiStar(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := DistributedGiStar(ctx, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGetis(t, dist, brute)
	snap := ctx.Metrics.Snapshot()
	if snap.PairsTested == 0 {
		t.Fatal("getis scoring recorded no neighborhood visits in metrics")
	}
}
