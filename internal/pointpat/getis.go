package pointpat

import (
	"fmt"
	"math"

	"st4ml/internal/convert"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

// GetisConfig parameterizes a Getis-Ord Gi* hot-spot analysis over a
// regular ST raster: points are binned into Grid cells, and each cell's
// z-score compares its neighborhood count sum against the global mean.
type GetisConfig struct {
	// Grid is the raster the pattern is binned into. Required.
	Grid instance.RasterGrid
	// RadiusCells is the spatial neighborhood radius in cells (Chebyshev:
	// the (2r+1)×(2r+1) block around each cell, self included). 0 means
	// only the cell itself spatially.
	RadiusCells int
	// LagSlots is the temporal neighborhood radius in slots. 0 means only
	// the cell's own slot.
	LagSlots int
	// Method selects the conversion allocation strategy (Auto picks
	// grid-index arithmetic here). The exact closed-boundary predicates
	// are applied regardless, so the counts do not depend on it.
	Method convert.Method
	// Partitions is the parallelism of the distributed path (≤0 uses the
	// engine default). Ignored by BruteForceGiStar.
	Partitions int
}

// Validate reports whether the config is usable.
func (c GetisConfig) Validate() error {
	if c.Grid.NumCells() <= 0 {
		return fmt.Errorf("pointpat: getis raster grid has no cells")
	}
	if c.RadiusCells < 0 || c.LagSlots < 0 {
		return fmt.Errorf("pointpat: getis neighborhood radii must be non-negative")
	}
	return nil
}

// GetisCell is one raster cell of a Gi* result, with its grid coordinates,
// binned count, and z-score.
type GetisCell struct {
	Cell  int     `json:"cell"`
	IX    int     `json:"ix"`
	IY    int     `json:"iy"`
	IT    int     `json:"it"`
	Count int64   `json:"count"`
	Z     float64 `json:"z"`
}

// GetisResult is a scored Gi* raster. Counts and Z are indexed by
// RasterGrid cell index. Two results with equal Counts carry bit-identical
// Z (the scoring is a deterministic function of the integer grid).
type GetisResult struct {
	Grid   instance.RasterGrid
	Counts []int64
	Z      []float64
	// Mean and Std are the global moments the scores are standardized by.
	Mean, Std float64
	// NeighborsVisited counts (cell, neighbor-cell) visits during scoring;
	// CellsScored counts scored cells.
	NeighborsVisited int64
	CellsScored      int64
}

// Hot returns the cells with Z ≥ threshold, in cell-index order.
func (r *GetisResult) Hot(threshold float64) []GetisCell {
	var out []GetisCell
	per := r.Grid.Space.NumCells()
	for i, z := range r.Z {
		if z >= threshold {
			it := i / per
			rem := i % per
			out = append(out, GetisCell{
				Cell: i, IX: rem % r.Grid.Space.NX, IY: rem / r.Grid.Space.NX, IT: it,
				Count: r.Counts[i], Z: z,
			})
		}
	}
	return out
}

// giStats holds the global moments of a cell-count grid, computed from
// integer totals so both estimation paths derive identical floats.
type giStats struct {
	n         int
	mean, std float64
}

func momentsOf(vals []int64) giStats {
	var sum, sumSq int64
	for _, v := range vals {
		sum += v
		sumSq += v * v
	}
	n := len(vals)
	mean := float64(sum) / float64(n)
	variance := float64(sumSq)/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return giStats{n: n, mean: mean, std: math.Sqrt(variance)}
}

// giCellZ scores one cell: binary weights over the Chebyshev
// radius×lag neighborhood (self included, clipped at the grid edge),
// integer neighborhood sums, then the standard Gi* statistic
//
//	z = (Σwx − X̄·W) / (S·sqrt((n·W − W²)/(n−1)))
//
// Both the distributed and brute-force paths call this exact function, so
// equal count grids yield bit-identical scores.
func giCellZ(vals []int64, g instance.RasterGrid, rc, ls, cell int, st giStats) (z float64, visited int64) {
	per := g.Space.NumCells()
	it0 := cell / per
	rem := cell % per
	iy0, ix0 := rem/g.Space.NX, rem%g.Space.NX
	var wx, w int64
	for it := maxi(0, it0-ls); it <= mini(g.Time.NT-1, it0+ls); it++ {
		for iy := maxi(0, iy0-rc); iy <= mini(g.Space.NY-1, iy0+rc); iy++ {
			for ix := maxi(0, ix0-rc); ix <= mini(g.Space.NX-1, ix0+rc); ix++ {
				wx += vals[g.Index(ix, iy, it)]
				w++
				visited++
			}
		}
	}
	if st.n <= 1 || st.std == 0 {
		return 0, visited
	}
	num := float64(wx) - st.mean*float64(w)
	den := st.std * math.Sqrt((float64(st.n)*float64(w)-float64(w)*float64(w))/float64(st.n-1))
	if den == 0 {
		return 0, visited
	}
	return num / den, visited
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// giEvent is the event shape points take through the Conversion stage.
type giEvent = instance.Event[geom.Point, instance.Unit, instance.Unit]

func toGiEvent(p Point) giEvent {
	return instance.NewEvent(geom.Pt(p.X, p.Y), tempo.Instant(p.T), instance.Unit{}, instance.Unit{})
}

// BruteForceGiStar bins and scores on a single partition with naive
// per-(point, cell) predicate tests — the oracle for the distributed path.
// The binning predicates are the same closed-boundary tests the Conversion
// stage applies (a point on a shared cell border counts in every touching
// cell), so the two paths agree exactly.
func BruteForceGiStar(pts []Point, cfg GetisConfig) (*GetisResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cells, slots := cfg.Grid.Build()
	vals := make([]int64, len(cells))
	for _, p := range pts {
		pt, at := geom.Pt(p.X, p.Y), tempo.Instant(p.T)
		for c := range cells {
			if slots[c].Intersects(at) && cells[c].ContainsPoint(pt) {
				vals[c]++
			}
		}
	}
	return scoreGrid(cfg, vals), nil
}

// scoreGrid runs the shared sequential scoring over a merged count grid.
func scoreGrid(cfg GetisConfig, vals []int64) *GetisResult {
	st := momentsOf(vals)
	z := make([]float64, len(vals))
	var visited int64
	for c := range vals {
		var v int64
		z[c], v = giCellZ(vals, cfg.Grid, cfg.RadiusCells, cfg.LagSlots, c, st)
		visited += v
	}
	return &GetisResult{
		Grid: cfg.Grid, Counts: vals, Z: z, Mean: st.mean, Std: st.std,
		NeighborsVisited: visited, CellsScored: int64(len(vals)),
	}
}

// DistributedGiStar bins points into the raster through the Conversion
// stage (per-partition allocation, integer partial-raster merge) and
// scores cells in parallel over a broadcast of the merged grid. Counts and
// z-scores are bit-for-bit identical to BruteForceGiStar on the same
// points and config.
func DistributedGiStar(ctx *engine.Context, pts []Point, cfg GetisConfig) (*GetisResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	events := engine.Map(engine.Parallelize(ctx, pts, cfg.Partitions), toGiEvent)
	partials := convert.EventToRaster(events, convert.RasterGridTarget(cfg.Grid), cfg.Method,
		func(evs []giEvent) int64 { return int64(len(evs)) })
	vals := make([]int64, cfg.Grid.NumCells())
	for _, r := range partials.CollectPartitions() {
		for _, partial := range r {
			for i, e := range partial.Entries {
				vals[i] += e.Value
			}
		}
	}

	span := ctx.StartSpan(trace.SpanPointPatPairs, trace.Str("stat", "getis"))
	sctx := ctx.WithSpan(span)
	idxs := make([]int, len(vals))
	for i := range idxs {
		idxs[i] = i
	}
	st := momentsOf(vals)
	bv := engine.Broadcast(sctx, vals, int64(8*len(vals)))
	grid, rc, ls := cfg.Grid, cfg.RadiusCells, cfg.LagSlots
	type scored struct {
		cell    int
		z       float64
		visited int64
	}
	scoredRDD := engine.Map(engine.Parallelize(sctx, idxs, cfg.Partitions), func(c int) scored {
		z, v := giCellZ(bv.Value(), grid, rc, ls, c, st)
		return scored{cell: c, z: z, visited: v}
	})
	z := make([]float64, len(vals))
	var visited int64
	for _, s := range scoredRDD.Collect() {
		z[s.cell] = s.z
		visited += s.visited
	}
	span.End(trace.Int("pairs_tested", visited), trace.Int("pairs_counted", int64(len(vals))))
	ctx.Metrics.AddPairCount(visited, int64(len(vals)))

	return &GetisResult{
		Grid: cfg.Grid, Counts: vals, Z: z, Mean: st.mean, Std: st.std,
		NeighborsVisited: visited, CellsScored: int64(len(vals)),
	}, nil
}
