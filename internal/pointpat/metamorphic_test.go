package pointpat

// The metamorphic wall: the distributed halo-corrected estimators must be
// bit-for-bit interchangeable with the single-partition brute-force
// oracles, across every layout shape the halo logic can get wrong —
// points exactly on partition boundaries, exact duplicates, degenerate
// regions, clusters far enough apart that rims are empty, and every
// planner family. Any divergence in a single integer count or float bit
// fails the wall.

import (
	"fmt"
	"math/rand"
	"testing"

	"st4ml/internal/convert"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/partition"
	"st4ml/internal/tempo"
)

// layout is one named seeded point generator.
type layout struct {
	name string
	gen  func(seed int64) []Point
}

var layouts = []layout{
	{"uniform", func(seed int64) []Point { return uniformPts(180, seed) }},
	{"clustered", func(seed int64) []Point {
		rng := rand.New(rand.NewSource(seed))
		var pts []Point
		for c := 0; c < 4; c++ {
			cx, cy := rng.Float64()*10, rng.Float64()*10
			ct := rng.Int63n(86400)
			for i := 0; i < 40; i++ {
				pts = append(pts, Point{
					X: cx + rng.NormFloat64()*0.3,
					Y: cy + rng.NormFloat64()*0.3,
					T: ct + rng.Int63n(7200),
				})
			}
		}
		return pts
	}},
	// lattice places every point on exact .5-multiples — planner splits
	// land exactly on point coordinates, exercising boundary ownership.
	{"lattice", func(seed int64) []Point {
		rng := rand.New(rand.NewSource(seed))
		var pts []Point
		for i := 0; i < 200; i++ {
			pts = append(pts, Point{
				X: float64(rng.Intn(21)) * 0.5,
				Y: float64(rng.Intn(21)) * 0.5,
				T: rng.Int63n(25) * 3600,
			})
		}
		return pts
	}},
	// duplicates draws with replacement from 12 distinct values, so many
	// points coincide exactly (identity must be by index, not value).
	{"duplicates", func(seed int64) []Point {
		rng := rand.New(rand.NewSource(seed))
		base := uniformPts(12, seed+1000)
		pts := make([]Point, 150)
		for i := range pts {
			pts[i] = base[rng.Intn(len(base))]
		}
		return pts
	}},
	// farclusters separates two blobs by much more than any radius — the
	// halo rims between them are empty.
	{"farclusters", func(seed int64) []Point {
		rng := rand.New(rand.NewSource(seed))
		var pts []Point
		for i := 0; i < 60; i++ {
			pts = append(pts, Point{X: rng.Float64(), Y: rng.Float64(), T: rng.Int63n(3600)})
		}
		for i := 0; i < 60; i++ {
			pts = append(pts, Point{X: 1000 + rng.Float64(), Y: 1000 + rng.Float64(),
				T: 10_000_000 + rng.Int63n(3600)})
		}
		return pts
	}},
	// collinear points give a zero-area region (K degenerates to 0, but
	// counts must still match).
	{"collinear", func(seed int64) []Point {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point, 100)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 10, Y: 5, T: rng.Int63n(86400)}
		}
		return pts
	}},
	{"tiny", func(seed int64) []Point { return uniformPts(int(seed%3), seed) }},
	{"negative-coords", func(seed int64) []Point {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point, 120)
		for i := range pts {
			pts[i] = Point{X: rng.Float64()*20 - 10, Y: rng.Float64()*20 - 10,
				T: rng.Int63n(86400) - 43200}
		}
		return pts
	}},
}

var wallGrids = []Grid{
	{Radii: []float64{0.5, 1, 2}, Lags: []int64{3600, 14400}},
	{Radii: []float64{0.1}, Lags: []int64{60}},
	{Radii: []float64{1, 2, 4, 8, 16, 2000}, Lags: []int64{7200, 86400, 20_000_000}},
}

// TestKMetamorphicWall sweeps layouts × partition counts × radius grids
// (96 combos) asserting distributed ≡ brute force bit-for-bit.
func TestKMetamorphicWall(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	combos := 0
	for li, lay := range layouts {
		for _, nParts := range []int{1, 2, 5, 8} {
			for gi, g := range wallGrids {
				combos++
				name := fmt.Sprintf("%s/p%d/g%d", lay.name, nParts, gi)
				t.Run(name, func(t *testing.T) {
					seed := int64(li*1000 + nParts*10 + gi)
					pts := lay.gen(seed)
					cfg := KConfig{Grid: g, Partitions: nParts}
					brute, err := BruteForceK(pts, cfg)
					if err != nil {
						t.Fatal(err)
					}
					dist, err := DistributedK(ctx, pts, cfg)
					if err != nil {
						t.Fatal(err)
					}
					requireSameK(t, dist, brute)
				})
			}
		}
	}
	if combos < 64 {
		t.Fatalf("wall ran only %d combos, ISSUE requires ≥64", combos)
	}
}

// TestKMetamorphicPlanners re-runs the wall over every planner family, so
// halo correctness does not depend on STR2D's particular splits.
func TestKMetamorphicPlanners(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	planners := []partition.Planner{
		partition.STR2D{N: 6},
		partition.TSTR{GT: 2, GS: 3},
		partition.TBalance{N: 6},
		partition.QuadTree{N: 6},
		partition.KDTree{N: 6},
		partition.Grid{N: 6},
	}
	g := wallGrids[0]
	for _, lay := range layouts[:4] {
		for _, pl := range planners {
			t.Run(fmt.Sprintf("%s/%s", lay.name, pl.Name()), func(t *testing.T) {
				pts := lay.gen(99)
				cfg := KConfig{Grid: g, Planner: pl, Partitions: 6}
				brute, err := BruteForceK(pts, cfg)
				if err != nil {
					t.Fatal(err)
				}
				dist, err := DistributedK(ctx, pts, cfg)
				if err != nil {
					t.Fatal(err)
				}
				requireSameK(t, dist, brute)
			})
		}
	}
}

// TestKExplicitBoundaryPoints pins the exact scenario the halo must not
// fumble: a hand-built region split at x=1 with points sitting exactly on
// the split line, exactly hMax away from it on both sides, and exact
// duplicates straddling it.
func TestKExplicitBoundaryPoints(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	pts := []Point{
		{0, 0, 0}, {2, 0, 0}, // corners pin the region to [0,2]×[0,0]... widened below
		{1, 0.5, 100}, {1, 1.5, 100}, // exactly on the split line
		{0.5, 1, 100}, {1.5, 1, 100}, // exactly hMax=0.5 from the line
		{1, 1, 200}, {1, 1, 200}, // exact duplicates on the line
		{0, 2, 300}, {2, 2, 300},
	}
	cfg := KConfig{
		Grid:       Grid{Radii: []float64{0.5, 1}, Lags: []int64{100, 300}},
		Planner:    partition.Grid{N: 2},
		Partitions: 2,
	}
	brute, err := BruteForceK(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := DistributedK(ctx, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameK(t, dist, brute)
	if dist.HaloPoints == 0 {
		t.Fatal("scenario should exchange rim points across the split")
	}
	if brute.PairsCounted == 0 {
		t.Fatal("scenario should record pairs")
	}
}

// TestGetisMetamorphicWall sweeps layouts × grids × neighborhood shapes ×
// conversion methods, asserting distributed counts and z-scores equal the
// naive single-pass oracle bit-for-bit.
func TestGetisMetamorphicWall(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	grids := []instance.RasterGrid{
		{
			Space: instance.SpatialGrid{Extent: geom.Box(0, 0, 10, 10), NX: 4, NY: 4},
			Time:  instance.TimeGrid{Window: tempo.New(0, 86399), NT: 3},
		},
		{
			Space: instance.SpatialGrid{Extent: geom.Box(2, 2, 8, 8), NX: 3, NY: 2},
			Time:  instance.TimeGrid{Window: tempo.New(1000, 50000), NT: 1},
		},
	}
	for _, lay := range layouts[:6] {
		for gi, grid := range grids {
			for _, shape := range []struct{ rc, ls int }{{0, 0}, {1, 1}, {2, 0}} {
				for _, m := range []convert.Method{convert.Auto, convert.Naive, convert.RTree} {
					name := fmt.Sprintf("%s/g%d/r%dl%d/%s", lay.name, gi, shape.rc, shape.ls, m)
					t.Run(name, func(t *testing.T) {
						pts := lay.gen(int64(gi + shape.rc*7 + 3))
						cfg := GetisConfig{
							Grid: grid, RadiusCells: shape.rc, LagSlots: shape.ls,
							Method: m, Partitions: 3,
						}
						brute, err := BruteForceGiStar(pts, cfg)
						if err != nil {
							t.Fatal(err)
						}
						dist, err := DistributedGiStar(ctx, pts, cfg)
						if err != nil {
							t.Fatal(err)
						}
						requireSameGetis(t, dist, brute)
					})
				}
			}
		}
	}
}
