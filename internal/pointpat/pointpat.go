// Package pointpat implements distributed spatio-temporal point-pattern
// analytics over the engine: the space-time Ripley's K function and
// Getis-Ord Gi* hot-spot detection — the first workload class in this
// repository whose cost is pairwise (every point against its ST
// neighborhood) rather than window-shaped (every point against a query
// box).
//
// The distributed K estimator partitions events with the same ST planners
// selection uses, then corrects each partition's local pair counts at the
// boundaries with a partition halo exchange: every partition ships only the
// rim of its points that lie within the maximum search radius
// (h_max spatially, t_max temporally) of a neighbor partition's bounds,
// over the engine's CRC-framed shuffle. A pair (i, j) within the search
// radius is then always visible to the partition that owns i — either j is
// local or j arrived in the halo — so the distributed ordered-pair counts
// equal a single-partition brute-force count exactly (see DESIGN.md,
// "Point-pattern analytics", for the containment argument). All grid
// accumulation is integer, so the distributed statistics are bit-for-bit
// identical to the brute-force oracle, not merely close.
//
// Gi* rides on the Conversion stage: events are rasterized per partition
// with convert.EventToRaster, partial rasters merge by integer cell-count
// addition, and the z-scores are computed over the merged grid with binary
// neighborhood weights — so hot-spot maps from the distributed path equal
// the naive single-pass binning oracle exactly as well.
//
// Distances are planar Euclidean in coordinate units (degrees for the
// lon/lat corpora) and temporal gaps are in seconds; callers pick radius
// grids accordingly (geom.MetersToDegreesLat helps).
package pointpat

import (
	"fmt"
	"math"
	"sort"

	"st4ml/internal/codec"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/tempo"
)

// Point is one event observation of the analyzed pattern: planar
// coordinates plus an instant. The statistics care only about geometry, so
// records from any schema reduce to this.
type Point struct {
	X, Y float64
	T    int64
}

// PointC is the binary codec Points travel the shuffle with.
var PointC = codec.Codec[Point]{
	Enc: func(w *codec.Writer, p Point) {
		w.PutFloat64(p.X)
		w.PutFloat64(p.Y)
		w.PutVarint(p.T)
	},
	Dec: func(r *codec.Reader) Point {
		return Point{X: r.Float64(), Y: r.Float64(), T: r.Varint()}
	},
}

// Box returns the point's degenerate ST box (for partition assignment).
func (p Point) Box() index.Box {
	return index.BoxOfPoint(geom.Pt(p.X, p.Y), p.T)
}

// Grid is the radius×lag evaluation grid of a space-time statistic:
// K(h, t) is estimated at every (Radii[r], Lags[l]) combination. Radii and
// Lags must be strictly ascending and positive; the largest entries double
// as the halo radii h_max and t_max.
type Grid struct {
	Radii []float64 // spatial radii, coordinate units, ascending
	Lags  []int64   // temporal lags, seconds, ascending
}

// Validate reports whether the grid is usable.
func (g Grid) Validate() error {
	if len(g.Radii) == 0 || len(g.Lags) == 0 {
		return fmt.Errorf("pointpat: empty radius or lag grid")
	}
	for i, h := range g.Radii {
		if h <= 0 || (i > 0 && h <= g.Radii[i-1]) {
			return fmt.Errorf("pointpat: radii must be positive ascending, got %v", g.Radii)
		}
	}
	for i, t := range g.Lags {
		if t <= 0 || (i > 0 && t <= g.Lags[i-1]) {
			return fmt.Errorf("pointpat: lags must be positive ascending, got %v", g.Lags)
		}
	}
	return nil
}

// HMax returns the largest spatial radius (the halo radius).
func (g Grid) HMax() float64 { return g.Radii[len(g.Radii)-1] }

// TMax returns the largest temporal lag (the halo lag).
func (g Grid) TMax() int64 { return g.Lags[len(g.Lags)-1] }

// radiusIdx returns the smallest radius index whose ball contains a pair at
// squared distance d2, or -1 when the pair is beyond every radius. r2 holds
// the squared radii.
func radiusIdx(r2 []float64, d2 float64) int {
	for r, rr := range r2 {
		if d2 <= rr {
			return r
		}
	}
	return -1
}

// lagIdx returns the smallest lag index covering temporal gap dt, or -1.
func lagIdx(lags []int64, dt int64) int {
	for l, lag := range lags {
		if dt <= lag {
			return l
		}
	}
	return -1
}

// Region is the rectangular ST study region the pattern is observed in.
// The intensity normalization and the border edge correction are both
// relative to it.
type Region struct {
	Space geom.MBR
	Time  tempo.Duration
}

// RegionOf returns the exact ST bounds of a point set.
func RegionOf(pts []Point) Region {
	r := Region{Space: geom.EmptyMBR(), Time: tempo.Empty()}
	for _, p := range pts {
		r.Space = r.Space.ExpandToPoint(geom.Pt(p.X, p.Y))
		r.Time = r.Time.ExpandTo(p.T)
	}
	return r
}

// IsEmpty reports whether the region holds no volume at all (no points).
func (r Region) IsEmpty() bool { return r.Space.IsEmpty() || r.Time.IsEmpty() }

// Volume returns the ST volume |W|·|T| used by the intensity normalizer.
// Degenerate axes contribute zero.
func (r Region) Volume() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Space.Area() * float64(r.Time.End-r.Time.Start)
}

// eligIdx returns the border-correction eligibility of a point: the largest
// radius index re such that the ball of Radii[re] around p stays inside the
// region spatially, and the largest lag index le such that the interval of
// Lags[le] stays inside temporally. Either is -1 when the point is too
// close to the boundary for even the smallest radius/lag — such a point
// still participates as a pair target, just never as a center.
func eligIdx(g Grid, reg Region, p Point) (re, le int) {
	ds := math.Min(
		math.Min(p.X-reg.Space.MinX, reg.Space.MaxX-p.X),
		math.Min(p.Y-reg.Space.MinY, reg.Space.MaxY-p.Y),
	)
	dt := min64(p.T-reg.Time.Start, reg.Time.End-p.T)
	re, le = -1, -1
	for r, h := range g.Radii {
		if h <= ds {
			re = r
		}
	}
	for l, lag := range g.Lags {
		if lag <= dt {
			le = l
		}
	}
	return re, le
}

// counts accumulates the integer pair and eligible-center counts of one
// partition (or of the whole pattern, for the brute-force oracle) over the
// radius×lag grid. Increment regions are rectangles in (radius, lag) index
// space, so both matrices are kept as 2-d difference arrays and resolved
// with prefix sums at the end — every pair costs O(1) regardless of grid
// size, and everything stays integer (hence exactly mergeable in any
// order).
type counts struct {
	nr, nl  int
	pairD   []int64 // (nr+1)×(nl+1) difference matrix of pair counts
	centerD []int64 // same, for eligible-center counts
	tested  int64   // candidate pairs whose distance predicate ran
	counted int64   // pairs recorded into at least one grid cell
}

func newCounts(g Grid) *counts {
	nr, nl := len(g.Radii), len(g.Lags)
	return &counts{
		nr: nr, nl: nl,
		pairD:   make([]int64, (nr+1)*(nl+1)),
		centerD: make([]int64, (nr+1)*(nl+1)),
	}
}

// rect adds +1 over the index rectangle [r0..r1]×[l0..l1] of a difference
// matrix (inclusive bounds; no-op when empty).
func (c *counts) rect(d []int64, r0, r1, l0, l1 int) {
	if r0 > r1 || l0 > l1 {
		return
	}
	w := c.nl + 1
	d[r0*w+l0]++
	d[(r1+1)*w+l0]--
	d[r0*w+l1+1]--
	d[(r1+1)*w+l1+1]++
}

// addCenter records a point as an eligible center for radii ≤ re and
// lags ≤ le.
func (c *counts) addCenter(re, le int) {
	c.rect(c.centerD, 0, re, 0, le)
}

// addPair records an ordered pair entering the grid at (ri, li), visible
// only where its center stays eligible: cells (r, l) with ri ≤ r ≤ re and
// li ≤ l ≤ le.
func (c *counts) addPair(ri, li, re, le int) {
	if ri <= re && li <= le {
		c.counted++
	}
	c.rect(c.pairD, ri, re, li, le)
}

// merge folds another partition's counts in (integer, order-independent).
func (c *counts) merge(o *counts) {
	for i, v := range o.pairD {
		c.pairD[i] += v
	}
	for i, v := range o.centerD {
		c.centerD[i] += v
	}
	c.tested += o.tested
	c.counted += o.counted
}

// resolve turns the difference matrices into per-cell totals.
func (c *counts) resolve() (pairs, centers [][]int64) {
	return resolveDiff(c.pairD, c.nr, c.nl), resolveDiff(c.centerD, c.nr, c.nl)
}

func resolveDiff(d []int64, nr, nl int) [][]int64 {
	w := nl + 1
	acc := make([]int64, len(d))
	copy(acc, d)
	for r := 0; r <= nr; r++ {
		for l := 1; l <= nl; l++ {
			acc[r*w+l] += acc[r*w+l-1]
		}
	}
	for r := 1; r <= nr; r++ {
		for l := 0; l <= nl; l++ {
			acc[r*w+l] += acc[(r-1)*w+l]
		}
	}
	out := make([][]int64, nr)
	for r := 0; r < nr; r++ {
		out[r] = make([]int64, nl)
		for l := 0; l < nl; l++ {
			out[r][l] = acc[r*w+l]
		}
	}
	return out
}

// countInto counts every ordered pair (i, j) with center i drawn from own
// and target j drawn from own ∪ halo into c, using a time-sorted sweep so
// only candidates within TMax are tested — the sub-quadratic path the
// distributed estimator runs per partition. Counting order never affects
// the totals (they are integers), so this is exactly equivalent to the
// brute-force double loop.
func countInto(c *counts, g Grid, reg Region, own, halo []Point) {
	n := len(own) + len(halo)
	all := make([]Point, 0, n)
	all = append(all, own...)
	all = append(all, halo...)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return all[order[a]].T < all[order[b]].T })
	times := make([]int64, n)
	for k, idx := range order {
		times[k] = all[idx].T
	}
	r2 := make([]float64, len(g.Radii))
	for i, h := range g.Radii {
		r2[i] = h * h
	}
	tmax := g.TMax()
	for ci := range own {
		p := own[ci]
		re, le := eligIdx(g, reg, p)
		c.addCenter(re, le)
		lo := sort.Search(n, func(k int) bool { return times[k] >= p.T-tmax })
		for k := lo; k < n && times[k] <= p.T+tmax; k++ {
			aj := order[k]
			if aj == ci {
				continue // a point is never its own neighbor
			}
			q := all[aj]
			c.tested++
			dx, dy := q.X-p.X, q.Y-p.Y
			ri := radiusIdx(r2, dx*dx+dy*dy)
			if ri < 0 {
				continue
			}
			li := lagIdx(g.Lags, abs64(q.T-p.T))
			c.addPair(ri, li, re, le)
		}
	}
}

// bruteCount is the O(n²) oracle: every ordered pair tested, no sweep, no
// halo. The metamorphic wall pins countInto (and its distributed split)
// against this.
func bruteCount(c *counts, g Grid, reg Region, pts []Point) {
	r2 := make([]float64, len(g.Radii))
	for i, h := range g.Radii {
		r2[i] = h * h
	}
	for i := range pts {
		p := pts[i]
		re, le := eligIdx(g, reg, p)
		c.addCenter(re, le)
		for j := range pts {
			if j == i {
				continue
			}
			q := pts[j]
			c.tested++
			dx, dy := q.X-p.X, q.Y-p.Y
			ri := radiusIdx(r2, dx*dx+dy*dy)
			if ri < 0 {
				continue
			}
			li := lagIdx(g.Lags, abs64(q.T-p.T))
			if li < 0 {
				continue
			}
			c.addPair(ri, li, re, le)
		}
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
