package pointpat

import (
	"fmt"

	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/partition"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

// KConfig parameterizes a space-time Ripley's K estimation.
type KConfig struct {
	// Grid is the radius×lag evaluation grid. Required.
	Grid Grid
	// Region overrides the study region; nil uses the exact point-set
	// bounds. The distributed and brute-force paths must agree on it for
	// bit-identical border correction, which they do by defaulting the same
	// way.
	Region *Region
	// Partitions is the target ST partition count for the distributed
	// estimator (≤0 uses the engine's default parallelism). Ignored by
	// BruteForceK.
	Partitions int
	// Planner picks the ST partitioning scheme (nil uses STR2D over the
	// target partition count). Ignored by BruteForceK.
	Planner partition.Planner
}

// KResult is an estimated space-time K function plus the integer evidence
// it was derived from. Pairs[r][l] counts ordered point pairs within
// spatial radius Grid.Radii[r] and temporal lag Grid.Lags[l] whose center
// is border-eligible at that cell; Centers[r][l] counts the eligible
// centers. K[r][l] is the edge-corrected estimate
//
//	K̂(h, t) = |W×T| · Pairs / (n · Centers)
//
// computed once from those integers, so two KResults with equal Pairs,
// Centers, N, and Region carry bit-identical K matrices.
type KResult struct {
	Grid    Grid
	Region  Region
	N       int64
	Pairs   [][]int64
	Centers [][]int64
	K       [][]float64

	// Partitions is the number of ST partitions the estimate ran over
	// (1 for the brute-force oracle). The remaining fields account the
	// work: candidate pairs tested, pair matches recorded, and the rim
	// points (with encoded bytes) the halo exchange duplicated.
	Partitions   int
	PairsTested  int64
	PairsCounted int64
	HaloPoints   int64
	HaloBytes    int64
}

// finalizeK turns accumulated integer counts into a KResult. Both
// estimators funnel through it so the float math is shared (identical
// expression, identical evaluation order).
func finalizeK(g Grid, reg Region, n int64, c *counts) *KResult {
	pairs, centers := c.resolve()
	vol := reg.Volume()
	k := make([][]float64, len(g.Radii))
	for r := range k {
		k[r] = make([]float64, len(g.Lags))
		for l := range k[r] {
			p, cn := pairs[r][l], centers[r][l]
			if n == 0 || cn == 0 || vol == 0 {
				continue
			}
			k[r][l] = vol * float64(p) / (float64(n) * float64(cn))
		}
	}
	return &KResult{
		Grid: g, Region: reg, N: n,
		Pairs: pairs, Centers: centers, K: k,
		PairsTested: c.tested, PairsCounted: c.counted,
	}
}

func resolveRegion(cfg KConfig, pts []Point) Region {
	if cfg.Region != nil {
		return *cfg.Region
	}
	return RegionOf(pts)
}

// BruteForceK estimates the space-time K function on a single partition
// with the O(n²) double loop — the oracle the distributed estimator is
// pinned against bit-for-bit.
func BruteForceK(pts []Point, cfg KConfig) (*KResult, error) {
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	reg := resolveRegion(cfg, pts)
	c := newCounts(cfg.Grid)
	bruteCount(c, cfg.Grid, reg, pts)
	res := finalizeK(cfg.Grid, reg, int64(len(pts)), c)
	res.Partitions = 1
	return res, nil
}

// stBox is one partition's actual (not planned) point-set bounds; halo
// routing measures distances against these, so empty partitions attract no
// rim traffic at all.
type stBox struct {
	space geom.MBR
	time  tempo.Duration
	some  bool
}

func (b *stBox) add(p Point) {
	if !b.some {
		b.space = geom.Pt(p.X, p.Y).MBR()
		b.time = tempo.Instant(p.T)
		b.some = true
		return
	}
	b.space = b.space.ExpandToPoint(geom.Pt(p.X, p.Y))
	b.time = b.time.ExpandTo(p.T)
}

// withinHalo reports whether p lies within spatial distance hMax and
// temporal gap tMax of the box. The axis gaps are exact FP subtractions
// and the comparison is on squared distance, so the predicate is
// monotone: any point within hMax of a point inside the box always
// passes (see DESIGN.md for the containment argument).
func (b *stBox) withinHalo(p Point, h2 float64, tMax int64) bool {
	if !b.some {
		return false
	}
	dx := maxf(0, maxf(b.space.MinX-p.X, p.X-b.space.MaxX))
	dy := maxf(0, maxf(b.space.MinY-p.Y, p.Y-b.space.MaxY))
	if dx*dx+dy*dy > h2 {
		return false
	}
	gap := max64(b.time.Start-p.T, p.T-b.time.End)
	return gap <= tMax
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// DistributedK estimates the space-time K function over the engine:
// ST-partition the points with the configured planner, exchange boundary
// halos (each partition receives every foreign point within HMax/TMax of
// its actual bounds, over the CRC-framed shuffle), then count pairs per
// partition with the time-sorted sweep. The integer pair and center counts
// — and therefore the K matrix — are bit-for-bit identical to BruteForceK
// on the same points and config.
func DistributedK(ctx *engine.Context, pts []Point, cfg KConfig) (*KResult, error) {
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	reg := resolveRegion(cfg, pts)
	if len(pts) == 0 {
		res := finalizeK(cfg.Grid, reg, 0, newCounts(cfg.Grid))
		return res, nil
	}
	nTarget := cfg.Partitions
	if nTarget <= 0 {
		nTarget = ctx.DefaultParallelism()
	}
	planner := cfg.Planner
	if planner == nil {
		planner = partition.STR2D{N: nTarget}
	}
	sample := make([]index.Box, len(pts))
	for i, p := range pts {
		sample[i] = p.Box()
	}
	bounds := planner.Plan(sample)
	if len(bounds) == 0 {
		return nil, fmt.Errorf("pointpat: planner %s produced no partitions", planner.Name())
	}
	asg := partition.NewAssigner(bounds)
	nP := asg.NumPartitions()

	// Stage 1: ST partitioning shuffle (the same toll selection pays).
	owned := engine.PartitionBy(engine.Parallelize(ctx, pts, 0), PointC, nP,
		func(p Point) int { return asg.Assign(p.Box()) })
	ownParts := owned.CollectPartitions()

	boxes := make([]stBox, nP)
	for p, part := range ownParts {
		for _, v := range part {
			boxes[p].add(v)
		}
	}

	// Stage 2: halo exchange. Each point is duplicated to every *other*
	// partition whose actual bounds lie within the maximum search radius —
	// those partitions own centers that may pair with it.
	h2 := cfg.Grid.HMax() * cfg.Grid.HMax()
	tMax := cfg.Grid.TMax()
	haloSpan := ctx.StartSpan(trace.SpanPointPatHalo, trace.Str("stat", "k"),
		trace.Int("partitions", int64(nP)))
	hctx := ctx.WithSpan(haloSpan)
	rim := engine.FromPartitions(hctx, "pointpat.rim", ownParts)
	halo := engine.PartitionByMulti(rim, PointC, nP, func(v Point) []int {
		owner := asg.Assign(v.Box())
		var ts []int
		for q := 0; q < nP; q++ {
			if q != owner && boxes[q].withinHalo(v, h2, tMax) {
				ts = append(ts, q)
			}
		}
		return ts
	})
	haloParts := halo.CollectPartitions()
	var haloPoints, haloBytes int64
	w := codec.GetWriter()
	for _, part := range haloParts {
		haloPoints += int64(len(part))
		w.Reset()
		for _, v := range part {
			PointC.Enc(w, v)
		}
		haloBytes += int64(w.Len())
	}
	codec.PutWriter(w)
	haloSpan.End(trace.Int("halo_points", haloPoints), trace.Int("halo_bytes", haloBytes))
	ctx.Metrics.AddHaloExchange(haloPoints, haloBytes)

	// Stage 3: per-partition pair counting over own ∪ halo, merged on the
	// driver (integer counts, so merge order is irrelevant).
	pairSpan := ctx.StartSpan(trace.SpanPointPatPairs, trace.Str("stat", "k"))
	pctx := ctx.WithSpan(pairSpan)
	grid, region := cfg.Grid, reg
	partial := engine.MapPartitions(
		engine.FromPartitions(pctx, "pointpat.count", ownParts),
		func(p int, own []Point) []*counts {
			c := newCounts(grid)
			countInto(c, grid, region, own, haloParts[p])
			return []*counts{c}
		})
	merged := newCounts(cfg.Grid)
	for _, c := range partial.Collect() {
		merged.merge(c)
	}
	pairSpan.End(trace.Int("pairs_tested", merged.tested),
		trace.Int("pairs_counted", merged.counted))
	ctx.Metrics.AddPairCount(merged.tested, merged.counted)

	res := finalizeK(cfg.Grid, reg, int64(len(pts)), merged)
	res.Partitions = nP
	res.HaloPoints = haloPoints
	res.HaloBytes = haloBytes
	return res, nil
}
