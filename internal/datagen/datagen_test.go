package datagen

import (
	"reflect"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/geom"
	"st4ml/internal/roadnet"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

func TestNYCDeterministicAndInBounds(t *testing.T) {
	a := NYC(1000, 42)
	b := NYC(1000, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must generate identical data")
	}
	c := NYC(1000, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
	for _, e := range a {
		if !NYCExtent.ContainsPoint(e.Loc) {
			t.Fatalf("event outside extent: %v", e.Loc)
		}
		if !Year2013.Contains(e.Time) {
			t.Fatalf("event outside window: %d", e.Time)
		}
		if e.Aux != "pickup" && e.Aux != "dropoff" {
			t.Fatalf("bad aux: %q", e.Aux)
		}
	}
}

func TestNYCSkewAndRushHours(t *testing.T) {
	events := NYC(20000, 1)
	// Rush-hour density: hours 8 and 18 each busier than hour 3.
	hours := map[int]int{}
	for _, e := range events {
		hours[tempo.HourOfDay(e.Time)]++
	}
	if hours[8] <= hours[3]*2 || hours[18] <= hours[3]*2 {
		t.Errorf("no rush-hour structure: h3=%d h8=%d h18=%d", hours[3], hours[8], hours[18])
	}
	// Spatial skew: a 10×10 grid should have very uneven counts.
	counts := make([]int, 100)
	for _, e := range events {
		ix := int((e.Loc.X - NYCExtent.MinX) / NYCExtent.Width() * 10)
		iy := int((e.Loc.Y - NYCExtent.MinY) / NYCExtent.Height() * 10)
		if ix > 9 {
			ix = 9
		}
		if iy > 9 {
			iy = 9
		}
		counts[iy*10+ix]++
	}
	max, min := 0, len(events)
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 20*(min+1) {
		t.Errorf("spatial distribution too uniform: max=%d min=%d", max, min)
	}
}

func TestPortoShape(t *testing.T) {
	trajs := Porto(200, 7)
	for _, tr := range trajs {
		if len(tr.Points) != len(tr.Times) {
			t.Fatal("points/times mismatch")
		}
		if len(tr.Points) < 8 {
			t.Fatalf("trajectory too short: %d", len(tr.Points))
		}
		for j := 1; j < len(tr.Times); j++ {
			if tr.Times[j]-tr.Times[j-1] != 15 {
				t.Fatalf("sampling interval = %d, want 15", tr.Times[j]-tr.Times[j-1])
			}
		}
		// Urban speeds: consecutive points < 500 m apart.
		for j := 1; j < len(tr.Points); j++ {
			if d := geom.HaversineMeters(tr.Points[j-1], tr.Points[j]); d > 500 {
				t.Fatalf("step %g m too large", d)
			}
		}
	}
}

func TestEnlargeRecipe(t *testing.T) {
	base := Porto(50, 1)
	big := Enlarge(base, 4, 20, 120, 2)
	if len(big) != 200 {
		t.Fatalf("enlarged = %d, want 200", len(big))
	}
	// IDs fresh and unique.
	seen := map[int64]bool{}
	for _, tr := range big {
		if seen[tr.ID] {
			t.Fatal("duplicate id after enlarge")
		}
		seen[tr.ID] = true
	}
	// First copy is noise-free.
	if !reflect.DeepEqual(big[0].Points, base[0].Points) {
		t.Error("copy 0 should be the original")
	}
	// Later copies are perturbed but close (≤ ~6σ).
	far := big[len(base)] // first record of copy 1
	orig := base[0]
	for j := range far.Points {
		d := geom.HaversineMeters(far.Points[j], orig.Points[j])
		if d == 0 {
			t.Fatal("noisy copy identical to original")
		}
		if d > 200 {
			t.Fatalf("noise too large: %g m", d)
		}
	}
}

func TestAirRecipe(t *testing.T) {
	recs := Air(10, 3, 2, 3600, 5)
	// 30 stations × 48 hourly records.
	if len(recs) != 30*48 {
		t.Fatalf("records = %d, want %d", len(recs), 30*48)
	}
	stations := map[int64]geom.Point{}
	for _, r := range recs {
		if prev, ok := stations[r.StationID]; ok && prev != r.Loc {
			t.Fatal("station moved")
		}
		stations[r.StationID] = r.Loc
		for _, v := range r.Indices {
			if v < 0 {
				t.Fatal("negative AQI")
			}
		}
	}
	if len(stations) != 30 {
		t.Fatalf("stations = %d", len(stations))
	}
}

func TestOSMAreasAndPOIs(t *testing.T) {
	pois, areas := OSM(2000, 25, 9)
	if len(pois) != 2000 || len(areas) != 25 {
		t.Fatalf("sizes = %d, %d", len(pois), len(areas))
	}
	for _, a := range areas {
		if a.Shape.Area() <= 0 {
			t.Fatal("degenerate area polygon")
		}
	}
	// A good fraction of POIs fall inside some area (tiling approximates
	// coverage of the extent).
	inside := 0
	for _, p := range pois {
		for _, a := range areas {
			if a.Shape.ContainsPoint(p.Loc) {
				inside++
				break
			}
		}
	}
	if inside < len(pois)/2 {
		t.Errorf("only %d/%d POIs inside areas", inside, len(pois))
	}
}

func TestCameraSparsity(t *testing.T) {
	g := roadnet.GenerateGrid(10, 10, 400, geom.Pt(120.1, 30.2), 0, 3)
	trajs := Camera(g, 100, 0, 11)
	count, avgPts, avgDur := DescribeTrajs(trajs)
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
	// The case-study regime: sparse points, tens of minutes.
	if avgPts < 3 || avgPts > 30 {
		t.Errorf("avg points = %g", avgPts)
	}
	if avgDur <= 0 {
		t.Errorf("avg duration = %g", avgDur)
	}
	// Points near the network.
	for _, tr := range trajs[:10] {
		for _, p := range tr.Points {
			if _, _, d, ok := g.NearestEdge(p); !ok || d > 100 {
				t.Fatalf("camera sighting %g m off network", d)
			}
		}
	}
	// Different days differ.
	day1 := Camera(g, 10, 1, 11)
	if reflect.DeepEqual(trajs[:10], day1) {
		t.Error("days should differ")
	}
}

func TestRecordCodecs(t *testing.T) {
	ev := NYC(5, 1)[0]
	gotEv, err := codec.Unmarshal(stdata.EventRecC, codec.Marshal(stdata.EventRecC, ev))
	if err != nil || !reflect.DeepEqual(gotEv, ev) {
		t.Errorf("EventRec round trip: %v %v", gotEv, err)
	}
	tr := Porto(3, 1)[0]
	gotTr, err := codec.Unmarshal(stdata.TrajRecC, codec.Marshal(stdata.TrajRecC, tr))
	if err != nil || !reflect.DeepEqual(gotTr, tr) {
		t.Errorf("TrajRec round trip: %v", err)
	}
	ar := Air(2, 1, 1, 3600, 1)[0]
	gotAr, err := codec.Unmarshal(stdata.AirRecC, codec.Marshal(stdata.AirRecC, ar))
	if err != nil || !reflect.DeepEqual(gotAr, ar) {
		t.Errorf("AirRec round trip: %v", err)
	}
	poi, _ := OSM(1, 1, 1)
	gotPoi, err := codec.Unmarshal(stdata.POIRecC, codec.Marshal(stdata.POIRecC, poi[0]))
	if err != nil || !reflect.DeepEqual(gotPoi, poi[0]) {
		t.Errorf("POIRec round trip: %v", err)
	}
}

func TestToInstanceConversions(t *testing.T) {
	ev := NYC(1, 2)[0].ToEvent()
	if ev.Data < 0 || ev.Entry.Value == "" {
		t.Error("event conversion lost fields")
	}
	tr := Porto(1, 2)[0].ToTrajectory()
	if tr.Len() < 8 {
		t.Error("trajectory conversion lost points")
	}
	// Entries sorted by time.
	for i := 1; i < tr.Len(); i++ {
		if tr.Entries[i].Temporal.Start < tr.Entries[i-1].Temporal.Start {
			t.Fatal("unsorted entries")
		}
	}
	box := Porto(1, 2)[0].Box()
	if box.IsEmpty() {
		t.Error("empty trajectory box")
	}
}
