// Package datagen generates the synthetic stand-ins for the paper's
// evaluation corpora (§5.1): NYC-taxi-like events, Porto-like
// trajectories, Chinese air-quality time series, and OSM-like POIs/areas,
// each drawn from seeded hotspot mixtures over the real datasets' spatial
// extents and time windows so experiments are reproducible without the
// proprietary data (see DESIGN.md substitutions).
package datagen

import (
	"math"
	"math/rand"

	"st4ml/internal/geom"
	"st4ml/internal/roadnet"
	"st4ml/internal/stdata"
	"st4ml/internal/tempo"
)

// Spatial extents of the synthetic corpora, mirroring the real datasets.
var (
	// NYCExtent covers New York City.
	NYCExtent = geom.Box(-74.05, 40.60, -73.75, 40.90)
	// PortoExtent covers Porto.
	PortoExtent = geom.Box(-8.70, 41.10, -8.50, 41.25)
	// ChinaExtent covers the air-quality station region.
	ChinaExtent = geom.Box(113.0, 29.0, 120.0, 41.0)
	// WorldExtent is the OSM-like global extent.
	WorldExtent = geom.Box(-180, -60, 180, 70)
)

// Year2013 is the NYC corpus time window (one year of seconds from the
// epoch-anchored start used by all generators).
var Year2013 = tempo.New(1356998400, 1388534399) // 2013-01-01 .. 2013-12-31 UTC

// gpsQuantize snaps a coordinate to the 1e-6° grid (~0.11 m) — the
// precision real GPS feeds carry. Generated point corpora quantize so their
// coordinate columns compress the way real traces do (storage v3 detects
// the grid and delta-encodes quantized steps instead of raw float bits).
func gpsQuantize(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// hotspot mixture: a point drawn near one of k centers with the given
// spread (in degrees), clamped to the extent and snapped to the GPS grid.
// The extents above all sit on the grid, so clamped points stay on it.
func hotspotPoint(rng *rand.Rand, centers []geom.Point, spread float64, extent geom.MBR) geom.Point {
	c := centers[rng.Intn(len(centers))]
	p := geom.Pt(c.X+rng.NormFloat64()*spread, c.Y+rng.NormFloat64()*spread)
	p.X = gpsQuantize(math.Max(extent.MinX, math.Min(extent.MaxX, p.X)))
	p.Y = gpsQuantize(math.Max(extent.MinY, math.Min(extent.MaxY, p.Y)))
	return p
}

// hotspotCenters derives k stable pseudo-random hotspot centers inside the
// extent.
func hotspotCenters(rng *rand.Rand, k int, extent geom.MBR) []geom.Point {
	out := make([]geom.Point, k)
	for i := range out {
		out[i] = geom.Pt(
			extent.MinX+rng.Float64()*extent.Width(),
			extent.MinY+rng.Float64()*extent.Height())
	}
	return out
}

// dailyTime draws a second-of-day with rush-hour bimodality, then places it
// on a uniform day within the window.
func dailyTime(rng *rand.Rand, window tempo.Duration) int64 {
	days := window.Seconds()/86400 + 1
	day := rng.Int63n(days)
	var tod float64
	if rng.Float64() < 0.6 {
		// Rush hours: 8:30 or 18:00 ± 1.5 h.
		center := 8.5
		if rng.Float64() < 0.5 {
			center = 18
		}
		tod = center*3600 + rng.NormFloat64()*5400
	} else {
		tod = rng.Float64() * 86400
	}
	if tod < 0 {
		tod += 86400
	}
	if tod >= 86400 {
		tod -= 86400
	}
	t := window.Start + day*86400 + int64(tod)
	if t > window.End {
		t = window.End
	}
	return t
}

// NYC generates n taxi pick-up/drop-off events with hot-spot spatial skew,
// rush-hour time density, and time-correlated spatial drift (morning
// activity biased toward the first hotspots, evening toward the last) —
// the structure T-STR and metadata pruning exploit.
func NYC(n int, seed int64) []stdata.EventRec {
	rng := rand.New(rand.NewSource(seed))
	centers := hotspotCenters(rng, 6, NYCExtent)
	out := make([]stdata.EventRec, n)
	for i := range out {
		t := dailyTime(rng, Year2013)
		hour := tempo.HourOfDay(t)
		// Morning events favor downtown-ish centers, evening residential.
		var sub []geom.Point
		if hour >= 5 && hour < 14 {
			sub = centers[:3]
		} else {
			sub = centers[3:]
		}
		aux := "pickup"
		if i%2 == 1 {
			aux = "dropoff"
		}
		out[i] = stdata.EventRec{
			ID:   int64(i),
			Loc:  hotspotPoint(rng, sub, 0.02, NYCExtent),
			Time: t,
			Aux:  aux,
		}
	}
	return out
}

// Porto generates n vehicle trajectories as heading-persistent random walks
// at urban speeds with 15 s sampling, the Porto dataset's shape.
func Porto(n int, seed int64) []stdata.TrajRec {
	rng := rand.New(rand.NewSource(seed))
	centers := hotspotCenters(rng, 4, PortoExtent)
	out := make([]stdata.TrajRec, n)
	for i := range out {
		start := hotspotPoint(rng, centers, 0.02, PortoExtent)
		t := dailyTime(rng, Year2013)
		m := 8 + rng.Intn(60) // 2–15 minutes of 15 s samples
		pts := make([]geom.Point, m)
		times := make([]int64, m)
		heading := rng.Float64() * 2 * math.Pi
		speedMps := 5 + rng.Float64()*15
		cur := start
		for j := 0; j < m; j++ {
			pts[j] = cur
			times[j] = t
			heading += rng.NormFloat64() * 0.3
			stepM := speedMps * 15
			cur = geom.Pt(
				cur.X+geom.MetersToDegreesLon(stepM*math.Cos(heading), cur.Y),
				cur.Y+geom.MetersToDegreesLat(stepM*math.Sin(heading)))
			t += 15
		}
		out[i] = stdata.TrajRec{ID: int64(i), Points: pts, Times: times}
	}
	return out
}

// Enlarge applies the paper's dataset-enlargement recipe: duplicate every
// trajectory k times, adding Gaussian noise of sigmaSM metres in space and
// sigmaTSec seconds in time. The output contains the originals followed by
// the noisy copies, with fresh ids.
func Enlarge(trajs []stdata.TrajRec, k int, sigmaSM float64, sigmaTSec float64, seed int64) []stdata.TrajRec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]stdata.TrajRec, 0, len(trajs)*k)
	id := int64(0)
	for copyIdx := 0; copyIdx < k; copyIdx++ {
		for _, tr := range trajs {
			pts := make([]geom.Point, len(tr.Points))
			times := make([]int64, len(tr.Times))
			var dt int64
			if copyIdx > 0 {
				dt = int64(rng.NormFloat64() * sigmaTSec)
			}
			for j := range pts {
				p := tr.Points[j]
				if copyIdx > 0 {
					p = geom.Pt(
						p.X+geom.MetersToDegreesLon(rng.NormFloat64()*sigmaSM, p.Y),
						p.Y+geom.MetersToDegreesLat(rng.NormFloat64()*sigmaSM))
				}
				pts[j] = p
				times[j] = tr.Times[j] + dt
			}
			out = append(out, stdata.TrajRec{ID: id, Points: pts, Times: times})
			id++
		}
	}
	return out
}

// Air generates hourly air-quality records from a jittered station grid,
// optionally replicated (the paper's ×20, σ=500 m recipe) and interpolated
// down to intervalSec sampling. days controls the covered window starting
// at Year2013.
func Air(stations, replicas, days int, intervalSec int64, seed int64) []stdata.AirRec {
	rng := rand.New(rand.NewSource(seed))
	// Base stations.
	locs := make([]geom.Point, 0, stations*replicas)
	for i := 0; i < stations; i++ {
		locs = append(locs, geom.Pt(
			ChinaExtent.MinX+rng.Float64()*ChinaExtent.Width(),
			ChinaExtent.MinY+rng.Float64()*ChinaExtent.Height()))
	}
	for rep := 1; rep < replicas; rep++ {
		for i := 0; i < stations; i++ {
			base := locs[i]
			locs = append(locs, geom.Pt(
				base.X+geom.MetersToDegreesLon(rng.NormFloat64()*500, base.Y),
				base.Y+geom.MetersToDegreesLat(rng.NormFloat64()*500)))
		}
	}
	var out []stdata.AirRec
	end := Year2013.Start + int64(days)*86400
	for sid, loc := range locs {
		// Per-station AQI random walk, interpolated to the interval.
		var idx [6]float64
		for i := range idx {
			idx[i] = 20 + rng.Float64()*80
		}
		for t := Year2013.Start; t < end; t += intervalSec {
			for i := range idx {
				idx[i] += rng.NormFloat64() * 2
				if idx[i] < 0 {
					idx[i] = 0
				}
			}
			out = append(out, stdata.AirRec{
				StationID: int64(sid),
				Loc:       loc,
				Time:      t,
				Indices:   idx,
			})
		}
	}
	return out
}

// OSM generates nPOIs clustered points of interest with type attributes and
// nAreas postal-code-like polygons tiling the populated region with jittered
// grid cells.
func OSM(nPOIs, nAreas int, seed int64) ([]stdata.POIRec, []stdata.AreaRec) {
	rng := rand.New(rand.NewSource(seed))
	types := []string{"restaurant", "shop", "school", "park", "station", "hospital"}
	centers := hotspotCenters(rng, 40, WorldExtent)
	pois := make([]stdata.POIRec, nPOIs)
	for i := range pois {
		pois[i] = stdata.POIRec{
			ID:   int64(i),
			Loc:  hotspotPoint(rng, centers, 1.5, WorldExtent),
			Type: types[rng.Intn(len(types))],
		}
	}
	// Areas: jittered grid tiling of the extent.
	na := int(math.Ceil(math.Sqrt(float64(nAreas))))
	w := WorldExtent.Width() / float64(na)
	h := WorldExtent.Height() / float64(na)
	areas := make([]stdata.AreaRec, 0, nAreas)
	for iy := 0; iy < na && len(areas) < nAreas; iy++ {
		for ix := 0; ix < na && len(areas) < nAreas; ix++ {
			x0 := WorldExtent.MinX + float64(ix)*w
			y0 := WorldExtent.MinY + float64(iy)*h
			// Jitter interior corners to make the cells irregular (but keep
			// tiling approximate).
			j := func() float64 { return (rng.Float64() - 0.5) * 0.2 }
			ring := []geom.Point{
				{X: x0 + j(), Y: y0 + j()},
				{X: x0 + w + j(), Y: y0 + j()},
				{X: x0 + w + j(), Y: y0 + h + j()},
				{X: x0 + j(), Y: y0 + h + j()},
			}
			areas = append(areas, stdata.AreaRec{ID: int64(len(areas)), Shape: geom.NewPolygon(ring)})
		}
	}
	return pois, areas
}

// Camera generates n sparse camera-sighting trajectories on a road graph:
// a vehicle drives the shortest path between two random nodes and is
// sighted at a few path nodes with small sensing noise — matching the case
// study's sparsity (≈9 points, ≈27 min, Table 9). day selects the covered
// day (0-based from Year2013).
func Camera(g *roadnet.Graph, n int, day int, seed int64) []stdata.TrajRec {
	rng := rand.New(rand.NewSource(seed + int64(day)*7919))
	dayStart := Year2013.Start + int64(day)*86400
	out := make([]stdata.TrajRec, 0, n)
	for len(out) < n {
		src := roadnet.NodeID(rng.Intn(g.NumNodes()))
		dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
		if src == dst {
			continue
		}
		dist, prev := g.ShortestPath(src, map[roadnet.NodeID]bool{dst: true}, 1e9)
		if _, ok := dist[dst]; !ok {
			continue
		}
		path, ok := g.PathEdges(src, dst, prev)
		if !ok || len(path) < 3 {
			continue
		}
		// Sight the vehicle at a sparse subset of path edges.
		sightEvery := 1 + rng.Intn(3)
		t := dayStart + int64(rng.Intn(86400-3600))
		var pts []geom.Point
		var times []int64
		speedMps := 6 + rng.Float64()*10
		for i, eid := range path {
			e := g.Edge(eid)
			travel := int64(e.LengthM / speedMps)
			// Gap dwell time models stops between cameras.
			t += travel + rng.Int63n(120)
			if i%sightEvery != 0 {
				continue
			}
			a, b := g.EdgeEndpoints(eid)
			f := rng.Float64()
			p := geom.Pt(a.X+(b.X-a.X)*f, a.Y+(b.Y-a.Y)*f)
			p.X += geom.MetersToDegreesLon(rng.NormFloat64()*8, p.Y)
			p.Y += geom.MetersToDegreesLat(rng.NormFloat64() * 8)
			pts = append(pts, p)
			times = append(times, t)
		}
		if len(pts) < 3 {
			continue
		}
		out = append(out, stdata.TrajRec{ID: int64(len(out)), Points: pts, Times: times})
	}
	return out
}

// DescribeTrajs returns the (count, avg points, avg duration minutes)
// summary Table 9 reports.
func DescribeTrajs(trajs []stdata.TrajRec) (count int, avgPoints, avgDurMin float64) {
	if len(trajs) == 0 {
		return 0, 0, 0
	}
	var pts, dur float64
	for _, tr := range trajs {
		pts += float64(len(tr.Points))
		if len(tr.Times) > 0 {
			dur += float64(tr.Times[len(tr.Times)-1]-tr.Times[0]) / 60
		}
	}
	n := float64(len(trajs))
	return len(trajs), pts / n, dur / n
}
