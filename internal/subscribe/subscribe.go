// Package subscribe turns the serving tier's batch Selection path into a
// push-based online one: a client registers a window query as a standing
// subscription, and every committed delta batch is routed through an
// inverted interval index over the registered windows — an R-tree in which
// the query windows are the indexed boxes and the arriving records are the
// probes — so a batch of K records fans out to M subscribers in O(K log M)
// instead of O(K·M), and each matching subscriber is pushed an incremental
// update through a bounded queue.
//
// A subscription's stream is self-describing, three event kinds:
//
//   - init: the batch-query snapshot (per-partition chunks) the stream
//     starts from, stamped with the dataset generation and the delta
//     sequence fence NextSeq; every later event carries only records
//     committed at or after that fence.
//   - batch: one committed delta file's records intersecting the
//     subscriber's window, in file order, attributed to the base partition
//     the delta extends.
//   - resync: a fresh snapshot replacing everything delivered so far —
//     emitted when a compaction rewrote base files (Z-order reclustering
//     may reorder records) or when the subscriber's bounded queue
//     overflowed and dropped events (see Subscriber).
//
// Replaying a stream — start from init's chunks, append each batch event's
// records to its partition's chunk, replace wholesale on resync — yields,
// after every event, byte-for-byte the records a batch query of the same
// window would return: chunks flattened in ascending partition id order
// match ServeQuery's partition order, and within a partition base records
// precede deltas in sequence order on both paths. The metamorphic suite in
// internal/serve pins this equivalence across seeded
// window×batch×subscriber combos, including stalls, disconnects, and
// compactions racing the notifier.
package subscribe

import (
	"encoding/json"
	"errors"

	"st4ml/internal/index"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

// Kind labels one pushed update.
type Kind string

const (
	// KindInit is the snapshot a stream starts from.
	KindInit Kind = "init"
	// KindBatch is one committed delta file's matching records.
	KindBatch Kind = "batch"
	// KindResync is a replacement snapshot after compaction or overflow.
	KindResync Kind = "resync"
)

// Update is one pushed event, the SSE frame payload.
type Update struct {
	Kind    Kind   `json:"kind"`
	Dataset string `json:"dataset"`
	// Generation is the manifest generation the event was produced at.
	Generation int64 `json:"generation"`
	// NextSeq, on init/resync, is the snapshot's delta-sequence fence:
	// every committed delta below it is already inside Parts. Never
	// omitempty: 0 is a meaningful fence (dataset with no deltas yet).
	NextSeq int64 `json:"next_seq"`
	// Seq and Partition, on batch events, identify the committed delta
	// file and the base partition it extends. Never omitempty: the first
	// delta is seq 0 and partition 0 exists.
	Seq       int64 `json:"seq"`
	Partition int   `json:"partition"`
	// Records are a batch event's matching records in delta-file order.
	Records []json.RawMessage `json:"records,omitempty"`
	// Parts are a snapshot's per-partition chunks, ascending partition id.
	Parts []stdata.PartResult `json:"parts,omitempty"`
	// Dropped, on resync events, is how many queued events overflow had
	// discarded since the last snapshot (0 for compaction resyncs).
	Dropped int64 `json:"dropped,omitempty"`
}

// Options tunes one subscription.
type Options struct {
	// Limit caps the records marshaled per snapshot (init/resync); 0 is
	// unlimited.
	Limit int
	// Queue overrides the hub's per-subscriber queue bound (0 inherits).
	Queue int
}

// Source is the hub's read-only view of one dataset, implemented by the
// serving tier over its catalog and cache.
type Source interface {
	// Manifest returns the dataset's current delta manifest.
	Manifest() (*storage.Manifest, error)
	// ReadDelta decodes one committed delta file into record boxes and the
	// records' JSON wire forms, in file order.
	ReadDelta(dm storage.DeltaMeta) ([]index.Box, []json.RawMessage, error)
	// Snapshot runs the batch query for w on a consistent view, returning
	// per-partition record chunks plus the view's manifest generation and
	// delta-sequence fence (Metadata.NextSeq).
	Snapshot(w selection.Window, limit int) ([]stdata.PartResult, int64, int64, error)
}

// ErrClosed is returned by Subscriber.Next once the subscription has been
// closed — by the client, or server-side when the daemon drains.
var ErrClosed = errors.New("subscribe: subscription closed")

// ErrUnknownDataset is returned by Hub.Subscribe for a dataset name no
// source was attached for.
var ErrUnknownDataset = errors.New("subscribe: unknown dataset")
