package subscribe

import "st4ml/internal/index"

// SubIndex is the inverted interval index at the heart of the fan-out: an
// R-tree over the registered query windows, probed once per arriving
// record. With M live subscriptions a probe costs O(log M) instead of the
// O(M) linear sweep, which is what keeps per-batch matching at O(K log M).
//
// index.RTree has no deletion, so removal is a tombstone: the id drops out
// of the live set (probes filter on it) and the tree is rebuilt via STR
// bulk load once tombstones outnumber live entries. Not safe for
// concurrent use; the hub guards it.
type SubIndex struct {
	tree *index.RTree[int64]
	live map[int64]index.Box
	dead int
}

// NewSubIndex returns an empty index.
func NewSubIndex() *SubIndex {
	return &SubIndex{tree: index.NewRTree[int64](16), live: map[int64]index.Box{}}
}

// Len returns the number of live registered windows.
func (x *SubIndex) Len() int { return len(x.live) }

// Insert registers window b under id. Re-inserting a live id replaces its
// window.
func (x *SubIndex) Insert(id int64, b index.Box) {
	if _, ok := x.live[id]; ok {
		x.Remove(id)
	}
	x.live[id] = b
	x.tree.Insert(b, id)
}

// Remove unregisters id (a no-op for unknown ids). The tree entry stays as
// a tombstone until the rebuild threshold trips.
func (x *SubIndex) Remove(id int64) {
	if _, ok := x.live[id]; !ok {
		return
	}
	delete(x.live, id)
	x.dead++
	// Rebuild once tombstones dominate: keeps probes O(log live) under
	// subscriber churn without rebuilding on every unsubscribe.
	if x.dead > 16 && x.dead > len(x.live) {
		x.rebuild()
	}
}

func (x *SubIndex) rebuild() {
	items := make([]index.Item[int64], 0, len(x.live))
	for id, b := range x.live {
		items = append(items, index.Item[int64]{Box: b, Data: id})
	}
	x.tree = index.BulkLoadSTR(items, 16)
	x.dead = 0
}

// Match invokes fn once for every live id whose window intersects b.
func (x *SubIndex) Match(b index.Box, fn func(id int64)) {
	// A replaced window can leave two tree entries for one id; the seen set
	// keeps fn to one call even when both intersect.
	var seen map[int64]bool
	x.tree.SearchFunc(b, func(id int64, box index.Box) bool {
		lb, ok := x.live[id]
		if !ok || lb != box {
			return true // tombstone, or an entry superseded by Insert
		}
		if seen[id] {
			return true
		}
		if seen == nil {
			seen = make(map[int64]bool, 4)
		}
		seen[id] = true
		fn(id)
		return true
	})
}

// Any reports whether at least one live window intersects b — the cheap
// pre-filter that lets the notifier skip reading a delta file no
// subscriber can match.
func (x *SubIndex) Any(b index.Box) bool {
	hit := false
	x.tree.SearchFunc(b, func(id int64, box index.Box) bool {
		if lb, ok := x.live[id]; ok && lb == box {
			hit = true
			return false
		}
		return true
	})
	return hit
}
