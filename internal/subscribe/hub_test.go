package subscribe

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/tempo"
)

// fakeRec is the hub tests' record: a point with an id, marshaled once so
// wire forms are stable.
type fakeRec struct {
	ID int     `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
	T  int64   `json:"t"`
}

func (r fakeRec) box() index.Box {
	return index.BoxOfPoint(geom.Pt(r.X, r.Y), r.T)
}

func (r fakeRec) raw() json.RawMessage {
	b, _ := json.Marshal(r)
	return b
}

// fakeSource is an in-memory Source: commits mint sequence numbers and bump
// the generation exactly like the delta layer, snapshots filter everything
// committed so far.
type fakeSource struct {
	mu      sync.Mutex
	mf      storage.Manifest
	deltas  map[int64][]fakeRec
	all     []fakeRec
	snapErr error
	snaps   int
}

func newFakeSource() *fakeSource {
	return &fakeSource{deltas: map[int64][]fakeRec{}}
}

// commit appends one delta batch to partition part.
func (f *fakeSource) commit(part int, recs ...fakeRec) {
	f.mu.Lock()
	defer f.mu.Unlock()
	seq := f.mf.NextSeq
	f.mf.NextSeq++
	f.mf.Generation++
	bounds := index.EmptyBox()
	for _, r := range recs {
		bounds = bounds.Union(r.box())
	}
	dm := storage.DeltaMeta{Partition: part, Seq: seq}
	dm.Count = int64(len(recs))
	s, d := bounds.Spatial(), bounds.Temporal()
	dm.MinX, dm.MinY, dm.MaxX, dm.MaxY = s.MinX, s.MinY, s.MaxX, s.MaxY
	dm.TStart, dm.TEnd = d.Start, d.End
	f.mf.Deltas = append(f.mf.Deltas, dm)
	f.deltas[seq] = recs
	f.all = append(f.all, recs...)
}

// compact simulates a compaction commit: deltas fold away and the rewrite
// set changes (generation-suffixed file names, like the real compactor).
func (f *fakeSource) compact() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mf.Generation++
	if f.mf.Rewrites == nil {
		f.mf.Rewrites = map[int]storage.PartitionMeta{}
	}
	f.mf.Rewrites[0] = storage.PartitionMeta{File: fmt.Sprintf("part-00000-g%d.col", f.mf.Generation)}
	f.mf.Deltas = nil
}

// dropDelta removes one live delta without touching the rewrite set — the
// impossible-by-design manifest gap the notifier must answer with resync.
func (f *fakeSource) dropDelta(seq int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mf.Generation++
	kept := f.mf.Deltas[:0]
	for _, dm := range f.mf.Deltas {
		if dm.Seq != seq {
			kept = append(kept, dm)
		}
	}
	f.mf.Deltas = kept
}

func (f *fakeSource) Manifest() (*storage.Manifest, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mf := f.mf
	mf.Deltas = append([]storage.DeltaMeta(nil), f.mf.Deltas...)
	return &mf, nil
}

func (f *fakeSource) ReadDelta(dm storage.DeltaMeta) ([]index.Box, []json.RawMessage, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	recs, ok := f.deltas[dm.Seq]
	if !ok {
		return nil, nil, fmt.Errorf("no delta with seq %d", dm.Seq)
	}
	boxes := make([]index.Box, len(recs))
	raw := make([]json.RawMessage, len(recs))
	for i, r := range recs {
		boxes[i] = r.box()
		raw[i] = r.raw()
	}
	return boxes, raw, nil
}

func (f *fakeSource) Snapshot(w selection.Window, limit int) ([]stdata.PartResult, int64, int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.snaps++
	if f.snapErr != nil {
		return nil, 0, 0, f.snapErr
	}
	var p stdata.PartResult
	for _, r := range f.all {
		if r.box().Intersects(w.Box()) {
			p.Records = append(p.Records, r.raw())
			p.Selected++
		}
	}
	var parts []stdata.PartResult
	if p.Selected > 0 {
		parts = []stdata.PartResult{p}
	}
	return parts, f.mf.Generation, f.mf.NextSeq, nil
}

func window(minx, miny, maxx, maxy float64, t0, t1 int64) selection.Window {
	return selection.Window{
		Space: geom.MBR{MinX: minx, MinY: miny, MaxX: maxx, MaxY: maxy},
		Time:  tempo.Duration{Start: t0, End: t1},
	}
}

// next fetches one update with a short deadline.
func next(t *testing.T, sub *Subscriber) Update {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	u, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	return u
}

func TestHubInitAndPush(t *testing.T) {
	src := newFakeSource()
	src.commit(0, fakeRec{ID: 1, X: 1, Y: 1, T: 10})
	h := NewHub(Config{})
	h.Attach("d", src)

	sub, err := h.Subscribe("d", window(0, 0, 5, 5, 0, 100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	u := next(t, sub)
	if u.Kind != KindInit || u.Generation != 1 || u.NextSeq != 1 {
		t.Fatalf("init = %+v", u)
	}
	if len(u.Parts) != 1 || len(u.Parts[0].Records) != 1 {
		t.Fatalf("init parts = %+v", u.Parts)
	}

	// A matching commit pushes exactly the intersecting records.
	src.commit(2, fakeRec{ID: 2, X: 2, Y: 2, T: 20}, fakeRec{ID: 3, X: 50, Y: 50, T: 20})
	if err := h.Poke("d"); err != nil {
		t.Fatal(err)
	}
	u = next(t, sub)
	if u.Kind != KindBatch || u.Seq != 1 || u.Partition != 2 {
		t.Fatalf("batch = %+v", u)
	}
	if len(u.Records) != 1 || string(u.Records[0]) != string((fakeRec{ID: 2, X: 2, Y: 2, T: 20}).raw()) {
		t.Fatalf("batch records = %v", u.Records)
	}

	// A commit entirely outside the window pushes nothing.
	src.commit(0, fakeRec{ID: 4, X: 80, Y: 80, T: 20})
	if err := h.Poke("d"); err != nil {
		t.Fatal(err)
	}
	if n := sub.Pending(); n != 0 {
		t.Fatalf("non-matching commit queued %d updates", n)
	}
	// Duplicate pokes are harmless: the cursor already advanced.
	if err := h.Poke("d"); err != nil {
		t.Fatal(err)
	}
	if n := sub.Pending(); n != 0 {
		t.Fatalf("duplicate poke queued %d updates", n)
	}

	st := h.Stats()
	if st.ActiveSubscribers != 1 || st.TotalSubscribers != 1 || st.EventsPushed != 1 || st.RecordsPushed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHubSubscribeUnknownDataset(t *testing.T) {
	h := NewHub(Config{})
	if _, err := h.Subscribe("nope", window(0, 0, 1, 1, 0, 1), Options{}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("err = %v, want ErrUnknownDataset", err)
	}
	if err := h.Poke("nope"); err != nil {
		t.Fatalf("poking a detached dataset errored: %v", err)
	}
}

// TestHubOverflowResync pins the backpressure contract: a stalled
// subscriber's queue drops its oldest events, and the next read delivers a
// resync whose snapshot already contains everything dropped.
func TestHubOverflowResync(t *testing.T) {
	src := newFakeSource()
	h := NewHub(Config{})
	h.Attach("d", src)
	sub, err := h.Subscribe("d", window(0, 0, 100, 100, 0, 1000), Options{Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if u := next(t, sub); u.Kind != KindInit {
		t.Fatalf("first update %+v", u)
	}

	for i := 0; i < 5; i++ {
		src.commit(0, fakeRec{ID: i, X: 1, Y: 1, T: int64(i)})
		if err := h.Poke("d"); err != nil {
			t.Fatal(err)
		}
	}
	// Queue bound 2: three of the five events were dropped, a resync is due.
	if st := h.Stats(); st.EventsDropped != 3 {
		t.Fatalf("dropped = %d, want 3", st.EventsDropped)
	}
	u := next(t, sub)
	if u.Kind != KindResync || u.Dropped != 3 {
		t.Fatalf("resync = %+v", u)
	}
	if u.NextSeq != 5 || len(u.Parts) != 1 || len(u.Parts[0].Records) != 5 {
		t.Fatalf("resync snapshot fence=%d parts=%+v, want all 5 records", u.NextSeq, u.Parts)
	}
	// The snapshot's fence filtered the still-queued events as duplicates.
	if n := sub.Pending(); n != 0 {
		t.Fatalf("%d stale events survive the resync", n)
	}
	if st := h.Stats(); st.Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", st.Resyncs)
	}
}

// TestHubResyncErrorRetries pins that a failed resync snapshot restores the
// marker so the subscriber still recovers.
func TestHubResyncErrorRetries(t *testing.T) {
	src := newFakeSource()
	h := NewHub(Config{})
	h.Attach("d", src)
	sub, err := h.Subscribe("d", window(0, 0, 100, 100, 0, 1000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	next(t, sub) // init

	src.compact()
	if err := h.Poke("d"); err != nil {
		t.Fatal(err)
	}
	src.mu.Lock()
	src.snapErr = errors.New("snapshot down")
	src.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := sub.Next(ctx); err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("failed resync surfaced as %v", err)
	}
	src.mu.Lock()
	src.snapErr = nil
	src.mu.Unlock()
	if u := next(t, sub); u.Kind != KindResync {
		t.Fatalf("retry delivered %+v, want resync", u)
	}
}

// TestHubCompactionResync pins that a changed rewrite set schedules a
// resync instead of pushing deltas.
func TestHubCompactionResync(t *testing.T) {
	src := newFakeSource()
	h := NewHub(Config{})
	h.Attach("d", src)
	sub, err := h.Subscribe("d", window(0, 0, 100, 100, 0, 1000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	next(t, sub) // init

	src.commit(0, fakeRec{ID: 1, X: 1, Y: 1, T: 1})
	src.compact()
	if err := h.Poke("d"); err != nil {
		t.Fatal(err)
	}
	u := next(t, sub)
	if u.Kind != KindResync || u.Dropped != 0 {
		t.Fatalf("post-compaction update = %+v, want resync", u)
	}
	if len(u.Parts) != 1 || len(u.Parts[0].Records) != 1 {
		t.Fatalf("resync snapshot = %+v", u.Parts)
	}

	// A second compaction changes the fingerprint again: another resync.
	src.compact()
	if err := h.Poke("d"); err != nil {
		t.Fatal(err)
	}
	if u := next(t, sub); u.Kind != KindResync {
		t.Fatalf("second compaction delivered %+v", u)
	}
}

// TestHubManifestGapResync pins the defensive fallback: live deltas
// disappearing without a rewrite change cannot be patched incrementally.
func TestHubManifestGapResync(t *testing.T) {
	src := newFakeSource()
	h := NewHub(Config{})
	h.Attach("d", src)
	sub, err := h.Subscribe("d", window(0, 0, 100, 100, 0, 1000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	next(t, sub) // init

	src.commit(0, fakeRec{ID: 1, X: 1, Y: 1, T: 1})
	src.commit(0, fakeRec{ID: 2, X: 2, Y: 2, T: 2})
	src.dropDelta(0)
	if err := h.Poke("d"); err != nil {
		t.Fatal(err)
	}
	if u := next(t, sub); u.Kind != KindResync {
		t.Fatalf("gapped manifest delivered %+v, want resync", u)
	}
}

// TestSubscriberFence pins enqueue's duplicate discard: batch events below
// the snapshot fence are dropped, during admission everything buffers.
func TestSubscriberFence(t *testing.T) {
	h := NewHub(Config{})
	sub := &Subscriber{hub: h, signal: make(chan struct{}, 1), maxQueue: 8, minSeq: 3}
	if sub.enqueue(Update{Kind: KindBatch, Seq: 2}) {
		t.Fatal("event below the fence was queued")
	}
	if !sub.enqueue(Update{Kind: KindBatch, Seq: 3}) {
		t.Fatal("event at the fence was dropped")
	}
	sub.pending = true
	if !sub.enqueue(Update{Kind: KindBatch, Seq: 0}) {
		t.Fatal("pending admission dropped a buffered event")
	}
	if sub.Pending() != 0 {
		t.Fatal("Pending leaked buffered events during admission")
	}
	sub.mu.Lock()
	sub.closed = true
	sub.mu.Unlock()
	if sub.enqueue(Update{Kind: KindBatch, Seq: 9}) {
		t.Fatal("closed subscriber accepted an event")
	}
}

func TestNextContextCancel(t *testing.T) {
	src := newFakeSource()
	h := NewHub(Config{})
	h.Attach("d", src)
	sub, err := h.Subscribe("d", window(0, 0, 1, 1, 0, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	next(t, sub) // init
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next on an idle stream returned %v", err)
	}
}

func TestCloseAllEndsSubscriptions(t *testing.T) {
	src := newFakeSource()
	h := NewHub(Config{})
	h.Attach("d", src)
	var subs []*Subscriber
	for i := 0; i < 3; i++ {
		sub, err := h.Subscribe("d", window(0, 0, 1, 1, 0, 1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
		next(t, sub) // init
	}
	done := make(chan error, 1)
	go func() {
		_, err := subs[0].Next(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	h.CloseAll()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Next returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("CloseAll did not wake the blocked Next")
	}
	for _, sub := range subs {
		if _, err := sub.Next(context.Background()); !errors.Is(err, ErrClosed) {
			t.Fatalf("Next after CloseAll returned %v", err)
		}
	}
	if st := h.Stats(); st.ActiveSubscribers != 0 || st.TotalSubscribers != 3 {
		t.Fatalf("stats after CloseAll = %+v", st)
	}
	// Close after CloseAll is a safe no-op.
	subs[0].Close()
}

// TestHubPolling drives the background poll loop end to end.
func TestHubPolling(t *testing.T) {
	src := newFakeSource()
	h := NewHub(Config{})
	h.Attach("d", src)
	sub, err := h.Subscribe("d", window(0, 0, 100, 100, 0, 1000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	next(t, sub) // init
	h.StartPolling(2 * time.Millisecond)
	defer h.StopPolling()
	src.commit(0, fakeRec{ID: 1, X: 1, Y: 1, T: 1})
	u := next(t, sub)
	if u.Kind != KindBatch || len(u.Records) != 1 {
		t.Fatalf("polled update = %+v", u)
	}
	h.StopPolling()
	h.StopPolling() // idempotent
}
