package subscribe

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"st4ml/internal/selection"
	"st4ml/internal/storage"
	"st4ml/internal/trace"
)

// Hub is the fan-out core: it owns, per attached dataset, the inverted
// window index and the live subscriber set, and turns committed delta
// batches into per-subscriber updates. Commits reach it two ways — a
// synchronous poke from the storage layer's OnCommit hook for in-process
// writers, and a manifest poll (StartPolling) that catches commits from
// other processes — both funnel into one generation-diffing notifier, so
// duplicated triggers are harmless.
type Hub struct {
	queue  int
	tracer *trace.Tracer

	mu       sync.Mutex
	datasets map[string]*hubDataset
	nextID   atomic.Int64

	subsTotal atomic.Int64 // subscriptions ever admitted
	batches   atomic.Int64 // delta files matched against the index
	events    atomic.Int64 // batch updates enqueued
	records   atomic.Int64 // records across enqueued batch updates
	drops     atomic.Int64 // queued events discarded by overflow
	resyncs   atomic.Int64 // resync snapshots delivered
	pollErrs  atomic.Int64 // background poll passes that failed

	pollStop chan struct{}
	pollDone chan struct{}
}

// Config tunes a hub.
type Config struct {
	// Queue is the default per-subscriber bounded queue (0 means 64).
	Queue int
	// Tracer, when non-nil, records subscribe:match and subscribe:push
	// spans for every processed delta batch.
	Tracer *trace.Tracer
}

// DefaultQueue is the per-subscriber queue bound when none is configured.
const DefaultQueue = 64

// NewHub returns an empty hub.
func NewHub(cfg Config) *Hub {
	q := cfg.Queue
	if q <= 0 {
		q = DefaultQueue
	}
	return &Hub{queue: q, tracer: cfg.Tracer, datasets: map[string]*hubDataset{}}
}

// hubDataset is the hub's per-dataset state.
type hubDataset struct {
	name string
	src  Source

	// notifyMu serializes commit processing with subscriber admission, so
	// a new subscriber never races the notifier between its registration
	// and its snapshot.
	notifyMu sync.Mutex
	// inited/lastGen/nextSeq/rewriteFP are the notifier's cursor into the
	// manifest history, guarded by notifyMu.
	inited    bool
	lastGen   int64
	nextSeq   int64
	rewriteFP string

	// mu guards the index and subscriber set (readers: the match path).
	mu   sync.Mutex
	idx  *SubIndex
	subs map[int64]*Subscriber
}

// Attach registers a dataset source under name. Re-attaching an existing
// name keeps its subscribers and swaps the source.
func (h *Hub) Attach(name string, src Source) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ds, ok := h.datasets[name]; ok {
		ds.notifyMu.Lock()
		ds.src = src
		ds.notifyMu.Unlock()
		return
	}
	h.datasets[name] = &hubDataset{
		name: name, src: src, idx: NewSubIndex(), subs: map[int64]*Subscriber{},
	}
}

func (h *Hub) dataset(name string) *hubDataset {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.datasets[name]
}

// Subscribe registers a standing window query against dataset name and
// returns the subscription with its init snapshot already queued. The
// admission order — catch the notifier up, register the window, then
// snapshot — plus the snapshot's sequence fence is what makes the stream
// gapless: a commit before the fence is inside the snapshot, a commit
// after it lands in the (already registered) queue, and queued events
// below the fence are discarded as duplicates.
func (h *Hub) Subscribe(name string, w selection.Window, opts Options) (*Subscriber, error) {
	ds := h.dataset(name)
	if ds == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDataset, name)
	}
	maxQueue := opts.Queue
	if maxQueue <= 0 {
		maxQueue = h.queue
	}
	sub := &Subscriber{
		id:      h.nextID.Add(1),
		dataset: name,
		window:  w,
		opts:    opts,
		hub:     h,
		ds:      ds,
		signal:  make(chan struct{}, 1),
		// A queue of one cannot hold a batch and still admit the next
		// without dropping; two is the floor that keeps resync livelock out.
		maxQueue: max(maxQueue, 2),
		pending:  true,
	}
	ds.notifyMu.Lock()
	if err := h.processLocked(ds); err != nil {
		ds.notifyMu.Unlock()
		return nil, err
	}
	ds.mu.Lock()
	ds.idx.Insert(sub.id, w.Box())
	ds.subs[sub.id] = sub
	ds.mu.Unlock()
	ds.notifyMu.Unlock()

	parts, gen, nextSeq, err := ds.src.Snapshot(w, opts.Limit)
	if err != nil {
		h.unsubscribe(sub)
		return nil, err
	}
	sub.mu.Lock()
	sub.minSeq = nextSeq
	kept := sub.queue[:0]
	for _, u := range sub.queue {
		if u.Seq >= nextSeq {
			kept = append(kept, u)
		}
	}
	init := Update{
		Kind: KindInit, Dataset: name, Generation: gen, NextSeq: nextSeq, Parts: parts,
	}
	sub.queue = append([]Update{init}, kept...)
	sub.pending = false
	sub.wake()
	sub.mu.Unlock()
	h.subsTotal.Add(1)
	return sub, nil
}

// unsubscribe removes sub from its dataset and closes it.
func (h *Hub) unsubscribe(sub *Subscriber) {
	ds := sub.ds
	ds.mu.Lock()
	if _, ok := ds.subs[sub.id]; ok {
		delete(ds.subs, sub.id)
		ds.idx.Remove(sub.id)
	}
	ds.mu.Unlock()
	sub.mu.Lock()
	sub.closed = true
	sub.wake()
	sub.mu.Unlock()
}

// CloseAll closes every live subscription — the drain path: SSE handlers
// blocked in Next return ErrClosed and end their streams well before the
// daemon's drain timeout.
func (h *Hub) CloseAll() {
	h.mu.Lock()
	datasets := make([]*hubDataset, 0, len(h.datasets))
	for _, ds := range h.datasets {
		datasets = append(datasets, ds)
	}
	h.mu.Unlock()
	for _, ds := range datasets {
		ds.mu.Lock()
		subs := make([]*Subscriber, 0, len(ds.subs))
		for _, s := range ds.subs {
			subs = append(subs, s)
		}
		ds.mu.Unlock()
		for _, s := range subs {
			h.unsubscribe(s)
		}
	}
}

// Poke processes any commits to dataset name that the notifier has not
// seen yet. It is the OnCommit hook target; an error means matching or
// delta reading failed and surfaces to the committing writer as a
// *storage.HookError.
func (h *Hub) Poke(name string) error {
	ds := h.dataset(name)
	if ds == nil {
		return nil // dataset detached; the commit is nobody's business
	}
	ds.notifyMu.Lock()
	defer ds.notifyMu.Unlock()
	return h.processLocked(ds)
}

// PokeAll polls every attached dataset once, returning the first error.
func (h *Hub) PokeAll() error {
	h.mu.Lock()
	names := make([]string, 0, len(h.datasets))
	for name := range h.datasets {
		names = append(names, name)
	}
	h.mu.Unlock()
	sort.Strings(names)
	var first error
	for _, name := range names {
		if err := h.Poke(name); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// StartPolling launches a background loop that pokes every dataset each
// interval — the delivery path for commits made by other processes.
func (h *Hub) StartPolling(interval time.Duration) {
	if h.pollStop != nil {
		return
	}
	h.pollStop = make(chan struct{})
	h.pollDone = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := h.PokeAll(); err != nil {
					h.pollErrs.Add(1)
				}
			}
		}
	}(h.pollStop, h.pollDone)
}

// StopPolling halts the background poll loop and waits for it.
func (h *Hub) StopPolling() {
	if h.pollStop == nil {
		return
	}
	close(h.pollStop)
	<-h.pollDone
	h.pollStop, h.pollDone = nil, nil
}

// processLocked advances the notifier cursor to the current manifest:
// unseen deltas are matched and pushed in sequence order; a changed
// rewrite set (compaction) schedules a resync for every subscriber
// instead, because rewritten base files may order records differently
// than anything already delivered. Caller holds ds.notifyMu.
func (h *Hub) processLocked(ds *hubDataset) error {
	mf, err := ds.src.Manifest()
	if err != nil {
		return err
	}
	if ds.inited && mf.Generation == ds.lastGen {
		return nil
	}
	fp := rewriteFingerprint(mf)
	advance := func() {
		ds.lastGen, ds.nextSeq, ds.rewriteFP = mf.Generation, mf.NextSeq, fp
	}
	if !ds.inited {
		// First sight of the dataset: existing history belongs to snapshots,
		// not the push path.
		ds.inited = true
		advance()
		return nil
	}
	if fp != ds.rewriteFP {
		// Compaction committed (possibly alongside appends whose deltas it
		// already folded in). Everything is recovered by fresh snapshots.
		advance()
		h.resyncAll(ds)
		return nil
	}
	var fresh []storage.DeltaMeta
	for _, dm := range mf.Deltas {
		if dm.Seq >= ds.nextSeq {
			fresh = append(fresh, dm)
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Seq < fresh[j].Seq })
	// Every sequence minted since the cursor must be live: deltas only
	// leave the manifest through compaction, which changes the rewrite
	// fingerprint. If one is missing anyway, fall back to resync rather
	// than push a gapped stream.
	if int64(len(fresh)) != mf.NextSeq-ds.nextSeq {
		advance()
		h.resyncAll(ds)
		return nil
	}
	for _, dm := range fresh {
		if err := h.pushDelta(ds, mf.Generation, dm); err != nil {
			return err
		}
		ds.nextSeq = dm.Seq + 1
	}
	advance()
	return nil
}

// resyncAll schedules a resync for every subscriber of ds.
func (h *Hub) resyncAll(ds *hubDataset) {
	ds.mu.Lock()
	subs := make([]*Subscriber, 0, len(ds.subs))
	for _, s := range ds.subs {
		subs = append(subs, s)
	}
	ds.mu.Unlock()
	for _, s := range subs {
		s.markResync()
	}
}

// pushDelta routes one committed delta file through the window index and
// enqueues a batch update per matching subscriber — the O(K log M) hot
// path of the online tier.
func (h *Hub) pushDelta(ds *hubDataset, gen int64, dm storage.DeltaMeta) error {
	ds.mu.Lock()
	registered := ds.idx.Len()
	hit := registered > 0 && ds.idx.Any(dm.Box())
	ds.mu.Unlock()
	if !hit {
		return nil // no window can match: skip the file read entirely
	}
	sp := h.tracer.StartSpan(0, trace.SpanSubscribeMatch,
		trace.Str("dataset", ds.name),
		trace.Int("seq", dm.Seq),
		trace.Int("partition", int64(dm.Partition)))
	boxes, recs, err := ds.src.ReadDelta(dm)
	if err != nil {
		sp.End(trace.Str("error", err.Error()))
		return fmt.Errorf("subscribe: read delta seq %d of %s: %w", dm.Seq, ds.name, err)
	}
	ds.mu.Lock()
	matched := map[int64][]json.RawMessage{}
	for i, b := range boxes {
		ds.idx.Match(b, func(id int64) {
			matched[id] = append(matched[id], recs[i])
		})
	}
	targets := make([]*Subscriber, 0, len(matched))
	for id := range matched {
		if s := ds.subs[id]; s != nil {
			targets = append(targets, s)
		}
	}
	ds.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })
	queued := 0
	for _, sub := range targets {
		rs := matched[sub.id]
		psp := sp.Child(trace.SpanSubscribePush,
			trace.Int("subscriber", sub.id), trace.Int("records", int64(len(rs))))
		ok := sub.enqueue(Update{
			Kind: KindBatch, Dataset: ds.name, Generation: gen,
			Seq: dm.Seq, Partition: dm.Partition, Records: rs,
		})
		psp.End(trace.Bool("queued", ok))
		if ok {
			queued++
			h.records.Add(int64(len(rs)))
		}
	}
	h.batches.Add(1)
	h.events.Add(int64(queued))
	sp.End(trace.Int("records", int64(len(boxes))),
		trace.Int("subscribers", int64(registered)),
		trace.Int("matched", int64(len(targets))))
	return nil
}

// resync builds sub's replacement snapshot. The fresh fence both filters
// the queue (events at or above it are still ahead of the snapshot and
// survive) and arms enqueue's duplicate discard for events the notifier
// pushes while the snapshot was being built.
func (h *Hub) resync(sub *Subscriber, dropped int64) (Update, error) {
	parts, gen, nextSeq, err := sub.ds.src.Snapshot(sub.window, sub.opts.Limit)
	if err != nil {
		return Update{}, err
	}
	sub.mu.Lock()
	sub.minSeq = nextSeq
	kept := sub.queue[:0]
	for _, u := range sub.queue {
		if u.Seq >= nextSeq {
			kept = append(kept, u)
		}
	}
	sub.queue = kept
	sub.mu.Unlock()
	h.resyncs.Add(1)
	return Update{
		Kind: KindResync, Dataset: sub.dataset, Generation: gen,
		NextSeq: nextSeq, Parts: parts, Dropped: dropped,
	}, nil
}

// rewriteFingerprint canonically encodes a manifest's compaction rewrites.
// Every compaction pass installs generation-suffixed file names, so any
// commit that folded deltas or reordered a base file changes this string.
func rewriteFingerprint(mf *storage.Manifest) string {
	if len(mf.Rewrites) == 0 {
		return ""
	}
	keys := make([]int, 0, len(mf.Rewrites))
	for pi := range mf.Rewrites {
		keys = append(keys, pi)
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, pi := range keys {
		fmt.Fprintf(&b, "%d:%s;", pi, mf.Rewrites[pi].File)
	}
	return b.String()
}

// Stats is the hub's counter snapshot, exported on /metrics.
type Stats struct {
	// ActiveSubscribers is the number of live subscriptions.
	ActiveSubscribers int `json:"active_subscribers"`
	// TotalSubscribers counts subscriptions ever admitted.
	TotalSubscribers int64 `json:"subscribers_total"`
	// QueuedEvents is the current total lag: undelivered updates summed
	// over every live subscriber's queue.
	QueuedEvents int `json:"queued_events"`
	// BatchesMatched counts delta files routed through the window index.
	BatchesMatched int64 `json:"batches_matched"`
	// EventsPushed counts batch updates enqueued to subscribers.
	EventsPushed int64 `json:"events_pushed"`
	// RecordsPushed counts records across enqueued batch updates.
	RecordsPushed int64 `json:"records_pushed"`
	// EventsDropped counts queued updates discarded by overflow.
	EventsDropped int64 `json:"events_dropped"`
	// Resyncs counts snapshot-replacing resync deliveries.
	Resyncs int64 `json:"resyncs"`
	// PollErrors counts failed background poll passes.
	PollErrors int64 `json:"poll_errors"`
	// MaxQueue is the configured default per-subscriber queue bound.
	MaxQueue int `json:"max_queue"`
}

// Stats returns a point-in-time snapshot of the hub's counters.
func (h *Hub) Stats() Stats {
	st := Stats{
		TotalSubscribers: h.subsTotal.Load(),
		BatchesMatched:   h.batches.Load(),
		EventsPushed:     h.events.Load(),
		RecordsPushed:    h.records.Load(),
		EventsDropped:    h.drops.Load(),
		Resyncs:          h.resyncs.Load(),
		PollErrors:       h.pollErrs.Load(),
		MaxQueue:         h.queue,
	}
	h.mu.Lock()
	datasets := make([]*hubDataset, 0, len(h.datasets))
	for _, ds := range h.datasets {
		datasets = append(datasets, ds)
	}
	h.mu.Unlock()
	for _, ds := range datasets {
		ds.mu.Lock()
		st.ActiveSubscribers += len(ds.subs)
		subs := make([]*Subscriber, 0, len(ds.subs))
		for _, s := range ds.subs {
			subs = append(subs, s)
		}
		ds.mu.Unlock()
		for _, s := range subs {
			st.QueuedEvents += s.Pending()
		}
	}
	return st
}
