package subscribe

import (
	"math/rand"
	"sort"
	"testing"

	"st4ml/internal/index"
)

func box(minx, miny, mint, maxx, maxy, maxt float64) index.Box {
	var b index.Box
	b.Min[0], b.Max[0] = minx, maxx
	b.Min[1], b.Max[1] = miny, maxy
	b.Min[2], b.Max[2] = mint, maxt
	return b
}

// matchIDs collects Match's callbacks sorted, for comparisons.
func matchIDs(x *SubIndex, b index.Box) []int64 {
	var ids []int64
	x.Match(b, func(id int64) { ids = append(ids, id) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestSubIndexInsertMatchRemove(t *testing.T) {
	x := NewSubIndex()
	if x.Len() != 0 || x.Any(box(0, 0, 0, 10, 10, 10)) {
		t.Fatal("empty index matched")
	}
	x.Insert(1, box(0, 0, 0, 5, 5, 5))
	x.Insert(2, box(4, 4, 4, 9, 9, 9))
	x.Insert(3, box(20, 20, 20, 25, 25, 25))
	if got := matchIDs(x, box(4.5, 4.5, 4.5, 4.6, 4.6, 4.6)); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("overlap probe matched %v, want [1 2]", got)
	}
	if got := matchIDs(x, box(21, 21, 21, 22, 22, 22)); len(got) != 1 || got[0] != 3 {
		t.Fatalf("probe matched %v, want [3]", got)
	}
	if !x.Any(box(21, 21, 21, 22, 22, 22)) || x.Any(box(100, 100, 100, 101, 101, 101)) {
		t.Fatal("Any disagrees with Match")
	}

	// Remove tombstones: the id must stop matching immediately.
	x.Remove(2)
	if got := matchIDs(x, box(4.5, 4.5, 4.5, 4.6, 4.6, 4.6)); len(got) != 1 || got[0] != 1 {
		t.Fatalf("post-remove probe matched %v, want [1]", got)
	}
	if x.Len() != 2 {
		t.Fatalf("Len = %d, want 2", x.Len())
	}
	x.Remove(2) // unknown/already-removed: no-op
	if x.Len() != 2 {
		t.Fatal("double remove changed Len")
	}
}

// TestSubIndexReplaceWindow pins that re-inserting a live id moves its
// window and never double-fires the callback.
func TestSubIndexReplaceWindow(t *testing.T) {
	x := NewSubIndex()
	x.Insert(7, box(0, 0, 0, 5, 5, 5))
	x.Insert(7, box(10, 10, 10, 15, 15, 15))
	if got := matchIDs(x, box(1, 1, 1, 2, 2, 2)); len(got) != 0 {
		t.Fatalf("old window still matches after replace: %v", got)
	}
	if got := matchIDs(x, box(11, 11, 11, 12, 12, 12)); len(got) != 1 || got[0] != 7 {
		t.Fatalf("new window matched %v, want [7]", got)
	}
	// Replace with the identical window: two equal tree entries for one id;
	// the seen set must keep the callback to one invocation.
	x.Insert(8, box(30, 30, 30, 35, 35, 35))
	x.Insert(8, box(30, 30, 30, 35, 35, 35))
	if got := matchIDs(x, box(31, 31, 31, 32, 32, 32)); len(got) != 1 || got[0] != 8 {
		t.Fatalf("identical replace matched %v, want exactly [8]", got)
	}
}

// TestSubIndexRebuild drives enough churn to trip the tombstone-dominance
// rebuild and checks matching stays exact through it.
func TestSubIndexRebuild(t *testing.T) {
	x := NewSubIndex()
	for id := int64(0); id < 40; id++ {
		f := float64(id)
		x.Insert(id, box(f, f, f, f+0.5, f+0.5, f+0.5))
	}
	for id := int64(0); id < 30; id++ {
		x.Remove(id)
	}
	// 30 removals with only 10 survivors must have tripped at least one
	// rebuild (which resets the tombstone count) along the way.
	if x.dead >= 30 {
		t.Fatalf("dead = %d after heavy churn, no rebuild happened", x.dead)
	}
	if x.Len() != 10 {
		t.Fatalf("Len = %d, want 10", x.Len())
	}
	for id := int64(30); id < 40; id++ {
		f := float64(id)
		if got := matchIDs(x, box(f+0.1, f+0.1, f+0.1, f+0.2, f+0.2, f+0.2)); len(got) != 1 || got[0] != id {
			t.Fatalf("survivor %d matched %v after rebuild", id, got)
		}
	}
	for id := int64(0); id < 30; id++ {
		f := float64(id)
		if x.Any(box(f+0.1, f+0.1, f+0.1, f+0.2, f+0.2, f+0.2)) {
			t.Fatalf("removed id %d still matches after rebuild", id)
		}
	}
}

// FuzzSubscriptionIndex drives the index with an arbitrary op stream —
// insert, replace, remove, probe — and checks every probe against a
// brute-force oracle over the live window set. Run as a 10s smoke in
// `make fuzz-smoke`.
func FuzzSubscriptionIndex(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, int64(1))
	f.Add([]byte{0, 0, 0, 1, 1, 2, 2, 2, 0, 2}, int64(42))
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 0, 1}, int64(7))
	f.Fuzz(func(t *testing.T, ops []byte, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		randBox := func() index.Box {
			var b index.Box
			for i := 0; i < index.Dims; i++ {
				lo := rng.Float64()*100 - 50
				b.Min[i], b.Max[i] = lo, lo+rng.Float64()*20
			}
			return b
		}
		x := NewSubIndex()
		oracle := map[int64]index.Box{}
		for _, op := range ops {
			switch op % 3 {
			case 0: // insert or replace a window under a small id space
				id := int64(rng.Intn(12))
				b := randBox()
				x.Insert(id, b)
				oracle[id] = b
			case 1: // remove (often an id that exists)
				id := int64(rng.Intn(12))
				x.Remove(id)
				delete(oracle, id)
			case 2: // probe and compare to brute force
				probe := randBox()
				var want []int64
				for id, b := range oracle {
					if b.Intersects(probe) {
						want = append(want, id)
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				got := matchIDs(x, probe)
				if len(got) != len(want) {
					t.Fatalf("probe %v: got %v, oracle %v", probe, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("probe %v: got %v, oracle %v", probe, got, want)
					}
				}
				if x.Any(probe) != (len(want) > 0) {
					t.Fatalf("Any(%v) = %v, oracle has %d matches", probe, x.Any(probe), len(want))
				}
			}
		}
		if x.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle has %d", x.Len(), len(oracle))
		}
	})
}
