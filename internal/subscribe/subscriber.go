package subscribe

import (
	"context"
	"sync"

	"st4ml/internal/selection"
)

// Subscriber is one standing subscription: a registered window plus a
// bounded queue of pending updates the client drains with Next. The queue
// is the backpressure boundary between the notifier (which must never
// block on a slow consumer) and the transport: when it fills, the oldest
// pending event is dropped and the subscriber is marked for resync, so a
// stalled client costs bounded memory and recovers to a correct state the
// moment it catches up — the same shed-don't-queue discipline as the
// serving tier's admission control.
type Subscriber struct {
	id      int64
	dataset string
	window  selection.Window
	opts    Options
	hub     *Hub
	ds      *hubDataset

	mu       sync.Mutex
	signal   chan struct{} // 1-buffered wakeup; extra sends coalesce
	queue    []Update
	maxQueue int
	// pending marks the admission window between registration and the init
	// snapshot: enqueues buffer (nothing may outrun init) and Next blocks.
	pending    bool
	needResync bool
	// minSeq is the delta-sequence fence of the last delivered snapshot;
	// queued batch events below it are already inside that snapshot and
	// are discarded instead of delivered twice.
	minSeq  int64
	closed  bool
	dropped int64 // overflow-discarded events since the last snapshot
}

// ID returns the subscription's hub-unique id.
func (s *Subscriber) ID() int64 { return s.id }

// Dataset returns the subscribed dataset name.
func (s *Subscriber) Dataset() string { return s.dataset }

// Window returns the standing query window.
func (s *Subscriber) Window() selection.Window { return s.window }

// Next blocks until the next update is available and returns it. Resync
// takes priority over queued batches: once a snapshot replaces the state,
// older queued events would be stale. It returns ErrClosed after Close (or
// a server-side drain), and ctx's error on cancellation.
func (s *Subscriber) Next(ctx context.Context) (Update, error) {
	for {
		s.mu.Lock()
		switch {
		case s.closed:
			s.mu.Unlock()
			return Update{}, ErrClosed
		case !s.pending && s.needResync:
			s.needResync = false
			dropped := s.dropped
			s.dropped = 0
			s.mu.Unlock()
			u, err := s.hub.resync(s, dropped)
			if err != nil {
				// Restore the marker so a retry (or a reconnect's fresh
				// init) still recovers a correct state.
				s.mu.Lock()
				s.needResync = true
				s.dropped += dropped
				s.mu.Unlock()
				return Update{}, err
			}
			return u, nil
		case !s.pending && len(s.queue) > 0:
			u := s.queue[0]
			copy(s.queue, s.queue[1:])
			s.queue[len(s.queue)-1] = Update{}
			s.queue = s.queue[:len(s.queue)-1]
			s.mu.Unlock()
			return u, nil
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return Update{}, ctx.Err()
		case <-s.signal:
		}
	}
}

// Pending returns how many deliveries Next would return without blocking —
// the subscriber's lag (a scheduled resync counts as one).
func (s *Subscriber) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending {
		return 0
	}
	n := len(s.queue)
	if s.needResync {
		n++
	}
	return n
}

// Close ends the subscription: it unregisters the window from the hub's
// index and wakes any blocked Next with ErrClosed. Safe to call more than
// once.
func (s *Subscriber) Close() { s.hub.unsubscribe(s) }

// enqueue appends one batch update, dropping the oldest queued event (and
// scheduling a resync that supersedes it) when the queue is full. Returns
// whether the update was queued.
func (s *Subscriber) enqueue(u Update) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if !s.pending && u.Seq < s.minSeq {
		return false // already inside the last delivered snapshot
	}
	if len(s.queue) >= s.maxQueue {
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		s.needResync = true
		s.dropped++
		s.hub.drops.Add(1)
	}
	s.queue = append(s.queue, u)
	s.wake()
	return true
}

// markResync schedules a snapshot-replacing resync (compaction path).
func (s *Subscriber) markResync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.needResync = true
	s.wake()
}

// wake nudges a blocked Next; concurrent wakes coalesce in the buffer.
func (s *Subscriber) wake() {
	select {
	case s.signal <- struct{}{}:
	default:
	}
}
