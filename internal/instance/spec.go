package instance

import (
	"math"

	"st4ml/internal/geom"
	"st4ml/internal/tempo"
)

// Regular structure specs. A structure is regular when its cells have equal
// size and densely tile the space (§4.2). For regular structures the cells
// intersecting a query extent follow from index arithmetic instead of
// iteration — the conversion fast path the paper describes.

// TimeGrid splits a window into NT equal consecutive slots.
type TimeGrid struct {
	Window tempo.Duration
	NT     int
}

// Slots materializes the slot intervals.
func (g TimeGrid) Slots() []tempo.Duration { return g.Window.Split(g.NT) }

// SlotRange returns the inclusive slot index range [lo, hi] whose slots may
// intersect d, or ok=false when d misses the window entirely.
func (g TimeGrid) SlotRange(d tempo.Duration) (lo, hi int, ok bool) {
	d = d.Intersection(g.Window)
	if d.IsEmpty() || g.NT <= 0 {
		return 0, 0, false
	}
	total := g.Window.End - g.Window.Start + 1
	lo = int((d.Start - g.Window.Start) * int64(g.NT) / total)
	hi = int((d.End - g.Window.Start) * int64(g.NT) / total)
	if lo < 0 {
		lo = 0
	}
	if hi >= g.NT {
		hi = g.NT - 1
	}
	return lo, hi, true
}

// SpatialGrid splits an extent into NX × NY equal rectangular cells, stored
// row-major: index = iy*NX + ix.
type SpatialGrid struct {
	Extent geom.MBR
	NX, NY int
}

// NumCells returns NX × NY.
func (g SpatialGrid) NumCells() int { return g.NX * g.NY }

// Cell returns the extent of cell (ix, iy).
func (g SpatialGrid) Cell(ix, iy int) geom.MBR {
	w := g.Extent.Width() / float64(g.NX)
	h := g.Extent.Height() / float64(g.NY)
	return geom.MBR{
		MinX: g.Extent.MinX + float64(ix)*w,
		MinY: g.Extent.MinY + float64(iy)*h,
		MaxX: g.Extent.MinX + float64(ix+1)*w,
		MaxY: g.Extent.MinY + float64(iy+1)*h,
	}
}

// Cells materializes all cell extents in row-major order.
func (g SpatialGrid) Cells() []geom.MBR {
	out := make([]geom.MBR, 0, g.NumCells())
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			out = append(out, g.Cell(ix, iy))
		}
	}
	return out
}

// Polygons materializes all cells as polygons (for APIs that require
// polygon-shaped cells).
func (g SpatialGrid) Polygons() []*geom.Polygon {
	cells := g.Cells()
	out := make([]*geom.Polygon, len(cells))
	for i, c := range cells {
		out[i] = c.ToPolygon()
	}
	return out
}

// CellRange returns the inclusive index ranges [ix0,ix1] × [iy0,iy1] of
// cells that may intersect box b, or ok=false when b misses the extent.
// This is the regular-structure index derivation of §4.2. Cells are closed
// boxes sharing borders, so a coordinate exactly on a boundary belongs to
// both adjacent cells — the lower index extends to cover that case.
func (g SpatialGrid) CellRange(b geom.MBR) (ix0, ix1, iy0, iy1 int, ok bool) {
	b = b.Intersection(g.Extent)
	if b.IsEmpty() || g.NX <= 0 || g.NY <= 0 {
		return 0, 0, 0, 0, false
	}
	w := g.Extent.Width() / float64(g.NX)
	h := g.Extent.Height() / float64(g.NY)
	ix0 = lowerCell((b.MinX-g.Extent.MinX)/w, g.NX)
	ix1 = clampIdx(int((b.MaxX-g.Extent.MinX)/w), g.NX)
	iy0 = lowerCell((b.MinY-g.Extent.MinY)/h, g.NY)
	iy1 = clampIdx(int((b.MaxY-g.Extent.MinY)/h), g.NY)
	return ix0, ix1, iy0, iy1, true
}

// lowerCell maps a fractional cell position to the lowest cell index whose
// closed extent contains it: boundary-exact positions also touch the cell
// below.
func lowerCell(f float64, n int) int {
	i := clampIdx(int(f), n)
	if f == math.Trunc(f) && i > 0 {
		i--
	}
	return i
}

// Locate returns the row-major index of the cell containing p, or -1 when p
// is outside the extent. Border points resolve to the lower-index cell.
func (g SpatialGrid) Locate(p geom.Point) int {
	if !g.Extent.ContainsPoint(p) {
		return -1
	}
	w := g.Extent.Width() / float64(g.NX)
	h := g.Extent.Height() / float64(g.NY)
	ix := clampIdx(int((p.X-g.Extent.MinX)/w), g.NX)
	iy := clampIdx(int((p.Y-g.Extent.MinY)/h), g.NY)
	return iy*g.NX + ix
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// RasterGrid is the product of a spatial grid and a time grid. Cell order
// is time-major: index = it*(NX*NY) + iy*NX + ix, matching the sort order
// (t_start, lon_min, lat_min) the paper prescribes for regular rasters.
type RasterGrid struct {
	Space SpatialGrid
	Time  TimeGrid
}

// NumCells returns NX × NY × NT.
func (g RasterGrid) NumCells() int { return g.Space.NumCells() * g.Time.NT }

// Index composes a cell index from per-dimension indices.
func (g RasterGrid) Index(ix, iy, it int) int {
	return it*g.Space.NumCells() + iy*g.Space.NX + ix
}

// CellAt returns the spatial extent and slot of cell index i.
func (g RasterGrid) CellAt(i int) (geom.MBR, tempo.Duration) {
	per := g.Space.NumCells()
	it := i / per
	rem := i % per
	iy := rem / g.Space.NX
	ix := rem % g.Space.NX
	slots := g.Time.Slots()
	return g.Space.Cell(ix, iy), slots[it]
}

// Build materializes parallel cell and slot arrays in index order.
func (g RasterGrid) Build() (cells []geom.MBR, slots []tempo.Duration) {
	space := g.Space.Cells()
	times := g.Time.Slots()
	cells = make([]geom.MBR, 0, g.NumCells())
	slots = make([]tempo.Duration, 0, g.NumCells())
	for _, t := range times {
		for _, c := range space {
			cells = append(cells, c)
			slots = append(slots, t)
		}
	}
	return cells, slots
}
