// Package instance defines ST4ML's five spatio-temporal instance
// abstractions (§3.2.1 of the paper): Event, Trajectory, TimeSeries,
// SpatialMap, and Raster, built from a common Entry type.
//
// Events and trajectories are *singular* instances — each one is an atomic
// real-world record. Time series, spatial maps, and rasters are *collective*
// instances — arrays of parallel cells whose value fields aggregate or
// collect singular instances. Conversions between them live in package
// convert.
//
// Type parameters mirror the paper's Scala signatures:
//
//	Entry[S Geometry, V]        — spatial shape S, entry-level value V
//	Event[S, V, D]              — one entry plus instance-level data D
//	Trajectory[V, D]            — point entries sorted by time
//	TimeSeries[V, D]            — temporal cells
//	SpatialMap[S, V, D]         — spatial cells of shape S
//	Raster[S, V, D]             — spatio-temporal cells
package instance

import (
	"sort"

	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/tempo"
)

// Entry is the unit of ST information: a spatial shape, a time interval
// (an instant is a degenerate interval), and an entry-level value.
type Entry[S geom.Geometry, V any] struct {
	Spatial  S
	Temporal tempo.Duration
	Value    V
}

// Box returns the entry's 3-d ST bounding box.
func (e Entry[S, V]) Box() index.Box {
	return index.Box3(e.Spatial.MBR(), e.Temporal)
}

// Intersects reports whether the entry's extent intersects the ST window.
func (e Entry[S, V]) Intersects(s geom.MBR, t tempo.Duration) bool {
	return e.Temporal.Intersects(t) && e.Spatial.IntersectsBox(s)
}

// entriesExtent returns the spatial MBR covering all entries.
func entriesExtent[S geom.Geometry, V any](entries []Entry[S, V]) geom.MBR {
	b := geom.EmptyMBR()
	for _, e := range entries {
		b = b.Union(e.Spatial.MBR())
	}
	return b
}

// entriesDuration returns the time interval covering all entries.
func entriesDuration[S geom.Geometry, V any](entries []Entry[S, V]) tempo.Duration {
	d := tempo.Empty()
	for _, e := range entries {
		d = d.Union(e.Temporal)
	}
	return d
}

// Event is a singular instance with exactly one entry: a camera snapshot, a
// check-in, a taxi pick-up.
type Event[S geom.Geometry, V, D any] struct {
	Entry Entry[S, V]
	Data  D
}

// NewEvent constructs an event from its parts.
func NewEvent[S geom.Geometry, V, D any](s S, t tempo.Duration, v V, d D) Event[S, V, D] {
	return Event[S, V, D]{Entry: Entry[S, V]{Spatial: s, Temporal: t, Value: v}, Data: d}
}

// Extent returns the event's spatial bounding box.
func (e Event[S, V, D]) Extent() geom.MBR { return e.Entry.Spatial.MBR() }

// Duration returns the event's time interval.
func (e Event[S, V, D]) Duration() tempo.Duration { return e.Entry.Temporal }

// Box returns the event's 3-d ST box.
func (e Event[S, V, D]) Box() index.Box { return e.Entry.Box() }

// Intersects reports whether the event lies in the ST window.
func (e Event[S, V, D]) Intersects(s geom.MBR, t tempo.Duration) bool {
	return e.Entry.Intersects(s, t)
}

// MapEventData rewrites the instance-level data field, keeping the entry —
// the preMap building block of customized conversions (§3.2.2).
func MapEventData[S geom.Geometry, V, D, D2 any](e Event[S, V, D], f func(D) D2) Event[S, V, D2] {
	return Event[S, V, D2]{Entry: e.Entry, Data: f(e.Data)}
}

// Trajectory is a singular instance: a time-ordered sequence of ST points.
type Trajectory[V, D any] struct {
	Entries []Entry[geom.Point, V]
	Data    D
}

// NewTrajectory constructs a trajectory, sorting entries by start time if
// needed. The entries slice is retained.
func NewTrajectory[V, D any](entries []Entry[geom.Point, V], data D) Trajectory[V, D] {
	if !sort.SliceIsSorted(entries, func(i, j int) bool {
		return entries[i].Temporal.Start < entries[j].Temporal.Start
	}) {
		sort.SliceStable(entries, func(i, j int) bool {
			return entries[i].Temporal.Start < entries[j].Temporal.Start
		})
	}
	return Trajectory[V, D]{Entries: entries, Data: data}
}

// Len returns the number of sojourn points.
func (tr Trajectory[V, D]) Len() int { return len(tr.Entries) }

// Extent returns the spatial bounding box of all points.
func (tr Trajectory[V, D]) Extent() geom.MBR { return entriesExtent(tr.Entries) }

// Duration returns the trajectory's covered time interval.
func (tr Trajectory[V, D]) Duration() tempo.Duration { return entriesDuration(tr.Entries) }

// Box returns the trajectory's 3-d ST box.
func (tr Trajectory[V, D]) Box() index.Box {
	return index.Box3(tr.Extent(), tr.Duration())
}

// Intersects reports whether any segment's box overlaps the ST window.
// (Box-level test: exact per-segment geometry is applied by callers that
// need it.)
func (tr Trajectory[V, D]) Intersects(s geom.MBR, t tempo.Duration) bool {
	if !tr.Duration().Intersects(t) || !tr.Extent().Intersects(s) {
		return false
	}
	if len(tr.Entries) == 1 {
		return tr.Entries[0].Intersects(s, t)
	}
	for i := 1; i < len(tr.Entries); i++ {
		a, b := tr.Entries[i-1], tr.Entries[i]
		segT := a.Temporal.Union(b.Temporal)
		if !segT.Intersects(t) {
			continue
		}
		if geom.SegmentIntersectsBox(a.Spatial, b.Spatial, s) {
			return true
		}
	}
	return false
}

// LineString returns the trajectory's shape as a polyline.
func (tr Trajectory[V, D]) LineString() *geom.LineString {
	pts := make([]geom.Point, len(tr.Entries))
	for i, e := range tr.Entries {
		pts[i] = e.Spatial
	}
	return geom.NewLineString(pts)
}

// LengthMeters returns the geodesic length of the trajectory in metres.
func (tr Trajectory[V, D]) LengthMeters() float64 {
	var sum float64
	for i := 1; i < len(tr.Entries); i++ {
		sum += geom.HaversineMeters(tr.Entries[i-1].Spatial, tr.Entries[i].Spatial)
	}
	return sum
}

// AvgSpeedMps returns the average speed in metres/second over the whole
// trajectory, or 0 when the duration is zero.
func (tr Trajectory[V, D]) AvgSpeedMps() float64 {
	secs := tr.Duration().Seconds()
	if secs == 0 {
		return 0
	}
	return tr.LengthMeters() / float64(secs)
}

// SegmentSpeedsMps returns the speed of each consecutive point pair in
// metres/second (zero-duration segments report 0).
func (tr Trajectory[V, D]) SegmentSpeedsMps() []float64 {
	if len(tr.Entries) < 2 {
		return nil
	}
	out := make([]float64, len(tr.Entries)-1)
	for i := 1; i < len(tr.Entries); i++ {
		a, b := tr.Entries[i-1], tr.Entries[i]
		dt := b.Temporal.Start - a.Temporal.End
		if dt <= 0 {
			dt = b.Temporal.Center() - a.Temporal.Center()
		}
		if dt <= 0 {
			out[i-1] = 0
			continue
		}
		out[i-1] = geom.HaversineMeters(a.Spatial, b.Spatial) / float64(dt)
	}
	return out
}

// MapTrajData rewrites the instance-level data field.
func MapTrajData[V, D, D2 any](tr Trajectory[V, D], f func(D) D2) Trajectory[V, D2] {
	return Trajectory[V, D2]{Entries: tr.Entries, Data: f(tr.Data)}
}
