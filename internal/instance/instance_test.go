package instance

import (
	"math"
	"reflect"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/geom"
	"st4ml/internal/tempo"
)

func TestEventBasics(t *testing.T) {
	e := NewEvent(geom.Pt(1, 2), tempo.Instant(100), "value", "id-7")
	if e.Extent() != geom.Box(1, 2, 1, 2) {
		t.Errorf("Extent = %v", e.Extent())
	}
	if e.Duration() != tempo.Instant(100) {
		t.Errorf("Duration = %v", e.Duration())
	}
	if !e.Intersects(geom.Box(0, 0, 5, 5), tempo.New(50, 150)) {
		t.Error("should intersect covering window")
	}
	if e.Intersects(geom.Box(0, 0, 5, 5), tempo.New(200, 300)) {
		t.Error("should miss disjoint time")
	}
	if e.Intersects(geom.Box(5, 5, 9, 9), tempo.New(50, 150)) {
		t.Error("should miss disjoint space")
	}
}

func TestMapEventData(t *testing.T) {
	e := NewEvent(geom.Pt(1, 2), tempo.Instant(100), 5, "raw")
	mapped := MapEventData(e, func(s string) int { return len(s) })
	if mapped.Data != 3 {
		t.Errorf("Data = %d", mapped.Data)
	}
	if mapped.Entry != e.Entry {
		t.Error("entry should be unchanged")
	}
}

func trajEntries(pts []geom.Point, times []int64) []Entry[geom.Point, Unit] {
	out := make([]Entry[geom.Point, Unit], len(pts))
	for i := range pts {
		out[i] = Entry[geom.Point, Unit]{Spatial: pts[i], Temporal: tempo.Instant(times[i])}
	}
	return out
}

func TestTrajectorySortsEntries(t *testing.T) {
	entries := trajEntries(
		[]geom.Point{geom.Pt(2, 0), geom.Pt(0, 0), geom.Pt(1, 0)},
		[]int64{200, 0, 100})
	tr := NewTrajectory(entries, "t1")
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Entries[i].Temporal.Start < tr.Entries[i-1].Temporal.Start {
			t.Fatal("entries not sorted by time")
		}
	}
	if tr.Entries[0].Spatial != geom.Pt(0, 0) {
		t.Errorf("first point = %v", tr.Entries[0].Spatial)
	}
}

func TestTrajectoryGeometry(t *testing.T) {
	// Two points ~111 km apart on the equator, 3600 s apart.
	tr := NewTrajectory(trajEntries(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)},
		[]int64{0, 3600}), Unit{})
	if got := tr.Duration(); got != tempo.New(0, 3600) {
		t.Errorf("Duration = %v", got)
	}
	if got := tr.Extent(); got != geom.Box(0, 0, 1, 0) {
		t.Errorf("Extent = %v", got)
	}
	lm := tr.LengthMeters()
	if lm < 110e3 || lm > 113e3 {
		t.Errorf("LengthMeters = %g", lm)
	}
	speed := tr.AvgSpeedMps()
	if math.Abs(speed-lm/3600) > 1e-9 {
		t.Errorf("AvgSpeedMps = %g", speed)
	}
	speeds := tr.SegmentSpeedsMps()
	if len(speeds) != 1 || math.Abs(speeds[0]-speed) > 1e-9 {
		t.Errorf("SegmentSpeedsMps = %v", speeds)
	}
}

func TestTrajectoryIntersectsExactSegments(t *testing.T) {
	// Diagonal trajectory; query box in the empty corner of its MBR.
	tr := NewTrajectory(trajEntries(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)},
		[]int64{0, 100}), Unit{})
	if tr.Intersects(geom.Box(8, 0, 10, 2), tempo.New(0, 100)) {
		t.Error("corner box should miss the diagonal")
	}
	if !tr.Intersects(geom.Box(4, 4, 6, 6), tempo.New(0, 100)) {
		t.Error("central box should hit the diagonal")
	}
	if tr.Intersects(geom.Box(4, 4, 6, 6), tempo.New(200, 300)) {
		t.Error("disjoint time should miss")
	}
	single := NewTrajectory(trajEntries([]geom.Point{geom.Pt(5, 5)}, []int64{50}), Unit{})
	if !single.Intersects(geom.Box(0, 0, 10, 10), tempo.New(0, 100)) {
		t.Error("single-point trajectory should hit")
	}
}

func TestTrajectoryZeroDtSpeed(t *testing.T) {
	tr := NewTrajectory(trajEntries(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)},
		[]int64{100, 100}), Unit{})
	speeds := tr.SegmentSpeedsMps()
	if len(speeds) != 1 || speeds[0] != 0 {
		t.Errorf("zero-dt speed = %v", speeds)
	}
	if tr.AvgSpeedMps() != 0 {
		t.Error("zero-duration avg speed should be 0")
	}
}

func TestTimeSeriesConstruction(t *testing.T) {
	slots := tempo.New(0, 99).Split(4)
	values := []int{1, 2, 3, 4}
	ts := NewTimeSeries(slots, values, geom.Box(0, 0, 10, 10), "series")
	if ts.Len() != 4 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if got := ts.Duration(); got != tempo.New(0, 99) {
		t.Errorf("Duration = %v", got)
	}
	if got := ts.Extent(); got != geom.Box(0, 0, 10, 10) {
		t.Errorf("Extent = %v", got)
	}
}

func TestTimeSeriesLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTimeSeries(tempo.New(0, 9).Split(2), []int{1}, geom.EmptyMBR(), Unit{})
}

func TestSpatialMapConstruction(t *testing.T) {
	cells := []*geom.Polygon{
		geom.Rect(geom.Box(0, 0, 1, 1)),
		geom.Rect(geom.Box(1, 0, 2, 1)),
	}
	sm := NewSpatialMap(cells, []int{10, 20}, Unit{})
	if sm.Len() != 2 {
		t.Fatalf("Len = %d", sm.Len())
	}
	if got := sm.Extent(); got != geom.Box(0, 0, 2, 1) {
		t.Errorf("Extent = %v", got)
	}
	if !sm.Duration().IsEmpty() {
		t.Error("purely spatial map should have empty duration")
	}
}

func TestRasterConstruction(t *testing.T) {
	g := RasterGrid{
		Space: SpatialGrid{Extent: geom.Box(0, 0, 2, 2), NX: 2, NY: 2},
		Time:  TimeGrid{Window: tempo.New(0, 199), NT: 2},
	}
	cells, slots := g.Build()
	values := make([]int, len(cells))
	ra := NewRaster(cells, slots, values, Unit{})
	if ra.Len() != 8 {
		t.Fatalf("Len = %d", ra.Len())
	}
	if got := ra.Extent(); got != geom.Box(0, 0, 2, 2) {
		t.Errorf("Extent = %v", got)
	}
	if got := ra.Duration(); got != tempo.New(0, 199) {
		t.Errorf("Duration = %v", got)
	}
}

func TestSpatialGridCellRangeAndLocate(t *testing.T) {
	g := SpatialGrid{Extent: geom.Box(0, 0, 10, 10), NX: 5, NY: 5}
	ix0, ix1, iy0, iy1, ok := g.CellRange(geom.Box(2.5, 2.5, 4.5, 6.5))
	if !ok || ix0 != 1 || ix1 != 2 || iy0 != 1 || iy1 != 3 {
		t.Errorf("CellRange = %d %d %d %d %v", ix0, ix1, iy0, iy1, ok)
	}
	if _, _, _, _, ok := g.CellRange(geom.Box(20, 20, 30, 30)); ok {
		t.Error("outside range should report !ok")
	}
	if got := g.Locate(geom.Pt(3, 7)); got != 3*5+1 {
		t.Errorf("Locate = %d", got)
	}
	if got := g.Locate(geom.Pt(10, 10)); got != 24 {
		t.Errorf("Locate at max corner = %d", got)
	}
	if got := g.Locate(geom.Pt(-1, 5)); got != -1 {
		t.Errorf("Locate outside = %d", got)
	}
}

func TestSpatialGridCellsTile(t *testing.T) {
	g := SpatialGrid{Extent: geom.Box(0, 0, 9, 6), NX: 3, NY: 2}
	cells := g.Cells()
	if len(cells) != 6 {
		t.Fatalf("cells = %d", len(cells))
	}
	var area float64
	for _, c := range cells {
		area += c.Area()
	}
	if math.Abs(area-54) > 1e-9 {
		t.Errorf("total cell area = %g, want 54", area)
	}
	// Row-major layout: cell 1 is (ix=1, iy=0).
	if cells[1] != g.Cell(1, 0) {
		t.Error("row-major order violated")
	}
}

func TestTimeGridSlotRange(t *testing.T) {
	g := TimeGrid{Window: tempo.New(0, 99), NT: 10}
	lo, hi, ok := g.SlotRange(tempo.New(15, 34))
	if !ok || lo != 1 || hi != 3 {
		t.Errorf("SlotRange = %d %d %v", lo, hi, ok)
	}
	if _, _, ok := g.SlotRange(tempo.New(200, 300)); ok {
		t.Error("outside window should report !ok")
	}
	// Every slot returned actually intersects.
	slots := g.Slots()
	q := tempo.New(15, 34)
	for i := lo; i <= hi; i++ {
		if !slots[i].Intersects(q) {
			t.Errorf("slot %d %v does not intersect %v", i, slots[i], q)
		}
	}
}

func TestRasterGridIndexRoundTrip(t *testing.T) {
	g := RasterGrid{
		Space: SpatialGrid{Extent: geom.Box(0, 0, 4, 4), NX: 4, NY: 2},
		Time:  TimeGrid{Window: tempo.New(0, 99), NT: 3},
	}
	for it := 0; it < 3; it++ {
		for iy := 0; iy < 2; iy++ {
			for ix := 0; ix < 4; ix++ {
				i := g.Index(ix, iy, it)
				cell, slot := g.CellAt(i)
				if cell != g.Space.Cell(ix, iy) {
					t.Fatalf("CellAt(%d) spatial mismatch", i)
				}
				if slot != g.Time.Slots()[it] {
					t.Fatalf("CellAt(%d) temporal mismatch", i)
				}
			}
		}
	}
	cells, slots := g.Build()
	if len(cells) != g.NumCells() || len(slots) != g.NumCells() {
		t.Errorf("Build sizes = %d %d", len(cells), len(slots))
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	c := EventCodec(codec.PointC, codec.String, codec.Int64)
	e := NewEvent(geom.Pt(-8.61, 41.14), tempo.New(100, 200), "pickup", int64(42))
	got, err := codec.Unmarshal(c, codec.Marshal(c, e))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round trip: %+v != %+v", got, e)
	}
}

func TestTrajectoryCodecRoundTrip(t *testing.T) {
	c := TrajectoryCodec(codec.Float64, codec.String)
	entries := []Entry[geom.Point, float64]{
		{Spatial: geom.Pt(1, 2), Temporal: tempo.Instant(10), Value: 1.5},
		{Spatial: geom.Pt(3, 4), Temporal: tempo.Instant(20), Value: 2.5},
	}
	tr := NewTrajectory(entries, "trip-9")
	got, err := codec.Unmarshal(c, codec.Marshal(c, tr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch")
	}
}

func TestCollectiveCodecsRoundTrip(t *testing.T) {
	tsc := TimeSeriesCodec(codec.SliceOf(codec.Int64), codec.String)
	ts := NewTimeSeries(
		tempo.New(0, 99).Split(2),
		[][]int64{{1, 2}, {}},
		geom.Box(0, 0, 1, 1), "ts")
	gotTs, err := codec.Unmarshal(tsc, codec.Marshal(tsc, ts))
	if err != nil {
		t.Fatal(err)
	}
	if gotTs.Len() != 2 || gotTs.Data != "ts" || len(gotTs.Entries[0].Value) != 2 {
		t.Errorf("time series round trip: %+v", gotTs)
	}

	smc := SpatialMapCodec(codec.PolygonC, codec.Int, UnitC)
	sm := NewSpatialMap(
		[]*geom.Polygon{geom.Rect(geom.Box(0, 0, 1, 1))},
		[]int{7}, Unit{})
	gotSm, err := codec.Unmarshal(smc, codec.Marshal(smc, sm))
	if err != nil {
		t.Fatal(err)
	}
	if gotSm.Len() != 1 || gotSm.Entries[0].Value != 7 {
		t.Errorf("spatial map round trip: %+v", gotSm)
	}
	if gotSm.Entries[0].Spatial.MBR() != geom.Box(0, 0, 1, 1) {
		t.Error("polygon cell lost")
	}

	rc := RasterCodec(codec.MBRC, codec.Float64, UnitC)
	g := RasterGrid{
		Space: SpatialGrid{Extent: geom.Box(0, 0, 2, 2), NX: 2, NY: 1},
		Time:  TimeGrid{Window: tempo.New(0, 9), NT: 2},
	}
	cells, slots := g.Build()
	ra := NewRaster(cells, slots, []float64{1, 2, 3, 4}, Unit{})
	gotRa, err := codec.Unmarshal(rc, codec.Marshal(rc, ra))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRa.Entries, ra.Entries) {
		t.Error("raster round trip mismatch")
	}
}

func TestEntryBox(t *testing.T) {
	e := Entry[geom.Point, Unit]{Spatial: geom.Pt(1, 2), Temporal: tempo.New(10, 20)}
	b := e.Box()
	if b.Spatial() != geom.Box(1, 2, 1, 2) || b.Temporal() != tempo.New(10, 20) {
		t.Errorf("Box = %+v", b)
	}
}
