package instance

import (
	"strconv"
	"strings"
	"testing"

	"st4ml/internal/geom"
	"st4ml/internal/tempo"
)

func TestReadRasterCSV(t *testing.T) {
	in := `shape,t_min,t_max
"POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",0,3599
"POLYGON ((1 0, 2 0, 2 1, 1 1, 1 0))",0,3599
"POINT (5 5)",3600,7199
`
	cells, slots, err := ReadRasterCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 || len(slots) != 3 {
		t.Fatalf("cells=%d slots=%d", len(cells), len(slots))
	}
	if _, ok := cells[0].(*geom.Polygon); !ok {
		t.Errorf("cell 0 type %T", cells[0])
	}
	if _, ok := cells[2].(geom.Point); !ok {
		t.Errorf("cell 2 type %T", cells[2])
	}
	if slots[2] != tempo.New(3600, 7199) {
		t.Errorf("slot 2 = %v", slots[2])
	}
}

func TestReadRasterCSVNoHeader(t *testing.T) {
	in := `"POINT (1 2)",10,20`
	cells, slots, err := ReadRasterCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || slots[0] != tempo.New(10, 20) {
		t.Fatalf("cells=%v slots=%v", cells, slots)
	}
}

func TestReadRasterCSVErrors(t *testing.T) {
	cases := []string{
		"",
		`shape,t_min,t_max`,
		`"CIRCLE (1)",0,10`,
		`"POINT (1 2)",x,10`,
		`"POINT (1 2)",0,y`,
		`"POINT (1 2)",0`,
	}
	for _, in := range cases {
		if _, _, err := ReadRasterCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadRasterCSV(%q) should error", in)
		}
	}
}

func TestWriteReadRasterRoundTrip(t *testing.T) {
	g := RasterGrid{
		Space: SpatialGrid{Extent: geom.Box(0, 0, 2, 2), NX: 2, NY: 2},
		Time:  TimeGrid{Window: tempo.New(0, 7199), NT: 2},
	}
	cells, slots := g.Build()
	values := make([]int64, len(cells))
	for i := range values {
		values[i] = int64(i * 10)
	}
	ra := NewRaster(cells, slots, values, Unit{})
	var sb strings.Builder
	if err := WriteRasterCSV(&sb, ra, func(v int64) string {
		return strconv.FormatInt(v, 10)
	}); err != nil {
		t.Fatal(err)
	}
	// The structure columns read back as a raster definition.
	gotCells, gotSlots, err := ReadRasterCSV(onlyStructureColumns(t, sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotCells) != len(cells) {
		t.Fatalf("cells = %d, want %d", len(gotCells), len(cells))
	}
	for i := range cells {
		if gotSlots[i] != slots[i] {
			t.Errorf("slot %d = %v, want %v", i, gotSlots[i], slots[i])
		}
		if gotCells[i].MBR() != cells[i].MBR() {
			t.Errorf("cell %d MBR mismatch", i)
		}
	}
}

// onlyStructureColumns drops the value column so the feature CSV parses as
// a structure CSV.
func onlyStructureColumns(t *testing.T, s string) *strings.Reader {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	var out []string
	for _, l := range lines {
		idx := strings.LastIndex(l, ",")
		if idx < 0 {
			t.Fatalf("bad csv line %q", l)
		}
		out = append(out, l[:idx])
	}
	return strings.NewReader(strings.Join(out, "\n"))
}

func TestWriteSpatialMapAndTimeSeriesCSV(t *testing.T) {
	sm := NewSpatialMap(
		[]*geom.Polygon{geom.Rect(geom.Box(0, 0, 1, 1))},
		[]float64{2.5}, Unit{})
	var sb strings.Builder
	if err := WriteSpatialMapCSV(&sb, sm, func(v float64) string {
		return strconv.FormatFloat(v, 'f', 2, 64)
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "POLYGON") || !strings.Contains(sb.String(), "2.50") {
		t.Errorf("spatial map csv = %q", sb.String())
	}

	ts := NewTimeSeries(tempo.New(0, 99).Split(2), []int64{4, 5}, geom.EmptyMBR(), Unit{})
	sb.Reset()
	if err := WriteTimeSeriesCSV(&sb, ts, func(v int64) string {
		return strconv.FormatInt(v, 10)
	}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 || lines[1] != "0,49,4" {
		t.Errorf("time series csv = %q", sb.String())
	}
}
