package instance

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"st4ml/internal/geom"
	"st4ml/internal/tempo"
)

// CSV exchange for raster structures and extracted features — the
// ReadRaster / saveParquet helpers of the paper's §3.4 end-to-end example.
// Each structure row is `wkt, t_min, t_max`; feature rows append a value
// column.

// ReadRasterCSV parses a raster structure definition: one cell per row with
// fields (WKT shape, t_min, t_max). The header row is optional (detected by
// a non-numeric second field).
func ReadRasterCSV(r io.Reader) (cells []geom.Geometry, slots []tempo.Duration, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	cr.TrimLeadingSpace = true
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("instance: raster csv: %w", err)
		}
		if first {
			first = false
			if _, convErr := strconv.ParseInt(rec[1], 10, 64); convErr != nil {
				continue // header row
			}
		}
		shape, err := geom.ParseWKT(rec[0])
		if err != nil {
			return nil, nil, fmt.Errorf("instance: raster csv shape: %w", err)
		}
		tmin, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("instance: raster csv t_min: %w", err)
		}
		tmax, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("instance: raster csv t_max: %w", err)
		}
		cells = append(cells, shape)
		slots = append(slots, tempo.New(tmin, tmax))
	}
	if len(cells) == 0 {
		return nil, nil, fmt.Errorf("instance: raster csv: no cells")
	}
	return cells, slots, nil
}

// WriteRasterCSV writes an extracted raster as (WKT shape, t_min, t_max,
// value) rows, with formatV rendering the value column.
func WriteRasterCSV[S geom.Geometry, V, D any](
	w io.Writer,
	ra Raster[S, V, D],
	formatV func(V) string,
) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"shape", "t_min", "t_max", "value"}); err != nil {
		return fmt.Errorf("instance: write raster csv: %w", err)
	}
	for _, e := range ra.Entries {
		row := []string{
			geom.MarshalWKT(e.Spatial),
			strconv.FormatInt(e.Temporal.Start, 10),
			strconv.FormatInt(e.Temporal.End, 10),
			formatV(e.Value),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("instance: write raster csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSpatialMapCSV writes an extracted spatial map as (WKT shape, value)
// rows.
func WriteSpatialMapCSV[S geom.Geometry, V, D any](
	w io.Writer,
	sm SpatialMap[S, V, D],
	formatV func(V) string,
) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"shape", "value"}); err != nil {
		return fmt.Errorf("instance: write spatial map csv: %w", err)
	}
	for _, e := range sm.Entries {
		if err := cw.Write([]string{geom.MarshalWKT(e.Spatial), formatV(e.Value)}); err != nil {
			return fmt.Errorf("instance: write spatial map csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTimeSeriesCSV writes an extracted time series as (t_min, t_max,
// value) rows.
func WriteTimeSeriesCSV[V, D any](
	w io.Writer,
	ts TimeSeries[V, D],
	formatV func(V) string,
) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_min", "t_max", "value"}); err != nil {
		return fmt.Errorf("instance: write time series csv: %w", err)
	}
	for _, e := range ts.Entries {
		row := []string{
			strconv.FormatInt(e.Temporal.Start, 10),
			strconv.FormatInt(e.Temporal.End, 10),
			formatV(e.Value),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("instance: write time series csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
