package instance

import (
	"st4ml/internal/geom"
	"st4ml/internal/tempo"
)

// TimeSeries is a collective instance organizing data by time: each entry is
// a time slot whose value holds the measurements or objects falling in it.
// The spatial field records the (optional) overall extent.
type TimeSeries[V, D any] struct {
	Entries []Entry[geom.MBR, V]
	Data    D
}

// NewTimeSeries builds a series from parallel slot and value arrays (which
// must have equal length) and an optional shared spatial extent.
func NewTimeSeries[V, D any](slots []tempo.Duration, values []V, extent geom.MBR, data D) TimeSeries[V, D] {
	if len(slots) != len(values) {
		panic("instance: slots/values length mismatch")
	}
	entries := make([]Entry[geom.MBR, V], len(slots))
	for i := range slots {
		entries[i] = Entry[geom.MBR, V]{Spatial: extent, Temporal: slots[i], Value: values[i]}
	}
	return TimeSeries[V, D]{Entries: entries, Data: data}
}

// Len returns the number of time slots.
func (ts TimeSeries[V, D]) Len() int { return len(ts.Entries) }

// Duration returns the covered time interval.
func (ts TimeSeries[V, D]) Duration() tempo.Duration { return entriesDuration(ts.Entries) }

// Extent returns the covered spatial extent.
func (ts TimeSeries[V, D]) Extent() geom.MBR { return entriesExtent(ts.Entries) }

// SpatialMap is a collective instance organizing data by space: each entry
// is a cell of shape S (grid square, road segment, district polygon) whose
// value holds what falls inside.
type SpatialMap[S geom.Geometry, V, D any] struct {
	Entries []Entry[S, V]
	Data    D
}

// NewSpatialMap builds a map from parallel cell and value arrays.
func NewSpatialMap[S geom.Geometry, V, D any](cells []S, values []V, data D) SpatialMap[S, V, D] {
	if len(cells) != len(values) {
		panic("instance: cells/values length mismatch")
	}
	entries := make([]Entry[S, V], len(cells))
	for i := range cells {
		entries[i] = Entry[S, V]{Spatial: cells[i], Temporal: tempo.Empty(), Value: values[i]}
	}
	return SpatialMap[S, V, D]{Entries: entries, Data: data}
}

// Len returns the number of cells.
func (sm SpatialMap[S, V, D]) Len() int { return len(sm.Entries) }

// Extent returns the union of all cell extents.
func (sm SpatialMap[S, V, D]) Extent() geom.MBR { return entriesExtent(sm.Entries) }

// Duration returns the union of the cells' time intervals (often empty for
// purely spatial maps).
func (sm SpatialMap[S, V, D]) Duration() tempo.Duration { return entriesDuration(sm.Entries) }

// Raster is a collective instance with both spatial and temporal structure:
// a collection of shaped cells with temporal depth. Cell order is defined by
// the spec or cell list used to build it.
type Raster[S geom.Geometry, V, D any] struct {
	Entries []Entry[S, V]
	Data    D
}

// NewRaster builds a raster from parallel cell shapes, slots, and values.
func NewRaster[S geom.Geometry, V, D any](cells []S, slots []tempo.Duration, values []V, data D) Raster[S, V, D] {
	if len(cells) != len(values) || len(slots) != len(values) {
		panic("instance: cells/slots/values length mismatch")
	}
	entries := make([]Entry[S, V], len(cells))
	for i := range cells {
		entries[i] = Entry[S, V]{Spatial: cells[i], Temporal: slots[i], Value: values[i]}
	}
	return Raster[S, V, D]{Entries: entries, Data: data}
}

// Len returns the number of ST cells.
func (ra Raster[S, V, D]) Len() int { return len(ra.Entries) }

// Extent returns the union of all cell extents.
func (ra Raster[S, V, D]) Extent() geom.MBR { return entriesExtent(ra.Entries) }

// Duration returns the union of all cell intervals.
func (ra Raster[S, V, D]) Duration() tempo.Duration { return entriesDuration(ra.Entries) }
