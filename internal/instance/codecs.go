package instance

import (
	"st4ml/internal/codec"
	"st4ml/internal/geom"
)

// Codec constructors for instance types. Shuffling or persisting an
// instance requires codecs for its type parameters; these compose them.

// EntryCodec builds a codec for Entry[S, V] from shape and value codecs.
func EntryCodec[S geom.Geometry, V any](sc codec.Codec[S], vc codec.Codec[V]) codec.Codec[Entry[S, V]] {
	return codec.Codec[Entry[S, V]]{
		Enc: func(w *codec.Writer, e Entry[S, V]) {
			sc.Enc(w, e.Spatial)
			codec.DurationC.Enc(w, e.Temporal)
			vc.Enc(w, e.Value)
		},
		Dec: func(r *codec.Reader) Entry[S, V] {
			return Entry[S, V]{
				Spatial:  sc.Dec(r),
				Temporal: codec.DurationC.Dec(r),
				Value:    vc.Dec(r),
			}
		},
	}
}

// EventCodec builds a codec for Event[S, V, D].
func EventCodec[S geom.Geometry, V, D any](
	sc codec.Codec[S], vc codec.Codec[V], dc codec.Codec[D],
) codec.Codec[Event[S, V, D]] {
	ec := EntryCodec(sc, vc)
	return codec.Codec[Event[S, V, D]]{
		Enc: func(w *codec.Writer, e Event[S, V, D]) {
			ec.Enc(w, e.Entry)
			dc.Enc(w, e.Data)
		},
		Dec: func(r *codec.Reader) Event[S, V, D] {
			return Event[S, V, D]{Entry: ec.Dec(r), Data: dc.Dec(r)}
		},
	}
}

// TrajectoryCodec builds a codec for Trajectory[V, D].
func TrajectoryCodec[V, D any](vc codec.Codec[V], dc codec.Codec[D]) codec.Codec[Trajectory[V, D]] {
	esc := codec.SliceOf(EntryCodec(codec.PointC, vc))
	return codec.Codec[Trajectory[V, D]]{
		Enc: func(w *codec.Writer, t Trajectory[V, D]) {
			esc.Enc(w, t.Entries)
			dc.Enc(w, t.Data)
		},
		Dec: func(r *codec.Reader) Trajectory[V, D] {
			return Trajectory[V, D]{Entries: esc.Dec(r), Data: dc.Dec(r)}
		},
	}
}

// TimeSeriesCodec builds a codec for TimeSeries[V, D].
func TimeSeriesCodec[V, D any](vc codec.Codec[V], dc codec.Codec[D]) codec.Codec[TimeSeries[V, D]] {
	esc := codec.SliceOf(EntryCodec(codec.MBRC, vc))
	return codec.Codec[TimeSeries[V, D]]{
		Enc: func(w *codec.Writer, t TimeSeries[V, D]) {
			esc.Enc(w, t.Entries)
			dc.Enc(w, t.Data)
		},
		Dec: func(r *codec.Reader) TimeSeries[V, D] {
			return TimeSeries[V, D]{Entries: esc.Dec(r), Data: dc.Dec(r)}
		},
	}
}

// SpatialMapCodec builds a codec for SpatialMap[S, V, D].
func SpatialMapCodec[S geom.Geometry, V, D any](
	sc codec.Codec[S], vc codec.Codec[V], dc codec.Codec[D],
) codec.Codec[SpatialMap[S, V, D]] {
	esc := codec.SliceOf(EntryCodec(sc, vc))
	return codec.Codec[SpatialMap[S, V, D]]{
		Enc: func(w *codec.Writer, m SpatialMap[S, V, D]) {
			esc.Enc(w, m.Entries)
			dc.Enc(w, m.Data)
		},
		Dec: func(r *codec.Reader) SpatialMap[S, V, D] {
			return SpatialMap[S, V, D]{Entries: esc.Dec(r), Data: dc.Dec(r)}
		},
	}
}

// RasterCodec builds a codec for Raster[S, V, D].
func RasterCodec[S geom.Geometry, V, D any](
	sc codec.Codec[S], vc codec.Codec[V], dc codec.Codec[D],
) codec.Codec[Raster[S, V, D]] {
	esc := codec.SliceOf(EntryCodec(sc, vc))
	return codec.Codec[Raster[S, V, D]]{
		Enc: func(w *codec.Writer, ra Raster[S, V, D]) {
			esc.Enc(w, ra.Entries)
			dc.Enc(w, ra.Data)
		},
		Dec: func(r *codec.Reader) Raster[S, V, D] {
			return Raster[S, V, D]{Entries: esc.Dec(r), Data: dc.Dec(r)}
		},
	}
}

// Unit is a zero-size placeholder for unused V or D type parameters.
type Unit = struct{}

// UnitC encodes Unit as nothing.
var UnitC = codec.Codec[Unit]{
	Enc: func(*codec.Writer, Unit) {},
	Dec: func(*codec.Reader) Unit { return Unit{} },
}
