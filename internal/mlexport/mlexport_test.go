package mlexport

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"st4ml/internal/convert"
	"st4ml/internal/engine"
	"st4ml/internal/extract"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

func testGrid() instance.RasterGrid {
	return instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: geom.Box(0, 0, 4, 2), NX: 4, NY: 2},
		Time:  instance.TimeGrid{Window: tempo.New(0, 299), NT: 3},
	}
}

func TestRasterTensorLayout(t *testing.T) {
	grid := testGrid()
	cells, slots := grid.Build()
	values := make([]float64, len(cells))
	for i := range values {
		values[i] = float64(i)
	}
	ra := instance.NewRaster(cells, slots, values, instance.Unit{})
	tensor, err := RasterTensor(ra, grid, func(v float64) float64 { return v })
	if err != nil {
		t.Fatal(err)
	}
	nt, ny, nx := tensor.Shape()
	if nt != 3 || ny != 2 || nx != 4 {
		t.Fatalf("Shape = %d %d %d", nt, ny, nx)
	}
	// Cell value i lives at grid.Index(x, y, t).
	for ti := 0; ti < 3; ti++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 4; x++ {
				want := float64(grid.Index(x, y, ti))
				if got := tensor.Data[ti][y][x]; got != want {
					t.Fatalf("Data[%d][%d][%d] = %g, want %g", ti, y, x, got, want)
				}
			}
		}
	}
	if tensor.TStart[1] != 100 {
		t.Errorf("TStart = %v", tensor.TStart)
	}
	if tensor.Extent != [4]float64{0, 0, 4, 2} {
		t.Errorf("Extent = %v", tensor.Extent)
	}
}

func TestRasterTensorSizeMismatch(t *testing.T) {
	grid := testGrid()
	ra := instance.NewRaster(
		[]geom.MBR{geom.Box(0, 0, 1, 1)},
		[]tempo.Duration{tempo.New(0, 9)},
		[]float64{1}, instance.Unit{})
	if _, err := RasterTensor(ra, grid, func(v float64) float64 { return v }); err == nil {
		t.Error("size mismatch should error")
	}
}

func TestSpatialMapMatrixAndTimeSeriesVector(t *testing.T) {
	grid := instance.SpatialGrid{Extent: geom.Box(0, 0, 2, 2), NX: 2, NY: 2}
	sm := instance.NewSpatialMap(grid.Cells(), []int64{1, 2, 3, 4}, instance.Unit{})
	m, err := SpatialMapMatrix(sm, grid, func(v int64) float64 { return float64(v) })
	if err != nil {
		t.Fatal(err)
	}
	if m[0][1] != 2 || m[1][0] != 3 {
		t.Errorf("matrix = %v", m)
	}

	ts := instance.NewTimeSeries(tempo.New(0, 99).Split(2), []int64{7, 9},
		geom.EmptyMBR(), instance.Unit{})
	vs, starts := TimeSeriesVector(ts, func(v int64) float64 { return float64(v) })
	if vs[0] != 7 || vs[1] != 9 || starts[1] != 50 {
		t.Errorf("vector = %v starts = %v", vs, starts)
	}
}

func TestWriteJSONHandlesNaN(t *testing.T) {
	tensor := &Tensor{
		Data:   [][][]float64{{{1, math.NaN()}, {math.Inf(1), 4}}},
		TStart: []int64{0},
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, tensor); err != nil {
		t.Fatal(err)
	}
	var decoded jsonTensor
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Data[0][0][1] != nil || decoded.Data[0][1][0] != nil {
		t.Error("NaN/Inf should encode as null")
	}
	if decoded.Data[0][0][0] == nil || *decoded.Data[0][0][0] != 1 {
		t.Error("finite values should survive")
	}
}

func TestWriteTensorCSV(t *testing.T) {
	tensor := &Tensor{
		Data:   [][][]float64{{{1.5, math.NaN()}}, {{0, 3}}},
		TStart: []int64{0, 100},
	}
	var sb strings.Builder
	if err := WriteTensorCSV(&sb, tensor); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// Header + 3 non-NaN cells.
	if len(lines) != 4 {
		t.Fatalf("csv = %q", sb.String())
	}
	if lines[1] != "0,0,0,1.5" {
		t.Errorf("first row = %q", lines[1])
	}
}

// TestEndToEndTensorExport runs the §2.1 motivating pipeline: trajectories
// → raster speeds → the [A^t0, A^t1, ...] matrix sequence a traffic
// forecaster trains on.
func TestEndToEndTensorExport(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	rng := rand.New(rand.NewSource(1))
	type traj = instance.Trajectory[instance.Unit, int64]
	var trajs []traj
	for i := 0; i < 50; i++ {
		x, y := rng.Float64()*4, rng.Float64()*2
		t0 := rng.Int63n(250)
		entries := []instance.Entry[geom.Point, instance.Unit]{
			{Spatial: geom.Pt(x, y), Temporal: tempo.Instant(t0)},
			{Spatial: geom.Pt(x+0.01, y), Temporal: tempo.Instant(t0 + 30)},
		}
		trajs = append(trajs, instance.NewTrajectory(entries, int64(i)))
	}
	grid := testGrid()
	r := engine.Parallelize(ctx, trajs, 2)
	cells := convert.TrajToRaster(r, convert.RasterGridTarget(grid), convert.Auto,
		func(in []traj) []traj { return in })
	speeds, ok := extract.RasterSpeed(cells, extract.KMH)
	if !ok {
		t.Fatal("no speeds")
	}
	tensor, err := RasterTensor(speeds, grid, func(v extract.CellSpeed) float64 {
		if v.Count == 0 {
			return math.NaN()
		}
		return v.Mean
	})
	if err != nil {
		t.Fatal(err)
	}
	nt, ny, nx := tensor.Shape()
	if nt != 3 || ny != 2 || nx != 4 {
		t.Fatalf("Shape = %d %d %d", nt, ny, nx)
	}
	// At least one observed cell.
	seen := false
	for _, plane := range tensor.Data {
		for _, row := range plane {
			for _, v := range row {
				if !math.IsNaN(v) {
					seen = true
				}
			}
		}
	}
	if !seen {
		t.Error("tensor entirely empty")
	}
}
