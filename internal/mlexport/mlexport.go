// Package mlexport channels extracted ST features to external ML engines
// (§3.3): tensor-shaped exports for deep models — the "sequence of 2-d
// matrices [A^t0, A^t1, ...]" input of the paper's motivating traffic
// forecast application (§2.1) — plus JSON and CSV encodings that
// TensorFlow/PyTorch data loaders ingest directly.
package mlexport

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"st4ml/internal/geom"
	"st4ml/internal/instance"
)

// Tensor is a dense [T][Y][X] feature tensor with its axis metadata — one
// 2-d matrix per time slot, the DL-model input shape of §2.1.
type Tensor struct {
	// Data[t][y][x] is the feature value of grid cell (x, y) at slot t.
	Data [][][]float64 `json:"data"`
	// TStart[t] is the Unix start second of slot t.
	TStart []int64 `json:"t_start"`
	// Extent is the spatial extent covered by the X/Y axes.
	Extent [4]float64 `json:"extent"` // minx, miny, maxx, maxy
}

// Shape returns (T, Y, X).
func (t *Tensor) Shape() (int, int, int) {
	if len(t.Data) == 0 || len(t.Data[0]) == 0 {
		return len(t.Data), 0, 0
	}
	return len(t.Data), len(t.Data[0]), len(t.Data[0][0])
}

// RasterTensor reshapes an extracted regular-grid raster into a Tensor.
// The raster's entries must be in the grid's time-major order (as produced
// by RasterGridTarget conversions); value extracts the per-cell feature
// (use math.NaN for empty cells if the model masks them).
func RasterTensor[V, D any](
	ra instance.Raster[geom.MBR, V, D],
	grid instance.RasterGrid,
	value func(V) float64,
) (*Tensor, error) {
	if ra.Len() != grid.NumCells() {
		return nil, fmt.Errorf("mlexport: raster has %d cells, grid defines %d",
			ra.Len(), grid.NumCells())
	}
	nx, ny, nt := grid.Space.NX, grid.Space.NY, grid.Time.NT
	out := &Tensor{
		Data:   make([][][]float64, nt),
		TStart: make([]int64, nt),
		Extent: [4]float64{
			grid.Space.Extent.MinX, grid.Space.Extent.MinY,
			grid.Space.Extent.MaxX, grid.Space.Extent.MaxY,
		},
	}
	slots := grid.Time.Slots()
	for t := 0; t < nt; t++ {
		out.TStart[t] = slots[t].Start
		out.Data[t] = make([][]float64, ny)
		for y := 0; y < ny; y++ {
			out.Data[t][y] = make([]float64, nx)
			for x := 0; x < nx; x++ {
				out.Data[t][y][x] = value(ra.Entries[grid.Index(x, y, t)].Value)
			}
		}
	}
	return out, nil
}

// SpatialMapMatrix reshapes an extracted regular spatial map into one 2-d
// matrix [Y][X].
func SpatialMapMatrix[V, D any](
	sm instance.SpatialMap[geom.MBR, V, D],
	grid instance.SpatialGrid,
	value func(V) float64,
) ([][]float64, error) {
	if sm.Len() != grid.NumCells() {
		return nil, fmt.Errorf("mlexport: spatial map has %d cells, grid defines %d",
			sm.Len(), grid.NumCells())
	}
	out := make([][]float64, grid.NY)
	for y := 0; y < grid.NY; y++ {
		out[y] = make([]float64, grid.NX)
		for x := 0; x < grid.NX; x++ {
			out[y][x] = value(sm.Entries[y*grid.NX+x].Value)
		}
	}
	return out, nil
}

// TimeSeriesVector reshapes a time series into a feature vector with its
// slot starts.
func TimeSeriesVector[V, D any](
	ts instance.TimeSeries[V, D],
	value func(V) float64,
) (values []float64, starts []int64) {
	values = make([]float64, ts.Len())
	starts = make([]int64, ts.Len())
	for i, e := range ts.Entries {
		values[i] = value(e.Value)
		starts[i] = e.Temporal.Start
	}
	return values, starts
}

// WriteJSON writes any export structure as JSON (NaN values are encoded as
// null by pre-sanitizing, since encoding/json rejects NaN).
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if tensor, ok := v.(*Tensor); ok {
		return enc.Encode(sanitizeTensor(tensor))
	}
	return enc.Encode(v)
}

// jsonTensor mirrors Tensor with nullable cells.
type jsonTensor struct {
	Data   [][][]*float64 `json:"data"`
	TStart []int64        `json:"t_start"`
	Extent [4]float64     `json:"extent"`
}

func sanitizeTensor(t *Tensor) jsonTensor {
	out := jsonTensor{TStart: t.TStart, Extent: t.Extent}
	out.Data = make([][][]*float64, len(t.Data))
	for i, plane := range t.Data {
		out.Data[i] = make([][]*float64, len(plane))
		for j, row := range plane {
			out.Data[i][j] = make([]*float64, len(row))
			for k := range row {
				if !math.IsNaN(row[k]) && !math.IsInf(row[k], 0) {
					v := row[k]
					out.Data[i][j][k] = &v
				}
			}
		}
	}
	return out
}

// WriteTensorCSV writes the tensor as long-format CSV rows
// (t_start, y, x, value), skipping NaN cells — the loader-friendly flat
// encoding.
func WriteTensorCSV(w io.Writer, t *Tensor) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_start", "y", "x", "value"}); err != nil {
		return err
	}
	for ti, plane := range t.Data {
		for y, row := range plane {
			for x, v := range row {
				if math.IsNaN(v) {
					continue
				}
				rec := []string{
					strconv.FormatInt(t.TStart[ti], 10),
					strconv.Itoa(y),
					strconv.Itoa(x),
					strconv.FormatFloat(v, 'g', -1, 64),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
