package roadnet

import (
	"math"
	"testing"

	"st4ml/internal/geom"
)

// lineGraph builds a straight 3-node east-west road: 0 -> 1 -> 2 and back.
func lineGraph(t *testing.T) *Graph {
	t.Helper()
	nodes := []Node{
		{ID: 0, Loc: geom.Pt(0, 0)},
		{ID: 1, Loc: geom.Pt(0.01, 0)}, // ~1.11 km
		{ID: 2, Loc: geom.Pt(0.02, 0)},
	}
	edges := []Edge{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 1, To: 2},
		{ID: 2, From: 1, To: 0},
		{ID: 3, From: 2, To: 1},
	}
	g, err := NewGraph(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph([]Node{{ID: 5}}, nil); err == nil {
		t.Error("bad node ID should error")
	}
	nodes := []Node{{ID: 0, Loc: geom.Pt(0, 0)}}
	if _, err := NewGraph(nodes, []Edge{{ID: 0, From: 0, To: 3}}); err == nil {
		t.Error("dangling edge should error")
	}
	if _, err := NewGraph(nodes, []Edge{{ID: 7, From: 0, To: 0}}); err == nil {
		t.Error("bad edge ID should error")
	}
}

func TestEdgeLengths(t *testing.T) {
	g := lineGraph(t)
	l := g.Edge(0).LengthM
	if l < 1100 || l > 1130 {
		t.Errorf("edge length = %g m, want ~1113", l)
	}
}

func TestEdgesNearAndNearestEdge(t *testing.T) {
	g := lineGraph(t)
	// A point 100 m north of the middle of edge 0.
	p := geom.Pt(0.005, geom.MetersToDegreesLat(100))
	near := g.EdgesNear(p, 200)
	found := map[EdgeID]bool{}
	for _, e := range near {
		found[e] = true
	}
	if !found[0] || !found[2] {
		t.Errorf("EdgesNear = %v, want to include 0 and 2", near)
	}
	if found[1] || found[3] {
		t.Errorf("EdgesNear should exclude the far segment: %v", near)
	}
	id, proj, dist, ok := g.NearestEdge(p)
	if !ok {
		t.Fatal("NearestEdge found nothing")
	}
	if id != 0 && id != 2 {
		t.Errorf("NearestEdge = %d", id)
	}
	if math.Abs(dist-100) > 2 {
		t.Errorf("distance = %g, want ~100", dist)
	}
	if math.Abs(proj.Y) > 1e-9 {
		t.Errorf("projection should lie on the road: %v", proj)
	}
}

func TestShortestPathAndReconstruction(t *testing.T) {
	g := lineGraph(t)
	dist, prev := g.ShortestPath(0, map[NodeID]bool{2: true}, 1e9)
	d, ok := dist[2]
	if !ok {
		t.Fatal("node 2 unreachable")
	}
	want := g.Edge(0).LengthM + g.Edge(1).LengthM
	if math.Abs(d-want) > 1e-6 {
		t.Errorf("distance = %g, want %g", d, want)
	}
	path, ok := g.PathEdges(0, 2, prev)
	if !ok || len(path) != 2 || path[0] != 0 || path[1] != 1 {
		t.Errorf("path = %v", path)
	}
	// Trivial path.
	if p, ok := g.PathEdges(1, 1, prev); !ok || len(p) != 0 {
		t.Errorf("self path = %v ok=%v", p, ok)
	}
}

func TestShortestPathRespectsDirection(t *testing.T) {
	// One-way graph: 0 -> 1 only.
	nodes := []Node{
		{ID: 0, Loc: geom.Pt(0, 0)},
		{ID: 1, Loc: geom.Pt(0.01, 0)},
	}
	edges := []Edge{{ID: 0, From: 0, To: 1}}
	g, err := NewGraph(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	dist, _ := g.ShortestPath(1, map[NodeID]bool{0: true}, 1e9)
	if _, ok := dist[0]; ok {
		t.Error("one-way edge should not be traversable backwards")
	}
}

func TestShortestPathMaxDistCutoff(t *testing.T) {
	g := lineGraph(t)
	dist, _ := g.ShortestPath(0, map[NodeID]bool{2: true}, 500)
	if _, ok := dist[2]; ok {
		t.Error("500 m budget should not reach node 2 (~2.2 km)")
	}
}

func TestGenerateGrid(t *testing.T) {
	g := GenerateGrid(5, 4, 500, geom.Pt(120, 30), 0, 1)
	if g.NumNodes() != 20 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	// Full grid: horizontal pairs 4*4, vertical pairs 5*3, ×2 directions.
	if want := (4*4 + 5*3) * 2; g.NumEdges() != want {
		t.Errorf("edges = %d, want %d", g.NumEdges(), want)
	}
	// Spacing sanity: every edge ~500 m (jitter ≤ ~20%).
	for i := 0; i < g.NumEdges(); i++ {
		l := g.Edge(EdgeID(i)).LengthM
		if l < 300 || l > 700 {
			t.Fatalf("edge %d length %g m out of range", i, l)
		}
	}
	// All corners reachable from node 0 on a full grid.
	target := NodeID(g.NumNodes() - 1)
	dist, _ := g.ShortestPath(0, map[NodeID]bool{target: true}, 1e9)
	if _, ok := dist[target]; !ok {
		t.Error("far corner unreachable on full grid")
	}
}

func TestGenerateGridDropsEdges(t *testing.T) {
	full := GenerateGrid(6, 6, 400, geom.Pt(0, 0), 0, 2)
	dropped := GenerateGrid(6, 6, 400, geom.Pt(0, 0), 0.3, 2)
	if dropped.NumEdges() >= full.NumEdges() {
		t.Errorf("dropFrac had no effect: %d vs %d", dropped.NumEdges(), full.NumEdges())
	}
}

func TestAlongEdgeM(t *testing.T) {
	g := lineGraph(t)
	// Midpoint of edge 0.
	mid := geom.Pt(0.005, 0)
	along := g.AlongEdgeM(mid, 0)
	if math.Abs(along-g.Edge(0).LengthM/2) > 1 {
		t.Errorf("along = %g, want half of %g", along, g.Edge(0).LengthM)
	}
	if got := g.AlongEdgeM(geom.Pt(-1, 0), 0); got != 0 {
		t.Errorf("before segment start: along = %g", got)
	}
}

func TestEdgeLineString(t *testing.T) {
	g := lineGraph(t)
	ls := g.EdgeLineString(1)
	if ls.NumPoints() != 2 {
		t.Fatalf("points = %d", ls.NumPoints())
	}
	if ls.Point(0) != geom.Pt(0.01, 0) || ls.Point(1) != geom.Pt(0.02, 0) {
		t.Errorf("linestring = %v", ls)
	}
}
