// Package roadnet provides the road-network substrate that ST4ML's
// map-matching conversion and the road-flow case study (§6) run on: a
// directed road graph with spatially indexed segments, Dijkstra shortest
// paths, and a synthetic city generator standing in for the proprietary
// Hangzhou network (see DESIGN.md substitutions).
package roadnet

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"st4ml/internal/geom"
	"st4ml/internal/index"
)

// NodeID identifies a graph node (intersection).
type NodeID int32

// EdgeID identifies a directed road segment.
type EdgeID int32

// NoEdge marks an absent segment reference.
const NoEdge EdgeID = -1

// Node is a road intersection.
type Node struct {
	ID  NodeID
	Loc geom.Point
}

// Edge is a directed straight road segment between two nodes.
type Edge struct {
	ID      EdgeID
	From    NodeID
	To      NodeID
	LengthM float64
}

// Graph is an immutable directed road network. All query methods are safe
// for concurrent use.
type Graph struct {
	nodes   []Node
	edges   []Edge
	out     [][]EdgeID
	segTree *index.RTree[EdgeID]
	extent  geom.MBR
}

// NewGraph builds a graph from nodes (whose IDs must equal their slice
// positions) and edges (likewise). Edge lengths are computed from node
// locations with haversine.
func NewGraph(nodes []Node, edges []Edge) (*Graph, error) {
	for i, n := range nodes {
		if int(n.ID) != i {
			return nil, fmt.Errorf("roadnet: node %d has ID %d", i, n.ID)
		}
	}
	out := make([][]EdgeID, len(nodes))
	items := make([]index.Item[EdgeID], len(edges))
	extent := geom.EmptyMBR()
	for i := range edges {
		e := &edges[i]
		if int(e.ID) != i {
			return nil, fmt.Errorf("roadnet: edge %d has ID %d", i, e.ID)
		}
		if int(e.From) >= len(nodes) || int(e.To) >= len(nodes) || e.From < 0 || e.To < 0 {
			return nil, fmt.Errorf("roadnet: edge %d references missing node", i)
		}
		a, b := nodes[e.From].Loc, nodes[e.To].Loc
		e.LengthM = geom.HaversineMeters(a, b)
		out[e.From] = append(out[e.From], e.ID)
		items[i] = index.Item[EdgeID]{
			Box:  index.Box2(geom.Box(a.X, a.Y, b.X, b.Y)),
			Data: e.ID,
		}
		extent = extent.Union(geom.Box(a.X, a.Y, b.X, b.Y))
	}
	return &Graph{
		nodes:   nodes,
		edges:   edges,
		out:     out,
		segTree: index.BulkLoadSTR(items, 16),
		extent:  extent,
	}, nil
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the directed segment count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge with the given id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Extent returns the spatial bounding box of the network.
func (g *Graph) Extent() geom.MBR { return g.extent }

// EdgeEndpoints returns the segment's endpoint locations.
func (g *Graph) EdgeEndpoints(id EdgeID) (geom.Point, geom.Point) {
	e := g.edges[id]
	return g.nodes[e.From].Loc, g.nodes[e.To].Loc
}

// EdgeLineString returns the segment as a polyline (used when segments act
// as spatial-map cells).
func (g *Graph) EdgeLineString(id EdgeID) *geom.LineString {
	a, b := g.EdgeEndpoints(id)
	return geom.NewLineString([]geom.Point{a, b})
}

// EdgesNear returns the segments within radiusM metres of p (by segment
// geometry, via the R-tree with a degree-buffered query box).
func (g *Graph) EdgesNear(p geom.Point, radiusM float64) []EdgeID {
	dLat := geom.MetersToDegreesLat(radiusM)
	dLon := geom.MetersToDegreesLon(radiusM, p.Y)
	q := index.Box2(geom.MBR{
		MinX: p.X - dLon, MinY: p.Y - dLat,
		MaxX: p.X + dLon, MaxY: p.Y + dLat,
	})
	var out []EdgeID
	g.segTree.SearchFunc(q, func(id EdgeID, _ index.Box) bool {
		if g.DistanceToEdgeM(p, id) <= radiusM {
			out = append(out, id)
		}
		return true
	})
	return out
}

// NearestEdge returns the closest segment to p, its projection point, and
// the metre distance. ok is false for an empty graph.
func (g *Graph) NearestEdge(p geom.Point) (id EdgeID, proj geom.Point, distM float64, ok bool) {
	// Expand the search radius until a candidate appears.
	for radius := 100.0; radius <= 1e7; radius *= 4 {
		best := NoEdge
		bestDist := math.Inf(1)
		var bestProj geom.Point
		for _, cand := range g.EdgesNear(p, radius) {
			pr := g.ProjectOnEdge(p, cand)
			d := geom.HaversineMeters(p, pr)
			if d < bestDist {
				best, bestDist, bestProj = cand, d, pr
			}
		}
		if best != NoEdge {
			return best, bestProj, bestDist, true
		}
	}
	return NoEdge, geom.Point{}, 0, false
}

// ProjectOnEdge returns the closest point to p on the segment.
func (g *Graph) ProjectOnEdge(p geom.Point, id EdgeID) geom.Point {
	a, b := g.EdgeEndpoints(id)
	proj, _ := geom.ProjectPointOnSegment(p, a, b)
	return proj
}

// DistanceToEdgeM returns the metre distance from p to the segment.
func (g *Graph) DistanceToEdgeM(p geom.Point, id EdgeID) float64 {
	return geom.HaversineMeters(p, g.ProjectOnEdge(p, id))
}

// AlongEdgeM returns the metre distance from the segment's From endpoint to
// the projection of p onto the segment.
func (g *Graph) AlongEdgeM(p geom.Point, id EdgeID) float64 {
	a, b := g.EdgeEndpoints(id)
	proj, _ := geom.ProjectPointOnSegment(p, a, b)
	return geom.HaversineMeters(a, proj)
}

// ShortestPath runs Dijkstra from node src, stopping once every node in
// targets is settled or distances exceed maxDistM. It returns the settled
// metre distances and predecessor edges for path reconstruction.
func (g *Graph) ShortestPath(src NodeID, targets map[NodeID]bool, maxDistM float64) (dist map[NodeID]float64, prevEdge map[NodeID]EdgeID) {
	dist = map[NodeID]float64{src: 0}
	prevEdge = map[NodeID]EdgeID{}
	settled := map[NodeID]bool{}
	remaining := len(targets)
	if targets[src] {
		remaining--
	}
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 && remaining > 0 {
		cur := heap.Pop(pq).(nodeDist)
		if settled[cur.node] {
			continue
		}
		settled[cur.node] = true
		if targets[cur.node] && cur.node != src {
			remaining--
		}
		if cur.dist > maxDistM {
			break
		}
		for _, eid := range g.out[cur.node] {
			e := g.edges[eid]
			nd := cur.dist + e.LengthM
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				prevEdge[e.To] = eid
				heap.Push(pq, nodeDist{node: e.To, dist: nd})
			}
		}
	}
	return dist, prevEdge
}

// PathEdges reconstructs the edge sequence src→dst from a predecessor map
// returned by ShortestPath. ok is false when dst was not reached.
func (g *Graph) PathEdges(src, dst NodeID, prevEdge map[NodeID]EdgeID) ([]EdgeID, bool) {
	if src == dst {
		return nil, true
	}
	var rev []EdgeID
	cur := dst
	for cur != src {
		eid, ok := prevEdge[cur]
		if !ok {
			return nil, false
		}
		rev = append(rev, eid)
		cur = g.edges[eid].From
		if len(rev) > len(g.edges) {
			return nil, false // cycle guard
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

type nodeDist struct {
	node NodeID
	dist float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// GenerateGrid builds a jittered nx × ny grid city network anchored at
// origin with the given block spacing in metres. Every adjacent node pair
// gets edges in both directions; dropFrac randomly removes that fraction of
// bidirectional street pairs (keeping the network connected is the caller's
// concern at high drop rates; the default generator keeps dropFrac small).
func GenerateGrid(nx, ny int, spacingM float64, origin geom.Point, dropFrac float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	dLat := geom.MetersToDegreesLat(spacingM)
	dLon := geom.MetersToDegreesLon(spacingM, origin.Y)
	nodes := make([]Node, 0, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			jx := (rng.Float64() - 0.5) * 0.2 * dLon
			jy := (rng.Float64() - 0.5) * 0.2 * dLat
			nodes = append(nodes, Node{
				ID:  NodeID(iy*nx + ix),
				Loc: geom.Pt(origin.X+float64(ix)*dLon+jx, origin.Y+float64(iy)*dLat+jy),
			})
		}
	}
	var edges []Edge
	addPair := func(a, b NodeID) {
		if rng.Float64() < dropFrac {
			return
		}
		edges = append(edges,
			Edge{ID: EdgeID(len(edges)), From: a, To: b},
			Edge{ID: EdgeID(len(edges) + 1), From: b, To: a})
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			id := NodeID(iy*nx + ix)
			if ix+1 < nx {
				addPair(id, id+1)
			}
			if iy+1 < ny {
				addPair(id, id+NodeID(nx))
			}
		}
	}
	g, err := NewGraph(nodes, edges)
	if err != nil {
		panic(err) // generator invariants guarantee validity
	}
	return g
}
