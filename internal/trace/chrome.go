package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // microseconds
	Dur  int64          `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes spans as a Chrome trace dump: one complete event per
// span, timestamped relative to the earliest span so the viewer opens at
// t=0. Task spans land on a per-task lane (tid = task index + 1), which
// renders a stage's parallel tasks side by side; everything else shares
// lane 0.
func WriteChrome(w io.Writer, spans []SpanRecord) error {
	events := make([]chromeEvent, 0, len(spans))
	var epoch int64
	for i, s := range spans {
		if ns := s.Start.UnixNano(); i == 0 || ns < epoch {
			epoch = ns
		}
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "st4ml",
			Ph:   "X",
			TS:   (s.Start.UnixNano() - epoch) / 1e3,
			Dur:  s.Duration.Microseconds(),
			PID:  1,
		}
		if task, ok := s.Int("task"); ok {
			ev.TID = task + 1
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs)+1)
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value()
			}
			ev.Args["span"] = int64(s.ID)
		}
		events = append(events, ev)
	}
	b, err := json.Marshal(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
	if err != nil {
		return fmt.Errorf("trace: marshal chrome dump: %w", err)
	}
	_, err = w.Write(b)
	return err
}
