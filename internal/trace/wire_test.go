package trace

import (
	"encoding/json"
	"testing"
)

// TestWireRoundTrip pins that a span dump survives the JSON wire form with
// IDs, topology, timing, and every attribute kind intact.
func TestWireRoundTrip(t *testing.T) {
	tr := New()
	root := tr.StartSpan(0, "subquery", Str("shard", "s0"))
	child := root.Child("partition:load", Int("partition", 7))
	child.End(Int("records", 42), Bool("hit", true), Float("frac", 0.5))
	root.End()

	wire := ToWire(tr.Snapshot())
	b, err := json.Marshal(wire)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []WireSpan
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	recs := FromWire(back)
	if len(recs) != 2 {
		t.Fatalf("got %d spans, want 2", len(recs))
	}
	// Completion order: child first.
	if recs[0].Name != "partition:load" || recs[1].Name != "subquery" {
		t.Fatalf("names: %q, %q", recs[0].Name, recs[1].Name)
	}
	if recs[0].Parent != recs[1].ID {
		t.Fatalf("child parent %d != root id %d", recs[0].Parent, recs[1].ID)
	}
	if v, ok := recs[0].Int("records"); !ok || v != 42 {
		t.Fatalf("records attr: %d, %t", v, ok)
	}
	if !recs[0].BoolAttr("hit") {
		t.Fatal("hit attr lost")
	}
	if s, ok := recs[1].Str("shard"); !ok || s != "s0" {
		t.Fatalf("shard attr: %q", s)
	}
	orig := tr.Snapshot()
	if !recs[0].Start.Equal(orig[0].Start) || recs[0].Duration != orig[0].Duration {
		t.Fatal("timing lost on the wire")
	}
}

// TestGraft pins that a grafted remote dump is renumbered into the local
// tracer's ID space, re-rooted under the RPC span, and keeps its internal
// parent/child structure — so Build sees one stitched tree.
func TestGraft(t *testing.T) {
	remote := New()
	rroot := remote.StartSpan(0, SpanSubquery)
	rchild := rroot.Child(SpanPartitionLoad, Int("blocks_scanned", 3), Int("raw_bytes", 100))
	rchild.End()
	rroot.End()

	local := New()
	rpc := local.StartSpan(0, SpanRPC, Str("shard", "s1"))
	local.Graft(ToWire(remote.Snapshot()), rpc.ID())
	rpc.End()

	spans := local.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	seen := map[SpanID]bool{}
	for _, s := range spans {
		byName[s.Name] = s
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d after graft", s.ID)
		}
		seen[s.ID] = true
	}
	if byName[SpanSubquery].Parent != rpc.ID() {
		t.Fatalf("remote root parented under %d, want rpc %d", byName[SpanSubquery].Parent, rpc.ID())
	}
	if byName[SpanPartitionLoad].Parent != byName[SpanSubquery].ID {
		t.Fatal("remote child lost its parent on graft")
	}
	// The stitched dump aggregates: remote partition:load counters land in
	// the local explain.
	e := Build(spans)
	if e.BlocksScanned != 3 || e.BytesDecompressed != 100 || e.PartitionLoads != 1 {
		t.Fatalf("stitched explain: %+v", e)
	}
	if e.Scatter == nil || len(e.Scatter.RPCs) != 1 || e.Scatter.RPCs[0].Shard != "s1" {
		t.Fatalf("scatter explain: %+v", e.Scatter)
	}
}

// TestGraftNil pins the no-op paths: nil tracer and empty dumps.
func TestGraftNil(t *testing.T) {
	var tr *Tracer
	tr.Graft([]WireSpan{{ID: 1, Name: "x"}}, 0)
	if ToWire(nil) != nil || FromWire(nil) != nil {
		t.Fatal("empty conversions must stay nil")
	}
	live := New()
	live.Graft(nil, 0)
	if live.Len() != 0 {
		t.Fatal("grafting nothing recorded spans")
	}
}
