package trace

import (
	"fmt"
	"io"
	"sort"
)

// Span names and attribute keys shared by the instrumented layers. Explain
// aggregation keys off these, so they are constants rather than ad-hoc
// strings at each call site.
const (
	// SpanStage is one engine stage; prefix + stage name.
	SpanStagePrefix = "stage:"
	// SpanTask is one task attempt within a stage.
	SpanTask = "task"
	// SpanShuffleWrite / SpanShuffleRead are the two sides of one shuffle.
	SpanShuffleWrite = "shuffle:write"
	SpanShuffleRead  = "shuffle:read"
	// SpanSelect is one selection (prune + load + filter) over a dataset.
	SpanSelect = "select"
	// SpanPartitionRead is one storage partition decoded from disk.
	SpanPartitionRead = "partition:read"
	// SpanPartitionFetch is one partition consulted through the serving
	// cache; SpanPartitionLoad is the subset that missed and hit the disk.
	SpanPartitionFetch = "partition:fetch"
	SpanPartitionLoad  = "partition:load"
	// SpanResultLookup is the serving tier's result-cache probe.
	SpanResultLookup = "result:lookup"
	// SpanAdmission is the serving tier's admission wait.
	SpanAdmission = "admission:wait"
	// SpanRTreeBuild is one R-tree bulk load (selection filter index,
	// pinned partition index, or conversion structure index).
	SpanRTreeBuild = "rtree:build"
	// SpanDeltaRead marks a partition read that unioned delta files into
	// the base (merge-on-read): attrs carry how many delta files were read
	// versus pruned by manifest bounds and the records they contributed.
	SpanDeltaRead = "delta:read"
	// SpanCompact is one partition rewrite by the background compactor.
	SpanCompact = "compact:partition"
	// SpanScatter is a cluster router's planning+fan-out phase: attrs carry
	// the partition-prune outcome (the router plans from the same metadata
	// a single node would) plus the scatter width in shards.
	SpanScatter = "scatter"
	// SpanRPC is one shard sub-query RPC issued by the router, hedged
	// replica attempts included; the shard's own span dump is grafted
	// under it, stitching the cross-process tree.
	SpanRPC = "rpc:shard"
	// SpanSubquery is the shard-side root of one /subquery execution.
	SpanSubquery = "subquery"
	// SpanSubscribeMatch is one committed delta batch routed through the
	// subscription window index; its subscribe:push children are the
	// matched updates enqueued to (or dropped by) subscriber queues.
	SpanSubscribeMatch = "subscribe:match"
	SpanSubscribePush  = "subscribe:push"
	// SpanApprox is one approximate (summary-tier) aggregate evaluation;
	// attrs carry the aggregate plus the summary/scan totals. Its
	// approx:partition children record per-partition provenance — whether
	// each partition was answered from its sidecar, a mix of sidecar and
	// exact scans, or a transparent exact fallback.
	SpanApprox     = "approx"
	SpanApproxPart = "approx:partition"
	// SpanPointPatHalo is one partition halo exchange of a point-pattern
	// statistic: attrs carry the rim points duplicated to neighbor
	// partitions and their encoded byte volume. SpanPointPatPairs is the
	// neighborhood pair-counting stage that follows: attrs carry candidate
	// pairs tested and (pair, grid-cell) matches recorded.
	SpanPointPatHalo  = "pointpat:halo"
	SpanPointPatPairs = "pointpat:paircount"
)

// StageExplain is the per-stage line of an explain report.
type StageExplain struct {
	Name        string  `json:"name"`
	Tasks       int64   `json:"tasks"`
	Records     int64   `json:"records"`
	Retries     int64   `json:"retries"`
	Speculative int64   `json:"speculative"`
	WallMS      float64 `json:"wall_ms"`
}

// Explain is the aggregated execution report of one traced query: where the
// partitions, records, bytes, and task attempts went. It is derived purely
// from a span dump (Build), so anything that produces spans — stquery, the
// serving daemon, an ingest — explains the same way.
type Explain struct {
	TotalPartitions  int64 `json:"total_partitions"`
	ReadPartitions   int64 `json:"read_partitions"`
	PrunedPartitions int64 `json:"pruned_partitions"`
	PartitionBytes   int64 `json:"partition_bytes"`
	RecordsLoaded    int64 `json:"records_loaded"`
	RecordsSelected  int64 `json:"records_selected"`

	// Block-granularity read accounting (storage format v2): within the
	// partitions that were read, how many blocks were decoded versus
	// skipped via footer bounds, and the decompressed payload volume.
	// Aggregated from partition:read (selection) and partition:load
	// (serving cache miss) spans; zero on v1 datasets.
	BlocksScanned     int64 `json:"blocks_scanned"`
	BlocksPruned      int64 `json:"blocks_pruned"`
	BytesDecompressed int64 `json:"bytes_decompressed"`
	// RecordsPruned counts records the v3 columnar predicate dropped on
	// decoded lon/lat/t columns before materialization; zero on v1/v2.
	RecordsPruned int64 `json:"records_pruned"`

	// Delta-layer accounting: delta files unioned into partition reads
	// (merge-on-read), delta files skipped via manifest bounds, the records
	// they contributed, and compactor partition rewrites that ran under
	// this trace. All zero on datasets without a delta layer.
	DeltaFilesRead   int64 `json:"delta_files_read"`
	DeltaFilesPruned int64 `json:"delta_files_pruned"`
	DeltaRecords     int64 `json:"delta_records"`
	Compactions      int64 `json:"compactions"`

	// Standing-query accounting: delta batches matched against the
	// subscription window index under this trace, updates pushed to
	// subscriber queues, and the records those updates carried. All zero
	// outside the online push path.
	SubscribeMatches int64 `json:"subscribe_matches"`
	SubscribePushes  int64 `json:"subscribe_pushes"`
	SubscribeRecords int64 `json:"subscribe_records"`

	ShuffleRecords int64 `json:"shuffle_records"`
	ShuffleBytes   int64 `json:"shuffle_bytes"`

	TasksRun    int64 `json:"tasks_run"`
	TaskRetries int64 `json:"task_retries"`
	Speculative int64 `json:"speculative_attempts"`
	RTreeBuilds int64 `json:"rtree_builds"`

	// Serving-tier dispositions; empty/zero outside the daemon.
	ResultCache     string  `json:"result_cache,omitempty"`
	PartitionHits   int64   `json:"partition_cache_hits"`
	PartitionLoads  int64   `json:"partition_cache_loads"`
	AdmissionWaitMS float64 `json:"admission_wait_ms"`

	// Approx is the approximate-tier report: totals plus per-partition
	// estimated-vs-exact provenance; nil outside an approx=true query. On a
	// routed query the shard spans are grafted into the same dump, so the
	// totals aggregate what every shard consumed and the parts concatenate
	// across shards.
	Approx *ApproxExplain `json:"approx,omitempty"`

	// PointPat is the point-pattern analytics report: halo-exchange and
	// pair-counting totals; nil outside a pointpat evaluation.
	PointPat *PointPatExplain `json:"pointpat,omitempty"`

	// Scatter is the cluster router's fan-out report; nil outside a routed
	// query. The shard spans it summarizes are grafted into the same dump,
	// so the block/partition/record counters above already include the
	// work the shards did.
	Scatter *ScatterExplain `json:"scatter,omitempty"`

	Stages []StageExplain `json:"stages"`
	WallMS float64        `json:"wall_ms"`
	Spans  int            `json:"spans"`
}

// ApproxExplain is the approximate-tier section of an explain report.
type ApproxExplain struct {
	Agg string `json:"agg,omitempty"`
	// SummaryBlocks counts block summaries consumed; ScannedBlocks and
	// ScannedRecords count the exact reads done alongside (boundary
	// blocks, delta files, fallback scans).
	SummaryBlocks  int64 `json:"summary_blocks"`
	ScannedBlocks  int64 `json:"scanned_blocks"`
	ScannedRecords int64 `json:"scanned_records"`
	// Fallback marks at least one partition answered by a transparent
	// exact scan because it had no usable sidecar.
	Fallback bool `json:"fallback,omitempty"`
	// Parts is the per-partition provenance, one line per partition walked.
	Parts []ApproxPartExplain `json:"parts,omitempty"`
}

// ApproxPartExplain is one partition's estimated-vs-exact provenance line.
type ApproxPartExplain struct {
	ID             int64  `json:"id"`
	Source         string `json:"source"`
	SummaryBlocks  int64  `json:"summary_blocks"`
	ScannedBlocks  int64  `json:"scanned_blocks"`
	ScannedRecords int64  `json:"scanned_records"`
}

// PointPatExplain is the point-pattern section of an explain report: what
// the boundary-correcting halo exchange shipped and what the neighborhood
// counters did with it.
type PointPatExplain struct {
	// Stat names the statistic ("k" or "getis").
	Stat string `json:"stat,omitempty"`
	// HaloPoints and HaloBytes count rim points duplicated to neighbor
	// partitions and their encoded volume across the exchange.
	HaloPoints int64 `json:"halo_points"`
	HaloBytes  int64 `json:"halo_bytes"`
	// PairsTested counts candidate pairs whose distance predicate ran;
	// PairsCounted counts the (pair, grid-cell) matches recorded.
	PairsTested  int64 `json:"pairs_tested"`
	PairsCounted int64 `json:"pairs_counted"`
}

// ScatterExplain summarizes a routed query's fan-out: how many shards the
// scatter set touched (of how many in the map), hedged and failed-over
// replica attempts, generation-conflict replans, and one line per shard
// RPC.
type ScatterExplain struct {
	Shards    int64        `json:"shards"`
	Width     int64        `json:"width"`
	Hedges    int64        `json:"hedges"`
	Failovers int64        `json:"failovers"`
	Replans   int64        `json:"replans"`
	RPCs      []RPCExplain `json:"rpcs,omitempty"`
}

// RPCExplain is one shard sub-query line of a routed explain.
type RPCExplain struct {
	Shard      string  `json:"shard"`
	Replica    string  `json:"replica,omitempty"`
	Partitions int64   `json:"partitions"`
	Attempts   int64   `json:"attempts"`
	Selected   int64   `json:"selected"`
	WallMS     float64 `json:"wall_ms"`
}

// Build aggregates a span dump into an explain report. It tolerates partial
// dumps (missing span kinds simply leave their fields zero).
func Build(spans []SpanRecord) *Explain {
	if spans == nil {
		return nil
	}
	e := &Explain{Spans: len(spans)}
	// Stage spans indexed by ID so task children can attribute retries.
	stageOf := map[SpanID]int{}
	var fetches int64
	for _, s := range spans {
		switch {
		case len(s.Name) > len(SpanStagePrefix) && s.Name[:len(SpanStagePrefix)] == SpanStagePrefix:
			st := StageExplain{
				Name:   s.Name[len(SpanStagePrefix):],
				WallMS: float64(s.Duration.Microseconds()) / 1000,
			}
			st.Tasks, _ = s.Int("tasks")
			st.Records, _ = s.Int("records")
			stageOf[s.ID] = len(e.Stages)
			e.Stages = append(e.Stages, st)
		case s.Name == SpanSelect:
			total, _ := s.Int("total_partitions")
			kept, _ := s.Int("kept_partitions")
			e.TotalPartitions += total
			e.ReadPartitions += kept
			e.PrunedPartitions += total - kept
			if v, ok := s.Int("loaded_records"); ok {
				e.RecordsLoaded += v
			}
			if v, ok := s.Int("loaded_bytes"); ok {
				e.PartitionBytes += v
			}
			if v, ok := s.Int("selected"); ok {
				e.RecordsSelected += v
			}
		case s.Name == SpanShuffleWrite:
			if v, ok := s.Int("bytes"); ok {
				e.ShuffleBytes += v
			}
			if v, ok := s.Int("records"); ok {
				e.ShuffleRecords += v
			}
		case s.Name == SpanPartitionRead:
			e.addBlockAttrs(s)
		case s.Name == SpanPartitionFetch:
			fetches++
		case s.Name == SpanPartitionLoad:
			e.PartitionLoads++
			e.addBlockAttrs(s)
		case s.Name == SpanResultLookup:
			if s.BoolAttr("hit") {
				e.ResultCache = "hit"
			} else {
				e.ResultCache = "miss"
			}
		case s.Name == SpanAdmission:
			e.AdmissionWaitMS += float64(s.Duration.Microseconds()) / 1000
		case s.Name == SpanRTreeBuild:
			e.RTreeBuilds++
		case s.Name == SpanDeltaRead:
			if v, ok := s.Int("files"); ok {
				e.DeltaFilesRead += v
			}
			if v, ok := s.Int("pruned"); ok {
				e.DeltaFilesPruned += v
			}
			if v, ok := s.Int("records"); ok {
				e.DeltaRecords += v
			}
		case s.Name == SpanCompact:
			e.Compactions++
		case s.Name == SpanSubscribeMatch:
			e.SubscribeMatches++
		case s.Name == SpanSubscribePush:
			e.SubscribePushes++
			if v, ok := s.Int("records"); ok {
				e.SubscribeRecords += v
			}
		case s.Name == SpanApprox:
			if e.Approx == nil {
				e.Approx = &ApproxExplain{}
			}
			if v, ok := s.Str("agg"); ok {
				e.Approx.Agg = v
			}
			if v, ok := s.Int("summary_blocks"); ok {
				e.Approx.SummaryBlocks += v
			}
			if v, ok := s.Int("scanned_blocks"); ok {
				e.Approx.ScannedBlocks += v
			}
			if v, ok := s.Int("scanned_records"); ok {
				e.Approx.ScannedRecords += v
			}
			if s.BoolAttr("fallback") {
				e.Approx.Fallback = true
			}
		case s.Name == SpanApproxPart:
			if e.Approx == nil {
				e.Approx = &ApproxExplain{}
			}
			p := ApproxPartExplain{}
			p.ID, _ = s.Int("partition")
			p.Source, _ = s.Str("source")
			p.SummaryBlocks, _ = s.Int("summary_blocks")
			p.ScannedBlocks, _ = s.Int("scanned_blocks")
			p.ScannedRecords, _ = s.Int("scanned_records")
			e.Approx.Parts = append(e.Approx.Parts, p)
		case s.Name == SpanPointPatHalo:
			if e.PointPat == nil {
				e.PointPat = &PointPatExplain{}
			}
			if v, ok := s.Str("stat"); ok {
				e.PointPat.Stat = v
			}
			if v, ok := s.Int("halo_points"); ok {
				e.PointPat.HaloPoints += v
			}
			if v, ok := s.Int("halo_bytes"); ok {
				e.PointPat.HaloBytes += v
			}
		case s.Name == SpanPointPatPairs:
			if e.PointPat == nil {
				e.PointPat = &PointPatExplain{}
			}
			if v, ok := s.Str("stat"); ok {
				e.PointPat.Stat = v
			}
			if v, ok := s.Int("pairs_tested"); ok {
				e.PointPat.PairsTested += v
			}
			if v, ok := s.Int("pairs_counted"); ok {
				e.PointPat.PairsCounted += v
			}
		case s.Name == SpanScatter:
			// The router plans from the same metadata a single node would,
			// so its scatter span carries the partition-prune outcome; the
			// shards' grafted sub-query spans carry only what they selected
			// and read, keeping every counter single-counted.
			total, _ := s.Int("total_partitions")
			kept, _ := s.Int("kept_partitions")
			e.TotalPartitions += total
			e.ReadPartitions += kept
			e.PrunedPartitions += total - kept
			if v, ok := s.Int("loaded_records"); ok {
				e.RecordsLoaded += v
			}
			if v, ok := s.Int("loaded_bytes"); ok {
				e.PartitionBytes += v
			}
			if e.Scatter == nil {
				e.Scatter = &ScatterExplain{}
			}
			if v, ok := s.Int("shards"); ok {
				e.Scatter.Shards = v
			}
			if v, ok := s.Int("width"); ok {
				e.Scatter.Width += v
			}
			if v, ok := s.Int("replans"); ok {
				e.Scatter.Replans += v
			}
		case s.Name == SpanRPC:
			if e.Scatter == nil {
				e.Scatter = &ScatterExplain{}
			}
			rpc := RPCExplain{WallMS: float64(s.Duration.Microseconds()) / 1000}
			rpc.Shard, _ = s.Str("shard")
			rpc.Replica, _ = s.Str("replica")
			rpc.Partitions, _ = s.Int("partitions")
			rpc.Attempts, _ = s.Int("attempts")
			rpc.Selected, _ = s.Int("selected")
			if v, ok := s.Int("hedges"); ok {
				e.Scatter.Hedges += v
			}
			if v, ok := s.Int("failovers"); ok {
				e.Scatter.Failovers += v
			}
			e.Scatter.RPCs = append(e.Scatter.RPCs, rpc)
		}
		if s.Parent == 0 {
			if ms := float64(s.Duration.Microseconds()) / 1000; ms > e.WallMS {
				e.WallMS = ms
			}
		}
	}
	e.PartitionHits = fetches - e.PartitionLoads
	// Task spans: committed attempts count as runs, attempt>0 as retries.
	for _, s := range spans {
		if s.Name != SpanTask {
			continue
		}
		attempt, _ := s.Int("attempt")
		committed := s.BoolAttr("committed")
		speculative := s.BoolAttr("speculative")
		if committed {
			e.TasksRun++
		}
		if attempt > 0 {
			e.TaskRetries++
		}
		if speculative {
			e.Speculative++
		}
		if idx, ok := stageOf[s.Parent]; ok {
			if attempt > 0 {
				e.Stages[idx].Retries++
			}
			if speculative {
				e.Stages[idx].Speculative++
			}
		}
	}
	return e
}

// addBlockAttrs folds one disk-read span's block counters into the report.
func (e *Explain) addBlockAttrs(s SpanRecord) {
	if v, ok := s.Int("blocks_scanned"); ok {
		e.BlocksScanned += v
	}
	if v, ok := s.Int("blocks_pruned"); ok {
		e.BlocksPruned += v
	}
	if v, ok := s.Int("raw_bytes"); ok {
		e.BytesDecompressed += v
	}
	if v, ok := s.Int("records_pruned"); ok {
		e.RecordsPruned += v
	}
}

// Fprint renders the report as the human-readable text stquery -explain
// prints.
func (e *Explain) Fprint(w io.Writer) {
	if e == nil {
		return
	}
	fmt.Fprintf(w, "== query explain ==\n")
	fmt.Fprintf(w, "wall: %.3f ms (%d spans)\n", e.WallMS, e.Spans)
	fmt.Fprintf(w, "partitions: %d read, %d pruned (of %d); %d bytes read\n",
		e.ReadPartitions, e.PrunedPartitions, e.TotalPartitions, e.PartitionBytes)
	fmt.Fprintf(w, "blocks: %d scanned, %d pruned; %d bytes decompressed\n",
		e.BlocksScanned, e.BlocksPruned, e.BytesDecompressed)
	if e.RecordsPruned > 0 {
		fmt.Fprintf(w, "columnar: %d records pruned before materialization\n", e.RecordsPruned)
	}
	if e.DeltaFilesRead > 0 || e.DeltaFilesPruned > 0 || e.Compactions > 0 {
		fmt.Fprintf(w, "deltas: %d files read, %d pruned; %d records; %d compactions\n",
			e.DeltaFilesRead, e.DeltaFilesPruned, e.DeltaRecords, e.Compactions)
	}
	if e.SubscribeMatches > 0 || e.SubscribePushes > 0 {
		fmt.Fprintf(w, "subscribe: %d batches matched, %d updates pushed (%d records)\n",
			e.SubscribeMatches, e.SubscribePushes, e.SubscribeRecords)
	}
	fmt.Fprintf(w, "records: %d loaded, %d selected\n", e.RecordsLoaded, e.RecordsSelected)
	fmt.Fprintf(w, "shuffle: %d records, %d bytes\n", e.ShuffleRecords, e.ShuffleBytes)
	fmt.Fprintf(w, "tasks: %d run, %d retried, %d speculative; %d r-tree builds\n",
		e.TasksRun, e.TaskRetries, e.Speculative, e.RTreeBuilds)
	if e.ResultCache != "" {
		fmt.Fprintf(w, "serving: result cache %s; partitions %d cached, %d loaded; admission wait %.3f ms\n",
			e.ResultCache, e.PartitionHits, e.PartitionLoads, e.AdmissionWaitMS)
	}
	if e.Approx != nil {
		fmt.Fprintf(w, "approx: agg=%s; %d summary blocks, %d blocks scanned, %d records scanned",
			e.Approx.Agg, e.Approx.SummaryBlocks, e.Approx.ScannedBlocks, e.Approx.ScannedRecords)
		if e.Approx.Fallback {
			fmt.Fprintf(w, "; exact fallback")
		}
		fmt.Fprintf(w, "\n")
		for _, p := range e.Approx.Parts {
			fmt.Fprintf(w, "  partition %d: %s (%d summary blocks, %d scanned, %d records)\n",
				p.ID, p.Source, p.SummaryBlocks, p.ScannedBlocks, p.ScannedRecords)
		}
	}
	if e.PointPat != nil {
		fmt.Fprintf(w, "pointpat: stat=%s; halo %d points (%d bytes); %d pairs tested, %d counted\n",
			e.PointPat.Stat, e.PointPat.HaloPoints, e.PointPat.HaloBytes,
			e.PointPat.PairsTested, e.PointPat.PairsCounted)
	}
	if e.Scatter != nil {
		fmt.Fprintf(w, "scatter: %d/%d shards; %d hedged, %d failovers, %d replans\n",
			e.Scatter.Width, e.Scatter.Shards, e.Scatter.Hedges, e.Scatter.Failovers, e.Scatter.Replans)
		for _, r := range e.Scatter.RPCs {
			fmt.Fprintf(w, "  shard %s → %s: %d partitions, %d attempts, %d selected, %.3f ms\n",
				r.Shard, r.Replica, r.Partitions, r.Attempts, r.Selected, r.WallMS)
		}
	}
	if len(e.Stages) == 0 {
		return
	}
	width := len("stage")
	for _, st := range e.Stages {
		if len(st.Name) > width {
			width = len(st.Name)
		}
	}
	fmt.Fprintf(w, "%-*s  %6s  %9s  %7s  %5s  %9s\n",
		width, "stage", "tasks", "records", "retries", "spec", "wall_ms")
	for _, st := range e.Stages {
		fmt.Fprintf(w, "%-*s  %6d  %9d  %7d  %5d  %9.3f\n",
			width, st.Name, st.Tasks, st.Records, st.Retries, st.Speculative, st.WallMS)
	}
}

// StageByName returns the first stage entry with the given name.
func (e *Explain) StageByName(name string) (StageExplain, bool) {
	for _, st := range e.Stages {
		if st.Name == name {
			return st, true
		}
	}
	return StageExplain{}, false
}

// SortSpans orders a span dump by start time (stable on IDs) — handy for
// tests and deterministic rendering.
func SortSpans(spans []SpanRecord) {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start.Equal(spans[j].Start) {
			return spans[i].ID < spans[j].ID
		}
		return spans[i].Start.Before(spans[j].Start)
	})
}
