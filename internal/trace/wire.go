package trace

import "time"

// This file is the cross-process span transport: a shard executing a
// sub-query records spans on its own Tracer, ships them back inside the
// RPC response as WireSpans, and the router grafts them under its RPC span
// so the stitched tree explains the whole scatter — router, shards, and
// each shard's partition reads — as one query.

// WireAttr is the JSON-transportable form of an Attr.
type WireAttr struct {
	Key string `json:"k"`
	// Kind discriminates the payload: 0 int, 1 string, 2 bool, 3 float —
	// the attrKind values.
	Kind uint8   `json:"t"`
	Num  int64   `json:"n,omitempty"`
	F    float64 `json:"f,omitempty"`
	Str  string  `json:"s,omitempty"`
}

// WireSpan is the JSON-transportable form of a SpanRecord. IDs are only
// meaningful within one dump; Graft renumbers them into the receiving
// tracer's ID space.
type WireSpan struct {
	ID      uint64     `json:"id"`
	Parent  uint64     `json:"parent"`
	Name    string     `json:"name"`
	StartNS int64      `json:"start_ns"`
	DurNS   int64      `json:"dur_ns"`
	Attrs   []WireAttr `json:"attrs,omitempty"`
}

// ToWire converts a span dump to its transportable form.
func ToWire(spans []SpanRecord) []WireSpan {
	if len(spans) == 0 {
		return nil
	}
	out := make([]WireSpan, len(spans))
	for i, s := range spans {
		w := WireSpan{
			ID:      uint64(s.ID),
			Parent:  uint64(s.Parent),
			Name:    s.Name,
			StartNS: s.Start.UnixNano(),
			DurNS:   int64(s.Duration),
		}
		if len(s.Attrs) > 0 {
			w.Attrs = make([]WireAttr, len(s.Attrs))
			for j, a := range s.Attrs {
				w.Attrs[j] = WireAttr{Key: a.Key, Kind: uint8(a.kind), Num: a.num, F: a.f, Str: a.str}
			}
		}
		out[i] = w
	}
	return out
}

// FromWire converts transported spans back to records (IDs as shipped).
func FromWire(spans []WireSpan) []SpanRecord {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanRecord, len(spans))
	for i, w := range spans {
		r := SpanRecord{
			ID:       SpanID(w.ID),
			Parent:   SpanID(w.Parent),
			Name:     w.Name,
			Start:    time.Unix(0, w.StartNS),
			Duration: time.Duration(w.DurNS),
		}
		if len(w.Attrs) > 0 {
			r.Attrs = make([]Attr, len(w.Attrs))
			for j, a := range w.Attrs {
				r.Attrs[j] = Attr{Key: a.Key, kind: attrKind(a.Kind), num: a.Num, f: a.F, str: a.Str}
			}
		}
		out[i] = r
	}
	return out
}

// Graft records a remote span dump on t, renumbered into t's ID space and
// re-rooted: spans whose parent is 0 or absent from the dump are parented
// under "under" (the RPC span that carried them). The remote tree's
// internal structure is preserved, so an aggregated Build — or a Chrome
// dump — over the grafted tracer sees one stitched query tree spanning the
// process boundary. A nil tracer drops the dump, matching the no-op span
// path.
func (t *Tracer) Graft(spans []WireSpan, under SpanID) {
	if t == nil || len(spans) == 0 {
		return
	}
	ids := make(map[uint64]SpanID, len(spans))
	for _, w := range spans {
		ids[w.ID] = SpanID(t.nextID.Add(1))
	}
	for _, r := range FromWire(spans) {
		parent, ok := ids[uint64(r.Parent)]
		if !ok || r.Parent == 0 {
			parent = under
		}
		r.ID = ids[uint64(r.ID)]
		r.Parent = parent
		t.record(r)
	}
}
