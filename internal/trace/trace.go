// Package trace is the repository's span-based tracing substrate: a
// lightweight, allocation-conscious recorder of what one query (or one
// ingest, or one benchmark run) actually did — which stages ran, which
// partitions were read or pruned, how many bytes crossed the shuffle, which
// task attempts retried or speculated, and where the serving tier's caches
// hit or missed.
//
// The design follows the WarpFlow observation that per-query execution
// visibility must be cheap enough to leave on: a Span is a small handle,
// attributes are typed values (no fmt, no interface boxing of strings and
// ints beyond the Attr struct), and the disabled path — a nil *Tracer, the
// default everywhere — performs zero heap allocations, so code can be
// instrumented unconditionally.
//
// Spans form a tree through parent IDs. Completed spans are appended to the
// owning Tracer and can be exported as a Chrome-compatible trace dump
// (WriteChrome) or aggregated into a per-query explain report (Build).
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one Tracer. 0 is "no span" (a root).
type SpanID uint64

// attrKind discriminates the typed payload of an Attr.
type attrKind uint8

const (
	kindInt attrKind = iota
	kindStr
	kindBool
	kindFloat
)

// Attr is one typed key/value attribute on a span.
type Attr struct {
	Key  string
	kind attrKind
	num  int64
	f    float64
	str  string
}

// Int makes an int64 attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, num: v} }

// Str makes a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: kindStr, str: v} }

// Bool makes a boolean attribute.
func Bool(key string, v bool) Attr {
	var n int64
	if v {
		n = 1
	}
	return Attr{Key: key, kind: kindBool, num: n}
}

// Float makes a float64 attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, f: v} }

// Value returns the attribute's payload as an any (for export layers).
func (a Attr) Value() any {
	switch a.kind {
	case kindStr:
		return a.str
	case kindBool:
		return a.num != 0
	case kindFloat:
		return a.f
	default:
		return a.num
	}
}

// SpanRecord is one completed span as stored by the Tracer.
type SpanRecord struct {
	ID       SpanID
	Parent   SpanID
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Int returns the int64 (or bool-as-int) attribute named key.
func (r SpanRecord) Int(key string) (int64, bool) {
	for _, a := range r.Attrs {
		if a.Key == key && (a.kind == kindInt || a.kind == kindBool) {
			return a.num, true
		}
	}
	return 0, false
}

// Str returns the string attribute named key.
func (r SpanRecord) Str(key string) (string, bool) {
	for _, a := range r.Attrs {
		if a.Key == key && a.kind == kindStr {
			return a.str, true
		}
	}
	return "", false
}

// BoolAttr returns the boolean attribute named key (false when absent).
func (r SpanRecord) BoolAttr(key string) bool {
	v, ok := r.Int(key)
	return ok && v != 0
}

// End returns the span's completion instant.
func (r SpanRecord) End() time.Time { return r.Start.Add(r.Duration) }

// maxSpans bounds the retained span history, so a tracer accidentally left
// attached to a long-lived daemon context cannot grow without limit. Spans
// beyond the cap are counted in Dropped instead of stored.
const maxSpans = 1 << 20

// Tracer collects completed spans. It is safe for concurrent use. The nil
// *Tracer is a valid no-op tracer: StartSpan returns a nil *Span and
// nothing allocates.
type Tracer struct {
	nextID  atomic.Uint64
	mu      sync.Mutex
	spans   []SpanRecord
	dropped int64
}

// New builds an empty Tracer.
func New() *Tracer { return &Tracer{} }

// StartSpan begins a span under parent (0 for a root span). The returned
// handle must be completed with End for the span to be recorded. On a nil
// Tracer it returns nil, which every Span method accepts.
func (t *Tracer) StartSpan(parent SpanID, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tr:     t,
		id:     SpanID(t.nextID.Add(1)),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	if len(attrs) > 0 {
		// Copy: the variadic backing array must not escape the caller.
		s.attrs = append(make([]Attr, 0, len(attrs)+2), attrs...)
	}
	return s
}

// Snapshot returns a copy of the completed spans in completion order.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of completed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were discarded over the retention cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards every recorded span (IDs keep increasing).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.dropped = 0
	t.mu.Unlock()
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, r)
	}
	t.mu.Unlock()
}

// Span is an in-progress span handle. A nil *Span (from a nil Tracer) is a
// no-op: every method returns immediately without allocating. A Span is not
// safe for concurrent mutation; concurrent children are fine.
type Span struct {
	tr     *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
}

// ID returns the span's ID, or 0 for a nil span — so children of a no-op
// span become roots of a no-op tracer and nothing breaks.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Tracer returns the owning tracer (nil for a no-op span) — the hook a
// cluster router uses to Graft a shard's span dump under its RPC span.
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// Set appends attributes to the span.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// Child starts a sub-span of s on the same tracer.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartSpan(s.id, name, attrs...)
}

// End completes the span, appending any final attributes, and records it on
// the tracer. End must be called at most once.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.attrs = append(s.attrs, attrs...)
	s.tr.record(SpanRecord{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: d,
		Attrs:    s.attrs,
	})
}
