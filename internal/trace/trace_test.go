package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := New()
	root := tr.StartSpan(0, "query", Str("dataset", "nyc"))
	child := root.Child("stage:load", Int("tasks", 4))
	grand := child.Child(SpanTask, Int("task", 0), Int("attempt", 0))
	grand.End(Bool("committed", true), Int("records", 10))
	child.End(Int("records", 10))
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["stage:load"].Parent != byName["query"].ID {
		t.Errorf("stage parent = %d, want %d", byName["stage:load"].Parent, byName["query"].ID)
	}
	if byName[SpanTask].Parent != byName["stage:load"].ID {
		t.Errorf("task parent = %d, want %d", byName[SpanTask].Parent, byName["stage:load"].ID)
	}
	if !byName[SpanTask].BoolAttr("committed") {
		t.Error("task committed attr lost")
	}
	if v, ok := byName["stage:load"].Int("records"); !ok || v != 10 {
		t.Errorf("stage records = %d,%v", v, ok)
	}
	if ds, ok := byName["query"].Str("dataset"); !ok || ds != "nyc" {
		t.Errorf("dataset attr = %q,%v", ds, ok)
	}
	// Children complete within the parent's interval.
	q, st := byName["query"], byName["stage:load"]
	if st.Start.Before(q.Start) || st.End().After(q.End()) {
		t.Errorf("child [%v,%v] outside parent [%v,%v]", st.Start, st.End(), q.Start, q.End())
	}
}

// TestNoopZeroAlloc is the acceptance gate for "tracing disabled costs
// nothing measurable": the whole span API on a nil tracer must not allocate.
func TestNoopZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan(0, "stage:x", Int("tasks", 8), Str("mode", "pruned"))
		child := sp.Child(SpanTask, Int("task", 3), Int("attempt", 0), Bool("speculative", false))
		child.Set(Int("records", 100))
		child.End(Bool("committed", true))
		sp.End(Int("records", 100))
		_ = sp.ID()
	})
	if allocs != 0 {
		t.Fatalf("no-op span path allocated %.1f times per op, want 0", allocs)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil tracer snapshot = %v", got)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer has nonzero counters")
	}
	tr.Reset() // must not panic
	var sp *Span
	if sp.ID() != 0 {
		t.Error("nil span has nonzero ID")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New()
	root := tr.StartSpan(0, "job")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				sp := root.Child(SpanTask, Int("task", int64(g*50+i)))
				sp.End(Bool("committed", true))
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	root.End()
	if n := tr.Len(); n != 8*50+1 {
		t.Fatalf("got %d spans, want %d", n, 8*50+1)
	}
	seen := map[SpanID]bool{}
	for _, s := range tr.Snapshot() {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New()
	root := tr.StartSpan(0, "query")
	sp := root.Child(SpanTask, Int("task", 2), Int("records", 7))
	time.Sleep(time.Millisecond)
	sp.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("chrome dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(dump.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(dump.TraceEvents))
	}
	for _, ev := range dump.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.TS < 0 {
			t.Errorf("event %q ts = %d, want >= 0", ev.Name, ev.TS)
		}
	}
	var taskEv bool
	for _, ev := range dump.TraceEvents {
		if ev.Name == SpanTask {
			taskEv = true
			if ev.TID != 3 {
				t.Errorf("task event tid = %d, want 3 (task+1)", ev.TID)
			}
			if ev.Dur < 900 {
				t.Errorf("task event dur = %dus, want >= ~1ms", ev.Dur)
			}
			if ev.Args["records"].(float64) != 7 {
				t.Errorf("task records arg = %v", ev.Args["records"])
			}
		}
	}
	if !taskEv {
		t.Error("task event missing from dump")
	}
}

func TestDroppedBeyondCap(t *testing.T) {
	tr := New()
	tr.spans = make([]SpanRecord, maxSpans) // simulate a full tracer
	tr.StartSpan(0, "x").End()
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	if tr.Len() != maxSpans {
		t.Fatalf("len grew past cap: %d", tr.Len())
	}
}

func TestExplainRendering(t *testing.T) {
	tr := New()
	root := tr.StartSpan(0, "query")
	sel := root.Child(SpanSelect,
		Int("total_partitions", 16), Int("kept_partitions", 3))
	st := root.Child(SpanStagePrefix+"load:nyc.cache", Int("tasks", 3))
	for i := 0; i < 3; i++ {
		tk := st.Child(SpanTask, Int("task", int64(i)), Int("attempt", 0))
		tk.End(Bool("committed", true))
	}
	retry := st.Child(SpanTask, Int("task", 1), Int("attempt", 1))
	retry.End(Bool("committed", false))
	st.End(Int("records", 100), Int("tasks", 3))
	sel.End(Int("loaded_records", 400), Int("loaded_bytes", 8192), Int("selected", 100))
	pr := root.Child(SpanPartitionRead, Int("partition", 0))
	pr.End(Int("blocks_scanned", 2), Int("blocks_pruned", 6), Int("raw_bytes", 4096))
	pl := root.Child(SpanPartitionLoad, Str("key", "part|nyc|0|0"))
	pl.End(Int("blocks_scanned", 1), Int("blocks_pruned", 3), Int("raw_bytes", 1024))
	sw := root.Child(SpanShuffleWrite, Int("bytes", 2048), Int("records", 100))
	sw.End()
	root.End()

	e := Build(tr.Snapshot())
	if e.TotalPartitions != 16 || e.ReadPartitions != 3 || e.PrunedPartitions != 13 {
		t.Errorf("partitions = %d/%d/%d", e.ReadPartitions, e.PrunedPartitions, e.TotalPartitions)
	}
	if e.RecordsLoaded != 400 || e.RecordsSelected != 100 || e.PartitionBytes != 8192 {
		t.Errorf("records = %+v", e)
	}
	if e.ShuffleBytes != 2048 || e.ShuffleRecords != 100 {
		t.Errorf("shuffle = %d bytes %d records", e.ShuffleBytes, e.ShuffleRecords)
	}
	// Block counters aggregate across partition:read and partition:load.
	if e.BlocksScanned != 3 || e.BlocksPruned != 9 || e.BytesDecompressed != 5120 {
		t.Errorf("blocks = %d scanned %d pruned %d raw",
			e.BlocksScanned, e.BlocksPruned, e.BytesDecompressed)
	}
	if e.TasksRun != 3 || e.TaskRetries != 1 {
		t.Errorf("tasks = %d run %d retries", e.TasksRun, e.TaskRetries)
	}
	stg, ok := e.StageByName("load:nyc.cache")
	if !ok || stg.Records != 100 || stg.Retries != 1 {
		t.Errorf("stage = %+v ok=%v", stg, ok)
	}
	if e.WallMS <= 0 {
		t.Error("wall not positive")
	}

	var buf bytes.Buffer
	e.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"3 read", "13 pruned", "load:nyc.cache", "2048 bytes",
		"3 scanned, 9 pruned; 5120 bytes decompressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain text missing %q:\n%s", want, out)
		}
	}
}

func TestBuildNil(t *testing.T) {
	if Build(nil) != nil {
		t.Error("Build(nil) should be nil")
	}
	var e *Explain
	e.Fprint(&bytes.Buffer{}) // must not panic
}
