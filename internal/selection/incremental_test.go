package selection

import (
	"path/filepath"
	"testing"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/partition"
	"st4ml/internal/storage"
	"st4ml/internal/tempo"
)

// TestIncrementalIngestAndMergedSelect covers the paper's §4.1 discussion
// point (3): continuously generated data is indexed in periodic batches and
// the metadata files are merged, so selection prunes across all batches
// without re-partitioning old data.
func TestIncrementalIngestAndMergedSelect(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	base := t.TempDir()

	// Two daily batches, each T-STR indexed independently.
	metas := map[string]*storage.Metadata{}
	var allData []ev
	for day := 0; day < 2; day++ {
		var batch []ev
		for i := 0; i < 500; i++ {
			batch = append(batch, ev{
				P: geom.Pt(float64(i%100), float64(i%50)),
				T: int64(day*86400 + i*100),
				N: int64(day*1000 + i),
			})
		}
		allData = append(allData, batch...)
		dir := filepath.Join(base, "batch", dayName(day))
		r := engine.Parallelize(ctx, batch, 4)
		meta, err := Ingest(r, dir, evC, evBox, partition.TSTR{GT: 2, GS: 2},
			IngestOptions{Name: dayName(day), SampleFrac: 0.5, Seed: int64(day)})
		if err != nil {
			t.Fatal(err)
		}
		metas[filepath.Join("batch", dayName(day))] = meta
	}

	// Merge the per-batch metadata into one index rooted at base.
	merged := storage.MergeMetadata(metas)
	if merged.TotalCount != int64(len(allData)) {
		t.Fatalf("merged count = %d", merged.TotalCount)
	}

	// A day-2-only window prunes every day-1 partition.
	w := Window{Space: geom.Box(0, 0, 100, 50), Time: tempo.New(86400, 2*86400)}
	keep := merged.Prune(w.Space, w.Time)
	if len(keep) == 0 || len(keep) >= merged.NumPartitions() {
		t.Fatalf("merged pruning kept %d of %d", len(keep), merged.NumPartitions())
	}
	var selected int
	for _, id := range keep {
		recs, err := storage.ReadPartition(base, merged, id, evC)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if evBox(r).Intersects(w.Box()) {
				selected++
			}
		}
	}
	want := 0
	for _, r := range allData {
		if evBox(r).Intersects(w.Box()) {
			want++
		}
	}
	if selected != want {
		t.Errorf("merged selection found %d, want %d", selected, want)
	}
}

func dayName(d int) string {
	return []string{"day-0", "day-1"}[d]
}
