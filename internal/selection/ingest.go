package selection

import (
	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/index"
	"st4ml/internal/partition"
	"st4ml/internal/storage"
)

// IngestOptions tunes offline dataset preparation.
type IngestOptions struct {
	// Name labels the dataset metadata.
	Name string
	// Compress gzips partition files.
	Compress bool
	// SampleFrac is the partition-planning sample fraction (0 = 1%).
	SampleFrac float64
	// Seed fixes sampling randomness.
	Seed int64
	// Duplicate stores records in every partition they overlap.
	Duplicate bool
}

// Ingest performs the offline preparation of §4.1: ST-partition the records
// with the planner, persist the partitions under dir, and write the
// metadata index recording each partition's ST bounds. This is the Go
// equivalent of the paper's
//
//	eventRDD.stPartitionWithInfo(TSTRPartitioner(gt, gs)); pInfo.toDisk(...)
func Ingest[T any](
	r *engine.RDD[T],
	dir string,
	c codec.Codec[T],
	boxOf func(T) index.Box,
	planner partition.Planner,
	opts IngestOptions,
) (*storage.Metadata, error) {
	partitioned, _ := partition.ByPlanner(r, c, boxOf, planner, partition.Options{
		SampleFrac: opts.SampleFrac,
		Seed:       opts.Seed,
		Duplicate:  opts.Duplicate,
	})
	parts := partitioned.CollectPartitions()
	return storage.Write(dir, c, parts, boxOf, storage.WriteOptions{
		Name:     opts.Name,
		Compress: opts.Compress,
	})
}

// IngestUnpartitioned persists the RDD's current partition layout without
// ST-aware reshuffling — how a plain pipeline (or the GeoSpark-like
// baseline) would land data on disk.
func IngestUnpartitioned[T any](
	r *engine.RDD[T],
	dir string,
	c codec.Codec[T],
	boxOf func(T) index.Box,
	opts IngestOptions,
) (*storage.Metadata, error) {
	return storage.Write(dir, c, r.CollectPartitions(), boxOf, storage.WriteOptions{
		Name:     opts.Name,
		Compress: opts.Compress,
	})
}
