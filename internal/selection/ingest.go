package selection

import (
	"sort"

	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/partition"
	"st4ml/internal/storage"
)

// IngestOptions tunes offline dataset preparation.
type IngestOptions struct {
	// Name labels the dataset metadata.
	Name string
	// Compress gzips partition data (per block on v2 layouts).
	Compress bool
	// SampleFrac is the partition-planning sample fraction (0 = 1%).
	SampleFrac float64
	// Seed fixes sampling randomness.
	Seed int64
	// Duplicate stores records in every partition they overlap.
	Duplicate bool
	// BlockRecords is the records-per-block target of the v2 file layout
	// (0 = storage.DefaultBlockRecords). Smaller blocks prune harder on
	// narrow queries but cost more framing overhead.
	BlockRecords int
	// Version pins the storage format (0 = latest). Version 1 writes the
	// legacy monolithic layout for compatibility experiments.
	Version int
	// NoCluster skips the in-partition Z-order sort. Blocks then inherit
	// arrival order and their ST bounds overlap heavily, so intra-partition
	// pruning degrades to whole-partition reads.
	NoCluster bool
}

func (o IngestOptions) writeOptions() storage.WriteOptions {
	return storage.WriteOptions{
		Name:         o.Name,
		Compress:     o.Compress,
		BlockRecords: o.BlockRecords,
		Version:      o.Version,
	}
}

// clusterPartitions sorts each partition's records along a 3-d Z-order
// curve over that partition's own ST extent, so consecutive records — and
// therefore the v2 block layout's record ranges — cover small, mostly
// disjoint ST boxes. This is what makes the per-block footer bounds
// selective: without it every block spans the whole partition and
// intra-partition pruning never fires (the row-group sort-key idiom of
// columnar stores, applied to the paper's §4.1 layout).
func clusterPartitions[T any](parts [][]T, boxOf func(T) index.Box) {
	for _, part := range parts {
		if len(part) < 2 {
			continue
		}
		bounds := index.EmptyBox()
		for _, rec := range part {
			bounds = bounds.Union(boxOf(rec))
		}
		if bounds.IsEmpty() {
			continue
		}
		space := bounds.Spatial()
		window := bounds.Temporal()
		// ~16 time bins per partition; spatial resolution 8 bits/dim.
		binSec := (window.End - window.Start) / 16
		if binSec < 1 {
			binSec = 1
		}
		curve := index.NewZCurve3D(space, window, 8, binSec)
		type keyed struct {
			key uint64
			idx int
		}
		order := make([]keyed, len(part))
		for i, rec := range part {
			c := boxOf(rec).Center()
			order[i] = keyed{key: curve.Key(geom.Pt(c[0], c[1]), int64(c[2])), idx: i}
		}
		sort.SliceStable(order, func(i, j int) bool { return order[i].key < order[j].key })
		sorted := make([]T, len(part))
		for i, k := range order {
			sorted[i] = part[k.idx]
		}
		copy(part, sorted)
	}
}

// Ingest performs the offline preparation of §4.1: ST-partition the records
// with the planner, persist the partitions under dir, and write the
// metadata index recording each partition's ST bounds. This is the Go
// equivalent of the paper's
//
//	eventRDD.stPartitionWithInfo(TSTRPartitioner(gt, gs)); pInfo.toDisk(...)
func Ingest[T any](
	r *engine.RDD[T],
	dir string,
	c codec.Codec[T],
	boxOf func(T) index.Box,
	planner partition.Planner,
	opts IngestOptions,
) (*storage.Metadata, error) {
	partitioned, _ := partition.ByPlanner(r, c, boxOf, planner, partition.Options{
		SampleFrac: opts.SampleFrac,
		Seed:       opts.Seed,
		Duplicate:  opts.Duplicate,
	})
	parts := partitioned.CollectPartitions()
	if !opts.NoCluster {
		clusterPartitions(parts, boxOf)
	}
	return storage.Write(dir, c, parts, boxOf, opts.writeOptions())
}

// IngestUnpartitioned persists the RDD's current partition layout without
// ST-aware reshuffling — how a plain pipeline (or the GeoSpark-like
// baseline) would land data on disk.
func IngestUnpartitioned[T any](
	r *engine.RDD[T],
	dir string,
	c codec.Codec[T],
	boxOf func(T) index.Box,
	opts IngestOptions,
) (*storage.Metadata, error) {
	parts := r.CollectPartitions()
	if !opts.NoCluster {
		clusterPartitions(parts, boxOf)
	}
	return storage.Write(dir, c, parts, boxOf, opts.writeOptions())
}
