package selection

import (
	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/index"
	"st4ml/internal/partition"
	"st4ml/internal/storage"
)

// IngestOptions tunes offline dataset preparation.
type IngestOptions struct {
	// Name labels the dataset metadata.
	Name string
	// Compress gzips partition data (per block on v2 layouts).
	Compress bool
	// SampleFrac is the partition-planning sample fraction (0 = 1%).
	SampleFrac float64
	// Seed fixes sampling randomness.
	Seed int64
	// Duplicate stores records in every partition they overlap.
	Duplicate bool
	// BlockRecords is the records-per-block target of the v2 file layout
	// (0 = storage.DefaultBlockRecords). Smaller blocks prune harder on
	// narrow queries but cost more framing overhead.
	BlockRecords int
	// Version pins the storage format (0 = latest). Version 1 writes the
	// legacy monolithic layout for compatibility experiments.
	Version int
	// NoCluster skips the in-partition Z-order sort. Blocks then inherit
	// arrival order and their ST bounds overlap heavily, so intra-partition
	// pruning degrades to whole-partition reads.
	NoCluster bool
}

func (o IngestOptions) writeOptions() storage.WriteOptions {
	return storage.WriteOptions{
		Name:         o.Name,
		Compress:     o.Compress,
		BlockRecords: o.BlockRecords,
		Version:      o.Version,
	}
}

// clusterPartitions Z-orders each partition's records so the v2 block
// layout's record ranges cover small, mostly disjoint ST boxes. The sort
// itself lives in storage.ZCluster, shared with the delta layer's appends
// and compactions so all three write paths produce equivalently clustered
// files.
func clusterPartitions[T any](parts [][]T, boxOf func(T) index.Box) {
	for _, part := range parts {
		storage.ZCluster(part, boxOf)
	}
}

// Ingest performs the offline preparation of §4.1: ST-partition the records
// with the planner, persist the partitions under dir, and write the
// metadata index recording each partition's ST bounds. This is the Go
// equivalent of the paper's
//
//	eventRDD.stPartitionWithInfo(TSTRPartitioner(gt, gs)); pInfo.toDisk(...)
func Ingest[T any](
	r *engine.RDD[T],
	dir string,
	c codec.Codec[T],
	boxOf func(T) index.Box,
	planner partition.Planner,
	opts IngestOptions,
) (*storage.Metadata, error) {
	partitioned, _ := partition.ByPlanner(r, c, boxOf, planner, partition.Options{
		SampleFrac: opts.SampleFrac,
		Seed:       opts.Seed,
		Duplicate:  opts.Duplicate,
	})
	parts := partitioned.CollectPartitions()
	if !opts.NoCluster {
		clusterPartitions(parts, boxOf)
	}
	return storage.Write(dir, c, parts, boxOf, opts.writeOptions())
}

// IngestUnpartitioned persists the RDD's current partition layout without
// ST-aware reshuffling — how a plain pipeline (or the GeoSpark-like
// baseline) would land data on disk.
func IngestUnpartitioned[T any](
	r *engine.RDD[T],
	dir string,
	c codec.Codec[T],
	boxOf func(T) index.Box,
	opts IngestOptions,
) (*storage.Metadata, error) {
	parts := r.CollectPartitions()
	if !opts.NoCluster {
		clusterPartitions(parts, boxOf)
	}
	return storage.Write(dir, c, parts, boxOf, opts.writeOptions())
}
