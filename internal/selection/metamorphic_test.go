package selection

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/partition"
	"st4ml/internal/tempo"
)

// This file is the metamorphic correctness suite for the selection stage:
// for ANY on-disk layout and ANY window set, SelectPruned must return the
// exact same multiset of records as the full-scan Select — byte-for-byte
// under the dataset codec, so even a lossy decode or a reordered field
// would fail the comparison. Pruning is an optimisation; it may never
// change an answer.

// encodedMultiset encodes every record with the dataset codec and returns
// the sorted encodings. Two RDDs are equivalent iff these compare equal —
// order-insensitive but duplicate- and byte-exact.
func encodedMultiset(evs []ev) []string {
	out := make([]string, len(evs))
	for i, v := range evs {
		w := codec.NewWriter(32)
		evC.Enc(w, v)
		out[i] = string(w.Bytes())
	}
	sort.Strings(out)
	return out
}

func multisetsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// metaLayout is one way of landing the corpus on disk.
type metaLayout struct {
	name   string
	ingest func(t *testing.T, ctx *engine.Context, dir string, data []ev, seed int64)
}

func plannerLayout(name string, p partition.Planner, mod func(*IngestOptions)) metaLayout {
	return metaLayout{name: name, ingest: func(t *testing.T, ctx *engine.Context, dir string, data []ev, seed int64) {
		t.Helper()
		r := engine.Parallelize(ctx, data, 8)
		opts := IngestOptions{Name: name, SampleFrac: 0.3, Seed: seed}
		if mod != nil {
			mod(&opts)
		}
		if _, err := Ingest(r, dir, evC, evBox, p, opts); err != nil {
			t.Fatal(err)
		}
	}}
}

// metaLayouts covers ST-aware partitioners at two granularities, a purely
// spatial partitioner, the ST-oblivious hash layout a plain pipeline would
// produce (partition bounds then come solely from storage.Write's
// per-partition record-box union), and storage-format variants: tiny and
// single-record blocks, compressed blocks, unclustered blocks (worst-case
// footer bounds), and the legacy v1 monolithic layout.
func metaLayouts() []metaLayout {
	return []metaLayout{
		plannerLayout("tstr4x4", partition.TSTR{GT: 4, GS: 4}, nil),
		plannerLayout("tstr2x8", partition.TSTR{GT: 2, GS: 8}, nil),
		plannerLayout("str2d9", partition.STR2D{N: 9}, nil),
		plannerLayout("tstr4x4-b16gz", partition.TSTR{GT: 4, GS: 4}, func(o *IngestOptions) {
			o.BlockRecords = 16
			o.Compress = true
		}),
		plannerLayout("str2d9-b1", partition.STR2D{N: 9}, func(o *IngestOptions) {
			o.BlockRecords = 1
		}),
		plannerLayout("tstr4x4-nocluster", partition.TSTR{GT: 4, GS: 4}, func(o *IngestOptions) {
			o.BlockRecords = 32
			o.NoCluster = true
		}),
		plannerLayout("tstr4x4-v1", partition.TSTR{GT: 4, GS: 4}, func(o *IngestOptions) {
			o.Version = 1
			o.Compress = true
		}),
		// Explicit format pins: the row-major v2 layout and the columnar v3
		// layout at single-record block granularity. (Unpinned layouts above
		// already run v3 — the default — through evC's Columnar schema, so
		// the per-record predicate is active across the whole suite.)
		plannerLayout("tstr4x4-v2gz", partition.TSTR{GT: 4, GS: 4}, func(o *IngestOptions) {
			o.Version = 2
			o.Compress = true
			o.BlockRecords = 32
		}),
		plannerLayout("str2d9-v3b1", partition.STR2D{N: 9}, func(o *IngestOptions) {
			o.Version = 3
			o.BlockRecords = 1
		}),
		{name: "hash6", ingest: func(t *testing.T, ctx *engine.Context, dir string, data []ev, seed int64) {
			t.Helper()
			r := engine.HashPartitionBy(engine.Parallelize(ctx, data, 8), evC, 6)
			if _, err := IngestUnpartitioned(r, dir, evC, evBox,
				IngestOptions{Name: "hash6", BlockRecords: 64}); err != nil {
				t.Fatal(err)
			}
		}},
	}
}

// metamorphicWindows draws one window set. The kinds cycle through the
// shapes that historically break pruning code: plain random ranges,
// multi-window unions, windows whose edges sit EXACTLY on record
// coordinates (boundary-touching: the record is extremal in its partition,
// so the window also touches the partition bound), degenerate zero-extent
// windows, and fully disjoint windows that must prune everything.
func metamorphicWindows(rng *rand.Rand, data []ev, kind int) []Window {
	randW := func() Window {
		x, y := rng.Float64()*90, rng.Float64()*90
		t0 := rng.Int63n(80000)
		return Window{
			Space: geom.Box(x, y, x+rng.Float64()*30, y+rng.Float64()*30),
			Time:  tempo.New(t0, t0+rng.Int63n(20000)+1),
		}
	}
	switch kind % 5 {
	case 0:
		return []Window{randW()}
	case 1:
		return []Window{randW(), randW(), randW()}
	case 2:
		// Boundary-touching: every edge of the window is an exact record
		// coordinate, so box intersection tests run on equal floats.
		a := data[rng.Intn(len(data))]
		b := data[rng.Intn(len(data))]
		return []Window{{
			Space: geom.Box(min(a.P.X, b.P.X), min(a.P.Y, b.P.Y),
				max(a.P.X, b.P.X), max(a.P.Y, b.P.Y)),
			Time: tempo.New(min(a.T, b.T), max(a.T, b.T)),
		}}
	case 3:
		// Degenerate: zero spatial extent and zero temporal extent pinned
		// on one record — selects at least that record, through pruning.
		a := data[rng.Intn(len(data))]
		return []Window{{
			Space: geom.Box(a.P.X, a.P.Y, a.P.X, a.P.Y),
			Time:  tempo.New(a.T, a.T),
		}}
	default:
		// Disjoint from the corpus domain: must select nothing and prune
		// every partition.
		return []Window{{
			Space: geom.Box(1000, 1000, 1100, 1100),
			Time:  tempo.New(200000, 300000),
		}}
	}
}

// TestMetamorphicPrunedEqualsFull is the suite entry point: 10 layouts
// (spanning v1, v2, and v3 columnar formats) x 2 index modes x 8 seeded
// window sets = 160 combos, each asserting the byte-for-byte multiset
// identity SelectPruned(w) == Select(w), plus the structural invariants
// pruning promises (never loads more than the full scan; empty window
// sets load nothing).
func TestMetamorphicPrunedEqualsFull(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	combos := 0
	for li, lay := range metaLayouts() {
		seed := int64(100 + li)
		rng := rand.New(rand.NewSource(seed))
		data := make([]ev, 2000)
		for i := range data {
			data[i] = ev{
				P: geom.Pt(rng.Float64()*100, rng.Float64()*100),
				T: rng.Int63n(86400),
				N: int64(i),
			}
		}
		dir := t.TempDir()
		lay.ingest(t, ctx, dir, data, seed)

		for _, useIndex := range []bool{false, true} {
			for ws := 0; ws < 8; ws++ {
				combos++
				name := fmt.Sprintf("%s/index=%v/w%d", lay.name, useIndex, ws)
				wrng := rand.New(rand.NewSource(seed*1000 + int64(ws)))
				windows := metamorphicWindows(wrng, data, ws)

				sel := New(ctx, evC, evBox, nil, Config{Index: useIndex})
				full, fullStats, err := sel.Select(dir, windows...)
				if err != nil {
					t.Fatalf("%s: full: %v", name, err)
				}
				pruned, prunedStats, err := sel.SelectPruned(dir, windows...)
				if err != nil {
					t.Fatalf("%s: pruned: %v", name, err)
				}

				fm := encodedMultiset(full.Collect())
				pm := encodedMultiset(pruned.Collect())
				if !multisetsEqual(fm, pm) {
					t.Errorf("%s: pruned returned %d records, full scan %d — multisets differ",
						name, len(pm), len(fm))
				}
				if prunedStats.SelectedRecords != fullStats.SelectedRecords {
					t.Errorf("%s: stats disagree: pruned selected %d, full %d",
						name, prunedStats.SelectedRecords, fullStats.SelectedRecords)
				}
				if prunedStats.LoadedPartitions > fullStats.LoadedPartitions ||
					prunedStats.LoadedRecords > fullStats.LoadedRecords {
					t.Errorf("%s: pruning loaded more than the full scan: %+v vs %+v",
						name, prunedStats, fullStats)
				}
				if prunedStats.BlocksScanned+prunedStats.BlocksPruned != prunedStats.BlocksTotal {
					t.Errorf("%s: block accounting broken: %d scanned + %d pruned != %d total",
						name, prunedStats.BlocksScanned, prunedStats.BlocksPruned, prunedStats.BlocksTotal)
				}
				if prunedStats.DecompressedBytes > fullStats.DecompressedBytes {
					t.Errorf("%s: pruned decompressed %d bytes, full scan only %d",
						name, prunedStats.DecompressedBytes, fullStats.DecompressedBytes)
				}
				if ws%5 == 4 && prunedStats.LoadedPartitions != 0 {
					t.Errorf("%s: disjoint window loaded %d partitions, want 0",
						name, prunedStats.LoadedPartitions)
				}
				if ws%5 == 3 && prunedStats.SelectedRecords == 0 {
					t.Errorf("%s: degenerate window pinned on a record selected nothing", name)
				}
			}
		}
	}
	if combos < 128 {
		t.Fatalf("metamorphic suite ran %d combos, want >= 128", combos)
	}
	t.Logf("metamorphic suite: %d combos", combos)
}
