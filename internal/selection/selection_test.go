package selection

import (
	"math/rand"
	"sort"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/partition"
	"st4ml/internal/tempo"
)

type ev struct {
	P geom.Point
	T int64
	N int64 // id for set comparisons
}

var evC = codec.Codec[ev]{
	Enc: func(w *codec.Writer, v ev) {
		codec.PointC.Enc(w, v.P)
		w.PutVarint(v.T)
		w.PutVarint(v.N)
	},
	Dec: func(r *codec.Reader) ev {
		return ev{P: codec.PointC.Dec(r), T: r.Varint(), N: r.Varint()}
	},
	Col: &codec.Columnar[ev]{
		Point: true,
		Split: func(v ev, b *codec.ColBlock) {
			b.IDs = append(b.IDs, v.N)
			b.Lon = append(b.Lon, v.P.X)
			b.Lat = append(b.Lat, v.P.Y)
			b.T = append(b.T, v.T)
		},
		Join: func(b *codec.ColBlock, i int, pay *codec.Reader) ev {
			return ev{P: geom.Pt(b.Lon[i], b.Lat[i]), T: b.T[i], N: b.IDs[i]}
		},
	},
}

func evBox(v ev) index.Box { return index.BoxOfPoint(v.P, v.T) }

// corpus generates n events over a 100×100 area and a day, and ingests them
// T-STR-partitioned under dir.
func corpus(t *testing.T, ctx *engine.Context, dir string, n int, seed int64) []ev {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]ev, n)
	for i := range data {
		data[i] = ev{
			P: geom.Pt(rng.Float64()*100, rng.Float64()*100),
			T: rng.Int63n(86400),
			N: int64(i),
		}
	}
	r := engine.Parallelize(ctx, data, 8)
	if _, err := Ingest(r, dir, evC, evBox, partition.TSTR{GT: 4, GS: 4},
		IngestOptions{Name: "corpus", SampleFrac: 0.3, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return data
}

// bruteSelect returns ids of events matching any window.
func bruteSelect(data []ev, windows []Window) []int64 {
	var out []int64
	for _, v := range data {
		b := evBox(v)
		for _, w := range windows {
			if b.Intersects(w.Box()) {
				out = append(out, v.N)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func ids(evs []ev) []int64 {
	out := make([]int64, len(evs))
	for i, v := range evs {
		out[i] = v.N
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelectMatchesBruteForce(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	dir := t.TempDir()
	data := corpus(t, ctx, dir, 3000, 1)
	windows := []Window{
		{Space: geom.Box(10, 10, 40, 40), Time: tempo.New(0, 43200)},
		{Space: geom.Box(60, 60, 90, 90), Time: tempo.New(43200, 86400)},
	}
	for _, useIndex := range []bool{false, true} {
		sel := New(ctx, evC, evBox, nil, Config{Index: useIndex})
		got, stats, err := sel.Select(dir, windows...)
		if err != nil {
			t.Fatal(err)
		}
		if stats.LoadedPartitions != stats.TotalPartitions {
			t.Errorf("full select should load all partitions: %+v", stats)
		}
		if !equalIDs(ids(got.Collect()), bruteSelect(data, windows)) {
			t.Fatalf("index=%v: selection mismatch", useIndex)
		}
	}
}

func TestSelectPrunedMatchesFullSelect(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	dir := t.TempDir()
	data := corpus(t, ctx, dir, 3000, 2)
	windows := []Window{{Space: geom.Box(20, 20, 35, 35), Time: tempo.New(10000, 30000)}}
	sel := New(ctx, evC, evBox, nil, Config{Index: true})
	pruned, prunedStats, err := sel.SelectPruned(dir, windows...)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(ids(pruned.Collect()), bruteSelect(data, windows)) {
		t.Fatal("pruned selection differs from brute force")
	}
	if prunedStats.LoadedPartitions >= prunedStats.TotalPartitions {
		t.Errorf("small window should prune partitions: %+v", prunedStats)
	}
	if prunedStats.LoadedRecords >= int64(len(data)) {
		t.Errorf("pruning should load fewer records: %+v", prunedStats)
	}
}

func TestSelectPrunedLoadsLessForSmallerWindows(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	dir := t.TempDir()
	corpus(t, ctx, dir, 5000, 3)
	sel := New(ctx, evC, evBox, nil, Config{})
	small := Window{Space: geom.Box(45, 45, 55, 55), Time: tempo.New(40000, 46000)}
	large := Window{Space: geom.Box(0, 0, 100, 100), Time: tempo.New(0, 86400)}
	_, sSmall, err := sel.SelectPruned(dir, small)
	if err != nil {
		t.Fatal(err)
	}
	_, sLarge, err := sel.SelectPruned(dir, large)
	if err != nil {
		t.Fatal(err)
	}
	if sSmall.LoadedRecords >= sLarge.LoadedRecords {
		t.Errorf("small window loaded %d, large %d", sSmall.LoadedRecords, sLarge.LoadedRecords)
	}
	if sLarge.LoadedPartitions != sLarge.TotalPartitions {
		t.Errorf("full window should load everything: %+v", sLarge)
	}
}

func TestSelectWithRepartitioning(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	dir := t.TempDir()
	data := corpus(t, ctx, dir, 4000, 4)
	windows := []Window{{Space: geom.Box(0, 0, 100, 100), Time: tempo.New(0, 86400)}}
	sel := New(ctx, evC, evBox, nil, Config{
		Planner:    partition.TSTR{GT: 3, GS: 3},
		SampleFrac: 0.3,
	})
	got, _, err := sel.Select(dir, windows...)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPartitions() != 9 {
		t.Errorf("repartitioned into %d, want 9", got.NumPartitions())
	}
	if !equalIDs(ids(got.Collect()), bruteSelect(data, windows)) {
		t.Fatal("repartitioning changed the selected set")
	}
	if cv := partition.CV(got.CountByPartition()); cv > 0.5 {
		t.Errorf("post-selection CV = %g", cv)
	}
}

func TestSelectNoWindowsReturnsEverything(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	dir := t.TempDir()
	data := corpus(t, ctx, dir, 1000, 5)
	sel := New(ctx, evC, evBox, nil, Config{})
	got, stats, err := sel.Select(dir)
	if err != nil {
		t.Fatal(err)
	}
	if int(stats.SelectedRecords) != len(data) || int(got.Count()) != len(data) {
		t.Errorf("no-window select kept %d of %d", stats.SelectedRecords, len(data))
	}
}

func TestSelectPrunedEmptyResult(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	dir := t.TempDir()
	corpus(t, ctx, dir, 500, 6)
	sel := New(ctx, evC, evBox, nil, Config{})
	got, stats, err := sel.SelectPruned(dir,
		Window{Space: geom.Box(500, 500, 600, 600), Time: tempo.New(0, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LoadedPartitions != 0 || got.Count() != 0 {
		t.Errorf("disjoint window should prune everything: %+v", stats)
	}
}

func TestSelectMissingDatasetErrors(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	sel := New(ctx, evC, evBox, nil, Config{})
	if _, _, err := sel.Select(t.TempDir()); err == nil {
		t.Error("missing dataset should error")
	}
}

func TestExactRefinement(t *testing.T) {
	// Use an exact predicate that rejects everything; box filter alone
	// would accept.
	ctx := engine.New(engine.Config{Slots: 4})
	dir := t.TempDir()
	corpus(t, ctx, dir, 300, 7)
	reject := func(ev, geom.MBR, tempo.Duration) bool { return false }
	for _, useIndex := range []bool{false, true} {
		sel := New(ctx, evC, evBox, reject, Config{Index: useIndex})
		got, _, err := sel.Select(dir,
			Window{Space: geom.Box(0, 0, 100, 100), Time: tempo.New(0, 86400)})
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() != 0 {
			t.Errorf("index=%v: exact predicate ignored", useIndex)
		}
	}
}

func TestIngestUnpartitionedKeepsLayout(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	data := make([]ev, 100)
	for i := range data {
		data[i] = ev{P: geom.Pt(rng.Float64(), rng.Float64()), T: int64(i), N: int64(i)}
	}
	r := engine.Parallelize(ctx, data, 5)
	meta, err := IngestUnpartitioned(r, dir, evC, evBox, IngestOptions{Name: "raw"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumPartitions() != 5 {
		t.Errorf("partitions = %d, want 5", meta.NumPartitions())
	}
	if meta.TotalCount != 100 {
		t.Errorf("count = %d", meta.TotalCount)
	}
}
