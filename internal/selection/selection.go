// Package selection implements ST4ML's Selection stage (§3.1): loading ST
// data from persistent storage into memory, filtering it against ST query
// windows (optionally through per-partition R-trees built on the fly), and
// ST-repartitioning the survivors for balanced downstream stages.
//
// Two paths exist, matching the paper:
//
//   - Select: the native-Spark path — every partition is loaded and
//     filtered in parallel (Fig. 2).
//   - SelectPruned: the metadata path (§4.1, Fig. 4) — partition extents
//     from metadata.json are compared against the query first, and only
//     overlapping partitions are ever read from disk.
package selection

import (
	"fmt"
	"sync/atomic"

	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/partition"
	"st4ml/internal/storage"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

// Window is one ST query range.
type Window struct {
	Space geom.MBR
	Time  tempo.Duration
}

// Box returns the window as a 3-d query box.
func (w Window) Box() index.Box { return index.Box3(w.Space, w.Time) }

// Config tunes a Selector.
type Config struct {
	// Index builds a 3-d R-tree per loaded partition and answers each
	// window from it; false scans records linearly. Indexing pays off when
	// several windows are selected per load.
	Index bool
	// Planner, when set, ST-repartitions the selected records (stage 2 of
	// Fig. 2). Nil keeps the storage partitioning.
	Planner partition.Planner
	// Duplicate routes a record into every overlapped partition during
	// repartitioning (needed by cross-instance extractors).
	Duplicate bool
	// SampleFrac is the planning sample fraction (0 = 1%).
	SampleFrac float64
	// Seed fixes sampling randomness.
	Seed int64
}

// Stats reports what a selection did — the measurements behind Fig. 5.
type Stats struct {
	TotalPartitions  int
	LoadedPartitions int
	LoadedRecords    int64
	LoadedBytes      int64
	SelectedRecords  int64
	// Block-granularity accounting (storage format v2): across the loaded
	// partitions, how many blocks existed, how many were decoded, how many
	// the footer bounds let the reader skip, and the decompressed payload
	// volume actually decoded. On v1 datasets every loaded partition is one
	// scanned block.
	BlocksTotal       int64
	BlocksScanned     int64
	BlocksPruned      int64
	DecompressedBytes int64
	// RecordsPruned counts records the v3 columnar predicate dropped on
	// decoded lon/lat/t columns before materialization — pruning one level
	// finer than blocks. Zero on v1/v2 datasets.
	RecordsPruned int64
	// Delta-layer accounting (merge-on-read): across the loaded partitions,
	// how many delta files were unioned in, how many the manifest bounds let
	// the reader skip, and the records the read deltas contributed. All zero
	// on datasets without a delta layer.
	DeltaFiles   int64
	DeltasRead   int64
	DeltasPruned int64
	DeltaRecords int64
}

// Selector selects records of type T from an on-disk dataset.
type Selector[T any] struct {
	ctx   *engine.Context
	c     codec.Codec[T]
	boxOf func(T) index.Box
	// exact, when non-nil, refines the box-level test with exact geometry.
	exact func(T, geom.MBR, tempo.Duration) bool
	cfg   Config
}

// New builds a selector. boxOf extracts a record's ST box; exact (optional,
// may be nil) refines candidate records with exact geometry, e.g. a
// trajectory's per-segment test.
func New[T any](
	ctx *engine.Context,
	c codec.Codec[T],
	boxOf func(T) index.Box,
	exact func(T, geom.MBR, tempo.Duration) bool,
	cfg Config,
) *Selector[T] {
	return &Selector[T]{ctx: ctx, c: c, boxOf: boxOf, exact: exact, cfg: cfg}
}

// Select loads every partition of the dataset and filters in parallel (the
// native path of Fig. 2): stage 1 load+filter, stage 2 ST partitioning.
func (s *Selector[T]) Select(dir string, windows ...Window) (*engine.RDD[T], Stats, error) {
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		return nil, Stats{}, err
	}
	return s.SelectWith(dir, meta, windows...)
}

// SelectWith is Select against an already-loaded metadata handle — the
// resident-catalog path, where a long-lived caller pins the metadata once
// instead of re-reading metadata.json on every query.
func (s *Selector[T]) SelectWith(dir string, meta *storage.Metadata, windows ...Window) (*engine.RDD[T], Stats, error) {
	all := make([]int, meta.NumPartitions())
	for i := range all {
		all[i] = i
	}
	return s.selectPartitions(dir, meta, all, windows, false)
}

// SelectPruned consults the metadata index first and reads only partitions
// whose ST bounds overlap at least one window (§4.1, Fig. 4).
func (s *Selector[T]) SelectPruned(dir string, windows ...Window) (*engine.RDD[T], Stats, error) {
	meta, err := storage.ReadMetadata(dir)
	if err != nil {
		return nil, Stats{}, err
	}
	return s.SelectPrunedWith(dir, meta, windows...)
}

// SelectPrunedWith is SelectPruned against an already-loaded metadata
// handle (see SelectWith).
func (s *Selector[T]) SelectPrunedWith(dir string, meta *storage.Metadata, windows ...Window) (*engine.RDD[T], Stats, error) {
	keepSet := map[int]bool{}
	for _, w := range windows {
		for _, id := range meta.Prune(w.Space, w.Time) {
			keepSet[id] = true
		}
	}
	keep := make([]int, 0, len(keepSet))
	for i := 0; i < meta.NumPartitions(); i++ {
		if keepSet[i] {
			keep = append(keep, i)
		}
	}
	return s.selectPartitions(dir, meta, keep, windows, true)
}

// selectPartitions runs the two selection stages over the given on-disk
// partition ids. blockPrune lets the storage layer additionally skip v2
// blocks whose footer bounds miss every window (SelectPruned's
// intra-partition extension of §4.1); the native Select path keeps it off
// so it stays an honest full-scan baseline.
func (s *Selector[T]) selectPartitions(
	dir string, meta *storage.Metadata, ids []int, windows []Window, blockPrune bool,
) (*engine.RDD[T], Stats, error) {
	stats := Stats{
		TotalPartitions:  meta.NumPartitions(),
		LoadedPartitions: len(ids),
	}
	for _, id := range ids {
		stats.LoadedRecords += meta.PartitionCount(id)
		stats.LoadedBytes += meta.PartitionBytes(id)
	}
	sp := s.ctx.StartSpan(trace.SpanSelect,
		trace.Str("dataset", meta.Name),
		trace.Int("total_partitions", int64(stats.TotalPartitions)),
		trace.Int("kept_partitions", int64(stats.LoadedPartitions)),
		trace.Int("loaded_records", stats.LoadedRecords),
		trace.Int("loaded_bytes", stats.LoadedBytes))
	if len(ids) == 0 {
		sp.End(trace.Int("selected", 0))
		return engine.FromPartitions(s.ctx, "selected:empty", [][]T{}), stats, nil
	}

	// Stage 1: parallel load + parse + filter, traced under the select span.
	// Decoding errors surface as task panics; convert to an error at the
	// driver.
	var winBoxes []index.Box
	if blockPrune && len(windows) > 0 {
		winBoxes = make([]index.Box, len(windows))
		for i, w := range windows {
			winBoxes[i] = w.Box()
		}
	}
	// Block counters accumulate across concurrent load tasks; under
	// retries/speculation (off by default) an attempt may be counted twice,
	// same as the partition:read spans.
	var blocksTotal, blocksScanned, blocksPruned, rawBytes, recordsPruned atomic.Int64
	var deltaFiles, deltasRead, deltasPruned, deltaRecords atomic.Int64
	sctx := s.ctx.WithSpan(sp)
	loaded := engine.Generate(sctx, "load:"+meta.Name, len(ids), func(p int) []T {
		rsp := sctx.StartSpan(trace.SpanPartitionRead, trace.Int("partition", int64(ids[p])))
		recs, rst, err := storage.ReadPartitionPruned(dir, meta, ids[p], s.c, winBoxes)
		if err != nil {
			rsp.End(trace.Str("error", err.Error()))
			panic(err)
		}
		blocksTotal.Add(int64(rst.Blocks))
		blocksScanned.Add(int64(rst.BlocksScanned))
		blocksPruned.Add(int64(rst.BlocksPruned))
		rawBytes.Add(rst.RawBytes)
		recordsPruned.Add(rst.RecordsPruned)
		sctx.Metrics.AddBlockRead(int64(rst.BlocksScanned), int64(rst.BlocksPruned), rst.RawBytes)
		if rst.RecordsPruned > 0 {
			sctx.Metrics.AddRecordsPruned(rst.RecordsPruned)
		}
		if rst.DeltaFiles > 0 {
			// Merge-on-read happened: record it as its own span so Explain
			// can attribute the unioned files and records.
			deltaFiles.Add(int64(rst.DeltaFiles))
			deltasRead.Add(int64(rst.DeltasRead))
			deltasPruned.Add(int64(rst.DeltasPruned))
			deltaRecords.Add(rst.DeltaRecords)
			sctx.Metrics.AddDeltaRead(int64(rst.DeltasRead), rst.DeltaRecords)
			dsp := sctx.StartSpan(trace.SpanDeltaRead,
				trace.Int("partition", int64(ids[p])),
				trace.Int("files", int64(rst.DeltasRead)),
				trace.Int("pruned", int64(rst.DeltasPruned)),
				trace.Int("records", rst.DeltaRecords))
			dsp.End()
		}
		out := s.filterPartition(sctx, recs, windows)
		rsp.End(trace.Int("records", int64(len(recs))),
			trace.Int("bytes", meta.PartitionBytes(ids[p])),
			trace.Int("blocks", int64(rst.Blocks)),
			trace.Int("blocks_scanned", int64(rst.BlocksScanned)),
			trace.Int("blocks_pruned", int64(rst.BlocksPruned)),
			trace.Int("raw_bytes", rst.RawBytes),
			trace.Int("records_pruned", rst.RecordsPruned),
			trace.Int("selected", int64(len(out))))
		return out
	})
	selected, err := materialize(loaded)
	if err != nil {
		sp.End(trace.Str("error", err.Error()))
		return nil, stats, err
	}
	stats.SelectedRecords = selected.Count()
	stats.BlocksTotal = blocksTotal.Load()
	stats.BlocksScanned = blocksScanned.Load()
	stats.BlocksPruned = blocksPruned.Load()
	stats.DecompressedBytes = rawBytes.Load()
	stats.RecordsPruned = recordsPruned.Load()
	stats.DeltaFiles = deltaFiles.Load()
	stats.DeltasRead = deltasRead.Load()
	stats.DeltasPruned = deltasPruned.Load()
	stats.DeltaRecords = deltaRecords.Load()

	// Stage 2: ST partitioning for load balance (skipped without planner).
	if s.cfg.Planner != nil {
		repartitioned, _ := partition.ByPlanner(selected, s.c, s.boxOf, s.cfg.Planner,
			partition.Options{
				SampleFrac: s.cfg.SampleFrac,
				Seed:       s.cfg.Seed,
				Duplicate:  s.cfg.Duplicate,
			})
		selected = repartitioned
	}
	sp.End(trace.Int("selected", stats.SelectedRecords))
	return selected, stats, nil
}

// filterPartition applies the window predicate to one decoded partition,
// through an on-the-fly R-tree when configured. ctx carries the trace scope
// of the enclosing selection.
func (s *Selector[T]) filterPartition(ctx *engine.Context, recs []T, windows []Window) []T {
	if len(windows) == 0 {
		return recs
	}
	if !s.cfg.Index {
		out := make([]T, 0, len(recs)/2)
		for _, rec := range recs {
			if s.matches(rec, windows) {
				out = append(out, rec)
			}
		}
		return out
	}
	items := make([]index.Item[int], len(recs))
	for i, rec := range recs {
		items[i] = index.Item[int]{Box: s.boxOf(rec), Data: i}
	}
	bsp := ctx.StartSpan(trace.SpanRTreeBuild, trace.Int("items", int64(len(items))))
	tree := index.BulkLoadSTR(items, 16)
	bsp.End()
	hit := make([]bool, len(recs))
	for _, w := range windows {
		tree.SearchFunc(w.Box(), func(i int, _ index.Box) bool {
			if !hit[i] && (s.exact == nil || s.exact(recs[i], w.Space, w.Time)) {
				hit[i] = true
			}
			return true
		})
	}
	out := make([]T, 0, len(recs)/2)
	for i, h := range hit {
		if h {
			out = append(out, recs[i])
		}
	}
	return out
}

func (s *Selector[T]) matches(rec T, windows []Window) bool {
	b := s.boxOf(rec)
	for _, w := range windows {
		if b.Intersects(w.Box()) {
			if s.exact == nil || s.exact(rec, w.Space, w.Time) {
				return true
			}
		}
	}
	return false
}

// materialize caches the RDD and converts a load-task panic (bad file,
// corrupt partition) into an error.
func materialize[T any](r *engine.RDD[T]) (rdd *engine.RDD[T], err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("selection: load failed: %v", rec)
		}
	}()
	cached := r.Cache()
	cached.Count() // force
	return cached, nil
}
