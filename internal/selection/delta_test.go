package selection

import (
	"math/rand"
	"testing"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/storage"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

// TestSelectPrunedMergesDeltas pins the selection stage's view of the
// delta layer: SelectPruned over a store grown by appends returns exactly
// what a brute-force scan of base+appended records returns, the delta
// stats are populated, and a delta:read span lands in the trace.
func TestSelectPrunedMergesDeltas(t *testing.T) {
	tr := trace.New()
	ctx := engine.New(engine.Config{Slots: 4, Tracer: tr})
	dir := t.TempDir()
	data := corpus(t, ctx, dir, 2000, 5)

	rng := rand.New(rand.NewSource(6))
	extra := make([]ev, 500)
	for i := range extra {
		extra[i] = ev{
			P: geom.Pt(rng.Float64()*100, rng.Float64()*100),
			T: rng.Int63n(86400),
			N: int64(10_000 + i),
		}
	}
	if _, err := storage.AppendDelta(dir, evC, extra, evBox, storage.AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	all := append(append([]ev{}, data...), extra...)

	sel := New(ctx, evC, evBox, nil, Config{})
	windows := []Window{
		{Space: geom.Box(0, 0, 100, 100), Time: tempo.New(0, 86400)},
		{Space: geom.Box(20, 20, 60, 45), Time: tempo.New(10_000, 50_000)},
	}
	for i, w := range windows {
		rdd, st, err := sel.SelectPruned(dir, w)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(ids(rdd.Collect()), bruteSelect(all, []Window{w})) {
			t.Fatalf("window %d: merged selection diverges from brute force", i)
		}
		if st.DeltasRead == 0 || st.DeltaRecords == 0 {
			t.Fatalf("window %d: delta stats empty: %+v", i, st)
		}
		if st.DeltasRead+st.DeltasPruned != st.DeltaFiles {
			t.Fatalf("window %d: read %d + pruned %d != files %d",
				i, st.DeltasRead, st.DeltasPruned, st.DeltaFiles)
		}
		// LoadedRecords sizing must account the live view (base + deltas),
		// never less than what was actually returned.
		if st.LoadedRecords < st.SelectedRecords {
			t.Fatalf("window %d: loaded %d < selected %d", i, st.LoadedRecords, st.SelectedRecords)
		}
	}
	found := false
	for _, s := range tr.Snapshot() {
		if s.Name == trace.SpanDeltaRead {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no delta:read span recorded")
	}
	if m := ctx.Metrics.Snapshot(); m.DeltasRead == 0 || m.DeltaRecords == 0 {
		t.Fatalf("engine delta counters empty: %+v", m)
	}

	// After compaction the same selections still agree and read no deltas.
	if _, err := storage.Compact(dir, evC, evBox, storage.CompactOptions{MinDeltas: 1, GCGrace: 0}); err != nil {
		t.Fatal(err)
	}
	for i, w := range windows {
		rdd, st, err := sel.SelectPruned(dir, w)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(ids(rdd.Collect()), bruteSelect(all, []Window{w})) {
			t.Fatalf("window %d: post-compaction selection diverges", i)
		}
		if st.DeltaFiles != 0 {
			t.Fatalf("window %d: %d delta files survive compaction", i, st.DeltaFiles)
		}
	}
}
