package convert

import (
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

// Collective→singular and collective→collective conversions (§3.2.2). All
// are local per-instance operations — no shuffle.

// SpatialMapToValues flattens the cell values of every spatial map in the
// RDD — the collective→singular conversion when V is Array[SI].
func SpatialMapToValues[S geom.Geometry, E, D any](
	r *engine.RDD[instance.SpatialMap[S, []E, D]],
) *engine.RDD[E] {
	return engine.FlatMap(r, func(sm instance.SpatialMap[S, []E, D]) []E {
		var out []E
		for _, e := range sm.Entries {
			out = append(out, e.Value...)
		}
		return out
	})
}

// TimeSeriesToValues flattens the slot values of every time series.
func TimeSeriesToValues[E, D any](
	r *engine.RDD[instance.TimeSeries[[]E, D]],
) *engine.RDD[E] {
	return engine.FlatMap(r, func(ts instance.TimeSeries[[]E, D]) []E {
		var out []E
		for _, e := range ts.Entries {
			out = append(out, e.Value...)
		}
		return out
	})
}

// RasterToValues flattens the cell values of every raster.
func RasterToValues[S geom.Geometry, E, D any](
	r *engine.RDD[instance.Raster[S, []E, D]],
) *engine.RDD[E] {
	return engine.FlatMap(r, func(ra instance.Raster[S, []E, D]) []E {
		var out []E
		for _, e := range ra.Entries {
			out = append(out, e.Value...)
		}
		return out
	})
}

// RasterToTimeSeries collapses a raster's cells by their temporal slot,
// combining co-slot values with merge — per instance, in parallel.
func RasterToTimeSeries[S geom.Geometry, V, D any](
	r *engine.RDD[instance.Raster[S, V, D]],
	merge func(V, V) V,
) *engine.RDD[instance.TimeSeries[V, D]] {
	return engine.Map(r, func(ra instance.Raster[S, V, D]) instance.TimeSeries[V, D] {
		type slotAgg struct {
			value V
			set   bool
		}
		order := []tempo.Duration{}
		agg := map[tempo.Duration]*slotAgg{}
		extent := geom.EmptyMBR()
		for _, e := range ra.Entries {
			extent = extent.Union(e.Spatial.MBR())
			a, ok := agg[e.Temporal]
			if !ok {
				a = &slotAgg{}
				agg[e.Temporal] = a
				order = append(order, e.Temporal)
			}
			if a.set {
				a.value = merge(a.value, e.Value)
			} else {
				a.value, a.set = e.Value, true
			}
		}
		slots := make([]tempo.Duration, len(order))
		values := make([]V, len(order))
		copy(slots, order)
		for i, s := range order {
			values[i] = agg[s].value
		}
		ts := instance.NewTimeSeries(slots, values, extent, ra.Data)
		return ts
	})
}

// RasterToSpatialMap collapses a raster's cells by their spatial shape
// (keyed by MBR), combining co-located values with merge.
func RasterToSpatialMap[S geom.Geometry, V, D any](
	r *engine.RDD[instance.Raster[S, V, D]],
	merge func(V, V) V,
) *engine.RDD[instance.SpatialMap[S, V, D]] {
	return engine.Map(r, func(ra instance.Raster[S, V, D]) instance.SpatialMap[S, V, D] {
		type cellAgg struct {
			shape S
			value V
			set   bool
		}
		var order []geom.MBR
		agg := map[geom.MBR]*cellAgg{}
		for _, e := range ra.Entries {
			key := e.Spatial.MBR()
			a, ok := agg[key]
			if !ok {
				a = &cellAgg{shape: e.Spatial}
				agg[key] = a
				order = append(order, key)
			}
			if a.set {
				a.value = merge(a.value, e.Value)
			} else {
				a.value, a.set = e.Value, true
			}
		}
		cells := make([]S, len(order))
		values := make([]V, len(order))
		for i, k := range order {
			cells[i] = agg[k].shape
			values[i] = agg[k].value
		}
		return instance.NewSpatialMap(cells, values, ra.Data)
	})
}

// SpatialMapToRaster expands a spatial map into a raster with a single time
// slot spanning dur for every cell — the general spatial-map→raster rule of
// §3.2.2.
func SpatialMapToRaster[S geom.Geometry, V, D any](
	r *engine.RDD[instance.SpatialMap[S, V, D]],
	dur tempo.Duration,
) *engine.RDD[instance.Raster[S, V, D]] {
	return engine.Map(r, func(sm instance.SpatialMap[S, V, D]) instance.Raster[S, V, D] {
		cells := make([]S, len(sm.Entries))
		slots := make([]tempo.Duration, len(sm.Entries))
		values := make([]V, len(sm.Entries))
		for i, e := range sm.Entries {
			cells[i] = e.Spatial
			slots[i] = dur
			values[i] = e.Value
		}
		return instance.NewRaster(cells, slots, values, sm.Data)
	})
}

// TimeSeriesToRaster expands a time series into a raster whose cells all
// share the given spatial extent.
func TimeSeriesToRaster[V, D any](
	r *engine.RDD[instance.TimeSeries[V, D]],
	extent geom.MBR,
) *engine.RDD[instance.Raster[geom.MBR, V, D]] {
	return engine.Map(r, func(ts instance.TimeSeries[V, D]) instance.Raster[geom.MBR, V, D] {
		cells := make([]geom.MBR, len(ts.Entries))
		slots := make([]tempo.Duration, len(ts.Entries))
		values := make([]V, len(ts.Entries))
		for i, e := range ts.Entries {
			cells[i] = extent
			slots[i] = e.Temporal
			values[i] = e.Value
		}
		return instance.NewRaster(cells, slots, values, ts.Data)
	})
}
