package convert

import (
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

// Singular→collective conversions. Each partition of singular instances is
// allocated against the broadcast structure and aggregated per cell with
// the user's agg function, producing one partial collective instance per
// partition (no shuffle — the design of §3.2.2). Driver-side merging lives
// in package extract (CollectAndMerge).

// allocateLocal buckets local record indices into structure cells: for each
// record, candidate cells come from cand and are refined by exact (nil
// means candidates are exact already).
func allocateLocal[T any](
	recs []T,
	boxOf func(T) index.Box,
	cand candidates,
	exact func(T, int) bool,
	nCells int,
) [][]int32 {
	cells := make([][]int32, nCells)
	for i, rec := range recs {
		b := boxOf(rec)
		cand(b, func(c int) {
			if exact == nil || exact(rec, c) {
				cells[c] = append(cells[c], int32(i))
			}
		})
	}
	return cells
}

// gather materializes the records of one cell.
func gather[T any](recs []T, idx []int32) []T {
	if len(idx) == 0 {
		return nil
	}
	out := make([]T, len(idx))
	for i, j := range idx {
		out[i] = recs[j]
	}
	return out
}

// broadcastStructure charges the broadcast metric for shipping a structure
// of n cells to every executor.
func broadcastStructure(ctx *engine.Context, n int) {
	const approxCellBytes = 48
	engine.Broadcast(ctx, struct{}{}, int64(n)*approxCellBytes)
}

// EventToTimeSeries allocates events into time slots and aggregates each
// slot with agg (called for every slot, with nil for empty ones).
func EventToTimeSeries[S geom.Geometry, V, D, U any](
	r *engine.RDD[instance.Event[S, V, D]],
	tgt TSTarget,
	m Method,
	agg func([]instance.Event[S, V, D]) U,
) *engine.RDD[instance.TimeSeries[U, instance.Unit]] {
	cand := tsCandidates(r.Ctx(), tgt, m)
	broadcastStructure(r.Ctx(), len(tgt.Slots))
	slots := tgt.Slots
	exact := func(e instance.Event[S, V, D], c int) bool {
		return slots[c].Intersects(e.Entry.Temporal)
	}
	return engine.MapPartitions(r, func(_ int, in []instance.Event[S, V, D]) []instance.TimeSeries[U, instance.Unit] {
		cells := allocateLocal(in, instance.Event[S, V, D].Box, cand, exact, len(slots))
		values := make([]U, len(slots))
		for c := range values {
			values[c] = agg(gather(in, cells[c]))
		}
		return []instance.TimeSeries[U, instance.Unit]{
			instance.NewTimeSeries(slots, values, geom.EmptyMBR(), instance.Unit{}),
		}
	})
}

// TrajToTimeSeries allocates trajectories into every slot their duration
// overlaps and aggregates per slot.
func TrajToTimeSeries[V, D, U any](
	r *engine.RDD[instance.Trajectory[V, D]],
	tgt TSTarget,
	m Method,
	agg func([]instance.Trajectory[V, D]) U,
) *engine.RDD[instance.TimeSeries[U, instance.Unit]] {
	cand := tsCandidates(r.Ctx(), tgt, m)
	broadcastStructure(r.Ctx(), len(tgt.Slots))
	slots := tgt.Slots
	exact := func(tr instance.Trajectory[V, D], c int) bool {
		return slots[c].Intersects(tr.Duration())
	}
	return engine.MapPartitions(r, func(_ int, in []instance.Trajectory[V, D]) []instance.TimeSeries[U, instance.Unit] {
		cells := allocateLocal(in, instance.Trajectory[V, D].Box, cand, exact, len(slots))
		values := make([]U, len(slots))
		for c := range values {
			values[c] = agg(gather(in, cells[c]))
		}
		return []instance.TimeSeries[U, instance.Unit]{
			instance.NewTimeSeries(slots, values, geom.EmptyMBR(), instance.Unit{}),
		}
	})
}

// EventToSpatialMap allocates events into spatial cells and aggregates per
// cell.
func EventToSpatialMap[SC geom.Geometry, S geom.Geometry, V, D, U any](
	r *engine.RDD[instance.Event[S, V, D]],
	tgt SMTarget[SC],
	m Method,
	agg func([]instance.Event[S, V, D]) U,
) *engine.RDD[instance.SpatialMap[SC, U, instance.Unit]] {
	cand := smCandidates(r.Ctx(), tgt, m)
	broadcastStructure(r.Ctx(), len(tgt.Cells))
	cells := tgt.Cells
	exact := func(e instance.Event[S, V, D], c int) bool {
		return geom.GeometriesIntersect(e.Entry.Spatial, cells[c])
	}
	return engine.MapPartitions(r, func(_ int, in []instance.Event[S, V, D]) []instance.SpatialMap[SC, U, instance.Unit] {
		buckets := allocateLocal(in, instance.Event[S, V, D].Box, cand, exact, len(cells))
		values := make([]U, len(cells))
		for c := range values {
			values[c] = agg(gather(in, buckets[c]))
		}
		return []instance.SpatialMap[SC, U, instance.Unit]{
			instance.NewSpatialMap(cells, values, instance.Unit{}),
		}
	})
}

// TrajToSpatialMap allocates trajectories into every spatial cell a segment
// passes through and aggregates per cell.
func TrajToSpatialMap[SC geom.Geometry, V, D, U any](
	r *engine.RDD[instance.Trajectory[V, D]],
	tgt SMTarget[SC],
	m Method,
	agg func([]instance.Trajectory[V, D]) U,
) *engine.RDD[instance.SpatialMap[SC, U, instance.Unit]] {
	cand := smCandidates(r.Ctx(), tgt, m)
	broadcastStructure(r.Ctx(), len(tgt.Cells))
	cells := tgt.Cells
	exact := func(tr instance.Trajectory[V, D], c int) bool {
		return trajIntersectsCell(tr, cells[c], tempo.Empty())
	}
	return engine.MapPartitions(r, func(_ int, in []instance.Trajectory[V, D]) []instance.SpatialMap[SC, U, instance.Unit] {
		buckets := allocateLocal(in, instance.Trajectory[V, D].Box, cand, exact, len(cells))
		values := make([]U, len(cells))
		for c := range values {
			values[c] = agg(gather(in, buckets[c]))
		}
		return []instance.SpatialMap[SC, U, instance.Unit]{
			instance.NewSpatialMap(cells, values, instance.Unit{}),
		}
	})
}

// EventToRaster allocates events into ST raster cells and aggregates per
// cell.
func EventToRaster[SC geom.Geometry, S geom.Geometry, V, D, U any](
	r *engine.RDD[instance.Event[S, V, D]],
	tgt RasterTarget[SC],
	m Method,
	agg func([]instance.Event[S, V, D]) U,
) *engine.RDD[instance.Raster[SC, U, instance.Unit]] {
	cand := rasterCandidates(r.Ctx(), tgt, m)
	broadcastStructure(r.Ctx(), len(tgt.Cells))
	cells, slots := tgt.Cells, tgt.Slots
	exact := func(e instance.Event[S, V, D], c int) bool {
		return slots[c].Intersects(e.Entry.Temporal) &&
			geom.GeometriesIntersect(e.Entry.Spatial, cells[c])
	}
	return engine.MapPartitions(r, func(_ int, in []instance.Event[S, V, D]) []instance.Raster[SC, U, instance.Unit] {
		buckets := allocateLocal(in, instance.Event[S, V, D].Box, cand, exact, len(cells))
		values := make([]U, len(cells))
		for c := range values {
			values[c] = agg(gather(in, buckets[c]))
		}
		return []instance.Raster[SC, U, instance.Unit]{
			instance.NewRaster(cells, slots, values, instance.Unit{}),
		}
	})
}

// TrajToRaster allocates trajectories into every ST cell a segment passes
// through during the cell's slot, and aggregates per cell.
func TrajToRaster[SC geom.Geometry, V, D, U any](
	r *engine.RDD[instance.Trajectory[V, D]],
	tgt RasterTarget[SC],
	m Method,
	agg func([]instance.Trajectory[V, D]) U,
) *engine.RDD[instance.Raster[SC, U, instance.Unit]] {
	cand := rasterCandidates(r.Ctx(), tgt, m)
	broadcastStructure(r.Ctx(), len(tgt.Cells))
	cells, slots := tgt.Cells, tgt.Slots
	exact := func(tr instance.Trajectory[V, D], c int) bool {
		return trajIntersectsCell(tr, cells[c], slots[c])
	}
	return engine.MapPartitions(r, func(_ int, in []instance.Trajectory[V, D]) []instance.Raster[SC, U, instance.Unit] {
		buckets := allocateLocal(in, instance.Trajectory[V, D].Box, cand, exact, len(cells))
		values := make([]U, len(cells))
		for c := range values {
			values[c] = agg(gather(in, buckets[c]))
		}
		return []instance.Raster[SC, U, instance.Unit]{
			instance.NewRaster(cells, slots, values, instance.Unit{}),
		}
	})
}

// trajIntersectsCell reports whether any trajectory segment passes through
// the cell geometry while overlapping the slot (an empty slot means
// time-unconstrained). Segment timing is the union of its endpoint
// intervals.
func trajIntersectsCell[V, D any](tr instance.Trajectory[V, D], cell geom.Geometry, slot tempo.Duration) bool {
	timeOK := func(d tempo.Duration) bool {
		return slot.IsEmpty() || slot.Intersects(d)
	}
	if len(tr.Entries) == 1 {
		e := tr.Entries[0]
		return timeOK(e.Temporal) && geom.GeometriesIntersect(e.Spatial, cell)
	}
	for i := 1; i < len(tr.Entries); i++ {
		a, b := tr.Entries[i-1], tr.Entries[i]
		if !timeOK(a.Temporal.Union(b.Temporal)) {
			continue
		}
		if segmentIntersectsGeometry(a.Spatial, b.Spatial, cell) {
			return true
		}
	}
	return false
}

// segmentIntersectsGeometry dispatches the exact segment-cell test by cell
// shape.
func segmentIntersectsGeometry(a, b geom.Point, cell geom.Geometry) bool {
	switch g := cell.(type) {
	case geom.MBR:
		return geom.SegmentIntersectsBox(a, b, g)
	case *geom.Polygon:
		return g.IntersectsSegment(a, b)
	case geom.Point:
		return geom.PointSegmentDistance(g, a, b) == 0
	default:
		// Conservative: box-level test against the cell's MBR.
		return geom.SegmentIntersectsBox(a, b, cell.MBR())
	}
}
