package convert

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

type pev = instance.Event[geom.Point, instance.Unit, int64]
type ptraj = instance.Trajectory[instance.Unit, int64]

func testCtx() *engine.Context { return engine.New(engine.Config{Slots: 4}) }

func randomEvents(rng *rand.Rand, n int) []pev {
	out := make([]pev, n)
	for i := range out {
		out[i] = instance.NewEvent(
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
			tempo.Instant(rng.Int63n(86400)),
			instance.Unit{}, int64(i))
	}
	return out
}

func randomTrajs(rng *rand.Rand, n int) []ptraj {
	out := make([]ptraj, n)
	for i := range out {
		m := 2 + rng.Intn(8)
		entries := make([]instance.Entry[geom.Point, instance.Unit], m)
		x, y := rng.Float64()*100, rng.Float64()*100
		t := rng.Int63n(80000)
		for j := range entries {
			entries[j] = instance.Entry[geom.Point, instance.Unit]{
				Spatial:  geom.Pt(x, y),
				Temporal: tempo.Instant(t),
			}
			x += rng.NormFloat64() * 2
			y += rng.NormFloat64() * 2
			t += 15 + rng.Int63n(30)
		}
		out[i] = instance.NewTrajectory(entries, int64(i))
	}
	return out
}

// countsOfTS extracts per-slot counts from the merged output of an
// EventToTimeSeries count conversion.
func mergeCounts[S geom.Geometry](parts []instance.TimeSeries[int64, instance.Unit]) []int64 {
	if len(parts) == 0 {
		return nil
	}
	out := make([]int64, parts[0].Len())
	for _, ts := range parts {
		for i, e := range ts.Entries {
			out[i] += e.Value
		}
	}
	return out
}

func countAgg[T any](in []T) int64 { return int64(len(in)) }

func TestEventToTimeSeriesMethodsAgree(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(1))
	events := randomEvents(rng, 2000)
	r := engine.Parallelize(ctx, events, 6)
	tgt := TimeGridTarget(instance.TimeGrid{Window: tempo.New(0, 86399), NT: 24})
	var results [][]int64
	for _, m := range []Method{Naive, Regular, RTree} {
		got := EventToTimeSeries(r, tgt, m, countAgg[pev]).Collect()
		results = append(results, mergeCounts[geom.MBR](got))
	}
	if !reflect.DeepEqual(results[0], results[1]) || !reflect.DeepEqual(results[0], results[2]) {
		t.Fatalf("methods disagree:\nnaive   %v\nregular %v\nrtree   %v",
			results[0], results[1], results[2])
	}
	var total int64
	for _, c := range results[0] {
		total += c
	}
	if total != 2000 {
		t.Errorf("instant events should land in exactly one slot each: %d", total)
	}
}

func TestEventToSpatialMapMethodsAgree(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(2))
	events := randomEvents(rng, 2000)
	r := engine.Parallelize(ctx, events, 6)
	tgt := SpatialGridTarget(instance.SpatialGrid{Extent: geom.Box(0, 0, 100, 100), NX: 10, NY: 10})
	var results [][]int64
	for _, m := range []Method{Naive, Regular, RTree} {
		parts := EventToSpatialMap(r, tgt, m, countAgg[pev]).Collect()
		counts := make([]int64, parts[0].Len())
		for _, sm := range parts {
			for i, e := range sm.Entries {
				counts[i] += e.Value
			}
		}
		results = append(results, counts)
	}
	if !reflect.DeepEqual(results[0], results[1]) || !reflect.DeepEqual(results[0], results[2]) {
		t.Fatal("spatial map methods disagree")
	}
}

func TestEventToSpatialMapIrregularPolygons(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(3))
	events := randomEvents(rng, 1000)
	r := engine.Parallelize(ctx, events, 4)
	// Irregular cells: two overlapping districts and one far away.
	cells := []*geom.Polygon{
		geom.Rect(geom.Box(0, 0, 60, 60)),
		geom.Rect(geom.Box(40, 40, 100, 100)),
		geom.Rect(geom.Box(500, 500, 600, 600)),
	}
	tgt := CellsTarget(cells)
	var results [][]int64
	for _, m := range []Method{Naive, RTree} {
		parts := EventToSpatialMap(r, tgt, m, countAgg[pev]).Collect()
		counts := make([]int64, 3)
		for _, sm := range parts {
			for i, e := range sm.Entries {
				counts[i] += e.Value
			}
		}
		results = append(results, counts)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("naive %v != rtree %v", results[0], results[1])
	}
	if results[0][2] != 0 {
		t.Errorf("far cell should be empty: %v", results[0])
	}
	// Overlap region counts into both districts.
	brute := make([]int64, 3)
	for _, e := range events {
		for i, c := range cells {
			if c.ContainsPoint(e.Entry.Spatial) {
				brute[i]++
			}
		}
	}
	if !reflect.DeepEqual(results[0], brute) {
		t.Fatalf("got %v, brute %v", results[0], brute)
	}
}

func TestEventToRasterMethodsAgree(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(4))
	events := randomEvents(rng, 1500)
	r := engine.Parallelize(ctx, events, 6)
	tgt := RasterGridTarget(instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: geom.Box(0, 0, 100, 100), NX: 5, NY: 5},
		Time:  instance.TimeGrid{Window: tempo.New(0, 86399), NT: 4},
	})
	var results [][]int64
	for _, m := range []Method{Naive, Regular, RTree} {
		parts := EventToRaster(r, tgt, m, countAgg[pev]).Collect()
		counts := make([]int64, parts[0].Len())
		for _, ra := range parts {
			for i, e := range ra.Entries {
				counts[i] += e.Value
			}
		}
		results = append(results, counts)
	}
	if !reflect.DeepEqual(results[0], results[1]) || !reflect.DeepEqual(results[0], results[2]) {
		t.Fatal("raster methods disagree")
	}
}

func TestTrajToCollectiveMethodsAgree(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(5))
	trajs := randomTrajs(rng, 300)
	r := engine.Parallelize(ctx, trajs, 4)

	tsTgt := TimeGridTarget(instance.TimeGrid{Window: tempo.New(0, 86399), NT: 12})
	smTgt := SpatialGridTarget(instance.SpatialGrid{Extent: geom.Box(-20, -20, 120, 120), NX: 7, NY: 7})
	raTgt := RasterGridTarget(instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: geom.Box(-20, -20, 120, 120), NX: 4, NY: 4},
		Time:  instance.TimeGrid{Window: tempo.New(0, 86399), NT: 3},
	})

	sum := func(parts [][]int64) []int64 {
		out := make([]int64, len(parts[0]))
		for _, p := range parts {
			for i, v := range p {
				out[i] += v
			}
		}
		return out
	}
	tsCounts := func(m Method) []int64 {
		var all [][]int64
		for _, ts := range TrajToTimeSeries(r, tsTgt, m, countAgg[ptraj]).Collect() {
			row := make([]int64, ts.Len())
			for i, e := range ts.Entries {
				row[i] = e.Value
			}
			all = append(all, row)
		}
		return sum(all)
	}
	smCounts := func(m Method) []int64 {
		var all [][]int64
		for _, sm := range TrajToSpatialMap(r, smTgt, m, countAgg[ptraj]).Collect() {
			row := make([]int64, sm.Len())
			for i, e := range sm.Entries {
				row[i] = e.Value
			}
			all = append(all, row)
		}
		return sum(all)
	}
	raCounts := func(m Method) []int64 {
		var all [][]int64
		for _, ra := range TrajToRaster(r, raTgt, m, countAgg[ptraj]).Collect() {
			row := make([]int64, ra.Len())
			for i, e := range ra.Entries {
				row[i] = e.Value
			}
			all = append(all, row)
		}
		return sum(all)
	}

	for name, f := range map[string]func(Method) []int64{
		"ts": tsCounts, "sm": smCounts, "raster": raCounts,
	} {
		naive := f(Naive)
		regular := f(Regular)
		rtree := f(RTree)
		if !reflect.DeepEqual(naive, regular) {
			t.Errorf("%s: naive != regular\n%v\n%v", name, naive, regular)
		}
		if !reflect.DeepEqual(naive, rtree) {
			t.Errorf("%s: naive != rtree\n%v\n%v", name, naive, rtree)
		}
	}
}

func TestTrajSpatialExactness(t *testing.T) {
	// A diagonal trajectory must not count into grid cells its MBR covers
	// but its segments miss.
	ctx := testCtx()
	entries := []instance.Entry[geom.Point, instance.Unit]{
		{Spatial: geom.Pt(0.5, 0.5), Temporal: tempo.Instant(0)},
		{Spatial: geom.Pt(9.5, 9.5), Temporal: tempo.Instant(100)},
	}
	tr := instance.NewTrajectory(entries, int64(1))
	r := engine.Parallelize(ctx, []ptraj{tr}, 1)
	tgt := SpatialGridTarget(instance.SpatialGrid{Extent: geom.Box(0, 0, 10, 10), NX: 2, NY: 2})
	parts := TrajToSpatialMap(r, tgt, Auto, countAgg[ptraj]).Collect()
	counts := make([]int64, 4)
	for _, sm := range parts {
		for i, e := range sm.Entries {
			counts[i] += e.Value
		}
	}
	// Cells 0 (SW) and 3 (NE) hit; the diagonal touches (5,5), the shared
	// corner of all four cells, so 1 and 2 may legitimately register a
	// touch. At minimum the diagonal cells must count.
	if counts[0] != 1 || counts[3] != 1 {
		t.Errorf("diagonal cells missed: %v", counts)
	}
}

func TestTrajectoriesEventsRoundTrip(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(6))
	trajs := randomTrajs(rng, 100)
	r := engine.Parallelize(ctx, trajs, 4)
	events := TrajectoriesToEvents(r)
	var totalPoints int64
	for _, tr := range trajs {
		totalPoints += int64(tr.Len())
	}
	if got := events.Count(); got != totalPoints {
		t.Fatalf("events = %d, want %d", got, totalPoints)
	}
	back := EventsToTrajectories(events, codec.Int64, instance.UnitC, 8)
	got := back.Collect()
	if len(got) != len(trajs) {
		t.Fatalf("round trip trajectories = %d, want %d", len(got), len(trajs))
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Data < got[j].Data })
	for i, tr := range got {
		orig := trajs[tr.Data]
		if tr.Len() != orig.Len() {
			t.Fatalf("traj %d has %d points, want %d", i, tr.Len(), orig.Len())
		}
		for j := range tr.Entries {
			if tr.Entries[j].Temporal != orig.Entries[j].Temporal {
				t.Fatalf("traj %d entry %d time mismatch", i, j)
			}
		}
	}
}

func TestCollectiveFlattening(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(7))
	events := randomEvents(rng, 500)
	r := engine.Parallelize(ctx, events, 4)
	tgt := SpatialGridTarget(instance.SpatialGrid{Extent: geom.Box(0, 0, 100, 100), NX: 4, NY: 4})
	// Collect events per cell, then flatten back out.
	sm := EventToSpatialMap(r, tgt, Auto, func(in []pev) []pev { return in })
	back := SpatialMapToValues(sm)
	if got := back.Count(); got != 500 {
		t.Errorf("flattened = %d, want 500", got)
	}
}

func TestRasterCollapses(t *testing.T) {
	ctx := testCtx()
	g := instance.RasterGrid{
		Space: instance.SpatialGrid{Extent: geom.Box(0, 0, 2, 1), NX: 2, NY: 1},
		Time:  instance.TimeGrid{Window: tempo.New(0, 19), NT: 2},
	}
	cells, slots := g.Build()
	// Values: cell index itself for easy checks.
	values := []int64{1, 2, 10, 20}
	ra := instance.NewRaster(cells, slots, values, instance.Unit{})
	r := engine.Parallelize(ctx, []instance.Raster[geom.MBR, int64, instance.Unit]{ra}, 1)

	add := func(a, b int64) int64 { return a + b }
	ts := RasterToTimeSeries(r, add).Collect()[0]
	if ts.Len() != 2 || ts.Entries[0].Value != 3 || ts.Entries[1].Value != 30 {
		t.Errorf("RasterToTimeSeries = %+v", ts.Entries)
	}
	sm := RasterToSpatialMap(r, add).Collect()[0]
	if sm.Len() != 2 || sm.Entries[0].Value != 11 || sm.Entries[1].Value != 22 {
		t.Errorf("RasterToSpatialMap = %+v", sm.Entries)
	}
}

func TestSpatialMapTimeSeriesToRaster(t *testing.T) {
	ctx := testCtx()
	sm := instance.NewSpatialMap(
		[]geom.MBR{geom.Box(0, 0, 1, 1), geom.Box(1, 0, 2, 1)},
		[]int64{5, 7}, instance.Unit{})
	rsm := engine.Parallelize(ctx, []instance.SpatialMap[geom.MBR, int64, instance.Unit]{sm}, 1)
	ra := SpatialMapToRaster(rsm, tempo.New(0, 99)).Collect()[0]
	if ra.Len() != 2 || ra.Entries[0].Temporal != tempo.New(0, 99) {
		t.Errorf("SpatialMapToRaster = %+v", ra.Entries)
	}

	ts := instance.NewTimeSeries(tempo.New(0, 99).Split(2), []int64{1, 2}, geom.Box(0, 0, 5, 5), instance.Unit{})
	rts := engine.Parallelize(ctx, []instance.TimeSeries[int64, instance.Unit]{ts}, 1)
	ra2 := TimeSeriesToRaster(rts, geom.Box(0, 0, 5, 5)).Collect()[0]
	if ra2.Len() != 2 || ra2.Entries[1].Spatial != geom.Box(0, 0, 5, 5) {
		t.Errorf("TimeSeriesToRaster = %+v", ra2.Entries)
	}
}

func TestEmptyInputConversions(t *testing.T) {
	ctx := testCtx()
	r := engine.Parallelize(ctx, []pev{}, 3)
	tgt := TimeGridTarget(instance.TimeGrid{Window: tempo.New(0, 99), NT: 4})
	parts := EventToTimeSeries(r, tgt, Auto, countAgg[pev]).Collect()
	if len(parts) != 3 {
		t.Fatalf("partial instances = %d", len(parts))
	}
	for _, ts := range parts {
		for _, e := range ts.Entries {
			if e.Value != 0 {
				t.Error("empty input should produce zero counts")
			}
		}
	}
}

func TestNaiveMatchesBruteForceEventTS(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(8))
	events := randomEvents(rng, 800)
	r := engine.Parallelize(ctx, events, 4)
	slots := tempo.New(0, 86399).Split(7) // irregular-ish split counts
	tgt := SlotsTarget(slots)
	parts := EventToTimeSeries(r, tgt, Naive, countAgg[pev]).Collect()
	got := mergeCounts[geom.MBR](parts)
	want := make([]int64, len(slots))
	for _, e := range events {
		for i, s := range slots {
			if s.Intersects(e.Entry.Temporal) {
				want[i]++
			}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
