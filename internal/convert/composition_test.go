package convert

import (
	"testing"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

// TestSpatialMapToTimeSeriesComposition covers the paper's §3.2.2
// concatenation example: a spatial map holding Array[Event] converts to a
// time series via spatial-map-to-event followed by event-to-time-series.
func TestSpatialMapToTimeSeriesComposition(t *testing.T) {
	ctx := testCtx()
	// Events in two spatial cells and two hours.
	var events []pev
	for i := 0; i < 40; i++ {
		x := float64(i%2) + 0.5 // cell 0 or 1
		tm := int64(i%2)*3600 + int64(i)
		events = append(events, instance.NewEvent(
			geom.Pt(x, 0.5), tempo.Instant(tm), instance.Unit{}, int64(i)))
	}
	r := engine.Parallelize(ctx, events, 3)

	// First conversion: events into a 2-cell spatial map collecting them.
	smTgt := SpatialGridTarget(instance.SpatialGrid{Extent: geom.Box(0, 0, 2, 1), NX: 2, NY: 1})
	sm := EventToSpatialMap(r, smTgt, Auto, func(in []pev) []pev { return in })

	// Second conversion: flatten the map back to events, then into hourly
	// slots.
	flat := SpatialMapToValues(sm)
	tsTgt := TimeGridTarget(instance.TimeGrid{Window: tempo.New(0, 7199), NT: 2})
	ts := EventToTimeSeries(flat, tsTgt, Auto, func(in []pev) int64 { return int64(len(in)) })

	counts := make([]int64, 2)
	for _, part := range ts.Collect() {
		for i, e := range part.Entries {
			counts[i] += e.Value
		}
	}
	if counts[0] != 20 || counts[1] != 20 {
		t.Errorf("composed counts = %v, want [20 20]", counts)
	}
}

// TestMeshAsEvent covers the §3.2.1 flexibility claim: 3-d mesh data
// represents as an event whose spatial field is the projected footprint and
// whose value carries the mesh payload.
func TestMeshAsEvent(t *testing.T) {
	type mesh struct {
		Vertices [][3]float64
		Faces    [][3]int
	}
	m := mesh{
		Vertices: [][3]float64{{0, 0, 1}, {1, 0, 2}, {0, 1, 3}},
		Faces:    [][3]int{{0, 1, 2}},
	}
	// Projected footprint on the reference surface.
	footprint := geom.NewPolygon([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}})
	e := instance.NewEvent[geom.Geometry](footprint, tempo.Instant(100), m, "mesh-1")
	if e.Entry.Value.Faces[0] != [3]int{0, 1, 2} {
		t.Error("mesh payload lost")
	}
	if !e.Intersects(geom.Box(0, 0, 0.4, 0.4), tempo.New(50, 150)) {
		t.Error("mesh event should answer ST predicates via its footprint")
	}
	if e.Intersects(geom.Box(0.9, 0.9, 1, 1), tempo.New(50, 150)) {
		t.Error("footprint geometry should be exact, not MBR-level")
	}
}
