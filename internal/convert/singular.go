package convert

import (
	"st4ml/internal/codec"
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
)

// Singular→singular conversions (§3.2.2).

// TrajectoriesToEvents takes the sojourn points out of every trajectory —
// a pure flatMap, no shuffle. Each event inherits the trajectory's data.
func TrajectoriesToEvents[V any, D any](
	r *engine.RDD[instance.Trajectory[V, D]],
) *engine.RDD[instance.Event[geom.Point, V, D]] {
	return engine.FlatMap(r, func(tr instance.Trajectory[V, D]) []instance.Event[geom.Point, V, D] {
		out := make([]instance.Event[geom.Point, V, D], len(tr.Entries))
		for i, e := range tr.Entries {
			out[i] = instance.Event[geom.Point, V, D]{Entry: e, Data: tr.Data}
		}
		return out
	})
}

// EventsToTrajectories groups point events by their data field (the
// trajectory key) and orders them by time. It is implemented as the paper's
// map-side join: events are grouped locally within each partition first, so
// only one partial entry list per (partition, key) crosses the network,
// then partial lists merge on the reduce side.
func EventsToTrajectories[V any, K comparable](
	r *engine.RDD[instance.Event[geom.Point, V, K]],
	kc codec.Codec[K],
	vc codec.Codec[V],
	nOut int,
) *engine.RDD[instance.Trajectory[V, K]] {
	entryListC := codec.SliceOf(instance.EntryCodec(codec.PointC, vc))
	pairs := engine.Map(r, func(e instance.Event[geom.Point, V, K]) codec.Pair[K, []instance.Entry[geom.Point, V]] {
		return codec.KV(e.Data, []instance.Entry[geom.Point, V]{e.Entry})
	})
	merged := engine.ReduceByKey(pairs, kc, entryListC,
		func(a, b []instance.Entry[geom.Point, V]) []instance.Entry[geom.Point, V] {
			return append(a, b...)
		}, nOut)
	return engine.Map(merged, func(p codec.Pair[K, []instance.Entry[geom.Point, V]]) instance.Trajectory[V, K] {
		return instance.NewTrajectory(p.Value, p.Key)
	})
}
