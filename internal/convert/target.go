// Package convert implements ST4ML's Conversion stage (§3.2.2): reshaping
// data between the five ST instances. Singular→collective conversions
// allocate each event or trajectory to the cells of a broadcast collective
// structure, with three allocation strategies (§4.2):
//
//   - Naive: test every (record, cell) pair — the O(mn) Cartesian baseline
//     that Fig. 6 compares against.
//   - Regular: index arithmetic over a regular grid, O(m) per point record.
//   - RTree: a broadcast R-tree over the structure cells, O(m log n).
//
// Auto picks Regular when the target is a regular grid, else RTree.
package convert

import (
	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/index"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

// Method selects the allocation strategy for singular→collective
// conversions.
type Method int

const (
	// Auto uses Regular for regular-grid targets and RTree otherwise.
	Auto Method = iota
	// Naive iterates every (record, cell) pair.
	Naive
	// Regular derives candidate cells arithmetically; the target must be a
	// regular grid or the conversion falls back to RTree.
	Regular
	// RTree searches a broadcast R-tree over the cells.
	RTree
)

// String names the method for reports.
func (m Method) String() string {
	switch m {
	case Naive:
		return "naive"
	case Regular:
		return "regular"
	case RTree:
		return "rtree"
	default:
		return "auto"
	}
}

// TSTarget describes a time-series structure: its slots, and optionally the
// regular grid they came from (enabling the Regular method).
type TSTarget struct {
	Slots []tempo.Duration
	Grid  *instance.TimeGrid
}

// SlotsTarget wraps explicit (possibly irregular) slots.
func SlotsTarget(slots []tempo.Duration) TSTarget { return TSTarget{Slots: slots} }

// TimeGridTarget wraps a regular time grid.
func TimeGridTarget(g instance.TimeGrid) TSTarget {
	return TSTarget{Slots: g.Slots(), Grid: &g}
}

// SMTarget describes a spatial-map structure of cells with shape S, and
// optionally the regular grid they came from (S = geom.MBR).
type SMTarget[S geom.Geometry] struct {
	Cells []S
	Grid  *instance.SpatialGrid
}

// CellsTarget wraps explicit (possibly irregular) cells.
func CellsTarget[S geom.Geometry](cells []S) SMTarget[S] { return SMTarget[S]{Cells: cells} }

// SpatialGridTarget wraps a regular spatial grid.
func SpatialGridTarget(g instance.SpatialGrid) SMTarget[geom.MBR] {
	return SMTarget[geom.MBR]{Cells: g.Cells(), Grid: &g}
}

// RasterTarget describes a raster structure: parallel cells and slots, and
// optionally the regular ST grid they came from.
type RasterTarget[S geom.Geometry] struct {
	Cells []S
	Slots []tempo.Duration
	Grid  *instance.RasterGrid
}

// RasterCellsTarget wraps explicit cells and slots (equal length).
func RasterCellsTarget[S geom.Geometry](cells []S, slots []tempo.Duration) RasterTarget[S] {
	if len(cells) != len(slots) {
		panic("convert: raster cells/slots length mismatch")
	}
	return RasterTarget[S]{Cells: cells, Slots: slots}
}

// RasterGridTarget wraps a regular ST grid.
func RasterGridTarget(g instance.RasterGrid) RasterTarget[geom.MBR] {
	cells, slots := g.Build()
	return RasterTarget[geom.MBR]{Cells: cells, Slots: slots, Grid: &g}
}

// candidates yields candidate cell ids for a record's ST box. Strategies
// may yield false positives (refined by exact predicates) but never miss a
// truly intersecting cell.
type candidates func(b index.Box, yield func(cell int))

// naiveCandidates yields every cell.
func naiveCandidates(n int) candidates {
	return func(_ index.Box, yield func(int)) {
		for i := 0; i < n; i++ {
			yield(i)
		}
	}
}

// rtreeCandidates builds an R-tree over the cell boxes (the structure-side
// indexing of §4.2 — cells are indexed once and every record traverses).
func rtreeCandidates(ctx *engine.Context, boxes []index.Box) candidates {
	items := make([]index.Item[int], len(boxes))
	for i, b := range boxes {
		items[i] = index.Item[int]{Box: b, Data: i}
	}
	sp := ctx.StartSpan(trace.SpanRTreeBuild,
		trace.Int("items", int64(len(items))), trace.Str("site", "convert"))
	tree := index.BulkLoadSTR(items, 16)
	sp.End()
	return func(b index.Box, yield func(int)) {
		tree.SearchFunc(b, func(cell int, _ index.Box) bool {
			yield(cell)
			return true
		})
	}
}

// tsCandidates picks the strategy for a time-series target.
func tsCandidates(ctx *engine.Context, t TSTarget, m Method) candidates {
	switch m {
	case Naive:
		return naiveCandidates(len(t.Slots))
	case Regular, Auto:
		if t.Grid != nil {
			g := *t.Grid
			return func(b index.Box, yield func(int)) {
				lo, hi, ok := g.SlotRange(b.Temporal())
				if !ok {
					return
				}
				for i := lo; i <= hi; i++ {
					yield(i)
				}
			}
		}
		fallthrough
	default:
		boxes := make([]index.Box, len(t.Slots))
		for i, s := range t.Slots {
			boxes[i] = index.Box3(geom.Box(-1e18, -1e18, 1e18, 1e18), s)
		}
		return rtreeCandidates(ctx, boxes)
	}
}

// smCandidates picks the strategy for a spatial-map target.
func smCandidates[S geom.Geometry](ctx *engine.Context, t SMTarget[S], m Method) candidates {
	switch m {
	case Naive:
		return naiveCandidates(len(t.Cells))
	case Regular, Auto:
		if t.Grid != nil {
			g := *t.Grid
			return func(b index.Box, yield func(int)) {
				ix0, ix1, iy0, iy1, ok := g.CellRange(b.Spatial())
				if !ok {
					return
				}
				for iy := iy0; iy <= iy1; iy++ {
					for ix := ix0; ix <= ix1; ix++ {
						yield(iy*g.NX + ix)
					}
				}
			}
		}
		fallthrough
	default:
		boxes := make([]index.Box, len(t.Cells))
		for i, c := range t.Cells {
			boxes[i] = index.Box3(c.MBR(), tempo.New(-1<<60, 1<<60))
		}
		return rtreeCandidates(ctx, boxes)
	}
}

// rasterCandidates picks the strategy for a raster target.
func rasterCandidates[S geom.Geometry](ctx *engine.Context, t RasterTarget[S], m Method) candidates {
	switch m {
	case Naive:
		return naiveCandidates(len(t.Cells))
	case Regular, Auto:
		if t.Grid != nil {
			g := *t.Grid
			return func(b index.Box, yield func(int)) {
				ix0, ix1, iy0, iy1, ok := g.Space.CellRange(b.Spatial())
				if !ok {
					return
				}
				lo, hi, tok := g.Time.SlotRange(b.Temporal())
				if !tok {
					return
				}
				for it := lo; it <= hi; it++ {
					for iy := iy0; iy <= iy1; iy++ {
						for ix := ix0; ix <= ix1; ix++ {
							yield(g.Index(ix, iy, it))
						}
					}
				}
			}
		}
		fallthrough
	default:
		boxes := make([]index.Box, len(t.Cells))
		for i := range t.Cells {
			boxes[i] = index.Box3(t.Cells[i].MBR(), t.Slots[i])
		}
		return rtreeCandidates(ctx, boxes)
	}
}
