package convert

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/instance"
	"st4ml/internal/tempo"
)

// Property tests: for arbitrary event sets and grid shapes, the three
// allocation strategies must bucket identically — the §4.2 optimizations
// are pure accelerations.

// clampCoord squeezes an arbitrary float into the test domain.
func clampCoord(v float64, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return lo
	}
	r := math.Mod(math.Abs(v), hi-lo)
	return lo + r
}

func TestQuickEventRasterMethodsAgree(t *testing.T) {
	ctx := testCtx()
	f := func(xs, ys []float64, ts []int64, nx, nt uint8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if len(ts) < n {
			n = len(ts)
		}
		events := make([]pev, n)
		for i := 0; i < n; i++ {
			events[i] = instance.NewEvent(
				geom.Pt(clampCoord(xs[i], 0, 100), clampCoord(ys[i], 0, 100)),
				tempo.Instant(int64(clampCoord(float64(ts[i]), 0, 86400))),
				instance.Unit{}, int64(i))
		}
		grid := instance.RasterGrid{
			Space: instance.SpatialGrid{
				Extent: geom.Box(0, 0, 100, 100),
				NX:     int(nx%6) + 1, NY: int(nx%4) + 1,
			},
			Time: instance.TimeGrid{Window: tempo.New(0, 86399), NT: int(nt%5) + 1},
		}
		tgt := RasterGridTarget(grid)
		r := engine.Parallelize(ctx, events, 3)
		var results [][]int64
		for _, m := range []Method{Naive, Regular, RTree} {
			parts := EventToRaster(r, tgt, m, func(in []pev) int64 {
				return int64(len(in))
			}).Collect()
			counts := make([]int64, grid.NumCells())
			for _, ra := range parts {
				for i, e := range ra.Entries {
					counts[i] += e.Value
				}
			}
			results = append(results, counts)
		}
		return reflect.DeepEqual(results[0], results[1]) &&
			reflect.DeepEqual(results[0], results[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickTrajSpatialMapMethodsAgree(t *testing.T) {
	ctx := testCtx()
	f := func(seeds []float64, nx uint8) bool {
		// Build short trajectories from consecutive seed values.
		var trajs []ptraj
		for i := 0; i+3 < len(seeds); i += 4 {
			entries := []instance.Entry[geom.Point, instance.Unit]{
				{
					Spatial:  geom.Pt(clampCoord(seeds[i], 0, 50), clampCoord(seeds[i+1], 0, 50)),
					Temporal: tempo.Instant(int64(i)),
				},
				{
					Spatial:  geom.Pt(clampCoord(seeds[i+2], 0, 50), clampCoord(seeds[i+3], 0, 50)),
					Temporal: tempo.Instant(int64(i + 1)),
				},
			}
			trajs = append(trajs, instance.NewTrajectory(entries, int64(i)))
		}
		if len(trajs) == 0 {
			return true
		}
		grid := instance.SpatialGrid{
			Extent: geom.Box(0, 0, 50, 50),
			NX:     int(nx%5) + 1, NY: int(nx%3) + 1,
		}
		tgt := SpatialGridTarget(grid)
		r := engine.Parallelize(ctx, trajs, 2)
		var results [][]int64
		for _, m := range []Method{Naive, Regular, RTree} {
			parts := TrajToSpatialMap(r, tgt, m, func(in []ptraj) int64 {
				return int64(len(in))
			}).Collect()
			counts := make([]int64, grid.NumCells())
			for _, sm := range parts {
				for i, e := range sm.Entries {
					counts[i] += e.Value
				}
			}
			results = append(results, counts)
		}
		return reflect.DeepEqual(results[0], results[1]) &&
			reflect.DeepEqual(results[0], results[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every instant event lands in exactly one cell of a regular
// raster whose grid covers it (cells tile; border points may touch two but
// candidate refinement picks all intersecting — instants on interior
// borders are measure-zero for random floats).
func TestQuickEventConservation(t *testing.T) {
	ctx := testCtx()
	f := func(xs []float64) bool {
		events := make([]pev, len(xs))
		for i, x := range xs {
			events[i] = instance.NewEvent(
				geom.Pt(clampCoord(x, 0.001, 99.9), clampCoord(x*3.7, 0.001, 99.9)),
				tempo.Instant(int64(clampCoord(x*11, 1, 86000))),
				instance.Unit{}, int64(i))
		}
		grid := instance.RasterGrid{
			Space: instance.SpatialGrid{Extent: geom.Box(0, 0, 100, 100), NX: 4, NY: 4},
			Time:  instance.TimeGrid{Window: tempo.New(0, 86399), NT: 3},
		}
		r := engine.Parallelize(ctx, events, 2)
		parts := EventToRaster(r, RasterGridTarget(grid), Auto, func(in []pev) int64 {
			return int64(len(in))
		}).Collect()
		var total int64
		for _, ra := range parts {
			for _, e := range ra.Entries {
				total += e.Value
			}
		}
		return total == int64(len(events))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
