package summary

import (
	"math"
	"sort"
)

// Centroid is one t-digest cluster. Alongside the usual mean/count it
// keeps the exact min and max of the values it absorbed, which is what
// turns the digest from an estimator into a bound: however values are
// clustered, every absorbed value provably lies in [Min, Max].
type Centroid struct {
	Mean  float64 `json:"mean"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// TDigest is a mergeable quantile sketch: at most ~Limit centroids, each
// carrying exact count/min/max. Compression greedily merges the adjacent
// pair whose union has the narrowest [Min, Max] span, keeping centroids
// tight so the rank-enclosure bounds (QuantileBounds) stay useful.
// All fields are exported so the sketch serializes over the wire as-is.
type TDigest struct {
	Limit int        `json:"limit"`
	Cs    []Centroid `json:"cs,omitempty"`
}

// maxDigestLimit bounds decoded digests against corrupt sidecars.
const maxDigestLimit = 4096

// NewTDigest returns an empty digest keeping at most limit centroids.
func NewTDigest(limit int) *TDigest {
	if limit < 4 {
		limit = 4
	}
	return &TDigest{Limit: limit}
}

// Add absorbs one value. NaNs are dropped (they have no rank).
func (d *TDigest) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	d.Cs = append(d.Cs, Centroid{Mean: v, Count: 1, Min: v, Max: v})
	if len(d.Cs) > 4*d.Limit {
		d.compress()
	}
}

// Merge folds o into d. o is not modified.
func (d *TDigest) Merge(o *TDigest) {
	if o == nil || len(o.Cs) == 0 {
		return
	}
	d.Cs = append(d.Cs, o.Cs...)
	if len(d.Cs) > 4*d.Limit {
		d.compress()
	}
}

// Total returns the number of values absorbed.
func (d *TDigest) Total() int64 {
	if d == nil {
		return 0
	}
	var n int64
	for _, c := range d.Cs {
		n += c.Count
	}
	return n
}

// Compact compresses down to at most Limit centroids. Called once a digest
// stops absorbing values, so the persisted form pays for Limit centroids
// rather than the 4x ingestion buffer.
func (d *TDigest) Compact() {
	if d != nil && len(d.Cs) > d.Limit {
		d.compress()
	}
}

// Clone returns an independent copy.
func (d *TDigest) Clone() *TDigest {
	if d == nil {
		return nil
	}
	return &TDigest{Limit: d.Limit, Cs: append([]Centroid(nil), d.Cs...)}
}

// compress sorts by mean and merges adjacent centroids — always the pair
// whose merged [Min, Max] span is narrowest — until at most Limit remain.
func (d *TDigest) compress() {
	sort.Slice(d.Cs, func(i, j int) bool { return d.Cs[i].Mean < d.Cs[j].Mean })
	for len(d.Cs) > d.Limit {
		best, bestW := 0, math.Inf(1)
		for i := 0; i+1 < len(d.Cs); i++ {
			w := math.Max(d.Cs[i].Max, d.Cs[i+1].Max) - math.Min(d.Cs[i].Min, d.Cs[i+1].Min)
			if w < bestW {
				best, bestW = i, w
			}
		}
		a, b := d.Cs[best], d.Cs[best+1]
		n := a.Count + b.Count
		d.Cs[best] = Centroid{
			Mean:  (a.Mean*float64(a.Count) + b.Mean*float64(b.Count)) / float64(n),
			Count: n,
			Min:   math.Min(a.Min, b.Min),
			Max:   math.Max(a.Max, b.Max),
		}
		d.Cs = append(d.Cs[:best+1], d.Cs[best+2:]...)
	}
}

// Quantile returns the interpolated q-quantile estimate (no bound; pair
// with QuantileBounds for the envelope).
func (d *TDigest) Quantile(q float64) float64 {
	if d == nil || len(d.Cs) == 0 {
		return 0
	}
	cs := append([]Centroid(nil), d.Cs...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Mean < cs[j].Mean })
	total := d.Total()
	if q <= 0 {
		return cs[0].Min
	}
	if q >= 1 {
		return cs[len(cs)-1].Max
	}
	target := q * float64(total)
	var cum float64
	for _, c := range cs {
		n := float64(c.Count)
		if cum+n >= target {
			if n <= 1 || c.Max <= c.Min {
				return c.Mean
			}
			f := (target - cum) / n
			return c.Min + f*(c.Max-c.Min)
		}
		cum += n
	}
	return cs[len(cs)-1].Max
}

// quantileRank is the 1-based rank of the q-quantile in a multiset of n
// values: ceil(q·n) clamped into [1, n] (q=0 → the minimum, q=1 → the
// maximum). Nondecreasing in n, which the enclosure below relies on.
func quantileRank(q float64, n int64) int64 {
	if n <= 0 {
		return 1
	}
	r := int64(math.Ceil(q * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r
}

// QuantileBounds returns a closed interval [lo, hi] certain to contain the
// exact q-quantile of the selected values, given digests over values
// certainly selected and digests over values possibly selected. ok is
// false when no value can be selected at all (empty envelope).
//
// The argument: the selected count n lies in [nLo, nHi] (certain total,
// certain+uncertain total), so the target rank r lies in
// [rank(q,nLo), rank(q,nHi)]. Fewer than rank(q,nLo) values can be below
// any threshold t that fewer-than-that many centroid Mins precede, so the
// quantile is >= the first centroid Min at which the cumulative count
// (over all candidate values) reaches rank(q,nLo). Symmetrically, at least
// rank(q,nHi) certainly-selected values sit at or below the first certain
// centroid Max whose cumulative count reaches rank(q,nHi), so the quantile
// is <= it; if the certain mass never reaches that rank, the global max of
// all candidate values bounds it instead.
func QuantileBounds(q float64, certain, uncertain []*TDigest) (lo, hi float64, ok bool) {
	var all, sure []Centroid
	var nLo, nHi int64
	for _, d := range certain {
		if d == nil {
			continue
		}
		all = append(all, d.Cs...)
		sure = append(sure, d.Cs...)
		nLo += d.Total()
	}
	nHi = nLo
	for _, d := range uncertain {
		if d == nil {
			continue
		}
		all = append(all, d.Cs...)
		nHi += d.Total()
	}
	if nHi == 0 || len(all) == 0 {
		return 0, 0, false
	}
	rMin := int64(1)
	if nLo > 0 {
		rMin = quantileRank(q, nLo)
	}
	rMax := quantileRank(q, nHi)

	sort.Slice(all, func(i, j int) bool { return all[i].Min < all[j].Min })
	var cum int64
	lo = all[0].Min
	for _, c := range all {
		cum += c.Count
		if cum >= rMin {
			lo = c.Min
			break
		}
	}
	globalMax := all[0].Max
	for _, c := range all {
		if c.Max > globalMax {
			globalMax = c.Max
		}
	}
	hi = globalMax
	sort.Slice(sure, func(i, j int) bool { return sure[i].Max < sure[j].Max })
	cum = 0
	for _, c := range sure {
		cum += c.Count
		if cum >= rMax {
			hi = c.Max
			break
		}
	}
	if lo > hi {
		// Can only happen through rounding at the rank seams; widen to stay
		// conservative rather than return an inverted interval.
		lo = hi
	}
	return lo, hi, true
}
