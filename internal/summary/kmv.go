package summary

import (
	"math"
	"sort"
)

// KMV is a k-minimum-values distinct-count sketch over record IDs. While
// fewer than K distinct hashes have been seen it is exact; past that it
// keeps the K smallest hashes and estimates cardinality from the K-th
// minimum. Unlike the count/histogram/quantile envelopes, the distinct
// estimate is probabilistic (±~1/sqrt(K) relative), and is surfaced as
// informational — it carries no hard bound.
type KMV struct {
	K     int      `json:"k"`
	Exact bool     `json:"exact"`
	Hs    []uint64 `json:"hs,omitempty"` // sorted ascending, distinct
}

// maxSketchK bounds decoded sketches against corrupt sidecars.
const maxSketchK = 1 << 16

// NewKMV returns an empty sketch of size k.
func NewKMV(k int) *KMV {
	if k < 8 {
		k = 8
	}
	return &KMV{K: k, Exact: true}
}

// splitmix64 is the finalizer used to hash IDs: cheap, well-mixed, and
// deterministic across processes (the cluster tier merges shard sketches).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add absorbs one ID.
func (s *KMV) Add(id int64) {
	h := splitmix64(uint64(id))
	i := sort.Search(len(s.Hs), func(i int) bool { return s.Hs[i] >= h })
	if i < len(s.Hs) && s.Hs[i] == h {
		return
	}
	if len(s.Hs) >= s.K {
		if h >= s.Hs[len(s.Hs)-1] {
			s.Exact = false
			return
		}
		s.Hs = s.Hs[:len(s.Hs)-1]
		s.Exact = false
	}
	s.Hs = append(s.Hs, 0)
	copy(s.Hs[i+1:], s.Hs[i:])
	s.Hs[i] = h
}

// Merge folds o into s: the union's K smallest hashes, exact only if both
// inputs were and the union fits.
func (s *KMV) Merge(o *KMV) {
	if o == nil {
		return
	}
	merged := make([]uint64, 0, len(s.Hs)+len(o.Hs))
	i, j := 0, 0
	for i < len(s.Hs) || j < len(o.Hs) {
		switch {
		case j >= len(o.Hs) || (i < len(s.Hs) && s.Hs[i] < o.Hs[j]):
			merged = append(merged, s.Hs[i])
			i++
		case i >= len(s.Hs) || o.Hs[j] < s.Hs[i]:
			merged = append(merged, o.Hs[j])
			j++
		default: // equal
			merged = append(merged, s.Hs[i])
			i, j = i+1, j+1
		}
	}
	k := s.K
	if o.K < k {
		k = o.K
	}
	s.K = k
	s.Exact = s.Exact && o.Exact
	if len(merged) > k {
		merged = merged[:k]
		s.Exact = false
	}
	s.Hs = merged
}

// Estimate returns the distinct-count estimate; exact reports whether it
// is the true distinct count.
func (s *KMV) Estimate() (est float64, exact bool) {
	if s == nil {
		return 0, true
	}
	if s.Exact || len(s.Hs) < s.K {
		return float64(len(s.Hs)), s.Exact
	}
	kth := s.Hs[s.K-1]
	if kth == 0 {
		return float64(s.K), false
	}
	return float64(s.K-1) / (float64(kth) / math.Pow(2, 64)), false
}
