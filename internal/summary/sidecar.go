package summary

import (
	"bytes"
	"fmt"
	"math"

	"st4ml/internal/codec"
	"st4ml/internal/index"
)

// Sidecar layout ("STSM" magic, then CRC-framed sections):
//
//	magic | frame(header) | frame(partition sketches) | frame(block 0) ... frame(block n-1)
//
// header:   version, count, blockRecords, hasValue, nblocks, bounds
// sketches: grids, [digest], distinct (partition level)
// block i:  count, bounds, grid, [digest], distinct
//
// Every section sits inside a codec frame (uvarint length + CRC32-C), so
// any byte flip or truncation surfaces as ErrCorrupt at decode — a corrupt
// sidecar fails the query loudly instead of skewing an estimate, which
// FuzzSummarySidecar and the exhaustive byte-flip wall pin.
var sidecarMagic = []byte("STSM")

// EncodeSidecar serializes ps as a self-contained sidecar byte stream.
func EncodeSidecar(ps *PartitionSummary) []byte {
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	sec := codec.NewWriter(1 << 10)

	w.PutRaw(sidecarMagic)

	sec.PutUvarint(uint64(ps.Version))
	sec.PutUvarint(uint64(ps.Count))
	sec.PutUvarint(uint64(ps.BlockRecords))
	sec.PutBool(ps.HasValue)
	sec.PutUvarint(uint64(len(ps.Blocks)))
	putBox(sec, ps.Bounds)
	w.PutFrame(sec.Bytes())

	sec.Reset()
	sec.PutUvarint(uint64(len(ps.Grids)))
	for _, g := range ps.Grids {
		putGrid(sec, g)
	}
	if ps.HasValue {
		putDigest(sec, ps.Digest)
	}
	putKMV(sec, ps.Distinct)
	w.PutFrame(sec.Bytes())

	for i := range ps.Blocks {
		bs := &ps.Blocks[i]
		sec.Reset()
		sec.PutUvarint(uint64(bs.Count))
		putBox(sec, bs.Bounds)
		putGrid(sec, bs.Grid)
		if ps.HasValue {
			putDigest(sec, bs.Digest)
		}
		putKMV(sec, bs.Distinct)
		w.PutFrame(sec.Bytes())
	}
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// DecodeSidecar parses and verifies a sidecar stream. Any structural or
// checksum violation — flipped byte, truncation, trailing garbage — comes
// back as an error.
func DecodeSidecar(b []byte) (*PartitionSummary, error) {
	if len(b) < len(sidecarMagic) || !bytes.Equal(b[:len(sidecarMagic)], sidecarMagic) {
		return nil, fmt.Errorf("summary: corrupt sidecar: bad magic")
	}
	var ps *PartitionSummary
	err := codec.Catch(func() {
		r := codec.NewReader(b[len(sidecarMagic):])
		hdr := codec.NewReader(r.Frame())
		ps = &PartitionSummary{
			Version:      int(hdr.Uvarint()),
			Count:        int64(hdr.Uvarint()),
			BlockRecords: int(hdr.Uvarint()),
			HasValue:     hdr.Bool(),
		}
		nblocks := int(hdr.Uvarint())
		ps.Bounds = getBox(hdr)
		checkDrained(hdr)
		if ps.Version != Version || nblocks < 0 || nblocks > 1<<22 || ps.Count < 0 {
			panic(codec.ErrCorrupt{})
		}

		sk := codec.NewReader(r.Frame())
		ngrids := int(sk.Uvarint())
		if ngrids < 0 || ngrids > 8 {
			panic(codec.ErrCorrupt{})
		}
		for i := 0; i < ngrids; i++ {
			ps.Grids = append(ps.Grids, getGrid(sk))
		}
		if ps.HasValue {
			ps.Digest = getDigest(sk)
		}
		ps.Distinct = getKMV(sk)
		checkDrained(sk)

		for i := 0; i < nblocks; i++ {
			br := codec.NewReader(r.Frame())
			bs := BlockSummary{Count: int64(br.Uvarint())}
			bs.Bounds = getBox(br)
			bs.Grid = getGrid(br)
			if ps.HasValue {
				bs.Digest = getDigest(br)
			}
			bs.Distinct = getKMV(br)
			checkDrained(br)
			if bs.Count < 0 {
				panic(codec.ErrCorrupt{})
			}
			ps.Blocks = append(ps.Blocks, bs)
		}
		checkDrained(r)
	})
	if err != nil {
		return nil, fmt.Errorf("summary: corrupt sidecar: %w", err)
	}
	return ps, nil
}

// checkDrained rejects trailing bytes inside a section.
func checkDrained(r *codec.Reader) {
	if r.Remaining() != 0 {
		panic(codec.ErrCorrupt{})
	}
}

func putBox(w *codec.Writer, b index.Box) {
	for d := 0; d < index.Dims; d++ {
		w.PutFloat64(b.Min[d])
	}
	for d := 0; d < index.Dims; d++ {
		w.PutFloat64(b.Max[d])
	}
}

func getBox(r *codec.Reader) index.Box {
	var b index.Box
	for d := 0; d < index.Dims; d++ {
		b.Min[d] = r.Float64()
	}
	for d := 0; d < index.Dims; d++ {
		b.Max[d] = r.Float64()
	}
	return b
}

// Grids encode sparsely — only nonzero cells, as (ascending delta-index,
// count) varint pairs — because fine grids over small record sets are
// mostly empty and a dense 16^3 section would dwarf the data it sketches.
func putGrid(w *codec.Writer, g *Grid) {
	putBox(w, g.Domain)
	w.PutUvarint(uint64(g.Res))
	w.PutUvarint(uint64(g.Overflow))
	nz := 0
	for _, c := range g.Counts {
		if c != 0 {
			nz++
		}
	}
	w.PutUvarint(uint64(nz))
	prev := 0
	for i, c := range g.Counts {
		if c == 0 {
			continue
		}
		w.PutUvarint(uint64(i - prev))
		w.PutUvarint(uint64(c))
		prev = i
	}
}

func getGrid(r *codec.Reader) *Grid {
	g := &Grid{Domain: getBox(r)}
	g.Res = int(r.Uvarint())
	g.Overflow = int64(r.Uvarint())
	if g.Res < 1 || g.Res > maxGridRes || g.Overflow < 0 {
		panic(codec.ErrCorrupt{})
	}
	n := g.Res * g.Res * g.Res
	nz := int(r.Uvarint())
	if nz < 0 || nz > n {
		panic(codec.ErrCorrupt{})
	}
	g.Counts = make([]int64, n)
	idx := 0
	for i := 0; i < nz; i++ {
		d := int(r.Uvarint())
		if i == 0 {
			idx = d
		} else {
			if d < 1 {
				panic(codec.ErrCorrupt{}) // indexes must stay strictly ascending
			}
			idx += d
		}
		if idx < 0 || idx >= n {
			panic(codec.ErrCorrupt{})
		}
		c := int64(r.Uvarint())
		if c < 1 {
			panic(codec.ErrCorrupt{}) // only nonzero cells are encoded
		}
		g.Counts[idx] = c
	}
	return g
}

func putDigest(w *codec.Writer, d *TDigest) {
	w.PutUvarint(uint64(d.Limit))
	w.PutUvarint(uint64(len(d.Cs)))
	for _, c := range d.Cs {
		w.PutFloat64(c.Mean)
		w.PutUvarint(uint64(c.Count))
		w.PutFloat64(c.Min)
		w.PutFloat64(c.Max)
	}
}

func getDigest(r *codec.Reader) *TDigest {
	d := &TDigest{Limit: int(r.Uvarint())}
	n := int(r.Uvarint())
	if d.Limit < 1 || d.Limit > maxDigestLimit || n < 0 || n > 4*d.Limit+8 {
		panic(codec.ErrCorrupt{})
	}
	for i := 0; i < n; i++ {
		c := Centroid{
			Mean:  r.Float64(),
			Count: int64(r.Uvarint()),
			Min:   r.Float64(),
			Max:   r.Float64(),
		}
		if c.Count < 1 || math.IsNaN(c.Min) || math.IsNaN(c.Max) || c.Min > c.Max {
			panic(codec.ErrCorrupt{})
		}
		d.Cs = append(d.Cs, c)
	}
	return d
}

func putKMV(w *codec.Writer, s *KMV) {
	w.PutUvarint(uint64(s.K))
	w.PutBool(s.Exact)
	w.PutUvarint(uint64(len(s.Hs)))
	prev := uint64(0)
	for i, h := range s.Hs {
		if i == 0 {
			w.PutUvarint(h)
		} else {
			w.PutUvarint(h - prev) // ascending, so deltas stay small
		}
		prev = h
	}
}

func getKMV(r *codec.Reader) *KMV {
	s := &KMV{K: int(r.Uvarint()), Exact: r.Bool()}
	n := int(r.Uvarint())
	if s.K < 1 || s.K > maxSketchK || n < 0 || n > s.K {
		panic(codec.ErrCorrupt{})
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		d := r.Uvarint()
		h := prev + d
		if i > 0 && (d == 0 || h < prev) {
			panic(codec.ErrCorrupt{}) // not strictly ascending / overflow
		}
		s.Hs = append(s.Hs, h)
		prev = h
	}
	return s
}
