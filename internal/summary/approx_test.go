package summary

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"st4ml/internal/index"
)

// driveAccumulator runs the real query-time classification over a built
// summary: blocks inside the window are certain, straddlers uncertain (or
// scanned when scanBoundary), pruned blocks skipped — exactly what the
// stdata orchestration does — and returns the finalized result plus the
// brute-forced exact answers.
func driveAccumulator(t *testing.T, spec Spec, recs []sumRec, ps *PartitionSummary, scanBoundary bool) (*Result, int64, []int64) {
	t.Helper()
	a := NewAccumulator(spec)
	spec = a.Spec()
	bn := ps.BlockRecords
	if bn <= 0 {
		bn = len(recs)
	}
	a.BeginPartition(0)
	var scanned int
	for bi := range ps.Blocks {
		bs := &ps.Blocks[bi]
		switch {
		case !bs.Bounds.Intersects(spec.Window):
			// pruned
		case spec.Window.Contains(bs.Bounds):
			a.BlockCertain(bs)
		case scanBoundary:
			scanned++
			a.BlockScanned(1)
			lo, hi := bi*bn, (bi+1)*bn
			if hi > len(recs) {
				hi = len(recs)
			}
			for _, r := range recs[lo:hi] {
				if r.box.Intersects(spec.Window) {
					a.Record(r.box, r.val, true, r.id)
				}
			}
		default:
			a.BlockUncertain(bs)
		}
	}
	a.EndPartition(ps)

	var exactCount int64
	var vals []float64
	cellExact := make([]int64, len(windowCells(spec.Window, spec.Res)))
	cells := windowCells(spec.Window, spec.Res)
	for _, r := range recs {
		if !r.box.Intersects(spec.Window) {
			continue
		}
		exactCount++
		vals = append(vals, r.val)
		for i, c := range cells {
			if c.Intersects(r.box) {
				cellExact[i]++
			}
		}
	}
	res := a.Finalize()
	_ = vals
	_ = scanned
	return res, exactCount, cellExact
}

// TestAccumulatorContainment drives random workloads through the real
// block-classification flow and asserts the containment guarantee for all
// three aggregates, with and without boundary scanning.
func TestAccumulatorContainment(t *testing.T) {
	domain := index.Box{Min: [3]float64{-74, 40, 0}, Max: [3]float64{-73, 41, 100000}}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(1500)
		recs := make([]sumRec, n)
		for i := range recs {
			recs[i] = sumRec{id: int64(i % 50), box: randBox(rng, domain), val: rng.NormFloat64() * 10}
		}
		ps := Build(recs,
			func(r sumRec) index.Box { return r.box },
			func(r sumRec) (float64, bool) { return r.val, true },
			func(r sumRec) int64 { return r.id },
			Config{BlockRecords: 128})
		for wi := 0; wi < 8; wi++ {
			w := randWindow(rng, domain)
			for _, scanB := range []bool{false, true} {
				for _, agg := range []string{AggCount, AggHist, AggQuantile} {
					spec := Spec{Window: w, Agg: agg, Q: rng.Float64(), Res: 3}
					res, exact, cellExact := driveAccumulator(t, spec, recs, ps, scanB)
					if exact < res.CountLo || exact > res.CountHi {
						t.Fatalf("seed %d agg %s scan=%v: exact count %d outside [%d,%d]",
							seed, agg, scanB, exact, res.CountLo, res.CountHi)
					}
					switch agg {
					case AggCount:
						if float64(exact) < res.Estimate-res.Bound || float64(exact) > res.Estimate+res.Bound {
							t.Fatalf("count outside envelope")
						}
					case AggHist:
						for i, c := range res.Cells {
							if cellExact[i] < c.Lo || cellExact[i] > c.Hi {
								t.Fatalf("seed %d cell %d: exact %d outside [%d,%d]", seed, i, cellExact[i], c.Lo, c.Hi)
							}
						}
					case AggQuantile:
						if exact == 0 {
							continue // undefined; envelope only qualifies the count
						}
						var vals []float64
						for _, r := range recs {
							if r.box.Intersects(w) {
								vals = append(vals, r.val)
							}
						}
						ex := exactQuantile(vals, spec.normalize().Q)
						if ex < res.Estimate-res.Bound-1e-9 || ex > res.Estimate+res.Bound+1e-9 {
							t.Fatalf("seed %d q=%v scan=%v: exact quantile %v outside %v±%v",
								seed, spec.Q, scanB, ex, res.Estimate, res.Bound)
						}
					}
				}
			}
		}
	}
}

// TestAccumulatorExactWhenCovered: a window containing the whole partition
// yields a zero-width envelope flagged Exact.
func TestAccumulatorExactWhenCovered(t *testing.T) {
	ps := makeSummary(t, 3, 500, 64)
	w := ps.Bounds
	a := NewAccumulator(Spec{Window: w, Agg: AggCount})
	a.BeginPartition(0)
	for i := range ps.Blocks {
		if !w.Contains(ps.Blocks[i].Bounds) {
			t.Fatal("partition bounds must contain all blocks")
		}
		a.BlockCertain(&ps.Blocks[i])
	}
	a.EndPartition(ps)
	res := a.Finalize()
	if !res.Exact || res.Bound != 0 || res.CountLo != 500 || res.CountHi != 500 {
		t.Fatalf("full coverage: got exact=%v bound=%v [%d,%d]", res.Exact, res.Bound, res.CountLo, res.CountHi)
	}
	if len(res.Parts) != 1 || res.Parts[0].Source != SourceSummary {
		t.Fatalf("provenance: %+v", res.Parts)
	}
}

// TestPartialMerge pins mergeable-sketch semantics: splitting partitions
// across two accumulators, snapshotting Partials (through JSON, as the
// cluster wire does), and merging must reproduce the single-accumulator
// result exactly.
func TestPartialMerge(t *testing.T) {
	domain := index.Box{Min: [3]float64{0, 0, 0}, Max: [3]float64{100, 100, 1000}}
	rng := rand.New(rand.NewSource(9))
	mk := func() ([]sumRec, *PartitionSummary) {
		recs := make([]sumRec, 600)
		for i := range recs {
			recs[i] = sumRec{id: rng.Int63n(200), box: randBox(rng, domain), val: rng.NormFloat64()}
		}
		ps := Build(recs,
			func(r sumRec) index.Box { return r.box },
			func(r sumRec) (float64, bool) { return r.val, true },
			func(r sumRec) int64 { return r.id },
			Config{BlockRecords: 100})
		return recs, ps
	}
	recs1, ps1 := mk()
	recs2, ps2 := mk()
	w := index.Box{Min: [3]float64{20, 20, 200}, Max: [3]float64{70, 70, 700}}
	for _, agg := range []string{AggCount, AggHist, AggQuantile} {
		spec := Spec{Window: w, Agg: agg, Q: 0.5, Res: 2}
		fold := func(a *Accumulator, id int, ps *PartitionSummary) {
			a.BeginPartition(id)
			for i := range ps.Blocks {
				bs := &ps.Blocks[i]
				switch {
				case !bs.Bounds.Intersects(w):
				case w.Contains(bs.Bounds):
					a.BlockCertain(bs)
				default:
					a.BlockUncertain(bs)
				}
			}
			a.EndPartition(ps)
		}
		single := NewAccumulator(spec)
		fold(single, 0, ps1)
		fold(single, 1, ps2)
		want := single.Finalize()

		shard1, shard2 := NewAccumulator(spec), NewAccumulator(spec)
		fold(shard1, 0, ps1)
		fold(shard2, 1, ps2)
		router := NewAccumulator(spec)
		for _, sh := range []*Accumulator{shard1, shard2} {
			b, err := json.Marshal(sh.Partial())
			if err != nil {
				t.Fatal(err)
			}
			var p Partial
			if err := json.Unmarshal(b, &p); err != nil {
				t.Fatal(err)
			}
			if err := router.MergePartial(&p); err != nil {
				t.Fatal(err)
			}
		}
		got := router.Finalize()
		if got.CountLo != want.CountLo || got.CountHi != want.CountHi {
			t.Fatalf("agg %s: merged count envelope [%d,%d] != single [%d,%d]",
				agg, got.CountLo, got.CountHi, want.CountLo, want.CountHi)
		}
		// Integer envelopes merge exactly; float estimates may differ in the
		// last bit from summation order, never beyond. Quantile digests are
		// order-sensitive under compression, so there the contract is the
		// containment guarantee itself, checked below against brute force.
		close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)) }
		if agg == AggQuantile {
			var vals []float64
			for _, r := range append(append([]sumRec(nil), recs1...), recs2...) {
				if r.box.Intersects(w) {
					vals = append(vals, r.val)
				}
			}
			if len(vals) > 0 {
				ex := exactQuantile(vals, 0.5)
				if ex < got.Estimate-got.Bound-1e-9 || ex > got.Estimate+got.Bound+1e-9 {
					t.Fatalf("merged quantile envelope %v±%v misses exact %v", got.Estimate, got.Bound, ex)
				}
				if ex < want.Estimate-want.Bound-1e-9 || ex > want.Estimate+want.Bound+1e-9 {
					t.Fatalf("single quantile envelope %v±%v misses exact %v", want.Estimate, want.Bound, ex)
				}
			}
		} else if !close(got.Estimate, want.Estimate) || !close(got.Bound, want.Bound) {
			t.Fatalf("agg %s: merged %v±%v != single %v±%v", agg, got.Estimate, got.Bound, want.Estimate, want.Bound)
		}
		if len(got.Cells) != len(want.Cells) {
			t.Fatalf("cell count mismatch")
		}
		for i := range got.Cells {
			g, w := got.Cells[i], want.Cells[i]
			if g.Lo != w.Lo || g.Hi != w.Hi || g.Box != w.Box || !close(g.Estimate, w.Estimate) {
				t.Fatalf("agg %s cell %d: %+v != %+v", agg, i, g, w)
			}
		}
		if got.Distinct != want.Distinct || got.DistinctExact != want.DistinctExact {
			t.Fatalf("distinct mismatch: %v/%v vs %v/%v", got.Distinct, got.DistinctExact, want.Distinct, want.DistinctExact)
		}
	}
	// Cell-shape mismatches are rejected, not silently merged.
	a := NewAccumulator(Spec{Window: w, Agg: AggHist, Res: 2})
	if err := a.MergePartial(&Partial{CellLo: []int64{1}}); err == nil {
		t.Fatal("mismatched partial should fail")
	}
}
