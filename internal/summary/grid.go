package summary

import "st4ml/internal/index"

// Grid is a 3-d histogram with a deterministic containment guarantee. The
// domain box is split into Res cells per axis; a record box that bins into
// a single cell is counted there, a record box spanning cells (a long
// trajectory) is counted in the Overflow bucket. The query-time bounds
// then hold for ST4ML's box-intersects selection predicate:
//
//   - lo: records in cells fully inside the window — their boxes lie
//     inside the cell, hence inside the window, hence intersect it;
//   - hi: records in cells whose closure intersects the window, plus every
//     overflow record — a record box is contained in its cell's closure
//     (or, for overflow, in the domain), so a cell disjoint from the
//     window cannot hold an intersecting record.
//
// Cell edges are derived deterministically from (Domain, Res), and binning
// searches those exact edge values, so build-time and query-time geometry
// agree bit-for-bit — no float-tiling epsilon can break the guarantee.
type Grid struct {
	Domain   index.Box `json:"domain"`
	Res      int       `json:"res"`
	Overflow int64     `json:"overflow"`
	Counts   []int64   `json:"counts"` // len Res³, index x + Res·(y + Res·t)
}

// maxGridRes bounds decoded resolutions so a corrupt sidecar cannot ask
// for a multi-gigabyte allocation.
const maxGridRes = 64

// NewGrid builds an empty grid over domain with res cells per axis.
func NewGrid(domain index.Box, res int) *Grid {
	if res < 1 {
		res = 1
	}
	return &Grid{Domain: domain, Res: res, Counts: make([]int64, res*res*res)}
}

// edge returns cell boundary i (0..Res) along dim d. The same expression
// runs at build and query time, so the boundaries always agree.
func (g *Grid) edge(d, i int) float64 {
	if i >= g.Res {
		return g.Domain.Max[d]
	}
	return g.Domain.Min[d] + float64(i)*(g.Domain.Max[d]-g.Domain.Min[d])/float64(g.Res)
}

// binIdx returns the largest cell index whose lower edge is <= v, clamped
// into [0, Res-1].
func (g *Grid) binIdx(d int, v float64) int {
	for i := g.Res - 1; i > 0; i-- {
		if v >= g.edge(d, i) {
			return i
		}
	}
	return 0
}

// Add counts one record box. Boxes outside the domain (possible only on a
// builder/domain mismatch) go to overflow, which stays conservative.
func (g *Grid) Add(b index.Box) {
	if !g.Domain.Contains(b) {
		g.Overflow++
		return
	}
	idx := 0
	mul := 1
	for d := 0; d < index.Dims; d++ {
		lo := g.binIdx(d, b.Min[d])
		if g.binIdx(d, b.Max[d]) != lo {
			g.Overflow++
			return
		}
		idx += lo * mul
		mul *= g.Res
	}
	g.Counts[idx]++
}

// cellClosure returns the closed box covering every record value that can
// bin into cell (x, y, t).
func (g *Grid) cellClosure(x, y, t int) index.Box {
	var b index.Box
	c := [3]int{x, y, t}
	for d := 0; d < index.Dims; d++ {
		b.Min[d] = g.edge(d, c[d])
		b.Max[d] = g.edge(d, c[d]+1)
		if b.Max[d] < b.Min[d] {
			b.Max[d] = b.Min[d]
		}
	}
	return b
}

// CountRange bounds the number of records whose box intersects w:
// the true count is always in [lo, hi]; est interpolates by overlap volume
// and is clamped into the envelope.
func (g *Grid) CountRange(w index.Box) (lo, hi int64, est float64) {
	for t := 0; t < g.Res; t++ {
		for y := 0; y < g.Res; y++ {
			base := (t*g.Res + y) * g.Res
			for x := 0; x < g.Res; x++ {
				c := g.Counts[base+x]
				if c == 0 {
					continue
				}
				cell := g.cellClosure(x, y, t)
				if !cell.Intersects(w) {
					continue
				}
				hi += c
				if w.Contains(cell) {
					lo += c
					est += float64(c)
				} else {
					est += float64(c) * overlapFrac(cell, w)
				}
			}
		}
	}
	if g.Overflow > 0 {
		hi += g.Overflow
		if g.Domain.Intersects(w) {
			est += float64(g.Overflow) * overlapFrac(g.Domain, w)
		}
	}
	if est < float64(lo) {
		est = float64(lo)
	}
	if est > float64(hi) {
		est = float64(hi)
	}
	return lo, hi, est
}

// Merge folds o (same domain and resolution) into g.
func (g *Grid) Merge(o *Grid) error {
	if o.Res != g.Res || o.Domain != g.Domain || len(o.Counts) != len(g.Counts) {
		return errGridShape
	}
	g.Overflow += o.Overflow
	for i, c := range o.Counts {
		g.Counts[i] += c
	}
	return nil
}

var errGridShape = errShape("summary: grid domain/resolution mismatch")

type errShape string

func (e errShape) Error() string { return string(e) }

// Total returns the number of records counted (cells plus overflow).
func (g *Grid) Total() int64 {
	n := g.Overflow
	for _, c := range g.Counts {
		n += c
	}
	return n
}

// overlapFrac estimates what fraction of box a overlaps b, as a product of
// per-axis overlap ratios; zero-width axes contribute factor 1 (the axes
// already intersect). Callers ensure a and b intersect.
func overlapFrac(a, b index.Box) float64 {
	f := 1.0
	for d := 0; d < index.Dims; d++ {
		w := a.Max[d] - a.Min[d]
		if w <= 0 {
			continue
		}
		hi := a.Max[d]
		if b.Max[d] < hi {
			hi = b.Max[d]
		}
		lo := a.Min[d]
		if b.Min[d] > lo {
			lo = b.Min[d]
		}
		ov := (hi - lo) / w
		if ov < 0 {
			ov = 0
		} else if ov > 1 {
			ov = 1
		}
		f *= ov
	}
	return f
}
