package summary

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"st4ml/internal/index"
)

type sumRec struct {
	id  int64
	box index.Box
	val float64
}

func makeSummary(t testing.TB, seed int64, n, blockRecords int) *PartitionSummary {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	domain := index.Box{Min: [3]float64{-74, 40, 0}, Max: [3]float64{-73, 41, 100000}}
	recs := make([]sumRec, n)
	for i := range recs {
		recs[i] = sumRec{id: int64(i % 100), box: randBox(rng, domain), val: rng.NormFloat64()}
	}
	return Build(recs,
		func(r sumRec) index.Box { return r.box },
		func(r sumRec) (float64, bool) { return r.val, true },
		func(r sumRec) int64 { return r.id },
		Config{BlockRecords: blockRecords})
}

func TestSidecarRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, bn int }{{0, 0}, {1, 0}, {100, 0}, {1000, 64}, {777, 100}} {
		ps := makeSummary(t, int64(tc.n), tc.n, tc.bn)
		enc := EncodeSidecar(ps)
		got, err := DecodeSidecar(enc)
		if err != nil {
			t.Fatalf("n=%d bn=%d: %v", tc.n, tc.bn, err)
		}
		if !reflect.DeepEqual(ps, got) {
			t.Fatalf("n=%d bn=%d: roundtrip mismatch", tc.n, tc.bn)
		}
		// Encoding is deterministic (shards must agree byte-for-byte).
		if !bytes.Equal(enc, EncodeSidecar(got)) {
			t.Fatalf("n=%d bn=%d: re-encode differs", tc.n, tc.bn)
		}
	}
}

// TestSidecarNoValue covers schemas without a payload attribute (no
// digests anywhere in the stream).
func TestSidecarNoValue(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	domain := index.Box{Min: [3]float64{0, 0, 0}, Max: [3]float64{1, 1, 0}}
	recs := make([]sumRec, 300)
	for i := range recs {
		recs[i] = sumRec{id: int64(i), box: randBox(rng, domain)}
	}
	ps := Build(recs,
		func(r sumRec) index.Box { return r.box },
		nil,
		func(r sumRec) int64 { return r.id },
		Config{BlockRecords: 50})
	if ps.HasValue || ps.Digest != nil {
		t.Fatal("no-value build should not carry digests")
	}
	got, err := DecodeSidecar(EncodeSidecar(ps))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps, got) {
		t.Fatal("roundtrip mismatch")
	}
}

// TestSidecarEveryByteFlip is the loud-failure wall: flipping any single
// byte of a sidecar must either fail decode or — never — change the
// decoded summary silently into one that mis-estimates. We require the
// stronger property outright: every flip fails decode, except flips that
// decode back to a byte-identical stream (impossible here, so: every flip
// errors).
func TestSidecarEveryByteFlip(t *testing.T) {
	ps := makeSummary(t, 11, 400, 64)
	enc := EncodeSidecar(ps)
	if len(enc) > 1<<20 {
		t.Fatalf("sidecar unexpectedly large: %d bytes", len(enc))
	}
	for off := 0; off < len(enc); off++ {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0xff
		got, err := DecodeSidecar(mut)
		if err != nil {
			continue
		}
		// A flip that still decodes must re-encode to the mutated bytes
		// (i.e. the flip landed in truly dead space — there is none).
		if !bytes.Equal(EncodeSidecar(got), mut) {
			t.Fatalf("byte flip at %d/%d decoded silently", off, len(enc))
		}
	}
}

// TestSidecarTruncation: every prefix must fail loudly.
func TestSidecarTruncation(t *testing.T) {
	enc := EncodeSidecar(makeSummary(t, 12, 300, 64))
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeSidecar(enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded silently", n, len(enc))
		}
	}
	// Trailing garbage is corruption too.
	if _, err := DecodeSidecar(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Fatal("trailing byte decoded silently")
	}
}

// FuzzSummarySidecar feeds arbitrary bytes and mutated valid sidecars to
// the decoder: it must never panic, and whatever decodes must re-encode
// byte-identically (no silent acceptance of corrupt envelopes).
func FuzzSummarySidecar(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("STSM"))
	f.Add(EncodeSidecar(makeSummary(f, 1, 100, 32)))
	f.Add(EncodeSidecar(makeSummary(f, 2, 0, 0)))
	f.Fuzz(func(t *testing.T, b []byte) {
		ps, err := DecodeSidecar(b)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeSidecar(ps), b) {
			t.Fatalf("accepted bytes that do not re-encode identically")
		}
	})
}
