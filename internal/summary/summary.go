// Package summary is the approximate query tier's sketch layer: per-block
// and per-partition spatio-temporal summaries (record counts, 3-d
// histograms at several resolutions, t-digests of a payload attribute,
// distinct-ID sketches) built at compaction/ingest time and persisted as a
// CRC-framed sidecar stream beside each base partition file.
//
// An approx=true query is answered from summaries alone: blocks whose
// bounds sit fully inside the window contribute their exact counts and
// "certain" digests; blocks straddling the window boundary contribute
// histogram-derived [lo, hi] envelopes and "uncertain" digests. Every
// envelope this package produces is deterministic and conservative — the
// exact answer always lies inside `estimate ± bound` — which is what the
// metamorphic test wall pins (see approx.go for the bound arguments).
//
// The package sits below storage: storage persists and loads sidecars and
// hooks the builder into compaction; stdata orchestrates the per-partition
// approximate scan; serve/cluster move Partial envelopes over the wire and
// merge them with mergeable-sketch semantics.
package summary

import (
	"fmt"

	"st4ml/internal/index"
)

// Version is the sidecar format version written by this package.
const Version = 1

// Suffix is appended to a base partition file name to form its sidecar
// name, so each base generation carries its own summary (MVCC-friendly:
// a compaction writes a new base + sidecar pair and old readers keep both).
const Suffix = ".sum"

// Config sizes the sketches a Builder produces. Zero values pick defaults
// tuned for ~1 byte of sidecar per record.
type Config struct {
	// BlockRecords chunks the partition's records in file order, mirroring
	// the base file's block layout so block summary i describes file block
	// i exactly. 0 means a single block (the v1 monolithic layout).
	BlockRecords int
	// GridRes lists the partition-level histogram resolutions (cells per
	// axis). Nil means {4, 8}: coarse grids bound large windows, finer ones
	// small windows; per-block grids over tight block bounds do the fine
	// work, so partition grids stay coarse to keep sidecars a small
	// fraction of the data they sketch. Build skips any resolution whose
	// cell count exceeds the partition's record count (a grid finer than
	// the data adds bytes, not information).
	GridRes []int
	// BlockGridRes is the per-block histogram resolution. 0 means 4.
	BlockGridRes int
	// DigestSize / BlockDigestSize cap the centroid count of the partition
	// and per-block t-digests. 0 means 32 / 16.
	DigestSize      int
	BlockDigestSize int
	// SketchK / BlockSketchK size the distinct-ID KMV sketches. 0 means
	// 64 / 16.
	SketchK      int
	BlockSketchK int
}

func (c Config) withDefaults() Config {
	if c.GridRes == nil {
		c.GridRes = []int{4, 8}
	}
	if c.BlockGridRes <= 0 {
		c.BlockGridRes = 4
	}
	if c.DigestSize <= 0 {
		c.DigestSize = 32
	}
	if c.BlockDigestSize <= 0 {
		c.BlockDigestSize = 16
	}
	if c.SketchK <= 0 {
		c.SketchK = 64
	}
	if c.BlockSketchK <= 0 {
		c.BlockSketchK = 16
	}
	return c
}

// BlockSummary sketches one storage block: its exact record count and
// bounds (duplicating the file footer so the sidecar is self-contained),
// a histogram over the block's own bounds, and optional value/ID sketches.
type BlockSummary struct {
	Count    int64
	Bounds   index.Box
	Grid     *Grid
	Digest   *TDigest // nil when the schema has no value attribute
	Distinct *KMV
}

// PartitionSummary sketches one base partition file: partition-level
// multi-resolution histograms and sketches plus one BlockSummary per file
// block, in file order.
type PartitionSummary struct {
	Version      int
	BlockRecords int // chunk size the blocks were built with (0 = one block)
	Count        int64
	Bounds       index.Box
	HasValue     bool
	Grids        []*Grid
	Digest       *TDigest
	Distinct     *KMV
	Blocks       []BlockSummary
}

// Builder is the erased hook storage's compactor calls: it type-asserts
// the record slice it summarizes. NewBuilder builds one per schema.
type Builder interface {
	// Build summarizes recs (a []T) chunked into blocks of blockRecords
	// records in slice order, matching the base file writer's layout.
	Build(recs any, blockRecords int) (*PartitionSummary, error)
}

type builder[T any] struct {
	boxOf func(T) index.Box
	val   func(T) (float64, bool) // nil: schema has no value attribute
	id    func(T) int64
	cfg   Config
}

// NewBuilder wraps the schema's extractors into an erased Builder. val may
// be nil (no payload attribute: quantile queries are rejected for the
// schema, counts and histograms still work).
func NewBuilder[T any](boxOf func(T) index.Box, val func(T) (float64, bool), id func(T) int64, cfg Config) Builder {
	return builder[T]{boxOf: boxOf, val: val, id: id, cfg: cfg}
}

func (b builder[T]) Build(recs any, blockRecords int) (*PartitionSummary, error) {
	rs, ok := recs.([]T)
	if !ok {
		return nil, fmt.Errorf("summary: builder got %T, want %T", recs, []T(nil))
	}
	cfg := b.cfg
	cfg.BlockRecords = blockRecords
	return Build(rs, b.boxOf, b.val, b.id, cfg), nil
}

// Build summarizes recs chunked in slice order into blocks of
// cfg.BlockRecords records (the base file's layout).
func Build[T any](recs []T, boxOf func(T) index.Box, val func(T) (float64, bool), id func(T) int64, cfg Config) *PartitionSummary {
	cfg = cfg.withDefaults()
	ps := &PartitionSummary{
		Version:      Version,
		BlockRecords: cfg.BlockRecords,
		Count:        int64(len(recs)),
		Bounds:       index.EmptyBox(),
		HasValue:     val != nil,
	}
	boxes := make([]index.Box, len(recs))
	for i, r := range recs {
		boxes[i] = boxOf(r)
		ps.Bounds = ps.Bounds.Union(boxes[i])
	}
	for i, res := range cfg.GridRes {
		if i > 0 && res*res*res > len(recs) {
			continue // finer than the data: all bytes, no tighter bound
		}
		ps.Grids = append(ps.Grids, NewGrid(ps.Bounds, res))
	}
	if ps.HasValue {
		ps.Digest = NewTDigest(cfg.DigestSize)
	}
	ps.Distinct = NewKMV(cfg.SketchK)

	bn := cfg.BlockRecords
	if bn <= 0 || bn > len(recs) {
		bn = len(recs)
	}
	for off := 0; off < len(recs); off += bn {
		end := off + bn
		if end > len(recs) {
			end = len(recs)
		}
		bs := BlockSummary{
			Count:    int64(end - off),
			Bounds:   index.EmptyBox(),
			Distinct: NewKMV(cfg.BlockSketchK),
		}
		if ps.HasValue {
			bs.Digest = NewTDigest(cfg.BlockDigestSize)
		}
		for i := off; i < end; i++ {
			bs.Bounds = bs.Bounds.Union(boxes[i])
		}
		bs.Grid = NewGrid(bs.Bounds, cfg.BlockGridRes)
		for i := off; i < end; i++ {
			bs.Grid.Add(boxes[i])
			bs.Distinct.Add(id(recs[i]))
			ps.Distinct.Add(id(recs[i]))
			for _, g := range ps.Grids {
				g.Add(boxes[i])
			}
			if ps.HasValue {
				if v, ok := val(recs[i]); ok {
					bs.Digest.Add(v)
					ps.Digest.Add(v)
				}
			}
		}
		bs.Digest.Compact()
		ps.Blocks = append(ps.Blocks, bs)
	}
	ps.Digest.Compact()
	if len(recs) == 0 {
		// An empty partition still gets a well-formed (empty) summary.
		ps.Blocks = nil
	}
	return ps
}
