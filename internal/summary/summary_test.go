package summary

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"st4ml/internal/index"
)

// randBox returns a record box inside domain: mostly points, sometimes
// extended boxes (trajectory-like) spanning a fraction of the domain.
func randBox(rng *rand.Rand, domain index.Box) index.Box {
	var b index.Box
	for d := 0; d < index.Dims; d++ {
		w := domain.Max[d] - domain.Min[d]
		lo := domain.Min[d] + rng.Float64()*w
		span := 0.0
		if rng.Intn(4) == 0 { // 25% extended records
			span = rng.Float64() * 0.3 * w
		}
		hi := lo + span
		if hi > domain.Max[d] {
			hi = domain.Max[d]
		}
		b.Min[d], b.Max[d] = lo, hi
	}
	return b
}

func randWindow(rng *rand.Rand, domain index.Box) index.Box {
	var w index.Box
	for d := 0; d < index.Dims; d++ {
		span := domain.Max[d] - domain.Min[d]
		a := domain.Min[d] + (rng.Float64()*1.4-0.2)*span // sometimes outside
		b := domain.Min[d] + (rng.Float64()*1.4-0.2)*span
		if a > b {
			a, b = b, a
		}
		w.Min[d], w.Max[d] = a, b
	}
	return w
}

// TestGridCountBounds is the core statistical guarantee: for random record
// sets (points and extended boxes) and random windows, the exact
// intersecting count always lies in the grid's [lo, hi] envelope, at every
// resolution, and the estimate stays inside the envelope.
func TestGridCountBounds(t *testing.T) {
	domain := index.Box{Min: [3]float64{-74.1, 40.6, 0}, Max: [3]float64{-73.7, 40.9, 86400}}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(500)
		boxes := make([]index.Box, n)
		bounds := index.EmptyBox()
		for i := range boxes {
			boxes[i] = randBox(rng, domain)
			bounds = bounds.Union(boxes[i])
		}
		for _, res := range []int{1, 2, 4, 8, 16} {
			g := NewGrid(bounds, res)
			for _, b := range boxes {
				g.Add(b)
			}
			if g.Total() != int64(n) {
				t.Fatalf("seed %d res %d: total %d want %d", seed, res, g.Total(), n)
			}
			for wi := 0; wi < 50; wi++ {
				w := randWindow(rng, domain)
				var exact int64
				for _, b := range boxes {
					if b.Intersects(w) {
						exact++
					}
				}
				lo, hi, est := g.CountRange(w)
				if exact < lo || exact > hi {
					t.Fatalf("seed %d res %d window %v: exact %d outside [%d,%d]", seed, res, w, exact, lo, hi)
				}
				if est < float64(lo) || est > float64(hi) {
					t.Fatalf("est %v outside [%d,%d]", est, lo, hi)
				}
			}
		}
	}
}

// TestGridDegenerate covers zero-width axes (2-d schemas have a
// zero-width time axis) and a single record.
func TestGridDegenerate(t *testing.T) {
	b := index.Box{Min: [3]float64{1, 2, 5}, Max: [3]float64{1, 2, 5}}
	g := NewGrid(b, 4)
	g.Add(b)
	lo, hi, _ := g.CountRange(b)
	if lo != 1 || hi != 1 {
		t.Fatalf("point query on point record: [%d,%d] want [1,1]", lo, hi)
	}
	miss := index.Box{Min: [3]float64{2, 3, 6}, Max: [3]float64{3, 4, 7}}
	if lo, hi, _ := g.CountRange(miss); lo != 0 || hi != 0 {
		t.Fatalf("disjoint window: [%d,%d] want [0,0]", lo, hi)
	}
}

// TestGridMerge pins merge-then-query ≡ query-then-combine for histograms:
// a merged grid's envelope equals the sum of the parts' envelopes.
func TestGridMerge(t *testing.T) {
	domain := index.Box{Min: [3]float64{0, 0, 0}, Max: [3]float64{10, 10, 10}}
	rng := rand.New(rand.NewSource(7))
	g1, g2 := NewGrid(domain, 8), NewGrid(domain, 8)
	for i := 0; i < 300; i++ {
		g1.Add(randBox(rng, domain))
		g2.Add(randBox(rng, domain))
	}
	merged := NewGrid(domain, 8)
	if err := merged.Merge(g1); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(g2); err != nil {
		t.Fatal(err)
	}
	for wi := 0; wi < 40; wi++ {
		w := randWindow(rng, domain)
		lo1, hi1, _ := g1.CountRange(w)
		lo2, hi2, _ := g2.CountRange(w)
		lom, him, _ := merged.CountRange(w)
		if lom != lo1+lo2 || him != hi1+hi2 {
			t.Fatalf("merge envelope [%d,%d] != sum [%d,%d]", lom, him, lo1+lo2, hi1+hi2)
		}
	}
	bad := NewGrid(domain, 4)
	if err := merged.Merge(bad); err == nil {
		t.Fatal("merging mismatched resolutions should fail")
	}
}

// exactQuantile computes the rank-ceil(q·n) order statistic brute-force.
func exactQuantile(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	r := quantileRank(q, int64(len(s)))
	return s[r-1]
}

// TestQuantileBoundsCertain: with only certain digests, the bound interval
// must contain the exact quantile for random data and q.
func TestQuantileBoundsCertain(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3000)
		vals := make([]float64, n)
		d := NewTDigest(32)
		for i := range vals {
			// Mixed distribution with duplicates and negatives.
			switch rng.Intn(3) {
			case 0:
				vals[i] = rng.NormFloat64() * 100
			case 1:
				vals[i] = float64(rng.Intn(10))
			default:
				vals[i] = rng.Float64()
			}
			d.Add(vals[i])
		}
		if d.Total() != int64(n) {
			t.Fatalf("total %d want %d", d.Total(), n)
		}
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1} {
			exact := exactQuantile(vals, q)
			lo, hi, ok := QuantileBounds(q, []*TDigest{d}, nil)
			if !ok {
				t.Fatal("expected ok")
			}
			if exact < lo || exact > hi {
				t.Fatalf("seed %d q %v: exact %v outside [%v,%v]", seed, q, exact, lo, hi)
			}
			est := d.Quantile(q)
			if clamp(est, lo, hi) < lo || clamp(est, lo, hi) > hi {
				t.Fatal("clamped estimate escaped the envelope")
			}
		}
	}
}

// TestQuantileBoundsUncertain models straddling blocks: the certain set is
// definitely selected, each uncertain value may or may not be. The bound
// must hold for EVERY realizable subset, checked against random subsets
// plus the two extremes.
func TestQuantileBoundsUncertain(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nc, nu := rng.Intn(400), 1+rng.Intn(400)
		certainVals := make([]float64, nc)
		uncertainVals := make([]float64, nu)
		dc, du := NewTDigest(24), NewTDigest(24)
		for i := range certainVals {
			certainVals[i] = rng.NormFloat64() * 50
			dc.Add(certainVals[i])
		}
		for i := range uncertainVals {
			uncertainVals[i] = rng.NormFloat64()*50 + 20
			du.Add(uncertainVals[i])
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.95, 1} {
			lo, hi, ok := QuantileBounds(q, []*TDigest{dc}, []*TDigest{du})
			if !ok {
				t.Fatal("expected ok")
			}
			trial := func(sel []float64) {
				if len(sel) == 0 {
					return // quantile of an empty selection is undefined
				}
				exact := exactQuantile(sel, q)
				if exact < lo || exact > hi {
					t.Fatalf("seed %d q %v: realizable exact %v outside [%v,%v] (nc=%d nsel=%d)",
						seed, q, exact, lo, hi, nc, len(sel))
				}
			}
			trial(certainVals)
			trial(append(append([]float64(nil), certainVals...), uncertainVals...))
			for k := 0; k < 10; k++ {
				sel := append([]float64(nil), certainVals...)
				for _, v := range uncertainVals {
					if rng.Intn(2) == 0 {
						sel = append(sel, v)
					}
				}
				trial(sel)
			}
		}
	}
}

// TestDigestMergeProperty is the satellite merge property: merging digests
// then querying gives an envelope consistent with querying the combined
// value stream directly — both contain the exact quantile, and totals add.
func TestDigestMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var all []float64
	parts := make([]*TDigest, 4)
	merged := NewTDigest(32)
	for p := range parts {
		parts[p] = NewTDigest(32)
		for i := 0; i < 500; i++ {
			v := rng.NormFloat64() * float64(p+1)
			parts[p].Add(v)
			all = append(all, v)
		}
		merged.Merge(parts[p])
	}
	if merged.Total() != int64(len(all)) {
		t.Fatalf("merged total %d want %d", merged.Total(), len(all))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		exact := exactQuantile(all, q)
		lo1, hi1, _ := QuantileBounds(q, []*TDigest{merged}, nil)
		lo2, hi2, _ := QuantileBounds(q, parts, nil)
		if exact < lo1 || exact > hi1 {
			t.Fatalf("q %v: exact %v outside merged bounds [%v,%v]", q, exact, lo1, hi1)
		}
		if exact < lo2 || exact > hi2 {
			t.Fatalf("q %v: exact %v outside multi-digest bounds [%v,%v]", q, exact, lo2, hi2)
		}
	}
}

func TestKMV(t *testing.T) {
	s := NewKMV(64)
	for i := 0; i < 40; i++ {
		s.Add(int64(i % 20)) // 20 distinct, duplicated
	}
	est, exact := s.Estimate()
	if !exact || est != 20 {
		t.Fatalf("below k: est %v exact %v, want 20 exact", est, exact)
	}
	big := NewKMV(64)
	for i := 0; i < 10000; i++ {
		big.Add(int64(i))
	}
	est, exact = big.Estimate()
	if exact {
		t.Fatal("10000 ids through k=64 cannot be exact")
	}
	if est < 5000 || est > 20000 {
		t.Fatalf("estimate %v too far from 10000", est)
	}
	// Merge ≡ single-stream: same K-minimum set either way.
	a, b, whole := NewKMV(64), NewKMV(64), NewKMV(64)
	for i := 0; i < 3000; i++ {
		if i%2 == 0 {
			a.Add(int64(i))
		} else {
			b.Add(int64(i))
		}
		whole.Add(int64(i))
	}
	a.Merge(b)
	ea, _ := a.Estimate()
	ew, _ := whole.Estimate()
	if math.Abs(ea-ew) > 1e-9 {
		t.Fatalf("merged estimate %v != single-stream %v", ea, ew)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Agg: "count"}).Validate(false); err != nil {
		t.Fatal(err)
	}
	if err := (Spec{Agg: "quantile", Q: 0.5}).Validate(false); err == nil {
		t.Fatal("quantile without a value attribute should fail")
	}
	if err := (Spec{Agg: "quantile", Q: 1.5}).Validate(true); err == nil {
		t.Fatal("q outside [0,1] should fail")
	}
	if err := (Spec{Agg: "median"}).Validate(true); err == nil {
		t.Fatal("unknown aggregate should fail")
	}
}

// TestBuildAlignment: Build chunks records in slice order, so block i of
// the summary must describe records [i·bn, (i+1)·bn).
func TestBuildAlignment(t *testing.T) {
	type rec struct {
		id  int64
		box index.Box
		val float64
	}
	rng := rand.New(rand.NewSource(3))
	domain := index.Box{Min: [3]float64{0, 0, 0}, Max: [3]float64{1, 1, 1}}
	recs := make([]rec, 1000)
	for i := range recs {
		recs[i] = rec{id: int64(i), box: randBox(rng, domain), val: rng.Float64()}
	}
	ps := Build(recs,
		func(r rec) index.Box { return r.box },
		func(r rec) (float64, bool) { return r.val, true },
		func(r rec) int64 { return r.id },
		Config{BlockRecords: 128})
	if len(ps.Blocks) != 8 { // ceil(1000/128)
		t.Fatalf("got %d blocks, want 8", len(ps.Blocks))
	}
	var total int64
	for bi, bs := range ps.Blocks {
		total += bs.Count
		lo, hi := bi*128, (bi+1)*128
		if hi > len(recs) {
			hi = len(recs)
		}
		if bs.Count != int64(hi-lo) {
			t.Fatalf("block %d count %d want %d", bi, bs.Count, hi-lo)
		}
		want := index.EmptyBox()
		for _, r := range recs[lo:hi] {
			want = want.Union(r.box)
		}
		if bs.Bounds != want {
			t.Fatalf("block %d bounds mismatch", bi)
		}
		if bs.Grid.Total() != bs.Count {
			t.Fatalf("block %d grid total %d want %d", bi, bs.Grid.Total(), bs.Count)
		}
		if bs.Digest.Total() != bs.Count {
			t.Fatalf("block %d digest total %d want %d", bi, bs.Digest.Total(), bs.Count)
		}
	}
	if total != ps.Count || ps.Count != 1000 {
		t.Fatalf("counts: blocks %d partition %d", total, ps.Count)
	}
	if len(ps.Grids) != 2 { // default {4, 8}, both coarser than 1000 records
		t.Fatalf("want 2 partition grid resolutions, got %d", len(ps.Grids))
	}
	if ps.Distinct == nil || ps.Digest == nil || !ps.HasValue {
		t.Fatal("partition sketches missing")
	}
	est, exact := ps.Distinct.Estimate()
	if exact || est < 800 || est > 1200 {
		// 1000 distinct ids through k=64: inexact but within ~1/sqrt(k).
		t.Fatalf("distinct: %v exact=%v, want inexact near 1000", est, exact)
	}
	// Erased builder round-trips through any.
	b := NewBuilder(
		func(r rec) index.Box { return r.box },
		func(r rec) (float64, bool) { return r.val, true },
		func(r rec) int64 { return r.id },
		Config{})
	ps2, err := b.Build(recs, 128)
	if err != nil {
		t.Fatal(err)
	}
	if ps2.Count != 1000 || len(ps2.Blocks) != 8 {
		t.Fatalf("builder: count %d blocks %d", ps2.Count, len(ps2.Blocks))
	}
	if _, err := b.Build([]int{1, 2}, 128); err == nil {
		t.Fatal("wrong record type should fail")
	}
}
