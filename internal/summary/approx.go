package summary

import (
	"fmt"
	"math"

	"st4ml/internal/index"
)

// Supported approximate aggregates.
const (
	AggCount    = "count"    // records intersecting the window
	AggHist     = "hist"     // per-cell counts over a Res³ grid on the window
	AggQuantile = "quantile" // q-quantile of the schema's value attribute
)

// Spec describes one approximate query: the selection window plus the
// aggregate to answer.
type Spec struct {
	Window index.Box
	Agg    string
	Q      float64 // quantile in [0,1] (AggQuantile)
	Res    int     // histogram cells per axis (AggHist); 0 means 4, cap 8
}

const (
	defaultHistRes = 4
	maxHistRes     = 8
)

func (s Spec) normalize() Spec {
	if s.Agg == "" {
		s.Agg = AggCount
	}
	if s.Res <= 0 {
		s.Res = defaultHistRes
	}
	if s.Res > maxHistRes {
		s.Res = maxHistRes
	}
	if s.Q < 0 {
		s.Q = 0
	}
	if s.Q > 1 {
		s.Q = 1
	}
	return s
}

// Validate rejects malformed specs before any work happens.
func (s Spec) Validate(hasValue bool) error {
	switch s.Agg {
	case "", AggCount, AggHist:
	case AggQuantile:
		if !hasValue {
			return fmt.Errorf("summary: schema has no value attribute for %q", AggQuantile)
		}
		if math.IsNaN(s.Q) || s.Q < 0 || s.Q > 1 {
			return fmt.Errorf("summary: quantile q=%v outside [0,1]", s.Q)
		}
	default:
		return fmt.Errorf("summary: unknown aggregate %q (want %s|%s|%s)", s.Agg, AggCount, AggHist, AggQuantile)
	}
	return nil
}

// Cell is one histogram bucket of an AggHist answer: its box, the count
// envelope, and the clamped estimate.
type Cell struct {
	Box      index.Box `json:"box"`
	Lo       int64     `json:"lo"`
	Hi       int64     `json:"hi"`
	Estimate float64   `json:"estimate"`
	Bound    float64   `json:"bound"`
}

// Source labels for PartProvenance.
const (
	SourceSummary = "summary" // answered entirely from the sidecar
	SourceMixed   = "mixed"   // sidecar plus exact scans (boundary blocks / deltas)
	SourceScan    = "scan"    // no usable sidecar: transparent exact fallback
)

// PartProvenance records how one partition was answered — the
// estimated-vs-exact provenance surfaced in the explain tree.
type PartProvenance struct {
	ID             int    `json:"id"`
	Source         string `json:"source"`
	SummaryBlocks  int64  `json:"summary_blocks"`
	ScannedBlocks  int64  `json:"scanned_blocks"`
	ScannedRecords int64  `json:"scanned_records"`
}

// Result is the answer envelope of an approximate query: the exact answer
// is guaranteed to lie in [Estimate-Bound, Estimate+Bound] (per cell for
// AggHist), with provenance for the explain tree.
type Result struct {
	Agg      string  `json:"agg"`
	Estimate float64 `json:"estimate"`
	Bound    float64 `json:"bound"`
	// CountLo/CountHi envelope the selected-record count for every
	// aggregate (for AggQuantile they qualify an empty selection).
	CountLo int64  `json:"count_lo"`
	CountHi int64  `json:"count_hi"`
	Cells   []Cell `json:"cells,omitempty"`
	// Distinct is the informational KMV distinct-ID estimate (probabilistic,
	// no hard bound; DistinctExact marks it provably exact).
	Distinct      float64 `json:"distinct,omitempty"`
	DistinctExact bool    `json:"distinct_exact,omitempty"`
	// Exact reports a zero-width envelope (every block was either scanned
	// or fully inside the window).
	Exact bool `json:"exact"`
	// Fallback reports that at least one partition had no usable sidecar
	// and was answered by a transparent exact scan.
	Fallback bool `json:"fallback,omitempty"`

	Parts          []PartProvenance `json:"parts,omitempty"`
	SummaryBlocks  int64            `json:"summary_blocks"`
	ScannedBlocks  int64            `json:"scanned_blocks"`
	ScannedRecords int64            `json:"scanned_records"`
	BytesRead      int64            `json:"bytes_read"`
}

// Partial is the mergeable wire form a cluster shard returns: raw
// envelopes and sketches, finalized only at the router after all shards
// merged (mergeable-sketch semantics: merge-then-finalize must equal a
// single-node run, which the router tests pin).
type Partial struct {
	CountLo  int64   `json:"count_lo"`
	CountHi  int64   `json:"count_hi"`
	CountEst float64 `json:"count_est"`

	CellLo  []int64   `json:"cell_lo,omitempty"`
	CellHi  []int64   `json:"cell_hi,omitempty"`
	CellEst []float64 `json:"cell_est,omitempty"`

	Certain   *TDigest `json:"certain,omitempty"`
	Uncertain *TDigest `json:"uncertain,omitempty"`

	Distinct      *KMV `json:"distinct,omitempty"`
	DistinctExact bool `json:"distinct_exact"`

	Fallback       bool             `json:"fallback,omitempty"`
	Parts          []PartProvenance `json:"parts,omitempty"`
	SummaryBlocks  int64            `json:"summary_blocks"`
	ScannedBlocks  int64            `json:"scanned_blocks"`
	ScannedRecords int64            `json:"scanned_records"`
	BytesRead      int64            `json:"bytes_read"`
}

// Accumulator folds block summaries and exactly-scanned records into one
// envelope. The caller walks partitions with BeginPartition/EndPartition;
// within a partition it classifies each block (certain: fully inside the
// window; uncertain: straddling the boundary, answered from its grid;
// scanned: records delivered individually via Record). Records outside any
// partition scope (deltas, fallback scans) also arrive via Record.
type Accumulator struct {
	spec  Spec
	w     index.Box
	cells []index.Box // AggHist target cells, row-major like Grid

	countLo, countHi int64
	countEst         float64
	cellLo, cellHi   []int64
	cellEst          []float64

	certain, uncertain *TDigest
	distinct           *KMV
	distinctExact      bool

	fallback       bool
	parts          []PartProvenance
	summaryBlocks  int64
	scannedBlocks  int64
	scannedRecords int64
	bytesRead      int64

	// per-partition scope (between BeginPartition and EndPartition)
	inPart                      bool
	partLo, partHi              int64
	partEst                     float64
	prov                        PartProvenance
	partScanned, partSummarized bool
}

// NewAccumulator builds an accumulator for spec (normalized in place).
func NewAccumulator(spec Spec) *Accumulator {
	spec = spec.normalize()
	a := &Accumulator{
		spec:          spec,
		w:             spec.Window,
		certain:       NewTDigest(128),
		uncertain:     NewTDigest(128),
		distinct:      NewKMV(256),
		distinctExact: true,
	}
	if spec.Agg == AggHist {
		a.cells = windowCells(spec.Window, spec.Res)
		n := len(a.cells)
		a.cellLo = make([]int64, n)
		a.cellHi = make([]int64, n)
		a.cellEst = make([]float64, n)
	}
	return a
}

// Spec returns the normalized spec the accumulator answers.
func (a *Accumulator) Spec() Spec { return a.spec }

// windowCells tiles w into res³ closed cells, row-major x-fastest.
func windowCells(w index.Box, res int) []index.Box {
	cells := make([]index.Box, 0, res*res*res)
	edge := func(d, i int) float64 {
		if i >= res {
			return w.Max[d]
		}
		return w.Min[d] + float64(i)*(w.Max[d]-w.Min[d])/float64(res)
	}
	for t := 0; t < res; t++ {
		for y := 0; y < res; y++ {
			for x := 0; x < res; x++ {
				var b index.Box
				c := [3]int{x, y, t}
				for d := 0; d < index.Dims; d++ {
					b.Min[d] = edge(d, c[d])
					b.Max[d] = edge(d, c[d]+1)
					if b.Max[d] < b.Min[d] {
						b.Max[d] = b.Min[d]
					}
				}
				cells = append(cells, b)
			}
		}
	}
	return cells
}

// BeginPartition opens a per-partition scope.
func (a *Accumulator) BeginPartition(id int) {
	a.inPart = true
	a.partLo, a.partHi, a.partEst = 0, 0, 0
	a.prov = PartProvenance{ID: id}
	a.partScanned, a.partSummarized = false, false
}

// EndPartition closes the scope: when ps is non-nil and the partition
// straddles the window, the partition-level multi-resolution grids clamp
// the block-sum envelope (coarser grids overflow less, so they can be
// tighter on wide windows). scanOK marks the scope's Record calls as
// covering everything the summaries did not (false forces Fallback).
func (a *Accumulator) EndPartition(ps *PartitionSummary) {
	if ps != nil && a.partSummarized && !a.w.Contains(ps.Bounds) && len(ps.Blocks) > 0 {
		allCovered := a.prov.ScannedRecords == 0 // clamp only when every record came from summaries
		if allCovered {
			for _, g := range ps.Grids {
				glo, ghi, _ := g.CountRange(a.w)
				if glo > a.partLo {
					a.partLo = glo
				}
				if ghi < a.partHi {
					a.partHi = ghi
				}
			}
			if a.partHi < a.partLo {
				a.partHi = a.partLo
			}
			if a.partEst < float64(a.partLo) {
				a.partEst = float64(a.partLo)
			}
			if a.partEst > float64(a.partHi) {
				a.partEst = float64(a.partHi)
			}
		}
	}
	a.countLo += a.partLo
	a.countHi += a.partHi
	a.countEst += a.partEst
	switch {
	case a.partScanned && a.partSummarized:
		a.prov.Source = SourceMixed
	case a.partScanned:
		a.prov.Source = SourceScan
	default:
		a.prov.Source = SourceSummary
	}
	a.summaryBlocks += a.prov.SummaryBlocks
	a.scannedBlocks += a.prov.ScannedBlocks
	a.scannedRecords += a.prov.ScannedRecords
	a.parts = append(a.parts, a.prov)
	a.inPart = false
}

// LastPart returns the provenance of the most recently closed partition
// scope — what the orchestration attaches to its per-partition trace span.
func (a *Accumulator) LastPart() (PartProvenance, bool) {
	if a.inPart || len(a.parts) == 0 {
		return PartProvenance{}, false
	}
	return a.parts[len(a.parts)-1], true
}

// Fallback marks the current partition (or the whole query) as answered by
// an exact scan because no usable sidecar exists.
func (a *Accumulator) Fallback() { a.fallback = true }

// AddBytesRead accounts sidecar/scan bytes for the bench comparison.
func (a *Accumulator) AddBytesRead(n int64) { a.bytesRead += n }

// BlockCertain folds a block whose bounds lie fully inside the window:
// every record intersects, so the count is exact and its digest is certain.
func (a *Accumulator) BlockCertain(bs *BlockSummary) {
	a.addCount(bs.Count, bs.Count, float64(bs.Count))
	a.certain.Merge(bs.Digest)
	a.distinct.Merge(bs.Distinct)
	a.addHistBlock(bs)
	a.prov.SummaryBlocks++
	a.partSummarized = true
}

// BlockUncertain folds a straddling block from its grid envelope; its
// digest is uncertain (each value may or may not be selected).
func (a *Accumulator) BlockUncertain(bs *BlockSummary) {
	lo, hi, est := bs.Grid.CountRange(a.w)
	if hi > bs.Count {
		hi = bs.Count
	}
	if lo > hi {
		lo = hi
	}
	a.addCount(lo, hi, est)
	a.uncertain.Merge(bs.Digest)
	a.distinct.Merge(bs.Distinct)
	if lo != hi {
		a.distinctExact = false
	}
	a.addHistBlock(bs)
	a.prov.SummaryBlocks++
	a.partSummarized = true
}

// BlockScanned notes a block the caller scans exactly (its records arrive
// via Record).
func (a *Accumulator) BlockScanned(n int) {
	a.prov.ScannedBlocks += int64(n)
	if n > 0 {
		a.partScanned = true
	}
}

// Record folds one exactly-scanned record already known to intersect the
// window: counts are exact and its value lands in the certain digest.
func (a *Accumulator) Record(b index.Box, v float64, hasVal bool, id int64) {
	a.addCount(1, 1, 1)
	if hasVal {
		a.certain.Add(v)
	}
	a.distinct.Add(id)
	for i, c := range a.cells {
		if c.Intersects(b) {
			a.cellLo[i]++
			a.cellHi[i]++
			a.cellEst[i]++
		}
	}
	if a.inPart {
		a.prov.ScannedRecords++
		a.partScanned = true
	} else {
		a.scannedRecords++
	}
}

func (a *Accumulator) addCount(lo, hi int64, est float64) {
	if a.inPart {
		a.partLo += lo
		a.partHi += hi
		a.partEst += est
		return
	}
	a.countLo += lo
	a.countHi += hi
	a.countEst += est
}

// addHistBlock folds a block's grid into the AggHist target cells. Each
// target cell's count uses the same intersects predicate as the global
// count, so the per-cell grid envelope applies verbatim — contained blocks
// included (a block inside the window still spreads uncertainty across
// cells finer than the block).
func (a *Accumulator) addHistBlock(bs *BlockSummary) {
	if len(a.cells) == 0 {
		return
	}
	for i, c := range a.cells {
		if !c.Intersects(bs.Bounds) {
			continue
		}
		lo, hi, est := bs.Grid.CountRange(c)
		if hi > bs.Count {
			hi = bs.Count
		}
		if lo > hi {
			lo = hi
		}
		a.cellLo[i] += lo
		a.cellHi[i] += hi
		a.cellEst[i] += est
	}
}

// Partial snapshots the accumulator in mergeable wire form.
func (a *Accumulator) Partial() *Partial {
	if a.inPart {
		panic("summary: Partial inside an open partition scope")
	}
	return &Partial{
		CountLo: a.countLo, CountHi: a.countHi, CountEst: a.countEst,
		CellLo: a.cellLo, CellHi: a.cellHi, CellEst: a.cellEst,
		Certain: a.certain, Uncertain: a.uncertain,
		Distinct: a.distinct, DistinctExact: a.distinctExact,
		Fallback: a.fallback, Parts: a.parts,
		SummaryBlocks: a.summaryBlocks, ScannedBlocks: a.scannedBlocks,
		ScannedRecords: a.scannedRecords, BytesRead: a.bytesRead,
	}
}

// MergePartial folds a shard's partial into the accumulator. Envelopes
// add, digests and sketches merge, provenance concatenates.
func (a *Accumulator) MergePartial(p *Partial) error {
	if p == nil {
		return nil
	}
	if a.spec.Agg == AggHist &&
		(len(p.CellLo) != len(a.cellLo) || len(p.CellHi) != len(a.cellHi) || len(p.CellEst) != len(a.cellEst)) {
		return fmt.Errorf("summary: partial cell grid mismatch (%d vs %d cells)", len(p.CellLo), len(a.cellLo))
	}
	a.countLo += p.CountLo
	a.countHi += p.CountHi
	a.countEst += p.CountEst
	for i := range p.CellLo {
		a.cellLo[i] += p.CellLo[i]
		a.cellHi[i] += p.CellHi[i]
		a.cellEst[i] += p.CellEst[i]
	}
	a.certain.Merge(p.Certain)
	a.uncertain.Merge(p.Uncertain)
	a.distinct.Merge(p.Distinct)
	a.distinctExact = a.distinctExact && p.DistinctExact
	a.fallback = a.fallback || p.Fallback
	a.parts = append(a.parts, p.Parts...)
	a.summaryBlocks += p.SummaryBlocks
	a.scannedBlocks += p.ScannedBlocks
	a.scannedRecords += p.ScannedRecords
	a.bytesRead += p.BytesRead
	return nil
}

// Finalize closes the envelope into the client-facing Result.
func (a *Accumulator) Finalize() *Result {
	if a.inPart {
		panic("summary: Finalize inside an open partition scope")
	}
	r := &Result{
		Agg:     a.spec.Agg,
		CountLo: a.countLo, CountHi: a.countHi,
		Fallback: a.fallback, Parts: a.parts,
		SummaryBlocks: a.summaryBlocks, ScannedBlocks: a.scannedBlocks,
		ScannedRecords: a.scannedRecords, BytesRead: a.bytesRead,
	}
	est := clamp(a.countEst, float64(a.countLo), float64(a.countHi))
	exact := a.countLo == a.countHi
	switch a.spec.Agg {
	case AggHist:
		r.Estimate = est
		r.Bound = envelope(est, a.countLo, a.countHi)
		for i, c := range a.cells {
			ce := clamp(a.cellEst[i], float64(a.cellLo[i]), float64(a.cellHi[i]))
			r.Cells = append(r.Cells, Cell{
				Box: c, Lo: a.cellLo[i], Hi: a.cellHi[i],
				Estimate: ce, Bound: envelope(ce, a.cellLo[i], a.cellHi[i]),
			})
			exact = exact && a.cellLo[i] == a.cellHi[i]
		}
	case AggQuantile:
		lo, hi, ok := QuantileBounds(a.spec.Q, []*TDigest{a.certain}, []*TDigest{a.uncertain})
		if ok {
			merged := a.certain.Clone()
			merged.Merge(a.uncertain)
			qe := clamp(merged.Quantile(a.spec.Q), lo, hi)
			r.Estimate = qe
			r.Bound = math.Max(qe-lo, hi-qe)
			exact = exact && lo == hi
		}
	default: // AggCount
		r.Estimate = est
		r.Bound = envelope(est, a.countLo, a.countHi)
	}
	r.Distinct, _ = a.distinct.Estimate()
	_, kexact := a.distinct.Estimate()
	r.DistinctExact = kexact && a.distinctExact
	r.Exact = exact
	return r
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// envelope returns the one-sided bound max(est-lo, hi-est).
func envelope(est float64, lo, hi int64) float64 {
	return math.Max(est-float64(lo), float64(hi)-est)
}
