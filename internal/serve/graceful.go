package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"
)

// Drainer is anything with a drain switch: the serving daemon and the
// cluster router both flip readiness to 503 while in-flight work finishes.
type Drainer interface {
	SetDraining(bool)
}

// GracefulConfig configures one graceful HTTP serving loop.
type GracefulConfig struct {
	// Addr is the listen address.
	Addr string
	// Handler is the HTTP handler to serve.
	Handler http.Handler
	// Drainer, when set, is flipped to draining before the listener stops
	// accepting — readiness probes turn 503 first, so a router (or load
	// balancer) stops sending work before connections start failing.
	Drainer Drainer
	// DrainTimeout bounds how long in-flight requests may take to finish
	// after the shutdown signal. 0 means 10s. When it expires, remaining
	// connections are closed hard.
	DrainTimeout time.Duration
	// Logf, when set, receives shutdown progress lines.
	Logf func(format string, args ...any)
	// OnListen, when set, receives the bound address before serving starts
	// (tests bind :0 and learn the port here).
	OnListen func(addr string)
}

// Graceful serves until SIGINT or SIGTERM, then drains: the Drainer flips
// (readiness 503), the listener closes, and in-flight requests get
// DrainTimeout to finish before remaining connections are closed hard. It
// returns nil on a clean drain.
func Graceful(cfg GracefulConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return GracefulContext(ctx, cfg)
}

// GracefulContext is Graceful with an explicit shutdown trigger: serving
// runs until ctx is canceled.
func GracefulContext(ctx context.Context, cfg GracefulConfig) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	drain := cfg.DrainTimeout
	if drain <= 0 {
		drain = 10 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	if cfg.OnListen != nil {
		cfg.OnListen(ln.Addr().String())
	}
	hs := &http.Server{Handler: cfg.Handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logf("draining: refusing new work, waiting up to %s for in-flight requests", drain)
	if cfg.Drainer != nil {
		cfg.Drainer.SetDraining(true)
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		logf("drain timed out (%v): closing remaining connections", err)
		return hs.Close()
	}
	logf("drained cleanly")
	// Serve has returned ErrServerClosed by now; swallow it.
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
