package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/trace"
)

// newSubqueryServer ingests a small NYC store and returns the serving
// daemon plus the dataset dir and pinned metadata.
func newSubqueryServer(t *testing.T) (*Server, string, *storage.Metadata) {
	t.Helper()
	ctx := engine.New(engine.Config{Slots: 2})
	sch, _ := stdata.Lookup("nyc")
	dir := t.TempDir()
	meta, err := sch.Ingest(ctx, datagen.NYC(4000, 7), dir, sch.DefaultPlanner(4, 2),
		selection.IngestOptions{Name: "nyc", SampleFrac: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{Ctx: ctx, ShardName: "s0"})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	return srv, dir, meta
}

func postSubquery(t *testing.T, url string, req SubQueryRequest) (*http.Response, SubQueryResponse) {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(url+"/subquery", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SubQueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func nycWindow() QueryRequest {
	return QueryRequest{
		Dataset: "nyc",
		MinX:    datagen.NYCExtent.MinX, MinY: datagen.NYCExtent.MinY,
		MaxX:   datagen.NYCExtent.MinX + 0.4*(datagen.NYCExtent.MaxX-datagen.NYCExtent.MinX),
		MaxY:   datagen.NYCExtent.MinY + 0.4*(datagen.NYCExtent.MaxY-datagen.NYCExtent.MinY),
		TStart: datagen.Year2013.Start, TEnd: datagen.Year2013.Start + 86400*90,
		Records: true,
	}
}

// TestSubqueryMatchesQuery pins that /subquery over the full pruned
// partition set reassembles into exactly the /query answer, and that its
// span dump carries the shard identity for stitching.
func TestSubqueryMatchesQuery(t *testing.T) {
	srv, _, meta := newSubqueryServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	qreq := nycWindow()
	ids := meta.Prune(qreq.Window().Space, qreq.Window().Time)
	if len(ids) == 0 || len(ids) == meta.NumPartitions() {
		t.Fatalf("window should prune some partitions: %d/%d", len(ids), meta.NumPartitions())
	}

	// Single-node answer via /query.
	b, _ := json.Marshal(qreq)
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var single QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	qreq.Explain = true
	hresp, sub := postSubquery(t, ts.URL, SubQueryRequest{
		QueryRequest: qreq, Partitions: ids,
		Gen: meta.Generation, Count: meta.TotalCount,
	})
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("subquery status %d", hresp.StatusCode)
	}
	if sub.Shard != "s0" || sub.Gen != meta.Generation || sub.Count != meta.TotalCount {
		t.Fatalf("response identity: %+v", sub)
	}
	var merged []json.RawMessage
	var selected int64
	for i, pr := range sub.Parts {
		if pr.ID != ids[i] {
			t.Fatalf("chunk %d is partition %d, want %d", i, pr.ID, ids[i])
		}
		merged = append(merged, pr.Records...)
		selected += pr.Selected
	}
	if selected != single.Stats.SelectedRecords || len(merged) != len(single.Records) {
		t.Fatalf("subquery selected %d/%d records, query %d/%d",
			selected, len(merged), single.Stats.SelectedRecords, len(single.Records))
	}
	for i := range merged {
		if !bytes.Equal(merged[i], single.Records[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
	if len(sub.Spans) == 0 {
		t.Fatal("explain sub-query returned no spans")
	}
	recs := trace.FromWire(sub.Spans)
	var root bool
	for _, s := range recs {
		if s.Name == trace.SpanSubquery {
			if shard, _ := s.Str("shard"); shard != "s0" {
				t.Fatalf("subquery span shard %q", shard)
			}
			root = true
		}
	}
	if !root {
		t.Fatal("no subquery root span in dump")
	}
}

// TestSubqueryGenerationFence pins the 409 path: a fence planned at a
// different generation (or record count) is refused, never answered with
// mixed-generation data.
func TestSubqueryGenerationFence(t *testing.T) {
	srv, _, meta := newSubqueryServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	qreq := nycWindow()
	resp, _ := postSubquery(t, ts.URL, SubQueryRequest{
		QueryRequest: qreq, Partitions: []int{0},
		Gen: meta.Generation + 1, Count: meta.TotalCount,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale gen answered %d, want 409", resp.StatusCode)
	}
	resp, _ = postSubquery(t, ts.URL, SubQueryRequest{
		QueryRequest: qreq, Partitions: []int{0},
		Gen: meta.Generation, Count: meta.TotalCount + 1,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale count answered %d, want 409", resp.StatusCode)
	}
	if srv.Stats().GenConflicts != 2 {
		t.Fatalf("genConflicts = %d, want 2", srv.Stats().GenConflicts)
	}
}

// TestSubqueryCacheKeyedByGeneration pins the satellite regression: after
// an append bumps the dataset generation, a re-fenced sub-query must not
// be served from the old generation's cache entry.
func TestSubqueryCacheKeyedByGeneration(t *testing.T) {
	srv, dir, meta := newSubqueryServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	qreq := QueryRequest{Dataset: "nyc",
		MinX: datagen.NYCExtent.MinX, MinY: datagen.NYCExtent.MinY,
		MaxX: datagen.NYCExtent.MaxX, MaxY: datagen.NYCExtent.MaxY,
		TStart: 0, TEnd: 1 << 60, Records: true}
	all := make([]int, meta.NumPartitions())
	for i := range all {
		all[i] = i
	}
	req := SubQueryRequest{QueryRequest: qreq, Partitions: all,
		Gen: meta.Generation, Count: meta.TotalCount}
	_, first := postSubquery(t, ts.URL, req)
	if first.Cache != "miss" {
		t.Fatalf("first pass cache %q", first.Cache)
	}
	_, again := postSubquery(t, ts.URL, req)
	if again.Cache != "hit" {
		t.Fatalf("second pass cache %q", again.Cache)
	}

	// Append one record through the delta layer: new generation.
	sch, _ := stdata.Lookup("nyc")
	extra := datagen.NYC(1, 99)
	if _, err := sch.Append(extra, dir, "batch-1"); err != nil {
		t.Fatal(err)
	}
	meta2, err := storage.ReadMetadata(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Generation == meta.Generation {
		t.Fatal("append did not bump the generation")
	}
	// The old fence now conflicts; the new fence misses the cache and sees
	// the appended record.
	resp, _ := postSubquery(t, ts.URL, req)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("old fence after append answered %d, want 409", resp.StatusCode)
	}
	req.Gen, req.Count = meta2.Generation, meta2.TotalCount
	hresp, fresh := postSubquery(t, ts.URL, req)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("re-fenced subquery status %d", hresp.StatusCode)
	}
	if fresh.Cache != "miss" {
		t.Fatalf("re-fenced subquery served from stale cache (%q)", fresh.Cache)
	}
	var selected int64
	for _, pr := range fresh.Parts {
		selected += pr.Selected
	}
	var firstSelected int64
	for _, pr := range first.Parts {
		firstSelected += pr.Selected
	}
	if selected != firstSelected+1 {
		t.Fatalf("post-append selected %d, want %d", selected, firstSelected+1)
	}
}

// TestReadyzSplitsFromHealthz pins the drain protocol: draining flips
// readiness (and new queries) to 503 while liveness stays green.
func TestReadyzSplitsFromHealthz(t *testing.T) {
	srv, _, meta := newSubqueryServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if get("/healthz") != 200 || get("/readyz") != 200 {
		t.Fatal("fresh daemon must be live and ready")
	}
	srv.SetDraining(true)
	if !srv.Draining() {
		t.Fatal("Draining() false after SetDraining")
	}
	if get("/healthz") != 200 {
		t.Fatal("draining must not fail liveness")
	}
	if get("/readyz") != http.StatusServiceUnavailable {
		t.Fatal("draining daemon still ready")
	}
	// New work is refused with 503 so routers fail over.
	b, _ := json.Marshal(nycWindow())
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /query answered %d", resp.StatusCode)
	}
	hresp, _ := postSubquery(t, ts.URL, SubQueryRequest{
		QueryRequest: nycWindow(), Partitions: []int{0},
		Gen: meta.Generation, Count: meta.TotalCount,
	})
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /subquery answered %d", hresp.StatusCode)
	}
	srv.SetDraining(false)
	if get("/readyz") != 200 {
		t.Fatal("undrained daemon not ready again")
	}
}
