package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"st4ml/internal/index"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/subscribe"
)

// The serving tier's online path: POST /subscribe registers the request
// window as a standing subscription on the server's hub and streams the
// hub's updates back over Server-Sent Events. Commits reach the hub
// synchronously through the storage OnCommit hook AddDataset registers
// (in-process writers: stingest -demo loops, tests, benches) and through
// the hub's manifest poll (writers in other processes).

// subKeepAlive is how often an idle SSE stream emits a comment frame so
// clients and intermediaries can distinguish quiet from dead.
const subKeepAlive = 15 * time.Second

// subSnapshot is the cached form of one subscription snapshot: the
// per-partition chunks plus the consistent view's generation and sequence
// fence. Cached under the "sub|<name>|<gen>|..." key family, which
// noteGeneration drops whenever the dataset moves.
type subSnapshot struct {
	parts   []stdata.PartResult
	gen     int64
	nextSeq int64
}

// subSource adapts one catalog dataset to the hub's Source: manifests come
// straight from disk (the notifier's cursor must see every commit), delta
// reads go through the schema, and snapshots run the ordinary cached
// ServeQuery path in per-partition mode.
type subSource struct {
	s *Server
	d *Dataset
}

func (src subSource) Manifest() (*storage.Manifest, error) {
	return storage.ReadManifest(src.d.Dir)
}

func (src subSource) ReadDelta(dm storage.DeltaMeta) ([]index.Box, []json.RawMessage, error) {
	meta, _, err := src.d.Meta()
	if err != nil {
		return nil, nil, err
	}
	return src.d.Schema.ReadDelta(src.d.Dir, meta, dm)
}

func (src subSource) Snapshot(w selection.Window, limit int) ([]stdata.PartResult, int64, int64, error) {
	d := src.d
	meta, gen, err := d.Meta()
	if err != nil {
		return nil, 0, 0, err
	}
	src.s.noteGeneration(d.Name, gen)
	key := fmt.Sprintf("sub|%s|%d|%v,%v,%v,%v|%d,%d|%d", d.Name, gen,
		w.Space.MinX, w.Space.MinY, w.Space.MaxX, w.Space.MaxY,
		w.Time.Start, w.Time.End, limit)
	v, err := src.s.cache.GetOrLoad(key, func() (any, int64, error) {
		res, err := d.Schema.ServeQuery(src.s.ctx, d.Dir, meta,
			src.s.fetcher(d, meta, gen, src.s.ctx), w,
			stdata.QueryOptions{Records: true, Limit: limit, PerPartition: true})
		if err != nil {
			return nil, 0, err
		}
		sn := subSnapshot{parts: res.Parts, gen: meta.Generation, nextSeq: meta.NextSeq}
		return sn, snapshotBytes(sn.parts), nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	sn := v.(subSnapshot)
	return sn.parts, sn.gen, sn.nextSeq, nil
}

// snapshotBytes estimates a cached snapshot's resident size.
func snapshotBytes(parts []stdata.PartResult) int64 {
	n := int64(128)
	for _, p := range parts {
		n += 64
		for _, rec := range p.Records {
			n += int64(len(rec)) + 24
		}
	}
	return n
}

// Hub exposes the server's subscription hub — the in-process subscribe
// path tests and benches use to bypass HTTP.
func (s *Server) Hub() *subscribe.Hub { return s.hub }

// attachSubscriptions wires a registered dataset into the online path: the
// hub learns the dataset, and the storage commit hook pokes the hub
// synchronously on every in-process append or compaction.
func (s *Server) attachSubscriptions(d *Dataset) {
	s.hub.Attach(d.Name, subSource{s: s, d: d})
	name := d.Name
	cancel := storage.OnCommit(d.Dir, func(storage.CommitEvent) error {
		return s.hub.Poke(name)
	})
	s.hookMu.Lock()
	s.hookCancels = append(s.hookCancels, cancel)
	s.hookMu.Unlock()
}

// Close releases the server's background resources: the subscription
// poller, every live subscriber, and the storage commit hooks. The daemon
// never calls it (hooks live as long as the process); tests and embedders
// that build many servers per process must.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.hub.StopPolling()
		s.hub.CloseAll()
		s.hookMu.Lock()
		cancels := s.hookCancels
		s.hookCancels = nil
		s.hookMu.Unlock()
		for _, cancel := range cancels {
			cancel()
		}
	})
}

// handleSubscribe registers the request window as a standing subscription
// and streams init/batch/resync updates as SSE frames until the client
// disconnects or the daemon drains.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	var req QueryRequest
	if err := readJSONBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	sub, err := s.hub.Subscribe(req.Dataset, req.Window(), subscribe.Options{Limit: req.Limit})
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, subscribe.ErrUnknownDataset) {
			status = http.StatusNotFound
		}
		s.queryErrors.Add(1)
		writeError(w, status, err)
		return
	}
	defer sub.Close()
	s.subscribes.Add(1)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	for {
		kctx, cancel := context.WithTimeout(ctx, subKeepAlive)
		u, err := sub.Next(kctx)
		cancel()
		switch {
		case err == nil:
			if writeSSE(w, u) != nil {
				return // client gone
			}
			fl.Flush()
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		default:
			// Subscription closed (drain), client context done, or a resync
			// snapshot failed; the stream ends and the client's reconnect
			// starts clean from a fresh init.
			return
		}
	}
}

// writeSSE frames one update as a Server-Sent Event. The event name is the
// update kind and the id encodes generation:seq, so a bare `curl` session
// reads as a self-describing log.
func writeSSE(w io.Writer, u subscribe.Update) error {
	b, err := json.Marshal(u)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d:%d\ndata: %s\n\n", u.Kind, u.Generation, u.Seq, b)
	return err
}
