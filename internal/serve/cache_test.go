package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(100)
	c.Put("a", 1, 40)
	c.Put("b", 2, 40)
	if _, ok := c.Get("a"); !ok { // a is now most recent
		t.Fatal("a missing")
	}
	c.Put("c", 3, 40) // evicts b (least recently used), not a
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.UsedBytes != 80 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheOversizedValueNotCached(t *testing.T) {
	c := NewCache(10)
	c.Put("big", 1, 11)
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("oversized value was cached: %+v", st)
	}
}

func TestCacheReplaceAdjustsBudget(t *testing.T) {
	c := NewCache(100)
	c.Put("a", 1, 60)
	c.Put("a", 2, 30)
	if st := c.Stats(); st.UsedBytes != 30 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("a = %v, want 2", v)
	}
}

func TestCacheDisabledBudget(t *testing.T) {
	c := NewCache(-1)
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a value")
	}
	v, err := c.GetOrLoad("a", func() (any, int64, error) { return 7, 1, nil })
	if err != nil || v != 7 {
		t.Errorf("GetOrLoad = %v, %v", v, err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("disabled cache holds entries: %+v", st)
	}
}

func TestCacheGetOrLoadDeduplicates(t *testing.T) {
	c := NewCache(1 << 20)
	var loads atomic.Int64
	gate := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrLoad("k", func() (any, int64, error) {
				loads.Add(1)
				<-gate // hold every concurrent caller in the miss window
				return "value", 8, nil
			})
			if err != nil || v != "value" {
				t.Errorf("GetOrLoad = %v, %v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Errorf("value loaded %d times, want 1", n)
	}
}

func TestCacheGetOrLoadErrorNotCached(t *testing.T) {
	c := NewCache(1 << 20)
	boom := errors.New("boom")
	if _, err := c.GetOrLoad("k", func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.GetOrLoad("k", func() (any, int64, error) { return 1, 1, nil })
	if err != nil || v != 1 {
		t.Errorf("retry after error = %v, %v", v, err)
	}
}

func TestCacheDropPrefix(t *testing.T) {
	c := NewCache(1 << 20)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("part|nyc|%d", i), i, 10)
		c.Put(fmt.Sprintf("part|porto|%d", i), i, 10)
	}
	if n := c.DropPrefix("part|nyc|"); n != 4 {
		t.Errorf("dropped %d, want 4", n)
	}
	st := c.Stats()
	if st.Entries != 4 || st.UsedBytes != 40 {
		t.Errorf("stats after drop = %+v", st)
	}
	if _, ok := c.Get("part|porto|0"); !ok {
		t.Error("unrelated prefix was dropped")
	}
}

// TestCacheCountersConcurrent hammers one cache from many goroutines —
// mixed Get / GetOrLoad / Put traffic over a key space larger than the
// budget, with deliberate key collisions so some callers join in-progress
// loads — and checks the counter contract: every counter is monotonic
// under observation, and at rest every probe resolved to exactly one hit
// or one miss (hits+misses == lookups). Run under -race this also proves
// the counters and the LRU state tolerate full concurrency.
func TestCacheCountersConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 300
		keys    = 16 // budget holds ~5 entries, so eviction churns constantly
	)
	c := NewCache(100)
	var probes atomic.Int64 // Get + GetOrLoad calls issued by the workers

	// A monitor samples Stats during the storm: each counter may only grow.
	stopMon := make(chan struct{})
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		var prev CacheStats
		for {
			select {
			case <-stopMon:
				return
			default:
			}
			s := c.Stats()
			if s.Hits < prev.Hits || s.Misses < prev.Misses ||
				s.Evictions < prev.Evictions || s.Lookups < prev.Lookups {
				t.Errorf("counter went backwards: %+v after %+v", s, prev)
				return
			}
			prev = s
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("k%d", (w+i)%keys)
				switch i % 3 {
				case 0:
					probes.Add(1)
					c.Get(key)
				case 1:
					probes.Add(1)
					if _, err := c.GetOrLoad(key, func() (any, int64, error) {
						return w, 20, nil
					}); err != nil {
						t.Errorf("GetOrLoad(%s): %v", key, err)
					}
				default:
					c.Put(key, i, 20)
				}
			}
		}()
	}
	wg.Wait()

	// One deterministic hit after the storm: hits during it depend on the
	// scheduler actually interleaving workers (a fully serialized run never
	// re-probes a key while it is still resident), so the hits-path
	// assertion below must not ride on that.
	probes.Add(1)
	if _, err := c.GetOrLoad("hot", func() (any, int64, error) {
		return 1, 20, nil
	}); err != nil {
		t.Fatalf("GetOrLoad(hot): %v", err)
	}
	probes.Add(1)
	if _, ok := c.Get("hot"); !ok {
		t.Fatal("freshly loaded key not resident")
	}
	close(stopMon)
	<-monDone

	s := c.Stats()
	if s.Lookups != probes.Load() {
		t.Errorf("lookups = %d, issued %d probes", s.Lookups, probes.Load())
	}
	if s.Hits+s.Misses != s.Lookups {
		t.Errorf("hits %d + misses %d != lookups %d", s.Hits, s.Misses, s.Lookups)
	}
	if s.Hits == 0 || s.Misses == 0 || s.Evictions == 0 {
		t.Errorf("storm did not exercise all paths: %+v", s)
	}
	if s.UsedBytes > 100 {
		t.Errorf("used %d bytes over the 100-byte budget", s.UsedBytes)
	}
}

// TestCacheInflightJoinCountsMiss pins the accounting rule for the
// dedup path specifically: a caller that joins another goroutine's
// in-progress load gets the value without a disk read, but it still
// counts as a miss — the value was not resident when it asked.
func TestCacheInflightJoinCountsMiss(t *testing.T) {
	c := NewCache(1000)
	loading := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.GetOrLoad("k", func() (any, int64, error) {
			close(loading)
			<-release
			return "v", 10, nil
		})
	}()
	<-loading // the load is now in flight

	const joiners = 4
	var wg sync.WaitGroup
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrLoad("k", func() (any, int64, error) {
				t.Error("joiner ran its own load")
				return nil, 0, nil
			})
			if err != nil || v != "v" {
				t.Errorf("joiner got %v, %v", v, err)
			}
		}()
	}
	// Joiners must count their misses before the load resolves.
	for c.Stats().Misses < 1+joiners {
		select {
		case <-done:
			t.Fatal("load finished before joiners registered")
		default:
		}
	}
	close(release)
	wg.Wait()
	<-done

	s := c.Stats()
	if s.Lookups != 1+joiners || s.Misses != 1+joiners || s.Hits != 0 {
		t.Errorf("stats = %+v, want %d lookups all misses", s, 1+joiners)
	}
}
