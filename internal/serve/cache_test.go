package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(100)
	c.Put("a", 1, 40)
	c.Put("b", 2, 40)
	if _, ok := c.Get("a"); !ok { // a is now most recent
		t.Fatal("a missing")
	}
	c.Put("c", 3, 40) // evicts b (least recently used), not a
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.UsedBytes != 80 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheOversizedValueNotCached(t *testing.T) {
	c := NewCache(10)
	c.Put("big", 1, 11)
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("oversized value was cached: %+v", st)
	}
}

func TestCacheReplaceAdjustsBudget(t *testing.T) {
	c := NewCache(100)
	c.Put("a", 1, 60)
	c.Put("a", 2, 30)
	if st := c.Stats(); st.UsedBytes != 30 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("a = %v, want 2", v)
	}
}

func TestCacheDisabledBudget(t *testing.T) {
	c := NewCache(-1)
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a value")
	}
	v, err := c.GetOrLoad("a", func() (any, int64, error) { return 7, 1, nil })
	if err != nil || v != 7 {
		t.Errorf("GetOrLoad = %v, %v", v, err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("disabled cache holds entries: %+v", st)
	}
}

func TestCacheGetOrLoadDeduplicates(t *testing.T) {
	c := NewCache(1 << 20)
	var loads atomic.Int64
	gate := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrLoad("k", func() (any, int64, error) {
				loads.Add(1)
				<-gate // hold every concurrent caller in the miss window
				return "value", 8, nil
			})
			if err != nil || v != "value" {
				t.Errorf("GetOrLoad = %v, %v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Errorf("value loaded %d times, want 1", n)
	}
}

func TestCacheGetOrLoadErrorNotCached(t *testing.T) {
	c := NewCache(1 << 20)
	boom := errors.New("boom")
	if _, err := c.GetOrLoad("k", func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.GetOrLoad("k", func() (any, int64, error) { return 1, 1, nil })
	if err != nil || v != 1 {
		t.Errorf("retry after error = %v, %v", v, err)
	}
}

func TestCacheDropPrefix(t *testing.T) {
	c := NewCache(1 << 20)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("part|nyc|%d", i), i, 10)
		c.Put(fmt.Sprintf("part|porto|%d", i), i, 10)
	}
	if n := c.DropPrefix("part|nyc|"); n != 4 {
		t.Errorf("dropped %d, want 4", n)
	}
	st := c.Stats()
	if st.Entries != 4 || st.UsedBytes != 40 {
		t.Errorf("stats after drop = %+v", st)
	}
	if _, ok := c.Get("part|porto|0"); !ok {
		t.Error("unrelated prefix was dropped")
	}
}
