package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"st4ml/internal/engine"
	"st4ml/internal/geom"
	"st4ml/internal/selection"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/subscribe"
	"st4ml/internal/summary"
	"st4ml/internal/tempo"
	"st4ml/internal/trace"
)

// QueryRequest is the POST /query body: a dataset name, an ST window, and
// result options.
type QueryRequest struct {
	Dataset string  `json:"dataset"`
	MinX    float64 `json:"minx"`
	MinY    float64 `json:"miny"`
	MaxX    float64 `json:"maxx"`
	MaxY    float64 `json:"maxy"`
	TStart  int64   `json:"tstart"`
	TEnd    int64   `json:"tend"`
	// Records returns the matching records, capped at Limit (0 = all).
	Records bool `json:"records"`
	Limit   int  `json:"limit"`
	// NoCache bypasses the result cache (partitions still cache).
	NoCache bool `json:"no_cache"`
	// Explain traces the query and attaches the aggregated execution report
	// to the response (also enabled by the ?explain=1 URL parameter).
	Explain bool `json:"explain"`
	// Approx answers an aggregate from compaction-time summaries instead of
	// returning records: the response's approx envelope guarantees the exact
	// answer lies within estimate±bound. Records/Limit are ignored.
	Approx bool `json:"approx,omitempty"`
	// Agg is the approximate aggregate: count (default), hist, or quantile.
	Agg string `json:"agg,omitempty"`
	// Q is the quantile in [0,1] (agg=quantile).
	Q float64 `json:"q,omitempty"`
	// Res is the histogram cells-per-axis (agg=hist).
	Res int `json:"res,omitempty"`
	// ApproxScan scans boundary-straddling blocks exactly for a tighter
	// envelope at the cost of extra reads.
	ApproxScan bool `json:"approx_scan,omitempty"`
}

// Window converts the request coordinates to a selection window.
func (q QueryRequest) Window() selection.Window {
	return selection.Window{
		Space: geom.Box(q.MinX, q.MinY, q.MaxX, q.MaxY),
		Time:  tempo.New(q.TStart, q.TEnd),
	}
}

// resultKey is the result-cache key: dataset identity and generation plus
// everything that shapes the response body.
func (q QueryRequest) resultKey(gen int64) string {
	key := fmt.Sprintf("res|%s|%d|%v,%v,%v,%v|%d,%d|%t,%d",
		q.Dataset, gen, q.MinX, q.MinY, q.MaxX, q.MaxY, q.TStart, q.TEnd, q.Records, q.Limit)
	if q.Approx {
		key += fmt.Sprintf("|approx:%s,%v,%d,%t", q.Agg, q.Q, q.Res, q.ApproxScan)
	}
	return key
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	Dataset string `json:"dataset"`
	// Cache is "hit" when the result came from the result cache.
	Cache     string  `json:"cache"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Explain is the aggregated execution report of a traced query.
	Explain *trace.Explain `json:"explain,omitempty"`
	// Approx is the approximate-tier answer envelope (approx=true requests).
	Approx *summary.Result `json:"approx,omitempty"`
	stdata.QueryResult
}

// errorResponse is the JSON error body for non-200 statuses.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /subscribe", s.handleSubscribe)
	mux.HandleFunc("POST /subquery", s.handleSubquery)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// readJSONBody decodes one JSON request body.
func readJSONBody(r *http.Request, dst any) error {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	var req QueryRequest
	if err := readJSONBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("explain") == "1" {
		req.Explain = true
	}
	s.queries.Add(1)
	if req.Approx {
		approx, cache, explain, status, err := s.runApprox(r.Context(), req)
		if err != nil {
			if status >= http.StatusInternalServerError && status != http.StatusGatewayTimeout {
				s.queryErrors.Add(1)
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{
			Dataset:   req.Dataset,
			Cache:     cache,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
			Explain:   explain,
			Approx:    approx,
		})
		return
	}
	res, cache, explain, status, err := s.runQuery(r.Context(), req)
	if err != nil {
		if status >= http.StatusInternalServerError && status != http.StatusGatewayTimeout {
			s.queryErrors.Add(1)
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Dataset:     req.Dataset,
		Cache:       cache,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
		Explain:     explain,
		QueryResult: res,
	})
}

// runQuery resolves, admits, and executes one query. It returns the result,
// the cache disposition ("hit"/"miss"), the execution report when the
// request asked for one, and on failure an HTTP status.
func (s *Server) runQuery(reqCtx context.Context, req QueryRequest) (stdata.QueryResult, string, *trace.Explain, int, error) {
	d, ok := s.catalog.Get(req.Dataset)
	if !ok {
		return stdata.QueryResult{}, "", nil, http.StatusNotFound,
			fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	meta, gen, err := d.Meta()
	if err != nil {
		return stdata.QueryResult{}, "", nil, http.StatusInternalServerError, err
	}
	s.noteGeneration(req.Dataset, gen)

	// Per-request tracing: an explain request gets its own Tracer, scoped
	// onto the shared engine via a trace-scoped Context copy. Untraced
	// requests keep tr nil, so every span below is the zero-cost no-op.
	var tr *trace.Tracer
	if req.Explain {
		tr = trace.New()
	}
	root := tr.StartSpan(0, "query", trace.Str("dataset", req.Dataset))

	key := req.resultKey(gen)
	if !req.NoCache {
		lsp := root.Child(trace.SpanResultLookup)
		v, ok := s.cache.Get(key)
		lsp.End(trace.Bool("hit", ok))
		if ok {
			s.resultHits.Add(1)
			root.End()
			return v.(stdata.QueryResult), "hit", trace.Build(tr.Snapshot()), http.StatusOK, nil
		}
	}
	s.resultMisses.Add(1)

	// Admission: bounded in-flight execution with a bounded wait queue,
	// under the per-request deadline.
	ctx, cancel := context.WithTimeout(reqCtx, s.timeout)
	defer cancel()
	asp := root.Child(trace.SpanAdmission)
	release, err := s.adm.Acquire(ctx)
	asp.End(trace.Bool("acquired", err == nil))
	if errors.Is(err, ErrBusy) {
		root.End(trace.Str("error", err.Error()))
		return stdata.QueryResult{}, "", nil, http.StatusTooManyRequests, err
	}
	if err != nil {
		s.timeouts.Add(1)
		root.End(trace.Str("error", err.Error()))
		return stdata.QueryResult{}, "", nil, http.StatusGatewayTimeout, err
	}

	// Execute on the shared engine. Engine jobs are not preemptible, so on
	// deadline expiry the request is answered 504 while the job drains in
	// the background — it still releases its slot and warms the cache.
	ectx := s.ctx.WithTracer(tr, root.ID())
	type outcome struct {
		res stdata.QueryResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer release()
		res, err := d.Schema.ServeQuery(ectx, d.Dir, meta, s.fetcher(d, meta, gen, ectx), req.Window(),
			stdata.QueryOptions{Records: req.Records, Limit: req.Limit})
		if err == nil && !req.NoCache {
			s.cache.Put(key, res, resultBytes(res))
		}
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		if out.err != nil {
			root.End(trace.Str("error", out.err.Error()))
			return stdata.QueryResult{}, "", nil, http.StatusInternalServerError, out.err
		}
		root.End()
		return out.res, "miss", trace.Build(tr.Snapshot()), http.StatusOK, nil
	case <-ctx.Done():
		s.timeouts.Add(1)
		return stdata.QueryResult{}, "", nil, http.StatusGatewayTimeout,
			fmt.Errorf("serve: query exceeded the %s deadline", s.timeout)
	}
}

// fetcher returns the cache-aware partition loader for one query: hits
// return the pinned partition (records + R-tree), misses read the disk
// exactly once per key even under concurrent identical queries. ectx
// carries the request's trace scope.
func (s *Server) fetcher(d *Dataset, meta *storage.Metadata, gen int64, ectx *engine.Context) func(id int) (stdata.Partition, error) {
	return func(id int) (stdata.Partition, error) {
		fsp := ectx.StartSpan(trace.SpanPartitionFetch, trace.Int("partition", int64(id)))
		key := fmt.Sprintf("part|%s|%d|%d", d.Name, gen, id)
		v, err := s.cache.GetOrLoad(key, func() (any, int64, error) {
			lsp := ectx.StartSpan(trace.SpanPartitionLoad, trace.Int("partition", int64(id)))
			s.partitionLoads.Add(1)
			p, rst, err := d.Schema.LoadPartition(d.Dir, meta, id)
			if err != nil {
				lsp.End(trace.Str("error", err.Error()))
				return nil, 0, err
			}
			ectx.Metrics.AddBlockRead(int64(rst.BlocksScanned), int64(rst.BlocksPruned), rst.RawBytes)
			if rst.RecordsPruned > 0 {
				ectx.Metrics.AddRecordsPruned(rst.RecordsPruned)
			}
			if rst.DeltaFiles > 0 {
				ectx.Metrics.AddDeltaRead(int64(rst.DeltasRead), rst.DeltaRecords)
				dsp := ectx.StartSpan(trace.SpanDeltaRead,
					trace.Int("partition", int64(id)),
					trace.Int("files", int64(rst.DeltasRead)),
					trace.Int("pruned", int64(rst.DeltasPruned)),
					trace.Int("records", rst.DeltaRecords))
				dsp.End()
			}
			lsp.End(trace.Int("records", int64(p.Len())), trace.Int("bytes", p.SizeBytes()),
				trace.Int("blocks", int64(rst.Blocks)),
				trace.Int("blocks_scanned", int64(rst.BlocksScanned)),
				trace.Int("blocks_pruned", int64(rst.BlocksPruned)),
				trace.Int("raw_bytes", rst.RawBytes),
				trace.Int("records_pruned", rst.RecordsPruned))
			return p, p.SizeBytes(), nil
		})
		if err != nil {
			fsp.End(trace.Str("error", err.Error()))
			return nil, err
		}
		fsp.End()
		return v.(stdata.Partition), nil
	}
}

// resultBytes estimates a cached result's resident size.
func resultBytes(res stdata.QueryResult) int64 {
	n := int64(128)
	for _, rec := range res.Records {
		n += int64(len(rec)) + 24
	}
	return n
}

// runApprox resolves, admits, and executes one approximate aggregate query
// against the dataset's compaction-time summaries. Same admission, caching,
// and tracing discipline as runQuery; the answer is the estimate±bound
// envelope, never records.
func (s *Server) runApprox(reqCtx context.Context, req QueryRequest) (*summary.Result, string, *trace.Explain, int, error) {
	d, ok := s.catalog.Get(req.Dataset)
	if !ok {
		return nil, "", nil, http.StatusNotFound, fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	meta, gen, err := d.Meta()
	if err != nil {
		return nil, "", nil, http.StatusInternalServerError, err
	}
	s.noteGeneration(req.Dataset, gen)

	var tr *trace.Tracer
	if req.Explain {
		tr = trace.New()
	}
	root := tr.StartSpan(0, "query", trace.Str("dataset", req.Dataset))

	key := req.resultKey(gen)
	if !req.NoCache {
		lsp := root.Child(trace.SpanResultLookup)
		v, ok := s.cache.Get(key)
		lsp.End(trace.Bool("hit", ok))
		if ok {
			s.resultHits.Add(1)
			root.End()
			return v.(*summary.Result), "hit", trace.Build(tr.Snapshot()), http.StatusOK, nil
		}
	}
	s.resultMisses.Add(1)

	ctx, cancel := context.WithTimeout(reqCtx, s.timeout)
	defer cancel()
	asp := root.Child(trace.SpanAdmission)
	release, err := s.adm.Acquire(ctx)
	asp.End(trace.Bool("acquired", err == nil))
	if errors.Is(err, ErrBusy) {
		root.End(trace.Str("error", err.Error()))
		return nil, "", nil, http.StatusTooManyRequests, err
	}
	if err != nil {
		s.timeouts.Add(1)
		root.End(trace.Str("error", err.Error()))
		return nil, "", nil, http.StatusGatewayTimeout, err
	}

	ectx := s.ctx.WithTracer(tr, root.ID())
	type outcome struct {
		res *summary.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer release()
		res, _, err := d.Schema.ApproxQuery(ectx, d.Dir, meta, req.Window(), stdata.ApproxRequest{
			Agg: req.Agg, Q: req.Q, Res: req.Res, ScanBoundary: req.ApproxScan,
		})
		if err == nil && !req.NoCache {
			s.cache.Put(key, res, approxBytes(res.Cells, len(res.Parts)))
		}
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		if out.err != nil {
			root.End(trace.Str("error", out.err.Error()))
			return nil, "", nil, http.StatusInternalServerError, out.err
		}
		root.End()
		return out.res, "miss", trace.Build(tr.Snapshot()), http.StatusOK, nil
	case <-ctx.Done():
		s.timeouts.Add(1)
		return nil, "", nil, http.StatusGatewayTimeout,
			fmt.Errorf("serve: query exceeded the %s deadline", s.timeout)
	}
}

// approxBytes estimates a cached approx envelope's resident size.
func approxBytes(cells []summary.Cell, parts int) int64 {
	return 256 + int64(len(cells))*72 + int64(parts)*56
}

// noteGeneration eagerly drops a dataset's cached partitions and results
// when its catalog generation moves (a re-ingest, delta append, or
// compaction was detected); without this, stale entries would linger in
// the budget until LRU aged them out.
func (s *Server) noteGeneration(name string, gen int64) {
	s.genMu.Lock()
	last := s.lastGen[name]
	if last == gen {
		s.genMu.Unlock()
		return
	}
	s.lastGen[name] = gen
	s.genMu.Unlock()
	if last != 0 {
		s.cache.DropPrefix("part|" + name + "|")
		s.cache.DropPrefix("res|" + name + "|")
		s.cache.DropPrefix("sub|" + name + "|")
	}
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.catalog.List())
}

// MetricsResponse is the GET /metrics body: every counter family the
// daemon maintains, engine included, in one dump.
type MetricsResponse struct {
	Server    ServerStats     `json:"server"`
	Cache     CacheStats      `json:"cache"`
	Admission AdmissionStats  `json:"admission"`
	Subscribe subscribe.Stats `json:"subscribe"`
	Engine    engine.Snapshot `json:"engine"`
}

// maxMetricsStages bounds the per-stage history included in /metrics.
const maxMetricsStages = 16

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.ctx.Metrics.Snapshot()
	if len(snap.Stages) > maxMetricsStages {
		snap.StagesDropped += int64(len(snap.Stages) - maxMetricsStages)
		snap.Stages = snap.Stages[len(snap.Stages)-maxMetricsStages:]
	}
	writeJSON(w, http.StatusOK, MetricsResponse{
		Server:    s.Stats(),
		Cache:     s.cache.Stats(),
		Admission: s.adm.Stats(),
		Subscribe: s.hub.Stats(),
		Engine:    snap,
	})
}

// handleHealthz is the liveness probe: green as long as the process can
// answer HTTP at all, draining included.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 503 while draining, so a cluster
// router stops routing to this shard before its listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}
