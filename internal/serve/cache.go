package serve

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
)

// Cache is a byte-budgeted LRU over opaque values: pinned partitions and
// marshaled query results share one budget, so a hot result set can push
// cold partitions out and vice versa. Concurrent loads of the same key are
// deduplicated — under a thundering herd of identical cold queries only one
// goroutine reads the disk, everyone else waits for its entry.
//
// Counters follow the engine.Metrics idiom: independent atomics, snapshot
// on demand, no cross-counter consistency promised mid-flight.
type Cache struct {
	budget int64

	mu       sync.Mutex
	order    *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*cacheLoad
	used     int64

	// lookups counts every Get/GetOrLoad probe; each probe resolves to
	// exactly one hit or one miss, so hits+misses == lookups at rest.
	lookups   atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key   string
	val   any
	bytes int64
}

// cacheLoad tracks one in-progress load; later requesters wait on done.
type cacheLoad struct {
	done  chan struct{}
	val   any
	bytes int64
	err   error
}

// NewCache builds a cache holding at most budget bytes (as reported by the
// entries themselves). A non-positive budget disables caching: every Get
// misses and every Put is dropped.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:   budget,
		order:    list.New(),
		items:    map[string]*list.Element{},
		inflight: map[string]*cacheLoad{},
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.lookups.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).val, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put inserts (or replaces) key with a value of the given resident size,
// evicting least-recently-used entries until the budget holds. Values
// larger than the whole budget are not cached.
func (c *Cache) Put(key string, val any, bytes int64) {
	if bytes > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val, bytes)
}

func (c *Cache) putLocked(key string, val any, bytes int64) {
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.used += bytes - ent.bytes
		ent.val, ent.bytes = val, bytes
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val, bytes: bytes})
		c.used += bytes
	}
	for c.used > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.items, ent.key)
		c.used -= ent.bytes
		c.evictions.Add(1)
	}
}

// GetOrLoad returns the cached value for key, or runs load to produce it.
// Concurrent callers of the same cold key share one load; a load error is
// returned to every waiter and nothing is cached.
func (c *Cache) GetOrLoad(key string, load func() (val any, bytes int64, err error)) (any, error) {
	c.lookups.Add(1)
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits.Add(1)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, nil
	}
	if fl, ok := c.inflight[key]; ok {
		// Joining an in-progress load is a miss for this caller too: the
		// value was not resident when it asked.
		c.misses.Add(1)
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		// The loader's entry may already be evicted; its value is still
		// valid for this request.
		return fl.val, nil
	}
	c.misses.Add(1)
	fl := &cacheLoad{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	fl.val, fl.bytes, fl.err = load()
	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil && fl.bytes <= c.budget {
		c.putLocked(key, fl.val, fl.bytes)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}

// DropPrefix removes every entry whose key starts with prefix — the eager
// invalidation path when a dataset's metadata generation changes.
func (c *Cache) DropPrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if strings.HasPrefix(ent.key, prefix) {
			c.order.Remove(el)
			delete(c.items, ent.key)
			c.used -= ent.bytes
			dropped++
		}
		el = next
	}
	return dropped
}

// CacheStats is a point-in-time copy of the cache counters.
type CacheStats struct {
	Lookups     int64 `json:"lookups"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Entries     int   `json:"entries"`
	UsedBytes   int64 `json:"used_bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries, used := len(c.items), c.used
	c.mu.Unlock()
	return CacheStats{
		Lookups:     c.lookups.Load(),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Entries:     entries,
		UsedBytes:   used,
		BudgetBytes: c.budget,
	}
}
