package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
	"st4ml/internal/subscribe"
)

// replayState rebuilds a subscriber's view by the documented replay rule:
// init seeds per-partition chunks, batch events append to their partition,
// resync replaces wholesale. Flattening in ascending partition id order must
// match a fresh batch query byte for byte — the metamorphic property this
// file pins.
type replayState struct {
	parts   map[int][]json.RawMessage
	resyncs int
	dropped int64
}

func (r *replayState) apply(u subscribe.Update) {
	switch u.Kind {
	case subscribe.KindInit, subscribe.KindResync:
		r.parts = map[int][]json.RawMessage{}
		for _, p := range u.Parts {
			r.parts[p.ID] = append([]json.RawMessage(nil), p.Records...)
		}
		if u.Kind == subscribe.KindResync {
			r.resyncs++
			r.dropped += u.Dropped
		}
	case subscribe.KindBatch:
		r.parts[u.Partition] = append(r.parts[u.Partition], u.Records...)
	}
}

func (r *replayState) flatten() []byte {
	ids := make([]int, 0, len(r.parts))
	for id := range r.parts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var buf bytes.Buffer
	for _, id := range ids {
		for _, rec := range r.parts[id] {
			buf.Write(rec)
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

func flattenRecords(recs []json.RawMessage) []byte {
	var buf bytes.Buffer
	for _, rec := range recs {
		buf.Write(rec)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// drainSub applies every already-delivered update (hook-driven pushes are
// synchronous, so after an Append returns the queue is populated).
func drainSub(t *testing.T, sub *subscribe.Subscriber, st *replayState) {
	t.Helper()
	for sub.Pending() > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		u, err := sub.Next(ctx)
		cancel()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		st.apply(u)
	}
}

// freshRecords runs the window as an ordinary batch query over HTTP and
// returns its flattened record bytes — the ground truth a replayed stream
// must reproduce.
func freshRecords(t *testing.T, url string, req QueryRequest) []byte {
	t.Helper()
	req.Records = true
	res, code := postQuery(t, url, req)
	if code != http.StatusOK {
		t.Fatalf("fresh query status %d", code)
	}
	return flattenRecords(res.Records)
}

// fullExtent is a window matching every NYC record.
func fullExtent() QueryRequest {
	return QueryRequest{
		Dataset: "nyc",
		MinX:    -180, MinY: -90, MaxX: 180, MaxY: 90,
		TStart: 0, TEnd: 1 << 60,
		Records: true,
	}
}

// TestMetamorphicSubscribeReplay is the tentpole's property wall: across
// seeded window × batch × subscriber combos — with and without a
// mid-sequence compaction — replaying the push stream after every commit
// yields byte-for-byte the records a fresh batch query of the same window
// returns. ≥64 combos are checked (each drained-subscriber × commit
// verification is one combo).
func TestMetamorphicSubscribeReplay(t *testing.T) {
	sch, _ := stdata.Lookup("nyc")
	combos := 0
	for _, compactMid := range []bool{false, true} {
		ctx := engine.New(engine.Config{Slots: 4})
		dir := ingestNYC(t, ctx, 3000)
		srv := NewServer(Config{Ctx: ctx, CacheBytes: 32 << 20, SubscribePoll: -1})
		defer srv.Close()
		if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		windows := append(nycWindows(7), fullExtent())
		type client struct {
			req QueryRequest
			sub *subscribe.Subscriber
			st  replayState
		}
		var clients []*client
		for _, req := range windows {
			// Two subscribers per window: fan-out must deliver to both.
			for dup := 0; dup < 2; dup++ {
				sub, err := srv.Hub().Subscribe("nyc", req.Window(), subscribe.Options{})
				if err != nil {
					t.Fatal(err)
				}
				defer sub.Close()
				clients = append(clients, &client{req: req, sub: sub})
			}
		}

		for b := 0; b < 3; b++ {
			if _, err := sch.Append(datagen.NYC(400, int64(100+b)), dir,
				fmt.Sprintf("meta-%v-%d", compactMid, b)); err != nil {
				t.Fatal(err)
			}
			if compactMid && b == 1 {
				if _, err := sch.Compact(dir, storage.CompactOptions{MinDeltas: 1, GCGrace: 0}); err != nil {
					t.Fatal(err)
				}
			}
			for ci, c := range clients {
				drainSub(t, c.sub, &c.st)
				got := c.st.flatten()
				want := freshRecords(t, ts.URL, c.req)
				if !bytes.Equal(got, want) {
					t.Fatalf("compact=%v commit=%d client=%d: replay diverged (%d bytes vs %d)",
						compactMid, b, ci, len(got), len(want))
				}
				combos++
			}
		}
		if compactMid {
			// The compaction must have reached every subscriber as a resync.
			for ci, c := range clients {
				if c.st.resyncs == 0 {
					t.Fatalf("client %d saw no resync across a compaction", ci)
				}
			}
		}
	}
	if combos < 64 {
		t.Fatalf("only %d combos verified, want >= 64", combos)
	}
}

// TestSubscribeStalledSubscriber pins the backpressure path end to end: a
// subscriber that never drains overflows its bounded queue, events drop,
// and the eventual drain recovers — via resync — to exactly the fresh
// query's bytes.
func TestSubscribeStalledSubscriber(t *testing.T) {
	sch, _ := stdata.Lookup("nyc")
	ctx := engine.New(engine.Config{Slots: 4})
	dir := ingestNYC(t, ctx, 1500)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 32 << 20, SubscribePoll: -1})
	defer srv.Close()
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := fullExtent()
	sub, err := srv.Hub().Subscribe("nyc", req.Window(), subscribe.Options{Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Stall: commit far more batches than the queue holds, draining nothing.
	for b := 0; b < 6; b++ {
		if _, err := sch.Append(datagen.NYC(150, int64(300+b)), dir,
			fmt.Sprintf("stall-%d", b)); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Hub().Stats(); st.EventsDropped == 0 {
		t.Fatalf("no events dropped despite the stall: %+v", st)
	}

	var rs replayState
	drainSub(t, sub, &rs)
	if rs.resyncs == 0 || rs.dropped == 0 {
		t.Fatalf("stalled subscriber recovered without a resync (resyncs=%d dropped=%d)",
			rs.resyncs, rs.dropped)
	}
	if got, want := rs.flatten(), freshRecords(t, ts.URL, req); !bytes.Equal(got, want) {
		t.Fatalf("post-stall replay diverged (%d bytes vs %d)", len(got), len(want))
	}
}

// TestSubscribeCompactionRace races a compactor loop against appends while
// subscribers drain concurrently; once everything quiesces the replayed
// streams must still equal the fresh query byte for byte. Runs under -race
// in make check.
func TestSubscribeCompactionRace(t *testing.T) {
	sch, _ := stdata.Lookup("nyc")
	ctx := engine.New(engine.Config{Slots: 4})
	dir := ingestNYC(t, ctx, 1500)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 32 << 20, SubscribePoll: -1})
	defer srv.Close()
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	windows := []QueryRequest{fullExtent(), nycWindows(3)[1]}
	type client struct {
		req QueryRequest
		sub *subscribe.Subscriber
		st  replayState
	}
	var clients []*client
	for _, req := range windows {
		sub, err := srv.Hub().Subscribe("nyc", req.Window(), subscribe.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		clients = append(clients, &client{req: req, sub: sub})
	}

	// Drainers apply updates continuously while the writers run.
	drainCtx, stopDrain := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			for {
				u, err := c.sub.Next(drainCtx)
				if err != nil {
					return
				}
				c.st.apply(u)
			}
		}(c)
	}

	// The compactor races the appender; a long GC grace keeps superseded
	// files alive for readers pinned on older generations (the production
	// MVCC discipline).
	compDone := make(chan struct{})
	stopComp := make(chan struct{})
	go func() {
		defer close(compDone)
		for {
			select {
			case <-stopComp:
				return
			default:
			}
			if _, err := sch.Compact(dir, storage.CompactOptions{MinDeltas: 1, GCGrace: time.Hour}); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	for b := 0; b < 8; b++ {
		if _, err := sch.Append(datagen.NYC(120, int64(500+b)), dir,
			fmt.Sprintf("race-%d", b)); err != nil {
			t.Fatal(err)
		}
	}
	close(stopComp)
	<-compDone
	stopDrain()
	wg.Wait()

	// Quiesced: drain the remainder single-threaded and compare.
	for ci, c := range clients {
		drainSub(t, c.sub, &c.st)
		got := c.st.flatten()
		want := freshRecords(t, ts.URL, c.req)
		if !bytes.Equal(got, want) {
			t.Fatalf("client %d: replay diverged after compaction race (%d bytes vs %d)",
				ci, len(got), len(want))
		}
	}
}

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	event string
	id    string
	data  []byte
}

// readFrame parses the next SSE frame, skipping keepalive comments.
func readFrame(br *bufio.Reader) (sseFrame, error) {
	var fr sseFrame
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return fr, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if fr.data != nil {
				return fr, nil
			}
			// blank after a comment: keep reading
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "event: "):
			fr.event = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			fr.id = line[len("id: "):]
		case strings.HasPrefix(line, "data: "):
			fr.data = []byte(line[len("data: "):])
		}
	}
}

// decodeUpdate parses one SSE data payload into a fresh Update (a fresh
// struct per frame: absent JSON fields must decode as zero values).
func decodeUpdate(t *testing.T, data []byte) subscribe.Update {
	t.Helper()
	var u subscribe.Update
	if err := json.Unmarshal(data, &u); err != nil {
		t.Fatalf("bad update payload %s: %v", data, err)
	}
	return u
}

// openStream POSTs /subscribe and returns the live SSE body.
func openStream(t *testing.T, url string, req QueryRequest) (io.ReadCloser, *bufio.Reader) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	return resp.Body, bufio.NewReader(resp.Body)
}

// TestSubscribeSSEDisconnectResync pins the transport contract across a
// mid-batch disconnect: a client that drops its stream between two commits
// reconnects, gets a fresh init whose fence covers everything it missed,
// resumes replay from it, and converges to the fresh query's exact bytes.
// Also exercises the SSE framing (event names, generation:seq ids) and the
// /metrics subscriber counters.
func TestSubscribeSSEDisconnectResync(t *testing.T) {
	sch, _ := stdata.Lookup("nyc")
	ctx := engine.New(engine.Config{Slots: 4})
	dir := ingestNYC(t, ctx, 1500)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 32 << 20, SubscribePoll: -1})
	defer srv.Close()
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req := fullExtent()

	body, br := openStream(t, ts.URL, req)
	fr, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if fr.event != "init" {
		t.Fatalf("first frame event %q, want init", fr.event)
	}
	var rs replayState
	rs.apply(decodeUpdate(t, fr.data))

	// One commit lands and streams; the client reads part of the commit's
	// frames, then drops the connection mid-batch.
	if _, err := sch.Append(datagen.NYC(200, 700), dir, "sse-0"); err != nil {
		t.Fatal(err)
	}
	fr, err = readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if fr.event != "batch" {
		t.Fatalf("post-commit frame event %q, want batch", fr.event)
	}
	var gen, seq int64
	if _, err := fmt.Sscanf(fr.id, "%d:%d", &gen, &seq); err != nil || gen == 0 {
		t.Fatalf("frame id %q does not parse as generation:seq", fr.id)
	}
	body.Close() // mid-stream disconnect: later frames of this commit are lost

	// More commits while disconnected.
	if _, err := sch.Append(datagen.NYC(200, 701), dir, "sse-1"); err != nil {
		t.Fatal(err)
	}

	// Reconnect: the fresh init's snapshot covers both the half-read commit
	// and everything missed while away.
	body2, br2 := openStream(t, ts.URL, req)
	defer body2.Close()
	fr, err = readFrame(br2)
	if err != nil {
		t.Fatal(err)
	}
	if fr.event != "init" {
		t.Fatalf("reconnect frame event %q, want init", fr.event)
	}
	rs = replayState{}
	rs.apply(decodeUpdate(t, fr.data))

	// One more commit streams incrementally on the new connection.
	if _, err := sch.Append(datagen.NYC(150, 702), dir, "sse-2"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		fr, err = readFrame(br2)
		if err != nil {
			t.Fatal(err)
		}
		if fr.event != "batch" {
			t.Fatalf("frame event %q, want batch", fr.event)
		}
		rs.apply(decodeUpdate(t, fr.data))
		if got, want := rs.flatten(), freshRecords(t, ts.URL, req); bytes.Equal(got, want) {
			break // all of sse-2's frames arrived and replay converged
		}
		if time.Now().After(deadline) {
			t.Fatal("replay never converged to the fresh query after reconnect")
		}
	}

	var m MetricsResponse
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Server.Subscribes != 2 {
		t.Errorf("subscribes counter = %d, want 2", m.Server.Subscribes)
	}
	if m.Subscribe.TotalSubscribers != 2 || m.Subscribe.EventsPushed == 0 {
		t.Errorf("hub stats = %+v", m.Subscribe)
	}
}

// TestSubscribeDrainingRefused pins that a draining daemon answers 503.
func TestSubscribeDrainingRefused(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	dir := ingestNYC(t, ctx, 500)
	srv := NewServer(Config{Ctx: ctx, SubscribePoll: -1})
	defer srv.Close()
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.SetDraining(true)
	body, _ := json.Marshal(fullExtent())
	resp, err := http.Post(ts.URL+"/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining subscribe status %d, want 503", resp.StatusCode)
	}
	if _, err := srv.Hub().Subscribe("nope", fullExtent().Window(), subscribe.Options{}); err == nil {
		t.Fatal("unknown dataset subscribed")
	}
}

// TestGracefulDrainCutsSSE pins satellite 3's contract: a drain with a live
// long-lived SSE stream must not hang until the drain timeout — entering
// the drain closes every subscription, the handler returns, and shutdown
// completes quickly; the client sees its stream end.
func TestGracefulDrainCutsSSE(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	dir := ingestNYC(t, ctx, 800)
	srv := NewServer(Config{Ctx: ctx, SubscribePoll: -1})
	defer srv.Close()
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}

	gctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- GracefulContext(gctx, GracefulConfig{
			Addr:         "127.0.0.1:0",
			Handler:      srv.Handler(),
			Drainer:      srv,
			DrainTimeout: 30 * time.Second, // far beyond what a correct drain needs
			OnListen:     func(addr string) { addrc <- addr },
		})
	}()
	addr := <-addrc

	body, br := openStream(t, "http://"+addr, fullExtent())
	defer body.Close()
	if fr, err := readFrame(br); err != nil || fr.event != "init" {
		t.Fatalf("init frame: %v %+v", err, fr)
	}

	streamEnded := make(chan error, 1)
	go func() {
		_, err := readFrame(br) // blocks until the server ends the stream
		streamEnded <- err
	}()

	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful loop returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain hung on the live SSE stream")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v with an idle SSE stream; the hub close should cut it immediately", elapsed)
	}
	select {
	case err := <-streamEnded:
		if err == nil {
			t.Fatal("stream delivered a frame instead of ending")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client stream did not end after the drain")
	}
}
