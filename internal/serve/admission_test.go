package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(2, 0)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.InFlight != 2 || st.Admitted != 2 {
		t.Errorf("stats = %+v", st)
	}
	r1()
	r1() // release is idempotent
	r2()
	if st := a.Stats(); st.InFlight != 0 {
		t.Errorf("stats after release = %+v", st)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := NewAdmission(1, 0) // no queue at all
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrBusy) {
		t.Errorf("second acquire = %v, want ErrBusy", err)
	}
	if st := a.Stats(); st.ShedBusy != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdmissionQueueThenTimeout(t *testing.T) {
	a := NewAdmission(1, 1)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue and times out with ErrTimedOut; while
	// it waits, a second arrival overflows the queue and sheds ErrBusy.
	waiterIn := make(chan struct{})
	waiterOut := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		close(waiterIn)
		_, err := a.Acquire(ctx)
		waiterOut <- err
	}()
	<-waiterIn
	deadline := time.Now().Add(time.Second)
	for a.Stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrBusy) {
		t.Errorf("overflow acquire = %v, want ErrBusy", err)
	}
	if err := <-waiterOut; !errors.Is(err, ErrTimedOut) {
		t.Errorf("queued waiter = %v, want ErrTimedOut", err)
	}
	release()
	if st := a.Stats(); st.ShedBusy != 1 || st.ShedTimeout != 1 || st.Waiting != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdmissionQueuedWaiterGetsSlot(t *testing.T) {
	a := NewAdmission(1, 4)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := a.Acquire(context.Background())
		if err != nil {
			t.Errorf("queued acquire = %v", err)
			return
		}
		close(got)
		r()
	}()
	deadline := time.Now().Add(time.Second)
	for a.Stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("released slot never reached the queued waiter")
	}
	wg.Wait()
}
