package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"st4ml/internal/engine"
	"st4ml/internal/stdata"
	"st4ml/internal/summary"
)

// summarizeNYC backfills summary sidecars for an ingested dataset dir.
func summarizeNYC(t *testing.T, dir string) {
	t.Helper()
	sch, _ := stdata.Lookup("nyc")
	if n, err := sch.BuildSummaries(dir, summary.Config{}); err != nil || n == 0 {
		t.Fatalf("BuildSummaries = (%d, %v)", n, err)
	}
}

// TestServeApproxQuery: POST /query with approx=true answers from the
// summary tier — the exact count (from the exact path over the same
// window) lies inside the envelope, the explain tree carries per-partition
// provenance, and the envelope caches under its own key.
func TestServeApproxQuery(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	dir := ingestNYC(t, ctx, 5000)
	summarizeNYC(t, dir)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 32 << 20})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, req := range nycWindows(4) {
		exactRes, code := postQuery(t, ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("exact query status %d", code)
		}
		exact := exactRes.Stats.SelectedRecords

		areq := req
		areq.Records = false
		areq.Approx = true
		areq.Agg = summary.AggCount
		areq.Explain = true
		res, code := postQuery(t, ts.URL, areq)
		if code != http.StatusOK {
			t.Fatalf("approx query status %d", code)
		}
		if res.Approx == nil {
			t.Fatal("no approx envelope in response")
		}
		a := res.Approx
		if exact < a.CountLo || exact > a.CountHi {
			t.Fatalf("exact %d outside [%d,%d]", exact, a.CountLo, a.CountHi)
		}
		if float64(exact) < a.Estimate-a.Bound || float64(exact) > a.Estimate+a.Bound {
			t.Fatalf("exact %d outside %v±%v", exact, a.Estimate, a.Bound)
		}
		if a.Fallback {
			t.Fatal("unexpected fallback with sidecars present")
		}
		if res.Explain == nil || res.Explain.Approx == nil {
			t.Fatal("no approx section in explain")
		}
		if len(res.Explain.Approx.Parts) != len(a.Parts) {
			t.Fatalf("explain has %d parts, envelope %d",
				len(res.Explain.Approx.Parts), len(a.Parts))
		}
		var sb int64
		for _, p := range res.Explain.Approx.Parts {
			sb += p.SummaryBlocks
		}
		if sb != res.Explain.Approx.SummaryBlocks || sb != a.SummaryBlocks {
			t.Fatalf("explain parts sum %d, totals %d/%d",
				sb, res.Explain.Approx.SummaryBlocks, a.SummaryBlocks)
		}

		// The envelope caches under its own key, separate from the exact
		// result for the same window.
		areq.Explain = false
		hit, _ := postQuery(t, ts.URL, areq)
		if hit.Cache != "hit" {
			t.Fatalf("repeat approx query cache = %q", hit.Cache)
		}
		if hit.Approx == nil || hit.Approx.CountLo != a.CountLo || hit.Approx.CountHi != a.CountHi {
			t.Fatal("cached approx envelope differs")
		}
	}
}

// TestServeApproxAbsentFromExactResponses pins wire compatibility: a
// request without approx=true serializes with no approx field at all, so
// pre-existing clients see byte-identical response shapes.
func TestServeApproxAbsentFromExactResponses(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	dir := ingestNYC(t, ctx, 1000)
	summarizeNYC(t, dir)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 8 << 20})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := nycWindows(1)[0]
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["approx"]; ok {
		t.Fatal("exact response leaks an approx field")
	}
}

// TestServeApproxFallbackWithoutSummaries: a dataset never summarized
// still answers approx=true — through the flagged exact fallback.
func TestServeApproxFallbackWithoutSummaries(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	dir := ingestNYC(t, ctx, 1000)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 8 << 20})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := nycWindows(2)[1]
	exactRes, _ := postQuery(t, ts.URL, req)
	areq := req
	areq.Records = false
	areq.Approx = true
	res, code := postQuery(t, ts.URL, areq)
	if code != http.StatusOK {
		t.Fatalf("approx query status %d", code)
	}
	a := res.Approx
	if a == nil || !a.Fallback || !a.Exact || a.Bound != 0 {
		t.Fatalf("fallback envelope: %+v", a)
	}
	if a.CountLo != exactRes.Stats.SelectedRecords {
		t.Fatalf("fallback count %d, exact %d", a.CountLo, exactRes.Stats.SelectedRecords)
	}
	for _, p := range a.Parts {
		if p.Source != summary.SourceScan {
			t.Fatalf("partition %d source %q, want scan", p.ID, p.Source)
		}
	}
}
