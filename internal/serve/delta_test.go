package serve

import (
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"st4ml/internal/datagen"
	"st4ml/internal/engine"
	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

// allNYC is a window covering the whole synthetic corpus, so selected
// counts track the dataset's total record count.
func allNYC() QueryRequest {
	return QueryRequest{
		Dataset: "nyc",
		MinX:    -180, MinY: -90, MaxX: 180, MaxY: 90,
		TStart: 0, TEnd: 1 << 40,
	}
}

// TestCatalogDetectsInPlaceRewrite is the regression for the revalidation
// bug: delta appends and compactions rewrite the dataset in place without
// ever touching metadata.json, so an mtime-only probe would keep serving
// the stale pinned view. The catalog must revalidate on the manifest
// generation and reload.
func TestCatalogDetectsInPlaceRewrite(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	dir := ingestNYC(t, ctx, 2000)
	cat := NewCatalog()
	d, err := cat.Register("nyc", "nyc", dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, gen0, err := d.Meta()
	if err != nil {
		t.Fatal(err)
	}
	base := meta.TotalCount

	// Out-of-band append: metadata.json untouched, manifest committed.
	extra := datagen.NYC(333, 7)
	if _, err := storage.AppendDelta(dir, stdata.EventRecC, extra, stdata.EventRec.Box,
		storage.AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	meta, gen1, err := d.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if gen1 == gen0 {
		t.Fatal("catalog generation did not move after an in-place append")
	}
	if meta.TotalCount != base+333 {
		t.Fatalf("pinned view has %d records, want %d", meta.TotalCount, base+333)
	}

	// Out-of-band compaction: also in place, also must be detected.
	if _, err := storage.Compact(dir, stdata.EventRecC, stdata.EventRec.Box,
		storage.CompactOptions{MinDeltas: 1, GCGrace: 0}); err != nil {
		t.Fatal(err)
	}
	meta, gen2, err := d.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if gen2 == gen1 {
		t.Fatal("catalog generation did not move after an in-place compaction")
	}
	if meta.TotalCount != base+333 || meta.DeltaCount() != 0 {
		t.Fatalf("post-compaction view: %d records, %d deltas", meta.TotalCount, meta.DeltaCount())
	}
	// Stable when nothing changes.
	if _, gen3, err := d.Meta(); err != nil || gen3 != gen2 {
		t.Fatalf("generation moved without a change: %d -> %d (err %v)", gen2, gen3, err)
	}
}

// TestServedAcrossConcurrentCompaction proves the daemon serves correct
// results while appends and a compaction rewrite the dataset underneath
// it, without a restart: concurrent full-extent queries must never see a
// torn state — observed counts only grow (appends) and never regress
// (compaction preserves the record set) — and the final count equals the
// full corpus.
func TestServedAcrossConcurrentCompaction(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 4})
	dir := ingestNYC(t, ctx, 3000)
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 64 << 20, MaxInFlight: 8, MaxQueue: 256})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := allNYC()
	if res, code := postQuery(t, ts.URL, req); code != 200 || res.Stats.SelectedRecords != 3000 {
		t.Fatalf("warmup: code=%d res=%+v", code, res)
	}

	var stopFlag atomic.Bool
	var mu sync.Mutex
	var counts []int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopFlag.Load() {
				res, code := postQuery(t, ts.URL, req)
				if code != 200 {
					t.Errorf("query failed with status %d", code)
					return
				}
				mu.Lock()
				counts = append(counts, res.Stats.SelectedRecords)
				mu.Unlock()
			}
		}()
	}

	// Writer: stream appends, then compact, while the queriers hammer.
	extra := datagen.NYC(1000, 9)
	for b := 0; b < 5; b++ {
		lo, hi := b*200, (b+1)*200
		if _, err := storage.AppendDelta(dir, stdata.EventRecC, extra[lo:hi],
			stdata.EventRec.Box, storage.AppendOptions{}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Long GC grace keeps pre-compaction files for queries still holding
	// the previous generation's view.
	if _, err := storage.Compact(dir, stdata.EventRecC, stdata.EventRec.Box,
		storage.CompactOptions{MinDeltas: 1, GCGrace: time.Hour}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	stopFlag.Store(true)
	wg.Wait()

	// No torn states: counts only ever grow, in batch-of-200 steps.
	last := int64(0)
	for i, c := range counts {
		if c < last {
			t.Fatalf("observed count regressed at %d: %d -> %d", i, last, c)
		}
		if (c-3000)%200 != 0 {
			t.Fatalf("observed count %d is not base + whole batches", c)
		}
		last = c
	}
	// And the settled daemon serves the full corpus with zero live deltas.
	res, code := postQuery(t, ts.URL, req)
	if code != 200 || res.Stats.SelectedRecords != 4000 {
		t.Fatalf("final: code=%d selected=%d want 4000", code, res.Stats.SelectedRecords)
	}
	info := srv.Catalog().List()[0]
	if info.Records != 4000 {
		t.Fatalf("catalog reports %d records", info.Records)
	}
}

// TestServedDeltaExplain checks the observability thread: an explained
// query over a dataset with live deltas reports the delta reads in both
// the explain output and the engine counters.
func TestServedDeltaExplain(t *testing.T) {
	ctx := engine.New(engine.Config{Slots: 2})
	dir := ingestNYC(t, ctx, 2000)
	if _, err := storage.AppendDelta(dir, stdata.EventRecC, datagen.NYC(400, 11),
		stdata.EventRec.Box, storage.AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{Ctx: ctx, CacheBytes: 32 << 20})
	if err := srv.AddDataset("nyc", "nyc", dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := allNYC()
	req.Explain = true
	res, code := postQuery(t, ts.URL, req)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if res.Explain == nil {
		t.Fatal("no explain attached")
	}
	if res.Explain.DeltaFilesRead == 0 || res.Explain.DeltaRecords == 0 {
		t.Fatalf("explain reports no delta reads: %+v", res.Explain)
	}
	m := getMetrics(t, ts.URL)
	if m.Engine.DeltasRead == 0 || m.Engine.DeltaRecords == 0 {
		t.Fatalf("engine counters report no delta reads: %+v", m.Engine)
	}
}
