package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"st4ml/internal/stdata"
	"st4ml/internal/storage"
)

// Catalog is the daemon's resident dataset registry: for every served
// dataset it pins the metadata.json partition index in memory behind an
// RWMutex, so the paper's §4.1 on-disk index is read once and amortized
// across every query instead of being re-parsed per request. The pin is
// validated against the file's mtime on each access; a reload bumps the
// dataset's generation, which invalidates its cached partitions and
// results (their cache keys embed the generation).
type Catalog struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{datasets: map[string]*Dataset{}}
}

// Register adds the dataset at dir under name, decoding its records with
// the named stdata schema. The metadata is read eagerly so registration of
// a missing or broken dataset fails at startup, not at first query.
func (c *Catalog) Register(name, schemaName, dir string) (*Dataset, error) {
	sch, ok := stdata.Lookup(schemaName)
	if !ok {
		return nil, fmt.Errorf("serve: unknown schema %q (have %v)", schemaName, stdata.SchemaNames())
	}
	d := &Dataset{Name: name, Dir: dir, Schema: sch}
	if _, _, err := d.Meta(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.datasets[name]; dup {
		return nil, fmt.Errorf("serve: dataset %q already registered", name)
	}
	c.datasets[name] = d
	return d, nil
}

// Get returns the dataset registered under name.
func (c *Catalog) Get(name string) (*Dataset, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.datasets[name]
	return d, ok
}

// List returns a summary of every registered dataset, sorted by name.
func (c *Catalog) List() []DatasetInfo {
	c.mu.RLock()
	ds := make([]*Dataset, 0, len(c.datasets))
	for _, d := range c.datasets {
		ds = append(ds, d)
	}
	c.mu.RUnlock()
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name < ds[j].Name })
	out := make([]DatasetInfo, 0, len(ds))
	for _, d := range ds {
		out = append(out, d.Info())
	}
	return out
}

// DatasetInfo is the /datasets wire form of one catalog entry.
type DatasetInfo struct {
	Name       string `json:"name"`
	Schema     string `json:"schema"`
	Dir        string `json:"dir"`
	Partitions int    `json:"partitions"`
	Records    int64  `json:"records"`
	Generation int64  `json:"generation"`
	// Error reports a metadata refresh failure (the entry stays listed so
	// operators can see what broke).
	Error string `json:"error,omitempty"`
}

// Dataset is one served dataset: its directory, decoding schema, and the
// pinned, mtime-validated metadata handle.
type Dataset struct {
	Name   string
	Dir    string
	Schema stdata.Schema

	mu    sync.RWMutex
	meta  *storage.Metadata
	mtime time.Time
	mgen  int64
	gen   int64
}

// Meta returns the pinned metadata handle and its generation, reloading
// from disk when the on-disk dataset has changed since the pin. Two probes
// back the revalidation: metadata.json's mtime (a full re-ingest replaces
// the file) and the delta manifest's generation (appends and compactions
// rewrite partitions in place and never touch metadata.json — and an
// mtime-only probe would also miss a rewrite landing within one timestamp
// granule). The catalog generation increments on every reload, which is
// what invalidates cached partitions and results for this dataset.
func (d *Dataset) Meta() (*storage.Metadata, int64, error) {
	path := filepath.Join(d.Dir, storage.MetadataFile)
	st, err := os.Stat(path)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: dataset %s: %w", d.Name, err)
	}
	mgen, err := storage.ManifestGeneration(d.Dir)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: dataset %s: %w", d.Name, err)
	}
	d.mu.RLock()
	if d.meta != nil && st.ModTime().Equal(d.mtime) && mgen == d.mgen {
		meta, gen := d.meta, d.gen
		d.mu.RUnlock()
		return meta, gen, nil
	}
	d.mu.RUnlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	// Another query may have refreshed while we waited for the write lock.
	if d.meta != nil && st.ModTime().Equal(d.mtime) && mgen == d.mgen {
		return d.meta, d.gen, nil
	}
	meta, err := storage.ReadMetadata(d.Dir)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: dataset %s: %w", d.Name, err)
	}
	d.meta = meta
	d.mtime = st.ModTime()
	d.mgen = meta.Generation
	d.gen++
	return d.meta, d.gen, nil
}

// Info summarizes the dataset for /datasets.
func (d *Dataset) Info() DatasetInfo {
	info := DatasetInfo{Name: d.Name, Schema: d.Schema.SchemaName(), Dir: d.Dir}
	meta, gen, err := d.Meta()
	if err != nil {
		info.Error = err.Error()
		return info
	}
	info.Partitions = meta.NumPartitions()
	info.Records = meta.TotalCount
	info.Generation = gen
	return info
}
