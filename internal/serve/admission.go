package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrBusy is returned when the wait queue is already at its depth limit —
// the shed-with-429 path, taken immediately instead of queueing unboundedly.
var ErrBusy = errors.New("serve: over capacity, request shed")

// ErrTimedOut is returned when a request's deadline passes while it is
// still waiting for an execution slot — the shed-with-504 path.
var ErrTimedOut = errors.New("serve: timed out waiting for an execution slot")

// Admission bounds how much query work the daemon accepts: at most
// maxInFlight queries execute concurrently, at most maxQueue more may wait
// for a slot, and a waiter gives up when its request context expires.
// Everything beyond that is shed immediately, keeping latency bounded
// instead of letting the queue (and every client's tail) grow without
// limit.
type Admission struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64

	admitted atomic.Int64
	shedBusy atomic.Int64
	shedSlow atomic.Int64
	inFlight atomic.Int64
}

// NewAdmission builds a controller for maxInFlight concurrent executions
// and a wait queue of maxQueue.
func NewAdmission(maxInFlight, maxQueue int) *Admission {
	if maxInFlight <= 0 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// Acquire claims an execution slot, waiting until ctx expires. It returns
// a release closure on success, ErrBusy when the wait queue is full, and
// ErrTimedOut when the deadline passed first. release must be called
// exactly once.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	grant := func() func() {
		a.admitted.Add(1)
		a.inFlight.Add(1)
		var done atomic.Bool
		return func() {
			if done.CompareAndSwap(false, true) {
				a.inFlight.Add(-1)
				<-a.slots
			}
		}
	}
	select {
	case a.slots <- struct{}{}:
		return grant(), nil
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		a.shedBusy.Add(1)
		return nil, ErrBusy
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return grant(), nil
	case <-ctx.Done():
		a.shedSlow.Add(1)
		return nil, ErrTimedOut
	}
}

// AdmissionStats is a point-in-time copy of the admission counters.
type AdmissionStats struct {
	Admitted    int64 `json:"admitted"`
	ShedBusy    int64 `json:"shed_busy"`
	ShedTimeout int64 `json:"shed_timeout"`
	InFlight    int64 `json:"in_flight"`
	Waiting     int64 `json:"waiting"`
	MaxInFlight int   `json:"max_in_flight"`
	MaxQueue    int64 `json:"max_queue"`
}

// Stats returns a snapshot of the counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Admitted:    a.admitted.Load(),
		ShedBusy:    a.shedBusy.Load(),
		ShedTimeout: a.shedSlow.Load(),
		InFlight:    a.inFlight.Load(),
		Waiting:     a.waiting.Load(),
		MaxInFlight: cap(a.slots),
		MaxQueue:    a.maxQueue,
	}
}
